#!/usr/bin/env bash
# serve_smoke.sh - end-to-end smoke test of the partition-serving daemon.
#
# Boots gpmetisd on a random port, submits a job through the gpmetis
# client, asserts it completes, resubmits the identical job, and asserts
# the second run is a cache hit with the same result. Run via
# `make serve-smoke` or directly from the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill "$daemon_pid" 2>/dev/null || true
        wait "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve-smoke: building binaries"
go build -o "$workdir/gpmetisd" ./cmd/gpmetisd
go build -o "$workdir/gpmetis" ./cmd/gpmetis
go run ./cmd/graphgen -family delaunay -n 20000 -seed 1 -o "$workdir/smoke.metis"

echo "serve-smoke: starting gpmetisd on a random port"
"$workdir/gpmetisd" -addr 127.0.0.1:0 -devices 2 >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

# The daemon prints "gpmetisd: listening on http://HOST:PORT (...)".
base=""
for _ in $(seq 1 50); do
    base="$(sed -n 's/^gpmetisd: listening on \(http:\/\/[^ ]*\).*/\1/p' "$workdir/daemon.log")"
    [[ -n "$base" ]] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/daemon.log"; echo "serve-smoke: FAIL daemon died on startup"; exit 1; }
    sleep 0.1
done
[[ -n "$base" ]] || { echo "serve-smoke: FAIL daemon never reported its address"; exit 1; }
echo "serve-smoke: daemon at $base"

echo "serve-smoke: submitting job"
"$workdir/gpmetis" -server "$base" -k 16 -json -o "$workdir/run1.part" \
    "$workdir/smoke.metis" >"$workdir/run1.json"
grep -q '"edge_cut"' "$workdir/run1.json" || { cat "$workdir/run1.json"; echo "serve-smoke: FAIL first run carries no result"; exit 1; }
if grep -q '"cached": true' "$workdir/run1.json"; then
    echo "serve-smoke: FAIL first submission must not be a cache hit"
    exit 1
fi

echo "serve-smoke: resubmitting identical job"
"$workdir/gpmetis" -server "$base" -k 16 -json -o "$workdir/run2.part" \
    "$workdir/smoke.metis" >"$workdir/run2.json"
grep -q '"cached": true' "$workdir/run2.json" || { cat "$workdir/run2.json"; echo "serve-smoke: FAIL resubmission was not served from the cache"; exit 1; }
cmp -s "$workdir/run1.part" "$workdir/run2.part" || { echo "serve-smoke: FAIL cached partition differs from the original"; exit 1; }

# The daemon's own counters must agree: exactly one hit, one miss.
curl -sf "$base/metrics" >"$workdir/metrics.json"
grep -q '"cache.hits": 1' "$workdir/metrics.json" || { cat "$workdir/metrics.json"; echo "serve-smoke: FAIL expected cache.hits = 1"; exit 1; }
curl -sf "$base/healthz" >/dev/null || { echo "serve-smoke: FAIL healthz"; exit 1; }

kill "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "serve-smoke: OK"
