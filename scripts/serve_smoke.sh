#!/usr/bin/env bash
# serve_smoke.sh - end-to-end smoke test of the partition-serving daemon.
#
# Boots gpmetisd on a random port with a multi-tenant config, submits a
# job through the gpmetis client, asserts it completes, resubmits the
# identical job, and asserts the second run is a cache hit with the same
# result. Then it walks the overload-control surface: per-tenant and
# brownout metric series, and a forced 429 carrying a dynamic
# Retry-After. Run via `make serve-smoke` or directly from the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill "$daemon_pid" 2>/dev/null || true
        wait "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve-smoke: building binaries"
go build -o "$workdir/gpmetisd" ./cmd/gpmetisd
go build -o "$workdir/gpmetis" ./cmd/gpmetis
go run ./cmd/graphgen -family delaunay -n 20000 -seed 1 -o "$workdir/smoke.metis"

cat >"$workdir/tenants.json" <<'EOF'
{
  "default": {"weight": 1},
  "paid":    {"weight": 3, "max_queued": 16}
}
EOF

echo "serve-smoke: starting gpmetisd on a random port"
"$workdir/gpmetisd" -addr 127.0.0.1:0 -devices 2 \
    -tenants "$workdir/tenants.json" >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

# The daemon prints "gpmetisd: listening on http://HOST:PORT (...)".
base=""
for _ in $(seq 1 50); do
    base="$(sed -n 's/^gpmetisd: listening on \(http:\/\/[^ ]*\).*/\1/p' "$workdir/daemon.log")"
    [[ -n "$base" ]] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/daemon.log"; echo "serve-smoke: FAIL daemon died on startup"; exit 1; }
    sleep 0.1
done
[[ -n "$base" ]] || { echo "serve-smoke: FAIL daemon never reported its address"; exit 1; }
echo "serve-smoke: daemon at $base"

echo "serve-smoke: submitting job"
"$workdir/gpmetis" -server "$base" -k 16 -json -o "$workdir/run1.part" \
    "$workdir/smoke.metis" >"$workdir/run1.json"
grep -q '"edge_cut"' "$workdir/run1.json" || { cat "$workdir/run1.json"; echo "serve-smoke: FAIL first run carries no result"; exit 1; }
if grep -q '"cached": true' "$workdir/run1.json"; then
    echo "serve-smoke: FAIL first submission must not be a cache hit"
    exit 1
fi

echo "serve-smoke: resubmitting identical job"
"$workdir/gpmetis" -server "$base" -k 16 -json -o "$workdir/run2.part" \
    "$workdir/smoke.metis" >"$workdir/run2.json"
grep -q '"cached": true' "$workdir/run2.json" || { cat "$workdir/run2.json"; echo "serve-smoke: FAIL resubmission was not served from the cache"; exit 1; }
cmp -s "$workdir/run1.part" "$workdir/run2.part" || { echo "serve-smoke: FAIL cached partition differs from the original"; exit 1; }

# The daemon's own counters must agree: exactly one hit, one miss.
curl -sf "$base/metrics" >"$workdir/metrics.prom"
grep -q '^gpmetisd_cache_hits 1$' "$workdir/metrics.prom" || { cat "$workdir/metrics.prom"; echo "serve-smoke: FAIL expected gpmetisd_cache_hits 1"; exit 1; }

echo "serve-smoke: checking observability surface"
# The SLO burn-rate series and the job lifecycle histograms must be on
# the scrape from the first completed job.
for series in gpmetisd_slo_status gpmetisd_slo_latency_burn_fast \
              gpmetisd_slo_availability_burn_slow \
              gpmetisd_job_queue_seconds_bucket gpmetisd_job_run_seconds_bucket \
              gpmetisd_job_total_seconds_bucket; do
    grep -q "^$series" "$workdir/metrics.prom" || { echo "serve-smoke: FAIL /metrics missing $series"; exit 1; }
done
curl -sf "$base/healthz" | grep -q '"slo_status"' || { echo "serve-smoke: FAIL healthz carries no SLO posture"; exit 1; }
curl -sf "$base/slo" | grep -q '"fast":' || { echo "serve-smoke: FAIL /slo"; exit 1; }
curl -sf "$base/admin/status.json" | grep -q '"slots"' || { echo "serve-smoke: FAIL /admin/status.json"; exit 1; }
curl -sf "$base/admin/status" | grep -qi '<html' || { echo "serve-smoke: FAIL /admin/status is not HTML"; exit 1; }
curl -sf "$base/admin/events" | grep -q '"type":"admit"' || { echo "serve-smoke: FAIL flight recorder holds no admit event"; exit 1; }

echo "serve-smoke: checking the multi-tenant overload surface"
# A submission under a named tenant must show up in the per-tenant
# series; configured tenants are exported even before their first job.
"$workdir/gpmetis" -server "$base" -k 16 -tenant paid -json \
    "$workdir/smoke.metis" >"$workdir/run3.json"
grep -q '"edge_cut"' "$workdir/run3.json" || { cat "$workdir/run3.json"; echo "serve-smoke: FAIL tenant-tagged run carries no result"; exit 1; }
curl -sf "$base/metrics" >"$workdir/metrics.prom"
for series in 'gpmetisd_tenant_weight{tenant="default"}' \
              'gpmetisd_tenant_weight{tenant="paid"} 3' \
              'gpmetisd_tenant_submitted{tenant="paid"}' \
              'gpmetisd_tenant_queued{tenant="paid"}' \
              'gpmetisd_tenant_served_modeled_seconds' \
              'gpmetisd_brownout_level' 'gpmetisd_brownout_active'; do
    grep -qF "$series" "$workdir/metrics.prom" || { echo "serve-smoke: FAIL /metrics missing $series"; exit 1; }
done

echo "serve-smoke: forcing a 429 and checking its dynamic Retry-After"
# The completed runs warmed the service-time estimator for this graph's
# size bucket, so a 1ms deadline is provably unmeetable at admission.
{
    printf '{"graph":"'
    awk '{printf "%s\\n", $0}' "$workdir/smoke.metis"
    printf '","k":16,"deadline_ms":1}'
} >"$workdir/probe.json"
code="$(curl -s -D "$workdir/probe.headers" -o "$workdir/probe.resp" \
    -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    --data-binary @"$workdir/probe.json" "$base/jobs")"
[[ "$code" == "429" ]] || { cat "$workdir/probe.resp"; echo "serve-smoke: FAIL 1ms-deadline probe returned HTTP $code, want 429"; exit 1; }
grep -q '"code":"deadline_unmeetable"' "$workdir/probe.resp" || { cat "$workdir/probe.resp"; echo "serve-smoke: FAIL probe rejection is not deadline_unmeetable"; exit 1; }
retry_after="$(sed -n 's/^[Rr]etry-[Aa]fter: *\([0-9][0-9]*\).*/\1/p' "$workdir/probe.headers")"
[[ -n "$retry_after" && "$retry_after" -ge 1 ]] || { cat "$workdir/probe.headers"; echo "serve-smoke: FAIL 429 carries no positive integer Retry-After"; exit 1; }
echo "serve-smoke: 429 advised Retry-After: $retry_after"
curl -sf "$base/metrics" >"$workdir/metrics2.prom"
grep -q '^gpmetisd_jobs_rejected_deadline 1' "$workdir/metrics2.prom" || { echo "serve-smoke: FAIL gpmetisd_jobs_rejected_deadline did not count the probe"; exit 1; }

echo "serve-smoke: rendering the terminal ops view"
"$workdir/gpmetis" -server "$base" -top -top-iterations 1 >"$workdir/top.out"
grep -q 'SLOT' "$workdir/top.out" || { cat "$workdir/top.out"; echo "serve-smoke: FAIL gpmetis -top rendered no slot table"; exit 1; }

kill "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "serve-smoke: OK"
