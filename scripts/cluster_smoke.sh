#!/usr/bin/env bash
# cluster_smoke.sh - end-to-end smoke test of the gpmetisd ring tier.
#
# Boots a 3-node consistent-hash ring (RF=2) from one peers.json,
# submits a job through `gpmetis -cluster`, locates the node that ran
# it, asserts a resubmission entering at a different node is answered by
# a cross-node cache peek (bit-identical partition, peek counter
# incremented, modeled network seconds charged) and that the result
# replicated to a ring successor; then SIGKILLs the owner and asserts
# the resubmission is served from the replica — a cache hit, not a
# recompute — and finally restarts the owner and asserts rejoin
# catch-up pulls its entries back so it serves locally again. Run via
# `make serve-smoke` or directly from the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "cluster-smoke: building binaries"
go build -o "$workdir/gpmetisd" ./cmd/gpmetisd
go build -o "$workdir/gpmetis" ./cmd/gpmetis
go run ./cmd/graphgen -family delaunay -n 20000 -seed 1 -o "$workdir/smoke.metis"

port_base=$((20000 + RANDOM % 20000))
addrs=()
for i in 0 1 2; do
    addrs+=("127.0.0.1:$((port_base + i))")
done
cat >"$workdir/peers.json" <<EOF
{"nodes":[
  {"id":0,"addr":"${addrs[0]}"},
  {"id":1,"addr":"${addrs[1]}"},
  {"id":2,"addr":"${addrs[2]}"}
]}
EOF

echo "cluster-smoke: starting a 3-node ring on ports $port_base..$((port_base + 2))"
for i in 0 1 2; do
    "$workdir/gpmetisd" -addr "${addrs[$i]}" -devices 1 \
        -peers "$workdir/peers.json" -node-id "$i" -cluster-probe 300ms \
        >"$workdir/node$i.log" 2>&1 &
    pids[$i]=$!
done
for i in 0 1 2; do
    up=""
    for _ in $(seq 1 50); do
        if grep -q "cluster node $i of 3-node ring" "$workdir/node$i.log"; then up=1; break; fi
        kill -0 "${pids[$i]}" 2>/dev/null || { cat "$workdir/node$i.log"; echo "cluster-smoke: FAIL node $i died on startup"; exit 1; }
        sleep 0.1
    done
    [[ -n "$up" ]] || { cat "$workdir/node$i.log"; echo "cluster-smoke: FAIL node $i never joined the ring"; exit 1; }
done

# Every member must report the ring on /healthz.
for i in 0 1 2; do
    curl -sf "http://${addrs[$i]}/healthz" >"$workdir/healthz$i.json"
    grep -q '"cluster"' "$workdir/healthz$i.json" || { cat "$workdir/healthz$i.json"; echo "cluster-smoke: FAIL node $i /healthz carries no cluster block"; exit 1; }
    grep -q "\"node_id\": *$i" "$workdir/healthz$i.json" || { cat "$workdir/healthz$i.json"; echo "cluster-smoke: FAIL node $i reports the wrong identity"; exit 1; }
done

echo "cluster-smoke: submitting job via gpmetis -cluster (entry node 0)"
"$workdir/gpmetis" -cluster "${addrs[0]},${addrs[1]},${addrs[2]}" -k 16 -json \
    -trace "$workdir/run1.trace.json" -o "$workdir/run1.part" \
    "$workdir/smoke.metis" >"$workdir/run1.json"
grep -q '"edge_cut"' "$workdir/run1.json" || { cat "$workdir/run1.json"; echo "cluster-smoke: FAIL first run carries no result"; exit 1; }
if grep -q '"cached": true' "$workdir/run1.json"; then
    echo "cluster-smoke: FAIL first submission must not be a cache hit"
    exit 1
fi

# Exactly one node ran the job: find the owner by its completion
# counter (with RF=2 the cache entry itself lives on two nodes).
owner=""
for i in 0 1 2; do
    curl -sf "http://${addrs[$i]}/metrics" >"$workdir/metrics$i.prom"
    if grep -q '^gpmetisd_jobs_completed 1$' "$workdir/metrics$i.prom"; then
        [[ -z "$owner" ]] || { echo "cluster-smoke: FAIL nodes $owner and $i both ran the job"; exit 1; }
        owner=$i
    fi
done
[[ -n "$owner" ]] || { echo "cluster-smoke: FAIL no node completed the job"; exit 1; }
echo "cluster-smoke: digest owner is node $owner"

# The result must replicate to one ring successor: two nodes cache it.
deadline=$((SECONDS + 10))
cached=0
while (( SECONDS < deadline )); do
    cached=0
    for i in 0 1 2; do
        if curl -sf "http://${addrs[$i]}/metrics" | grep -q '^gpmetisd_cache_entries 1$'; then
            cached=$((cached + 1))
        fi
    done
    (( cached >= 2 )) && break
    sleep 0.2
done
(( cached == 2 )) || { echo "cluster-smoke: FAIL $cached nodes cache the result, want 2 (RF=2)"; exit 1; }
curl -sf "http://${addrs[$owner]}/metrics" >"$workdir/owner0.prom"
grep -q '^gpmetisd_cluster_replica_pushes 1$' "$workdir/owner0.prom" || { grep ^gpmetisd_cluster "$workdir/owner0.prom"; echo "cluster-smoke: FAIL owner counted no replica push"; exit 1; }
echo "cluster-smoke: result replicated to a ring successor (RF=2)"

# When the job entered at a non-owner, its trace must carry the
# cluster-forward span with the modeled network charge.
if [[ "$owner" != 0 ]]; then
    grep -q 'cluster-forward' "$workdir/run1.trace.json" || { echo "cluster-smoke: FAIL forwarded job trace has no cluster-forward span"; exit 1; }
    grep -q 'net_modeled_seconds' "$workdir/run1.trace.json" || { echo "cluster-smoke: FAIL cluster-forward span carries no network charge"; exit 1; }
    echo "cluster-smoke: forward span present in the job trace"
fi

# Resubmit the identical job entering at a non-owner: a cross-node peek
# must answer it from the owner's cache, bit-identically.
entry=$(( (owner + 1) % 3 ))
echo "cluster-smoke: resubmitting via non-owner entry node $entry"
"$workdir/gpmetis" -cluster "${addrs[$entry]}" -k 16 -json -o "$workdir/run2.part" \
    "$workdir/smoke.metis" >"$workdir/run2.json"
grep -q '"cached": true' "$workdir/run2.json" || { cat "$workdir/run2.json"; echo "cluster-smoke: FAIL resubmission was not a cache hit"; exit 1; }
cmp -s "$workdir/run1.part" "$workdir/run2.part" || { echo "cluster-smoke: FAIL peeked partition differs from the original"; exit 1; }

curl -sf "http://${addrs[$entry]}/metrics" >"$workdir/entry.prom"
grep -q '^gpmetisd_cluster_peek_hits 1$' "$workdir/entry.prom" || { grep ^gpmetisd_cluster "$workdir/entry.prom"; echo "cluster-smoke: FAIL entry node counted no peek hit"; exit 1; }
net_secs="$(sed -n 's/^gpmetisd_cluster_net_modeled_seconds \(.*\)/\1/p' "$workdir/entry.prom")"
awk -v s="$net_secs" 'BEGIN { exit (s > 0 ? 0 : 1) }' || { echo "cluster-smoke: FAIL entry node charged no modeled network seconds ($net_secs)"; exit 1; }
echo "cluster-smoke: peek hit served cross-node ($net_secs modeled network seconds charged)"

# The owner's cache must have answered without rerunning the job.
curl -sf "http://${addrs[$owner]}/metrics" >"$workdir/owner.prom"
grep -q '^gpmetisd_jobs_completed 1$' "$workdir/owner.prom" || { echo "cluster-smoke: FAIL the owner reran a cached job"; exit 1; }

echo "cluster-smoke: SIGKILLing owner node $owner"
kill -9 "${pids[$owner]}"
wait "${pids[$owner]}" 2>/dev/null || true
pids[$owner]=""

# The dead owner's share must fail over to its replica: the identical
# submission is a cache hit on a survivor — bit-identical, never
# recomputed — and the entry accounts the failover.
survivor=$(( (owner + 2) % 3 ))
echo "cluster-smoke: resubmitting with the owner dead (entry $entry, survivor $survivor)"
"$workdir/gpmetis" -cluster "${addrs[$entry]},${addrs[$survivor]}" -k 16 -json \
    -o "$workdir/run3.part" "$workdir/smoke.metis" >"$workdir/run3.json"
grep -q '"edge_cut"' "$workdir/run3.json" || { cat "$workdir/run3.json"; echo "cluster-smoke: FAIL failover run carries no result"; exit 1; }
grep -q '"cached": true' "$workdir/run3.json" || { cat "$workdir/run3.json"; echo "cluster-smoke: FAIL failover run was recomputed instead of replica-served"; exit 1; }
cmp -s "$workdir/run1.part" "$workdir/run3.part" || { echo "cluster-smoke: FAIL replica-served partition differs from the original"; exit 1; }

# Neither survivor may have rerun the job: the replica answered it.
# (The counter registers lazily, so an absent line also means zero.)
for i in "$entry" "$survivor"; do
    jc="$(curl -sf "http://${addrs[$i]}/metrics" | sed -n 's/^gpmetisd_jobs_completed \([0-9]*\).*/\1/p')"
    [[ -z "$jc" || "$jc" -eq 0 ]] || { echo "cluster-smoke: FAIL survivor $i recomputed a replicated job (jobs_completed=$jc)"; exit 1; }
done

curl -sf "http://${addrs[$entry]}/metrics" >"$workdir/entry2.prom"
failovers="$(sed -n 's/^gpmetisd_cluster_failovers_total \([0-9]*\).*/\1/p' "$workdir/entry2.prom")"
[[ -n "$failovers" && "$failovers" -ge 1 ]] || { grep ^gpmetisd_cluster "$workdir/entry2.prom"; echo "cluster-smoke: FAIL entry node counted no failover"; exit 1; }
echo "cluster-smoke: replica served the dead owner's digest (failovers_total=$failovers, no recompute)"

# The prober must have quarantined the dead peer by now.
deadline=$((SECONDS + 5))
down=""
while (( SECONDS < deadline )); do
    if curl -sf "http://${addrs[$entry]}/healthz" | grep -q '"state": *"down"'; then down=1; break; fi
    sleep 0.2
done
[[ -n "$down" ]] || { echo "cluster-smoke: FAIL the dead owner was never marked down"; exit 1; }
echo "cluster-smoke: dead owner quarantined by health probes"

# Restart the owner from nothing on the same address: rejoin catch-up
# must pull the entries it owns back from its replicas.
echo "cluster-smoke: restarting owner node $owner for rejoin catch-up"
"$workdir/gpmetisd" -addr "${addrs[$owner]}" -devices 1 \
    -peers "$workdir/peers.json" -node-id "$owner" -cluster-probe 300ms \
    >"$workdir/node$owner.restart.log" 2>&1 &
pids[$owner]=$!
up=""
for _ in $(seq 1 50); do
    if grep -q "cluster node $owner of 3-node ring" "$workdir/node$owner.restart.log"; then up=1; break; fi
    kill -0 "${pids[$owner]}" 2>/dev/null || { cat "$workdir/node$owner.restart.log"; echo "cluster-smoke: FAIL owner died on restart"; exit 1; }
    sleep 0.1
done
[[ -n "$up" ]] || { cat "$workdir/node$owner.restart.log"; echo "cluster-smoke: FAIL restarted owner never rejoined the ring"; exit 1; }

deadline=$((SECONDS + 15))
caught_up=""
while (( SECONDS < deadline )); do
    curl -sf "http://${addrs[$owner]}/metrics" >"$workdir/owner2.prom" 2>/dev/null || { sleep 0.2; continue; }
    pulled="$(sed -n 's/^gpmetisd_cluster_repair_pulled \([0-9]*\).*/\1/p' "$workdir/owner2.prom")"
    if [[ -n "$pulled" && "$pulled" -ge 1 ]] && grep -q '^gpmetisd_cache_entries 1$' "$workdir/owner2.prom"; then
        caught_up=1
        break
    fi
    sleep 0.2
done
[[ -n "$caught_up" ]] || { grep -E '^gpmetisd_(cluster_|cache_)' "$workdir/owner2.prom" || true; echo "cluster-smoke: FAIL restarted owner never pulled its entries back"; exit 1; }
echo "cluster-smoke: rejoin catch-up restored the owner's cache (repair_pulled=$pulled)"

# The restarted owner now serves its digest locally, with no recompute.
"$workdir/gpmetis" -cluster "${addrs[$owner]}" -k 16 -json -o "$workdir/run4.part" \
    "$workdir/smoke.metis" >"$workdir/run4.json"
grep -q '"cached": true' "$workdir/run4.json" || { cat "$workdir/run4.json"; echo "cluster-smoke: FAIL restarted owner missed its repaired cache"; exit 1; }
cmp -s "$workdir/run1.part" "$workdir/run4.part" || { echo "cluster-smoke: FAIL repaired partition differs from the original"; exit 1; }
jc="$(curl -sf "http://${addrs[$owner]}/metrics" | sed -n 's/^gpmetisd_jobs_completed \([0-9]*\).*/\1/p')"
[[ -z "$jc" || "$jc" -eq 0 ]] || { echo "cluster-smoke: FAIL restarted owner recomputed a repaired job (jobs_completed=$jc)"; exit 1; }

# No hints may be left outstanding anywhere once the ring is whole.
for i in 0 1 2; do
    curl -sf "http://${addrs[$i]}/metrics" | grep -q '^gpmetisd_cluster_handoff_hints_outstanding 0$' \
        || { echo "cluster-smoke: FAIL node $i still holds undelivered hints"; exit 1; }
done
echo "cluster-smoke: owner back to full replica duty, no hints outstanding"

for i in 0 1 2; do
    [[ -n "${pids[$i]}" ]] && kill "${pids[$i]}" 2>/dev/null || true
done
echo "cluster-smoke: OK"
