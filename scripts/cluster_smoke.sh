#!/usr/bin/env bash
# cluster_smoke.sh - end-to-end smoke test of the gpmetisd ring tier.
#
# Boots a 3-node consistent-hash ring (RF=2) from one peers.json,
# submits a job through `gpmetis -cluster`, locates the node that ran
# it, asserts a resubmission entering at a different node is answered by
# a cross-node cache peek (bit-identical partition, peek counter
# incremented, modeled network seconds charged) and that the result
# replicated to a ring successor; then SIGKILLs the owner and asserts
# the resubmission is served from the replica — a cache hit, not a
# recompute — and finally restarts the owner and asserts rejoin
# catch-up pulls its entries back so it serves locally again.
#
# The observability plane rides along: the federated fleet view
# (/admin/cluster/status.json) must list every node up, a forwarded
# job's trace must come back STITCHED (entry + owner spans under
# distinct pids in one document), every internode RPC class (forward,
# replica_put, summary, handoff_put) must land in the per-peer
# histograms, and replication / anti-entropy / hint-drain rounds must
# each leave a trace-id-bearing event in the flight recorder. Run via
# `make serve-smoke` or directly from the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "cluster-smoke: building binaries"
go build -o "$workdir/gpmetisd" ./cmd/gpmetisd
go build -o "$workdir/gpmetis" ./cmd/gpmetis
go run ./cmd/graphgen -family delaunay -n 20000 -seed 1 -o "$workdir/smoke.metis"

port_base=$((20000 + RANDOM % 20000))
addrs=()
for i in 0 1 2; do
    addrs+=("127.0.0.1:$((port_base + i))")
done
cat >"$workdir/peers.json" <<EOF
{"nodes":[
  {"id":0,"addr":"${addrs[0]}"},
  {"id":1,"addr":"${addrs[1]}"},
  {"id":2,"addr":"${addrs[2]}"}
]}
EOF

echo "cluster-smoke: starting a 3-node ring on ports $port_base..$((port_base + 2))"
for i in 0 1 2; do
    "$workdir/gpmetisd" -addr "${addrs[$i]}" -devices 1 \
        -peers "$workdir/peers.json" -node-id "$i" -cluster-probe 300ms \
        >"$workdir/node$i.log" 2>&1 &
    pids[$i]=$!
done
for i in 0 1 2; do
    up=""
    for _ in $(seq 1 50); do
        if grep -q "cluster node $i of 3-node ring" "$workdir/node$i.log"; then up=1; break; fi
        kill -0 "${pids[$i]}" 2>/dev/null || { cat "$workdir/node$i.log"; echo "cluster-smoke: FAIL node $i died on startup"; exit 1; }
        sleep 0.1
    done
    [[ -n "$up" ]] || { cat "$workdir/node$i.log"; echo "cluster-smoke: FAIL node $i never joined the ring"; exit 1; }
done

# Every member must report the ring on /healthz.
for i in 0 1 2; do
    curl -sf "http://${addrs[$i]}/healthz" >"$workdir/healthz$i.json"
    grep -q '"cluster"' "$workdir/healthz$i.json" || { cat "$workdir/healthz$i.json"; echo "cluster-smoke: FAIL node $i /healthz carries no cluster block"; exit 1; }
    grep -q "\"node_id\": *$i" "$workdir/healthz$i.json" || { cat "$workdir/healthz$i.json"; echo "cluster-smoke: FAIL node $i reports the wrong identity"; exit 1; }
done

echo "cluster-smoke: submitting job via gpmetis -cluster (entry node 0)"
"$workdir/gpmetis" -cluster "${addrs[0]},${addrs[1]},${addrs[2]}" -k 16 -json \
    -trace "$workdir/run1.trace.json" -o "$workdir/run1.part" \
    "$workdir/smoke.metis" >"$workdir/run1.json"
grep -q '"edge_cut"' "$workdir/run1.json" || { cat "$workdir/run1.json"; echo "cluster-smoke: FAIL first run carries no result"; exit 1; }
if grep -q '"cached": true' "$workdir/run1.json"; then
    echo "cluster-smoke: FAIL first submission must not be a cache hit"
    exit 1
fi

# Exactly one node ran the job: find the owner by its completion
# counter (with RF=2 the cache entry itself lives on two nodes).
owner=""
for i in 0 1 2; do
    curl -sf "http://${addrs[$i]}/metrics" >"$workdir/metrics$i.prom"
    if grep -q '^gpmetisd_jobs_completed 1$' "$workdir/metrics$i.prom"; then
        [[ -z "$owner" ]] || { echo "cluster-smoke: FAIL nodes $owner and $i both ran the job"; exit 1; }
        owner=$i
    fi
done
[[ -n "$owner" ]] || { echo "cluster-smoke: FAIL no node completed the job"; exit 1; }
echo "cluster-smoke: digest owner is node $owner"

# The result must replicate to one ring successor: two nodes cache it.
deadline=$((SECONDS + 10))
cached=0
while (( SECONDS < deadline )); do
    cached=0
    for i in 0 1 2; do
        if curl -sf "http://${addrs[$i]}/metrics" | grep -q '^gpmetisd_cache_entries 1$'; then
            cached=$((cached + 1))
        fi
    done
    (( cached >= 2 )) && break
    sleep 0.2
done
(( cached == 2 )) || { echo "cluster-smoke: FAIL $cached nodes cache the result, want 2 (RF=2)"; exit 1; }
curl -sf "http://${addrs[$owner]}/metrics" >"$workdir/owner0.prom"
grep -q '^gpmetisd_cluster_replica_pushes 1$' "$workdir/owner0.prom" || { grep ^gpmetisd_cluster "$workdir/owner0.prom"; echo "cluster-smoke: FAIL owner counted no replica push"; exit 1; }
echo "cluster-smoke: result replicated to a ring successor (RF=2)"

# When the job entered at a non-owner, its trace must carry the
# cluster-forward span with the modeled network charge.
if [[ "$owner" != 0 ]]; then
    grep -q 'cluster-forward' "$workdir/run1.trace.json" || { echo "cluster-smoke: FAIL forwarded job trace has no cluster-forward span"; exit 1; }
    grep -q 'net_modeled_seconds' "$workdir/run1.trace.json" || { echo "cluster-smoke: FAIL cluster-forward span carries no network charge"; exit 1; }
    echo "cluster-smoke: forward span present in the job trace"
fi

# Resubmit the identical job entering at a non-owner: a cross-node peek
# must answer it from the owner's cache, bit-identically.
entry=$(( (owner + 1) % 3 ))
echo "cluster-smoke: resubmitting via non-owner entry node $entry"
"$workdir/gpmetis" -cluster "${addrs[$entry]}" -k 16 -json -o "$workdir/run2.part" \
    "$workdir/smoke.metis" >"$workdir/run2.json"
grep -q '"cached": true' "$workdir/run2.json" || { cat "$workdir/run2.json"; echo "cluster-smoke: FAIL resubmission was not a cache hit"; exit 1; }
cmp -s "$workdir/run1.part" "$workdir/run2.part" || { echo "cluster-smoke: FAIL peeked partition differs from the original"; exit 1; }

curl -sf "http://${addrs[$entry]}/metrics" >"$workdir/entry.prom"
grep -q '^gpmetisd_cluster_peek_hits 1$' "$workdir/entry.prom" || { grep ^gpmetisd_cluster "$workdir/entry.prom"; echo "cluster-smoke: FAIL entry node counted no peek hit"; exit 1; }
net_secs="$(sed -n 's/^gpmetisd_cluster_net_modeled_seconds \(.*\)/\1/p' "$workdir/entry.prom")"
awk -v s="$net_secs" 'BEGIN { exit (s > 0 ? 0 : 1) }' || { echo "cluster-smoke: FAIL entry node charged no modeled network seconds ($net_secs)"; exit 1; }
echo "cluster-smoke: peek hit served cross-node ($net_secs modeled network seconds charged)"

# The owner's cache must have answered without rerunning the job.
curl -sf "http://${addrs[$owner]}/metrics" >"$workdir/owner.prom"
grep -q '^gpmetisd_jobs_completed 1$' "$workdir/owner.prom" || { echo "cluster-smoke: FAIL the owner reran a cached job"; exit 1; }

# The federated fleet view on any node must list all three members up.
curl -sf "http://${addrs[$entry]}/admin/cluster/status.json" >"$workdir/fleet.json"
ups="$(grep -o '"up":true' "$workdir/fleet.json" | wc -l)"
[[ "$ups" -eq 3 ]] || { cat "$workdir/fleet.json"; echo "cluster-smoke: FAIL fleet view reports $ups nodes up, want 3"; exit 1; }
echo "cluster-smoke: fleet view lists all 3 nodes up"

# A job that enters at a non-owner must yield ONE stitched trace: the
# entry's spans plus the owner's remote spans under distinct pids.
# Digest ownership depends on k, so hunt a k that node $entry does not
# own (each k forwards with probability ~2/3).
echo "cluster-smoke: hunting a forwarded job for the stitched trace"
stitched=""
pidn=0
for kk in 5 7 9 11 13 15; do
    "$workdir/gpmetis" -cluster "${addrs[$entry]}" -k "$kk" -json \
        -trace "$workdir/stitch.trace.json" -o "$workdir/stitch.part" \
        "$workdir/smoke.metis" >"$workdir/stitch.json"
    pidn="$(grep -o '"pid": *[0-9]*' "$workdir/stitch.trace.json" | tr -d ' ' | sort -u | wc -l)"
    if (( pidn >= 2 )); then stitched=$kk; break; fi
done
[[ -n "$stitched" ]] || { echo "cluster-smoke: FAIL no k in six tries forwarded off node $entry; trace never stitched"; exit 1; }
grep -q 'cluster-forward' "$workdir/stitch.trace.json" || { echo "cluster-smoke: FAIL stitched trace lacks the cluster-forward span"; exit 1; }
echo "cluster-smoke: stitched trace spans $pidn processes (k=$stitched)"

# The forward must land in the entry's per-peer RPC histograms, and the
# owner's replica push must appear as a trace-id-bearing event plus a
# replica_put observation.
curl -sf "http://${addrs[$entry]}/metrics" >"$workdir/entry3.prom"
grep -q 'gpmetisd_cluster_rpc_seconds_bucket{' "$workdir/entry3.prom" || { echo "cluster-smoke: FAIL entry exposes no cluster RPC histograms"; exit 1; }
fwd="$(sed -n 's/^gpmetisd_cluster_rpc_seconds_count{[^}]*rpc="forward"} \([0-9]*\)$/\1/p' "$workdir/entry3.prom" | awk '{s+=$1} END {print s+0}')"
(( fwd >= 1 )) || { grep ^gpmetisd_cluster_rpc "$workdir/entry3.prom"; echo "cluster-smoke: FAIL entry observed no forward RPC in the histograms"; exit 1; }
curl -sf "http://${addrs[$owner]}/metrics" >"$workdir/owner3.prom"
rput="$(sed -n 's/^gpmetisd_cluster_rpc_seconds_count{[^}]*rpc="replica_put"} \([0-9]*\)$/\1/p' "$workdir/owner3.prom" | awk '{s+=$1} END {print s+0}')"
(( rput >= 1 )) || { grep ^gpmetisd_cluster_rpc "$workdir/owner3.prom"; echo "cluster-smoke: FAIL owner observed no replica_put RPC in the histograms"; exit 1; }
curl -sf "http://${addrs[$owner]}/admin/events" >"$workdir/owner.events.json"
rep_ev="$(grep -o '{[^{}]*"type":"cluster_replicate"[^{}]*}' "$workdir/owner.events.json" | head -1)"
[[ -n "$rep_ev" ]] || { echo "cluster-smoke: FAIL owner recorded no cluster_replicate event"; exit 1; }
grep -q '"trace_id":"' <<<"$rep_ev" || { echo "cluster-smoke: FAIL cluster_replicate event carries no trace_id: $rep_ev"; exit 1; }
echo "cluster-smoke: forward + replica_put observed in RPC histograms; replication event carries a trace"

echo "cluster-smoke: SIGKILLing owner node $owner"
kill -9 "${pids[$owner]}"
wait "${pids[$owner]}" 2>/dev/null || true
pids[$owner]=""

# The dead owner's share must fail over to its replica: the identical
# submission is a cache hit on a survivor — bit-identical, never
# recomputed — and the entry accounts the failover.
survivor=$(( (owner + 2) % 3 ))
# The stitch hunt above ran real jobs on the survivors, so compare
# their completion counters against a baseline rather than zero.
jc_entry_before="$(curl -sf "http://${addrs[$entry]}/metrics" | sed -n 's/^gpmetisd_jobs_completed \([0-9]*\).*/\1/p')"
jc_surv_before="$(curl -sf "http://${addrs[$survivor]}/metrics" | sed -n 's/^gpmetisd_jobs_completed \([0-9]*\).*/\1/p')"
echo "cluster-smoke: resubmitting with the owner dead (entry $entry, survivor $survivor)"
"$workdir/gpmetis" -cluster "${addrs[$entry]},${addrs[$survivor]}" -k 16 -json \
    -o "$workdir/run3.part" "$workdir/smoke.metis" >"$workdir/run3.json"
grep -q '"edge_cut"' "$workdir/run3.json" || { cat "$workdir/run3.json"; echo "cluster-smoke: FAIL failover run carries no result"; exit 1; }
grep -q '"cached": true' "$workdir/run3.json" || { cat "$workdir/run3.json"; echo "cluster-smoke: FAIL failover run was recomputed instead of replica-served"; exit 1; }
cmp -s "$workdir/run1.part" "$workdir/run3.part" || { echo "cluster-smoke: FAIL replica-served partition differs from the original"; exit 1; }

# Neither survivor may have rerun the job: the replica answered it.
# (The counter registers lazily, so an absent line also means zero.)
jc="$(curl -sf "http://${addrs[$entry]}/metrics" | sed -n 's/^gpmetisd_jobs_completed \([0-9]*\).*/\1/p')"
[[ "${jc:-0}" -eq "${jc_entry_before:-0}" ]] || { echo "cluster-smoke: FAIL entry $entry recomputed a replicated job (jobs_completed ${jc_entry_before:-0} -> ${jc:-0})"; exit 1; }
jc="$(curl -sf "http://${addrs[$survivor]}/metrics" | sed -n 's/^gpmetisd_jobs_completed \([0-9]*\).*/\1/p')"
[[ "${jc:-0}" -eq "${jc_surv_before:-0}" ]] || { echo "cluster-smoke: FAIL survivor $survivor recomputed a replicated job (jobs_completed ${jc_surv_before:-0} -> ${jc:-0})"; exit 1; }

curl -sf "http://${addrs[$entry]}/metrics" >"$workdir/entry2.prom"
failovers="$(sed -n 's/^gpmetisd_cluster_failovers_total \([0-9]*\).*/\1/p' "$workdir/entry2.prom")"
[[ -n "$failovers" && "$failovers" -ge 1 ]] || { grep ^gpmetisd_cluster "$workdir/entry2.prom"; echo "cluster-smoke: FAIL entry node counted no failover"; exit 1; }
echo "cluster-smoke: replica served the dead owner's digest (failovers_total=$failovers, no recompute)"

# The prober must have quarantined the dead peer by now.
deadline=$((SECONDS + 5))
down=""
while (( SECONDS < deadline )); do
    if curl -sf "http://${addrs[$entry]}/healthz" | grep -q '"state": *"down"'; then down=1; break; fi
    sleep 0.2
done
[[ -n "$down" ]] || { echo "cluster-smoke: FAIL the dead owner was never marked down"; exit 1; }
echo "cluster-smoke: dead owner quarantined by health probes"

# With the owner dead, hunt a job whose RF=2 preference list includes
# it: the computing survivor must record a handoff hint instead of a
# replica push (each k lands on the dead node with probability ~2/3).
echo "cluster-smoke: planting a hinted handoff for the dead owner"
hinted=""
for kk in 6 10 14 18 22 26; do
    "$workdir/gpmetis" -cluster "${addrs[$entry]},${addrs[$survivor]}" -k "$kk" -json \
        -o "$workdir/hint.part" "$workdir/smoke.metis" >"$workdir/hint.json"
    for _ in $(seq 1 10); do
        for i in "$entry" "$survivor"; do
            h="$(curl -sf "http://${addrs[$i]}/metrics" | sed -n 's/^gpmetisd_cluster_handoff_hints_outstanding \([0-9]*\).*/\1/p')"
            if [[ -n "$h" && "$h" -ge 1 ]]; then hinted=$i; break 2; fi
        done
        sleep 0.1
    done
    [[ -n "$hinted" ]] && break
done
[[ -n "$hinted" ]] || { echo "cluster-smoke: FAIL no k in six tries replicated toward the dead owner; no hint recorded"; exit 1; }
echo "cluster-smoke: node $hinted holds a hint for the dead owner"

# Restart the owner from nothing on the same address: rejoin catch-up
# must pull the entries it owns back from its replicas.
echo "cluster-smoke: restarting owner node $owner for rejoin catch-up"
"$workdir/gpmetisd" -addr "${addrs[$owner]}" -devices 1 \
    -peers "$workdir/peers.json" -node-id "$owner" -cluster-probe 300ms \
    >"$workdir/node$owner.restart.log" 2>&1 &
pids[$owner]=$!
up=""
for _ in $(seq 1 50); do
    if grep -q "cluster node $owner of 3-node ring" "$workdir/node$owner.restart.log"; then up=1; break; fi
    kill -0 "${pids[$owner]}" 2>/dev/null || { cat "$workdir/node$owner.restart.log"; echo "cluster-smoke: FAIL owner died on restart"; exit 1; }
    sleep 0.1
done
[[ -n "$up" ]] || { cat "$workdir/node$owner.restart.log"; echo "cluster-smoke: FAIL restarted owner never rejoined the ring"; exit 1; }

deadline=$((SECONDS + 15))
caught_up=""
while (( SECONDS < deadline )); do
    curl -sf "http://${addrs[$owner]}/metrics" >"$workdir/owner2.prom" 2>/dev/null || { sleep 0.2; continue; }
    pulled="$(sed -n 's/^gpmetisd_cluster_repair_pulled \([0-9]*\).*/\1/p' "$workdir/owner2.prom")"
    if [[ -n "$pulled" && "$pulled" -ge 1 ]] && grep -q '^gpmetisd_cache_entries [1-9]' "$workdir/owner2.prom"; then
        caught_up=1
        break
    fi
    sleep 0.2
done
[[ -n "$caught_up" ]] || { grep -E '^gpmetisd_(cluster_|cache_)' "$workdir/owner2.prom" || true; echo "cluster-smoke: FAIL restarted owner never pulled its entries back"; exit 1; }
echo "cluster-smoke: rejoin catch-up restored the owner's cache (repair_pulled=$pulled)"

# The catch-up round itself must be observable: a summary RPC in the
# restarted owner's histograms and a trace-id-bearing repair event.
sumc="$(sed -n 's/^gpmetisd_cluster_rpc_seconds_count{[^}]*rpc="summary"} \([0-9]*\)$/\1/p' "$workdir/owner2.prom" | awk '{s+=$1} END {print s+0}')"
(( sumc >= 1 )) || { grep ^gpmetisd_cluster_rpc "$workdir/owner2.prom"; echo "cluster-smoke: FAIL restarted owner observed no anti-entropy summary RPC"; exit 1; }
curl -sf "http://${addrs[$owner]}/admin/events" >"$workdir/owner.rejoin.events.json"
rep_ev="$(grep -o '{[^{}]*"type":"cluster_repair"[^{}]*}' "$workdir/owner.rejoin.events.json" | head -1)"
[[ -n "$rep_ev" ]] || { echo "cluster-smoke: FAIL restarted owner recorded no cluster_repair event"; exit 1; }
grep -q '"trace_id":"' <<<"$rep_ev" || { echo "cluster-smoke: FAIL cluster_repair event carries no trace_id: $rep_ev"; exit 1; }
echo "cluster-smoke: anti-entropy catch-up traced (summary RPCs observed, repair event carries a trace)"

# The restarted owner now serves its digest locally, with no recompute.
"$workdir/gpmetis" -cluster "${addrs[$owner]}" -k 16 -json -o "$workdir/run4.part" \
    "$workdir/smoke.metis" >"$workdir/run4.json"
grep -q '"cached": true' "$workdir/run4.json" || { cat "$workdir/run4.json"; echo "cluster-smoke: FAIL restarted owner missed its repaired cache"; exit 1; }
cmp -s "$workdir/run1.part" "$workdir/run4.part" || { echo "cluster-smoke: FAIL repaired partition differs from the original"; exit 1; }
jc="$(curl -sf "http://${addrs[$owner]}/metrics" | sed -n 's/^gpmetisd_jobs_completed \([0-9]*\).*/\1/p')"
[[ -z "$jc" || "$jc" -eq 0 ]] || { echo "cluster-smoke: FAIL restarted owner recomputed a repaired job (jobs_completed=$jc)"; exit 1; }

# The planted hint must drain back to the restarted owner once probes
# reinstate it: no hints left anywhere, a traced hint-drain event on
# the hinted node, and handoff_put observations in its histograms.
deadline=$((SECONDS + 15))
drained=""
while (( SECONDS < deadline )); do
    left=0
    for i in 0 1 2; do
        h="$(curl -sf "http://${addrs[$i]}/metrics" | sed -n 's/^gpmetisd_cluster_handoff_hints_outstanding \([0-9]*\).*/\1/p')"
        left=$((left + ${h:-0}))
    done
    if (( left == 0 )); then drained=1; break; fi
    sleep 0.2
done
[[ -n "$drained" ]] || { echo "cluster-smoke: FAIL $left hints still undelivered with the ring whole"; exit 1; }
curl -sf "http://${addrs[$hinted]}/admin/events" >"$workdir/hinted.events.json"
hint_ev="$(grep -o '{[^{}]*"type":"cluster_hint_drained"[^{}]*}' "$workdir/hinted.events.json" | head -1)"
[[ -n "$hint_ev" ]] || { echo "cluster-smoke: FAIL node $hinted recorded no cluster_hint_drained event"; exit 1; }
grep -q '"trace_id":"' <<<"$hint_ev" || { echo "cluster-smoke: FAIL cluster_hint_drained event carries no trace_id: $hint_ev"; exit 1; }
hput="$(curl -sf "http://${addrs[$hinted]}/metrics" | sed -n 's/^gpmetisd_cluster_rpc_seconds_count{[^}]*rpc="handoff_put"} \([0-9]*\)$/\1/p' | awk '{s+=$1} END {print s+0}')"
(( hput >= 1 )) || { echo "cluster-smoke: FAIL node $hinted observed no handoff_put RPC in the histograms"; exit 1; }
echo "cluster-smoke: hint drained to the restarted owner (traced event + handoff_put observed), no hints outstanding"

for i in 0 1 2; do
    [[ -n "${pids[$i]}" ]] && kill "${pids[$i]}" 2>/dev/null || true
done
echo "cluster-smoke: OK"
