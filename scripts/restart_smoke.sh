#!/usr/bin/env bash
# restart_smoke.sh - kill -9 / restart recovery smoke test of gpmetisd.
#
# Boots gpmetisd with a durable journal and a checkpoint directory,
# completes one job, then kills the daemon with SIGKILL while a second,
# much larger job is mid-run with a checkpoint on disk. A fresh daemon
# started on the same journal must (a) serve the completed job's result
# as a cache hit, (b) re-admit the interrupted job and finish it from
# its crash checkpoint (resumed=true). Run via `make serve-smoke` or
# directly from the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill "$daemon_pid" 2>/dev/null || true
        wait "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

start_daemon() { # $1 = log file; prints nothing, sets daemon_pid and base
    "$workdir/gpmetisd" -addr 127.0.0.1:0 -devices 1 \
        -journal "$workdir/journal.jsonl" -checkpoint-dir "$workdir/ckpt" \
        >"$1" 2>&1 &
    daemon_pid=$!
    base=""
    for _ in $(seq 1 50); do
        base="$(sed -n 's/^gpmetisd: listening on \(http:\/\/[^ ]*\).*/\1/p' "$1")"
        [[ -n "$base" ]] && break
        kill -0 "$daemon_pid" 2>/dev/null || { cat "$1"; echo "restart-smoke: FAIL daemon died on startup"; exit 1; }
        sleep 0.1
    done
    [[ -n "$base" ]] || { echo "restart-smoke: FAIL daemon never reported its address"; exit 1; }
}

echo "restart-smoke: building binaries and graphs"
go build -o "$workdir/gpmetisd" ./cmd/gpmetisd
go build -o "$workdir/gpmetis" ./cmd/gpmetis
go run ./cmd/graphgen -family delaunay -n 20000 -seed 1 -o "$workdir/quick.metis" >/dev/null
go run ./cmd/graphgen -family delaunay -n 400000 -seed 2 -o "$workdir/slow.metis" >/dev/null
mkdir -p "$workdir/ckpt"

start_daemon "$workdir/daemon1.log"
echo "restart-smoke: daemon at $base (journal + checkpoints in $workdir)"

echo "restart-smoke: completing a quick job"
"$workdir/gpmetis" -server "$base" -k 8 -json -o "$workdir/quick1.part" \
    "$workdir/quick.metis" >"$workdir/quick1.json"
grep -q '"edge_cut"' "$workdir/quick1.json" || { cat "$workdir/quick1.json"; echo "restart-smoke: FAIL quick job carries no result"; exit 1; }

echo "restart-smoke: starting a slow job and waiting for its checkpoint"
"$workdir/gpmetis" -server "$base" -k 16 -o "$workdir/slow.part" \
    "$workdir/slow.metis" >/dev/null 2>&1 &
client_pid=$!
ok=""
for _ in $(seq 1 300); do
    if compgen -G "$workdir/ckpt/*.ckpt" >/dev/null; then ok=1; break; fi
    sleep 0.1
done
[[ -n "$ok" ]] || { cat "$workdir/daemon1.log"; echo "restart-smoke: FAIL slow job never wrote a checkpoint"; exit 1; }

echo "restart-smoke: SIGKILL while the slow job is mid-run"
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
kill "$client_pid" 2>/dev/null || true
wait "$client_pid" 2>/dev/null || true

# The interrupted job's ID is the last "running" record in the journal.
slow_id="$(grep -o '"type":"running","id":"[a-z0-9]*"' "$workdir/journal.jsonl" | tail -1 | sed 's/.*"id":"\([a-z0-9]*\)".*/\1/')"
[[ -n "$slow_id" ]] || { echo "restart-smoke: FAIL no running record in the journal"; exit 1; }

echo "restart-smoke: restarting on the same journal"
start_daemon "$workdir/daemon2.log"
echo "restart-smoke: daemon back at $base, interrupted job $slow_id"

echo "restart-smoke: completed result must survive as a cache hit"
"$workdir/gpmetis" -server "$base" -k 8 -json -o "$workdir/quick2.part" \
    "$workdir/quick.metis" >"$workdir/quick2.json"
grep -q '"cached": true' "$workdir/quick2.json" || { cat "$workdir/quick2.json"; echo "restart-smoke: FAIL recovered result was not served from the cache"; exit 1; }
cmp -s "$workdir/quick1.part" "$workdir/quick2.part" || { echo "restart-smoke: FAIL recovered partition differs from the original"; exit 1; }

echo "restart-smoke: interrupted job must finish from its checkpoint"
state=""
for _ in $(seq 1 600); do
    curl -sf "$base/jobs/$slow_id" >"$workdir/slow_status.json" || { echo "restart-smoke: FAIL job $slow_id unknown after restart"; exit 1; }
    if grep -q '"state":"done"' "$workdir/slow_status.json"; then state=done; break; fi
    if grep -q '"state":"failed"\|"state":"canceled"' "$workdir/slow_status.json"; then break; fi
    sleep 0.2
done
[[ "$state" == done ]] || { cat "$workdir/slow_status.json"; echo "restart-smoke: FAIL interrupted job did not complete after restart"; exit 1; }
grep -q '"resumed":true' "$workdir/slow_status.json" || { cat "$workdir/slow_status.json"; echo "restart-smoke: FAIL job completed but was not resumed from its checkpoint"; exit 1; }
grep -q '"edge_cut"' "$workdir/slow_status.json" || { cat "$workdir/slow_status.json"; echo "restart-smoke: FAIL resumed job carries no result"; exit 1; }

# The daemon's own recovery counters must agree. (The JSON snapshot
# moved to /metrics.json when /metrics became Prometheus exposition.)
curl -sf "$base/metrics.json" >"$workdir/metrics.json"
grep -q '"jobs.readmitted": 1' "$workdir/metrics.json" || { cat "$workdir/metrics.json"; echo "restart-smoke: FAIL expected jobs.readmitted = 1"; exit 1; }
grep -q '"jobs.resumed": 1' "$workdir/metrics.json" || { cat "$workdir/metrics.json"; echo "restart-smoke: FAIL expected jobs.resumed = 1"; exit 1; }

kill "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "restart-smoke: OK"
