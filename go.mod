module gpmetis

go 1.22
