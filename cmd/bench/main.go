// Command bench regenerates every table and figure of the paper's
// evaluation (Section IV) plus the design-choice ablations from DESIGN.md.
//
// Usage:
//
//	bench [-scale N] [-k K] [-runs R] [-seed S] [-v] [-metrics dir] [experiments...]
//	bench -compare baseline.json [-v]
//
// -metrics writes one machine-readable BENCH_<input>.json per input graph
// into dir alongside whatever tables were requested.
//
// -compare is the perf-regression gate: it loads a snapshot written by
// -snapshot, re-runs the benchmark at the snapshot's own scale, k, runs,
// and seed (the -scale/-k/-runs/-seed flags are ignored so the
// comparison is apples-to-apples by construction), and exits 2 when any
// input×algorithm pair regresses — modeled seconds more than 10% over
// baseline, or edge cut more than 2% over. Improvements never fail.
//
// Experiments: table1, fig5, table2, table3, shape, ablation-merge,
// ablation-threshold, ablation-coalescing, ablation-conflicts,
// extended-ptscotch, extended-multigpu, extended-classic, extended-ksweep,
// all (default: table1 fig5 table2 table3 shape).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gpmetis/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 20, "generate inputs at 1/scale of the paper's Table I sizes")
	k := flag.Int("k", 64, "number of partitions (paper: 64)")
	runs := flag.Int("runs", 3, "seeded runs per measurement; the minimum is reported (paper: 3)")
	seed := flag.Int64("seed", 1, "base seed")
	verbose := flag.Bool("v", false, "print per-run progress")
	metricsDir := flag.String("metrics", "", "write one BENCH_<input>.json per input graph into this directory")
	snapshot := flag.String("snapshot", "", "write a single-file perf trajectory record (see BENCH_baseline.json) to this path")
	compare := flag.String("compare", "", "perf-regression gate: re-run at this baseline snapshot's config and exit 2 on regression")
	flag.Parse()

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	if *compare != "" {
		runCompare(*compare, progress)
		return
	}
	cfg := experiments.Config{
		ScaleDiv: *scale,
		K:        *k,
		Runs:     *runs,
		Seed:     *seed,
		Progress: progress,
	}

	want := flag.Args()
	if len(want) == 0 {
		want = []string{"table1", "fig5", "table2", "table3", "shape"}
	}
	if len(want) == 1 && want[0] == "all" {
		want = []string{"table1", "fig5", "table2", "table3", "shape",
			"ablation-merge", "ablation-threshold", "ablation-coalescing", "ablation-conflicts",
			"extended-ptscotch", "extended-multigpu", "extended-classic", "extended-ksweep"}
	}

	needRows := *metricsDir != "" || *snapshot != ""
	for _, w := range want {
		switch w {
		case "fig5", "table2", "table3", "shape":
			needRows = true
		}
	}

	var rows []experiments.Row
	if needRows {
		var err error
		rows, err = experiments.RunAll(cfg)
		if err != nil {
			fail(err)
		}
	}
	if *metricsDir != "" {
		if err := experiments.WriteBenchMetrics(*metricsDir, cfg, rows); err != nil {
			fail(err)
		}
	}
	if *snapshot != "" {
		if err := experiments.WriteBenchSnapshot(*snapshot, cfg, rows); err != nil {
			fail(err)
		}
	}

	for _, w := range want {
		switch w {
		case "table1":
			inputs, err := experiments.Inputs(cfg)
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.FormatTable1(cfg, inputs))
		case "fig5":
			fmt.Println(experiments.FormatFig5(rows))
		case "table2":
			fmt.Println(experiments.FormatTable2(rows))
		case "table3":
			fmt.Println(experiments.FormatTable3(rows))
		case "shape":
			if bad := experiments.CheckShape(rows); len(bad) > 0 {
				fmt.Println("SHAPE CHECK: deviations from the paper's comparative claims:")
				for _, b := range bad {
					fmt.Println("  -", b)
				}
			} else {
				fmt.Println("SHAPE CHECK: all of the paper's comparative claims hold.")
			}
			fmt.Println()
		case "ablation-merge":
			out, err := experiments.AblationMerge(cfg)
			if err != nil {
				fail(err)
			}
			fmt.Println(out)
		case "ablation-threshold":
			out, err := experiments.AblationThreshold(cfg)
			if err != nil {
				fail(err)
			}
			fmt.Println(out)
		case "ablation-coalescing":
			out, err := experiments.AblationCoalescing(cfg)
			if err != nil {
				fail(err)
			}
			fmt.Println(out)
		case "ablation-conflicts":
			out, err := experiments.AblationConflicts(cfg)
			if err != nil {
				fail(err)
			}
			fmt.Println(out)
		case "extended-ptscotch":
			out, err := experiments.ExtendedComparison(cfg)
			if err != nil {
				fail(err)
			}
			fmt.Println(out)
		case "extended-multigpu":
			out, err := experiments.MultiGPUScaling(cfg)
			if err != nil {
				fail(err)
			}
			fmt.Println(out)
		case "extended-classic":
			out, err := experiments.ClassicComparison(cfg)
			if err != nil {
				fail(err)
			}
			fmt.Println(out)
		case "extended-ksweep":
			out, err := experiments.KSweep(cfg)
			if err != nil {
				fail(err)
			}
			fmt.Println(out)
		default:
			fail(fmt.Errorf("unknown experiment %q", w))
		}
	}
}

// runCompare executes the perf-regression gate against a baseline
// snapshot and terminates the process: exit 0 on pass, 2 on regression,
// 1 on operational errors (unreadable baseline, benchmark failure). The
// distinct exit code lets CI tell "the gate tripped" from "the gate
// could not run".
func runCompare(path string, progress io.Writer) {
	base, err := experiments.ReadBenchSnapshot(path)
	if err != nil {
		fail(err)
	}
	cfg := experiments.SnapshotConfig(base)
	cfg.Progress = progress
	fmt.Printf("bench: comparing against %s (scale=1/%d k=%d runs=%d seed=%d)\n",
		path, cfg.ScaleDiv, cfg.K, cfg.Runs, cfg.Seed)
	rows, err := experiments.RunAll(cfg)
	if err != nil {
		fail(err)
	}
	cur := experiments.BuildBenchSnapshot(cfg, rows)
	regs := experiments.CompareSnapshots(base, &cur)
	if len(regs) == 0 {
		fmt.Println("bench: perf gate PASSED — no regressions against the baseline.")
		return
	}
	fmt.Fprintf(os.Stderr, "bench: perf gate FAILED — %d regression(s) against %s:\n", len(regs), path)
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "  -", r)
	}
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
