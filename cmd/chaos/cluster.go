package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"time"

	"gpmetis"
	"gpmetis/internal/cluster"
	"gpmetis/internal/obs"
	"gpmetis/internal/server"
)

// ringMember is one in-process node of the chaos ring: a real server, a
// cluster routing layer, and a real loopback listener so the members
// dial each other exactly as separate daemons would.
type ringMember struct {
	peer  cluster.Peer
	srv   *server.Server
	node  *cluster.Node
	hs    *http.Server
	alive bool
}

func (m *ringMember) base() string { return "http://" + m.peer.Addr }

// chaosCluster: a seeded node-death storm against a 3-node ring. A
// stream of submissions enters at random members while one member is
// killed mid-storm. Invariants:
//
//   - a submission to a live entry node either gets accepted or is shed
//     with a typed 4xx/5xx rejection — never an untyped failure;
//   - every accepted job whose entry node survives reaches a terminal
//     state: done, or unreachable because its owner died — in which
//     case resubmitting the identical request to any survivor must
//     complete it (the failover path), so no job is ever lost;
//   - after the storm, every distinct request resubmitted to a survivor
//     completes with a valid partition.
func chaosCluster(rng *rand.Rand) error {
	const nNodes = 3
	lns := make([]net.Listener, nNodes)
	peers := make([]cluster.Peer, nNodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		lns[i] = ln
		peers[i] = cluster.Peer{ID: i, Addr: ln.Addr().String()}
	}
	members := make([]*ringMember, nNodes)
	for i := range members {
		s := server.New(server.Config{
			Devices: 1, QueueCap: 32, CacheCap: 32, Logger: obs.DiscardLogger(),
			JobIDPrefix: fmt.Sprintf("n%d-j", i),
		})
		nd, err := cluster.New(cluster.Config{
			NodeID: i, Peers: peers, Server: s,
			ProbeInterval: -1, Logger: obs.DiscardLogger(),
		})
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: nd.Handler(s.Handler())}
		go hs.Serve(lns[i])
		members[i] = &ringMember{peer: peers[i], srv: s, node: nd, hs: hs, alive: true}
	}
	defer func() {
		for _, m := range members {
			m.hs.Close()
			m.node.Close()
			m.srv.Close()
		}
	}()

	texts := make([]string, 2+rng.Intn(2))
	for i := range texts {
		n := 20 + rng.Intn(16)
		g, err := gpmetis.Grid2D(n, n)
		if err != nil {
			return err
		}
		var sb strings.Builder
		if err := gpmetis.WriteGraph(&sb, g); err != nil {
			return err
		}
		texts[i] = sb.String()
	}

	pickAlive := func() *ringMember {
		for {
			m := members[rng.Intn(nNodes)]
			if m.alive {
				return m
			}
		}
	}

	type issued struct {
		req   server.SubmitRequest
		id    string
		entry *ringMember
	}
	var accepted []issued
	shed := 0
	total := 8 + rng.Intn(8)
	killAt := rng.Intn(total)
	victim := rng.Intn(nNodes)
	for i := 0; i < total; i++ {
		if i == killAt {
			members[victim].hs.Close() // the storm: one member dies mid-stream
			members[victim].alive = false
		}
		req := server.SubmitRequest{
			Graph: texts[rng.Intn(len(texts))],
			K:     2 + rng.Intn(6),
			Seed:  int64(1 + rng.Intn(3)),
		}
		entry := pickAlive()
		st, code, err := ringSubmit(entry.base(), req)
		if err != nil {
			return fmt.Errorf("submit %d via live node %d: %w", i, entry.peer.ID, err)
		}
		if code >= 400 {
			// A typed rejection (queue full, ring unreachable) is a legal
			// shed; anything else means the routing layer broke its contract.
			if st.errCode == "" {
				return fmt.Errorf("submit %d: untyped HTTP %d rejection", i, code)
			}
			shed++
			continue
		}
		if st.status.State == server.StateDone {
			continue // answered from a cache peek — already terminal
		}
		accepted = append(accepted, issued{req: req, id: st.status.ID, entry: entry})
	}
	if verbose {
		fmt.Printf("chaos: cluster storm: %d submitted, %d accepted, %d shed, node %d killed at %d\n",
			total, len(accepted), shed, victim, killAt)
	}

	// Every accepted job with a surviving entry must reach a terminal
	// state or report its owner unreachable — never hang, never vanish.
	orphaned := 0
	for _, job := range accepted {
		if !job.entry.alive {
			orphaned++ // its entry died; covered by the resubmission sweep
			continue
		}
		reachable, err := ringAwait(job.entry.base(), job.id)
		if err != nil {
			return fmt.Errorf("job %s via node %d: %w", job.id, job.entry.peer.ID, err)
		}
		if !reachable {
			orphaned++ // owner died mid-flight; the resubmission must heal it
		}
	}

	// The resubmission sweep: every distinct request must be servable by
	// the survivors — the ring has failed over, so nothing is lost.
	seen := map[string]bool{}
	for _, job := range accepted {
		sig := fmt.Sprintf("%d|%d|%.24s", job.req.K, job.req.Seed, job.req.Graph)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		entry := pickAlive()
		st, code, err := ringSubmit(entry.base(), job.req)
		if err != nil {
			return fmt.Errorf("resubmit via node %d: %w", entry.peer.ID, err)
		}
		if code >= 400 {
			return fmt.Errorf("resubmit via node %d rejected: HTTP %d (%s)", entry.peer.ID, code, st.errCode)
		}
		if st.status.State == server.StateDone {
			continue // a survivor already cached the result
		}
		reachable, err := ringAwait(entry.base(), st.status.ID)
		if err != nil {
			return fmt.Errorf("resubmitted job %s: %w", st.status.ID, err)
		}
		if !reachable {
			return fmt.Errorf("resubmitted job %s routed to a dead node; failover is broken", st.status.ID)
		}
	}
	if verbose && orphaned > 0 {
		fmt.Printf("chaos: cluster storm: %d jobs orphaned by the dead node, all healed by resubmission\n",
			orphaned)
	}
	return nil
}

// ringAnswer is a submission or poll response: either a job status or a
// typed error code.
type ringAnswer struct {
	status  server.JobStatus
	errCode string
}

// ringSubmit posts one job, decoding either shape.
func ringSubmit(base string, req server.SubmitRequest) (ringAnswer, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return ringAnswer{}, 0, err
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return ringAnswer{}, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		io.Copy(io.Discard, resp.Body)
		return ringAnswer{errCode: e.Code}, resp.StatusCode, nil
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return ringAnswer{}, resp.StatusCode, err
	}
	io.Copy(io.Discard, resp.Body)
	return ringAnswer{status: st}, resp.StatusCode, nil
}

// ringAwait polls a job to a terminal state via base. It returns false
// when the owning node became unreachable (typed 502) — a legal outcome
// during the storm that the caller heals by resubmitting — and errors
// on hangs, untyped failures, or bad terminal states.
func ringAwait(base, id string) (reachable bool, err error) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			return false, fmt.Errorf("poll: %w", err)
		}
		if resp.StatusCode >= 400 {
			var e server.ErrorResponse
			json.NewDecoder(resp.Body).Decode(&e)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if e.Code == server.CodeNodeUnreachable {
				return false, nil
			}
			return false, fmt.Errorf("poll: HTTP %d (%s)", resp.StatusCode, e.Code)
		}
		var st server.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return false, err
		}
		switch st.State {
		case server.StateDone:
			if st.Result == nil {
				return true, fmt.Errorf("job %s done without a result", id)
			}
			return true, nil
		case server.StateFailed, server.StateCanceled:
			return true, fmt.Errorf("job %s ended %s (%q)", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return true, fmt.Errorf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
