// Command chaos is the seeded chaos-soak harness: it hammers the
// partitioning pipeline and the serving layer with randomized fault
// scenarios, interruptions, and restarts, and checks the recovery
// invariants after every round (`make chaos`, DESIGN.md §10).
//
// Usage:
//
//	chaos [-runs 25] [-seed 1] [-start 0] [-only core|resume|daemon|overload|cluster|replication] [-v]
//
// Every run derives its private RNG from (-seed, run index), so any
// failure is replayable in isolation: on failure the harness prints a
//
//	CHAOS FAIL seed=S run=R mode=M
//
// line plus the exact single-run replay command, and exits nonzero.
//
// Modes, rotated per run unless -only pins one:
//
//	core:   a random graph, k, and fault scenario; the run must either
//	        produce a valid partition or fail with a typed error, and
//	        repeating it with identical seeds must be bit-identical.
//	resume: a run is interrupted at a random level boundary; resuming
//	        from the snapshot must reproduce the uninterrupted run's
//	        partition, edge cut, and modeled seconds exactly.
//	daemon: a journaled server accepts a burst of jobs (duplicates,
//	        faults, cancels), is shut down mid-stream, and is restarted
//	        on the same journal; every job must come back, reach a
//	        terminal state, and completed results must survive.
//	overload: a two-tenant open-loop burst overwhelms a one-device
//	        server; admission control and the brownout ladder must
//	        hold their contracts — accepted work completes or is shed
//	        (never stuck), only the over-share tenant loses jobs,
//	        unmeetable deadlines are rejected up front, and brownout
//	        begin/end events pair once the storm passes.
//	cluster: a 3-node consistent-hash ring absorbs a submission stream
//	        while one random node dies mid-storm; every accepted job
//	        must complete or be shed with a typed rejection — and every
//	        submission must be servable by the survivors afterward, so
//	        no job is ever lost to the dead node.
//	replication: a 4-node RF=2 ring replicates completed results; a
//	        kill storm (one node at a time, process and cache both)
//	        must lose no replicated entry — survivors serve every
//	        digest bit-identically at zero partition cost, pushes to
//	        the dead node become hints, and after restart the hint
//	        backlog drains to zero and rejoin catch-up restores the
//	        node's full replica duty.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gpmetis"
	"gpmetis/internal/obs"
	"gpmetis/internal/server"
)

var verbose bool

func main() {
	runs := flag.Int("runs", 25, "number of chaos rounds")
	seed := flag.Int64("seed", 1, "master seed; each run derives its own RNG from (seed, run)")
	start := flag.Int("start", 0, "first run index (for replaying one failing round)")
	only := flag.String("only", "", "pin one mode: core, resume, daemon, overload, cluster, or replication")
	flag.BoolVar(&verbose, "v", false, "log each round")
	flag.Parse()

	modes := []string{"core", "resume", "daemon", "overload", "cluster", "replication"}
	if *only != "" {
		switch *only {
		case "core", "resume", "daemon", "overload", "cluster", "replication":
			modes = []string{*only}
		default:
			fmt.Fprintf(os.Stderr, "chaos: unknown mode %q\n", *only)
			os.Exit(2)
		}
	}

	begin := time.Now()
	for r := *start; r < *start+*runs; r++ {
		mode := modes[r%len(modes)]
		rng := rand.New(rand.NewSource(*seed*1_000_003 + int64(r)))
		var err error
		switch mode {
		case "core":
			err = chaosCore(rng)
		case "resume":
			err = chaosResume(rng)
		case "daemon":
			err = chaosDaemon(rng)
		case "overload":
			err = chaosOverload(rng)
		case "cluster":
			err = chaosCluster(rng)
		case "replication":
			err = chaosReplication(rng)
		}
		if err != nil {
			fmt.Printf("CHAOS FAIL seed=%d run=%d mode=%s: %v\n", *seed, r, mode, err)
			fmt.Printf("replay: go run ./cmd/chaos -seed %d -start %d -runs 1 -only %s -v\n",
				*seed, r, mode)
			os.Exit(1)
		}
		if verbose {
			fmt.Printf("chaos: run %d (%s) ok\n", r, mode)
		}
	}
	fmt.Printf("chaos: OK — %d runs, seed %d, %.1fs\n", *runs, *seed, time.Since(begin).Seconds())
}

// randomGraph picks a small graph whose shape varies per round. The
// returned GPU threshold forces the full GPU pipeline onto it so the
// level-boundary machinery (checkpoints, fault sites) is exercised.
func randomGraph(rng *rand.Rand) (*gpmetis.Graph, int, error) {
	if rng.Intn(2) == 0 {
		n := 24 + rng.Intn(40)
		g, err := gpmetis.Grid2D(n, n+rng.Intn(7))
		return g, 256, err
	}
	g, err := gpmetis.Delaunay(2000+rng.Intn(4000), rng.Int63n(1000)+1)
	return g, 256, err
}

// faultPool is the scenario menu for core rounds; "" means a clean run.
var faultPool = []string{
	"",
	"",
	"gpu.kernel:p=0.3",
	"pcie.transfer:p=0.2",
	"gpu.memcap:cap=1M",
	"contract.hash:at=1",
	"gpu.kernel:p=0.1;pcie.transfer:p=0.1",
	"gpu.alloc:p=0.5",
}

// chaosCore: a fault-injected run must be deterministic (same seeds →
// same outcome, success or failure) and any produced partition valid.
func chaosCore(rng *rand.Rand) error {
	g, threshold, err := randomGraph(rng)
	if err != nil {
		return err
	}
	k := 2 + rng.Intn(14)
	seed := rng.Int63n(10_000) + 1
	spec := faultPool[rng.Intn(len(faultPool))]
	faultSeed := rng.Int63n(10_000) + 1
	degrade := rng.Intn(2) == 0

	run := func() (*gpmetis.Result, error) {
		inj, err := gpmetis.ParseFaultScenario(faultSeed, spec)
		if err != nil {
			return nil, err
		}
		return gpmetis.Partition(g, k, gpmetis.Options{
			Seed:         seed,
			GPUThreshold: threshold,
			Faults:       inj,
			Degrade:      degrade,
			Verify:       true,
		})
	}
	res1, err1 := run()
	res2, err2 := run()
	if (err1 == nil) != (err2 == nil) {
		return fmt.Errorf("nondeterministic outcome under faults %q: %v vs %v", spec, err1, err2)
	}
	if err1 != nil {
		if err2.Error() != err1.Error() {
			return fmt.Errorf("nondeterministic error under faults %q: %q vs %q", spec, err1, err2)
		}
		return nil // a deterministic typed failure is a legal outcome
	}
	if err := validPartition(g, res1.Part, k); err != nil {
		return fmt.Errorf("faults %q: %w", spec, err)
	}
	if err := sameResult(res1, res2); err != nil {
		return fmt.Errorf("repeat run under faults %q: %w", spec, err)
	}
	return nil
}

// chaosResume: interrupt a run at a random level boundary, resume from
// the snapshot, and demand the uninterrupted run's exact result.
func chaosResume(rng *rand.Rand) error {
	g, threshold, err := randomGraph(rng)
	if err != nil {
		return err
	}
	k := 2 + rng.Intn(14)
	seed := rng.Int63n(10_000) + 1

	// Pass 1: the uninterrupted reference, counting boundaries.
	boundaries := 0
	ref, err := gpmetis.Partition(g, k, gpmetis.Options{
		Seed:         seed,
		GPUThreshold: threshold,
		Checkpoint:   func(*gpmetis.Checkpoint) error { boundaries++; return nil },
	})
	if err != nil {
		return err
	}
	if boundaries == 0 {
		return errors.New("run produced no checkpoint boundaries")
	}

	// Pass 2: snapshot at a random boundary (the "crash point").
	target := 1 + rng.Intn(boundaries)
	dir, err := os.MkdirTemp("", "chaos-ckpt-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "run.ckpt")
	n := 0
	if _, err := gpmetis.Partition(g, k, gpmetis.Options{
		Seed:         seed,
		GPUThreshold: threshold,
		Checkpoint: func(c *gpmetis.Checkpoint) error {
			n++
			if n == target {
				return gpmetis.WriteCheckpointFile(path, c)
			}
			return nil
		},
	}); err != nil {
		return err
	}

	// Pass 3: resume from the crash point.
	c, err := gpmetis.ReadCheckpointFile(path)
	if err != nil {
		return fmt.Errorf("reload snapshot %d/%d: %w", target, boundaries, err)
	}
	got, err := gpmetis.Partition(g, k, gpmetis.Options{
		Seed:         seed,
		GPUThreshold: threshold,
		Resume:       c,
	})
	if err != nil {
		return fmt.Errorf("resume from snapshot %d/%d: %w", target, boundaries, err)
	}
	if err := sameResult(ref, got); err != nil {
		return fmt.Errorf("resume from snapshot %d/%d: %w", target, boundaries, err)
	}
	return nil
}

// chaosDaemon: a journaled server loses a burst of jobs to a shutdown
// and must account for every one of them after restart.
func chaosDaemon(rng *rand.Rand) error {
	dir, err := os.MkdirTemp("", "chaos-daemon-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := server.Config{
		Devices:       1 + rng.Intn(3),
		QueueCap:      64,
		JournalPath:   filepath.Join(dir, "journal.jsonl"),
		CheckpointDir: dir,
		Logger:        obs.DiscardLogger(), // chaos output stays clean
	}
	s1 := server.New(cfg)

	texts := make([]string, 3)
	for i := range texts {
		n := 16 + rng.Intn(16)
		g, err := gpmetis.Grid2D(n, n)
		if err != nil {
			return err
		}
		var sb strings.Builder
		if err := gpmetis.WriteGraph(&sb, g); err != nil {
			return err
		}
		texts[i] = sb.String()
	}

	type submitted struct {
		id      string
		done    bool
		edgeCut int
	}
	var jobs []*server.Job
	total := 6 + rng.Intn(8)
	for i := 0; i < total; i++ {
		req := &server.SubmitRequest{
			Graph: texts[rng.Intn(len(texts))],
			K:     2 + rng.Intn(6),
			Seed:  int64(1 + rng.Intn(3)),
		}
		if rng.Intn(4) == 0 {
			req.Faults = "gpu.memcap:cap=1M"
			req.Degrade = true
		}
		if rng.Intn(5) == 0 {
			req.NoCache = true
		}
		j, err := s1.Submit(req)
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		if rng.Intn(6) == 0 {
			j.Cancel()
		}
		jobs = append(jobs, j)
	}
	// Let a random prefix finish; the rest is lost to the "crash".
	settle := rng.Intn(len(jobs) + 1)
	for i := 0; i < settle; i++ {
		select {
		case <-jobs[i].Done():
		case <-time.After(30 * time.Second):
			return fmt.Errorf("job %s stuck before shutdown", jobs[i].ID)
		}
	}
	before := make([]submitted, len(jobs))
	for i, j := range jobs {
		st := j.Status()
		before[i] = submitted{id: j.ID}
		if st.State == server.StateDone && st.Result != nil {
			before[i].done = true
			before[i].edgeCut = st.Result.EdgeCut
		}
	}
	s1.Close()

	// Restart on the same journal: every job must come back and finish.
	s2 := server.New(cfg)
	defer s2.Close()
	for _, b := range before {
		j, ok := s2.Job(b.id)
		if !ok {
			return fmt.Errorf("job %s vanished across restart", b.id)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			st := j.Status()
			if st.State == server.StateDone || st.State == server.StateFailed ||
				st.State == server.StateCanceled {
				if b.done {
					if st.State != server.StateDone || st.Result == nil {
						return fmt.Errorf("job %s was done before restart but is %s after", b.id, st.State)
					}
					if st.Result.EdgeCut != b.edgeCut {
						return fmt.Errorf("job %s cut changed across restart: %d -> %d",
							b.id, b.edgeCut, st.Result.EdgeCut)
					}
				}
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("job %s stuck in %s after restart", b.id, st.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return nil
}

// chaosOverload: an open-loop two-tenant burst against a one-device
// server with a deliberately unmeetable queue-wait objective. The
// overload-control invariants must hold on every seed:
//
//   - every accepted job reaches a terminal state, and that state is
//     either done or a brownout shed — nothing gets stuck and nothing
//     accepted fails a deadline;
//   - only the low-weight "free" tenant (the one holding more than its
//     fair share of the queue) is shed; every accepted "paid" job
//     completes;
//   - once the estimator has real service times, a 1ms deadline is
//     rejected at admission with code "deadline_unmeetable";
//   - after the storm drains and the burn windows empty, the ladder
//     steps back down: brownout_begin/brownout_end events pair up and
//     shed events match the shed jobs.
func chaosOverload(rng *rand.Rand) error {
	g, err := gpmetis.Delaunay(2500+rng.Intn(2500), rng.Int63n(1000)+1)
	if err != nil {
		return err
	}
	var sb strings.Builder
	if err := gpmetis.WriteGraph(&sb, g); err != nil {
		return err
	}
	text := sb.String()

	cfg := server.Config{
		Devices:     1,
		QueueCap:    8,
		CacheCap:    -1, // every job must really run, or there is no load
		EventBuffer: 1024,
		Logger:      obs.DiscardLogger(),
		Tenants: server.TenantsConfig{
			"paid": {Weight: 3},
			"free": {Weight: 1},
		},
		// A 1ns wait objective makes every dequeue a miss, so the ladder
		// engages deterministically once MinSamples dequeues land; the
		// short windows let it step back down within the round.
		Brownout: server.BrownoutConfig{
			QueueWait:  time.Nanosecond,
			FastWindow: 300 * time.Millisecond,
			SlowWindow: 600 * time.Millisecond,
			MinSamples: 3,
		},
	}
	s := server.New(cfg)
	defer s.Close()

	type tracked struct {
		job    *server.Job
		tenant string
	}
	var accepted []tracked
	rejected := map[string]int{}
	total := 30 + rng.Intn(21)
	paidEvery := 3 + rng.Intn(2) // paid is 1/3 or 1/4 of the mix
	for i := 0; i < total; i++ {
		tenant := "free"
		if i%paidEvery == 0 {
			tenant = "paid"
		}
		// High k keeps service time well above the per-submit parse cost,
		// so the queue actually builds depth during the burst.
		j, err := s.Submit(&server.SubmitRequest{
			Graph:   text,
			K:       8 + rng.Intn(9),
			Seed:    int64(i + 1),
			NoCache: true,
			Tenant:  tenant,
		})
		if err != nil {
			code := server.OverloadCode(err)
			if code == "" {
				return fmt.Errorf("burst submit %d (%s): unexpected error: %w", i, tenant, err)
			}
			rejected[code]++
			continue
		}
		accepted = append(accepted, tracked{j, tenant})
	}
	// Queue-full 429s are possible here but not guaranteed: shedding on
	// each admission tick can drain the queue as fast as the burst fills
	// it, which is the ladder working, not a missing rejection.
	if verbose && len(rejected) > 0 {
		fmt.Printf("chaos: overload burst rejections: %v\n", rejected)
	}

	for _, t := range accepted {
		select {
		case <-t.job.Done():
		case <-time.After(60 * time.Second):
			return fmt.Errorf("job %s (%s) stuck under overload", t.job.ID, t.tenant)
		}
	}
	shed := 0
	for _, t := range accepted {
		st := t.job.Status()
		switch {
		case st.State == server.StateDone:
		case st.State == server.StateFailed && strings.HasPrefix(st.Error, "shed"):
			if t.tenant != "free" {
				return fmt.Errorf("tenant %q job %s was shed; only the over-share free tenant may be",
					t.tenant, st.ID)
			}
			shed++
		default:
			return fmt.Errorf("job %s (%s) ended %s (%q); accepted work must complete or be shed",
				st.ID, t.tenant, st.State, st.Error)
		}
	}
	if shed == 0 {
		return errors.New("overload burst shed nothing; the brownout ladder never engaged")
	}

	// The burst fed the estimator real service times for this graph, so
	// a 1ms deadline is now provably unmeetable at admission.
	probes := 1 + rng.Intn(3)
	for i := 0; i < probes; i++ {
		_, err := s.Submit(&server.SubmitRequest{
			Graph: text, K: 2, Seed: 999, NoCache: true, Tenant: "free", DeadlineMs: 1,
		})
		if code := server.OverloadCode(err); code != server.CodeDeadlineUnmeetable {
			return fmt.Errorf("1ms-deadline probe %d: err %v (code %q), want %q",
				i, err, code, server.CodeDeadlineUnmeetable)
		}
	}

	// Outlive both burn windows, then show the ladder steps down: the
	// next admission re-evaluates an empty window and emits brownout_end.
	time.Sleep(700 * time.Millisecond)
	last, err := s.Submit(&server.SubmitRequest{Graph: text, K: 2, Seed: 424242, NoCache: true})
	if err != nil {
		return fmt.Errorf("post-storm submit: %w", err)
	}
	select {
	case <-last.Done():
	case <-time.After(60 * time.Second):
		return errors.New("post-storm job stuck")
	}
	if st := last.Status(); st.State != server.StateDone {
		return fmt.Errorf("post-storm job ended %s (%q)", st.State, st.Error)
	}

	var buf bytes.Buffer
	if err := s.DumpEvents(&buf); err != nil {
		return err
	}
	var dump struct {
		Events []struct {
			Type string `json:"type"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		return fmt.Errorf("event dump: %w", err)
	}
	begins, ends, shedEvents := 0, 0, 0
	for _, e := range dump.Events {
		switch e.Type {
		case obs.EvBrownoutBegin:
			begins++
		case obs.EvBrownoutEnd:
			ends++
		case obs.EvShed:
			shedEvents++
		}
	}
	if begins == 0 || begins != ends {
		return fmt.Errorf("brownout events unpaired: %d begin / %d end", begins, ends)
	}
	if shedEvents != shed {
		return fmt.Errorf("%d shed events for %d shed jobs", shedEvents, shed)
	}
	return nil
}

// validPartition checks every vertex is assigned a partition in range.
func validPartition(g *gpmetis.Graph, part []int, k int) error {
	if len(part) != g.NumVertices() {
		return fmt.Errorf("partition has %d entries for %d vertices", len(part), g.NumVertices())
	}
	for v, p := range part {
		if p < 0 || p >= k {
			return fmt.Errorf("vertex %d assigned to partition %d (k=%d)", v, p, k)
		}
	}
	return nil
}

// sameResult demands bit-identical outcomes.
func sameResult(a, b *gpmetis.Result) error {
	if a.EdgeCut != b.EdgeCut {
		return fmt.Errorf("edge cut %d != %d", b.EdgeCut, a.EdgeCut)
	}
	if a.ModeledSeconds != b.ModeledSeconds {
		return fmt.Errorf("modeled seconds %.17g != %.17g", b.ModeledSeconds, a.ModeledSeconds)
	}
	for i := range a.Part {
		if a.Part[i] != b.Part[i] {
			return fmt.Errorf("part[%d] = %d != %d", i, b.Part[i], a.Part[i])
		}
	}
	return nil
}
