package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"time"

	"gpmetis"
	"gpmetis/internal/cluster"
	"gpmetis/internal/obs"
	"gpmetis/internal/server"
)

// chaosReplication: a seeded kill storm against a 4-node RF=2 ring that
// pins the replication durability contract:
//
//   - with any one node dead (up to R−1), every digest that finished
//     replicating is still served — bit-identical and at zero modeled
//     partition cost — by the survivors;
//   - a completion whose replica target is down becomes a handoff hint,
//     and hints_outstanding drains to zero once the peer is back;
//   - a killed node loses its process AND its cache; after restart,
//     rejoin catch-up plus hint drains restore its full replica duty,
//     so the next kill of a different node still loses nothing;
//   - all replica, handoff, and repair traffic lands in the ring's
//     modeled network accounting.
func chaosReplication(rng *rand.Rand) error {
	const nNodes = 4
	lns := make([]net.Listener, nNodes)
	peers := make([]cluster.Peer, nNodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		lns[i] = ln
		peers[i] = cluster.Peer{ID: i, Addr: ln.Addr().String()}
	}
	boot := func(i int, ln net.Listener) (*ringMember, error) {
		s := server.New(server.Config{
			Devices: 1, QueueCap: 32, CacheCap: 64, Logger: obs.DiscardLogger(),
			JobIDPrefix: fmt.Sprintf("n%d-j", i),
		})
		nd, err := cluster.New(cluster.Config{
			NodeID: i, Peers: peers, Server: s, Replicas: 2,
			ProbeInterval: 20 * time.Millisecond, AntiEntropyInterval: -1,
			Logger: obs.DiscardLogger(),
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		hs := &http.Server{Handler: nd.Handler(s.Handler())}
		go hs.Serve(ln)
		return &ringMember{peer: peers[i], srv: s, node: nd, hs: hs, alive: true}, nil
	}
	members := make([]*ringMember, nNodes)
	for i := range members {
		m, err := boot(i, lns[i])
		if err != nil {
			return err
		}
		members[i] = m
	}
	defer func() {
		for _, m := range members {
			m.hs.Close()
			m.node.Close()
			m.srv.Close()
		}
	}()
	ring := members[0].node.Ring() // static member list; every view agrees

	texts := make([]string, 2)
	for i := range texts {
		n := 18 + rng.Intn(10)
		g, err := gpmetis.Grid2D(n, n+rng.Intn(5))
		if err != nil {
			return err
		}
		var sb strings.Builder
		if err := gpmetis.WriteGraph(&sb, g); err != nil {
			return err
		}
		texts[i] = sb.String()
	}

	// replicaSet is the pair of members that must hold a digest (RF=2).
	replicaSet := func(key string) []*ringMember {
		succs := ring.Successors(key)
		return []*ringMember{members[succs[0].ID], members[succs[1].ID]}
	}
	fullyReplicated := func(key string) bool {
		for _, m := range replicaSet(key) {
			if _, ok := m.srv.PeekCached(key); !ok {
				return false
			}
		}
		return true
	}
	hintsOutstanding := func() int64 {
		var total int64
		for _, m := range members {
			total += m.node.HintsOutstanding()
		}
		return total
	}
	liveModeledSeconds := func() (float64, error) {
		total := 0.0
		for _, m := range members {
			if !m.alive {
				continue
			}
			v, err := ringCounterValue(m.base(), "modeled.seconds")
			if err != nil {
				return 0, fmt.Errorf("node %d metrics: %w", m.peer.ID, err)
			}
			total += v
		}
		return total, nil
	}
	netModeled := func() float64 {
		total := 0.0
		for _, m := range members {
			total += m.node.Status().NetModeledSeconds
		}
		return total
	}

	// Phase 1: distinct jobs complete and replicate fully.
	type entry struct {
		req server.SubmitRequest
		key string
		res *server.JobResult
	}
	var entries []entry
	total := 4 + rng.Intn(3)
	for i := 0; i < total; i++ {
		req := server.SubmitRequest{
			Graph: texts[rng.Intn(len(texts))],
			K:     2 + rng.Intn(5),
			Seed:  int64(100 + i),
		}
		keyReq := req
		key, err := server.KeyForRequest(&keyReq)
		if err != nil {
			return err
		}
		m := members[rng.Intn(nNodes)]
		st, code, err := ringSubmit(m.base(), req)
		if err != nil || code >= 400 {
			return fmt.Errorf("phase-1 submit %d via node %d: code=%d err=%v", i, m.peer.ID, code, err)
		}
		if st.status.State != server.StateDone {
			if _, err := ringAwait(m.base(), st.status.ID); err != nil {
				return fmt.Errorf("phase-1 job %d: %w", i, err)
			}
		}
		entries = append(entries, entry{req: req, key: key})
	}
	for i := range entries {
		e := &entries[i]
		if err := waitChaos(10*time.Second, func() bool { return fullyReplicated(e.key) }); err != nil {
			return fmt.Errorf("digest %.12s never fully replicated: %w", e.key, err)
		}
		res, ok := replicaSet(e.key)[0].srv.PeekCached(e.key)
		if !ok {
			return fmt.Errorf("digest %.12s vanished from its owner", e.key)
		}
		e.res = res
	}
	netAfterPhase1 := netModeled()
	if netAfterPhase1 <= 0 {
		return fmt.Errorf("replication charged no modeled network time")
	}

	rounds := 1 + rng.Intn(2)
	for round := 0; round < rounds; round++ {
		victim := members[rng.Intn(nNodes)]

		// Kill the victim: process and cache both die, as kill -9 would.
		victim.hs.Close()
		victim.node.Close()
		victim.srv.Close()
		victim.alive = false
		if verbose {
			fmt.Printf("chaos: replication round %d: killed node %d\n", round, victim.peer.ID)
		}

		// Every replicated digest is still served by the survivors:
		// bit-identical, zero modeled partition seconds anywhere.
		modeledBefore, err := liveModeledSeconds()
		if err != nil {
			return err
		}
		for _, e := range entries {
			var m *ringMember
			for {
				m = members[rng.Intn(nNodes)]
				if m.alive {
					break
				}
			}
			st, code, err := ringSubmit(m.base(), e.req)
			if err != nil || code >= 400 {
				return fmt.Errorf("round %d: replicated digest %.12s unreadable via node %d: code=%d err=%v",
					round, e.key, m.peer.ID, code, err)
			}
			if st.status.State != server.StateDone || !st.status.Cached {
				return fmt.Errorf("round %d: digest %.12s recomputed (state=%s cached=%t); replica read must be a cache hit",
					round, e.key, st.status.State, st.status.Cached)
			}
			if st.status.Result.EdgeCut != e.res.EdgeCut {
				return fmt.Errorf("round %d: digest %.12s cut changed: %d -> %d",
					round, e.key, e.res.EdgeCut, st.status.Result.EdgeCut)
			}
			for v, p := range st.status.Result.Part {
				if p != e.res.Part[v] {
					return fmt.Errorf("round %d: digest %.12s differs at vertex %d (%d vs %d)",
						round, e.key, v, p, e.res.Part[v])
				}
			}
		}
		modeledAfter, err := liveModeledSeconds()
		if err != nil {
			return err
		}
		if modeledAfter != modeledBefore {
			return fmt.Errorf("round %d: replica reads charged %.9f modeled partition seconds",
				round, modeledAfter-modeledBefore)
		}

		// A completion whose replica set includes the dead node leaves a
		// hint on the surviving set member.
		var hintReq server.SubmitRequest
		var hintKey string
		var hinter *ringMember
		for seed := int64(1000 * (round + 1)); ; seed++ {
			req := server.SubmitRequest{Graph: texts[0], K: 3, Seed: seed}
			keyReq := req
			key, err := server.KeyForRequest(&keyReq)
			if err != nil {
				return err
			}
			set := replicaSet(key)
			if set[0] == victim {
				hintReq, hintKey, hinter = req, key, set[1]
				break
			}
			if set[1] == victim {
				hintReq, hintKey, hinter = req, key, set[0]
				break
			}
		}
		st, code, err := ringSubmit(hinter.base(), hintReq)
		if err != nil || code >= 400 {
			return fmt.Errorf("round %d: hint-bait submit: code=%d err=%v", round, code, err)
		}
		if st.status.State != server.StateDone {
			if _, err := ringAwait(hinter.base(), st.status.ID); err != nil {
				return fmt.Errorf("round %d: hint-bait job: %w", round, err)
			}
		}
		if err := waitChaos(10*time.Second, func() bool {
			return hinter.node.HintsOutstanding() >= 1
		}); err != nil {
			return fmt.Errorf("round %d: push to the dead node %d never became a hint on node %d: %w",
				round, victim.peer.ID, hinter.peer.ID, err)
		}
		hintRes, ok := hinter.srv.PeekCached(hintKey)
		if !ok {
			return fmt.Errorf("round %d: hint-bait result missing from node %d's cache", round, hinter.peer.ID)
		}
		entries = append(entries, entry{req: hintReq, key: hintKey, res: hintRes})

		// Restart the victim from nothing and bring it back to full
		// replica duty: rejoin catch-up pulls what it owns, reinstatement
		// drains deliver the hints, and the outstanding gauge hits zero.
		ln := relistenChaos(victim.peer.Addr)
		if ln == nil {
			return fmt.Errorf("round %d: cannot rebind %s", round, victim.peer.Addr)
		}
		fresh, err := boot(victim.peer.ID, ln)
		if err != nil {
			return err
		}
		members[victim.peer.ID] = fresh
		if err := waitChaos(20*time.Second, func() bool {
			fresh.node.Rejoin()
			for _, m := range members {
				if m.alive {
					m.node.DrainHintsNow()
				}
			}
			if hintsOutstanding() != 0 {
				return false
			}
			for _, e := range entries {
				if !fullyReplicated(e.key) {
					return false
				}
			}
			return true
		}); err != nil {
			return fmt.Errorf("round %d: node %d never recovered full replica duty (hints=%d): %w",
				round, fresh.peer.ID, hintsOutstanding(), err)
		}
		if verbose {
			fmt.Printf("chaos: replication round %d: node %d rejoined, %d digests intact, hints drained\n",
				round, fresh.peer.ID, len(entries))
		}
	}

	if net := netModeled(); net <= netAfterPhase1 {
		return fmt.Errorf("handoff/repair traffic charged no modeled network time (%.9f -> %.9f)",
			netAfterPhase1, net)
	}
	return nil
}

// waitChaos polls cond until it holds or the deadline passes.
func waitChaos(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %v", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}

// relistenChaos rebinds a just-released loopback address, retrying while
// the port frees up; nil after 5s.
func relistenChaos(addr string) net.Listener {
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ringCounterValue reads one counter from a node's /metrics.json.
func ringCounterValue(base, name string) (float64, error) {
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Counters[name], nil
}
