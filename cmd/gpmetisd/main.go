// Command gpmetisd is the partition-serving daemon: it accepts
// concurrent partition jobs over HTTP+JSON, runs them through a bounded
// queue onto a pool of modeled GPU devices, and serves repeated requests
// from a content-addressed result cache (see internal/server and
// DESIGN.md §9).
//
// Usage:
//
//	gpmetisd [-addr 127.0.0.1:8080] [-devices 2] [-queue 64] \
//	         [-cache 128] [-deadline 0] [-maxjobs 4096]
//
// API:
//
//	POST   /jobs            submit a job (202 queued, 200 cache hit,
//	                        429 + code "overloaded" when the queue is full)
//	GET    /jobs            list jobs
//	GET    /jobs/{id}       job status; the result once done
//	DELETE /jobs/{id}       cancel a queued or running job
//	GET    /jobs/{id}/trace Chrome trace_event JSON of the job's run
//	GET    /metrics         counters: queue depth, wait time, cache hit
//	                        rate, jobs by outcome, modeled seconds
//	GET    /healthz         liveness and occupancy
//
// Submit with the gpmetis client (gpmetis -server http://...) or curl:
//
//	curl -s -X POST localhost:8080/jobs \
//	     -d "{\"graph\": $(jq -Rs . < graph.metis), \"k\": 64}"
//
// The daemon passes -addr to net.Listen verbatim, so -addr 127.0.0.1:0
// picks a random free port; the chosen address is printed on startup.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpmetis/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a random port)")
	devices := flag.Int("devices", 2, "modeled GPU device slots: jobs running concurrently")
	queueCap := flag.Int("queue", 64, "job queue capacity; submissions beyond it get 429")
	cacheCap := flag.Int("cache", 128, "result cache capacity in entries (-1 disables)")
	deadline := flag.Duration("deadline", 0, "default per-job deadline, e.g. 30s (0 = unbounded)")
	maxJobs := flag.Int("maxjobs", 4096, "retained job statuses before the oldest terminal jobs are forgotten")
	flag.Parse()

	s := server.New(server.Config{
		Devices:         *devices,
		QueueCap:        *queueCap,
		CacheCap:        *cacheCap,
		DefaultDeadline: *deadline,
		MaxJobs:         *maxJobs,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmetisd:", err)
		os.Exit(1)
	}
	fmt.Printf("gpmetisd: listening on http://%s (devices=%d queue=%d cache=%d)\n",
		ln.Addr(), *devices, *queueCap, *cacheCap)

	httpSrv := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "gpmetisd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
		s.Close()
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "gpmetisd:", err)
		s.Close()
		os.Exit(1)
	}
}
