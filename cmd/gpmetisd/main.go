// Command gpmetisd is the partition-serving daemon: it accepts
// concurrent partition jobs over HTTP+JSON, runs them through a bounded
// queue onto a pool of modeled GPU devices, and serves repeated requests
// from a content-addressed result cache (see internal/server and
// DESIGN.md §9).
//
// Usage:
//
//	gpmetisd [-addr 127.0.0.1:8080] [-devices 2] [-queue 64] \
//	         [-cache 128] [-deadline 0] [-maxjobs 4096] \
//	         [-journal jobs.jsonl] [-checkpoint-dir ckpt/] \
//	         [-quarantine-threshold 3] [-quarantine-backoff 0.002] \
//	         [-log-level info] [-log-format text] [-drain-timeout 15s] \
//	         [-slo-latency 2s] [-slo-latency-target 0.95] \
//	         [-slo-availability-target 0.99] [-events 256] \
//	         [-tenants tenants.json] [-brownout-wait 500ms] \
//	         [-brownout-target 0.9] [-brownout-fast-window 15s] \
//	         [-brownout-slow-window 90s] [-brownout-off] \
//	         [-debug-addr 127.0.0.1:6060] \
//	         [-peers peers.json -node-id 0] [-vnodes 64] [-cluster-probe 1s] \
//	         [-replicas 2] [-anti-entropy 5s] [-hint-dir hints/]
//
// API:
//
//	POST   /jobs            submit a job (202 queued, 200 cache hit,
//	                        429 + a typed code when admission refuses it:
//	                        "overloaded" queue full, "tenant_quota" the
//	                        tenant's queued quota is spent, "rate_limited"
//	                        its token bucket is empty, and
//	                        "deadline_unmeetable" the requested deadline
//	                        cannot be met at the current queue depth; every
//	                        429 and the draining 503 carry a Retry-After
//	                        derived from queued work over device count)
//	GET    /jobs            list jobs
//	GET    /jobs/{id}       job status; the result once done
//	DELETE /jobs/{id}       cancel a queued or running job
//	GET    /jobs/{id}/trace Chrome trace_event JSON of the job's run
//	GET    /jobs/{id}/profile kernel-level roofline profile, for jobs
//	                        submitted with "profile": true
//	GET    /metrics         Prometheus text exposition: queue depth, wait
//	                        and latency histograms, cache hit rate, jobs
//	                        by outcome, per-slot utilization, build info
//	GET    /metrics.json    the same counters as flat JSON
//	GET    /healthz         liveness, occupancy, SLO posture, build info
//	GET    /slo             SLO evaluation: burn rates over both windows
//	GET    /admin/status    live ops view (self-refreshing HTML); the
//	                        JSON behind it at /admin/status.json feeds
//	                        the gpmetis -top terminal client
//	GET    /admin/events    flight recorder: recent lifecycle events
//	GET    /admin/devices   device-pool quarantine states
//	POST   /admin/devices/{slot}/reinstate  force a slot back into service
//	POST   /admin/decommission  (ring members) retire this node: push its
//	                        cache to the shrunk ring, announce departure,
//	                        then drain and exit as on SIGTERM
//	POST   /admin/rejoin    (ring members) announce return and pull the
//	                        entries this node now owns (catch-up repair)
//
// Logs are structured (-log-format text|json, -log-level debug..error);
// every job-scoped line carries job_id and trace_id. SIGTERM or SIGINT
// starts a graceful drain: new submissions get 503 code "draining",
// in-flight jobs get up to -drain-timeout to finish, then the journal
// is flushed and the process exits. SIGQUIT dumps the flight recorder
// to stderr without stopping the daemon.
//
// -tenants points at a JSON object mapping tenant names to {"weight",
// "max_queued", "rate_per_sec", "burst"}: the queue is served
// weighted-fair over estimated modeled cost (start-time fair queueing),
// so a weight-3 tenant gets 3x the service of a weight-1 tenant under
// saturation while an idle queue serves everyone immediately. Unlisted
// tenants (and jobs submitted without a tenant) run under "default".
//
// Sustained queue-wait pressure engages the brownout ladder: level 1
// sheds queued jobs from tenants over their fair share of the queue,
// level 2 additionally forces Degrade on new jobs (they take the cheap
// CPU path). Both transitions appear in the flight recorder as
// brownout_begin/brownout_end and on /metrics as gpmetisd_brownout_*.
//
// -journal makes the daemon durable: every accepted job and its outcome
// is fsynced to the given JSONL file, and a restarted daemon replays it
// — completed results are served from the rebuilt cache, interrupted
// jobs are re-admitted under their original IDs. -checkpoint-dir makes
// single-device gp jobs snapshot at every level boundary so re-admitted
// jobs resume mid-run instead of starting over. A journal or checkpoint
// write failure costs durability, never availability: the daemon logs
// once, flips journal.degraded/checkpoint.degraded in /metrics, and
// keeps serving.
//
// Submit with the gpmetis client (gpmetis -server http://...) or curl:
//
//	curl -s -X POST localhost:8080/jobs \
//	     -d "{\"graph\": $(jq -Rs . < graph.metis), \"k\": 64}"
//
// The daemon passes -addr to net.Listen verbatim, so -addr 127.0.0.1:0
// picks a random free port; the chosen address is printed on startup.
//
// -peers and -node-id turn the daemon into one member of a gossip-free
// cluster ring (DESIGN.md §14): peers.json lists every node's id and
// host:port, and submissions are routed by consistent hashing on the
// job's content digest — identical submissions land on the node that
// already caches them, non-owned submissions are forwarded after a
// cross-node cache peek, and a down owner fails over to the next live
// ring successor. Ring state appears on /healthz and /admin/status, and
// routing counters as gpmetisd_cluster_* on /metrics. Every node of the
// ring must run with the same peers.json and -vnodes.
//
// Ring durability (DESIGN.md §15): -replicas R (default 2) pushes every
// freshly completed result to the next R−1 ring successors, so a dead
// owner's cached work is served bit-identically from a replica instead
// of recomputed. Pushes to quarantined peers become handoff hints
// (persisted under -hint-dir when set) and drain when the peer
// reinstates; a background anti-entropy sweep (-anti-entropy, negative
// to disable) exchanges digest summaries and repairs divergence. On
// startup a ring member announces itself and pulls the entries it now
// owns (rejoin catch-up). POST /admin/decommission retires a node
// safely: it pushes its cache to the shrunk ring's owners, announces
// departure to every peer, then drains and exits exactly as on SIGTERM;
// POST /admin/rejoin re-announces and re-runs catch-up on demand.
// SIGHUP reloads -peers, applying membership changes without a restart.
//
// Cluster observability (DESIGN.md §16): every internode RPC carries an
// X-Gpmetis-Trace context header, so a job submitted to a non-owner
// node keeps one trace id end to end — GET /jobs/{id}/trace on the
// entry node returns a single Chrome trace document with one pid per
// node, the owner's spans parented under the entry node's
// cluster-forward span. GET /admin/cluster/status (.json for data)
// fans out to every live peer and renders the whole fleet on one page
// (gpmetis -top -cluster is the terminal flavor), and per-peer RPC
// latency/error histograms appear as gpmetisd_cluster_rpc_* on
// /metrics alongside the modeled α+βn network charge.
//
// -debug-addr starts a second listener serving net/http/pprof under
// /debug/pprof/ (goroutine dumps, heap and CPU profiles of the daemon
// process itself — wall-clock profiling, distinct from the modeled
// kernel profiles at /jobs/{id}/profile). It is off by default and
// should stay on a loopback or otherwise private address: the pprof
// endpoints expose internals and are not meant for untrusted networks.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpmetis/internal/cluster"
	"gpmetis/internal/obs"
	"gpmetis/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a random port)")
	devices := flag.Int("devices", 2, "modeled GPU device slots: jobs running concurrently")
	queueCap := flag.Int("queue", 64, "job queue capacity; submissions beyond it get 429")
	cacheCap := flag.Int("cache", 128, "result cache capacity in entries (-1 disables)")
	deadline := flag.Duration("deadline", 0, "default per-job deadline, e.g. 30s (0 = unbounded)")
	maxJobs := flag.Int("maxjobs", 4096, "retained job statuses before the oldest terminal jobs are forgotten")
	journal := flag.String("journal", "", "durable job journal (JSONL); replayed on restart")
	ckptDir := flag.String("checkpoint-dir", "", "directory for per-job crash-recovery checkpoints")
	qThreshold := flag.Int("quarantine-threshold", 3, "consecutive device faults before a slot is quarantined")
	qBackoff := flag.Float64("quarantine-backoff", 0.002, "base modeled-seconds probation budget; doubles per quarantine")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	logFormat := flag.String("log-format", obs.LogText, "log encoding: text or json")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight jobs on SIGTERM")
	sloLatency := flag.Duration("slo-latency", 2*time.Second, "latency SLO threshold per job")
	sloLatencyTarget := flag.Float64("slo-latency-target", 0.95, "fraction of jobs that must finish within -slo-latency")
	sloAvailability := flag.Float64("slo-availability-target", 0.99, "fraction of jobs that must not fail")
	sloFastWindow := flag.Duration("slo-fast-window", 5*time.Minute, "fast burn-rate window")
	sloSlowWindow := flag.Duration("slo-slow-window", time.Hour, "slow burn-rate window")
	eventBuf := flag.Int("events", 256, "lifecycle flight-recorder capacity (recent events retained)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this private address (empty = off)")
	tenantsFile := flag.String("tenants", "", "JSON file of per-tenant weights, queue quotas, and rate limits")
	brownoutWait := flag.Duration("brownout-wait", 500*time.Millisecond, "queue-wait threshold feeding the brownout ladder")
	brownoutTarget := flag.Float64("brownout-target", 0.9, "fraction of dequeues that must wait less than -brownout-wait")
	brownoutFast := flag.Duration("brownout-fast-window", 15*time.Second, "brownout fast burn-rate window")
	brownoutSlow := flag.Duration("brownout-slow-window", 90*time.Second, "brownout slow burn-rate window")
	brownoutOff := flag.Bool("brownout-off", false, "disable brownout shedding and auto-degrade entirely")
	peersFile := flag.String("peers", "", "cluster peers.json; joins the ring described in it")
	nodeID := flag.Int("node-id", -1, "this node's id in -peers (required with -peers)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per ring member (0 = default, must match across the ring)")
	clusterProbe := flag.Duration("cluster-probe", 0, "peer health-probe interval (0 = default 1s)")
	replicas := flag.Int("replicas", 0, "cluster replication factor (0 = default 2, 1 disables replication)")
	antiEntropy := flag.Duration("anti-entropy", 0, "anti-entropy repair sweep interval (0 = default 5s, negative disables)")
	hintDir := flag.String("hint-dir", "", "directory persisting handoff hints across restarts (empty = memory only)")
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmetisd:", err)
		os.Exit(2)
	}
	if !obs.ValidLogFormat(*logFormat) {
		fmt.Fprintf(os.Stderr, "gpmetisd: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, level)

	var tenants server.TenantsConfig
	if *tenantsFile != "" {
		tenants, err = server.LoadTenantsFile(*tenantsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpmetisd:", err)
			os.Exit(2)
		}
	}

	// A ring member namespaces its job IDs so they are unique cluster-wide
	// and entry nodes can proxy forwarded jobs without ID collisions.
	idPrefix := ""
	if *peersFile != "" && *nodeID >= 0 {
		idPrefix = fmt.Sprintf("n%d-j", *nodeID)
	}

	s := server.New(server.Config{
		JobIDPrefix:         idPrefix,
		Devices:             *devices,
		QueueCap:            *queueCap,
		CacheCap:            *cacheCap,
		DefaultDeadline:     *deadline,
		MaxJobs:             *maxJobs,
		JournalPath:         *journal,
		CheckpointDir:       *ckptDir,
		QuarantineThreshold: *qThreshold,
		QuarantineBackoff:   *qBackoff,
		Logger:              logger,
		EventBuffer:         *eventBuf,
		Tenants:             tenants,
		Brownout: server.BrownoutConfig{
			QueueWait:  *brownoutWait,
			Target:     *brownoutTarget,
			FastWindow: *brownoutFast,
			SlowWindow: *brownoutSlow,
			Disable:    *brownoutOff,
		},
		SLO: obs.SLOConfig{
			LatencyThreshold:   *sloLatency,
			LatencyTarget:      *sloLatencyTarget,
			AvailabilityTarget: *sloAvailability,
			FastWindow:         *sloFastWindow,
			SlowWindow:         *sloSlowWindow,
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmetisd:", err)
		os.Exit(1)
	}
	durable := "none"
	if *journal != "" {
		durable = *journal
	}
	fmt.Printf("gpmetisd: listening on http://%s (devices=%d queue=%d cache=%d journal=%s)\n",
		ln.Addr(), *devices, *queueCap, *cacheCap, durable)

	// -peers wraps the handler in the cluster routing tier: this node owns
	// its ring share and forwards the rest, peeking peer caches first.
	handler := http.Handler(s.Handler())
	var node *cluster.Node
	// A decommission request funnels into the same drain path as SIGTERM;
	// the buffered channel makes the callback non-blocking and idempotent.
	decommissioned := make(chan struct{}, 1)
	if *peersFile != "" {
		peers, err := cluster.LoadPeersFile(*peersFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpmetisd:", err)
			os.Exit(2)
		}
		node, err = cluster.New(cluster.Config{
			NodeID:              *nodeID,
			Peers:               peers,
			VNodes:              *vnodes,
			Server:              s,
			ProbeInterval:       *clusterProbe,
			Logger:              logger,
			Replicas:            *replicas,
			AntiEntropyInterval: *antiEntropy,
			HintDir:             *hintDir,
			OnDecommission: func() {
				select {
				case decommissioned <- struct{}{}:
				default:
				}
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpmetisd:", err)
			os.Exit(2)
		}
		handler = node.Handler(handler)
		fmt.Printf("gpmetisd: cluster node %d of %d-node ring (peers=%s); fleet view at /admin/cluster/status\n",
			*nodeID, len(peers), *peersFile)
	} else if *nodeID >= 0 {
		fmt.Fprintln(os.Stderr, "gpmetisd: -node-id requires -peers")
		os.Exit(2)
	}

	// The pprof listener is separate from the API listener so operators
	// can keep it loopback-only while the API serves the network. The
	// default ServeMux is avoided on both: the debug mux carries exactly
	// the pprof handlers and nothing else.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpmetisd: debug listener:", err)
			os.Exit(1)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Handler: dmux}
		fmt.Printf("gpmetisd: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go debugSrv.Serve(dln)
	}

	httpSrv := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	if node != nil {
		// Rejoin catch-up: announce this node to its peers and pull the
		// entries it now owns or replicates. Runs after the listener is up
		// so peers can push back immediately; harmless on a cold ring.
		go func() {
			if pulled := node.Rejoin(); pulled > 0 {
				logger.Info("rejoin catch-up complete", "entries_pulled", pulled)
			}
		}()
		// SIGHUP reloads the peers file: membership changes apply to the
		// live ring without restarting the daemon.
		hupc := make(chan os.Signal, 1)
		signal.Notify(hupc, syscall.SIGHUP)
		go func() {
			for range hupc {
				peers, err := cluster.LoadPeersFile(*peersFile)
				if err != nil {
					logger.Error("SIGHUP: peers reload failed", "error", err.Error())
					continue
				}
				if err := node.UpdatePeers(peers); err != nil {
					logger.Error("SIGHUP: peer update rejected", "error", err.Error())
					continue
				}
				logger.Info("SIGHUP: peers reloaded", "members", len(peers))
			}
		}()
	}

	// SIGQUIT is the non-fatal post-mortem trigger: dump the flight
	// recorder to stderr and keep serving.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			logger.Info("SIGQUIT: dumping flight recorder to stderr")
			if err := s.DumpEvents(os.Stderr); err != nil {
				logger.Error("flight recorder dump failed", "error", err.Error())
			}
		}
	}()

	// Graceful drain: stop admitting (submits now get 503 while the
	// listener stays up so pollers can still fetch results), give
	// in-flight jobs the drain budget, then tear the listener down
	// and flush the journal.
	drainAndExit := func(cause string) {
		logger.Info(cause+"; draining", "drain_timeout", drainTimeout.String())
		drained, aborted := s.Drain(*drainTimeout)
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
		if debugSrv != nil {
			debugSrv.Shutdown(shutCtx)
		}
		if node != nil {
			node.Close()
		}
		s.Close()
		logger.Info("shutdown complete", "drained", drained, "aborted", aborted)
	}

	select {
	case <-ctx.Done():
		drainAndExit("shutdown signal received")
	case <-decommissioned:
		drainAndExit("decommission requested")
	case err := <-errc:
		logger.Error("listener failed", "error", err.Error())
		if node != nil {
			node.Close()
		}
		s.Close()
		os.Exit(1)
	}
}
