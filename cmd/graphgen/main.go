// Command graphgen writes synthetic graphs in Chaco/Metis format: the
// paper's four Table I stand-in families plus grids and RMAT.
//
// Usage:
//
//	graphgen -family ldoor|delaunay|hugebubble|usa-roads|grid2d|grid3d|rmat \
//	         -n 100000 [-seed 1] [-o out.metis]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"gpmetis"
	"gpmetis/internal/graph"
	"gpmetis/internal/graph/gen"
)

func main() {
	family := flag.String("family", "delaunay", "graph family: ldoor, delaunay, hugebubble, usa-roads, grid2d, grid3d, rmat")
	n := flag.Int("n", 100000, "approximate vertex count (rmat: rounded to a power of two)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	g, err := generate(*family, *n, *seed)
	if err != nil {
		fail(err)
	}

	dst := os.Stdout
	if *out != "" {
		dst, err = os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer dst.Close()
	}
	w := bufio.NewWriter(dst)
	if err := gpmetis.WriteGraph(w, g); err != nil {
		fail(err)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "graphgen: %s V=%d E=%d avg-degree=%.2f\n",
		*family, g.NumVertices(), g.NumEdges(), g.AvgDegree())
}

func generate(family string, n int, seed int64) (*graph.Graph, error) {
	switch family {
	case "ldoor":
		return gen.LDoor(n, seed)
	case "delaunay":
		return gen.Delaunay(n, seed)
	case "hugebubble":
		return gen.HugeBubble(n, seed)
	case "usa-roads":
		return gen.RoadNetwork(n, seed)
	case "grid2d":
		s := 1
		for s*s < n {
			s++
		}
		return gen.Grid2D(s, s)
	case "grid3d":
		s := 1
		for s*s*s < n {
			s++
		}
		return gen.Grid3D(s, s, s)
	case "rmat":
		scale := 1
		for 1<<scale < n {
			scale++
		}
		return gen.RMAT(scale, 8, seed)
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
