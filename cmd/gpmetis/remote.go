package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"gpmetis"
	"gpmetis/internal/server"
)

// remoteArgs bundles the CLI flags the daemon client forwards. bases
// holds one URL for -server and the whole member list for -cluster; the
// client submits to the first base and fails over down the list when a
// node is unreachable.
type remoteArgs struct {
	bases           []string
	path            string
	k               int
	algo            string
	ub              float64
	seed            int64
	faults          string
	faultSeed       int64
	degrade, verify bool
	traceOut        string
	prof            profileArgs
	retries         int    // re-submissions after a 429 before giving up
	tenant          string // fair-queueing tenant ("" = daemon default)
	deadlineMs      int64  // job deadline forwarded for admission control
}

// nodeUnreachableError marks a failure the client may heal by failing
// over to another ring member: a refused/reset connection, or the
// daemon's typed 502 saying the job's owning node is unreachable.
// Because submissions are content-addressed and deduplicated, a fresh
// submit to the next base is cheap — it lands on the ring successor and
// either hits the cache or restarts the work exactly once.
type nodeUnreachableError struct{ err error }

func (e *nodeUnreachableError) Error() string { return e.err.Error() }
func (e *nodeUnreachableError) Unwrap() error { return e.err }

// runRemote submits the graph to a gpmetisd daemon, polls the job to a
// terminal state, and returns the result in the same shape as a local
// run. Queue overload (HTTP 429, code "overloaded") is reported as a
// retryable error; a canceled or failed job becomes an error carrying
// the daemon's reason. With -cluster, an unreachable node advances to
// the next base with a fresh submit; polls stay pinned to the base that
// accepted the job.
func runRemote(a remoteArgs) (*outcome, error) {
	text, err := os.ReadFile(a.path)
	if err != nil {
		return nil, err
	}
	format := "metis"
	if strings.HasSuffix(a.path, ".gr") {
		format = "gr"
	}
	req := server.SubmitRequest{
		Graph:      string(text),
		Format:     format,
		K:          a.k,
		Algo:       a.algo,
		Seed:       a.seed,
		UB:         a.ub,
		Faults:     a.faults,
		FaultSeed:  a.faultSeed,
		Degrade:    a.degrade,
		Verify:     a.verify,
		Profile:    a.prof.enabled,
		Tenant:     a.tenant,
		DeadlineMs: a.deadlineMs,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var lastErr error
	var prevDelay time.Duration
	for i, base := range a.bases {
		oc, err := runRemoteOn(base, a, body)
		if err == nil {
			return oc, nil
		}
		var nu *nodeUnreachableError
		if !errors.As(err, &nu) {
			return nil, err
		}
		lastErr = err
		if i+1 < len(a.bases) {
			// Decorrelated jitter before the next base, mirroring the 429
			// Retry-After path: a dead entry node must not make every
			// client of the ring resubmit to the same successor in
			// lockstep.
			prevDelay = failoverDelay(prevDelay)
			fmt.Fprintf(os.Stderr, "gpmetis: %s unreachable (%v); failing over to %s in %v\n",
				base, err, a.bases[i+1], prevDelay.Round(time.Millisecond))
			retrySleep(prevDelay)
		}
	}
	if len(a.bases) == 1 {
		return nil, lastErr
	}
	return nil, fmt.Errorf("all %d cluster nodes unreachable; last error: %w", len(a.bases), lastErr)
}

// runRemoteOn runs one submit-poll-fetch cycle against a single base.
func runRemoteOn(base string, a remoteArgs, body []byte) (*outcome, error) {
	st, err := submitJob(base, body, a.retries)
	if err != nil {
		return nil, err
	}

	for st.State == server.StateQueued || st.State == server.StateRunning {
		time.Sleep(100 * time.Millisecond)
		resp, err := http.Get(base + "/jobs/" + st.ID)
		if err != nil {
			return nil, &nodeUnreachableError{fmt.Errorf("poll %s: %w", base, err)}
		}
		if st, err = decodeJob(resp); err != nil {
			return nil, err
		}
	}
	switch st.State {
	case server.StateDone:
	case server.StateCanceled:
		return nil, fmt.Errorf("job %s was canceled: %s", st.ID, st.Error)
	default:
		return nil, fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
	if st.Result == nil {
		return nil, fmt.Errorf("job %s is done but carries no result", st.ID)
	}

	// A cluster cache peek answers with a bare result and no job ID;
	// there is no job whose trace or profile could be fetched.
	if a.traceOut != "" && st.ID != "" {
		if err := fetchTrace(base, st.ID, a.traceOut); err != nil {
			return nil, err
		}
	}
	if a.prof.enabled && st.ID != "" {
		rep, err := fetchProfile(base, st.ID)
		if err != nil {
			return nil, err
		}
		if err := a.prof.emit(rep); err != nil {
			return nil, err
		}
	}

	algoName := a.algo
	if parsed, err := parseAlgo(a.algo); err == nil {
		algoName = parsed.String()
	}
	return &outcome{
		Input:          a.path,
		Algo:           algoName,
		K:              a.k,
		EdgeCut:        st.Result.EdgeCut,
		Imbalance:      st.Result.Imbalance,
		ModeledSeconds: st.Result.ModeledSeconds,
		FaultEvents:    st.Result.FaultEvents,
		Degraded:       st.Result.Degraded,
		DegradedReason: st.Result.DegradedReason,
		Server:         base,
		JobID:          st.ID,
		Cached:         st.Cached,
		part:           st.Result.Part,
	}, nil
}

// retrySleep is the backoff clock, a seam for the retry test.
var retrySleep = time.Sleep

// shedBreaker is the client's retry budget: a sliding window over recent
// submit attempts. Once enough attempts have been observed and more than
// half of them were shed by the daemon (any 429-class rejection), the
// breaker trips and the client stops re-submitting instead of feeding an
// overloaded daemon more retries.
type shedBreaker struct {
	window []bool // true = the attempt was shed/rejected with 429
}

const (
	breakerWindow      = 10 // attempts remembered
	breakerMinAttempts = 4  // evidence required before the breaker may trip
)

func (b *shedBreaker) record(shed bool) {
	b.window = append(b.window, shed)
	if len(b.window) > breakerWindow {
		b.window = b.window[len(b.window)-breakerWindow:]
	}
}

func (b *shedBreaker) tripped() bool {
	if len(b.window) < breakerMinAttempts {
		return false
	}
	shed := 0
	for _, s := range b.window {
		if s {
			shed++
		}
	}
	return shed*2 > len(b.window)
}

// submitJob posts the job to the daemon. A retryable rejection — any
// 429 (queue full, tenant quota, rate limit), or a 503 whose code is
// "draining" or "cluster_unreachable" — is retried up to retries times
// with exponential backoff, honoring the daemon's Retry-After as the
// floor and adding jitter so a herd of overloaded clients does not
// re-stampede in lockstep. Other 503 codes are terminal. Two circuit
// breakers cut the loop short: a deadline_unmeetable rejection is
// terminal (re-submitting the same deadline cannot make it meetable),
// and the retry budget trips once more than half of the recent
// attempts were shed.
func submitJob(base string, body []byte, retries int) (server.JobStatus, error) {
	var budget shedBreaker
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return server.JobStatus{}, &nodeUnreachableError{fmt.Errorf("submit to %s: %w", base, err)}
		}
		if resp.StatusCode != http.StatusTooManyRequests &&
			resp.StatusCode != http.StatusServiceUnavailable {
			return decodeJob(resp)
		}
		floor := parseRetryAfter(resp.Header.Get("Retry-After"))
		var e server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e) // best effort; an empty code still retries
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable &&
			e.Code != server.CodeDraining && e.Code != server.CodeClusterUnreachable {
			return server.JobStatus{}, fmt.Errorf("daemon rejected the job (%s): %s", e.Code, e.Error)
		}
		if e.Code == server.CodeDeadlineUnmeetable {
			return server.JobStatus{}, fmt.Errorf(
				"daemon rejected the job (%s): %s (relax -deadline or retry after %v)",
				e.Code, e.Error, floor)
		}
		budget.record(true)
		if budget.tripped() {
			return server.JobStatus{}, fmt.Errorf(
				"retry budget exhausted: daemon shed %d consecutive submissions (%s); backing off for good",
				len(budget.window), e.Code)
		}
		if attempt >= retries {
			if e.Code == server.CodeOverloaded || e.Code == "" {
				return server.JobStatus{}, fmt.Errorf("daemon overloaded (queue full), retry later: %s", e.Error)
			}
			return server.JobStatus{}, fmt.Errorf("daemon rejected the job (%s): %s", e.Code, e.Error)
		}
		d := retryDelay(attempt, floor)
		why := "overloaded"
		if e.Code != "" {
			why = e.Code
		}
		fmt.Fprintf(os.Stderr, "gpmetis: daemon %s; retrying in %v (%d/%d)\n",
			why, d.Round(time.Millisecond), attempt+1, retries)
		retrySleep(d)
	}
}

// clusterBases parses the -cluster flag: a comma-separated member list,
// each entry a host:port or URL; the scheme defaults to http.
func clusterBases(list string) []string {
	var bases []string
	for _, h := range strings.Split(list, ",") {
		h = strings.TrimSpace(h)
		if h == "" {
			continue
		}
		if !strings.Contains(h, "://") {
			h = "http://" + h
		}
		bases = append(bases, strings.TrimRight(h, "/"))
	}
	return bases
}

// parseRetryAfter reads the delay-seconds form of a Retry-After header;
// anything else (HTTP-date, garbage, absent) falls back to 0.
func parseRetryAfter(v string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// failoverDelay spaces cluster failover attempts with decorrelated
// jitter: each delay is drawn uniformly from [base, min(cap, 3*prev)],
// so consecutive failovers spread out without ever stalling a healthy
// ring walk for long. Pass the previous delay (0 on the first failover).
func failoverDelay(prev time.Duration) time.Duration {
	const (
		base = 50 * time.Millisecond
		max  = 2 * time.Second
	)
	if prev < base {
		prev = base
	}
	hi := 3 * prev
	if hi > max {
		hi = max
	}
	return base + time.Duration(rand.Int63n(int64(hi-base)+1))
}

// retryDelay doubles a base delay per attempt and adds up to 50%
// jitter. The server's Retry-After (when present) replaces the default
// base, so the jittered result never undercuts the server's floor.
func retryDelay(attempt int, floor time.Duration) time.Duration {
	base := 500 * time.Millisecond
	if floor > 0 {
		base = floor
	}
	if attempt > 6 {
		attempt = 6 // cap the exponent; with the default base this is 32s
	}
	d := base << uint(attempt)
	return d + time.Duration(rand.Int63n(int64(d/2)+1))
}

// decodeJob reads a job status or translates the daemon's typed error.
func decodeJob(resp *http.Response) (server.JobStatus, error) {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			return server.JobStatus{}, fmt.Errorf("daemon returned HTTP %d", resp.StatusCode)
		}
		if e.Code == server.CodeOverloaded {
			return server.JobStatus{}, fmt.Errorf("daemon overloaded (queue full), retry later: %s", e.Error)
		}
		if e.Code == server.CodeNodeUnreachable {
			return server.JobStatus{}, &nodeUnreachableError{fmt.Errorf("daemon reports owning node unreachable: %s", e.Error)}
		}
		return server.JobStatus{}, fmt.Errorf("daemon rejected the job (%s): %s", e.Code, e.Error)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return server.JobStatus{}, err
	}
	return st, nil
}

// fetchProfile downloads the job's kernel-profile report from the daemon.
func fetchProfile(base, id string) (*gpmetis.ProfileReport, error) {
	resp, err := http.Get(base + "/jobs/" + id + "/profile")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("profile download: HTTP %d", resp.StatusCode)
	}
	var rep gpmetis.ProfileReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("profile download: %w", err)
	}
	return &rep, nil
}

// fetchTrace downloads the job's Chrome trace JSON from the daemon.
func fetchTrace(base, id, path string) error {
	resp, err := http.Get(base + "/jobs/" + id + "/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace download: HTTP %d", resp.StatusCode)
	}
	return writeFile(path, func(w *bufio.Writer) error {
		_, err := io.Copy(w, resp.Body)
		return err
	})
}
