package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"gpmetis/internal/server"
)

// remoteArgs bundles the CLI flags the daemon client forwards.
type remoteArgs struct {
	base, path      string
	k               int
	algo            string
	ub              float64
	seed            int64
	faults          string
	faultSeed       int64
	degrade, verify bool
	traceOut        string
}

// runRemote submits the graph to a gpmetisd daemon, polls the job to a
// terminal state, and returns the result in the same shape as a local
// run. Queue overload (HTTP 429, code "overloaded") is reported as a
// retryable error; a canceled or failed job becomes an error carrying
// the daemon's reason.
func runRemote(a remoteArgs) (*outcome, error) {
	text, err := os.ReadFile(a.path)
	if err != nil {
		return nil, err
	}
	format := "metis"
	if strings.HasSuffix(a.path, ".gr") {
		format = "gr"
	}
	req := server.SubmitRequest{
		Graph:     string(text),
		Format:    format,
		K:         a.k,
		Algo:      a.algo,
		Seed:      a.seed,
		UB:        a.ub,
		Faults:    a.faults,
		FaultSeed: a.faultSeed,
		Degrade:   a.degrade,
		Verify:    a.verify,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(a.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("submit to %s: %w", a.base, err)
	}
	st, err := decodeJob(resp)
	if err != nil {
		return nil, err
	}

	for st.State == server.StateQueued || st.State == server.StateRunning {
		time.Sleep(100 * time.Millisecond)
		resp, err := http.Get(a.base + "/jobs/" + st.ID)
		if err != nil {
			return nil, err
		}
		if st, err = decodeJob(resp); err != nil {
			return nil, err
		}
	}
	switch st.State {
	case server.StateDone:
	case server.StateCanceled:
		return nil, fmt.Errorf("job %s was canceled: %s", st.ID, st.Error)
	default:
		return nil, fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
	if st.Result == nil {
		return nil, fmt.Errorf("job %s is done but carries no result", st.ID)
	}

	if a.traceOut != "" {
		if err := fetchTrace(a.base, st.ID, a.traceOut); err != nil {
			return nil, err
		}
	}

	algoName := a.algo
	if parsed, err := parseAlgo(a.algo); err == nil {
		algoName = parsed.String()
	}
	return &outcome{
		Input:          a.path,
		Algo:           algoName,
		K:              a.k,
		EdgeCut:        st.Result.EdgeCut,
		Imbalance:      st.Result.Imbalance,
		ModeledSeconds: st.Result.ModeledSeconds,
		FaultEvents:    st.Result.FaultEvents,
		Degraded:       st.Result.Degraded,
		DegradedReason: st.Result.DegradedReason,
		Server:         a.base,
		JobID:          st.ID,
		Cached:         st.Cached,
		part:           st.Result.Part,
	}, nil
}

// decodeJob reads a job status or translates the daemon's typed error.
func decodeJob(resp *http.Response) (server.JobStatus, error) {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			return server.JobStatus{}, fmt.Errorf("daemon returned HTTP %d", resp.StatusCode)
		}
		if e.Code == server.CodeOverloaded {
			return server.JobStatus{}, fmt.Errorf("daemon overloaded (queue full), retry later: %s", e.Error)
		}
		return server.JobStatus{}, fmt.Errorf("daemon rejected the job (%s): %s", e.Code, e.Error)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return server.JobStatus{}, err
	}
	return st, nil
}

// fetchTrace downloads the job's Chrome trace JSON from the daemon.
func fetchTrace(base, id, path string) error {
	resp, err := http.Get(base + "/jobs/" + id + "/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace download: HTTP %d", resp.StatusCode)
	}
	return writeFile(path, func(w *bufio.Writer) error {
		_, err := io.Copy(w, resp.Body)
		return err
	})
}
