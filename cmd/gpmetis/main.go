// Command gpmetis partitions a graph in Chaco/Metis format with any of
// the four partitioners and writes the partition vector (one partition id
// per line, in vertex order), plus a summary of cut, balance, and modeled
// runtime on stderr.
//
// Usage:
//
//	gpmetis -k 64 [-algo gp|metis|mt|par|ptscotch|gmetis|jostle|spectral] \
//	        [-ub 1.03] [-seed 1] [-o out.part] \
//	        [-trace trace.json] [-metrics metrics.json] [-report] \
//	        [-faults scenario] [-faultseed n] [-verify] [-degrade=false] \
//	        graph.metis|graph.gr
//
// -trace writes a Chrome trace_event JSON of the run's span tree over the
// modeled clock (open in chrome://tracing or ui.perfetto.dev); -metrics
// writes a flat JSON metrics report; -report prints a per-level table on
// stderr. All three are available for the gp and mt algorithms.
//
// -faults injects deterministic failures into the modeled substrate; a
// scenario is ';'-separated site:key=val[,key=val] entries, e.g.
//
//	gpmetis -k 64 -faults 'gpu.memcap:cap=64M;pcie.transfer:p=0.01' graph.metis
//
// Sites: gpu.alloc, gpu.memcap, gpu.kernel, pcie.transfer,
// multigpu.device, mpi.rank, contract.hash. -faultseed seeds the fault
// coins independently of -seed (default: same as -seed). -verify checks
// partition and coarsening invariants at every level boundary. -degrade
// (on by default) lets GP-metis fall back to the CPU pipeline when the
// GPU fails; -degrade=false turns capacity faults into errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"gpmetis"
)

func main() {
	k := flag.Int("k", 64, "number of partitions")
	algo := flag.String("algo", "gp", "partitioner: gp, metis, mt, par, ptscotch, gmetis, jostle, or spectral")
	ub := flag.Float64("ub", 1.03, "allowed imbalance factor")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file for the partition vector (default stdout)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the run (gp/mt)")
	metricsOut := flag.String("metrics", "", "write a flat JSON metrics report (gp/mt)")
	report := flag.Bool("report", false, "print a per-level table on stderr (gp/mt)")
	faults := flag.String("faults", "", "fault scenario, e.g. 'gpu.memcap:cap=64M;pcie.transfer:p=0.01'")
	faultSeed := flag.Int64("faultseed", 0, "seed for fault injection coins (default: -seed)")
	verify := flag.Bool("verify", false, "check partition invariants at every level boundary (gp/mt)")
	degrade := flag.Bool("degrade", true, "fall back to the CPU pipeline on GPU failure (gp)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gpmetis [flags] graph.metis")
		flag.PrintDefaults()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	var g *gpmetis.Graph
	if strings.HasSuffix(flag.Arg(0), ".gr") {
		g, err = gpmetis.ReadGraphGR(f) // DIMACS9 road-network format
	} else {
		g, err = gpmetis.ReadGraph(f) // Chaco/Metis format
	}
	f.Close()
	if err != nil {
		fail(err)
	}

	var a gpmetis.Algorithm
	switch *algo {
	case "gp":
		a = gpmetis.GPMetis
	case "metis":
		a = gpmetis.Metis
	case "mt":
		a = gpmetis.MtMetis
	case "par":
		a = gpmetis.ParMetis
	case "ptscotch":
		a = gpmetis.PTScotch
	case "gmetis":
		a = gpmetis.Gmetis
	case "jostle":
		a = gpmetis.Jostle
	case "spectral":
		a = gpmetis.Spectral
	default:
		fail(fmt.Errorf("unknown algorithm %q (want gp, metis, mt, par, ptscotch, gmetis, jostle, or spectral)", *algo))
	}

	var tracer *gpmetis.Tracer
	if *traceOut != "" || *metricsOut != "" || *report {
		tracer = gpmetis.NewTracer()
	}

	if *faultSeed == 0 {
		*faultSeed = *seed
	}
	injector, err := gpmetis.ParseFaultScenario(*faultSeed, *faults)
	if err != nil {
		fail(err)
	}

	res, err := gpmetis.Partition(g, *k, gpmetis.Options{
		Algorithm: a,
		Seed:      *seed,
		UBFactor:  *ub,
		Tracer:    tracer,
		Faults:    injector,
		Degrade:   *degrade,
		Verify:    *verify,
	})
	if err != nil {
		fail(err)
	}

	if *traceOut != "" {
		if err := writeFile(*traceOut, func(w *bufio.Writer) error {
			return gpmetis.WriteChromeTrace(w, tracer)
		}); err != nil {
			fail(err)
		}
	}
	if *metricsOut != "" {
		extra := map[string]any{
			"edge_cut":            res.EdgeCut,
			"modeled_seconds":     res.ModeledSeconds,
			"imbalance":           gpmetis.Imbalance(g, res.Part, *k),
			"match_conflict_rate": res.MatchConflictRate(),
		}
		if err := writeFile(*metricsOut, func(w *bufio.Writer) error {
			return gpmetis.WriteMetricsJSON(w, tracer, extra)
		}); err != nil {
			fail(err)
		}
	}
	if *report {
		fmt.Fprint(os.Stderr, gpmetis.LevelTable(tracer))
	}

	dst := os.Stdout
	if *out != "" {
		dst, err = os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer dst.Close()
	}
	w := bufio.NewWriter(dst)
	for _, p := range res.Part {
		fmt.Fprintln(w, p)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}

	summary := fmt.Sprintf("%s: %s k=%d cut=%d imbalance=%.4f modeled=%.3fs",
		flag.Arg(0), a, *k, res.EdgeCut, gpmetis.Imbalance(g, res.Part, *k), res.ModeledSeconds)
	if res.MatchAttempts > 0 {
		summary += fmt.Sprintf(" conflict_rate=%.2f%%", 100*res.MatchConflictRate())
	}
	if len(res.FaultEvents) > 0 {
		summary += fmt.Sprintf(" fault_events=%d", len(res.FaultEvents))
	}
	if res.Degraded {
		summary += fmt.Sprintf(" DEGRADED(%s)", res.DegradedReason)
	}
	fmt.Fprintln(os.Stderr, summary)
}

// writeFile creates path and streams fn's output through a buffered writer.
func writeFile(path string, fn func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := fn(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpmetis:", err)
	os.Exit(1)
}
