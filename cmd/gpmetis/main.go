// Command gpmetis partitions a graph in Chaco/Metis format with any of
// the four partitioners and writes the partition vector (one partition id
// per line, in vertex order), plus a summary of cut, balance, and modeled
// runtime on stderr.
//
// Usage:
//
//	gpmetis -k 64 [-algo gp|metis|mt|par|ptscotch|gmetis|jostle|spectral] \
//	        [-ub 1.03] [-seed 1] [-o out.part] graph.metis|graph.gr
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"gpmetis"
)

func main() {
	k := flag.Int("k", 64, "number of partitions")
	algo := flag.String("algo", "gp", "partitioner: gp, metis, mt, par, ptscotch, gmetis, jostle, or spectral")
	ub := flag.Float64("ub", 1.03, "allowed imbalance factor")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file for the partition vector (default stdout)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gpmetis [flags] graph.metis")
		flag.PrintDefaults()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	var g *gpmetis.Graph
	if strings.HasSuffix(flag.Arg(0), ".gr") {
		g, err = gpmetis.ReadGraphGR(f) // DIMACS9 road-network format
	} else {
		g, err = gpmetis.ReadGraph(f) // Chaco/Metis format
	}
	f.Close()
	if err != nil {
		fail(err)
	}

	var a gpmetis.Algorithm
	switch *algo {
	case "gp":
		a = gpmetis.GPMetis
	case "metis":
		a = gpmetis.Metis
	case "mt":
		a = gpmetis.MtMetis
	case "par":
		a = gpmetis.ParMetis
	case "ptscotch":
		a = gpmetis.PTScotch
	case "gmetis":
		a = gpmetis.Gmetis
	case "jostle":
		a = gpmetis.Jostle
	case "spectral":
		a = gpmetis.Spectral
	default:
		fail(fmt.Errorf("unknown algorithm %q (want gp, metis, mt, par, ptscotch, gmetis, jostle, or spectral)", *algo))
	}

	res, err := gpmetis.Partition(g, *k, gpmetis.Options{
		Algorithm: a,
		Seed:      *seed,
		UBFactor:  *ub,
	})
	if err != nil {
		fail(err)
	}

	dst := os.Stdout
	if *out != "" {
		dst, err = os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer dst.Close()
	}
	w := bufio.NewWriter(dst)
	for _, p := range res.Part {
		fmt.Fprintln(w, p)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}

	fmt.Fprintf(os.Stderr, "%s: %s k=%d cut=%d imbalance=%.4f modeled=%.3fs\n",
		flag.Arg(0), a, *k, res.EdgeCut, gpmetis.Imbalance(g, res.Part, *k), res.ModeledSeconds)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpmetis:", err)
	os.Exit(1)
}
