// Command gpmetis partitions a graph in Chaco/Metis format with any of
// the bundled partitioners and writes the partition vector (one partition
// id per line, in vertex order), plus a summary of cut, balance, and
// modeled runtime on stderr.
//
// Usage:
//
//	gpmetis -k 64 [-algo gp|metis|mt|par|ptscotch|gmetis|jostle|spectral] \
//	        [-ub 1.03] [-seed 1] [-o out.part] [-json] \
//	        [-server http://host:port] [-retries 3] \
//	        [-checkpoint-dir ckpt/] \
//	        [-trace trace.json] [-metrics metrics.json] [-report] \
//	        [-profile] [-profile-top 12] [-profile-json profile.json] \
//	        [-faults scenario] [-faultseed n] [-verify] [-degrade=false] \
//	        graph.metis|graph.gr
//
// -server submits the job to a running gpmetisd daemon instead of
// partitioning in-process: the graph is posted to /jobs, polled to
// completion, and the result (possibly a cache hit) is printed exactly
// like a local run. When the daemon answers 429 (queue full) the client
// honors its Retry-After and re-submits up to -retries times with
// jittered exponential backoff. -trace downloads the job's trace from
// the daemon; -metrics and -report need the in-process tracer and are
// local-only.
//
// -checkpoint-dir (local gp runs) snapshots the run at every level
// boundary under <dir>/<input>.k<k>.s<seed>.ckpt. Rerunning the same
// command after an interruption resumes from the snapshot and produces
// the bit-identical partition, edge cut, and modeled seconds; a
// completed run deletes its snapshot. A snapshot that does not match
// the graph or options is discarded with a warning.
//
// -json replaces the human summary with one machine-readable JSON object
// on stdout (input, algo, k, edge cut, imbalance, modeled seconds,
// degraded reason, cache/job metadata in server mode). With -json the
// partition vector is written only when -o is given, so stdout stays
// pure JSON.
//
// Exit status: 0 on success, 1 on error, 2 on usage, and 3 when the run
// finished but degraded to the CPU pipeline (Result.Degraded) even
// though -degrade=false asked for failures instead.
//
// -trace writes a Chrome trace_event JSON of the run's span tree over the
// modeled clock (open in chrome://tracing or ui.perfetto.dev); -metrics
// writes a flat JSON metrics report; -report prints a per-level table on
// stderr. All three are available for the gp and mt algorithms.
//
// -profile (gp only) turns on the kernel-level profiler: the run records
// one sample per kernel launch and prints the top -profile-top kernels as
// a roofline table on stderr — modeled seconds, coalescing efficiency,
// warp divergence, atomic serialization, achieved bandwidth, the dominant
// cost-model term, and rule-derived optimization hints. -profile-json
// writes the full report (per-kernel rollups, machine roofline
// parameters, reconciliation against the GPU timeline) as JSON and
// implies profiling. Both work with -server too: the job is submitted
// with profiling on and the report is downloaded from the daemon.
//
// -faults injects deterministic failures into the modeled substrate; a
// scenario is ';'-separated site:key=val[,key=val] entries, e.g.
//
//	gpmetis -k 64 -faults 'gpu.memcap:cap=64M;pcie.transfer:p=0.01' graph.metis
//
// Sites: gpu.alloc, gpu.memcap, gpu.kernel, pcie.transfer,
// multigpu.device, mpi.rank, contract.hash. -faultseed seeds the fault
// coins independently of -seed (default: same as -seed). -verify checks
// partition and coarsening invariants at every level boundary. -degrade
// (on by default) lets GP-metis fall back to the CPU pipeline when the
// GPU fails; -degrade=false turns capacity faults into errors.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gpmetis"
)

// outcome is the algorithm-independent result of one run, local or
// remote, from which the vector, the summary, and the exit code derive.
type outcome struct {
	Input          string  `json:"input"`
	Algo           string  `json:"algo"`
	K              int     `json:"k"`
	EdgeCut        int     `json:"edge_cut"`
	Imbalance      float64 `json:"imbalance"`
	ModeledSeconds float64 `json:"modeled_seconds"`
	ConflictRate   float64 `json:"match_conflict_rate,omitempty"`
	FaultEvents    int     `json:"fault_events,omitempty"`
	Degraded       bool    `json:"degraded,omitempty"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	// Server-mode metadata.
	Server string `json:"server,omitempty"`
	JobID  string `json:"job_id,omitempty"`
	Cached bool   `json:"cached,omitempty"`

	part         []int
	hasConflicts bool
}

func main() {
	k := flag.Int("k", 64, "number of partitions")
	algo := flag.String("algo", "gp", "partitioner: gp, metis, mt, par, ptscotch, gmetis, jostle, or spectral")
	ub := flag.Float64("ub", 1.03, "allowed imbalance factor")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file for the partition vector (default stdout)")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON on stdout (vector only with -o)")
	serverURL := flag.String("server", "", "submit to a gpmetisd daemon at this base URL instead of running locally")
	clusterHosts := flag.String("cluster", "", "comma-separated gpmetisd ring members (host:port); submit to the first live node, failing over down the list")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the run (gp/mt)")
	metricsOut := flag.String("metrics", "", "write a flat JSON metrics report (gp/mt, local only)")
	report := flag.Bool("report", false, "print a per-level table on stderr (gp/mt, local only)")
	profile := flag.Bool("profile", false, "print a per-kernel roofline table on stderr (gp)")
	profileTop := flag.Int("profile-top", 12, "kernels shown in the -profile table (0 = all)")
	profileJSON := flag.String("profile-json", "", "write the full kernel profile as JSON (gp; implies profiling)")
	faults := flag.String("faults", "", "fault scenario, e.g. 'gpu.memcap:cap=64M;pcie.transfer:p=0.01'")
	faultSeed := flag.Int64("faultseed", 0, "seed for fault injection coins (default: -seed)")
	verify := flag.Bool("verify", false, "check partition invariants at every level boundary (gp/mt)")
	degrade := flag.Bool("degrade", true, "fall back to the CPU pipeline on GPU failure (gp)")
	ckptDir := flag.String("checkpoint-dir", "", "snapshot gp runs here and auto-resume an interrupted run (local only)")
	retries := flag.Int("retries", 3, "with -server: re-submissions after a 429, honoring Retry-After with backoff")
	tenant := flag.String("tenant", "", "with -server: tenant name for multi-tenant fair queueing (default: the daemon's default tenant)")
	deadlineMs := flag.Int64("deadline-ms", 0, "with -server: job deadline in milliseconds (0 = daemon default); unmeetable deadlines are rejected up front")
	top := flag.Bool("top", false, "with -server: live terminal ops view of the daemon; with -cluster: the federated fleet view (no graph argument)")
	topInterval := flag.Duration("top-interval", 2*time.Second, "refresh interval for -top")
	topIterations := flag.Int("top-iterations", 0, "frames -top draws before exiting (0 = until interrupted)")
	flag.Parse()

	if *top {
		switch {
		case *serverURL != "" && *clusterHosts != "":
			fail(fmt.Errorf("-server and -cluster are mutually exclusive; -cluster is a member list, -server a single daemon"))
		case *clusterHosts != "":
			bases := clusterBases(*clusterHosts)
			if len(bases) == 0 {
				fail(fmt.Errorf("-cluster lists no hosts"))
			}
			if err := runFleetTop(bases, *topInterval, *topIterations); err != nil {
				fail(err)
			}
		case *serverURL != "":
			if err := runTop(strings.TrimRight(*serverURL, "/"), *topInterval, *topIterations); err != nil {
				fail(err)
			}
		default:
			fail(fmt.Errorf("-top polls a daemon; it needs -server http://host:port or -cluster host:port,..."))
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gpmetis [flags] graph.metis")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *faultSeed == 0 {
		*faultSeed = *seed
	}

	var (
		oc  *outcome
		err error
	)
	prof := profileArgs{enabled: *profile || *profileJSON != "", top: *profileTop, jsonOut: *profileJSON, table: *profile}
	if prof.enabled && *algo != "gp" {
		fail(fmt.Errorf("-profile records kernel launches and needs the gp algorithm, not %q", *algo))
	}
	if *serverURL != "" && *clusterHosts != "" {
		fail(fmt.Errorf("-server and -cluster are mutually exclusive; -cluster is a member list, -server a single daemon"))
	}
	if *serverURL != "" || *clusterHosts != "" {
		if *metricsOut != "" || *report {
			fail(fmt.Errorf("-metrics and -report need the in-process tracer; use them without -server"))
		}
		bases := []string{strings.TrimRight(*serverURL, "/")}
		if *clusterHosts != "" {
			bases = clusterBases(*clusterHosts)
			if len(bases) == 0 {
				fail(fmt.Errorf("-cluster lists no hosts"))
			}
		}
		oc, err = runRemote(remoteArgs{
			bases: bases, path: flag.Arg(0),
			k: *k, algo: *algo, ub: *ub, seed: *seed,
			faults: *faults, faultSeed: *faultSeed,
			degrade: *degrade, verify: *verify, traceOut: *traceOut,
			prof:       prof,
			retries:    *retries,
			tenant:     *tenant,
			deadlineMs: *deadlineMs,
		})
	} else {
		oc, err = runLocal(*k, *algo, *ub, *seed, *faults, *faultSeed,
			*degrade, *verify, *traceOut, *metricsOut, *report, *ckptDir, prof)
	}
	if err != nil {
		fail(err)
	}

	// Partition vector: stdout by default; with -json, only to -o so
	// stdout stays machine-readable.
	if *out != "" || !*jsonOut {
		dst := os.Stdout
		if *out != "" {
			dst, err = os.Create(*out)
			if err != nil {
				fail(err)
			}
			defer dst.Close()
		}
		w := bufio.NewWriter(dst)
		for _, p := range oc.part {
			fmt.Fprintln(w, p)
		}
		if err := w.Flush(); err != nil {
			fail(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(oc); err != nil {
			fail(err)
		}
	} else {
		fmt.Fprintln(os.Stderr, oc.summaryLine())
	}

	// A degraded run when the caller explicitly opted out of degradation
	// still produced a valid partition, but must be visible to scripts.
	if oc.Degraded && !*degrade {
		os.Exit(3)
	}
}

// profileArgs bundles the kernel-profiling flags: whether profiling is
// on at all, whether the roofline table goes to stderr, how many kernels
// it shows, and where (if anywhere) the JSON report lands.
type profileArgs struct {
	enabled bool
	table   bool
	top     int
	jsonOut string
}

// emit renders a completed run's profile per the flags.
func (pa profileArgs) emit(rep *gpmetis.ProfileReport) error {
	if rep == nil {
		return nil
	}
	if pa.table {
		fmt.Fprint(os.Stderr, rep.Table(pa.top))
	}
	if pa.jsonOut != "" {
		return writeFile(pa.jsonOut, func(w *bufio.Writer) error { return rep.WriteJSON(w) })
	}
	return nil
}

// runLocal partitions in-process, exactly as before the daemon existed.
// With checkpointDir set (gp only), the run snapshots at every level
// boundary under a name derived from the input, k, and seed; a later
// invocation of the same run finds the snapshot and resumes from it
// bit-identically, and a completed run removes it.
func runLocal(k int, algoName string, ub float64, seed int64, faults string, faultSeed int64,
	degrade, verify bool, traceOut, metricsOut string, report bool, checkpointDir string,
	prof profileArgs) (*outcome, error) {
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var g *gpmetis.Graph
	if strings.HasSuffix(path, ".gr") {
		g, err = gpmetis.ReadGraphGR(f) // DIMACS9 road-network format
	} else {
		g, err = gpmetis.ReadGraph(f) // Chaco/Metis format
	}
	f.Close()
	if err != nil {
		return nil, err
	}

	a, err := parseAlgo(algoName)
	if err != nil {
		return nil, err
	}
	var tracer *gpmetis.Tracer
	if traceOut != "" || metricsOut != "" || report {
		tracer = gpmetis.NewTracer()
	}
	injector, err := gpmetis.ParseFaultScenario(faultSeed, faults)
	if err != nil {
		return nil, err
	}

	o := gpmetis.Options{
		Algorithm: a,
		Seed:      seed,
		UBFactor:  ub,
		Tracer:    tracer,
		Profile:   prof.enabled,
		Faults:    injector,
		Degrade:   degrade,
		Verify:    verify,
	}
	var ckptPath string
	if checkpointDir != "" && a == gpmetis.GPMetis {
		ckptPath = filepath.Join(checkpointDir,
			fmt.Sprintf("%s.k%d.s%d.ckpt", filepath.Base(path), k, seed))
		if c, rerr := gpmetis.ReadCheckpointFile(ckptPath); rerr == nil {
			o.Resume = c
			fmt.Fprintf(os.Stderr, "gpmetis: resuming from %s (%s)\n", ckptPath, c.Describe())
		} else if !errors.Is(rerr, fs.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "gpmetis: ignoring unreadable checkpoint %s: %v\n", ckptPath, rerr)
		}
		warned := false
		o.Checkpoint = func(c *gpmetis.Checkpoint) error {
			if werr := gpmetis.WriteCheckpointFile(ckptPath, c); werr != nil {
				// Durability degradation: keep computing, warn once.
				if !warned {
					warned = true
					fmt.Fprintf(os.Stderr, "gpmetis: checkpointing disabled: %v\n", werr)
				}
			}
			return nil
		}
	}

	res, err := gpmetis.Partition(g, k, o)
	if err != nil && o.Resume != nil &&
		(errors.Is(err, gpmetis.ErrCheckpointMismatch) || errors.Is(err, gpmetis.ErrCheckpointCorrupt)) {
		// A snapshot from a different graph/options (or a damaged one)
		// must never block the run: drop it and start from scratch.
		fmt.Fprintf(os.Stderr, "gpmetis: checkpoint %s is stale; rerunning from scratch\n", ckptPath)
		o.Resume = nil
		res, err = gpmetis.Partition(g, k, o)
	}
	if err != nil {
		return nil, err
	}
	if ckptPath != "" {
		os.Remove(ckptPath) // the run is done; the snapshot is dead weight
	}

	if traceOut != "" {
		if err := writeFile(traceOut, func(w *bufio.Writer) error {
			return gpmetis.WriteChromeTrace(w, tracer)
		}); err != nil {
			return nil, err
		}
	}
	if metricsOut != "" {
		extra := map[string]any{
			"edge_cut":            res.EdgeCut,
			"modeled_seconds":     res.ModeledSeconds,
			"imbalance":           gpmetis.Imbalance(g, res.Part, k),
			"match_conflict_rate": res.MatchConflictRate(),
		}
		if err := writeFile(metricsOut, func(w *bufio.Writer) error {
			return gpmetis.WriteMetricsJSON(w, tracer, extra)
		}); err != nil {
			return nil, err
		}
	}
	if report {
		fmt.Fprint(os.Stderr, gpmetis.LevelTable(tracer))
	}
	if err := prof.emit(res.Profile); err != nil {
		return nil, err
	}

	return &outcome{
		Input:          path,
		Algo:           a.String(),
		K:              k,
		EdgeCut:        res.EdgeCut,
		Imbalance:      gpmetis.Imbalance(g, res.Part, k),
		ModeledSeconds: res.ModeledSeconds,
		ConflictRate:   res.MatchConflictRate(),
		FaultEvents:    len(res.FaultEvents),
		Degraded:       res.Degraded,
		DegradedReason: res.DegradedReason,
		part:           res.Part,
		hasConflicts:   res.MatchAttempts > 0,
	}, nil
}

// parseAlgo maps the CLI algorithm names onto the library enum.
func parseAlgo(name string) (gpmetis.Algorithm, error) {
	switch name {
	case "gp":
		return gpmetis.GPMetis, nil
	case "metis":
		return gpmetis.Metis, nil
	case "mt":
		return gpmetis.MtMetis, nil
	case "par":
		return gpmetis.ParMetis, nil
	case "ptscotch":
		return gpmetis.PTScotch, nil
	case "gmetis":
		return gpmetis.Gmetis, nil
	case "jostle":
		return gpmetis.Jostle, nil
	case "spectral":
		return gpmetis.Spectral, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want gp, metis, mt, par, ptscotch, gmetis, jostle, or spectral)", name)
	}
}

// summaryLine renders the classic one-line stderr summary.
func (oc *outcome) summaryLine() string {
	where := oc.Input
	if oc.Server != "" {
		where = fmt.Sprintf("%s@%s[%s]", oc.Input, oc.Server, oc.JobID)
	}
	s := fmt.Sprintf("%s: %s k=%d cut=%d imbalance=%.4f modeled=%.3fs",
		where, oc.Algo, oc.K, oc.EdgeCut, oc.Imbalance, oc.ModeledSeconds)
	if oc.hasConflicts {
		s += fmt.Sprintf(" conflict_rate=%.2f%%", 100*oc.ConflictRate)
	}
	if oc.Cached {
		s += " CACHED"
	}
	if oc.FaultEvents > 0 {
		s += fmt.Sprintf(" fault_events=%d", oc.FaultEvents)
	}
	if oc.Degraded {
		s += fmt.Sprintf(" DEGRADED(%s)", oc.DegradedReason)
	}
	return s
}

// writeFile creates path and streams fn's output through a buffered writer.
func writeFile(path string, fn func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := fn(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpmetis:", err)
	os.Exit(1)
}
