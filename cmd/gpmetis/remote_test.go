package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeTempGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tiny.metis")
	if err := os.WriteFile(path, []byte("3 2\n2\n1 3\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSubmitRetriesOn429: the client must honor Retry-After on queue
// overload and re-submit with backoff until the daemon admits the job.
func TestSubmitRetriesOn429(t *testing.T) {
	posts := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		posts++
		if posts <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"server: job queue full","code":"overloaded"}`))
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"id":"j000042","state":"done","device":0,"wait_seconds":0,` +
			`"result":{"part":[0,1,0],"edge_cut":2,"imbalance":1.0,"modeled_seconds":0.001}}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var slept []time.Duration
	retrySleep = func(d time.Duration) { slept = append(slept, d) }
	defer func() { retrySleep = time.Sleep }()

	oc, err := runRemote(remoteArgs{
		bases: []string{ts.URL}, path: writeTempGraph(t), k: 2, algo: "gp", retries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if posts != 3 {
		t.Errorf("posted %d times, want 3 (2 rejections + 1 admit)", posts)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		// Attempt i backs off from the server's 1s Retry-After floor:
		// floor<<i plus up to 50% jitter.
		lo := time.Second << uint(i)
		hi := lo + lo/2
		if d < lo || d > hi {
			t.Errorf("retry %d slept %v, want within [%v, %v]", i, d, lo, hi)
		}
	}
	if oc.JobID != "j000042" || oc.EdgeCut != 2 || len(oc.part) != 3 {
		t.Errorf("outcome = %+v", oc)
	}
}

// TestSubmitGivesUpAfterRetries: a daemon that stays overloaded
// exhausts the budget and surfaces the typed overload error.
func TestSubmitGivesUpAfterRetries(t *testing.T) {
	posts := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		posts++
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"server: job queue full","code":"overloaded"}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	retrySleep = func(time.Duration) {}
	defer func() { retrySleep = time.Sleep }()

	_, err := runRemote(remoteArgs{
		bases: []string{ts.URL}, path: writeTempGraph(t), k: 2, algo: "gp", retries: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("err = %v, want the overload error after exhausting retries", err)
	}
	if posts != 2 {
		t.Errorf("posted %d times, want 2 (initial + 1 retry)", posts)
	}
}

// TestSubmitRetryBudgetTrips: with a large -retries, the shed-rate
// breaker still cuts the loop once it has enough evidence (4 attempts)
// that the daemon is shedding everything — the client must not keep
// hammering an overloaded daemon just because retries allow it.
func TestSubmitRetryBudgetTrips(t *testing.T) {
	posts := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		posts++
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"server: job queue full","code":"overloaded"}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	retrySleep = func(time.Duration) {}
	defer func() { retrySleep = time.Sleep }()

	_, err := runRemote(remoteArgs{
		bases: []string{ts.URL}, path: writeTempGraph(t), k: 2, algo: "gp", retries: 100,
	})
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v, want the retry-budget error", err)
	}
	if posts != breakerMinAttempts {
		t.Errorf("posted %d times, want %d (breaker trips at min evidence when everything is shed)",
			posts, breakerMinAttempts)
	}
}

// TestSubmitDeadlineUnmeetableIsTerminal: a deadline_unmeetable
// rejection is not retryable — re-submitting the same deadline cannot
// make it meetable, so the client must fail fast on the first response.
func TestSubmitDeadlineUnmeetableIsTerminal(t *testing.T) {
	posts := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		posts++
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"deadline 10ms cannot be met","code":"deadline_unmeetable"}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	retrySleep = func(time.Duration) { t.Error("slept on a non-retryable rejection") }
	defer func() { retrySleep = time.Sleep }()

	_, err := runRemote(remoteArgs{
		bases: []string{ts.URL}, path: writeTempGraph(t), k: 2, algo: "gp", retries: 5, deadlineMs: 10,
	})
	if err == nil || !strings.Contains(err.Error(), "deadline_unmeetable") {
		t.Fatalf("err = %v, want the deadline_unmeetable error", err)
	}
	if posts != 1 {
		t.Errorf("posted %d times, want 1 (no retries on an unmeetable deadline)", posts)
	}
}

// TestSubmitRetriesOn503Draining: a draining daemon's 503 carries a
// Retry-After just like an overload 429; the client must honor it and
// re-submit instead of failing on the first response.
func TestSubmitRetriesOn503Draining(t *testing.T) {
	posts := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		posts++
		if posts <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"server: draining, not admitting jobs","code":"draining"}`))
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"id":"j000043","state":"done","device":0,"wait_seconds":0,` +
			`"result":{"part":[0,1,0],"edge_cut":2,"imbalance":1.0,"modeled_seconds":0.001}}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var slept []time.Duration
	retrySleep = func(d time.Duration) { slept = append(slept, d) }
	defer func() { retrySleep = time.Sleep }()

	oc, err := runRemote(remoteArgs{
		bases: []string{ts.URL}, path: writeTempGraph(t), k: 2, algo: "gp", retries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if posts != 3 {
		t.Errorf("posted %d times, want 3 (2 draining rejections + 1 admit)", posts)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		lo := time.Second << uint(i)
		hi := lo + lo/2
		if d < lo || d > hi {
			t.Errorf("retry %d slept %v, want within [%v, %v] (Retry-After floor)", i, d, lo, hi)
		}
	}
	if oc.JobID != "j000043" {
		t.Errorf("outcome = %+v", oc)
	}
}

// TestSubmit503UnknownCodeIsTerminal: only draining and
// cluster_unreachable 503s are retryable; any other 503 code fails
// fast without sleeping.
func TestSubmit503UnknownCodeIsTerminal(t *testing.T) {
	posts := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		posts++
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"maintenance window","code":"maintenance"}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	retrySleep = func(time.Duration) { t.Error("slept on a non-retryable 503") }
	defer func() { retrySleep = time.Sleep }()

	_, err := runRemote(remoteArgs{
		bases: []string{ts.URL}, path: writeTempGraph(t), k: 2, algo: "gp", retries: 5,
	})
	if err == nil || !strings.Contains(err.Error(), "maintenance") {
		t.Fatalf("err = %v, want the terminal maintenance rejection", err)
	}
	if posts != 1 {
		t.Errorf("posted %d times, want 1", posts)
	}
}

// TestClusterFailoverToNextBase: with -cluster, a dead first node
// (connection refused) must not fail the run — the client advances to
// the next base and submits there.
func TestClusterFailoverToNextBase(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // now refuses connections

	posts := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		posts++
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"id":"j000044","state":"done","device":0,"wait_seconds":0,` +
			`"result":{"part":[0,1,0],"edge_cut":2,"imbalance":1.0,"modeled_seconds":0.001}}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var slept []time.Duration
	retrySleep = func(d time.Duration) { slept = append(slept, d) }
	defer func() { retrySleep = time.Sleep }()

	oc, err := runRemote(remoteArgs{
		bases: []string{deadURL, ts.URL}, path: writeTempGraph(t), k: 2, algo: "gp", retries: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if posts != 1 {
		t.Errorf("live node saw %d posts, want 1", posts)
	}
	if oc.JobID != "j000044" || oc.Server != ts.URL {
		t.Errorf("outcome = %+v, want job j000044 served by %s", oc, ts.URL)
	}
	// The failover must be jittered, not immediate: exactly one sleep,
	// drawn from the decorrelated-jitter window.
	if len(slept) != 1 {
		t.Fatalf("slept %d times on failover, want 1", len(slept))
	}
	if slept[0] < 50*time.Millisecond || slept[0] > 200*time.Millisecond {
		t.Errorf("first failover slept %v, want within [50ms, 200ms]", slept[0])
	}
}

// TestFailoverDelayBounds: decorrelated jitter stays within
// [base, min(cap, 3*prev)] and never collapses to zero — a dead entry
// node must not synchronize thundering resubmits onto its successor.
func TestFailoverDelayBounds(t *testing.T) {
	const base = 50 * time.Millisecond
	const cap = 2 * time.Second
	for i := 0; i < 200; i++ {
		var prev time.Duration
		for hop := 0; hop < 8; hop++ {
			lo, hi := base, 3*prev
			if hi < 3*base {
				hi = 3 * base
			}
			if hi > cap {
				hi = cap
			}
			d := failoverDelay(prev)
			if d < lo || d > hi {
				t.Fatalf("failoverDelay(%v) = %v, want within [%v, %v]", prev, d, lo, hi)
			}
			prev = d
		}
	}
}

// TestClusterAllNodesDown: every base refusing connections surfaces a
// summary error naming the cluster, not a bare dial failure.
func TestClusterAllNodesDown(t *testing.T) {
	a := httptest.NewServer(http.NotFoundHandler())
	b := httptest.NewServer(http.NotFoundHandler())
	aURL, bURL := a.URL, b.URL
	a.Close()
	b.Close()

	_, err := runRemote(remoteArgs{
		bases: []string{aURL, bURL}, path: writeTempGraph(t), k: 2, algo: "gp",
	})
	if err == nil || !strings.Contains(err.Error(), "all 2 cluster nodes unreachable") {
		t.Fatalf("err = %v, want the all-nodes-unreachable summary", err)
	}
}

func TestClusterBasesParsing(t *testing.T) {
	got := clusterBases(" host1:8080, http://host2:9090/ ,,https://host3 ")
	want := []string{"http://host1:8080", "http://host2:9090", "https://host3"}
	if len(got) != len(want) {
		t.Fatalf("clusterBases = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("clusterBases[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRetryDelayBounds(t *testing.T) {
	for attempt := 0; attempt < 8; attempt++ {
		for _, floor := range []time.Duration{0, 2 * time.Second} {
			base := 500 * time.Millisecond
			if floor > 0 {
				base = floor
			}
			exp := attempt
			if exp > 6 {
				exp = 6
			}
			lo := base << uint(exp)
			hi := lo + lo/2
			for i := 0; i < 50; i++ {
				if d := retryDelay(attempt, floor); d < lo || d > hi {
					t.Fatalf("retryDelay(%d, %v) = %v, want within [%v, %v]", attempt, floor, d, lo, hi)
				}
			}
		}
	}
}
