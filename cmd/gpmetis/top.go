package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"gpmetis/internal/server"
)

// runTop is the terminal ops view: it polls the daemon's
// /admin/status.json at the given interval and redraws a compact
// dashboard, the curses-flavored sibling of the HTML page at
// /admin/status. iterations bounds the number of frames (0 = until
// interrupted); one frame with no screen clearing suits scripts.
func runTop(base string, interval time.Duration, iterations int) error {
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; iterations <= 0 || i < iterations; i++ {
		if i > 0 {
			time.Sleep(interval)
			fmt.Print("\x1b[2J\x1b[H") // clear + home between frames
		}
		st, err := fetchStatus(client, base)
		if err != nil {
			return err
		}
		renderTop(os.Stdout, base, st)
	}
	return nil
}

// runFleetTop is the fleet flavor of -top: it polls the federated
// /admin/cluster/status.json of the first ring member that answers
// (failing over down the list each frame, like submissions do) and
// renders one row per node — the whole ring on one terminal.
func runFleetTop(bases []string, interval time.Duration, iterations int) error {
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; iterations <= 0 || i < iterations; i++ {
		if i > 0 {
			time.Sleep(interval)
			fmt.Print("\x1b[2J\x1b[H") // clear + home between frames
		}
		fs, from, err := fetchFleet(client, bases)
		if err != nil {
			return err
		}
		renderFleet(os.Stdout, from, fs)
	}
	return nil
}

// fetchFleet asks each base in turn for the fleet view, returning the
// first answer and which base gave it.
func fetchFleet(client *http.Client, bases []string) (*server.FleetStatus, string, error) {
	var lastErr error
	for _, base := range bases {
		resp, err := client.Get(base + "/admin/cluster/status.json")
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("fleet status from %s: HTTP %d", base, resp.StatusCode)
			continue
		}
		var fs server.FleetStatus
		err = json.NewDecoder(resp.Body).Decode(&fs)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("fleet status from %s: %v", base, err)
			continue
		}
		return &fs, base, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no ring members to poll")
	}
	return nil, "", lastErr
}

func renderFleet(w *os.File, from string, fs *server.FleetStatus) {
	fmt.Fprintf(w, "gpmetisd fleet via %s — seen from node %d", from, fs.Node)
	if fs.Replicas > 0 {
		fmt.Fprintf(w, ", RF=%d", fs.Replicas)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "\nNODE  STATE  ADDR                  RTT      SHARE   QUEUE      DONE  FAIL  SLO     BURNf  BURNs  QUAR  HINTS  CACHE")
	for _, node := range fs.Nodes {
		state := "down"
		switch {
		case node.Left:
			state = "left"
		case node.Self:
			state = "self"
		case node.Up:
			state = "up"
		}
		rtt := "-"
		if !node.Self && node.Up {
			rtt = fmt.Sprintf("%.1fms", node.RTTSeconds*1000)
		}
		if node.Status == nil {
			reason := node.Error
			if node.Left {
				reason = "decommissioned"
			}
			fmt.Fprintf(w, "%4d  %-5s  %-20s  %-7s  %5.1f%%  %s\n",
				node.ID, state, node.Addr, rtt, node.OwnershipPct, reason)
			continue
		}
		st := node.Status
		quar := 0
		for _, sl := range st.Slots {
			if sl.State == server.DeviceQuarantined {
				quar++
			}
		}
		hints := int64(0)
		if st.Cluster != nil {
			hints = st.Cluster.HintsOutstanding
		}
		fmt.Fprintf(w, "%4d  %-5s  %-20s  %-7s  %5.1f%%  %4d/%-4d  %5d  %4d  %-6s  %5.2f  %5.2f  %4d  %5d  %5d\n",
			node.ID, state, node.Addr, rtt, node.OwnershipPct,
			st.QueueDepth, st.QueueCap, st.JobsCompleted, st.JobsFailed,
			st.SLO.Status, st.SLO.Fast.LatencyBurn, st.SLO.Slow.LatencyBurn,
			quar, hints, st.CacheEntries)
	}

	fmt.Fprintln(w, "\nNODE  FWDS  PEEK-HIT  PEEK-MISS  FAILOVER  REPL-PUSH  DRAINED  REPAIR+  REPAIR-  NET-MODELED")
	for _, node := range fs.Nodes {
		if node.Status == nil || node.Status.Cluster == nil {
			continue
		}
		c := node.Status.Cluster
		fmt.Fprintf(w, "%4d  %4d  %8d  %9d  %8d  %9d  %7d  %7d  %7d  %10.3fs\n",
			c.NodeID, c.Forwards, c.PeekHits, c.PeekMisses, c.Failovers,
			c.ReplicaPushes, c.HandoffDrained, c.RepairPushed, c.RepairPulled,
			c.NetModeledSeconds)
	}
}

func fetchStatus(client *http.Client, base string) (*server.StatusResponse, error) {
	resp, err := client.Get(base + "/admin/status.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("daemon status: HTTP %d", resp.StatusCode)
	}
	var st server.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("daemon status: %v", err)
	}
	return &st, nil
}

func renderTop(w *os.File, base string, st *server.StatusResponse) {
	fmt.Fprintf(w, "gpmetisd %s @ %s — %s, up %s, modeled %.3fs\n",
		st.Version, base, st.Status, time.Duration(st.UptimeSeconds*float64(time.Second)).Round(time.Second),
		st.ModeledSeconds)
	fmt.Fprintf(w, "queue %d/%d  submitted %d  completed %d  failed %d  canceled %d  rejected %d  coalesced %d  degraded %d\n",
		st.QueueDepth, st.QueueCap, st.JobsSubmitted, st.JobsCompleted, st.JobsFailed,
		st.JobsCanceled, st.JobsRejected, st.JobsCoalesced, st.JobsDegraded)
	fmt.Fprintf(w, "cache  hits %d  misses %d  hit-rate %.1f%%  entries %d\n",
		st.CacheHits, st.CacheMisses, st.CacheHitRate*100, st.CacheEntries)

	fmt.Fprintln(w, "\nSLOT  STATE        RUNNING    JOBS   BUSY")
	for _, sl := range st.Slots {
		running := sl.RunningJob
		if running == "" {
			running = "-"
		}
		fmt.Fprintf(w, "%4d  %-11s  %-9s %5d  %6.2fs\n",
			sl.Slot, sl.State, running, sl.Jobs, sl.BusySeconds)
	}

	fmt.Fprintln(w, "\nLATENCY        COUNT      P50       P90       P99")
	for _, row := range []struct {
		name string
		l    server.LatencySummary
	}{
		{"queue wait", st.QueueWait},
		{"run", st.RunSeconds},
		{"total", st.TotalSeconds},
	} {
		fmt.Fprintf(w, "%-12s %7d  %7.3fs  %7.3fs  %7.3fs\n",
			row.name, row.l.Count, row.l.P50, row.l.P90, row.l.P99)
	}

	slo := st.SLO
	fmt.Fprintf(w, "\nSLO %s — latency<=%.2fs@%.0f%% burn fast %.2f slow %.2f; availability@%.0f%% burn fast %.2f slow %.2f (window jobs %d/%d)\n",
		slo.Status, slo.LatencyThresholdSeconds, slo.LatencyTarget*100,
		slo.Fast.LatencyBurn, slo.Slow.LatencyBurn,
		slo.AvailabilityTarget*100, slo.Fast.AvailabilityBurn, slo.Slow.AvailabilityBurn,
		slo.Fast.Jobs, slo.Slow.Jobs)
	if st.LastEvent != "" {
		fmt.Fprintf(w, "events %d, last %s\n", st.EventsTotal, st.LastEvent)
	}
}
