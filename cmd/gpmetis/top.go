package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"gpmetis/internal/server"
)

// runTop is the terminal ops view: it polls the daemon's
// /admin/status.json at the given interval and redraws a compact
// dashboard, the curses-flavored sibling of the HTML page at
// /admin/status. iterations bounds the number of frames (0 = until
// interrupted); one frame with no screen clearing suits scripts.
func runTop(base string, interval time.Duration, iterations int) error {
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; iterations <= 0 || i < iterations; i++ {
		if i > 0 {
			time.Sleep(interval)
			fmt.Print("\x1b[2J\x1b[H") // clear + home between frames
		}
		st, err := fetchStatus(client, base)
		if err != nil {
			return err
		}
		renderTop(os.Stdout, base, st)
	}
	return nil
}

func fetchStatus(client *http.Client, base string) (*server.StatusResponse, error) {
	resp, err := client.Get(base + "/admin/status.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("daemon status: HTTP %d", resp.StatusCode)
	}
	var st server.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("daemon status: %v", err)
	}
	return &st, nil
}

func renderTop(w *os.File, base string, st *server.StatusResponse) {
	fmt.Fprintf(w, "gpmetisd %s @ %s — %s, up %s, modeled %.3fs\n",
		st.Version, base, st.Status, time.Duration(st.UptimeSeconds*float64(time.Second)).Round(time.Second),
		st.ModeledSeconds)
	fmt.Fprintf(w, "queue %d/%d  submitted %d  completed %d  failed %d  canceled %d  rejected %d  coalesced %d  degraded %d\n",
		st.QueueDepth, st.QueueCap, st.JobsSubmitted, st.JobsCompleted, st.JobsFailed,
		st.JobsCanceled, st.JobsRejected, st.JobsCoalesced, st.JobsDegraded)
	fmt.Fprintf(w, "cache  hits %d  misses %d  hit-rate %.1f%%  entries %d\n",
		st.CacheHits, st.CacheMisses, st.CacheHitRate*100, st.CacheEntries)

	fmt.Fprintln(w, "\nSLOT  STATE        RUNNING    JOBS   BUSY")
	for _, sl := range st.Slots {
		running := sl.RunningJob
		if running == "" {
			running = "-"
		}
		fmt.Fprintf(w, "%4d  %-11s  %-9s %5d  %6.2fs\n",
			sl.Slot, sl.State, running, sl.Jobs, sl.BusySeconds)
	}

	fmt.Fprintln(w, "\nLATENCY        COUNT      P50       P90       P99")
	for _, row := range []struct {
		name string
		l    server.LatencySummary
	}{
		{"queue wait", st.QueueWait},
		{"run", st.RunSeconds},
		{"total", st.TotalSeconds},
	} {
		fmt.Fprintf(w, "%-12s %7d  %7.3fs  %7.3fs  %7.3fs\n",
			row.name, row.l.Count, row.l.P50, row.l.P90, row.l.P99)
	}

	slo := st.SLO
	fmt.Fprintf(w, "\nSLO %s — latency<=%.2fs@%.0f%% burn fast %.2f slow %.2f; availability@%.0f%% burn fast %.2f slow %.2f (window jobs %d/%d)\n",
		slo.Status, slo.LatencyThresholdSeconds, slo.LatencyTarget*100,
		slo.Fast.LatencyBurn, slo.Slow.LatencyBurn,
		slo.AvailabilityTarget*100, slo.Fast.AvailabilityBurn, slo.Slow.AvailabilityBurn,
		slo.Fast.Jobs, slo.Slow.Jobs)
	if st.LastEvent != "" {
		fmt.Fprintf(w, "events %d, last %s\n", st.EventsTotal, st.LastEvent)
	}
}
