// Scheduler: mapping a task-interaction graph onto workers — the problem
// the paper's introduction opens with. Vertices are tasks weighted by
// computation cost, edges are data-interaction links weighted by
// communication cost; the goal is to assign tasks to 8 workers so that
// each worker is computationally balanced and the total inter-worker
// communication (edge cut) is minimized.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gpmetis"
)

const workers = 8

func main() {
	g := taskGraph(20_000, 42)
	fmt.Printf("task graph: %v, total work %d, total traffic %d\n\n",
		g, g.TotalVertexWeight(), g.TotalEdgeWeight())

	// Round-robin scheduling, the naive baseline.
	rr := make([]int, g.NumVertices())
	for v := range rr {
		rr[v] = v % workers
	}
	report("round-robin", g, rr)

	// Partitioner-based scheduling.
	res, err := gpmetis.Partition(g, workers, gpmetis.Options{UBFactor: 1.05})
	if err != nil {
		log.Fatal(err)
	}
	report("GP-metis", g, res.Part)

	fmt.Println("\nThe partitioner trades a sliver of balance for an order" +
		" of magnitude less inter-worker communication.")
}

// report prints the schedule quality: per-worker load spread (makespan
// proxy) and inter-worker traffic (edge cut).
func report(name string, g *gpmetis.Graph, assign []int) {
	load := make([]int, workers)
	for v := 0; v < g.NumVertices(); v++ {
		load[assign[v]] += g.VWgt[v]
	}
	max := 0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	avg := float64(g.TotalVertexWeight()) / workers
	fmt.Printf("%-12s makespan %d (%.1f%% over ideal), inter-worker traffic %d\n",
		name, max, 100*(float64(max)-avg)/avg, gpmetis.EdgeCut(g, assign))
}

// taskGraph builds a synthetic scientific workflow: a layered sparse DAG
// skeleton (treated undirected for partitioning) with heavy-tailed task
// costs — the irregular task-interaction structure the paper targets.
func taskGraph(n int, seed int64) *gpmetis.Graph {
	r := rand.New(rand.NewSource(seed))
	b := gpmetis.NewBuilder(n)
	layerSize := 200
	for v := 0; v < n; v++ {
		// Task cost: mostly small, occasionally large.
		cost := 1 + r.Intn(4)
		if r.Intn(50) == 0 {
			cost = 20 + r.Intn(80)
		}
		if err := b.SetVertexWeight(v, cost); err != nil {
			log.Fatal(err)
		}
		if v == 0 {
			continue
		}
		// Dependencies reach into the previous layers, mostly nearby.
		deps := 1 + r.Intn(3)
		for d := 0; d < deps; d++ {
			lo := v - layerSize
			if lo < 0 {
				lo = 0
			}
			u := lo + r.Intn(v-lo)
			traffic := 1 + r.Intn(10)
			if err := b.AddEdge(u, v, traffic); err != nil {
				log.Fatal(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}
