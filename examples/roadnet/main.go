// Roadnet: sharding a road network across route-planning servers.
//
// A USA-roads-like planar network is partitioned so that each server owns
// one region; queries that cross a partition boundary ("border crossings")
// need a distributed handoff, so the edge cut is the number of road
// segments whose endpoints live on different servers. The example
// compares all four partitioners of the library on the same input — the
// comparison the paper's Figure 5 and Table III make.
package main

import (
	"fmt"
	"log"

	"gpmetis"
)

func main() {
	g, err := gpmetis.RoadNetwork(120_000, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %v, avg degree %.2f\n\n", g, g.AvgDegree())
	const servers = 32

	fmt.Printf("%-10s %14s %10s %14s\n", "algorithm", "border roads", "imbalance", "modeled time")
	for _, algo := range []gpmetis.Algorithm{
		gpmetis.Metis, gpmetis.ParMetis, gpmetis.MtMetis, gpmetis.GPMetis,
		gpmetis.PTScotch, gpmetis.Gmetis, gpmetis.Jostle,
	} {
		res, err := gpmetis.Partition(g, servers, gpmetis.Options{Algorithm: algo})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14d %10.4f %13.3fs\n",
			algo, res.EdgeCut, gpmetis.Imbalance(g, res.Part, servers), res.ModeledSeconds)
	}

	// For the winning partition, show the per-server load distribution a
	// deployment dashboard would care about.
	res, err := gpmetis.Partition(g, servers, gpmetis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	load := make([]int, servers)
	for v := 0; v < g.NumVertices(); v++ {
		load[res.Part[v]]++
	}
	min, max := load[0], load[0]
	for _, l := range load {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	fmt.Printf("\nGP-metis server load: min %d, max %d vertices (%d servers)\n", min, max, servers)
}
