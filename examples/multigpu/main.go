// Multigpu: the paper's Section V future work in action — partitioning a
// graph that does not fit in one GPU's memory by sharding it across
// several modeled devices.
//
// The example shrinks the modeled device so a mid-sized mesh no longer
// fits, shows the single-GPU pipeline refusing it (the paper's stated
// assumption is that the graph fits), and then partitions it across 2, 4,
// and 8 devices, reporting time and quality.
package main

import (
	"fmt"
	"log"

	"gpmetis"
)

func main() {
	g, err := gpmetis.HugeBubble(200_000, 5)
	if err != nil {
		log.Fatal(err)
	}
	const k = 32

	// Reference: an unconstrained single GPU.
	ref, err := gpmetis.Partition(g, k, gpmetis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %v (%.1f MB CSR)\n", g, float64(g.Bytes())/1e6)
	fmt.Printf("1 GPU, full memory: cut %d, modeled %.3fs\n\n", ref.EdgeCut, ref.ModeledSeconds)

	// Now shrink the device below the graph's footprint.
	small := gpmetis.DefaultMachine()
	small.GPU.GlobalMemBytes = g.Bytes()/2 + 4096
	fmt.Printf("device memory reduced to %.1f MB...\n", float64(small.GPU.GlobalMemBytes)/1e6)

	if _, err := gpmetis.Partition(g, k, gpmetis.Options{Machine: small}); err != nil {
		fmt.Printf("single GPU refuses, as the paper assumes: %v\n\n", err)
	} else {
		log.Fatal("expected the reduced device to refuse the graph")
	}

	for _, devices := range []int{2, 4, 8} {
		res, err := gpmetis.Partition(g, k, gpmetis.Options{Machine: small, Devices: devices})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d GPUs: cut %d (%.2fx of single-GPU), modeled %.3fs, imbalance %.3f\n",
			devices, res.EdgeCut, float64(res.EdgeCut)/float64(ref.EdgeCut),
			res.ModeledSeconds, gpmetis.Imbalance(g, res.Part, k))
	}
}
