// Quickstart: generate a graph, partition it with GP-metis, and inspect
// the result — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"gpmetis"
)

func main() {
	// A Delaunay triangulation of 50k random points, like the paper's
	// "delaunay" input (DIMACS10) at reduced scale.
	g, err := gpmetis.Delaunay(50_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %v, avg degree %.2f\n", g, g.AvgDegree())

	// Partition into 64 parts with the paper's parameters (3% imbalance).
	res, err := gpmetis.Partition(g, 64, gpmetis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GP-metis: edge cut %d, imbalance %.4f, modeled %.3fs on the paper's CPU+GPU testbed\n",
		res.EdgeCut, gpmetis.Imbalance(g, res.Part, 64), res.ModeledSeconds)

	// Where did the modeled time go? The timeline holds every phase:
	// GPU kernels, PCIe transfers, and the CPU stage in the middle.
	fmt.Println("\nphase breakdown (aggregated):")
	for _, p := range res.Timeline.ByPhaseName() {
		if p.Seconds > 0.0005 {
			fmt.Printf("  %-6s %-28s %8.4fs\n", p.Loc, p.Name, p.Seconds)
		}
	}

	// Compare against the serial baseline the paper measures speedup over.
	ser, err := gpmetis.Partition(g, 64, gpmetis.Options{Algorithm: gpmetis.Metis})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserial Metis: edge cut %d, modeled %.3fs -> GP-metis speedup %.2fx\n",
		ser.EdgeCut, ser.ModeledSeconds, ser.ModeledSeconds/res.ModeledSeconds)
}
