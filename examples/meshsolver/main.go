// Meshsolver: domain decomposition for a parallel finite-element solver —
// the scientific-computing workload the paper's introduction motivates.
//
// A 3-D FEM stiffness graph (the "ldoor" family) is split across 16
// workers. Each iteration of a distributed Jacobi-style solver must
// exchange one value per cut edge (the halo), so the partition quality
// directly sets the communication volume. The example runs a toy solver
// on top of the partition and compares GP-metis against a naive
// contiguous-range decomposition.
package main

import (
	"fmt"
	"log"

	"gpmetis"
)

const (
	workers    = 16
	iterations = 20
)

func main() {
	g, err := gpmetis.LDoor(30_000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FEM mesh: %v, avg degree %.1f\n", g, g.AvgDegree())

	res, err := gpmetis.Partition(g, workers, gpmetis.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Naive decomposition: contiguous index ranges.
	naive := make([]int, g.NumVertices())
	for v := range naive {
		naive[v] = v * workers / g.NumVertices()
	}

	for _, c := range []struct {
		name string
		part []int
	}{
		{"naive ranges", naive},
		{"GP-metis", res.Part},
	} {
		halo := gpmetis.EdgeCut(g, c.part)
		fmt.Printf("\n%s: halo exchange %d values/iteration, imbalance %.3f\n",
			c.name, halo, gpmetis.Imbalance(g, c.part, workers))
		x := solve(g, c.part)
		fmt.Printf("  solver residual after %d iterations: %.6f (total halo traffic %d values)\n",
			iterations, x, halo*iterations)
	}
}

// solve runs a toy Jacobi smoothing on the mesh (every vertex averages
// its neighbors) and returns the final maximum update as a convergence
// proxy. The partition does not change the math — it changes which edge
// values would cross the network, which is what the report above counts.
func solve(g *gpmetis.Graph, part []int) float64 {
	x := make([]float64, g.NumVertices())
	next := make([]float64, g.NumVertices())
	for v := range x {
		x[v] = float64(v % 17)
	}
	var maxDelta float64
	for it := 0; it < iterations; it++ {
		maxDelta = 0
		for v := 0; v < g.NumVertices(); v++ {
			adj, wgt := g.Neighbors(v)
			if len(adj) == 0 {
				continue
			}
			var sum, wsum float64
			for i, u := range adj {
				sum += float64(wgt[i]) * x[u]
				wsum += float64(wgt[i])
			}
			next[v] = sum / wsum
			if d := next[v] - x[v]; d > maxDelta {
				maxDelta = d
			} else if -d > maxDelta {
				maxDelta = -d
			}
		}
		x, next = next, x
	}
	_ = part
	return maxDelta
}
