package gpmetis

// Benchmarks regenerating the paper's evaluation artifacts, one target per
// table/figure (see DESIGN.md §3). Wall time measures this host's
// simulation speed; the paper-relevant numbers are attached as custom
// metrics: "modeled-s" (runtime on the modeled CPU+GPU testbed, the
// quantity in Table II), "speedup" (over serial Metis, Figure 5), and
// "cutratio" (vs Metis, Table III).
//
// The default scale is 1/200 of Table I so `go test -bench=.` completes in
// minutes; `cmd/bench -scale 20` runs the full evaluation.

import (
	"fmt"
	"sync"
	"testing"

	"gpmetis/internal/experiments"
	"gpmetis/internal/graph"
	"gpmetis/internal/graph/gen"
)

const benchScaleDiv = 200

var (
	benchInputsOnce sync.Once
	benchInputs     map[gen.Class]*graph.Graph
	benchMetisCut   map[gen.Class]int
	benchMetisSec   map[gen.Class]float64
)

func loadBenchInputs(b *testing.B) map[gen.Class]*graph.Graph {
	b.Helper()
	benchInputsOnce.Do(func() {
		var err error
		benchInputs, err = experiments.Inputs(experiments.Config{ScaleDiv: benchScaleDiv})
		if err != nil {
			panic(err)
		}
		benchMetisCut = map[gen.Class]int{}
		benchMetisSec = map[gen.Class]float64{}
		for _, cls := range gen.Classes() {
			res, err := Partition(benchInputs[cls], 64, Options{Algorithm: Metis})
			if err != nil {
				panic(err)
			}
			benchMetisCut[cls] = res.EdgeCut
			benchMetisSec[cls] = res.ModeledSeconds
		}
	})
	return benchInputs
}

// BenchmarkTable1Generators regenerates the Table I inputs (the workload
// generators themselves).
func BenchmarkTable1Generators(b *testing.B) {
	for _, cls := range gen.Classes() {
		b.Run(cls.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := gen.TableI(cls, benchScaleDiv, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(g.NumVertices()), "vertices")
			}
		})
	}
}

// benchPartition is the shared body for the Figure 5 / Table II / Table
// III benchmarks: run one partitioner on one input and report the modeled
// metrics.
func benchPartition(b *testing.B, cls gen.Class, algo Algorithm) {
	inputs := loadBenchInputs(b)
	g := inputs[cls]
	var res *Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Partition(g, 64, Options{Algorithm: algo, Seed: int64(1 + i%3)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ModeledSeconds, "modeled-s")
	b.ReportMetric(benchMetisSec[cls]/res.ModeledSeconds, "speedup")
	b.ReportMetric(float64(res.EdgeCut)/float64(benchMetisCut[cls]), "cutratio")
}

// BenchmarkFig5 covers Figure 5 (speedup over Metis) and, through its
// metrics, Table II (modeled-s) and Table III (cutratio): every
// partitioner on every Table I input, k=64.
func BenchmarkFig5(b *testing.B) {
	for _, cls := range gen.Classes() {
		for _, algo := range []Algorithm{Metis, ParMetis, MtMetis, GPMetis} {
			b.Run(fmt.Sprintf("%s/%s", cls, algo), func(b *testing.B) {
				benchPartition(b, cls, algo)
			})
		}
	}
}

// BenchmarkTable2Runtime isolates the Table II measurement for the
// paper's headline configuration (GP-metis on each input).
func BenchmarkTable2Runtime(b *testing.B) {
	for _, cls := range gen.Classes() {
		b.Run(cls.String(), func(b *testing.B) {
			benchPartition(b, cls, GPMetis)
		})
	}
}

// BenchmarkTable3Quality re-measures the edge-cut ratios of Table III
// (the cutratio metric) with the mt-metis comparison point included.
func BenchmarkTable3Quality(b *testing.B) {
	for _, cls := range gen.Classes() {
		b.Run(cls.String()+"/mt-metis", func(b *testing.B) {
			benchPartition(b, cls, MtMetis)
		})
		b.Run(cls.String()+"/GP-metis", func(b *testing.B) {
			benchPartition(b, cls, GPMetis)
		})
	}
}

// BenchmarkAblationMerge compares the two contraction merge strategies
// (DESIGN.md ablation A1) on the delaunay input.
func BenchmarkAblationMerge(b *testing.B) {
	inputs := loadBenchInputs(b)
	g := inputs[gen.ClassDelaunay]
	for _, merge := range []MergeStrategy{HashMerge, SortMerge} {
		b.Run(merge.String(), func(b *testing.B) {
			var res *Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = Partition(g, 64, Options{Merge: merge})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ModeledSeconds, "modeled-s")
		})
	}
}

// BenchmarkAblationThreshold sweeps the GPU->CPU handoff threshold
// (DESIGN.md ablation A2) on the hugebubble input.
func BenchmarkAblationThreshold(b *testing.B) {
	inputs := loadBenchInputs(b)
	g := inputs[gen.ClassHugeBubble]
	for _, thr := range []int{2048, 16384, 65536} {
		b.Run(fmt.Sprintf("threshold-%d", thr), func(b *testing.B) {
			var res *Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = Partition(g, 64, Options{GPUThreshold: thr})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ModeledSeconds, "modeled-s")
		})
	}
}
