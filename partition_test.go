package gpmetis

import (
	"bytes"
	"testing"
)

func TestPublicAPIAllAlgorithms(t *testing.T) {
	g, err := Delaunay(3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{GPMetis, Metis, MtMetis, ParMetis, PTScotch, Gmetis, Jostle, Spectral} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			res, err := Partition(g, 16, Options{Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Part) != g.NumVertices() {
				t.Fatalf("partition vector has %d entries", len(res.Part))
			}
			if res.EdgeCut != EdgeCut(g, res.Part) {
				t.Error("EdgeCut field disagrees with recomputation")
			}
			if res.ModeledSeconds <= 0 {
				t.Error("modeled runtime must be positive")
			}
			if imb := Imbalance(g, res.Part, 16); imb > 1.2 {
				t.Errorf("imbalance %.3f too high", imb)
			}
		})
	}
}

func TestPublicAPIDefaults(t *testing.T) {
	g, err := Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Zero options: GP-metis, seed 1, 3% imbalance.
	res, err := Partition(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Partition(g, 4, Options{Seed: 1, UBFactor: 1.03, Algorithm: GPMetis})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut != res2.EdgeCut {
		t.Error("zero options should equal explicit paper defaults")
	}
	if _, err := Partition(g, 4, Options{Algorithm: Algorithm(42)}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestPublicAPIGraphRoundTrip(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 || h.EdgeWeight(0, 1) != 2 {
		t.Error("round trip lost data")
	}
}

func TestPublicMachineOverride(t *testing.T) {
	g, err := Grid2D(30, 30)
	if err != nil {
		t.Fatal(err)
	}
	fast := DefaultMachine()
	fast.CPU.Cores = 8
	fast.CPU.ClockHz *= 4
	slow := DefaultMachine()
	rFast, err := Partition(g, 4, Options{Algorithm: Metis, Machine: fast})
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := Partition(g, 4, Options{Algorithm: Metis, Machine: slow})
	if err != nil {
		t.Fatal(err)
	}
	if rFast.ModeledSeconds >= rSlow.ModeledSeconds {
		t.Error("a faster modeled CPU must lower the modeled runtime")
	}
}

func TestMultiGPUThroughPublicAPI(t *testing.T) {
	g, err := Delaunay(20000, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	m.GPU.GlobalMemBytes = g.Bytes()/2 + 4096 // one device cannot hold it
	if _, err := Partition(g, 8, Options{Machine: m}); err == nil {
		t.Fatal("single device should refuse an oversized graph")
	}
	res, err := Partition(g, 8, Options{Machine: m, Devices: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Part) != g.NumVertices() {
		t.Error("multi-GPU partition incomplete")
	}
	if imb := Imbalance(g, res.Part, 8); imb > 1.15 {
		t.Errorf("imbalance %.3f", imb)
	}
}

func TestAlgorithmNames(t *testing.T) {
	names := map[Algorithm]string{
		GPMetis: "GP-metis", Metis: "Metis", MtMetis: "mt-metis",
		ParMetis: "ParMetis", PTScotch: "PT-Scotch", Gmetis: "Gmetis",
		Jostle: "Jostle", Spectral: "Spectral",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestPublicAPIProfile(t *testing.T) {
	g, err := Delaunay(3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// GPUThreshold lowered so a test-sized graph still launches kernels.
	res, err := Partition(g, 8, Options{Profile: true, GPUThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("Profile: true produced no Result.Profile")
	}
	if len(res.Profile.Kernels) == 0 {
		t.Fatal("profile has no kernels")
	}
	if res.Profile.KernelSeconds != res.Profile.GPUTimelineSeconds {
		t.Errorf("profile does not reconcile: kernels %v vs timeline %v",
			res.Profile.KernelSeconds, res.Profile.GPUTimelineSeconds)
	}
	var buf bytes.Buffer
	if err := res.Profile.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || res.Profile.Table(5) == "" {
		t.Error("empty profile export")
	}

	// Profiling must not perturb the partition itself.
	plain, err := Partition(g, 8, Options{GPUThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	if plain.EdgeCut != res.EdgeCut || plain.ModeledSeconds != res.ModeledSeconds {
		t.Errorf("profiling changed the run: cut %d/%d, seconds %v/%v",
			plain.EdgeCut, res.EdgeCut, plain.ModeledSeconds, res.ModeledSeconds)
	}
	if plain.Profile != nil {
		t.Error("unprofiled run carries a profile")
	}
}
