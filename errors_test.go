package gpmetis

import (
	"errors"
	"testing"
)

// TestSentinelErrors pins the public error contract: each class of bad
// input must surface an error matching the corresponding exported
// sentinel through errors.Is, so callers can branch on them without
// string matching.
func TestSentinelErrors(t *testing.T) {
	g, err := Grid2D(10, 10)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		g    *Graph
		k    int
		o    Options
		want error
	}{
		{"k zero", g, 0, Options{}, ErrBadK},
		{"k negative", g, -3, Options{}, ErrBadK},
		{"k exceeds vertices", g, 101, Options{}, ErrBadK},
		{"imbalance below one", g, 4, Options{UBFactor: 0.9}, ErrBadImbalance},
		{"empty graph", &Graph{XAdj: []int{0}}, 1, Options{}, ErrEmptyGraph},
		{"unknown merge strategy", g, 4, Options{Merge: MergeStrategy(99)}, ErrBadOption},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Partition(tc.g, tc.k, tc.o)
			if !errors.Is(err, tc.want) {
				t.Errorf("Partition() error = %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

// TestSentinelErrorsAcrossAlgorithms checks that k validation is uniform:
// every bundled partitioner rejects k=0 with ErrBadK.
func TestSentinelErrorsAcrossAlgorithms(t *testing.T) {
	g, err := Grid2D(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{GPMetis, Metis, MtMetis, ParMetis, PTScotch, Gmetis, Jostle, Spectral} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			if _, err := Partition(g, 0, Options{Algorithm: algo}); !errors.Is(err, ErrBadK) {
				t.Errorf("k=0 error = %v, want ErrBadK", err)
			}
		})
	}
}

// TestCancelSentinel checks the cooperative cancellation contract:
// Options.Cancel returning a cause aborts the run with an error matching
// both ErrCanceled and the cause itself.
func TestCancelSentinel(t *testing.T) {
	g, err := Delaunay(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("caller gave up")
	_, err = Partition(g, 8, Options{Cancel: func() error { return cause }})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Partition() error = %v, want errors.Is(err, ErrCanceled)", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("Partition() error = %v, want it to wrap the cancellation cause", err)
	}

	// A Cancel hook that never fires must not perturb the run.
	calls := 0
	res, err := Partition(g, 8, Options{Cancel: func() error { calls++; return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("Cancel hook was never polled")
	}
	plain, err := Partition(g, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut != plain.EdgeCut || res.ModeledSeconds != plain.ModeledSeconds {
		t.Errorf("non-firing Cancel changed the run: cut %d vs %d, modeled %v vs %v",
			res.EdgeCut, plain.EdgeCut, res.ModeledSeconds, plain.ModeledSeconds)
	}
}
