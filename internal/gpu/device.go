// Package gpu is a deterministic SIMT GPU execution simulator: the
// substitution this reproduction uses for the paper's CUDA/GTX-Titan
// substrate (see DESIGN.md §1).
//
// Kernels are ordinary Go functions invoked once per logical thread.
// Threads are grouped into 32-wide warps; the simulator executes warps one
// after another (a deterministic interleaving of the paper's concurrent
// execution) and, per warp, charges the cost model for
//
//   - instruction work, taking the per-warp MAX over lanes so SIMD load
//     imbalance (the paper's main performance hazard) lengthens the warp,
//   - global-memory transactions with real coalescing detection: accesses
//     by different lanes at the same per-thread access index that fall
//     into one aligned 128-byte segment merge into one transaction,
//   - atomic serialization per conflicting address,
//
// and converts the totals to modeled seconds under a roofline combination
// of instruction throughput, memory bandwidth, and latency-hiding limits.
// Device memory capacity and PCIe transfers are modeled too: allocations
// beyond the 6 GB device fail, and every host<->device copy costs
// latency + size/bandwidth on the shared timeline.
package gpu

import (
	"fmt"

	"gpmetis/internal/perfmodel"
)

// Array identifies one device allocation for the access-cost model. The
// actual data lives in ordinary Go slices captured by kernel closures; an
// Array only gives those slices an address space so that coalescing and
// atomic conflicts can be detected.
type Array struct {
	id   int64
	elem int64
}

// ElemBytes returns the element size the array was declared with.
func (a Array) ElemBytes() int { return int(a.elem) }

// Device is one modeled GPU. It is not safe for concurrent use: the
// partitioners issue kernels and transfers from a single control thread,
// exactly like a CUDA stream.
type Device struct {
	m  *perfmodel.Machine
	tl *perfmodel.Timeline

	nextArrayID int64
	allocated   int64
	arrayBytes  map[int64]int64

	// Accounting can be switched off to run kernels at full host speed
	// when only the computational result matters (tests, examples).
	Accounting bool

	stats Stats
}

// Stats aggregates device activity since the last ResetStats, for tests,
// ablations, and the benchmark's verbose output.
type Stats struct {
	Kernels          int
	Threads          int64
	WarpInstructions int64 // sum over warps of max-lane instruction counts
	LaneInstructions int64 // sum over all lanes (no divergence penalty)
	Transactions     int64 // global-memory transactions after coalescing
	Accesses         int64 // raw lane-level accesses before coalescing
	AtomicOps        int64 // raw atomic operations
	AtomicSerial     int64 // serialized atomic cost after conflict grouping
	BytesToDevice    int64
	BytesToHost      int64
}

// NewDevice returns a Device charging machine m and appending phases to tl.
func NewDevice(m *perfmodel.Machine, tl *perfmodel.Timeline) *Device {
	return &Device{
		m:          m,
		tl:         tl,
		arrayBytes: map[int64]int64{},
		Accounting: true,
	}
}

// Machine returns the machine model the device charges.
func (d *Device) Machine() *perfmodel.Machine { return d.m }

// Stats returns the activity counters accumulated so far.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears the activity counters.
func (d *Device) ResetStats() { d.stats = Stats{} }

// Allocated returns the bytes currently allocated on the device.
func (d *Device) Allocated() int64 { return d.allocated }

// Malloc reserves n elements of elemBytes each on the device and returns
// the Array handle. It fails when the modeled 6 GB global memory would be
// exceeded, mirroring the paper's assumption that the graph fits on the
// GPU.
func (d *Device) Malloc(n int, elemBytes int) (Array, error) {
	if n < 0 || elemBytes <= 0 {
		return Array{}, fmt.Errorf("gpu: Malloc(%d,%d): invalid size", n, elemBytes)
	}
	bytes := int64(n) * int64(elemBytes)
	if d.allocated+bytes > d.m.GPU.GlobalMemBytes {
		return Array{}, fmt.Errorf("gpu: out of device memory: %d + %d > %d bytes (graph does not fit; the paper defers this case to multi-GPU future work)",
			d.allocated, bytes, d.m.GPU.GlobalMemBytes)
	}
	d.allocated += bytes
	d.nextArrayID++
	id := d.nextArrayID
	d.arrayBytes[id] = bytes
	return Array{id: id, elem: int64(elemBytes)}, nil
}

// Free releases an allocation (idempotent for already-freed arrays, like
// cudaFree of a dangling handle would be an error — here it is ignored so
// defer-style cleanup stays simple).
func (d *Device) Free(a Array) {
	if bytes, ok := d.arrayBytes[a.id]; ok {
		d.allocated -= bytes
		delete(d.arrayBytes, a.id)
	}
}

// ToDevice charges a host-to-device copy of n bytes.
func (d *Device) ToDevice(name string, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	d.stats.BytesToDevice += bytes
	d.tl.Append(name, perfmodel.LocPCIe, d.m.PCIeSec(float64(bytes)))
}

// ToHost charges a device-to-host copy of n bytes.
func (d *Device) ToHost(name string, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	d.stats.BytesToHost += bytes
	d.tl.Append(name, perfmodel.LocPCIe, d.m.PCIeSec(float64(bytes)))
}
