// Package gpu is a deterministic SIMT GPU execution simulator: the
// substitution this reproduction uses for the paper's CUDA/GTX-Titan
// substrate (see DESIGN.md §1).
//
// Kernels are ordinary Go functions invoked once per logical thread.
// Threads are grouped into 32-wide warps; the simulator executes warps one
// after another (a deterministic interleaving of the paper's concurrent
// execution) and, per warp, charges the cost model for
//
//   - instruction work, taking the per-warp MAX over lanes so SIMD load
//     imbalance (the paper's main performance hazard) lengthens the warp,
//   - global-memory transactions with real coalescing detection: accesses
//     by different lanes at the same per-thread access index that fall
//     into one aligned 128-byte segment merge into one transaction,
//   - atomic serialization per conflicting address,
//
// and converts the totals to modeled seconds under a roofline combination
// of instruction throughput, memory bandwidth, and latency-hiding limits.
// Device memory capacity and PCIe transfers are modeled too: allocations
// beyond the 6 GB device fail, and every host<->device copy costs
// latency + size/bandwidth on the shared timeline.
package gpu

import (
	"errors"
	"fmt"

	"gpmetis/internal/fault"
	"gpmetis/internal/obs"
	"gpmetis/internal/perfmodel"
)

// ErrDeviceMemory is the sentinel wrapped by every allocation failure —
// real capacity overflow or an injected one — so callers can classify
// the error as capacity pressure (degradable) with errors.Is.
var ErrDeviceMemory = errors.New("gpu: out of device memory")

// Array identifies one device allocation for the access-cost model. The
// actual data lives in ordinary Go slices captured by kernel closures; an
// Array only gives those slices an address space so that coalescing and
// atomic conflicts can be detected.
type Array struct {
	id   int64
	elem int64
}

// ElemBytes returns the element size the array was declared with.
func (a Array) ElemBytes() int { return int(a.elem) }

// Device is one modeled GPU. It is not safe for concurrent use: the
// partitioners issue kernels and transfers from a single control thread,
// exactly like a CUDA stream.
type Device struct {
	m  *perfmodel.Machine
	tl *perfmodel.Timeline

	nextArrayID int64
	allocated   int64
	arrayBytes  map[int64]int64

	// Accounting can be switched off to run kernels at full host speed
	// when only the computational result matters (tests, examples).
	Accounting bool

	stats     Stats
	sink      *obs.TimelineSink
	launchObs LaunchObserver

	inj   *fault.Injector
	retry fault.RetryPolicy
}

// Stats aggregates device activity since the last ResetStats, for tests,
// ablations, and the benchmark's verbose output.
type Stats struct {
	Kernels          int
	Threads          int64
	WarpInstructions int64 // sum over warps of max-lane instruction counts
	LaneInstructions int64 // sum over all lanes (no divergence penalty)
	Transactions     int64 // global-memory transactions after coalescing
	Accesses         int64 // raw lane-level accesses before coalescing
	AtomicOps        int64 // raw atomic operations
	AtomicSerial     int64 // serialized atomic cost after conflict grouping
	BytesToDevice    int64
	BytesToHost      int64
}

// NewDevice returns a Device charging machine m and appending phases to tl.
func NewDevice(m *perfmodel.Machine, tl *perfmodel.Timeline) *Device {
	return &Device{
		m:          m,
		tl:         tl,
		arrayBytes: map[int64]int64{},
		Accounting: true,
	}
}

// Machine returns the machine model the device charges.
func (d *Device) Machine() *perfmodel.Machine { return d.m }

// Add returns the field-wise sum of two Stats.
func (s Stats) Add(o Stats) Stats {
	s.Kernels += o.Kernels
	s.Threads += o.Threads
	s.WarpInstructions += o.WarpInstructions
	s.LaneInstructions += o.LaneInstructions
	s.Transactions += o.Transactions
	s.Accesses += o.Accesses
	s.AtomicOps += o.AtomicOps
	s.AtomicSerial += o.AtomicSerial
	s.BytesToDevice += o.BytesToDevice
	s.BytesToHost += o.BytesToHost
	return s
}

// Sub returns the field-wise difference s - o: the activity between two
// Stats snapshots, which is how per-level attribution is captured without
// resetting the run-total counters.
func (s Stats) Sub(o Stats) Stats {
	s.Kernels -= o.Kernels
	s.Threads -= o.Threads
	s.WarpInstructions -= o.WarpInstructions
	s.LaneInstructions -= o.LaneInstructions
	s.Transactions -= o.Transactions
	s.Accesses -= o.Accesses
	s.AtomicOps -= o.AtomicOps
	s.AtomicSerial -= o.AtomicSerial
	s.BytesToDevice -= o.BytesToDevice
	s.BytesToHost -= o.BytesToHost
	return s
}

// Attrs renders the counters as span attributes under the given prefix.
func (s Stats) Attrs(prefix string) []obs.Attr {
	return []obs.Attr{
		obs.Int(prefix+"kernels", int64(s.Kernels)),
		obs.Int(prefix+"threads", s.Threads),
		obs.Int(prefix+"warp_instructions", s.WarpInstructions),
		obs.Int(prefix+"lane_instructions", s.LaneInstructions),
		obs.Int(prefix+"transactions", s.Transactions),
		obs.Int(prefix+"accesses", s.Accesses),
		obs.Int(prefix+"atomic_ops", s.AtomicOps),
		obs.Int(prefix+"atomic_serial", s.AtomicSerial),
		obs.Int(prefix+"bytes_to_device", s.BytesToDevice),
		obs.Int(prefix+"bytes_to_host", s.BytesToHost),
	}
}

// CoalescingEfficiency returns Transactions/Accesses: the fraction of raw
// lane-level accesses that survived coalescing as real global-memory
// transactions. 1/WarpSize (~3%) is a perfectly coalesced warp (32
// accesses merge into one transaction); 100% is fully scattered traffic
// where every access pays its own transaction. Atomic traffic issues
// transactions without raw accesses, so atomic-heavy kernels can exceed
// 1.0. Returns 0 when no accesses were charged.
func (s Stats) CoalescingEfficiency() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Transactions) / float64(s.Accesses)
}

// DivergenceFactor returns WarpSize*WarpInstructions/LaneInstructions:
// how much longer the warps ran than their average lane. 1.0 means every
// lane of every warp did identical work (no divergence); WarpSize means
// one lane per warp did everything while 31 idled. Returns 0 when no
// instructions were charged.
func (s Stats) DivergenceFactor() float64 {
	if s.LaneInstructions == 0 {
		return 0
	}
	return float64(warpSize) * float64(s.WarpInstructions) / float64(s.LaneInstructions)
}

// AtomicSerializationRatio returns AtomicSerial/AtomicOps: the fraction
// of atomic operations that paid serialized conflict cost. 0 means every
// warp's atomics hit distinct addresses; 1.0 means every atomic landed in
// a same-address pile-up. Returns 0 when no atomics were issued.
func (s Stats) AtomicSerializationRatio() float64 {
	if s.AtomicOps == 0 {
		return 0
	}
	return float64(s.AtomicSerial) / float64(s.AtomicOps)
}

// warpSize is the SIMT width the divergence ratio normalizes against.
// Every modeled machine uses 32-wide warps (perfmodel.Default and the
// paper's GTX Titan); the per-warp segSlot arrays hard-code it too.
const warpSize = 32

// LaunchObserver receives one callback per kernel launch with that
// launch's modeled duration and counter deltas. It is the profiler's hook
// into the device (see internal/prof); a nil observer costs one pointer
// check per launch and nothing else.
type LaunchObserver interface {
	ObserveLaunch(name string, threads int, seconds float64, delta Stats)
}

// SetLaunchObserver installs (or, with nil, removes) the per-launch
// observer.
func (d *Device) SetLaunchObserver(o LaunchObserver) { d.launchObs = o }

// Stats returns the activity counters accumulated so far.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears the activity counters.
func (d *Device) ResetStats() { d.stats = Stats{} }

// RestoreStats overwrites the activity counters with a checkpoint
// snapshot, so a resumed run's final totals match the uninterrupted
// run's instead of counting only post-resume activity.
func (d *Device) RestoreStats(s Stats) { d.stats = s }

// SetTraceSink installs (or, with nil, removes) the trace sink the device
// emits kernel-launch and transfer spans into. Spans nest under the
// sink's current parent, so the pipeline's level spans automatically
// contain their kernels.
func (d *Device) SetTraceSink(s *obs.TimelineSink) { d.sink = s }

// TraceSink returns the device's trace sink (nil when tracing is off).
func (d *Device) TraceSink() *obs.TimelineSink { return d.sink }

// Now returns the device timeline's current modeled time, the clock that
// spans around device work should use.
func (d *Device) Now() float64 { return d.tl.Total() }

// SetFaults installs a fault injector and the retry policy for transient
// faults. A nil injector restores the unfaulted fast path: with inj ==
// nil no fault code runs at all, so existing modeled times are
// bit-identical.
func (d *Device) SetFaults(inj *fault.Injector, retry fault.RetryPolicy) {
	d.inj = inj
	d.retry = retry
}

// Faults returns the device's installed injector (nil when unfaulted).
func (d *Device) Faults() *fault.Injector { return d.inj }

// preflight evaluates a transient fault site before a launch or
// transfer. Each fired evaluation models one failed attempt: it charges
// attemptSec (the wasted launch overhead or bus latency) plus
// exponential backoff to the timeline, then re-evaluates. When the retry
// budget is exhausted the device is modeled as lost and the call unwinds
// with *fault.DeviceLost for the pipeline's recover barrier.
func (d *Device) preflight(site fault.Site, name string, loc perfmodel.Location, attemptSec float64) {
	for attempt := 1; ; attempt++ {
		fe := d.inj.Check(site)
		if fe == nil {
			return
		}
		if attempt > d.retry.Max {
			panic(&fault.DeviceLost{Err: fe})
		}
		sec := attemptSec + d.retry.Backoff(attempt)
		rname := "fault.retry." + string(site)
		if d.sink == nil {
			d.tl.Append(rname, loc, sec)
		} else {
			d.sink.Metrics().Add("fault.retries", 1)
			sp := d.sink.Leaf(rname, d.tl.Total(), sec,
				obs.Str("loc", loc.String()),
				obs.Str("site", string(site)),
				obs.Str("op", name),
				obs.Int("attempt", int64(attempt)))
			var id int64
			if sp != nil {
				id = sp.ID
			}
			d.tl.AppendTagged(rname, loc, sec, id)
		}
	}
}

// Allocated returns the bytes currently allocated on the device.
func (d *Device) Allocated() int64 { return d.allocated }

// Malloc reserves n elements of elemBytes each on the device and returns
// the Array handle. It fails when the modeled 6 GB global memory would be
// exceeded, mirroring the paper's assumption that the graph fits on the
// GPU.
func (d *Device) Malloc(n int, elemBytes int) (Array, error) {
	if n < 0 || elemBytes <= 0 {
		return Array{}, fmt.Errorf("gpu: Malloc(%d,%d): invalid size", n, elemBytes)
	}
	bytes := int64(n) * int64(elemBytes)
	limit := d.m.GPU.GlobalMemBytes
	if capBytes := d.inj.MemCap(); capBytes > 0 && capBytes < limit {
		// Artificial memory pressure: the injector shrinks the device.
		limit = capBytes
	}
	if fe := d.inj.Check(fault.SiteGPUAlloc); fe != nil {
		return Array{}, fmt.Errorf("%w: %w", ErrDeviceMemory, fe)
	}
	if d.allocated+bytes > limit {
		return Array{}, fmt.Errorf("%w: %d + %d > %d bytes (graph does not fit; the paper defers this case to multi-GPU future work)",
			ErrDeviceMemory, d.allocated, bytes, limit)
	}
	d.allocated += bytes
	d.nextArrayID++
	id := d.nextArrayID
	d.arrayBytes[id] = bytes
	return Array{id: id, elem: int64(elemBytes)}, nil
}

// Free releases an allocation (idempotent for already-freed arrays, like
// cudaFree of a dangling handle would be an error — here it is ignored so
// defer-style cleanup stays simple).
func (d *Device) Free(a Array) {
	if bytes, ok := d.arrayBytes[a.id]; ok {
		d.allocated -= bytes
		delete(d.arrayBytes, a.id)
	}
}

// ToDevice charges a host-to-device copy of n bytes.
func (d *Device) ToDevice(name string, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	d.stats.BytesToDevice += bytes
	d.transfer(name, "h2d", bytes)
}

// ToHost charges a device-to-host copy of n bytes.
func (d *Device) ToHost(name string, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	d.stats.BytesToHost += bytes
	d.transfer(name, "d2h", bytes)
}

// transfer charges one PCIe copy and, when tracing, mirrors it as a span
// carrying the byte count and direction.
func (d *Device) transfer(name, dir string, bytes int64) {
	if d.inj != nil {
		// A failed transfer wastes one bus latency before the retry.
		d.preflight(fault.SiteTransfer, name, perfmodel.LocPCIe, d.m.PCIe.LatencySec)
	}
	sec := d.m.PCIeSec(float64(bytes))
	if d.sink == nil {
		d.tl.Append(name, perfmodel.LocPCIe, sec)
		return
	}
	sp := d.sink.Leaf(name, d.tl.Total(), sec,
		obs.Str("loc", perfmodel.LocPCIe.String()),
		obs.Str("dir", dir),
		obs.Int("bytes", bytes))
	var id int64
	if sp != nil {
		id = sp.ID
	}
	d.tl.AppendTagged(name, perfmodel.LocPCIe, sec, id)
}
