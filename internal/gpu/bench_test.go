package gpu

import (
	"fmt"
	"testing"

	"gpmetis/internal/perfmodel"
)

// BenchmarkLaunchStreaming measures simulator throughput for a perfectly
// coalesced streaming kernel (the cmap.init pattern).
func BenchmarkLaunchStreaming(b *testing.B) {
	d, _ := newBenchDevice()
	const n = 1 << 16
	a, err := d.Malloc(n, 4)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Launch("stream", n, func(c *Ctx) {
			c.Load(a, c.TID())
			data[c.TID()]++
			c.Op(1)
			c.Store(a, c.TID())
		})
	}
	b.ReportMetric(float64(d.Stats().Transactions)/float64(b.N), "tx/launch")
}

// BenchmarkLaunchGather measures the scattered-gather pattern (the
// matching kernel's match[u] reads).
func BenchmarkLaunchGather(b *testing.B) {
	d, _ := newBenchDevice()
	const n = 1 << 16
	a, err := d.Malloc(n, 4)
	if err != nil {
		b.Fatal(err)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = (i * 40503) % n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Launch("gather", n, func(c *Ctx) {
			c.Load(a, idx[c.TID()])
		})
	}
}

// BenchmarkInclusiveScan measures the CUB-style device scan at several
// sizes.
func BenchmarkInclusiveScan(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d, _ := newBenchDevice()
			a, err := d.Malloc(n, 4)
			if err != nil {
				b.Fatal(err)
			}
			data := make([]int, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range data {
					data[j] = 1
				}
				if got, err := d.InclusiveScan("scan", data, a); err != nil || got != n {
					b.Fatalf("scan total = %d, err = %v, want %d", got, err, n)
				}
			}
		})
	}
}

func newBenchDevice() (*Device, *perfmodel.Timeline) {
	tl := &perfmodel.Timeline{}
	return NewDevice(perfmodel.Default(), tl), tl
}
