package gpu

import "fmt"

// scanTile is the number of elements each thread owns in the two-level
// reduce-then-scan, mirroring CUB's items-per-thread tiling.
const scanTile = 8

// InclusiveScan computes the in-place inclusive prefix sum of data,
// issuing the same reduce / spine-scan / downsweep kernel pattern as the
// CUB DeviceScan the paper uses for its cmap construction, and charging
// each kernel to the device timeline under names derived from name.
// Array a must be the device allocation holding data. It returns the
// total (the last element of the scan). The error is non-nil when a
// spine allocation fails — the device is under memory pressure — and
// leaves data partially scanned; callers must not use it.
//
// Accounting note: threads own contiguous tiles for correctness, but the
// accesses are charged at CUB's striped (coalesced) addresses, because
// that is the access pattern CUB actually produces via its shared-memory
// exchange.
func (d *Device) InclusiveScan(name string, data []int, a Array) (int, error) {
	n := len(data)
	if n == 0 {
		return 0, nil
	}
	if err := d.scanInPlace(name, data, a, 0); err != nil {
		return 0, err
	}
	return data[n-1], nil
}

// ExclusiveScan computes the in-place exclusive prefix sum of data (the
// paper uses one over the temp/temp2 index arrays of the contraction
// step) and returns the total of the original values.
func (d *Device) ExclusiveScan(name string, data []int, a Array) (int, error) {
	n := len(data)
	if n == 0 {
		return 0, nil
	}
	total, err := d.InclusiveScan(name, data, a)
	if err != nil {
		return 0, err
	}
	// Shift right by one on the device: one more coalesced pass.
	d.Launch(name+".shift", (n+scanTile-1)/scanTile, func(c *Ctx) {
		g := (n + scanTile - 1) / scanTile
		lo := c.TID() * scanTile
		hi := lo + scanTile
		if hi > n {
			hi = n
		}
		for k := lo; k < hi; k++ {
			c.Load(a, (k-lo)*g+c.TID())
			c.Store(a, (k-lo)*g+c.TID())
			c.Op(1)
		}
	})
	prev := 0
	for i := 0; i < n; i++ {
		data[i], prev = prev, data[i]
	}
	return total, nil
}

// scanInPlace runs one level of the recursive reduce-then-scan. A spine
// allocation failure propagates as an error so device-memory pressure
// surfaces to the pipeline instead of killing the process.
func (d *Device) scanInPlace(name string, data []int, a Array, depth int) error {
	n := len(data)
	g := (n + scanTile - 1) / scanTile // number of threads / tiles
	if g <= 1 {
		// A single tile: one thread scans it directly.
		d.Launch(scanKernelName(name, depth, "spine"), 1, func(c *Ctx) {
			sum := 0
			for k := 0; k < n; k++ {
				c.Load(a, k)
				sum += data[k]
				data[k] = sum
				c.Store(a, k)
				c.Op(2)
			}
		})
		return nil
	}

	partial := make([]int, g)
	pa, err := d.Malloc(g, 4)
	if err != nil {
		return fmt.Errorf("gpu: scan %s spine allocation (depth %d): %w", name, depth, err)
	}
	defer d.Free(pa)

	// Upsweep: each thread reduces its tile.
	d.Launch(scanKernelName(name, depth, "reduce"), g, func(c *Ctx) {
		lo := c.TID() * scanTile
		hi := lo + scanTile
		if hi > n {
			hi = n
		}
		sum := 0
		for k := lo; k < hi; k++ {
			c.Load(a, (k-lo)*g+c.TID()) // striped/coalesced charge
			sum += data[k]
			c.Op(1)
		}
		partial[c.TID()] = sum
		c.Store(pa, c.TID())
	})

	// Spine: scan the per-tile sums (recursing for very large spines).
	if err := d.scanInPlace(name, partial, pa, depth+1); err != nil {
		return err
	}

	// Downsweep: each thread rescans its tile seeded with the exclusive
	// spine prefix.
	d.Launch(scanKernelName(name, depth, "downsweep"), g, func(c *Ctx) {
		lo := c.TID() * scanTile
		hi := lo + scanTile
		if hi > n {
			hi = n
		}
		sum := 0
		if c.TID() > 0 {
			c.Load(pa, c.TID()-1)
			sum = partial[c.TID()-1]
		}
		for k := lo; k < hi; k++ {
			c.Load(a, (k-lo)*g+c.TID())
			sum += data[k]
			data[k] = sum
			c.Store(a, (k-lo)*g+c.TID())
			c.Op(2)
		}
	})
	return nil
}

func scanKernelName(name string, depth int, stage string) string {
	if depth == 0 {
		return name + "." + stage
	}
	return fmt.Sprintf("%s.L%d.%s", name, depth, stage)
}
