package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpmetis/internal/perfmodel"
)

func newTestDevice() (*Device, *perfmodel.Timeline) {
	tl := &perfmodel.Timeline{}
	return NewDevice(perfmodel.Default(), tl), tl
}

func TestMallocCapacity(t *testing.T) {
	d, _ := newTestDevice()
	a, err := d.Malloc(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allocated() != 4000 {
		t.Errorf("Allocated = %d, want 4000", d.Allocated())
	}
	if a.ElemBytes() != 4 {
		t.Errorf("ElemBytes = %d, want 4", a.ElemBytes())
	}
	// Exceed the 6 GB device.
	if _, err := d.Malloc(1<<31, 4); err == nil {
		t.Error("allocating 8 GB should fail on a 6 GB device")
	}
	d.Free(a)
	if d.Allocated() != 0 {
		t.Errorf("Allocated after Free = %d, want 0", d.Allocated())
	}
	d.Free(a) // double free is ignored
	if d.Allocated() != 0 {
		t.Error("double Free must not underflow")
	}
	if _, err := d.Malloc(-1, 4); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := d.Malloc(1, 0); err == nil {
		t.Error("zero element size should fail")
	}
}

func TestTransfersChargePCIe(t *testing.T) {
	d, tl := newTestDevice()
	d.ToDevice("h2d", 1<<20)
	d.ToHost("d2h", 1<<20)
	if got := tl.TotalAt(perfmodel.LocPCIe); got <= 2*d.m.PCIe.LatencySec {
		t.Errorf("PCIe time %g should exceed twice the setup latency", got)
	}
	st := d.Stats()
	if st.BytesToDevice != 1<<20 || st.BytesToHost != 1<<20 {
		t.Errorf("transfer stats wrong: %+v", st)
	}
}

func TestLaunchBasicCounts(t *testing.T) {
	d, tl := newTestDevice()
	a, _ := d.Malloc(1000, 4)
	sec := d.Launch("k", 100, func(c *Ctx) {
		c.Op(5)
		c.Load(a, c.TID())
	})
	if sec <= 0 {
		t.Error("kernel time must be positive")
	}
	st := d.Stats()
	if st.Kernels != 1 || st.Threads != 100 {
		t.Errorf("stats = %+v", st)
	}
	// 6 ops per lane (5 + 1 for the load); 4 warps (100 threads), uniform,
	// so warp instructions = 4 * 6 = 24 and lane instructions = 600.
	if st.WarpInstructions != 24 {
		t.Errorf("WarpInstructions = %d, want 24", st.WarpInstructions)
	}
	if st.LaneInstructions != 600 {
		t.Errorf("LaneInstructions = %d, want 600", st.LaneInstructions)
	}
	if tl.TotalAt(perfmodel.LocGPU) != sec {
		t.Error("launch time not on timeline")
	}
}

func TestCoalescedVsStridedTransactions(t *testing.T) {
	d, _ := newTestDevice()
	const n = 32 * 32 // one int per thread, 32 warps
	a, _ := d.Malloc(n*32, 4)

	d.Launch("coalesced", n, func(c *Ctx) {
		c.Load(a, c.TID()) // adjacent lanes touch adjacent ints
	})
	coalesced := d.Stats().Transactions

	d.ResetStats()
	d.Launch("strided", n, func(c *Ctx) {
		c.Load(a, c.TID()*32) // every lane in its own 128-byte segment
	})
	strided := d.Stats().Transactions

	// 128-byte segments hold 32 ints: a coalesced warp makes 1
	// transaction, a strided warp 32.
	if coalesced != 32 {
		t.Errorf("coalesced transactions = %d, want 32 (1/warp)", coalesced)
	}
	if strided != 32*32 {
		t.Errorf("strided transactions = %d, want 1024 (32/warp)", strided)
	}
}

func TestDivergenceChargesMaxLane(t *testing.T) {
	d, _ := newTestDevice()
	d.Launch("skewed", 32, func(c *Ctx) {
		if c.TID() == 7 {
			c.Op(1000)
		} else {
			c.Op(1)
		}
	})
	st := d.Stats()
	if st.WarpInstructions != 1000 {
		t.Errorf("WarpInstructions = %d, want max lane = 1000", st.WarpInstructions)
	}
	if st.LaneInstructions != 1000+31 {
		t.Errorf("LaneInstructions = %d, want 1031", st.LaneInstructions)
	}
}

func TestAtomicSerialization(t *testing.T) {
	d, _ := newTestDevice()
	a, _ := d.Malloc(64, 4)

	// All 32 lanes hit the same address: serialization depth 32.
	d.Launch("hot", 32, func(c *Ctx) {
		c.Atomic(a, 0)
	})
	hot := d.Stats().AtomicSerial
	if hot != 32 {
		t.Errorf("hot atomic serialization = %d, want 32", hot)
	}

	d.ResetStats()
	// Each lane hits its own address: no serialization cost recorded.
	d.Launch("spread", 32, func(c *Ctx) {
		c.Atomic(a, c.TID())
	})
	spread := d.Stats().AtomicSerial
	if spread != 0 {
		t.Errorf("spread atomic serialization = %d, want 0", spread)
	}
	if d.Stats().AtomicOps != 32 {
		t.Errorf("AtomicOps = %d, want 32", d.Stats().AtomicOps)
	}
}

func TestHotAtomicsCostMore(t *testing.T) {
	d, _ := newTestDevice()
	a, _ := d.Malloc(1<<16, 4)
	hot := d.Launch("hot", 1<<15, func(c *Ctx) { c.Atomic(a, 0) })
	spread := d.Launch("spread", 1<<15, func(c *Ctx) { c.Atomic(a, c.TID()) })
	if hot <= spread {
		t.Errorf("contended atomics (%.3gs) should be slower than spread atomics (%.3gs)", hot, spread)
	}
}

func TestAccountingOffIsFreeOfCharges(t *testing.T) {
	d, _ := newTestDevice()
	a, _ := d.Malloc(64, 4)
	d.Accounting = false
	d.Launch("k", 64, func(c *Ctx) {
		c.Load(a, c.TID())
		c.Atomic(a, 0)
	})
	st := d.Stats()
	if st.Transactions != 0 || st.AtomicSerial != 0 || st.Accesses != 0 {
		t.Errorf("accounting-off run recorded memory charges: %+v", st)
	}
	// Instruction counts are still tracked (they come from Op bumping).
	if st.WarpInstructions == 0 {
		t.Error("instruction counts should still accumulate")
	}
}

func TestLaunchEmptyAndPanics(t *testing.T) {
	d, tl := newTestDevice()
	sec := d.Launch("empty", 0, func(c *Ctx) { t.Error("kernel body must not run") })
	if sec < d.m.GPU.LaunchSec {
		t.Error("even an empty launch pays launch overhead")
	}
	_ = tl
	defer func() {
		if recover() == nil {
			t.Error("negative thread count should panic")
		}
	}()
	d.Launch("bad", -1, func(c *Ctx) {})
}

func TestMoreWorkTakesLonger(t *testing.T) {
	d, _ := newTestDevice()
	a, _ := d.Malloc(1<<20, 4)
	small := d.Launch("small", 1<<10, func(c *Ctx) { c.Load(a, c.TID()); c.Op(10) })
	big := d.Launch("big", 1<<20, func(c *Ctx) { c.Load(a, c.TID()); c.Op(10) })
	if big <= small {
		t.Errorf("1M threads (%.3gs) should beat 1K threads (%.3gs)", big, small)
	}
}

func TestInclusiveScanCorrectness(t *testing.T) {
	d, _ := newTestDevice()
	for _, n := range []int{1, 2, 7, 8, 9, 63, 64, 65, 1000, 4096, 100_000} {
		data := make([]int, n)
		want := make([]int, n)
		sum := 0
		for i := range data {
			data[i] = i%7 - 3
			sum += data[i]
			want[i] = sum
		}
		a, err := d.Malloc(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		total, err := d.InclusiveScan("scan", data, a)
		if err != nil {
			t.Fatal(err)
		}
		if total != sum {
			t.Errorf("n=%d: total = %d, want %d", n, total, sum)
		}
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("n=%d: data[%d] = %d, want %d", n, i, data[i], want[i])
			}
		}
		d.Free(a)
	}
}

func TestExclusiveScanCorrectness(t *testing.T) {
	d, _ := newTestDevice()
	data := []int{3, 1, 4, 1, 5, 9, 2, 6}
	a, _ := d.Malloc(len(data), 4)
	total, err := d.ExclusiveScan("scan", data, a)
	if err != nil {
		t.Fatal(err)
	}
	if total != 31 {
		t.Errorf("total = %d, want 31", total)
	}
	want := []int{0, 3, 4, 8, 9, 14, 23, 25}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("data[%d] = %d, want %d", i, data[i], want[i])
		}
	}
}

func TestScanChargesKernels(t *testing.T) {
	d, tl := newTestDevice()
	data := make([]int, 10_000)
	for i := range data {
		data[i] = 1
	}
	a, _ := d.Malloc(len(data), 4)
	if _, err := d.InclusiveScan("cmap.pv", data, a); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Kernels < 3 {
		t.Errorf("scan issued %d kernels, want >= 3 (reduce/spine/downsweep)", d.Stats().Kernels)
	}
	if tl.TotalAt(perfmodel.LocGPU) <= 0 {
		t.Error("scan charged no GPU time")
	}
	// The scan over n elements should move O(n) words, not O(n log n):
	// under ~6 transactions per 32 elements (2 passes * ~1.5 each + spine).
	perElem := float64(d.Stats().Transactions) * 32 / float64(len(data))
	if perElem > 8 {
		t.Errorf("scan made %.1f transactions per 32 elements; reduce-then-scan should be O(n)", perElem)
	}
}

// Property: InclusiveScan matches a sequential prefix sum for arbitrary
// inputs.
func TestScanMatchesSequentialProperty(t *testing.T) {
	d, _ := newTestDevice()
	d.Accounting = false
	f := func(seed int64, szRaw uint16) bool {
		n := 1 + int(szRaw)%2000
		r := rand.New(rand.NewSource(seed))
		data := make([]int, n)
		want := make([]int, n)
		sum := 0
		for i := range data {
			data[i] = r.Intn(1000) - 500
			sum += data[i]
			want[i] = sum
		}
		a, err := d.Malloc(n, 4)
		if err != nil {
			return false
		}
		defer d.Free(a)
		if got, err := d.InclusiveScan("s", data, a); err != nil || got != sum {
			return false
		}
		for i := range data {
			if data[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: coalesced access never produces more transactions than
// strided access over the same index set.
func TestCoalescingNeverHurtsProperty(t *testing.T) {
	d, _ := newTestDevice()
	f := func(szRaw uint8) bool {
		n := 32 * (1 + int(szRaw)%16)
		a, err := d.Malloc(n*32, 4)
		if err != nil {
			return false
		}
		defer d.Free(a)
		d.ResetStats()
		d.Launch("c", n, func(c *Ctx) { c.Load(a, c.TID()) })
		co := d.Stats().Transactions
		d.ResetStats()
		d.Launch("s", n, func(c *Ctx) { c.Load(a, c.TID()*32) })
		st := d.Stats().Transactions
		return co <= st
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConvergeAlignsLoopIterations(t *testing.T) {
	// Two kernels doing identical grid-stride loops, one converging at
	// each iteration and one not; divergent early-exits desynchronize the
	// non-converged kernel's access indices and cost extra transactions.
	d, _ := newTestDevice()
	const n = 32 * 64
	const T = 32 * 8
	a, _ := d.Malloc(n, 4)

	run := func(converge bool) int64 {
		d.ResetStats()
		d.Launch("k", T, func(c *Ctx) {
			j := 0
			for v := c.TID(); v < n; v += T {
				if converge {
					c.Converge(j)
				}
				j++
				// Data-dependent extra access desynchronizes lanes.
				if v%3 == 0 {
					c.Load(a, v)
				}
				c.Load(a, v)
			}
		})
		return d.Stats().Transactions
	}
	with := run(true)
	without := run(false)
	if with > without {
		t.Errorf("converged loop made %d transactions, non-converged %d; convergence must not hurt", with, without)
	}
}

func TestConvergeMonotone(t *testing.T) {
	// Converge never rewinds the access index, so an iteration that
	// overflows its stride cannot corrupt earlier slots.
	d, _ := newTestDevice()
	a, _ := d.Malloc(1<<16, 4)
	d.Launch("overflow", 32, func(c *Ctx) {
		c.Converge(0)
		for i := 0; i < 500; i++ { // far beyond one stride
			c.Load(a, c.TID()+32*i)
		}
		c.Converge(1) // base 192 < current seq: must be a no-op
		c.Load(a, c.TID())
	})
	// Just exercising the path; the invariant is "no panic, sane stats".
	if d.Stats().Accesses != 32*501 {
		t.Errorf("accesses = %d, want %d", d.Stats().Accesses, 32*501)
	}
}

func TestLoadNSegmentBoundaries(t *testing.T) {
	d, _ := newTestDevice()
	a, _ := d.Malloc(1<<12, 4) // ints: 32 per 128-byte segment

	cases := []struct {
		start, n, wantTx int64
	}{
		{0, 32, 1},  // exactly one segment
		{0, 33, 2},  // spills one element into the next
		{31, 2, 2},  // straddles a boundary
		{32, 32, 1}, // aligned second segment
		{0, 0, 0},   // empty
		{5, 1, 1},   // single element
	}
	for _, tc := range cases {
		d.ResetStats()
		d.Launch("seg", 1, func(c *Ctx) {
			c.LoadN(a, int(tc.start), int(tc.n))
		})
		if got := d.Stats().Transactions; got != tc.wantTx {
			t.Errorf("LoadN(start=%d,n=%d): %d transactions, want %d", tc.start, tc.n, got, tc.wantTx)
		}
	}
}

func TestExclusiveScanEmpty(t *testing.T) {
	d, _ := newTestDevice()
	a, _ := d.Malloc(1, 4)
	if got, err := d.ExclusiveScan("s", nil, a); err != nil || got != 0 {
		t.Errorf("empty exclusive scan total = %d, err = %v", got, err)
	}
	if got, err := d.InclusiveScan("s", nil, a); err != nil || got != 0 {
		t.Errorf("empty inclusive scan total = %d, err = %v", got, err)
	}
}

func TestStatsAccumulateAcrossLaunches(t *testing.T) {
	d, _ := newTestDevice()
	a, _ := d.Malloc(64, 4)
	d.Launch("a", 64, func(c *Ctx) { c.Load(a, c.TID()) })
	d.Launch("b", 64, func(c *Ctx) { c.Load(a, c.TID()) })
	if d.Stats().Kernels != 2 {
		t.Errorf("Kernels = %d, want 2", d.Stats().Kernels)
	}
	if d.Stats().Threads != 128 {
		t.Errorf("Threads = %d, want 128", d.Stats().Threads)
	}
	d.ResetStats()
	if d.Stats().Kernels != 0 {
		t.Error("ResetStats failed")
	}
}
