package gpu

import (
	"fmt"

	"gpmetis/internal/fault"
	"gpmetis/internal/obs"
	"gpmetis/internal/perfmodel"
)

// Kernel is the body executed by every logical GPU thread of a launch.
type Kernel func(c *Ctx)

// Ctx is one thread's view of the executing kernel. Kernels call its
// methods to perform *accounted* memory traffic; plain Go slice access in
// the kernel body does the actual data movement.
type Ctx struct {
	tid  int
	lane int
	ops  int64
	seq  int
	w    *warpState
	acct bool
}

// TID returns the global thread index in [0, nThreads).
func (c *Ctx) TID() int { return c.tid }

// Lane returns the thread's lane within its warp, in [0, WarpSize).
func (c *Ctx) Lane() int { return c.lane }

// Op charges n scalar instructions to the thread.
func (c *Ctx) Op(n int) { c.ops += int64(n) }

// convergeStride is the access-index budget of one converged loop
// iteration (see Converge).
const convergeStride = 192

// Converge marks the start of loop iteration iter of a grid-stride (or
// chunked) loop. SIMT lanes re-converge at the loop head, so accesses in
// the same iteration of different lanes issue as common warp instructions
// and may coalesce; Converge aligns the lanes' access indices to make
// that visible to the cost model. Iterations that perform more than
// convergeStride accounted accesses simply keep counting — alignment is
// then lost for the tail, exactly as divergence would lose it in
// hardware.
func (c *Ctx) Converge(iter int) {
	base := iter * convergeStride
	if base > c.seq {
		c.seq = base
	}
}

// Load charges one global-memory read of element i of array a. Reads by
// other lanes of the same warp at the same per-thread access index that
// hit the same 128-byte segment coalesce into one transaction.
func (c *Ctx) Load(a Array, i int) { c.access(a, i) }

// Store charges one global-memory write, with the same coalescing rule.
func (c *Ctx) Store(a Array, i int) { c.access(a, i) }

// LoadN charges n consecutive reads starting at element i (a thread-local
// sequential scan of a[i:i+n]); consecutive elements within one 128-byte
// segment share a transaction even for a single lane, so the charge is one
// access per spanned segment.
func (c *Ctx) LoadN(a Array, i, n int) {
	c.ops += int64(n)
	if !c.acct || n <= 0 {
		return
	}
	c.w.accesses += int64(n)
	segBytes := int64(c.w.segBytes)
	first := int64(i) * a.elem / segBytes
	last := (int64(i+n)*a.elem - 1) / segBytes
	for s := first; s <= last; s++ {
		slot := c.w.slot(c.seq)
		c.seq++
		slot.addSeg(a.id<<40 | s)
	}
}

// StoreN charges n consecutive writes starting at element i.
func (c *Ctx) StoreN(a Array, i, n int) { c.LoadN(a, i, n) }

// Atomic charges one global atomic read-modify-write on element i of a.
// Atomics by lanes of the same warp on the same element serialize.
func (c *Ctx) Atomic(a Array, i int) {
	c.ops++
	if !c.acct {
		return
	}
	c.w.atomicOps++
	addr := a.id<<40 | int64(i)
	s := c.w.slot(c.seq)
	c.seq++
	s.addAddr(addr)
}

func (c *Ctx) access(a Array, i int) {
	c.ops++
	if !c.acct {
		return
	}
	c.w.accesses++
	seg := a.id<<40 | int64(i)*a.elem/int64(c.w.segBytes)
	s := c.w.slot(c.seq)
	c.seq++
	s.addSeg(seg)
}

// segSlot tracks, for one per-thread access index within one warp, the
// distinct memory segments touched (for coalescing) and the per-address
// atomic multiplicities (for serialization). A warp has at most WarpSize
// lanes, so fixed-size arrays suffice.
type segSlot struct {
	n      int
	atomic bool
	segs   [32]int64
	count  [32]int32
}

func (s *segSlot) addSeg(seg int64) {
	for i := 0; i < s.n; i++ {
		if s.segs[i] == seg {
			s.count[i]++
			return
		}
	}
	if s.n < len(s.segs) {
		s.segs[s.n] = seg
		s.count[s.n] = 1
		s.n++
	}
}

func (s *segSlot) addAddr(addr int64) {
	s.atomic = true
	s.addSeg(addr)
}

// maxCount returns the largest per-address multiplicity, i.e. the
// serialization depth of a warp-atomic at this access index.
func (s *segSlot) maxCount() int64 {
	var m int32
	for i := 0; i < s.n; i++ {
		if s.count[i] > m {
			m = s.count[i]
		}
	}
	return int64(m)
}

type warpState struct {
	slots     []segSlot
	used      int
	segBytes  int
	accesses  int64
	atomicOps int64
}

func (w *warpState) slot(seq int) *segSlot {
	for seq >= w.used {
		if w.used == len(w.slots) {
			w.slots = append(w.slots, segSlot{})
		} else {
			w.slots[w.used] = segSlot{}
		}
		w.used++
	}
	return &w.slots[seq]
}

func (w *warpState) reset() {
	w.used = 0
	w.accesses = 0
	w.atomicOps = 0
}

// Launch executes kernel k for nThreads logical threads, charges the
// modeled kernel duration to the device's timeline under the given name,
// and returns that duration in seconds.
//
// Execution order is deterministic: warps run in increasing warp index,
// lanes in increasing lane order. Lock-free kernels that race in CUDA
// (e.g. the paper's matching kernel) see one fixed interleaving here; the
// conflicts the paper's second "resolve" kernel exists for still occur
// because they are inherent to the algorithm, not to timing.
func (d *Device) Launch(name string, nThreads int, k Kernel) float64 {
	if nThreads < 0 {
		panic(fmt.Sprintf("gpu: Launch(%q, %d): negative thread count", name, nThreads))
	}
	if d.inj != nil {
		// A failed launch wastes one launch overhead before the retry.
		d.preflight(fault.SiteKernel, name, perfmodel.LocGPU, d.m.GPU.LaunchSec)
	}
	ws := d.m.GPU.WarpSize
	w := warpState{segBytes: d.m.GPU.TransactionBytes}
	var warpInstr, laneInstr, transactions, atomicSerial, accesses, atomicOps int64
	var maxWarpInstr int64

	for base := 0; base < nThreads; base += ws {
		w.reset()
		var warpMaxOps int64
		for lane := 0; lane < ws && base+lane < nThreads; lane++ {
			c := Ctx{tid: base + lane, lane: lane, w: &w, acct: d.Accounting}
			k(&c)
			laneInstr += c.ops
			if c.ops > warpMaxOps {
				warpMaxOps = c.ops
			}
		}
		warpInstr += warpMaxOps
		if warpMaxOps > maxWarpInstr {
			maxWarpInstr = warpMaxOps
		}
		for i := 0; i < w.used; i++ {
			s := &w.slots[i]
			transactions += int64(s.n)
			// Only atomics serialize on address conflicts; coalesced
			// loads sharing a segment are the fast path.
			if s.atomic {
				if mc := s.maxCount(); mc > 1 {
					atomicSerial += mc
				}
			}
		}
		accesses += w.accesses
		atomicOps += w.atomicOps
	}

	sec := d.kernelSeconds(nThreads, warpInstr, maxWarpInstr, transactions, atomicSerial)
	if d.sink == nil {
		d.tl.Append(name, perfmodel.LocGPU, sec)
	} else {
		// Per-launch span with this launch's stats delta, so every level
		// of the trace attributes its own kernel work.
		sp := d.sink.Leaf(name, d.tl.Total(), sec,
			obs.Str("loc", perfmodel.LocGPU.String()),
			obs.Int("threads", int64(nThreads)),
			obs.Int("warp_instructions", warpInstr),
			obs.Int("lane_instructions", laneInstr),
			obs.Int("transactions", transactions),
			obs.Int("accesses", accesses),
			obs.Int("atomic_ops", atomicOps),
			obs.Int("atomic_serial", atomicSerial))
		var id int64
		if sp != nil {
			id = sp.ID
		}
		d.tl.AppendTagged(name, perfmodel.LocGPU, sec, id)
	}

	d.stats.Kernels++
	d.stats.Threads += int64(nThreads)
	d.stats.WarpInstructions += warpInstr
	d.stats.LaneInstructions += laneInstr
	d.stats.Transactions += transactions
	d.stats.Accesses += accesses
	d.stats.AtomicOps += atomicOps
	d.stats.AtomicSerial += atomicSerial
	if d.launchObs != nil {
		d.launchObs.ObserveLaunch(name, nThreads, sec, Stats{
			Kernels:          1,
			Threads:          int64(nThreads),
			WarpInstructions: warpInstr,
			LaneInstructions: laneInstr,
			Transactions:     transactions,
			Accesses:         accesses,
			AtomicOps:        atomicOps,
			AtomicSerial:     atomicSerial,
		})
	}
	return sec
}

// kernelSeconds converts one launch's charged work into modeled time:
// launch overhead plus a roofline max of
//
//	compute:  warp-instructions * WarpSize lanes / device lane throughput
//	memory:   transactions * 128B / device bandwidth
//	latency:  per-warp transaction latency divided by the warp slots
//	          available to hide it
//
// plus serialized atomic time, floored by the critical path of the
// longest single warp (a nearly-empty launch cannot finish faster than
// its slowest warp).
func (d *Device) kernelSeconds(nThreads int, warpInstr, maxWarpInstr, transactions, atomicSerial int64) float64 {
	g := d.m.GPU
	laneThroughput := float64(g.SMs) * float64(g.CoresPerSM) * g.ClockHz
	compute := float64(warpInstr) * float64(g.WarpSize) / laneThroughput
	memory := float64(transactions) * float64(g.TransactionBytes) / g.MemBytesPerSec
	hiding := float64(g.SMs * g.WarpSlotsPerSM)
	latency := float64(transactions) * g.MemLatencySec / hiding
	body := compute
	if memory > body {
		body = memory
	}
	if latency > body {
		body = latency
	}
	// Critical path of the slowest warp: instructions at one per cycle.
	if crit := float64(maxWarpInstr) / g.ClockHz; crit > body {
		body = crit
	}
	return g.LaunchSec + body + float64(atomicSerial)*g.AtomicSec/float64(g.SMs)
}
