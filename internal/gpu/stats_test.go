package gpu

import "testing"

// TestStatsRatioZeroGuards pins the zero-denominator contract: every
// derived ratio returns 0 (not NaN, not a panic) on empty counters, so
// callers can render them unconditionally.
func TestStatsRatioZeroGuards(t *testing.T) {
	var s Stats
	if v := s.CoalescingEfficiency(); v != 0 {
		t.Errorf("CoalescingEfficiency() on zero stats = %v", v)
	}
	if v := s.DivergenceFactor(); v != 0 {
		t.Errorf("DivergenceFactor() on zero stats = %v", v)
	}
	if v := s.AtomicSerializationRatio(); v != 0 {
		t.Errorf("AtomicSerializationRatio() on zero stats = %v", v)
	}
}

func TestStatsRatioValues(t *testing.T) {
	s := Stats{
		WarpInstructions: 200,
		LaneInstructions: 3200,
		Transactions:     250,
		Accesses:         1000,
		AtomicOps:        400,
		AtomicSerial:     100,
	}
	if v := s.CoalescingEfficiency(); v != 0.25 {
		t.Errorf("CoalescingEfficiency() = %v, want 0.25", v)
	}
	if v := s.DivergenceFactor(); v != 2 {
		t.Errorf("DivergenceFactor() = %v, want 2 (32*200/3200)", v)
	}
	if v := s.AtomicSerializationRatio(); v != 0.25 {
		t.Errorf("AtomicSerializationRatio() = %v, want 0.25", v)
	}
}

// TestStatsAddSubRoundTrip checks Sub is Add's exact inverse, which the
// per-level snapshot attribution in core depends on.
func TestStatsAddSubRoundTrip(t *testing.T) {
	a := Stats{Kernels: 3, Threads: 96, WarpInstructions: 7, LaneInstructions: 200,
		Transactions: 11, Accesses: 40, AtomicOps: 5, AtomicSerial: 2,
		BytesToDevice: 1 << 20, BytesToHost: 1 << 10}
	b := Stats{Kernels: 1, Threads: 32, WarpInstructions: 2, LaneInstructions: 64,
		Transactions: 4, Accesses: 16, AtomicOps: 1, AtomicSerial: 1,
		BytesToDevice: 512, BytesToHost: 128}
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("Add/Sub round trip: got %+v, want %+v", got, a)
	}
	if got := a.Sub(a); got != (Stats{}) {
		t.Errorf("a.Sub(a) = %+v, want zero", got)
	}
}
