// Package jostle implements a Jostle-style multilevel partitioner
// (Walshaw & Cross), the third classic system the paper's Section II
// describes:
//
//   - coarsening continues until the number of vertices equals the number
//     of required partitions, which makes the initial partitioning
//     trivial (coarse vertex i becomes partition i);
//   - un-coarsening uses Jostle's combined balancing and refinement: "a
//     vertex movement from one partition to another is accepted even if
//     it makes the partitions unbalanced. In the following refinement
//     step, the vertex movement is rejected or accepted";
//   - the parallel variant refines interface regions: adjacent partition
//     pairs are matched into disjoint rounds (an edge coloring of the
//     partition quotient graph) and each pair's boundary region is
//     optimized independently — pairs run concurrently on the modeled
//     threads, which is what "isolating different regions of the graph"
//     buys (Section II.B).
package jostle

import (
	"fmt"
	"math/rand"
	"sort"

	"gpmetis/internal/graph"
	"gpmetis/internal/metis"
	"gpmetis/internal/perfmodel"
)

// Options configures a run. Construct with DefaultOptions.
type Options struct {
	// Seed drives randomized decisions.
	Seed int64
	// UBFactor is the allowed imbalance.
	UBFactor float64
	// RefineIters bounds combined balance/refine passes per level.
	RefineIters int
	// Threads is the modeled thread count for the parallel interface-
	// region refinement; 1 gives the serial algorithm.
	Threads int
}

// DefaultOptions mirrors the other partitioners' setup.
func DefaultOptions() Options {
	return Options{
		Seed:        1,
		UBFactor:    1.03,
		RefineIters: 6,
		Threads:     8,
	}
}

func (o *Options) validate(g *graph.Graph, k int) error {
	switch {
	case k < 1:
		return fmt.Errorf("jostle: k must be >= 1, got %d", k)
	case g.NumVertices() == 0:
		return fmt.Errorf("jostle: cannot partition an empty graph")
	case k > g.NumVertices():
		return fmt.Errorf("jostle: k=%d exceeds vertex count %d", k, g.NumVertices())
	case o.UBFactor < 1.0:
		return fmt.Errorf("jostle: UBFactor %g must be >= 1.0", o.UBFactor)
	case o.RefineIters < 0:
		return fmt.Errorf("jostle: RefineIters %d must be >= 0", o.RefineIters)
	case o.Threads < 1:
		return fmt.Errorf("jostle: Threads %d must be >= 1", o.Threads)
	}
	return nil
}

// Result is the outcome of a run.
type Result struct {
	Part     []int
	EdgeCut  int
	Levels   int
	Timeline perfmodel.Timeline
}

// ModeledSeconds returns the total modeled runtime.
func (r *Result) ModeledSeconds() float64 { return r.Timeline.Total() }

// Partition runs the Jostle pipeline.
func Partition(g *graph.Graph, k int, o Options, m *perfmodel.Machine) (*Result, error) {
	if err := o.validate(g, k); err != nil {
		return nil, err
	}
	res := &Result{}
	rng := rand.New(rand.NewSource(o.Seed))

	// --- Coarsening down to exactly k vertices (Section II.A: "Jostle
	// terminates the matching when the number of vertices in the coarse
	// graph is equal to the number of required partitions"). No vertex-
	// weight cap: the balancing refinement absorbs the skew. ---
	var levels []metis.Level
	cur := g
	for cur.NumVertices() > k {
		var acct perfmodel.ThreadCost
		match := metis.Match(cur, metis.HEM, 0, rng, &acct)
		// Trim the matching so the level does not undershoot k: excess
		// pairs are split back (kept as self-matches).
		excess := cur.NumVertices() - k - countPairs(match)
		if excess < 0 {
			unsplit := -excess
			for v := 0; v < len(match) && unsplit > 0; v++ {
				if match[v] > v {
					match[match[v]] = match[v]
					match[v] = v
					unsplit--
				}
			}
		}
		cmap, coarseN := metis.BuildCMap(match, &acct)
		if coarseN >= cur.NumVertices() {
			break // nothing matched; cannot reach k by contraction
		}
		cg := metis.Contract(cur, match, cmap, coarseN, &acct)
		res.Timeline.Append("coarsen", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{acct}))
		levels = append(levels, metis.Level{Fine: cur, CMap: cmap, Coarse: cg})
		cur = cg
	}
	res.Levels = len(levels)

	// --- Trivial initial partitioning: coarse vertex i -> partition i
	// (padded round-robin if coarsening could not reach exactly k). ---
	part := make([]int, cur.NumVertices())
	for v := range part {
		part[v] = v % k
	}
	res.Timeline.Append("initpart", perfmodel.LocCPU, m.CPUOpSec(float64(len(part))))

	// --- Un-coarsening with combined balancing + refinement ---
	for i := len(levels) - 1; i >= 0; i-- {
		var acct perfmodel.ThreadCost
		part = metis.Project(levels[i].CMap, part, &acct)
		res.Timeline.Append("project", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{acct}))
		refineLevel(levels[i].Fine, part, k, o, m, &res.Timeline, rng)
	}

	var bAcct perfmodel.ThreadCost
	metis.BalancePartition(g, part, k, o.UBFactor, &bAcct)
	res.Timeline.Append("balance", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{bAcct}))

	res.Part = part
	res.EdgeCut = graph.EdgeCut(g, part)
	return res, nil
}

// countPairs returns the number of matched (non-self) pairs.
func countPairs(match []int) int {
	c := 0
	for v, u := range match {
		if u > v {
			c++
		}
	}
	return c
}

// refineLevel runs Jostle's combined balancing and refinement on one
// level: an optimistic move phase that accepts unbalancing moves, then a
// correction phase that sends excess weight back, repeated. When
// Threads > 1 the move phase runs as parallel interface-region rounds.
func refineLevel(g *graph.Graph, part []int, k int, o Options, m *perfmodel.Machine, tl *perfmodel.Timeline, rng *rand.Rand) {
	for pass := 0; pass < o.RefineIters; pass++ {
		var moved int
		if o.Threads > 1 && k > 2 {
			moved = interfaceRounds(g, part, k, o, m, tl)
		} else {
			moved = optimisticPass(g, part, k, o, m, tl)
		}
		// Correction phase: the "following refinement step" that rejects
		// (undoes) unbalancing movements.
		var acct perfmodel.ThreadCost
		metis.BalancePartition(g, part, k, o.UBFactor, &acct)
		tl.Append("refine.correct", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{acct}))
		if moved == 0 {
			break
		}
	}
}

// optimisticPass moves every boundary vertex to its best-gain neighbor
// partition regardless of balance (gain must be positive).
func optimisticPass(g *graph.Graph, part []int, k int, o Options, m *perfmodel.Machine, tl *perfmodel.Timeline) int {
	var acct perfmodel.ThreadCost
	conn := make([]int, k)
	cnt := make([]int, k)
	for _, p := range part {
		cnt[p]++
	}
	var touched []int
	moved := 0
	for v := 0; v < g.NumVertices(); v++ {
		pv := part[v]
		adj, wgt := g.Neighbors(v)
		boundary := false
		for i, u := range adj {
			pu := part[u]
			if pu != pv {
				boundary = true
			}
			if conn[pu] == 0 {
				touched = append(touched, pu)
			}
			conn[pu] += wgt[i]
		}
		acct.Ops += float64(len(adj) + 2)
		acct.Rand += float64(len(adj))
		if boundary {
			bestP, bestGain := -1, 0
			for _, p := range touched {
				if p == pv {
					continue
				}
				if gain := conn[p] - conn[pv]; gain > bestGain {
					bestP, bestGain = p, gain
				}
			}
			// Accepted even if it unbalances, but a partition may never
			// be emptied outright: an empty partition has no boundary,
			// so no later correction could ever repopulate it.
			if bestP != -1 && cnt[pv] > 1 {
				part[v] = bestP
				cnt[pv]--
				cnt[bestP]++
				moved++
			}
		}
		for _, p := range touched {
			conn[p] = 0
		}
		touched = touched[:0]
	}
	tl.Append("refine.move", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{acct}))
	return moved
}

// interfaceRounds is parallel Jostle's refinement: adjacent partition
// pairs are matched into disjoint rounds and each pair's interface region
// is optimized independently; the modeled cost of a round is the maximum
// pair cost, with pairs spread over the threads.
func interfaceRounds(g *graph.Graph, part []int, k int, o Options, m *perfmodel.Machine, tl *perfmodel.Timeline) int {
	// Quotient graph (which partition pairs share an edge, by weight) and
	// the interface region of each pair: exactly the boundary vertices
	// incident to that pair. The scan is one pass over the edges, spread
	// across the threads.
	type pairKey struct{ a, b int }
	wgt := map[pairKey]int{}
	iface := map[pairKey][]int{}
	inIface := map[pairKey]map[int]bool{}
	cnt := make([]int, k)
	scanCosts := make([]perfmodel.ThreadCost, o.Threads)
	for v := 0; v < g.NumVertices(); v++ {
		cnt[part[v]]++
		adj, w := g.Neighbors(v)
		sc := &scanCosts[v%o.Threads]
		sc.Ops += float64(len(adj))
		sc.Rand += float64(len(adj))
		for i, u := range adj {
			pa, pb := part[v], part[u]
			if pa == pb {
				continue
			}
			key := pairKey{pa, pb}
			if pa > pb {
				key = pairKey{pb, pa}
			}
			if pa < pb {
				wgt[key] += w[i]
			}
			set := inIface[key]
			if set == nil {
				set = map[int]bool{}
				inIface[key] = set
			}
			if !set[v] {
				set[v] = true
				iface[key] = append(iface[key], v)
			}
		}
	}
	tl.Append("refine.scan", perfmodel.LocCPU, m.CPUPhaseSeconds(scanCosts))
	pairs := make([]pairKey, 0, len(wgt))
	for pk := range wgt {
		pairs = append(pairs, pk)
	}
	// Heaviest interfaces first: they have the most to gain.
	sort.Slice(pairs, func(i, j int) bool {
		if wgt[pairs[i]] != wgt[pairs[j]] {
			return wgt[pairs[i]] > wgt[pairs[j]]
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})

	moved := 0
	used := make([]bool, k)
	for len(pairs) > 0 {
		// Greedy matching: one disjoint set of pairs per round.
		for i := range used {
			used[i] = false
		}
		var round []pairKey
		var rest []pairKey
		for _, pk := range pairs {
			if !used[pk.a] && !used[pk.b] {
				used[pk.a] = true
				used[pk.b] = true
				round = append(round, pk)
			} else {
				rest = append(rest, pk)
			}
		}
		pairs = rest

		costs := make([]perfmodel.ThreadCost, o.Threads)
		for i, pk := range round {
			moved += refinePair(g, part, iface[pk], pk.a, pk.b, cnt, &costs[i%o.Threads])
		}
		tl.Append("refine.interface", perfmodel.LocCPU, m.CPUPhaseSeconds(costs))
	}
	return moved
}

// refinePair runs a 2-way optimistic exchange on the interface region of
// partitions a and b: the pair's boundary vertices move to the other side
// when that reduces the local cut. Membership may have drifted within the
// round set; drifted vertices are skipped.
func refinePair(g *graph.Graph, part []int, region []int, a, b int, cnt []int, acct *perfmodel.ThreadCost) int {
	moved := 0
	for _, v := range region {
		pv := part[v]
		if pv != a && pv != b {
			continue
		}
		other := a
		if pv == a {
			other = b
		}
		adj, wgt := g.Neighbors(v)
		toOther, toOwn, touchesOther := 0, 0, false
		for i, u := range adj {
			switch part[u] {
			case other:
				toOther += wgt[i]
				touchesOther = true
			case pv:
				toOwn += wgt[i]
			}
		}
		acct.Ops += float64(len(adj) + 2)
		acct.Rand += float64(len(adj))
		if touchesOther && toOther > toOwn && cnt[pv] > 1 {
			part[v] = other
			cnt[pv]--
			cnt[other]++
			moved++
		}
	}
	return moved
}
