package jostle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpmetis/internal/graph"
	"gpmetis/internal/graph/gen"
	"gpmetis/internal/metis"
	"gpmetis/internal/perfmodel"
)

func machine() *perfmodel.Machine { return perfmodel.Default() }

func TestPartitionEndToEnd(t *testing.T) {
	g, err := gen.Grid2D(40, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, 8, DefaultOptions(), machine())
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckPartition(g, res.Part, 8); err != nil {
		t.Fatal(err)
	}
	if imb := graph.Imbalance(g, res.Part, 8); imb > 1.25 {
		t.Errorf("imbalance = %g", imb)
	}
	if res.EdgeCut > 450 {
		t.Errorf("cut %d too high for a 40x40 grid in 8 parts", res.EdgeCut)
	}
	if res.Levels == 0 {
		t.Error("expected coarsening levels")
	}
	if res.ModeledSeconds() <= 0 {
		t.Error("no modeled time")
	}
}

func TestCoarsensToK(t *testing.T) {
	// Jostle's signature property: coarsening terminates at (about) k
	// vertices, so the initial partitioning is trivial.
	g, err := gen.Delaunay(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, 16, DefaultOptions(), machine())
	if err != nil {
		t.Fatal(err)
	}
	// Many more levels than Metis's CoarsenTo*k threshold needs.
	mres, err := metis.Partition(g, 16, metis.DefaultOptions(), machine())
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels <= mres.Levels {
		t.Errorf("Jostle levels %d should exceed Metis levels %d (coarsens all the way to k)",
			res.Levels, mres.Levels)
	}
}

func TestSerialVsParallelRefinement(t *testing.T) {
	g, err := gen.Delaunay(6000, 5)
	if err != nil {
		t.Fatal(err)
	}
	oSer := DefaultOptions()
	oSer.Threads = 1
	oPar := DefaultOptions()
	oPar.Threads = 8
	ser, err := Partition(g, 16, oSer, machine())
	if err != nil {
		t.Fatal(err)
	}
	par, err := Partition(g, 16, oPar, machine())
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckPartition(g, par.Part, 16); err != nil {
		t.Error(err)
	}
	// The interface-region scheme should be competitive with the serial
	// sweep on quality and beat it on modeled time.
	lo, hi := float64(par.EdgeCut), float64(ser.EdgeCut)
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi/lo > 1.5 {
		t.Errorf("serial (%d) and parallel (%d) Jostle quality diverge", ser.EdgeCut, par.EdgeCut)
	}
	if par.ModeledSeconds() >= ser.ModeledSeconds() {
		t.Errorf("parallel refinement (%.4fs) should beat serial (%.4fs)",
			par.ModeledSeconds(), ser.ModeledSeconds())
	}
}

func TestQualityComparableToMetis(t *testing.T) {
	g, err := gen.Delaunay(8000, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := machine()
	ser, err := metis.Partition(g, 16, metis.DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, 16, DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.EdgeCut) / float64(ser.EdgeCut)
	// Jostle's trivial initial partitioning costs some quality; it must
	// still land in the same league.
	if ratio > 1.8 || ratio < 0.5 {
		t.Errorf("edge-cut ratio vs Metis = %.3f", ratio)
	}
}

func TestOptionValidation(t *testing.T) {
	g, err := gen.Grid2D(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	if _, err := Partition(g, 0, o, machine()); err == nil {
		t.Error("k=0 should fail")
	}
	cases := []func(*Options){
		func(o *Options) { o.UBFactor = 0.5 },
		func(o *Options) { o.Threads = 0 },
		func(o *Options) { o.RefineIters = -1 },
	}
	for i, mutate := range cases {
		bad := DefaultOptions()
		mutate(&bad)
		if _, err := Partition(g, 2, bad, machine()); err == nil {
			t.Errorf("case %d: invalid options should fail", i)
		}
	}
}

// Property: valid partitions over random graphs and k.
func TestPartitionAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, szRaw, kRaw uint8) bool {
		n := 40 + int(szRaw)%150
		k := 2 + int(kRaw)%6
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			if err := b.AddEdge(rng.Intn(v), v, 1+rng.Intn(3)); err != nil {
				return false
			}
		}
		g := b.MustBuild()
		o := DefaultOptions()
		o.Seed = seed
		res, err := Partition(g, k, o, machine())
		if err != nil {
			t.Logf("Partition: %v", err)
			return false
		}
		return graph.CheckPartition(g, res.Part, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
