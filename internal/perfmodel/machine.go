// Package perfmodel defines the modeled heterogeneous machine that every
// partitioner in this repository charges its work against.
//
// The reproduction runs on arbitrary hosts (including single-core
// containers), so wall-clock time cannot express the parallel behaviour the
// paper measures on an 8-core Xeon E5540 + GTX Titan system. Instead, all
// partitioners execute their algorithms for real — producing real
// partitions and edge cuts — while charging abstract work units (compute
// operations, random and sequential memory traffic, atomics, messages,
// transfers) to a shared Machine. The Machine converts charged work into
// modeled seconds using hardware parameters chosen to resemble the paper's
// testbed. Comparative results (who is faster, by what factor) therefore
// depend only on the algorithms' work, imbalance, and communication
// structure, which this reproduction preserves exactly.
package perfmodel

import "fmt"

// CPUParams models a multicore CPU (paper: Intel Xeon E5540, 8 cores).
type CPUParams struct {
	// Cores is the number of physical cores available to CPU partitioners.
	Cores int
	// ClockHz is the core clock frequency.
	ClockHz float64
	// IPC is the average instructions retired per cycle for the pointer-
	// chasing integer code that dominates graph partitioning.
	IPC float64
	// RandAccessSec is the average cost of one cache-missing random memory
	// access (seconds). Irregular graph codes are dominated by this term.
	RandAccessSec float64
	// SeqBytesPerSec is the streaming memory bandwidth available to one
	// core for sequential access (bytes/second).
	SeqBytesPerSec float64
	// BarrierSec is the cost of one synchronization barrier among all
	// participating threads.
	BarrierSec float64
	// AtomicSec is the cost of one contended atomic read-modify-write.
	AtomicSec float64
}

// GPUParams models a discrete GPU (paper: NVIDIA GeForce GTX Titan).
type GPUParams struct {
	// SMs is the number of streaming multiprocessors.
	SMs int
	// WarpSize is the number of lanes that execute in lockstep.
	WarpSize int
	// WarpSlotsPerSM is how many warps an SM can have in flight; together
	// with SMs it bounds the device's latency-hiding parallelism.
	WarpSlotsPerSM int
	// CoresPerSM is the number of scalar lanes per SM, bounding the
	// device's instruction throughput.
	CoresPerSM int
	// ClockHz is the SM clock frequency.
	ClockHz float64
	// TransactionBytes is the global-memory transaction granularity used
	// for coalescing: accesses by a warp that fall into one aligned
	// segment of this size cost a single transaction.
	TransactionBytes int
	// MemBytesPerSec is the aggregate global-memory bandwidth the model
	// charges transactions against. The default uses the ~60% of the
	// GTX Titan's 288 GB/s peak that irregular transaction mixes sustain
	// in practice, rather than the peak streaming figure.
	MemBytesPerSec float64
	// MemLatencySec is the latency of one global-memory transaction when
	// not hidden by other warps; the simulator charges a fraction of it
	// depending on occupancy.
	MemLatencySec float64
	// AtomicSec is the serialization cost of one global atomic per
	// conflicting address.
	AtomicSec float64
	// LaunchSec is the fixed host-side cost of launching one kernel.
	LaunchSec float64
	// GlobalMemBytes is the device memory capacity (paper: 6 GB GDDR5).
	// Partitioning fails, as in the paper, if the graph does not fit.
	GlobalMemBytes int64
}

// PCIeParams models the host-device interconnect.
type PCIeParams struct {
	// BytesPerSec is the sustained transfer bandwidth.
	BytesPerSec float64
	// LatencySec is the fixed per-transfer setup latency.
	LatencySec float64
}

// NetParams models the cluster interconnect used by the distributed
// (ParMetis-style) partitioner, as a standard alpha-beta model.
type NetParams struct {
	// LatencySec is alpha: fixed per-message latency.
	LatencySec float64
	// BytesPerSec is 1/beta: point-to-point bandwidth.
	BytesPerSec float64
}

// Machine aggregates the modeled hardware. A single Machine value is shared
// by every partitioner in one experiment so that their modeled times are
// directly comparable.
type Machine struct {
	CPU  CPUParams
	GPU  GPUParams
	PCIe PCIeParams
	Net  NetParams
}

// Default returns a Machine resembling the paper's testbed: an 8-core
// 2.53 GHz Xeon E5540 host, a GTX Titan (14 SMs, 876 MHz, 288 GB/s, 6 GB),
// PCIe 2.0 x16, and a commodity-cluster interconnect for the MPI model.
func Default() *Machine {
	return &Machine{
		CPU: CPUParams{
			Cores:          8,
			ClockHz:        2.53e9,
			IPC:            1.2,
			RandAccessSec:  30e-9,
			SeqBytesPerSec: 4.0e9,
			BarrierSec:     2e-6,
			AtomicSec:      20e-9,
		},
		GPU: GPUParams{
			SMs:              14,
			WarpSize:         32,
			WarpSlotsPerSM:   20,
			CoresPerSM:       192,
			ClockHz:          876e6,
			TransactionBytes: 128,
			MemBytesPerSec:   170e9,
			MemLatencySec:    700e-9,
			AtomicSec:        50e-9,
			LaunchSec:        8e-6,
			GlobalMemBytes:   6 << 30,
		},
		PCIe: PCIeParams{
			BytesPerSec: 6.0e9,
			LatencySec:  12e-6,
		},
		Net: NetParams{
			LatencySec:  20e-6,
			BytesPerSec: 500e6, // single-node MPI over shared memory
		},
	}
}

// Validate reports an error when a Machine has non-positive parameters that
// would make modeled times meaningless (zero clocks, zero bandwidth, ...).
func (m *Machine) Validate() error {
	switch {
	case m.CPU.Cores <= 0:
		return fmt.Errorf("perfmodel: CPU.Cores must be positive, got %d", m.CPU.Cores)
	case m.CPU.ClockHz <= 0 || m.CPU.IPC <= 0:
		return fmt.Errorf("perfmodel: CPU clock/IPC must be positive")
	case m.CPU.SeqBytesPerSec <= 0 || m.CPU.RandAccessSec <= 0:
		return fmt.Errorf("perfmodel: CPU memory parameters must be positive")
	case m.GPU.SMs <= 0 || m.GPU.WarpSize <= 0 || m.GPU.WarpSlotsPerSM <= 0 || m.GPU.CoresPerSM <= 0:
		return fmt.Errorf("perfmodel: GPU geometry must be positive")
	case m.GPU.ClockHz <= 0 || m.GPU.MemBytesPerSec <= 0 || m.GPU.TransactionBytes <= 0:
		return fmt.Errorf("perfmodel: GPU clock/memory parameters must be positive")
	case m.GPU.GlobalMemBytes <= 0:
		return fmt.Errorf("perfmodel: GPU.GlobalMemBytes must be positive")
	case m.PCIe.BytesPerSec <= 0:
		return fmt.Errorf("perfmodel: PCIe.BytesPerSec must be positive")
	case m.Net.BytesPerSec <= 0:
		return fmt.Errorf("perfmodel: Net.BytesPerSec must be positive")
	}
	return nil
}

// CPUOpSec returns the modeled seconds for n simple CPU operations on one
// core (no memory-system effects; add those via CPURandSec/CPUSeqSec).
func (m *Machine) CPUOpSec(n float64) float64 {
	return n / (m.CPU.ClockHz * m.CPU.IPC)
}

// CPURandSec returns the modeled seconds for n cache-missing random memory
// accesses issued by one core.
func (m *Machine) CPURandSec(n float64) float64 {
	return n * m.CPU.RandAccessSec
}

// CPUSeqSec returns the modeled seconds for streaming n bytes sequentially
// through one core.
func (m *Machine) CPUSeqSec(bytes float64) float64 {
	return bytes / m.CPU.SeqBytesPerSec
}

// PCIeSec returns the modeled seconds to move n bytes across PCIe,
// including the fixed transfer latency.
func (m *Machine) PCIeSec(bytes float64) float64 {
	return m.PCIe.LatencySec + bytes/m.PCIe.BytesPerSec
}

// NetMsgSec returns the modeled seconds for one point-to-point message of n
// bytes under the alpha-beta model.
func (m *Machine) NetMsgSec(bytes float64) float64 {
	return m.Net.LatencySec + bytes/m.Net.BytesPerSec
}
