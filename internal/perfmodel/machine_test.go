package perfmodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() should validate, got %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Machine)
	}{
		{"zero cores", func(m *Machine) { m.CPU.Cores = 0 }},
		{"negative cores", func(m *Machine) { m.CPU.Cores = -1 }},
		{"zero cpu clock", func(m *Machine) { m.CPU.ClockHz = 0 }},
		{"zero ipc", func(m *Machine) { m.CPU.IPC = 0 }},
		{"zero seq bw", func(m *Machine) { m.CPU.SeqBytesPerSec = 0 }},
		{"zero rand cost", func(m *Machine) { m.CPU.RandAccessSec = 0 }},
		{"zero SMs", func(m *Machine) { m.GPU.SMs = 0 }},
		{"zero warp", func(m *Machine) { m.GPU.WarpSize = 0 }},
		{"zero warp slots", func(m *Machine) { m.GPU.WarpSlotsPerSM = 0 }},
		{"zero gpu clock", func(m *Machine) { m.GPU.ClockHz = 0 }},
		{"zero gpu mem bw", func(m *Machine) { m.GPU.MemBytesPerSec = 0 }},
		{"zero transaction", func(m *Machine) { m.GPU.TransactionBytes = 0 }},
		{"zero gpu mem", func(m *Machine) { m.GPU.GlobalMemBytes = 0 }},
		{"zero pcie bw", func(m *Machine) { m.PCIe.BytesPerSec = 0 }},
		{"zero net bw", func(m *Machine) { m.Net.BytesPerSec = 0 }},
	}
	for _, tc := range cases {
		m := Default()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate() should fail", tc.name)
		}
	}
}

func TestCPUCostTerms(t *testing.T) {
	m := Default()
	if got := m.CPUOpSec(0); got != 0 {
		t.Errorf("CPUOpSec(0) = %g, want 0", got)
	}
	want := 1e9 / (m.CPU.ClockHz * m.CPU.IPC)
	if got := m.CPUOpSec(1e9); math.Abs(got-want) > 1e-12 {
		t.Errorf("CPUOpSec(1e9) = %g, want %g", got, want)
	}
	if got := m.CPURandSec(1000); math.Abs(got-1000*m.CPU.RandAccessSec) > 1e-15 {
		t.Errorf("CPURandSec(1000) = %g", got)
	}
	if got := m.CPUSeqSec(m.CPU.SeqBytesPerSec); math.Abs(got-1) > 1e-9 {
		t.Errorf("CPUSeqSec(full-bandwidth) = %g, want 1", got)
	}
}

func TestPCIeAndNetIncludeLatency(t *testing.T) {
	m := Default()
	if got := m.PCIeSec(0); got != m.PCIe.LatencySec {
		t.Errorf("PCIeSec(0) = %g, want latency %g", got, m.PCIe.LatencySec)
	}
	if got := m.NetMsgSec(0); got != m.Net.LatencySec {
		t.Errorf("NetMsgSec(0) = %g, want latency %g", got, m.Net.LatencySec)
	}
	if m.PCIeSec(1<<30) <= m.PCIeSec(1<<20) {
		t.Error("PCIeSec must grow with payload size")
	}
}

func TestThreadCostAddAndSeconds(t *testing.T) {
	m := Default()
	a := ThreadCost{Ops: 100, Rand: 10, SeqBytes: 1000, Atomics: 5}
	b := ThreadCost{Ops: 1, Rand: 2, SeqBytes: 3, Atomics: 4}
	a.Add(b)
	want := ThreadCost{Ops: 101, Rand: 12, SeqBytes: 1003, Atomics: 9}
	if a != want {
		t.Fatalf("Add: got %+v want %+v", a, want)
	}
	sec := a.Seconds(m)
	manual := m.CPUOpSec(101) + m.CPURandSec(12) + m.CPUSeqSec(1003) + 9*m.CPU.AtomicSec
	if math.Abs(sec-manual) > 1e-15 {
		t.Errorf("Seconds = %g, want %g", sec, manual)
	}
}

func TestCPUPhaseSecondsIsMaxPlusBarrier(t *testing.T) {
	m := Default()
	if got := m.CPUPhaseSeconds(nil); got != 0 {
		t.Errorf("empty phase = %g, want 0", got)
	}
	slow := ThreadCost{Ops: 1e9}
	fast := ThreadCost{Ops: 1e3}
	single := m.CPUPhaseSeconds([]ThreadCost{slow})
	if single != slow.Seconds(m) {
		t.Errorf("single-thread phase should have no barrier: %g vs %g", single, slow.Seconds(m))
	}
	multi := m.CPUPhaseSeconds([]ThreadCost{fast, slow, fast, fast})
	want := slow.Seconds(m) + m.CPU.BarrierSec
	if math.Abs(multi-want) > 1e-15 {
		t.Errorf("multi-thread phase = %g, want max+barrier = %g", multi, want)
	}
}

func TestCPUPhaseSecondsImbalanceDominates(t *testing.T) {
	// A phase with one overloaded thread must cost (almost) as much as the
	// overloaded thread alone: this is the SIMD/load-imbalance effect the
	// paper identifies as the key GPU performance hazard.
	m := Default()
	threads := make([]ThreadCost, 8)
	for i := range threads {
		threads[i] = ThreadCost{Ops: 1e7}
	}
	balanced := m.CPUPhaseSeconds(threads)
	threads[3] = ThreadCost{Ops: 8e7}
	skewed := m.CPUPhaseSeconds(threads)
	if skewed < 7*balanced/2 {
		t.Errorf("skewed phase %g should be much slower than balanced %g", skewed, balanced)
	}
}

func TestTimelineTotals(t *testing.T) {
	var tl Timeline
	tl.Append("coarsen", LocGPU, 1.5)
	tl.Append("transfer", LocPCIe, 0.25)
	tl.Append("initpart", LocCPU, 0.5)
	tl.Append("coarsen", LocGPU, 0.5)
	tl.Append("bogus", LocCPU, -3) // clamped to 0

	if got := tl.Total(); math.Abs(got-2.75) > 1e-12 {
		t.Errorf("Total = %g, want 2.75", got)
	}
	if got := tl.TotalAt(LocGPU); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("TotalAt(GPU) = %g, want 2.0", got)
	}
	if got := tl.TotalAt(LocPCIe); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("TotalAt(PCIe) = %g, want 0.25", got)
	}
	if n := len(tl.Phases()); n != 5 {
		t.Errorf("Phases len = %d, want 5", n)
	}
	agg := tl.ByPhaseName()
	if len(agg) != 4 {
		t.Fatalf("ByPhaseName len = %d, want 4", len(agg))
	}
	// Sorted by name: bogus, coarsen, initpart, transfer.
	if agg[1].Name != "coarsen" || math.Abs(agg[1].Seconds-2.0) > 1e-12 {
		t.Errorf("aggregated coarsen = %+v", agg[1])
	}
}

func TestTimelineMergeAndString(t *testing.T) {
	var a, b Timeline
	a.Append("x", LocCPU, 1)
	b.Append("y", LocGPU, 2)
	a.Merge(&b)
	if a.Total() != 3 {
		t.Errorf("merged total = %g, want 3", a.Total())
	}
	s := a.String()
	for _, want := range []string{"x", "y", "TOTAL", "GPU", "CPU"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestLocationString(t *testing.T) {
	if LocCPU.String() != "CPU" || LocGPU.String() != "GPU" || LocPCIe.String() != "PCIe" || LocNet.String() != "NET" {
		t.Error("Location.String mismatch")
	}
	if !strings.Contains(Location(42).String(), "42") {
		t.Error("unknown Location should print its value")
	}
}

// Property: timeline total equals the sum of per-location totals, for any
// sequence of appended phases.
func TestTimelineTotalPartitionProperty(t *testing.T) {
	f := func(secs []float64, locs []uint8) bool {
		var tl Timeline
		for i, s := range secs {
			loc := LocCPU
			if len(locs) > 0 {
				loc = Location(locs[i%len(locs)] % 4)
			}
			// Keep values finite and bounded so the sum cannot overflow.
			if math.IsNaN(s) || math.IsInf(s, 0) {
				s = 1
			}
			s = math.Mod(math.Abs(s), 1e6)
			tl.Append("p", loc, s)
		}
		sum := tl.TotalAt(LocCPU) + tl.TotalAt(LocGPU) + tl.TotalAt(LocPCIe) + tl.TotalAt(LocNet)
		return math.Abs(sum-tl.Total()) <= 1e-9*(1+math.Abs(tl.Total()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ThreadCost.Seconds is monotone in each work component.
func TestThreadCostMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(ops, rand, seq, at uint32) bool {
		base := ThreadCost{Ops: float64(ops), Rand: float64(rand), SeqBytes: float64(seq), Atomics: float64(at)}
		bigger := base
		bigger.Ops++
		bigger.Rand++
		bigger.SeqBytes++
		bigger.Atomics++
		return bigger.Seconds(m) > base.Seconds(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
