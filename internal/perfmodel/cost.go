package perfmodel

import (
	"fmt"
	"sort"
	"strings"
)

// ThreadCost accumulates the abstract work charged by one CPU thread (or
// one MPI rank's local computation) during a phase.
type ThreadCost struct {
	// Ops counts simple ALU/branch operations.
	Ops float64
	// Rand counts cache-missing random memory accesses.
	Rand float64
	// SeqBytes counts bytes streamed sequentially.
	SeqBytes float64
	// Atomics counts contended atomic read-modify-writes.
	Atomics float64
}

// Add accumulates other into c.
func (c *ThreadCost) Add(other ThreadCost) {
	c.Ops += other.Ops
	c.Rand += other.Rand
	c.SeqBytes += other.SeqBytes
	c.Atomics += other.Atomics
}

// Seconds converts the accumulated work into modeled seconds on one core of
// machine m.
func (c ThreadCost) Seconds(m *Machine) float64 {
	return m.CPUOpSec(c.Ops) + m.CPURandSec(c.Rand) + m.CPUSeqSec(c.SeqBytes) + c.Atomics*m.CPU.AtomicSec
}

// CPUPhaseSeconds returns the modeled duration of one bulk-synchronous CPU
// phase executed by the given per-thread costs: the maximum thread time
// (load imbalance is visible, as the paper stresses) plus one barrier.
func (m *Machine) CPUPhaseSeconds(threads []ThreadCost) float64 {
	if len(threads) == 0 {
		return 0
	}
	var max float64
	for _, t := range threads {
		if s := t.Seconds(m); s > max {
			max = s
		}
	}
	if len(threads) > 1 {
		max += m.CPU.BarrierSec
	}
	return max
}

// Location tags where a phase of work ran in the modeled system.
type Location int

// Locations of modeled work.
const (
	LocCPU Location = iota
	LocGPU
	LocPCIe
	LocNet
)

// String returns the conventional short name of the location.
func (l Location) String() string {
	switch l {
	case LocCPU:
		return "CPU"
	case LocGPU:
		return "GPU"
	case LocPCIe:
		return "PCIe"
	case LocNet:
		return "NET"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// Phase is one timed step of a partitioner run.
type Phase struct {
	Name    string
	Loc     Location
	Seconds float64
	// Span is the ID of the trace span mirroring this phase (0 when the
	// run was not traced), so a trace reconciles with the timeline
	// phase by phase.
	Span int64
}

// PhaseObserver receives every phase as it is appended to an observed
// Timeline. start is the timeline total before the phase; the returned
// span ID (0 for none) is recorded on the phase.
type PhaseObserver interface {
	PhaseSpan(name string, loc Location, start, seconds float64) int64
}

// Timeline is an ordered record of modeled phases. Partitioners append to
// it as they run; the benchmark harness reads totals and breakdowns from
// it. A Timeline is not safe for concurrent use; parallel partitioners
// account per-thread costs first and append a single phase afterwards.
type Timeline struct {
	phases []Phase
	total  float64
	obs    PhaseObserver
}

// Observe installs o as the timeline's phase observer. Pass nil to
// detach. Merged phases are not re-observed: a sub-timeline observes its
// own appends.
func (t *Timeline) Observe(o PhaseObserver) { t.obs = o }

// Append records a phase of the given duration. Negative durations are
// clamped to zero so a buggy model term can never make a timeline
// non-monotonic.
func (t *Timeline) Append(name string, loc Location, seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	var span int64
	if t.obs != nil {
		span = t.obs.PhaseSpan(name, loc, t.total, seconds)
	}
	t.phases = append(t.phases, Phase{Name: name, Loc: loc, Seconds: seconds, Span: span})
	t.total += seconds
}

// AppendTagged records a phase already mirrored by span (the observer is
// not consulted), for instrumented code that emits richer spans itself.
func (t *Timeline) AppendTagged(name string, loc Location, seconds float64, span int64) {
	if seconds < 0 {
		seconds = 0
	}
	t.phases = append(t.phases, Phase{Name: name, Loc: loc, Seconds: seconds, Span: span})
	t.total += seconds
}

// Phases returns a copy of the recorded phases in order.
func (t *Timeline) Phases() []Phase {
	out := make([]Phase, len(t.phases))
	copy(out, t.phases)
	return out
}

// Total returns the summed modeled seconds of all phases. It is O(1):
// the total is maintained incrementally so instrumentation can use it as
// the modeled clock.
func (t *Timeline) Total() float64 { return t.total }

// TotalAt returns the summed modeled seconds of phases at location loc.
func (t *Timeline) TotalAt(loc Location) float64 {
	var s float64
	for _, p := range t.phases {
		if p.Loc == loc {
			s += p.Seconds
		}
	}
	return s
}

// Restore replaces the timeline's contents with the given phases and
// accumulated total (a checkpoint snapshot). The total is taken as
// given, not re-summed: merged sub-timelines fold in with a different
// floating-point grouping than a flat re-sum, and a resumed run must
// restart from the bit-exact clock. The observer is not consulted:
// restored phases were observed by the run that recorded them, and
// re-announcing them would double-count spans.
func (t *Timeline) Restore(phases []Phase, total float64) {
	t.phases = make([]Phase, len(phases))
	copy(t.phases, phases)
	t.total = total
}

// Merge appends all phases of other to t in order, keeping their span
// tags. The phases are not re-observed.
func (t *Timeline) Merge(other *Timeline) {
	t.phases = append(t.phases, other.phases...)
	t.total += other.total
}

// String formats the timeline as one line per phase plus a total, for
// debugging and verbose benchmark output.
func (t *Timeline) String() string {
	var b strings.Builder
	for _, p := range t.phases {
		fmt.Fprintf(&b, "%-6s %-28s %12.6fs\n", p.Loc, p.Name, p.Seconds)
	}
	fmt.Fprintf(&b, "%-6s %-28s %12.6fs", "", "TOTAL", t.Total())
	return b.String()
}

// ByPhaseName returns the summed seconds per distinct phase name, sorted by
// name, which benchmark reports use for stable output.
func (t *Timeline) ByPhaseName() []Phase {
	agg := map[string]*Phase{}
	for _, p := range t.phases {
		if a, ok := agg[p.Name]; ok {
			a.Seconds += p.Seconds
		} else {
			cp := p
			agg[p.Name] = &cp
		}
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Phase, 0, len(names))
	for _, n := range names {
		out = append(out, *agg[n])
	}
	return out
}
