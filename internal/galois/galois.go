// Package galois is an abstract, deterministic model of the Galois
// optimistic-parallelism runtime (Kulkarni et al., PLDI 2007) that the
// paper's Section II.C credits for Gmetis: "a sequential object-oriented
// programming model that supports parallel set iterators. Each Galois
// iterator may add new elements to the set."
//
// The runtime executes a work set with T speculative threads: in each
// round, the next T items run concurrently; an item's *neighborhood* (the
// graph elements it would lock) is computed, conflicting items lose to
// the earliest item in the round and abort — their work is wasted and
// they retry later — and the winners commit serially. Commits may push
// new items. Per-round cost is the maximum thread cost (including the
// aborted work), which is exactly why optimistic parallelism trails
// lock-free schemes on high-conflict workloads — the comparison the paper
// draws between Gmetis and ParMetis.
package galois

import (
	"fmt"

	"gpmetis/internal/perfmodel"
)

// Stats reports a ForEach execution.
type Stats struct {
	// Commits is the number of items that executed to completion.
	Commits int
	// Aborts counts speculative executions whose work was discarded.
	Aborts int
	// Rounds is the number of bulk-synchronous speculation rounds.
	Rounds int
}

// AbortRate returns aborted executions over all executions.
func (s Stats) AbortRate() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// Runtime executes speculative iterators on the modeled multicore.
type Runtime struct {
	// Threads is the number of speculative executors.
	Threads int
	// Machine converts charged work to modeled seconds.
	Machine *perfmodel.Machine
	// Timeline receives one phase per ForEach.
	Timeline *perfmodel.Timeline
	// AbortPenaltyOps is the fixed bookkeeping cost of one rollback.
	AbortPenaltyOps float64
}

// New returns a Runtime with the given executor count.
func New(threads int, m *perfmodel.Machine, tl *perfmodel.Timeline) (*Runtime, error) {
	if threads < 1 {
		return nil, fmt.Errorf("galois: need at least 1 thread, got %d", threads)
	}
	if threads > m.CPU.Cores {
		return nil, fmt.Errorf("galois: %d threads exceed the modeled %d cores", threads, m.CPU.Cores)
	}
	return &Runtime{
		Threads:         threads,
		Machine:         m,
		Timeline:        tl,
		AbortPenaltyOps: 64,
	}, nil
}

// Item is one unit of speculative work.
type Item struct {
	// ID identifies the item (typically a vertex).
	ID int
	// Neighborhood returns the elements the item would lock, and the
	// abstract work (ops, random accesses) of computing the operator.
	// It must be side-effect free: aborted items re-run it later.
	Neighborhood func() (locks []int, cost perfmodel.ThreadCost)
	// Commit applies the operator; it runs only for round winners, in
	// round order. It may return follow-up items, which join the set
	// (the "iterator may add new elements" property).
	Commit func() []Item
}

// ForEach drains the work set speculatively and appends one phase with
// the given name to the timeline. Execution is deterministic: rounds take
// items in queue order and earlier items win conflicts.
func (r *Runtime) ForEach(name string, items []Item) Stats {
	var stats Stats
	queue := items
	lockOwner := map[int]int{} // element -> index within round
	var phaseSeconds float64

	for len(queue) > 0 {
		stats.Rounds++
		roundSize := r.Threads
		if roundSize > len(queue) {
			roundSize = len(queue)
		}
		round := queue[:roundSize]
		rest := queue[roundSize:]

		// Speculative phase: every executor computes its neighborhood.
		costs := make([]perfmodel.ThreadCost, roundSize)
		locks := make([][]int, roundSize)
		for i, it := range round {
			l, c := it.Neighborhood()
			locks[i] = l
			costs[i] = c
		}
		// Conflict detection: the earliest item owning an element wins.
		clear(lockOwner)
		aborted := make([]bool, roundSize)
		for i := range round {
			for _, e := range locks[i] {
				if w, taken := lockOwner[e]; taken && w != i {
					aborted[i] = true
					break
				}
			}
			if aborted[i] {
				costs[i].Ops += r.AbortPenaltyOps
				continue
			}
			for _, e := range locks[i] {
				lockOwner[e] = i
			}
		}
		// Commit phase, in order; aborted items requeue.
		var retries, spawned []Item
		for i, it := range round {
			if aborted[i] {
				stats.Aborts++
				retries = append(retries, it)
				continue
			}
			stats.Commits++
			if more := it.Commit(); len(more) > 0 {
				spawned = append(spawned, more...)
			}
		}
		phaseSeconds += r.Machine.CPUPhaseSeconds(costs)

		// The first item of a round always wins its locks, so every round
		// commits at least one item and the drain terminates.
		queue = append(append(retries, rest...), spawned...)
	}
	if r.Timeline != nil {
		r.Timeline.Append(name, perfmodel.LocCPU, phaseSeconds)
	}
	return stats
}
