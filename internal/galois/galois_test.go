package galois

import (
	"testing"

	"gpmetis/internal/perfmodel"
)

func newRT(t *testing.T, threads int) (*Runtime, *perfmodel.Timeline) {
	t.Helper()
	tl := &perfmodel.Timeline{}
	rt, err := New(threads, perfmodel.Default(), tl)
	if err != nil {
		t.Fatal(err)
	}
	return rt, tl
}

func TestNewValidation(t *testing.T) {
	m := perfmodel.Default()
	if _, err := New(0, m, nil); err == nil {
		t.Error("0 threads should fail")
	}
	if _, err := New(99, m, nil); err == nil {
		t.Error("threads beyond modeled cores should fail")
	}
	if _, err := New(8, m, nil); err != nil {
		t.Errorf("8 threads should work: %v", err)
	}
}

func TestForEachNoConflicts(t *testing.T) {
	rt, tl := newRT(t, 4)
	applied := make([]bool, 10)
	items := make([]Item, 10)
	for i := range items {
		i := i
		items[i] = Item{
			ID: i,
			Neighborhood: func() ([]int, perfmodel.ThreadCost) {
				return []int{i}, perfmodel.ThreadCost{Ops: 10}
			},
			Commit: func() []Item {
				applied[i] = true
				return nil
			},
		}
	}
	st := rt.ForEach("disjoint", items)
	if st.Aborts != 0 {
		t.Errorf("disjoint items aborted %d times", st.Aborts)
	}
	if st.Commits != 10 {
		t.Errorf("commits = %d, want 10", st.Commits)
	}
	if st.Rounds != 3 { // ceil(10/4)
		t.Errorf("rounds = %d, want 3", st.Rounds)
	}
	for i, ok := range applied {
		if !ok {
			t.Errorf("item %d never committed", i)
		}
	}
	if tl.Total() <= 0 {
		t.Error("phase not charged")
	}
}

func TestForEachConflictsAbortAndRetry(t *testing.T) {
	rt, _ := newRT(t, 4)
	// All items lock the same element: only one commits per round.
	order := []int{}
	items := make([]Item, 4)
	for i := range items {
		i := i
		items[i] = Item{
			ID: i,
			Neighborhood: func() ([]int, perfmodel.ThreadCost) {
				return []int{42}, perfmodel.ThreadCost{Ops: 5}
			},
			Commit: func() []Item {
				order = append(order, i)
				return nil
			},
		}
	}
	st := rt.ForEach("hot", items)
	if st.Commits != 4 {
		t.Errorf("commits = %d, want 4", st.Commits)
	}
	if st.Aborts != 3+2+1 {
		t.Errorf("aborts = %d, want 6 (3 then 2 then 1)", st.Aborts)
	}
	if st.Rounds != 4 {
		t.Errorf("rounds = %d, want 4", st.Rounds)
	}
	// Deterministic order: queue order wins.
	for i, v := range order {
		if v != i {
			t.Fatalf("commit order %v not deterministic queue order", order)
		}
	}
	if r := st.AbortRate(); r <= 0.5 || r >= 0.7 {
		t.Errorf("abort rate %.3f, want 6/10", r)
	}
}

func TestForEachSpawnsNewItems(t *testing.T) {
	rt, _ := newRT(t, 2)
	var hits int
	child := Item{
		ID: 100,
		Neighborhood: func() ([]int, perfmodel.ThreadCost) {
			return []int{100}, perfmodel.ThreadCost{Ops: 1}
		},
		Commit: func() []Item { hits++; return nil },
	}
	parent := Item{
		ID: 1,
		Neighborhood: func() ([]int, perfmodel.ThreadCost) {
			return []int{1}, perfmodel.ThreadCost{Ops: 1}
		},
		Commit: func() []Item { hits++; return []Item{child} },
	}
	st := rt.ForEach("spawn", []Item{parent})
	if st.Commits != 2 || hits != 2 {
		t.Errorf("commits = %d hits = %d, want 2/2 (parent + spawned child)", st.Commits, hits)
	}
}

func TestForEachEmpty(t *testing.T) {
	rt, _ := newRT(t, 4)
	st := rt.ForEach("empty", nil)
	if st.Commits != 0 || st.Aborts != 0 || st.Rounds != 0 {
		t.Errorf("empty ForEach produced %+v", st)
	}
	if st.AbortRate() != 0 {
		t.Error("empty abort rate should be 0")
	}
}

func TestMoreThreadsMoreAborts(t *testing.T) {
	// A chain of items each locking {i, i+1}: at T=1 no conflicts; at
	// higher T adjacent items collide.
	mk := func() []Item {
		items := make([]Item, 16)
		for i := range items {
			i := i
			items[i] = Item{
				ID: i,
				Neighborhood: func() ([]int, perfmodel.ThreadCost) {
					return []int{i, i + 1}, perfmodel.ThreadCost{Ops: 3}
				},
				Commit: func() []Item { return nil },
			}
		}
		return items
	}
	rt1, _ := newRT(t, 1)
	st1 := rt1.ForEach("chain", mk())
	rt8, _ := newRT(t, 8)
	st8 := rt8.ForEach("chain", mk())
	if st1.Aborts != 0 {
		t.Errorf("single-thread run aborted %d times", st1.Aborts)
	}
	if st8.Aborts == 0 {
		t.Error("8-thread run over overlapping neighborhoods should abort")
	}
}
