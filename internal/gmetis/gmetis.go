// Package gmetis implements the Gmetis partitioner of the paper's Section
// II.C (Sui, Nguyen, Burtscher, Pingali, LCPC 2010): Metis's multilevel
// algorithm expressed with the Galois optimistic-parallelism model —
// speculative set iterators over vertices whose conflicts abort and retry
// instead of using locks or lock-free protocols.
//
// Matching, contraction, and refinement each run as a galois.ForEach whose
// items lock their graph neighborhood. Adjacent boundary vertices conflict
// constantly during refinement, so the abort tax is structural — the
// reason the paper notes that "this approach is found to be not as
// efficient as ParMetis in terms of performance".
package gmetis

import (
	"fmt"
	"math/rand"

	"gpmetis/internal/galois"
	"gpmetis/internal/graph"
	"gpmetis/internal/metis"
	"gpmetis/internal/perfmodel"
)

// Options configures a run. Construct with DefaultOptions.
type Options struct {
	// Seed drives randomized decisions.
	Seed int64
	// UBFactor is the allowed imbalance.
	UBFactor float64
	// CoarsenTo stops coarsening at CoarsenTo*k vertices.
	CoarsenTo int
	// RefineIters bounds refinement passes per level.
	RefineIters int
	// Threads is the number of speculative executors (paper: cores).
	Threads int
}

// DefaultOptions mirrors the other partitioners' setup.
func DefaultOptions() Options {
	return Options{
		Seed:        1,
		UBFactor:    1.03,
		CoarsenTo:   30,
		RefineIters: 6,
		Threads:     8,
	}
}

func (o *Options) validate(g *graph.Graph, k int) error {
	switch {
	case k < 1:
		return fmt.Errorf("gmetis: k must be >= 1, got %d", k)
	case g.NumVertices() == 0:
		return fmt.Errorf("gmetis: cannot partition an empty graph")
	case k > g.NumVertices():
		return fmt.Errorf("gmetis: k=%d exceeds vertex count %d", k, g.NumVertices())
	case o.UBFactor < 1.0:
		return fmt.Errorf("gmetis: UBFactor %g must be >= 1.0", o.UBFactor)
	case o.CoarsenTo < 1:
		return fmt.Errorf("gmetis: CoarsenTo %d must be >= 1", o.CoarsenTo)
	case o.RefineIters < 0:
		return fmt.Errorf("gmetis: RefineIters %d must be >= 0", o.RefineIters)
	case o.Threads < 1:
		return fmt.Errorf("gmetis: Threads %d must be >= 1", o.Threads)
	}
	return nil
}

// Result is the outcome of a run.
type Result struct {
	Part     []int
	EdgeCut  int
	Levels   int
	Timeline perfmodel.Timeline
	// Speculation aggregates the Galois runtime's commit/abort counters
	// across all iterators.
	Speculation galois.Stats
}

// ModeledSeconds returns the total modeled runtime.
func (r *Result) ModeledSeconds() float64 { return r.Timeline.Total() }

// Partition runs the Galois-style multilevel pipeline.
func Partition(g *graph.Graph, k int, o Options, m *perfmodel.Machine) (*Result, error) {
	if err := o.validate(g, k); err != nil {
		return nil, err
	}
	res := &Result{}
	rt, err := galois.New(o.Threads, m, &res.Timeline)
	if err != nil {
		return nil, fmt.Errorf("gmetis: %w", err)
	}

	// --- Coarsening with speculative matching ---
	var levels []metis.Level
	target := o.CoarsenTo * k
	maxVWgt := metis.MaxVertexWeight(g, k, o.CoarsenTo)
	cur := g
	for cur.NumVertices() > target {
		match, st := specMatch(rt, cur, maxVWgt)
		res.Speculation.Commits += st.Commits
		res.Speculation.Aborts += st.Aborts
		res.Speculation.Rounds += st.Rounds
		var acct perfmodel.ThreadCost
		cmap, coarseN := metis.BuildCMap(match, &acct)
		res.Timeline.Append("cmap", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{acct}))
		if float64(coarseN) > 0.95*float64(cur.NumVertices()) {
			break
		}
		cg, st2 := specContract(rt, cur, match, cmap, coarseN)
		res.Speculation.Commits += st2.Commits
		res.Speculation.Rounds += st2.Rounds
		levels = append(levels, metis.Level{Fine: cur, CMap: cmap, Coarse: cg})
		cur = cg
	}
	res.Levels = len(levels)

	// --- Initial partitioning: serial recursive bisection ---
	var acct perfmodel.ThreadCost
	rng := rand.New(rand.NewSource(o.Seed + 7919))
	part := metis.RecursiveBisect(cur, k, o.UBFactor, rng, &acct)
	res.Timeline.Append("initpart", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{acct}))

	// --- Un-coarsening with speculative refinement ---
	for i := len(levels) - 1; i >= 0; i-- {
		l := levels[i]
		var pAcct perfmodel.ThreadCost
		part = metis.Project(l.CMap, part, &pAcct)
		res.Timeline.Append("project", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{pAcct}))
		st := specRefine(rt, l.Fine, part, k, o)
		res.Speculation.Commits += st.Commits
		res.Speculation.Aborts += st.Aborts
		res.Speculation.Rounds += st.Rounds
	}

	var bAcct perfmodel.ThreadCost
	metis.BalancePartition(g, part, k, o.UBFactor, &bAcct)
	res.Timeline.Append("balance", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{bAcct}))

	res.Part = part
	res.EdgeCut = graph.EdgeCut(g, part)
	return res, nil
}

// specMatch runs heavy-edge matching as a speculative iterator: each
// vertex locks itself and its chosen partner; losers retry with fresh
// state.
func specMatch(rt *galois.Runtime, g *graph.Graph, maxVWgt int) ([]int, galois.Stats) {
	n := g.NumVertices()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	items := make([]galois.Item, 0, n)
	for v := 0; v < n; v++ {
		v := v
		var chosen int
		items = append(items, galois.Item{
			ID: v,
			Neighborhood: func() ([]int, perfmodel.ThreadCost) {
				var cost perfmodel.ThreadCost
				if match[v] != -1 {
					cost.Ops = 2
					return nil, cost
				}
				adj, wgt := g.Neighbors(v)
				cost.Ops = float64(len(adj) + 2)
				cost.Rand = float64(len(adj))
				best, bestW := -1, -1
				for i, u := range adj {
					if match[u] != -1 || wgt[i] <= bestW {
						continue
					}
					if maxVWgt > 0 && g.VWgt[v]+g.VWgt[u] > maxVWgt {
						continue
					}
					best, bestW = u, wgt[i]
				}
				chosen = best
				if best == -1 {
					return []int{v}, cost
				}
				return []int{v, best}, cost
			},
			Commit: func() []galois.Item {
				if match[v] != -1 {
					return nil
				}
				if chosen == -1 {
					match[v] = v
					return nil
				}
				if match[chosen] == -1 {
					match[v] = chosen
					match[chosen] = v
				} else {
					match[v] = v
				}
				return nil
			},
		})
	}
	st := rt.ForEach("coarsen.match", items)
	return match, st
}

// specContract builds the coarse graph with one item per collapsed pair;
// rows never conflict (each pair owns its coarse vertex), so this
// iterator shows the model's best case.
func specContract(rt *galois.Runtime, g *graph.Graph, match, cmap []int, coarseN int) (*graph.Graph, galois.Stats) {
	n := g.NumVertices()
	cg := &graph.Graph{
		XAdj: make([]int, coarseN+1),
		VWgt: make([]int, coarseN),
	}
	rows := make([][]int, coarseN)
	rowW := make([][]int, coarseN)
	var items []galois.Item
	for v := 0; v < n; v++ {
		if match[v] < v {
			continue
		}
		v := v
		items = append(items, galois.Item{
			ID: v,
			Neighborhood: func() ([]int, perfmodel.ThreadCost) {
				var cost perfmodel.ThreadCost
				d := g.Degree(v)
				if match[v] != v {
					d += g.Degree(match[v])
				}
				cost.Ops = float64(2 * d)
				cost.Rand = float64(2 * d)
				return []int{n + cmap[v]}, cost // lock the coarse row
			},
			Commit: func() []galois.Item {
				cv := cmap[v]
				idx := map[int]int{}
				var adjOut, wgtOut []int
				members := [2]int{v, match[v]}
				last := 0
				if match[v] != v {
					last = 1
				}
				vw := 0
				for mi := 0; mi <= last; mi++ {
					mv := members[mi]
					vw += g.VWgt[mv]
					adj, wgt := g.Neighbors(mv)
					for i, w := range adj {
						cu := cmap[w]
						if cu == cv {
							continue
						}
						if j, ok := idx[cu]; ok {
							wgtOut[j] += wgt[i]
						} else {
							idx[cu] = len(adjOut)
							adjOut = append(adjOut, cu)
							wgtOut = append(wgtOut, wgt[i])
						}
					}
				}
				rows[cv] = adjOut
				rowW[cv] = wgtOut
				cg.VWgt[cv] = vw
				return nil
			},
		})
	}
	st := rt.ForEach("coarsen.contract", items)
	for cv := 0; cv < coarseN; cv++ {
		cg.XAdj[cv+1] = cg.XAdj[cv] + len(rows[cv])
	}
	cg.Adjncy = make([]int, 0, cg.XAdj[coarseN])
	cg.AdjWgt = make([]int, 0, cg.XAdj[coarseN])
	for cv := 0; cv < coarseN; cv++ {
		cg.Adjncy = append(cg.Adjncy, rows[cv]...)
		cg.AdjWgt = append(cg.AdjWgt, rowW[cv]...)
	}
	return cg, st
}

// specRefine runs boundary refinement as a speculative iterator: a move
// locks the vertex and its whole neighborhood, so adjacent boundary
// vertices conflict — the structural abort tax of optimistic refinement.
func specRefine(rt *galois.Runtime, g *graph.Graph, part []int, k int, o Options) galois.Stats {
	var total galois.Stats
	pw := graph.PartWeights(g, part, k)
	totalW := 0
	for _, w := range pw {
		totalW += w
	}
	maxPW := int(o.UBFactor * float64(totalW) / float64(k))
	if maxPW < 1 {
		maxPW = 1
	}

	for pass := 0; pass < o.RefineIters; pass++ {
		moved := 0
		var items []galois.Item
		for v := 0; v < g.NumVertices(); v++ {
			if !graph.IsBoundary(g, part, v) {
				continue
			}
			v := v
			var dest int
			items = append(items, galois.Item{
				ID: v,
				Neighborhood: func() ([]int, perfmodel.ThreadCost) {
					var cost perfmodel.ThreadCost
					adj, wgt := g.Neighbors(v)
					cost.Ops = float64(2*len(adj) + 4)
					cost.Rand = float64(len(adj))
					conn := map[int]int{}
					for i, u := range adj {
						conn[part[u]] += wgt[i]
					}
					bestP, bestGain := -1, 0
					for p, w := range conn {
						if p == part[v] || pw[p]+g.VWgt[v] > maxPW {
							continue
						}
						if gain := w - conn[part[v]]; gain > bestGain {
							bestP, bestGain = p, gain
						}
					}
					dest = bestP
					if bestP == -1 {
						return []int{v}, cost
					}
					locks := make([]int, 0, len(adj)+1)
					locks = append(locks, v)
					locks = append(locks, adj...)
					return locks, cost
				},
				Commit: func() []galois.Item {
					if dest == -1 || pw[dest]+g.VWgt[v] > maxPW {
						return nil
					}
					from := part[v]
					part[v] = dest
					pw[from] -= g.VWgt[v]
					pw[dest] += g.VWgt[v]
					moved++
					return nil
				},
			})
		}
		st := rt.ForEach(fmt.Sprintf("refine.p%d", pass), items)
		total.Commits += st.Commits
		total.Aborts += st.Aborts
		total.Rounds += st.Rounds
		if moved == 0 {
			break
		}
	}
	return total
}
