package gmetis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpmetis/internal/graph"
	"gpmetis/internal/graph/gen"
	"gpmetis/internal/metis"
	"gpmetis/internal/mtmetis"
	"gpmetis/internal/parmetis"
	"gpmetis/internal/perfmodel"
)

func machine() *perfmodel.Machine { return perfmodel.Default() }

func TestPartitionEndToEnd(t *testing.T) {
	g, err := gen.Grid2D(40, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, 8, DefaultOptions(), machine())
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckPartition(g, res.Part, 8); err != nil {
		t.Fatal(err)
	}
	if imb := graph.Imbalance(g, res.Part, 8); imb > 1.15 {
		t.Errorf("imbalance = %g", imb)
	}
	if res.EdgeCut > 350 {
		t.Errorf("cut %d too high for a 40x40 grid in 8 parts", res.EdgeCut)
	}
	if res.Levels == 0 {
		t.Error("expected coarsening levels")
	}
	if res.Speculation.Commits == 0 {
		t.Error("no speculative commits recorded")
	}
}

func TestSpeculativeRefinementAborts(t *testing.T) {
	// Adjacent boundary vertices lock overlapping neighborhoods, so the
	// optimistic iterator must pay an abort tax during refinement.
	g, err := gen.Delaunay(8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, 16, DefaultOptions(), machine())
	if err != nil {
		t.Fatal(err)
	}
	if res.Speculation.Aborts == 0 {
		t.Error("expected speculative aborts from overlapping neighborhoods")
	}
	rate := res.Speculation.AbortRate()
	if rate <= 0 || rate > 0.9 {
		t.Errorf("abort rate %.3f out of plausible range", rate)
	}
}

func TestSlowerThanLockFreeSchemes(t *testing.T) {
	// The paper: "this approach is found to be not as efficient as
	// ParMetis in terms of performance." At minimum, the abort tax must
	// leave Gmetis behind mt-metis's lock-free scheme on the same inputs.
	g, err := gen.Delaunay(20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := machine()
	gm, err := Partition(g, 16, DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := mtmetis.Partition(g, 16, mtmetis.DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := parmetis.Partition(g, 16, parmetis.DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	if gm.ModeledSeconds() <= mt.ModeledSeconds() {
		t.Errorf("Gmetis (%.3fs) should trail mt-metis (%.3fs)", gm.ModeledSeconds(), mt.ModeledSeconds())
	}
	t.Logf("gmetis %.3fs, mt-metis %.3fs, parmetis %.3fs", gm.ModeledSeconds(), mt.ModeledSeconds(), pm.ModeledSeconds())
}

func TestQualityComparableToMetis(t *testing.T) {
	g, err := gen.Delaunay(8000, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := machine()
	ser, err := metis.Partition(g, 16, metis.DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, 16, DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.EdgeCut) / float64(ser.EdgeCut)
	if ratio > 1.5 || ratio < 0.5 {
		t.Errorf("edge-cut ratio vs Metis = %.3f", ratio)
	}
}

func TestOptionValidation(t *testing.T) {
	g, err := gen.Grid2D(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	if _, err := Partition(g, 0, o, machine()); err == nil {
		t.Error("k=0 should fail")
	}
	cases := []func(*Options){
		func(o *Options) { o.UBFactor = 0.5 },
		func(o *Options) { o.Threads = 0 },
		func(o *Options) { o.Threads = 99 },
		func(o *Options) { o.CoarsenTo = 0 },
		func(o *Options) { o.RefineIters = -1 },
	}
	for i, mutate := range cases {
		bad := DefaultOptions()
		mutate(&bad)
		if _, err := Partition(g, 2, bad, machine()); err == nil {
			t.Errorf("case %d: invalid options should fail", i)
		}
	}
}

func TestDeterministic(t *testing.T) {
	g, err := gen.RoadNetwork(5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	a, err := Partition(g, 8, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, 8, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCut != b.EdgeCut || a.ModeledSeconds() != b.ModeledSeconds() {
		t.Error("same seed must reproduce result and modeled time")
	}
	if a.Speculation != b.Speculation {
		t.Error("speculation statistics must be deterministic")
	}
}

// Property: valid partitions over random graphs, threads, and k.
func TestPartitionAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, szRaw, kRaw, tRaw uint8) bool {
		n := 40 + int(szRaw)%150
		k := 2 + int(kRaw)%6
		threads := 1 + int(tRaw)%8
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			if err := b.AddEdge(rng.Intn(v), v, 1+rng.Intn(3)); err != nil {
				return false
			}
		}
		g := b.MustBuild()
		o := DefaultOptions()
		o.Seed = seed
		o.Threads = threads
		res, err := Partition(g, k, o, machine())
		if err != nil {
			t.Logf("Partition: %v", err)
			return false
		}
		return graph.CheckPartition(g, res.Part, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
