package obs

import (
	"sort"
	"sync"
)

// Registry is a flat metrics registry: named float64 counters plus named
// bucketed histograms that any pipeline stage can bump. Names are
// dot-separated ("match.conflicts", "refine.moves", "job.seconds"). All
// methods are safe for concurrent use and no-ops on a nil receiver, so
// instrumented code never branches on whether metrics are enabled.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]float64
	histograms map[string]*histogram
}

// DefBuckets are the default histogram bucket upper bounds, an
// exponential ladder from 1 ms to 100 s suiting modeled and wall
// duration observations alike.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// histogram is one bucketed distribution. counts has one slot per bound
// plus a final overflow (+Inf) slot; slots are per-bucket, not
// cumulative — exposition cumulates.
type histogram struct {
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds, strictly ascending.
	Bounds []float64
	// Counts holds per-bucket observation counts: Counts[i] observations
	// fell in (Bounds[i-1], Bounds[i]]; the final slot is the +Inf
	// overflow. len(Counts) == len(Bounds)+1.
	Counts []uint64
	// Sum and Count are the running total and number of observations.
	Sum   float64
	Count uint64
}

// Add increments counter name by v (creating it at zero first).
func (r *Registry) Add(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.counters == nil {
		r.counters = map[string]float64{}
	}
	r.counters[name] += v
	r.mu.Unlock()
}

// Set overwrites counter name with v.
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.counters == nil {
		r.counters = map[string]float64{}
	}
	r.counters[name] = v
	r.mu.Unlock()
}

// Get returns counter name (zero when absent or when r is nil).
func (r *Registry) Get(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Snapshot returns a copy of all counters.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Names returns the sorted counter names, for stable report output.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// DeclareHistogram creates histogram name with the given bucket bounds
// (strictly ascending; a trailing +Inf overflow bucket is implicit). An
// existing histogram keeps its buckets and observations. Observing an
// undeclared histogram declares it with DefBuckets, so declaration is
// only needed for custom bounds.
func (r *Registry) DeclareHistogram(name string, bounds []float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.histogram(name, bounds)
	r.mu.Unlock()
}

// histogram finds or creates a histogram; the caller holds r.mu.
func (r *Registry) histogram(name string, bounds []float64) *histogram {
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if r.histograms == nil {
		r.histograms = map[string]*histogram{}
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	h := &histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// Observe records one observation in histogram name, declaring it with
// DefBuckets if absent.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.histogram(name, nil)
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: (..., bound] buckets
	h.counts[i]++
	h.sum += v
	h.count++
	r.mu.Unlock()
}

// Histogram returns a snapshot of histogram name; ok is false when the
// histogram does not exist (or r is nil).
func (r *Registry) Histogram(name string) (snap HistogramSnapshot, ok bool) {
	if r == nil {
		return HistogramSnapshot{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		return HistogramSnapshot{}, false
	}
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}, true
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observations by
// linear interpolation within the bucket the quantile falls in, the same
// estimate Prometheus's histogram_quantile computes. The +Inf bucket
// clamps to the largest finite bound; an empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1] // +Inf bucket clamps
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// HistogramNames returns the sorted histogram names.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.histograms))
	for k := range r.histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
