package obs

import (
	"sort"
	"sync"
)

// Registry is a flat metrics registry: named float64 counters that any
// pipeline stage can bump. Counter names are dot-separated
// ("match.conflicts", "refine.moves", "pcie.bytes_to_device"). All
// methods are safe for concurrent use and no-ops on a nil receiver, so
// instrumented code never branches on whether metrics are enabled.
type Registry struct {
	mu       sync.Mutex
	counters map[string]float64
}

// Add increments counter name by v (creating it at zero first).
func (r *Registry) Add(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.counters == nil {
		r.counters = map[string]float64{}
	}
	r.counters[name] += v
	r.mu.Unlock()
}

// Set overwrites counter name with v.
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.counters == nil {
		r.counters = map[string]float64{}
	}
	r.counters[name] = v
	r.mu.Unlock()
}

// Get returns counter name (zero when absent or when r is nil).
func (r *Registry) Get(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Snapshot returns a copy of all counters.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Names returns the sorted counter names, for stable report output.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
