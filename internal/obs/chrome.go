package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// consumed by chrome://tracing and Perfetto). Modeled seconds serve as
// the clock: ts and dur are modeled microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the tracer's spans as a Chrome trace_event
// JSON document. Each span becomes one complete ("X") event; tracks
// become named threads of a single process. Open a written file in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	spans := t.Spans()
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	// Map tracks to thread ids in order of first appearance, and emit
	// thread_name metadata so the viewer labels the rows.
	tids := map[string]int{}
	for _, sp := range spans {
		if _, ok := tids[sp.Track]; !ok {
			tid := len(tids)
			tids[sp.Track] = tid
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name",
				Ph:   "M",
				Pid:  1,
				Tid:  tid,
				Args: map[string]any{"name": sp.Track},
			})
		}
	}

	for _, sp := range spans {
		args := map[string]any{"span": sp.ID, "parent": sp.ParentID}
		if sp.Aux {
			args["aux"] = true
		}
		for _, a := range sp.Attrs() {
			args[a.Key] = a.Value()
		}
		cat := "detail"
		if sp.ParentID == 0 {
			cat = "run"
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: sp.Name,
			Cat:  cat,
			Ph:   "X",
			Ts:   sp.Start * 1e6, // modeled seconds -> modeled microseconds
			Dur:  sp.Dur() * 1e6,
			Pid:  1,
			Tid:  tids[sp.Track],
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(trace)
}
