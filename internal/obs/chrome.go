package obs

import (
	"encoding/json"
	"io"
)

// ChromeEvent is one entry of the Chrome trace_event format (the JSON
// consumed by chrome://tracing and Perfetto). The clock is whatever the
// producer chose — modeled microseconds for partition traces, wall-clock
// microseconds for service lifecycle spans; a merged document carries
// both on separate process rows.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ProcessNameEvent labels a pid row in the trace viewer.
func ProcessNameEvent(pid int, name string) ChromeEvent {
	return ChromeEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}}
}

// ThreadNameEvent labels a tid row within a pid.
func ThreadNameEvent(pid, tid int, name string) ChromeEvent {
	return ChromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}}
}

// WriteChromeJSON serializes events as one Chrome trace_event document.
func WriteChromeJSON(w io.Writer, events []ChromeEvent) error {
	if events == nil {
		events = []ChromeEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{DisplayTimeUnit: "ms", TraceEvents: events})
}

// TraceEvents renders the tracer's spans as complete ("X") events under
// the given pid: thread_name metadata per track in order of first
// appearance, then one event per span. Timestamps are the span's modeled
// microseconds shifted by tsOffsetUS, which lets a caller align a modeled
// trace under a wall-clock parent. rootArgs, when non-nil, is merged into
// the args of every root span (ParentID == 0) — the hook the serving
// layer uses to parent the partition trace under its lifecycle run span.
func TraceEvents(t *Tracer, pid int, tsOffsetUS float64, rootArgs map[string]any) []ChromeEvent {
	spans := t.Spans()
	events := []ChromeEvent{}

	tids := map[string]int{}
	for _, sp := range spans {
		if _, ok := tids[sp.Track]; !ok {
			tid := len(tids)
			tids[sp.Track] = tid
			events = append(events, ThreadNameEvent(pid, tid, sp.Track))
		}
	}

	for _, sp := range spans {
		args := map[string]any{"span": sp.ID, "parent": sp.ParentID}
		if sp.Aux {
			args["aux"] = true
		}
		for _, a := range sp.Attrs() {
			args[a.Key] = a.Value()
		}
		cat := "detail"
		if sp.ParentID == 0 {
			cat = "run"
			for k, v := range rootArgs {
				args[k] = v
			}
		}
		events = append(events, ChromeEvent{
			Name: sp.Name,
			Cat:  cat,
			Ph:   "X",
			Ts:   tsOffsetUS + sp.Start*1e6, // modeled seconds -> microseconds
			Dur:  sp.Dur() * 1e6,
			Pid:  pid,
			Tid:  tids[sp.Track],
			Args: args,
		})
	}
	return events
}

// WriteChromeTrace serializes the tracer's spans as a Chrome trace_event
// JSON document. Each span becomes one complete ("X") event; tracks
// become named threads of a single process. Open a written file in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	return WriteChromeJSON(w, TraceEvents(t, 1, 0, nil))
}
