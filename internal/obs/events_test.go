package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestEventRingEvictsOldest(t *testing.T) {
	r := NewEventRing(3)
	for i := 0; i < 5; i++ {
		r.Append(Event{Type: EvAdmit, Job: string(rune('a' + i))})
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("Snapshot holds %d events, want 3", len(got))
	}
	// Oldest first, sequence numbers stamped monotonically from 1.
	for i, e := range got {
		wantSeq := int64(3 + i)
		if e.Seq != wantSeq || e.Job != string(rune('a'+2+i)) {
			t.Errorf("event %d = seq %d job %q, want seq %d job %q",
				i, e.Seq, e.Job, wantSeq, string(rune('a'+2+i)))
		}
	}
}

func TestEventRingStampsTime(t *testing.T) {
	r := NewEventRing(4)
	before := time.Now()
	e := r.Append(Event{Type: EvDone})
	if e.Time.Before(before) {
		t.Errorf("Append did not stamp a zero Time: %v < %v", e.Time, before)
	}
	if lt := r.LastTime(); lt.IsZero() {
		t.Error("LastTime is zero after an append")
	}

	explicit := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	e = r.Append(Event{Type: EvFailed, Time: explicit})
	if !e.Time.Equal(explicit) {
		t.Errorf("Append overwrote an explicit Time: %v", e.Time)
	}
}

func TestEventRingDumpIsJSON(t *testing.T) {
	r := NewEventRing(2)
	r.Append(Event{Type: EvAdmit, Job: "j000001", Trace: "t1"})
	r.Append(Event{Type: EvDone, Job: "j000001", Trace: "t1"})
	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Total  int64   `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("dump is not JSON: %v\n%s", err, buf.String())
	}
	if doc.Total != 2 || len(doc.Events) != 2 || doc.Events[1].Type != EvDone {
		t.Errorf("dump = total %d, %d events", doc.Total, len(doc.Events))
	}
}

func TestEventRingNilSafe(t *testing.T) {
	var r *EventRing
	r.Append(Event{Type: EvAdmit})
	if r.Snapshot() != nil || r.Total() != 0 || !r.LastTime().IsZero() {
		t.Error("nil ring is not inert")
	}
	if err := r.Dump(&bytes.Buffer{}); err != nil {
		t.Errorf("nil ring Dump: %v", err)
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LogJSON, slog.LevelInfo)
	log.Info("job admitted", "job_id", "j000001")
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("json logger line is not JSON: %v\n%s", err, buf.String())
	}
	if line["job_id"] != "j000001" || line["msg"] != "job admitted" {
		t.Errorf("json line = %v", line)
	}

	buf.Reset()
	log = NewLogger(&buf, LogText, slog.LevelWarn)
	log.Info("suppressed at warn level")
	if buf.Len() != 0 {
		t.Errorf("info line emitted at warn level: %s", buf.String())
	}
	log.Warn("kept", "slot", 3)
	if !strings.Contains(buf.String(), "slot=3") {
		t.Errorf("text line lost attrs: %s", buf.String())
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"":        slog.LevelInfo,
		"debug":   slog.LevelDebug,
		"info":    slog.LevelInfo,
		"warn":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"error":   slog.LevelError,
		"ERROR":   slog.LevelError,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel accepted an unknown level")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := &Registry{}
	r.DeclareHistogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3} {
		r.Observe("lat", v)
	}
	h, ok := r.Histogram("lat")
	if !ok {
		t.Fatal("histogram missing")
	}
	// Buckets: (0,1]=1, (1,2]=2, (2,4]=1. p50 rank=2 lands at the end of
	// the (1,2] bucket's first half: 1 + (2-1)*(2-1)/2 = 1.5.
	if got := h.Quantile(0.5); got < 1.49 || got > 1.51 {
		t.Errorf("p50 = %v, want 1.5", got)
	}
	// p100 lands in the last finite bucket's end.
	if got := h.Quantile(1); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}

	// +Inf overflow clamps to the largest finite bound.
	r.Observe("lat", 100)
	h, _ = r.Histogram("lat")
	if got := h.Quantile(0.99); got != 4 {
		t.Errorf("p99 with overflow = %v, want clamp to 4", got)
	}

	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}
