package obs

import (
	"sync"

	"gpmetis/internal/perfmodel"
)

// TimelineSink connects a perfmodel.Timeline to the tracer: installed as
// the timeline's PhaseObserver, it mirrors every appended phase as one
// leaf span under a current parent span, so the sum of leaf durations
// reconciles exactly with the timeline total. Pipeline stages move the
// current parent with Begin/End to give the leaves their structure
// (run → level → kernel).
//
// The sink's offset shifts timeline-local timestamps into the enclosing
// run's modeled clock, which lets a sub-pipeline with a private timeline
// (the mt-metis CPU phase, the multi-GPU single-device stage) land at the
// right place in the merged trace.
//
// A nil *TimelineSink is the disabled sink: every method no-ops.
type TimelineSink struct {
	mu     sync.Mutex
	cur    *Span
	offset float64
}

// NewTimelineSink returns a sink emitting under parent, translating
// timeline-local times by offset. A nil parent yields a nil (disabled)
// sink, so callers can thread an unconditional sink through the pipeline.
func NewTimelineSink(parent *Span, offset float64) *TimelineSink {
	if parent == nil {
		return nil
	}
	return &TimelineSink{cur: parent, offset: offset}
}

// Parent returns the sink's current parent span.
func (s *TimelineSink) Parent() *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Metrics returns the registry of the tracer the sink emits into.
func (s *TimelineSink) Metrics() *Registry {
	return s.Parent().tracer().Metrics()
}

func (s *Span) tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.t
}

// PhaseSpan implements perfmodel.PhaseObserver: one leaf span per
// appended phase, tagged back into the timeline via the returned ID.
func (s *TimelineSink) PhaseSpan(name string, loc perfmodel.Location, start, seconds float64) int64 {
	sp := s.Leaf(name, start, seconds, Str("loc", loc.String()))
	if sp == nil {
		return 0
	}
	return sp.ID
}

// Leaf records one closed span of the given timeline-local start and
// duration under the current parent.
func (s *TimelineSink) Leaf(name string, start, seconds float64, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	parent := s.cur
	off := s.offset
	s.mu.Unlock()
	sp := parent.Child(name, off+start, attrs...)
	sp.EndAt(off + start + seconds)
	return sp
}

// Begin opens a structural span at timeline-local time start and makes it
// the sink's current parent: subsequent phases (and Leaf calls) nest
// under it until End.
func (s *TimelineSink) Begin(name string, start float64, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	parent := s.cur
	off := s.offset
	s.mu.Unlock()
	sp := parent.Child(name, off+start, attrs...)
	if sp != nil {
		s.mu.Lock()
		s.cur = sp
		s.mu.Unlock()
	}
	return sp
}

// End closes a span opened with Begin at timeline-local time end and
// restores its parent as the sink's current parent. Extra attributes
// (counters gathered while the span ran) are attached first.
func (s *TimelineSink) End(sp *Span, end float64, attrs ...Attr) {
	if s == nil || sp == nil {
		return
	}
	sp.Set(attrs...)
	s.mu.Lock()
	off := s.offset
	if s.cur == sp {
		s.cur = sp.parent
	}
	s.mu.Unlock()
	sp.EndAt(off + end)
}
