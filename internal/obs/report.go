package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// SpanAggregate is the per-name rollup of the flat metrics report.
type SpanAggregate struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	Seconds float64 `json:"seconds"`
}

// MetricsReport is the machine-readable flat export: registry counters,
// per-span-name time rollups, and the trace/timeline reconciliation pair.
type MetricsReport struct {
	// Counters is the metrics registry snapshot.
	Counters map[string]float64 `json:"counters,omitempty"`
	// Spans aggregates leaf span time by span name.
	Spans []SpanAggregate `json:"spans"`
	// TraceLeafSeconds is the sum of non-auxiliary leaf span durations;
	// it reconciles with the run's modeled seconds by construction.
	TraceLeafSeconds float64 `json:"trace_leaf_seconds"`
	// Extra carries caller-provided run facts (edge cut, modeled
	// seconds, conflict rate, ...).
	Extra map[string]any `json:"extra,omitempty"`
}

// BuildMetricsReport assembles the flat report from a tracer.
func BuildMetricsReport(t *Tracer, extra map[string]any) MetricsReport {
	rep := MetricsReport{
		Counters:         t.Metrics().Snapshot(),
		Spans:            []SpanAggregate{},
		TraceLeafSeconds: t.LeafSeconds(),
		Extra:            extra,
	}
	agg := map[string]*SpanAggregate{}
	for _, sp := range t.Spans() {
		if !sp.IsLeaf() || sp.Aux {
			continue
		}
		a, ok := agg[sp.Name]
		if !ok {
			a = &SpanAggregate{Name: sp.Name}
			agg[sp.Name] = a
		}
		a.Count++
		a.Seconds += sp.Dur()
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rep.Spans = append(rep.Spans, *agg[n])
	}
	return rep
}

// WriteMetricsJSON writes the flat metrics report as indented JSON.
func WriteMetricsJSON(w io.Writer, t *Tracer, extra map[string]any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(BuildMetricsReport(t, extra))
}

// WriteRegistryJSON writes a bare Registry snapshot — counters plus
// caller-provided gauges, merged with the counters winning no conflicts
// (extra overrides) — as indented JSON. Long-lived processes (the
// partition-serving daemon) use it for metrics endpoints that outlive any
// single run's tracer.
func WriteRegistryJSON(w io.Writer, r *Registry, extra map[string]float64) error {
	out := r.Snapshot()
	if out == nil {
		out = map[string]float64{}
	}
	for k, v := range extra {
		out[k] = v
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		Counters map[string]float64 `json:"counters"`
	}{out})
}

// Level-span naming convention shared by the pipeline instrumentation and
// the per-level report.
const (
	// SpanCoarsenLevel names one coarsening level span.
	SpanCoarsenLevel = "coarsen.level"
	// SpanUncoarsenLevel names one uncoarsening (projection+refinement)
	// level span.
	SpanUncoarsenLevel = "uncoarsen.level"
)

func (s *Span) intAttr(key string) (int64, bool) {
	a, ok := s.Attr(key)
	if !ok || a.Kind != KindInt {
		return 0, false
	}
	return a.IntV, true
}

func (s *Span) floatAttr(key string) (float64, bool) {
	a, ok := s.Attr(key)
	if !ok {
		return 0, false
	}
	switch a.Kind {
	case KindFloat:
		return a.FloatV, true
	case KindInt:
		return float64(a.IntV), true
	}
	return 0, false
}

func (s *Span) strAttr(key string) string {
	a, ok := s.Attr(key)
	if !ok || a.Kind != KindStr {
		return ""
	}
	return a.StrV
}

func fmtCount(v int64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

func fmtRatio(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

func fmtPct(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.2f", 100*v)
}

// LevelTable renders the human-readable per-level breakdown from the
// trace's coarsen.level / uncoarsen.level spans, in creation order:
// vertex and edge counts, the coarsening ratio, the lock-free matching
// conflict rate, refinement moves, and the level's modeled seconds.
func LevelTable(t *Tracer) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %3s %10s %10s %7s %9s %6s %8s %12s\n",
		"PHASE", "SIDE", "LVL", "VERTICES", "EDGES", "RATIO", "CONFLICTS", "RATE%", "MOVES", "SECONDS")
	for _, sp := range t.Spans() {
		var phase string
		switch sp.Name {
		case SpanCoarsenLevel:
			phase = "coarsen"
		case SpanUncoarsenLevel:
			phase = "uncoarsen"
		default:
			continue
		}
		lvl, _ := sp.intAttr("level")
		v, vok := sp.intAttr("vertices")
		e, eok := sp.intAttr("edges")
		ratio, rok := sp.floatAttr("ratio")
		confl, cok := sp.intAttr("conflicts")
		rate, rateok := sp.floatAttr("conflict_rate")
		moves, mok := sp.intAttr("moves")
		fmt.Fprintf(&b, "%-10s %-8s %3d %10s %10s %7s %9s %6s %8s %12.6f\n",
			phase, sp.strAttr("side"), lvl,
			fmtCount(v, vok), fmtCount(e, eok), fmtRatio(ratio, rok),
			fmtCount(confl, cok), fmtPct(rate, rateok), fmtCount(moves, mok),
			sp.Dur())
	}
	return b.String()
}
