package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured service logging. The daemon and the serving subsystem log
// through a single *slog.Logger built here: leveled, machine-parsable
// (text or JSON, one line per record), and correlated — every line about
// a job carries its job_id and trace_id attributes, so one job's whole
// lifecycle is a single grep. The modeled-clock tracer (obs.Tracer)
// answers "where did the modeled time go"; this logger answers "what did
// the service do, when, on the wall clock".

// Log formats accepted by NewLogger and the gpmetisd -log-format flag.
const (
	LogText = "text"
	LogJSON = "json"
)

// NewLogger builds a leveled structured logger writing to w. Format is
// LogText ("text", logfmt-style key=value) or LogJSON ("json", one JSON
// object per line). An unknown format falls back to text: a logger is
// the one subsystem that must never fail to construct.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch format {
	case LogJSON:
		h = slog.NewJSONHandler(w, opts)
	default:
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// DiscardLogger returns a logger that drops everything — the nil object
// for callers (tests, the chaos harness) that want a silent server.
func DiscardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

// ParseLogLevel maps the CLI spellings onto slog levels: debug, info,
// warn (or warning), and error, case-insensitively.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
	}
}

// ValidLogFormat reports whether s names a supported log format.
func ValidLogFormat(s string) bool { return s == LogText || s == LogJSON }
