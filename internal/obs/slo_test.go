package obs

import (
	"testing"
	"time"
)

// fakeClock is a settable clock for SLO window tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func (c *fakeClock) rewind(d time.Duration)  { c.t = c.t.Add(-d) }

func newTestSLO(fast, slow time.Duration) (*SLO, *fakeClock) {
	clk := &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
	s := NewSLO(SLOConfig{
		LatencyThreshold:   time.Second,
		LatencyTarget:      0.9, // 10% latency budget
		AvailabilityTarget: 0.9, // 10% availability budget
		FastWindow:         fast,
		SlowWindow:         slow,
		Now:                clk.now,
	})
	return s, clk
}

func TestSLOEmptyWindow(t *testing.T) {
	s, _ := newTestSLO(time.Minute, time.Hour)
	snap := s.Snapshot()
	if snap.Status != SLOOk {
		t.Errorf("empty SLO status = %q, want ok", snap.Status)
	}
	if snap.Fast.Jobs != 0 || snap.Slow.Jobs != 0 {
		t.Errorf("empty windows hold jobs: fast=%d slow=%d", snap.Fast.Jobs, snap.Slow.Jobs)
	}
	if snap.Fast.LatencyBurn != 0 || snap.Fast.AvailabilityBurn != 0 {
		t.Errorf("empty window burns: latency=%v availability=%v",
			snap.Fast.LatencyBurn, snap.Fast.AvailabilityBurn)
	}

	// A nil SLO evaluates like an empty one — instrumented code never
	// branches on whether SLOs are enabled.
	var nilSLO *SLO
	nilSLO.Record(time.Second, false)
	if got := nilSLO.Snapshot().Status; got != SLOOk {
		t.Errorf("nil SLO status = %q, want ok", got)
	}
}

// TestSLOExactBoundaryEviction pins the half-open window semantics: a
// sample exactly window-old is already outside it.
func TestSLOExactBoundaryEviction(t *testing.T) {
	s, clk := newTestSLO(time.Minute, time.Hour)
	s.Record(10*time.Millisecond, false)

	clk.advance(time.Hour - time.Nanosecond)
	if got := s.Snapshot().Slow.Jobs; got != 1 {
		t.Errorf("1ns before the boundary: slow window holds %d jobs, want 1", got)
	}

	clk.advance(time.Nanosecond) // age == SlowWindow exactly
	snap := s.Snapshot()
	if got := snap.Slow.Jobs; got != 0 {
		t.Errorf("exactly window-old sample still counted: slow window holds %d jobs", got)
	}
	if snap.TotalJobs != 1 {
		t.Errorf("eviction touched lifetime totals: TotalJobs = %d, want 1", snap.TotalJobs)
	}
}

// TestSLOBurnRates drives failures through the fast window only, then
// through both, checking the warn -> breach escalation and the burn
// arithmetic (error rate / error budget).
func TestSLOBurnRates(t *testing.T) {
	s, clk := newTestSLO(time.Minute, time.Hour)

	// 30 minutes ago: a healthy era. These land in the slow window only.
	for i := 0; i < 90; i++ {
		s.Record(10*time.Millisecond, false)
	}
	clk.advance(30 * time.Minute)

	// Now: a sharp regression. 5 failures + 5 successes land in both
	// windows.
	for i := 0; i < 5; i++ {
		s.Record(10*time.Millisecond, true)
		s.Record(10*time.Millisecond, false)
	}

	snap := s.Snapshot()
	// Fast window: 10 jobs, 5 failed -> error rate 0.5, budget 0.1, burn 5.
	if snap.Fast.Jobs != 10 || snap.Fast.Failed != 5 {
		t.Fatalf("fast window = %d jobs / %d failed, want 10/5", snap.Fast.Jobs, snap.Fast.Failed)
	}
	if got := snap.Fast.AvailabilityBurn; got < 4.99 || got > 5.01 {
		t.Errorf("fast availability burn = %v, want 5", got)
	}
	// Slow window: 100 jobs, 5 failed -> error rate 0.05, burn 0.5 <= 1.
	if got := snap.Slow.AvailabilityBurn; got < 0.49 || got > 0.51 {
		t.Errorf("slow availability burn = %v, want 0.5", got)
	}
	if snap.Status != SLOWarn {
		t.Errorf("fast-only burn status = %q, want warn", snap.Status)
	}

	// Keep failing until the slow window burns too: breach.
	for i := 0; i < 20; i++ {
		s.Record(10*time.Millisecond, true)
	}
	snap = s.Snapshot()
	if snap.Status != SLOBreach {
		t.Errorf("two-window burn status = %q (slow burn %v), want breach",
			snap.Status, snap.Slow.AvailabilityBurn)
	}
}

// TestSLOLatencyBurnCompletedOnly checks that the latency objective is
// computed over completed jobs only — failures consume the availability
// budget, not the latency budget.
func TestSLOLatencyBurnCompletedOnly(t *testing.T) {
	s, _ := newTestSLO(time.Minute, time.Hour)
	// 8 fast completions, 2 slow completions, 10 failures.
	for i := 0; i < 8; i++ {
		s.Record(10*time.Millisecond, false)
	}
	for i := 0; i < 2; i++ {
		s.Record(3*time.Second, false) // over the 1s threshold
	}
	for i := 0; i < 10; i++ {
		s.Record(10*time.Millisecond, true)
	}
	snap := s.Snapshot()
	if snap.Fast.LatencyViolations != 2 {
		t.Fatalf("latency violations = %d, want 2", snap.Fast.LatencyViolations)
	}
	// Violation rate over completions: 2/10 = 0.2; budget 0.1 -> burn 2.
	if got := snap.Fast.LatencyBurn; got < 1.99 || got > 2.01 {
		t.Errorf("latency burn = %v, want 2 (violations over completed jobs only)", got)
	}
}

// TestSLOClockStall simulates a wall clock that stalls and then steps
// backwards: samples must never age negatively, and evaluation must not
// panic or evict the future-stamped samples.
func TestSLOClockStall(t *testing.T) {
	s, clk := newTestSLO(time.Minute, time.Hour)
	s.Record(10*time.Millisecond, false)

	// Stall: many evaluations at the same instant stay stable.
	for i := 0; i < 3; i++ {
		if got := s.Snapshot().Fast.Jobs; got != 1 {
			t.Fatalf("stalled clock evaluation %d: fast jobs = %d, want 1", i, got)
		}
	}

	// The clock steps backwards past the sample's stamp: the sample is
	// now "from the future". Its age clamps to zero — still in-window.
	clk.rewind(10 * time.Minute)
	snap := s.Snapshot()
	if got := snap.Fast.Jobs; got != 1 {
		t.Errorf("backwards clock: fast jobs = %d, want 1 (age clamps to 0)", got)
	}

	// Once the clock recovers and moves past the slow window, the sample
	// finally evicts.
	clk.advance(10*time.Minute + time.Hour)
	if got := s.Snapshot().Slow.Jobs; got != 0 {
		t.Errorf("recovered clock: slow jobs = %d, want 0", got)
	}
}

func TestSLOStatusValue(t *testing.T) {
	for status, want := range map[string]float64{SLOOk: 0, SLOWarn: 1, SLOBreach: 2, "junk": 0} {
		if got := StatusValue(status); got != want {
			t.Errorf("StatusValue(%q) = %v, want %v", status, got, want)
		}
	}
}
