package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"time"
)

// NewTraceID mints a 128-bit random trace id rendered as 32 lowercase
// hex characters. Randomness comes from crypto/rand so ids stay unique
// across nodes and restarts — the old time-derived scheme collided when
// two nodes assigned ids in the same tick. If the system entropy pool
// fails (it effectively never does on the platforms we run on), the
// fallback mixes the clock so the id is still usable, just weaker.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		now := uint64(time.Now().UnixNano())
		binary.BigEndian.PutUint64(b[:8], now)
		binary.BigEndian.PutUint64(b[8:], now^0x9e3779b97f4a7c15)
	}
	return hex.EncodeToString(b[:])
}

// TraceHeader is the internode trace-context header, the ring's
// equivalent of W3C traceparent. Every RPC a node makes to a peer —
// job forward, cache peek, replica PUT, hint drain, anti-entropy
// summary, health probe, membership announce, status fan-out — carries
// it, so cross-node causality is reconstructible from either side.
const TraceHeader = "X-Gpmetis-Trace"

// TraceContext is the decoded form of the header: which trace the RPC
// belongs to, the caller-side span that issued it (0 = no span), and
// the caller's wall clock at send time. The wall stamp is what lets
// the receiver — and later the stitcher — align two nodes' clocks
// without assuming they agree.
type TraceContext struct {
	TraceID      string
	SpanID       int64
	WallUnixNano int64
}

// EncodeTraceContext renders the context in the traceparent idiom:
//
//	00-<trace_id>-<span_id:hex16>-<wall_unix_nano:hex16>
//
// The leading 00 is a version byte for forward compatibility. TraceID
// is carried verbatim (ours are 32-hex, but recovered- prefixed ids
// survive too: the format is dash-delimited from the right).
func EncodeTraceContext(tc TraceContext) string {
	return fmt.Sprintf("00-%s-%016x-%016x", tc.TraceID, uint64(tc.SpanID), uint64(tc.WallUnixNano))
}

// ParseTraceContext decodes a header value. It is tolerant: the trace
// id may itself contain dashes (recovered- ids do), so the span and
// wall fields are taken from the right. A malformed value returns
// ok=false rather than an error — tracing is best-effort and must
// never fail an RPC.
func ParseTraceContext(s string) (TraceContext, bool) {
	parts := strings.Split(s, "-")
	if len(parts) < 4 || parts[0] != "00" {
		return TraceContext{}, false
	}
	wallHex := parts[len(parts)-1]
	spanHex := parts[len(parts)-2]
	traceID := strings.Join(parts[1:len(parts)-2], "-")
	if traceID == "" {
		return TraceContext{}, false
	}
	span, err := parseHex64(spanHex)
	if err != nil {
		return TraceContext{}, false
	}
	wall, err := parseHex64(wallHex)
	if err != nil {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: traceID, SpanID: span, WallUnixNano: wall}, true
}

func parseHex64(s string) (int64, error) {
	if len(s) == 0 || len(s) > 16 {
		return 0, fmt.Errorf("obs: bad hex64 %q", s)
	}
	var v uint64
	for _, c := range s {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("obs: bad hex64 %q", s)
		}
		v = v<<4 | d
	}
	return int64(v), nil
}
