package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair. Order is preserved as given.
type Label struct {
	Key, Value string
}

// PromSample is one extra exposition sample — a value the caller derives
// outside the registry (build info, per-slot gauges, cache state) that
// should still appear on the scrape. Samples sharing a Name are grouped
// under one # TYPE line.
type PromSample struct {
	Name   string
	Labels []Label
	Value  float64
	// Help, when non-empty on the first sample of a name, emits a # HELP
	// line for the group.
	Help string
}

// PromHistogram is one extra labeled histogram — a distribution the
// caller maintains outside the registry (per-peer RPC latency, say)
// that should still render in cumulative le-bucket form. Counts holds
// one per-bucket (non-cumulative) count per bound plus a final
// overflow bucket, exactly like HistogramSnapshot. Histograms sharing
// a Name are grouped under one # TYPE line, with Help taken from the
// first of the group; the le label is appended after the caller's
// labels on every bucket line.
type PromHistogram struct {
	Name   string
	Labels []Label
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
	Help   string
}

// WritePrometheus renders the registry — every counter as an untimestamped
// gauge, every histogram in cumulative le-bucket form — plus the extra
// samples, in the Prometheus text exposition format (version 0.0.4).
// Metric names get the ns prefix ("gpmetisd_") and are sanitized to the
// legal charset; output order is deterministic: counters sorted by name,
// then histograms sorted by name, then extras in the given order.
func WritePrometheus(w io.Writer, r *Registry, ns string, extra []PromSample) error {
	return WritePrometheusFull(w, r, ns, extra, nil)
}

// WritePrometheusFull is WritePrometheus plus extra labeled histograms,
// rendered after the registry's own histograms and before the extra
// samples.
func WritePrometheusFull(w io.Writer, r *Registry, ns string, extra []PromSample, hists []PromHistogram) error {
	var b strings.Builder
	for _, name := range r.Names() {
		mn := sanitizeMetricName(ns + name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", mn)
		fmt.Fprintf(&b, "%s %s\n", mn, formatPromValue(r.Get(name)))
	}
	for _, name := range r.HistogramNames() {
		h, ok := r.Histogram(name)
		if !ok {
			continue
		}
		mn := sanitizeMetricName(ns + name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", mn)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", mn, formatPromValue(bound), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", mn, cum)
		fmt.Fprintf(&b, "%s_sum %s\n", mn, formatPromValue(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", mn, h.Count)
	}
	lastHist := ""
	for _, h := range hists {
		mn := sanitizeMetricName(ns + h.Name)
		if mn != lastHist {
			if h.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", mn, escapeHelp(h.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s histogram\n", mn)
			lastHist = mn
		}
		var cum uint64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", mn, labelPrefix(h.Labels), formatPromValue(bound), cum)
		}
		if len(h.Counts) > len(h.Bounds) {
			cum += h.Counts[len(h.Bounds)]
		}
		fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %d\n", mn, labelPrefix(h.Labels), cum)
		fmt.Fprintf(&b, "%s_sum%s %s\n", mn, labelBlock(h.Labels), formatPromValue(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", mn, labelBlock(h.Labels), h.Count)
	}
	lastName := ""
	for _, s := range extra {
		mn := sanitizeMetricName(ns + s.Name)
		if mn != lastName {
			if s.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", mn, escapeHelp(s.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s gauge\n", mn)
			lastName = mn
		}
		b.WriteString(mn)
		if len(s.Labels) > 0 {
			b.WriteByte('{')
			for i, l := range s.Labels {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%s=\"%s\"", sanitizeLabelName(l.Key), escapeLabelValue(l.Value))
			}
			b.WriteByte('}')
		}
		fmt.Fprintf(&b, " %s\n", formatPromValue(s.Value))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelPrefix renders "k1=\"v1\",k2=\"v2\"," — caller labels followed by a
// trailing comma, ready to precede the le label inside a bucket's braces.
// Empty labels render as "".
func labelPrefix(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		fmt.Fprintf(&b, "%s=\"%s\",", sanitizeLabelName(l.Key), escapeLabelValue(l.Value))
	}
	return b.String()
}

// labelBlock renders "{k1=\"v1\",k2=\"v2\"}" or "" when there are no labels —
// the label set for _sum and _count lines.
func labelBlock(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", sanitizeLabelName(l.Key), escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// formatPromValue renders a float the way Prometheus clients do: shortest
// round-trip decimal, with the special values spelled +Inf/-Inf/NaN.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeMetricName maps a dotted registry name onto the metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every illegal rune with
// '_' ("queue.wait_seconds" -> "queue_wait_seconds").
func sanitizeMetricName(s string) string {
	return sanitizeName(s, true)
}

// sanitizeLabelName maps onto [a-zA-Z_][a-zA-Z0-9_]* (no colons).
func sanitizeLabelName(s string) string {
	return sanitizeName(s, false)
}

func sanitizeName(s string, colons bool) string {
	if s == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (colons && c == ':') ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			if b == nil {
				b = []byte(s)
			}
			b[i] = '_'
		}
	}
	if b != nil {
		return string(b)
	}
	return s
}

// escapeLabelValue applies the exposition-format label escapes: backslash,
// double quote, and line feed.
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes HELP text (backslash and line feed only; quotes are
// legal there).
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
