package obs

import (
	"sync"
	"time"
)

// SpanRecord is one wall-clock span as stored and shipped between
// nodes: a span id unique within its trace, a name, start/end stamps
// in Unix nanoseconds (the owning node's clock — the stitcher aligns
// clocks, the store does not), and free-form attributes.
type SpanRecord struct {
	Span          int64          `json:"span"`
	Parent        int64          `json:"parent,omitempty"`
	Name          string         `json:"name"`
	StartUnixNano int64          `json:"start_unix_nano"`
	EndUnixNano   int64          `json:"end_unix_nano"`
	Attrs         map[string]any `json:"attrs,omitempty"`
}

// StoredTrace is the per-trace unit of the span store: every span a
// node recorded under one trace id, typically one background round
// (a replication push, a hint drain, an anti-entropy exchange).
type StoredTrace struct {
	TraceID string       `json:"trace_id"`
	Spans   []SpanRecord `json:"spans"`
	stored  time.Time
}

// SpanStore is a bounded per-node store of background-traffic traces,
// keyed by trace id. Job traces are NOT kept here — jobs carry their
// own lifecycle spans and are bounded by the server's job retention —
// so the store only holds cluster housekeeping rounds. When the cap is
// reached the oldest trace is evicted FIFO; observability of ancient
// repair rounds is not worth unbounded memory.
type SpanStore struct {
	mu     sync.Mutex
	cap    int
	traces map[string]*StoredTrace
	order  []string // insertion order, for FIFO eviction
}

// DefaultSpanStoreCap bounds how many distinct background traces a
// node retains. Rounds are minutes apart, so 256 covers hours of
// history at a few KB per trace.
const DefaultSpanStoreCap = 256

// NewSpanStore returns a store bounded to cap traces (<=0 means the
// default cap).
func NewSpanStore(cap int) *SpanStore {
	if cap <= 0 {
		cap = DefaultSpanStoreCap
	}
	return &SpanStore{cap: cap, traces: make(map[string]*StoredTrace)}
}

// Append records spans under traceID, creating the trace if new and
// evicting the oldest trace when the cap is exceeded.
func (s *SpanStore) Append(traceID string, spans ...SpanRecord) {
	if traceID == "" || len(spans) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.traces[traceID]
	if !ok {
		for len(s.order) >= s.cap {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.traces, oldest)
		}
		t = &StoredTrace{TraceID: traceID, stored: time.Now()}
		s.traces[traceID] = t
		s.order = append(s.order, traceID)
	}
	t.Spans = append(t.Spans, spans...)
}

// Get returns a copy of the trace's spans, or ok=false if the trace
// is unknown (never stored, or already evicted).
func (s *SpanStore) Get(traceID string) (StoredTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.traces[traceID]
	if !ok {
		return StoredTrace{}, false
	}
	out := StoredTrace{TraceID: t.TraceID, Spans: make([]SpanRecord, len(t.Spans))}
	copy(out.Spans, t.Spans)
	return out, true
}

// Len reports how many traces the store currently holds.
func (s *SpanStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}
