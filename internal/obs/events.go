package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Lifecycle event types recorded by the serving subsystem. They mirror
// the admission → queue → schedule → run → journal path of one job plus
// the server-scoped transitions an operator reconstructs an incident
// from (drain, quarantine, journal degradation).
const (
	EvAdmit         = "admit"
	EvCacheHit      = "cache_hit"
	EvCoalesced     = "coalesced"
	EvScheduled     = "scheduled"
	EvRunStart      = "run_start"
	EvDone          = "done"
	EvFailed        = "failed"
	EvCanceled      = "canceled"
	EvJournalAppend = "journal_append"
	EvRejected      = "rejected"
	EvDrainBegin    = "drain_begin"
	EvDrainEnd      = "drain_end"
	EvQuarantine    = "quarantine"
	EvReinstate     = "reinstate"
	EvRecovered     = "recovered"
	// Overload-control events: the brownout ladder engaging (level > 0)
	// and fully disengaging, a queued job shed by the ladder, and a queued
	// job whose deadline expired eagerly before any worker popped it.
	EvBrownoutBegin = "brownout_begin"
	EvBrownoutEnd   = "brownout_end"
	EvShed          = "shed"
	EvQueueExpired  = "queue_expired"
	// Cluster-tier events: a submission forwarded to its ring owner, a
	// cross-node cache peek answered remotely, an owner failure routed to
	// a ring successor, and peer health transitions as seen by this node.
	EvClusterForward  = "cluster_forward"
	EvClusterPeekHit  = "cluster_peek_hit"
	EvClusterFailover = "cluster_failover"
	EvNodeDown        = "node_down"
	EvNodeUp          = "node_up"
	// Replication-tier events: a result pushed to a ring replica, a
	// failover read answered from a replica instead of recomputed, a
	// handoff hint recorded against a quarantined replica and later
	// drained, an anti-entropy repair transfer, and membership changes
	// (decommission, leave/join announcements, a peers.json reload).
	EvClusterReplicate    = "cluster_replicate"
	EvClusterReplicaHit   = "cluster_replica_hit"
	EvClusterHint         = "cluster_hint"
	EvClusterHintDrained  = "cluster_hint_drained"
	EvClusterRepair       = "cluster_repair"
	EvClusterDecommission = "cluster_decommission"
	EvClusterMembership   = "cluster_membership"
)

// Event is one lifecycle record in the flight recorder: what happened,
// to which job, when (wall clock), and a short free-form detail. Seq is
// assigned by the ring and is strictly increasing for the life of the
// process, so gaps in a dump reveal how much history the ring evicted.
type Event struct {
	Seq    int64     `json:"seq"`
	Time   time.Time `json:"time"`
	Type   string    `json:"type"`
	Job    string    `json:"job_id,omitempty"`
	Trace  string    `json:"trace_id,omitempty"`
	Node   string    `json:"node_id,omitempty"`
	Slot   int       `json:"slot,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// EventRing is the flight recorder: a fixed-size ring of the most recent
// lifecycle events, cheap enough to run always and queryable after the
// fact (GET /admin/events, the SIGQUIT dump). All methods are safe for
// concurrent use and no-ops on a nil receiver.
type EventRing struct {
	mu    sync.Mutex
	buf   []Event
	total int64 // events ever appended; Seq source
	last  time.Time
}

// NewEventRing returns a recorder retaining the last capacity events
// (minimum 1).
func NewEventRing(capacity int) *EventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &EventRing{buf: make([]Event, 0, capacity)}
}

// Append stamps e with the next sequence number and the current time
// (when unset) and records it, evicting the oldest event when full. The
// stamped event is returned.
func (r *EventRing) Append(e Event) Event {
	if r == nil {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	e.Seq = r.total
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r.last = e.Time
	if len(r.buf) == cap(r.buf) {
		copy(r.buf, r.buf[1:])
		r.buf[len(r.buf)-1] = e
	} else {
		r.buf = append(r.buf, e)
	}
	return e
}

// Snapshot returns the retained events, oldest first.
func (r *EventRing) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.buf...)
}

// Total returns how many events were ever appended (≥ len(Snapshot())).
func (r *EventRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// LastTime returns the wall time of the most recent event (zero when the
// ring is empty), the liveness signal /healthz reports.
func (r *EventRing) LastTime() time.Time {
	if r == nil {
		return time.Time{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// Dump writes the retained events as indented JSON — the post-mortem
// artifact the daemon emits on SIGQUIT.
func (r *EventRing) Dump(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		Total  int64   `json:"total"`
		Events []Event `json:"events"`
	}{Total: r.Total(), Events: r.Snapshot()})
}
