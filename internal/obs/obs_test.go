package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"gpmetis/internal/perfmodel"
)

func TestSpanNesting(t *testing.T) {
	tr := New()
	root := tr.Root("run", "host", 0)
	lvl := root.Child("level", 0.5)
	kern := lvl.Child("kernel", 0.5)
	kern.EndAt(0.7)
	lvl.EndAt(0.9)
	root.EndAt(1.0)

	if root.ParentID != 0 {
		t.Errorf("root ParentID = %d, want 0", root.ParentID)
	}
	if lvl.ParentID != root.ID {
		t.Errorf("level ParentID = %d, want root's %d", lvl.ParentID, root.ID)
	}
	if kern.ParentID != lvl.ID {
		t.Errorf("kernel ParentID = %d, want level's %d", kern.ParentID, lvl.ID)
	}
	if kern.Parent() != lvl || lvl.Parent() != root || root.Parent() != nil {
		t.Error("Parent() chain does not match construction order")
	}
	if kern.Track != "host" {
		t.Errorf("child Track = %q, want inherited %q", kern.Track, "host")
	}
	if root.IsLeaf() || lvl.IsLeaf() || !kern.IsLeaf() {
		t.Error("leaf detection wrong: only the innermost span is a leaf")
	}
	if got := len(tr.Spans()); got != 3 {
		t.Errorf("Spans() = %d spans, want 3", got)
	}
	if d := kern.Dur(); math.Abs(d-0.2) > 1e-12 {
		t.Errorf("kernel Dur = %g, want 0.2", d)
	}
}

func TestAttrRoundTrip(t *testing.T) {
	tr := New()
	sp := tr.Root("run", "host", 0,
		Int("vertices", 42),
		Float("ratio", 0.55),
		Str("side", "gpu"),
		Bool("stalled", true))
	sp.Set(Int("vertices", 43)) // last write wins

	cases := []struct {
		key  string
		want any
	}{
		{"vertices", int64(43)},
		{"ratio", 0.55},
		{"side", "gpu"},
		{"stalled", true},
	}
	for _, c := range cases {
		a, ok := sp.Attr(c.key)
		if !ok {
			t.Errorf("Attr(%q) missing", c.key)
			continue
		}
		if a.Value() != c.want {
			t.Errorf("Attr(%q) = %v (%T), want %v (%T)", c.key, a.Value(), a.Value(), c.want, c.want)
		}
	}
	if _, ok := sp.Attr("absent"); ok {
		t.Error("Attr on an absent key reported ok")
	}
	if got := len(sp.Attrs()); got != 5 {
		t.Errorf("Attrs() = %d entries, want 5 (append semantics)", got)
	}
}

func TestChromeTraceSchema(t *testing.T) {
	tr := New()
	root := tr.Root("run", "host", 0, Int("k", 8))
	dev := root.ChildTrack("gpu0", "device", 0).MarkAux()
	k := dev.Child("kernel", 0.1)
	k.EndAt(0.2)
	dev.EndAt(0.3)
	leaf := root.Child("phase", 0.3)
	leaf.EndAt(1.0)
	root.EndAt(1.0)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("displayTimeUnit missing")
	}
	var xEvents, mEvents int
	tids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			xEvents++
			if e.Ts == nil || e.Dur == nil || e.Pid == nil || e.Tid == nil {
				t.Fatalf("complete event %q missing ts/dur/pid/tid", e.Name)
			}
			if *e.Dur < 0 {
				t.Errorf("event %q has negative dur %g", e.Name, *e.Dur)
			}
			tids[*e.Tid] = true
		case "M":
			mEvents++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if xEvents != 4 {
		t.Errorf("got %d complete events, want 4", xEvents)
	}
	if mEvents != 2 {
		t.Errorf("got %d metadata events, want 2 (one per track)", mEvents)
	}
	if len(tids) != 2 {
		t.Errorf("got %d distinct tids, want 2 (host + gpu0)", len(tids))
	}
	// The modeled clock is exported in microseconds.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "phase" {
			if math.Abs(*e.Ts-0.3e6) > 1e-6 || math.Abs(*e.Dur-0.7e6) > 1e-6 {
				t.Errorf("phase ts/dur = %g/%g us, want 3e5/7e5", *e.Ts, *e.Dur)
			}
		}
	}
}

func TestLeafSecondsExcludesAux(t *testing.T) {
	tr := New()
	root := tr.Root("run", "host", 0)
	a := root.Child("a", 0)
	a.EndAt(0.25)
	b := root.Child("b", 0.25)
	b.EndAt(1.0)
	aux := root.ChildTrack("gpu0", "detail", 0).MarkAux()
	auxChild := aux.Child("kernel", 0)
	auxChild.EndAt(5.0) // must not count: Aux is inherited
	aux.EndAt(5.0)
	root.EndAt(1.0)

	if got := tr.LeafSeconds(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("LeafSeconds = %g, want 1.0 (aux excluded)", got)
	}
}

func TestTimelineSinkReconciles(t *testing.T) {
	tr := New()
	root := tr.Root("run", "host", 0)
	sink := NewTimelineSink(root, 0)
	var tl perfmodel.Timeline
	tl.Observe(sink)

	tl.Append("p0", perfmodel.LocCPU, 0.5)
	lvl := sink.Begin("level", tl.Total())
	tl.Append("p1", perfmodel.LocGPU, 0.25)
	tl.Append("p2", perfmodel.LocPCIe, 0.25)
	sink.End(lvl, tl.Total())
	root.EndAt(tl.Total())

	if got, want := tr.LeafSeconds(), tl.Total(); math.Abs(got-want) > 1e-12 {
		t.Errorf("LeafSeconds = %g, timeline total = %g", got, want)
	}
	// The Begin/End structure nests the observed phases.
	var p1 *Span
	for _, sp := range tr.Spans() {
		if sp.Name == "p1" {
			p1 = sp
		}
	}
	if p1 == nil || p1.Parent() != lvl {
		t.Error("phase appended inside Begin/End is not a child of the structural span")
	}
	if loc := p1.strAttr("loc"); loc != "GPU" {
		t.Errorf("phase loc attr = %q, want GPU", loc)
	}
}

func TestRegistry(t *testing.T) {
	tr := New()
	met := tr.Metrics()
	met.Add("x", 1)
	met.Add("x", 2)
	met.Set("y", 7)
	if got := met.Get("x"); got != 3 {
		t.Errorf("Get(x) = %g, want 3", got)
	}
	snap := met.Snapshot()
	if snap["x"] != 3 || snap["y"] != 7 {
		t.Errorf("Snapshot = %v, want x:3 y:7", snap)
	}
	met.Add("x", 1)
	if snap["x"] != 3 {
		t.Error("Snapshot is not a copy")
	}
}

func TestLevelTable(t *testing.T) {
	tr := New()
	root := tr.Root("run", "host", 0)
	sink := NewTimelineSink(root, 0)
	lvl := sink.Begin(SpanCoarsenLevel, 0,
		Str("side", "gpu"), Int("level", 0), Int("vertices", 100), Int("edges", 300))
	sink.End(lvl, 0.5,
		Float("ratio", 0.55), Int("conflicts", 9), Float("conflict_rate", 0.09))
	u := sink.Begin(SpanUncoarsenLevel, 0.5,
		Str("side", "gpu"), Int("level", 0), Int("vertices", 100), Int("edges", 300))
	sink.End(u, 1.0, Int("moves", 12))
	root.EndAt(1.0)

	table := LevelTable(tr)
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want header + 2 rows:\n%s", len(lines), table)
	}
	if !strings.Contains(lines[1], "coarsen") || !strings.Contains(lines[1], "0.550") {
		t.Errorf("coarsen row malformed: %q", lines[1])
	}
	if !strings.Contains(lines[2], "uncoarsen") || !strings.Contains(lines[2], "12") {
		t.Errorf("uncoarsen row malformed: %q", lines[2])
	}
}

func TestMetricsReport(t *testing.T) {
	tr := New()
	root := tr.Root("run", "host", 0)
	a := root.Child("kern", 0)
	a.EndAt(0.25)
	b := root.Child("kern", 0.25)
	b.EndAt(0.75)
	root.EndAt(0.75)
	tr.Metrics().Add("c", 4)

	rep := BuildMetricsReport(tr, map[string]any{"edge_cut": 7})
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "kern" || rep.Spans[0].Count != 2 {
		t.Errorf("span aggregate = %+v, want one kern entry with count 2", rep.Spans)
	}
	if math.Abs(rep.Spans[0].Seconds-0.75) > 1e-12 {
		t.Errorf("kern seconds = %g, want 0.75", rep.Spans[0].Seconds)
	}
	if rep.Counters["c"] != 4 {
		t.Errorf("counter c = %g, want 4", rep.Counters["c"])
	}
	if rep.Extra["edge_cut"] != 7 {
		t.Errorf("extra = %v", rep.Extra)
	}
}

// TestDisabledNoAlloc pins the disabled-mode contract: with tracing off
// (nil tracer, nil spans, nil sink, nil registry) the hooks allocate
// nothing, so the hot kernel paths pay only pointer checks.
func TestDisabledNoAlloc(t *testing.T) {
	var tr *Tracer
	var tl perfmodel.Timeline
	allocs := testing.AllocsPerRun(100, func() {
		if tr.Enabled() {
			t.Fatal("nil tracer claims enabled")
		}
		root := tr.Root("run", "host", 0, Int("k", 8))
		sp := root.Child("x", 0)
		sp.Set(Int("a", 1))
		sp.MarkAux()
		sp.EndAt(1)
		sink := NewTimelineSink(root, 0)
		sink.Leaf("l", 0, 1)
		lv := sink.Begin("b", 0)
		sink.End(lv, 1)
		tr.Metrics().Add("c", 1)
		tr.Metrics().Set("c", 1)
		tl.Append("p", perfmodel.LocCPU, 0.1)
		_ = tr.LeafSeconds()
		_ = tr.Spans()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f times per run, want 0", allocs)
	}
}
