package obs

import (
	"strconv"
	"strings"
	"testing"
)

// scrapeFull renders registry + extras + labeled histograms.
func scrapeFull(t *testing.T, r *Registry, extra []PromSample, hists []PromHistogram) string {
	t.Helper()
	var b strings.Builder
	if err := WritePrometheusFull(&b, r, "test_", extra, hists); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestLabeledHistogramExposition(t *testing.T) {
	h := PromHistogram{
		Name:   "cluster.rpc_seconds",
		Labels: []Label{{Key: "peer", Value: "1"}, {Key: "rpc", Value: "forward"}},
		Bounds: []float64{0.001, 0.01, 0.1},
		Counts: []uint64{2, 3, 0, 1}, // last cell is the overflow bucket
		Sum:    0.1234,
		Count:  6,
		Help:   "Wall seconds per RPC.",
	}
	text := scrapeFull(t, &Registry{}, nil, []PromHistogram{h})

	for _, want := range []string{
		"# HELP test_cluster_rpc_seconds Wall seconds per RPC.",
		"# TYPE test_cluster_rpc_seconds histogram",
		`test_cluster_rpc_seconds_bucket{peer="1",rpc="forward",le="0.001"} 2`,
		`test_cluster_rpc_seconds_bucket{peer="1",rpc="forward",le="0.01"} 5`,
		`test_cluster_rpc_seconds_bucket{peer="1",rpc="forward",le="0.1"} 5`,
		`test_cluster_rpc_seconds_bucket{peer="1",rpc="forward",le="+Inf"} 6`,
		`test_cluster_rpc_seconds_sum{peer="1",rpc="forward"} 0.1234`,
		`test_cluster_rpc_seconds_count{peer="1",rpc="forward"} 6`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition is missing %q\n%s", want, text)
		}
	}
}

// Bucket counts on the wire must be cumulative and non-decreasing with
// +Inf equal to the total count — the invariant Prometheus clients
// assume when computing quantiles.
func TestLabeledHistogramBucketMonotonicity(t *testing.T) {
	h := PromHistogram{
		Name:   "lat.seconds",
		Labels: []Label{{Key: "rpc", Value: "peek"}},
		Bounds: []float64{0.5, 1, 2.5, 5},
		Counts: []uint64{4, 0, 7, 2, 3},
		Sum:    20,
		Count:  16,
	}
	text := scrapeFull(t, &Registry{}, nil, []PromHistogram{h})
	prev := int64(-1)
	var last int64
	buckets := 0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "test_lat_seconds_bucket{") {
			continue
		}
		buckets++
		v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts decrease: %d after %d in %q", v, prev, line)
		}
		prev, last = v, v
	}
	if buckets != len(h.Bounds)+1 {
		t.Fatalf("rendered %d bucket lines, want %d (bounds + +Inf)", buckets, len(h.Bounds)+1)
	}
	if last != int64(h.Count) {
		t.Errorf("+Inf bucket is %d, want the total count %d", last, h.Count)
	}
}

// Label values with quotes, backslashes, and newlines must be escaped
// per the exposition format on bucket, sum, and count lines alike.
func TestLabeledHistogramLabelEscaping(t *testing.T) {
	h := PromHistogram{
		Name:   "esc.seconds",
		Labels: []Label{{Key: "peer", Value: "a\"b\\c\nd"}},
		Bounds: []float64{1},
		Counts: []uint64{1, 0},
		Sum:    0.5,
		Count:  1,
	}
	text := scrapeFull(t, &Registry{}, nil, []PromHistogram{h})
	escaped := `peer="a\"b\\c\nd"`
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		found := false
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "test_esc_seconds"+suffix) && strings.Contains(line, escaped) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s line lacks the escaped label %s\n%s", suffix, escaped, text)
		}
	}
	if strings.Contains(text, "a\"b") {
		t.Error("raw unescaped quote leaked into the exposition")
	}
}

// Two histograms sharing a name must emit HELP/TYPE once, like labeled
// series of one metric family.
func TestLabeledHistogramFamilyHeaderOnce(t *testing.T) {
	mk := func(peer string) PromHistogram {
		return PromHistogram{
			Name:   "fam.seconds",
			Labels: []Label{{Key: "peer", Value: peer}},
			Bounds: []float64{1},
			Counts: []uint64{1, 0},
			Sum:    1,
			Count:  1,
			Help:   "Family help.",
		}
	}
	text := scrapeFull(t, &Registry{}, nil, []PromHistogram{mk("0"), mk("1")})
	if n := strings.Count(text, "# TYPE test_fam_seconds histogram"); n != 1 {
		t.Errorf("TYPE header rendered %d times, want 1\n%s", n, text)
	}
	if n := strings.Count(text, `peer="1"`); n != 4 {
		t.Errorf("second family member rendered %d lines, want 4 (2 buckets + sum + count)", n)
	}
}
