package obs

import (
	"strings"
	"testing"
)

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool, 1000)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 32 {
			t.Fatalf("trace id %q has length %d, want 32 hex chars (128 bits)", id, len(id))
		}
		if strings.Trim(id, "0123456789abcdef") != "" {
			t.Fatalf("trace id %q is not lowercase hex", id)
		}
		if seen[id] {
			t.Fatalf("trace id %q repeated within 1000 draws", id)
		}
		seen[id] = true
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: 2_000_042, WallUnixNano: 1754640000123456789}
	got, ok := ParseTraceContext(EncodeTraceContext(tc))
	if !ok {
		t.Fatalf("round trip failed to parse %q", EncodeTraceContext(tc))
	}
	if got != tc {
		t.Errorf("round trip: got %+v, want %+v", got, tc)
	}
}

// Recovered jobs carry a "recovered-" prefix with a dash inside the
// trace id; the parser anchors on the right so such ids survive.
func TestTraceContextDashedTraceID(t *testing.T) {
	tc := TraceContext{TraceID: "recovered-" + NewTraceID(), SpanID: 7, WallUnixNano: 99}
	got, ok := ParseTraceContext(EncodeTraceContext(tc))
	if !ok || got.TraceID != tc.TraceID {
		t.Fatalf("dashed trace id did not survive the header: ok=%v got=%q want=%q",
			ok, got.TraceID, tc.TraceID)
	}
}

func TestParseTraceContextRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"", "00", "00-abc", "01-abc-0000000000000001-0000000000000002",
		"00-abc-zzzz-0000000000000002", "junk",
	} {
		if _, ok := ParseTraceContext(s); ok {
			t.Errorf("ParseTraceContext(%q) accepted garbage", s)
		}
	}
}

func TestSpanStoreBoundsAndEviction(t *testing.T) {
	s := NewSpanStore(3)
	for i, id := range []string{"a", "b", "c", "d"} {
		s.Append(id, SpanRecord{Span: int64(i), Name: "x"})
	}
	if s.Len() != 3 {
		t.Fatalf("store holds %d traces, want cap 3", s.Len())
	}
	if _, ok := s.Get("a"); ok {
		t.Error("oldest trace survived past the cap (want FIFO eviction)")
	}
	if st, ok := s.Get("d"); !ok || len(st.Spans) != 1 {
		t.Error("newest trace missing after eviction")
	}
	// Appending to a live trace grows it without consuming a slot.
	s.Append("d", SpanRecord{Span: 9, Name: "y"})
	if st, _ := s.Get("d"); len(st.Spans) != 2 {
		t.Error("append to an existing trace did not accumulate")
	}
	if s.Len() != 3 {
		t.Errorf("append to an existing trace changed the trace count to %d", s.Len())
	}
}
