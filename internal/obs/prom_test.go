package obs

import (
	"strings"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	r := &Registry{}
	r.DeclareHistogram("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		r.Observe("lat", v)
	}
	h, ok := r.Histogram("lat")
	if !ok {
		t.Fatal("declared histogram missing")
	}
	wantCounts := []uint64{1, 2, 1, 1} // (..0.1], (0.1..1], (1..10], (10..+Inf)
	if len(h.Counts) != len(wantCounts) {
		t.Fatalf("got %d count slots, want %d", len(h.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Errorf("bucket %d count = %d, want %d", i, h.Counts[i], want)
		}
	}
	if h.Count != 5 || h.Sum != 56.05 {
		t.Errorf("count=%d sum=%v, want 5 / 56.05", h.Count, h.Sum)
	}
	// Upper bounds are inclusive (le semantics): 1.0 landed in (0.1, 1].
	r2 := &Registry{}
	r2.DeclareHistogram("edge", []float64{1})
	r2.Observe("edge", 1)
	h2, _ := r2.Histogram("edge")
	if h2.Counts[0] != 1 || h2.Counts[1] != 0 {
		t.Errorf("le-semantics violated: counts = %v", h2.Counts)
	}
}

func TestHistogramUndeclaredUsesDefBuckets(t *testing.T) {
	r := &Registry{}
	r.Observe("auto", 0.25)
	h, ok := r.Histogram("auto")
	if !ok {
		t.Fatal("implicit histogram missing")
	}
	if len(h.Bounds) != len(DefBuckets) {
		t.Errorf("got %d bounds, want DefBuckets (%d)", len(h.Bounds), len(DefBuckets))
	}
	if h.Count != 1 {
		t.Errorf("count = %d", h.Count)
	}
	if names := r.HistogramNames(); len(names) != 1 || names[0] != "auto" {
		t.Errorf("HistogramNames() = %v", names)
	}
}

func TestNilRegistryHistogramsSafe(t *testing.T) {
	var r *Registry
	r.DeclareHistogram("x", nil)
	r.Observe("x", 1)
	if _, ok := r.Histogram("x"); ok {
		t.Error("nil registry claims a histogram")
	}
	if r.HistogramNames() != nil {
		t.Error("nil registry returns histogram names")
	}
}

// scrape renders the registry + extras and returns the exposition text.
func scrape(t *testing.T, r *Registry, extra []PromSample) string {
	t.Helper()
	var b strings.Builder
	if err := WritePrometheus(&b, r, "test_", extra); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// promLines parses exposition text into comment and sample lines,
// failing the test on anything structurally invalid: a sample line must
// be `name{labels} value` or `name value`, with a legal metric name.
func promLines(t *testing.T, text string) (samples map[string]string) {
	t.Helper()
	samples = map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition:\n%s", text)
		}
		if strings.HasPrefix(line, "# TYPE ") || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment form: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		key, val := line[:sp], line[sp+1:]
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			name = key[:i]
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			legal := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(c >= '0' && c <= '9' && i > 0)
			if !legal {
				t.Fatalf("illegal metric name %q in line %q", name, line)
			}
		}
		samples[key] = val
	}
	return samples
}

func TestWritePrometheusCountersAndNames(t *testing.T) {
	r := &Registry{}
	r.Add("jobs.completed", 3)
	r.Add("queue.depth", 1)
	out := scrape(t, r, nil)
	samples := promLines(t, out)
	if samples["test_jobs_completed"] != "3" {
		t.Errorf("jobs.completed sample = %q in:\n%s", samples["test_jobs_completed"], out)
	}
	if !strings.Contains(out, "# TYPE test_jobs_completed gauge") {
		t.Errorf("missing TYPE line:\n%s", out)
	}
	if strings.Contains(out, "jobs.completed") {
		t.Errorf("unsanitized dotted name leaked:\n%s", out)
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := &Registry{}
	r.DeclareHistogram("job.run_seconds", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 2} {
		r.Observe("job.run_seconds", v)
	}
	out := scrape(t, r, nil)
	samples := promLines(t, out)
	// Cumulative le buckets, monotonically non-decreasing, +Inf == count.
	checks := map[string]string{
		`test_job_run_seconds_bucket{le="0.1"}`:  "1",
		`test_job_run_seconds_bucket{le="1"}`:    "2",
		`test_job_run_seconds_bucket{le="+Inf"}`: "3",
		"test_job_run_seconds_count":             "3",
		"test_job_run_seconds_sum":               "2.55",
	}
	for key, want := range checks {
		if samples[key] != want {
			t.Errorf("%s = %q, want %q in:\n%s", key, samples[key], want, out)
		}
	}
	if !strings.Contains(out, "# TYPE test_job_run_seconds histogram") {
		t.Errorf("missing histogram TYPE:\n%s", out)
	}
}

func TestWritePrometheusLabelEscaping(t *testing.T) {
	r := &Registry{}
	out := scrape(t, r, []PromSample{{
		Name:   "build_info",
		Labels: []Label{{"version", "a\\b\"c\nd"}, {"go version", "go1.x"}},
		Value:  1,
		Help:   "Build metadata\nsecond line",
	}})
	if !strings.Contains(out, `version="a\\b\"c\nd"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	if !strings.Contains(out, `go_version="go1.x"`) {
		t.Errorf("label name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `# HELP test_build_info Build metadata\nsecond line`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if strings.Count(out, "\n") != strings.Count(strings.ReplaceAll(out, "\\n", ""), "\n") {
		t.Errorf("raw newline leaked into a value:\n%q", out)
	}
}

func TestWritePrometheusGroupsExtras(t *testing.T) {
	r := &Registry{}
	out := scrape(t, r, []PromSample{
		{Name: "slot_busy", Labels: []Label{{"slot", "0"}}, Value: 1.5},
		{Name: "slot_busy", Labels: []Label{{"slot", "1"}}, Value: 0},
		{Name: "slot_jobs", Labels: []Label{{"slot", "0"}}, Value: 2},
	})
	if got := strings.Count(out, "# TYPE test_slot_busy gauge"); got != 1 {
		t.Errorf("slot_busy TYPE emitted %d times, want 1:\n%s", got, out)
	}
	samples := promLines(t, out)
	if samples[`test_slot_busy{slot="0"}`] != "1.5" || samples[`test_slot_busy{slot="1"}`] != "0" {
		t.Errorf("per-slot samples wrong:\n%s", out)
	}
}
