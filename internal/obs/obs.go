// Package obs is the observability substrate of the repository: a
// span-based tracer plus a metrics registry that every pipeline stage can
// report into.
//
// Spans nest (run → coarsening level N → match/cmap/contract kernels →
// handoff → initial partition → uncoarsening level N → projection /
// refinement pass P) and carry typed attributes (vertex and edge counts,
// coarsening ratios, match conflicts, boundary sizes, moves, bytes moved,
// simulated device counters). The clock is *modeled* time: span
// timestamps are the modeled seconds of the shared perfmodel.Timeline, so
// a trace reconciles exactly with the runtimes the paper's tables report.
//
// Everything is nil-safe: a nil *Tracer (tracing disabled) produces nil
// spans, and every method on a nil receiver is a no-op that allocates
// nothing, so instrumented hot paths pay one pointer check.
package obs

import (
	"fmt"
	"sync"
)

// Kind discriminates the typed value held by an Attr.
type Kind int

// Attribute kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindStr
	KindBool
)

// Attr is one typed key-value attribute on a span.
type Attr struct {
	Key   string
	Kind  Kind
	IntV  int64
	FloatV float64
	StrV  string
	BoolV bool
}

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, IntV: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Kind: KindFloat, FloatV: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Kind: KindStr, StrV: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Kind: KindBool, BoolV: v} }

// Value returns the attribute's value as an interface, for exporters.
func (a Attr) Value() any {
	switch a.Kind {
	case KindInt:
		return a.IntV
	case KindFloat:
		return a.FloatV
	case KindStr:
		return a.StrV
	case KindBool:
		return a.BoolV
	default:
		return nil
	}
}

// String formats the attribute as key=value.
func (a Attr) String() string { return fmt.Sprintf("%s=%v", a.Key, a.Value()) }

// Span is one timed, attributed region of a run. Timestamps are modeled
// seconds. Spans are created through Tracer.Root or Span.Child and closed
// with EndAt; all methods are safe on a nil receiver and safe for
// concurrent use (the owning tracer's lock serializes them).
type Span struct {
	t      *Tracer
	parent *Span

	// ID is the span's unique identifier within its tracer (> 0).
	ID int64
	// ParentID is the parent span's ID, or 0 for a root span.
	ParentID int64
	// Name identifies the region (kernel name, pipeline stage, ...).
	Name string
	// Track is the modeled execution lane the span belongs to ("host",
	// "gpu0", ...); it becomes the thread row in a Chrome trace.
	Track string
	// Start and End are modeled seconds; Dur = End - Start.
	Start, End float64
	// Aux marks auxiliary detail spans (for example per-device kernel
	// activity in the multi-GPU pipeline, where the master timeline
	// already charges the per-phase maxima). Aux spans appear in exports
	// but are excluded from reconciliation sums. Children inherit it.
	Aux bool

	attrs    []Attr
	children int
	ended    bool
}

// Tracer collects spans and owns the run's metrics registry. The zero
// value is not used directly; construct with New. A nil *Tracer is the
// disabled tracer: every operation on it (and on the nil spans it hands
// out) is an allocation-free no-op.
type Tracer struct {
	mu     sync.Mutex
	nextID int64
	spans  []*Span
	reg    Registry
}

// New returns an enabled Tracer.
func New() *Tracer { return &Tracer{} }

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Metrics returns the tracer's registry (nil when tracing is disabled;
// the nil registry swallows updates).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return &t.reg
}

// Root opens a top-level span on the given track at modeled time start.
func (t *Tracer) Root(name, track string, start float64, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.newSpanLocked(nil, name, track, start, attrs)
}

func (t *Tracer) newSpanLocked(parent *Span, name, track string, start float64, attrs []Attr) *Span {
	t.nextID++
	s := &Span{
		t:     t,
		ID:    t.nextID,
		Name:  name,
		Track: track,
		Start: start,
		End:   start,
		attrs: append([]Attr(nil), attrs...),
	}
	if parent != nil {
		s.parent = parent
		s.ParentID = parent.ID
		s.Aux = parent.Aux
		if s.Track == "" {
			s.Track = parent.Track
		}
		parent.children++
	}
	t.spans = append(t.spans, s)
	return s
}

// Child opens a sub-span at modeled time start, inheriting the parent's
// track and Aux flag.
func (s *Span) Child(name string, start float64, attrs ...Attr) *Span {
	return s.ChildTrack("", name, start, attrs...)
}

// ChildTrack opens a sub-span on an explicit track (for per-device lanes).
func (s *Span) ChildTrack(track, name string, start float64, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.t.newSpanLocked(s, name, track, start, attrs)
}

// Parent returns the span's parent (nil for roots and nil spans).
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// EndAt closes the span at modeled time end. Closing an already-closed
// span moves its end time (the last close wins).
func (s *Span) EndAt(end float64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if end > s.Start {
		s.End = end
	}
	s.ended = true
}

// Set appends attributes to the span.
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.attrs = append(s.attrs, attrs...)
}

// MarkAux flags the span (and, through inheritance, its future children)
// as auxiliary detail excluded from reconciliation sums.
func (s *Span) MarkAux() *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.Aux = true
	return s
}

// Dur returns the span's modeled duration in seconds.
func (s *Span) Dur() float64 {
	if s == nil {
		return 0
	}
	return s.End - s.Start
}

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns the last attribute with the given key and whether one
// exists (last wins, matching Set's append semantics).
func (s *Span) Attr(key string) (Attr, bool) {
	if s == nil {
		return Attr{}, false
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].Key == key {
			return s.attrs[i], true
		}
	}
	return Attr{}, false
}

// IsLeaf reports whether the span has no child spans.
func (s *Span) IsLeaf() bool {
	if s == nil {
		return false
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.children == 0
}

// Spans returns a snapshot of all spans in creation order.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// LeafSeconds sums the durations of all non-auxiliary leaf spans. When
// every modeled phase is mirrored by exactly one leaf span — which the
// TimelineSink integration guarantees — this equals the run's total
// modeled seconds, making the trace reconcile with the timeline.
func (t *Tracer) LeafSeconds() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var s float64
	for _, sp := range t.spans {
		if sp.children == 0 && !sp.Aux {
			s += sp.End - sp.Start
		}
	}
	return s
}
