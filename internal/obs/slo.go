package obs

import (
	"sync"
	"time"
)

// SLO statuses, ordered by severity.
const (
	SLOOk     = "ok"
	SLOWarn   = "warn"
	SLOBreach = "breach"
)

// SLOConfig declares the service-level objectives the daemon is held to.
// Two objectives are tracked over the same pair of rolling windows:
//
//   - Latency: at least LatencyTarget of completed jobs finish within
//     LatencyThreshold of wall-clock time (admission to terminal state).
//   - Availability: at least AvailabilityTarget of finished jobs succeed
//     (client cancellations are excluded — they are not service failures).
//
// Burn rate is the standard multi-window formulation: the observed error
// rate divided by the error budget (1 - target). A burn rate of 1 means
// the budget is being spent exactly as fast as it accrues; above 1 the
// budget is shrinking. The fast window catches sharp regressions, the
// slow window filters noise: SLOWarn fires when the fast window alone
// burns, SLOBreach when both windows burn together.
type SLOConfig struct {
	// LatencyThreshold is the per-job wall-clock latency objective
	// (default 2s).
	LatencyThreshold time.Duration
	// LatencyTarget is the fraction of completed jobs that must meet the
	// threshold (default 0.95).
	LatencyTarget float64
	// AvailabilityTarget is the fraction of finished jobs that must
	// succeed (default 0.99).
	AvailabilityTarget float64
	// FastWindow and SlowWindow are the rolling evaluation windows
	// (defaults 5m and 1h).
	FastWindow, SlowWindow time.Duration
	// Now is the clock, injectable for tests; nil means time.Now.
	Now func() time.Time
}

// WithDefaults fills unset fields with the documented defaults.
func (c SLOConfig) WithDefaults() SLOConfig {
	if c.LatencyThreshold <= 0 {
		c.LatencyThreshold = 2 * time.Second
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.95
	}
	if c.AvailabilityTarget <= 0 || c.AvailabilityTarget >= 1 {
		c.AvailabilityTarget = 0.99
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// sloSample is one finished job: when it finished, how long it took, and
// whether it failed.
type sloSample struct {
	t       time.Time
	latency time.Duration
	failed  bool
}

// SLO evaluates the configured objectives over rolling windows. All
// methods are safe for concurrent use and no-ops on a nil receiver.
type SLO struct {
	mu      sync.Mutex
	cfg     SLOConfig
	samples []sloSample // ordered by recording time; evicted from the front

	totalJobs       int64
	totalFailed     int64
	totalViolations int64
}

// NewSLO builds an SLO evaluator with cfg (zero fields take defaults).
func NewSLO(cfg SLOConfig) *SLO {
	return &SLO{cfg: cfg.WithDefaults()}
}

// Config returns the resolved objective configuration.
func (s *SLO) Config() SLOConfig {
	if s == nil {
		return SLOConfig{}.WithDefaults()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// Record accounts one finished job: its wall-clock latency (admission to
// terminal state) and whether it failed. Canceled jobs must not be
// recorded — a client giving up is not a service error.
func (s *SLO) Record(latency time.Duration, failed bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Now()
	s.totalJobs++
	if failed {
		s.totalFailed++
	} else if latency > s.cfg.LatencyThreshold {
		s.totalViolations++
	}
	s.samples = append(s.samples, sloSample{t: now, latency: latency, failed: failed})
	s.evictLocked(now)
}

// evictLocked drops samples that fell out of the slow (largest) window.
// Windows are half-open: a sample exactly window-old is out. A sample
// stamped after now (the wall clock stepped backwards under us) is kept —
// its age clamps to zero rather than going negative.
func (s *SLO) evictLocked(now time.Time) {
	cut := 0
	for cut < len(s.samples) {
		age := now.Sub(s.samples[cut].t)
		if age < s.cfg.SlowWindow {
			break
		}
		cut++
	}
	if cut > 0 {
		s.samples = append(s.samples[:0], s.samples[cut:]...)
	}
}

// SLOWindow is one rolling window's evaluation.
type SLOWindow struct {
	// Seconds is the window length.
	Seconds float64 `json:"seconds"`
	// Jobs, Failed, and LatencyViolations count the finished jobs the
	// window holds, how many failed, and how many completed over the
	// latency threshold.
	Jobs              int `json:"jobs"`
	Failed            int `json:"failed"`
	LatencyViolations int `json:"latency_violations"`
	// LatencyBurn and AvailabilityBurn are the burn rates: observed error
	// rate over error budget. Zero when the window is empty.
	LatencyBurn      float64 `json:"latency_burn"`
	AvailabilityBurn float64 `json:"availability_burn"`
}

// SLOSnapshot is a point-in-time evaluation of both objectives over both
// windows, the payload of GET /slo.
type SLOSnapshot struct {
	LatencyThresholdSeconds float64 `json:"latency_threshold_seconds"`
	LatencyTarget           float64 `json:"latency_target"`
	AvailabilityTarget      float64 `json:"availability_target"`

	Fast SLOWindow `json:"fast"`
	Slow SLOWindow `json:"slow"`

	// Lifetime totals, unwindowed.
	TotalJobs       int64 `json:"total_jobs"`
	TotalFailed     int64 `json:"total_failed"`
	TotalViolations int64 `json:"total_latency_violations"`

	// Status is "ok", "warn" (the fast window of some objective burns
	// above 1), or "breach" (fast and slow burn together).
	Status string `json:"status"`
}

// Snapshot evaluates both objectives now.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{Status: SLOOk}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Now()
	s.evictLocked(now)
	snap := SLOSnapshot{
		LatencyThresholdSeconds: s.cfg.LatencyThreshold.Seconds(),
		LatencyTarget:           s.cfg.LatencyTarget,
		AvailabilityTarget:      s.cfg.AvailabilityTarget,
		Fast:                    s.windowLocked(now, s.cfg.FastWindow),
		Slow:                    s.windowLocked(now, s.cfg.SlowWindow),
		TotalJobs:               s.totalJobs,
		TotalFailed:             s.totalFailed,
		TotalViolations:         s.totalViolations,
	}
	snap.Status = sloStatus(snap.Fast, snap.Slow)
	return snap
}

// windowLocked evaluates one half-open window ending now.
func (s *SLO) windowLocked(now time.Time, w time.Duration) SLOWindow {
	out := SLOWindow{Seconds: w.Seconds()}
	completed := 0
	for _, sm := range s.samples {
		age := now.Sub(sm.t)
		if age < 0 {
			age = 0 // clock stepped backwards; the sample is "just now"
		}
		if age >= w {
			continue
		}
		out.Jobs++
		if sm.failed {
			out.Failed++
			continue
		}
		completed++
		if sm.latency > s.cfg.LatencyThreshold {
			out.LatencyViolations++
		}
	}
	if completed > 0 {
		out.LatencyBurn = burnRate(float64(out.LatencyViolations)/float64(completed), s.cfg.LatencyTarget)
	}
	if out.Jobs > 0 {
		out.AvailabilityBurn = burnRate(float64(out.Failed)/float64(out.Jobs), s.cfg.AvailabilityTarget)
	}
	return out
}

// burnRate divides the observed error rate by the error budget.
func burnRate(errRate, target float64) float64 {
	budget := 1 - target
	if budget <= 0 {
		return 0
	}
	return errRate / budget
}

// sloStatus applies the multi-window rule: breach when some objective
// burns above 1 in both windows, warn when only the fast window burns.
func sloStatus(fast, slow SLOWindow) string {
	if (fast.LatencyBurn > 1 && slow.LatencyBurn > 1) ||
		(fast.AvailabilityBurn > 1 && slow.AvailabilityBurn > 1) {
		return SLOBreach
	}
	if fast.LatencyBurn > 1 || fast.AvailabilityBurn > 1 {
		return SLOWarn
	}
	return SLOOk
}

// StatusValue maps an SLO status onto the numeric gauge exposed at
// /metrics (0 ok, 1 warn, 2 breach).
func StatusValue(status string) float64 {
	switch status {
	case SLOWarn:
		return 1
	case SLOBreach:
		return 2
	default:
		return 0
	}
}
