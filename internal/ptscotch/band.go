package ptscotch

import (
	"sort"

	"gpmetis/internal/graph"
	"gpmetis/internal/mpi"
	"gpmetis/internal/perfmodel"
)

// bandVertices returns the vertices within BFS distance width of the
// partition separator: layer 0 is every boundary vertex, each further
// layer adds untouched neighbors. This is PT-Scotch's "banded graph
// extracted from the initial partitioned graph ... located at a specific
// threshold distance from the partition separators".
func bandVertices(g *graph.Graph, part []int, width int) []int {
	n := g.NumVertices()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	var frontier []int
	for v := 0; v < n; v++ {
		if graph.IsBoundary(g, part, v) {
			dist[v] = 0
			frontier = append(frontier, v)
		}
	}
	band := append([]int(nil), frontier...)
	for d := 1; d < width && len(frontier) > 0; d++ {
		var next []int
		for _, v := range frontier {
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if dist[u] == -1 {
					dist[u] = d
					next = append(next, u)
					band = append(band, u)
				}
			}
		}
		frontier = next
	}
	return band
}

// bandedRefine refines the partition by moving only band vertices,
// pass-based with deterministic replicated commits, as in parmetis but
// with the scan restricted to the band — the cost is proportional to the
// separator, not the graph.
func bandedRefine(r *mpi.Rank, g *graph.Graph, part []int, k int, o Options) {
	P := r.Size()
	pw := graph.PartWeights(g, part, k)
	totalW := 0
	for _, w := range pw {
		totalW += w
	}
	maxPW := int(o.UBFactor * float64(totalW) / float64(k))
	if maxPW < 1 {
		maxPW = 1
	}

	conn := make([]int, k)
	var touched []int
	for pass := 0; pass < o.RefineIters; pass++ {
		// The band is re-extracted each pass (moves shift the separator).
		// Every rank extracts the same band from the replicated state;
		// each is charged for scanning only its share.
		band := bandVertices(g, part, o.BandWidth)
		var bacct perfmodel.ThreadCost
		bacct.Ops = float64(len(band)+g.NumVertices()) / float64(P)
		bacct.Rand = float64(len(band)) / float64(P)
		r.Charge(bacct)

		committed := 0
		for dir := 0; dir < 2; dir++ {
			var acct perfmodel.ThreadCost
			var flat []int
			for _, v := range band {
				// Block ownership over the band.
				if owner(v, g.NumVertices(), P) != r.ID() {
					continue
				}
				pv := part[v]
				adj, wgt := g.Neighbors(v)
				boundary := false
				for i, u := range adj {
					pu := part[u]
					if pu != pv {
						boundary = true
					}
					if conn[pu] == 0 {
						touched = append(touched, pu)
					}
					conn[pu] += wgt[i]
				}
				acct.Ops += float64(len(adj) + 2)
				acct.Rand += float64(len(adj))
				if boundary {
					bestP, bestGain := -1, 0
					for _, p := range touched {
						if p == pv {
							continue
						}
						if dir == 0 && p < pv || dir == 1 && p > pv {
							continue
						}
						if pw[p]+g.VWgt[v] > maxPW {
							continue
						}
						if gain := conn[p] - conn[pv]; gain > bestGain {
							bestP, bestGain = p, gain
						}
					}
					if bestP != -1 && bestGain > 0 {
						flat = append(flat, v, pv, bestP, bestGain, g.VWgt[v])
					}
				}
				for _, p := range touched {
					conn[p] = 0
				}
				touched = touched[:0]
			}
			r.Charge(acct)

			all := r.AllGather(flat)
			type req struct{ v, from, to, gain, vw int }
			var reqs []req
			for _, buf := range all {
				for i := 0; i+4 < len(buf); i += 5 {
					reqs = append(reqs, req{buf[i], buf[i+1], buf[i+2], buf[i+3], buf[i+4]})
				}
			}
			sort.Slice(reqs, func(a, b int) bool {
				if reqs[a].gain != reqs[b].gain {
					return reqs[a].gain > reqs[b].gain
				}
				return reqs[a].v < reqs[b].v
			})
			for _, q := range reqs {
				if part[q.v] != q.from {
					continue
				}
				if pw[q.to]+q.vw > maxPW {
					continue
				}
				part[q.v] = q.to
				pw[q.from] -= q.vw
				pw[q.to] += q.vw
				committed++
			}
			r.Charge(perfmodel.ThreadCost{Ops: float64(6 * len(reqs)), Rand: float64(2 * len(reqs))})
		}
		if committed == 0 {
			break
		}
	}
}

// owner returns the rank owning vertex v under the blocked distribution.
func owner(v, n, p int) int {
	t := v * p / n
	for t > 0 && t*n/p > v {
		t--
	}
	for t+1 < p && (t+1)*n/p <= v {
		t++
	}
	return t
}
