// Package ptscotch implements a PT-Scotch-style distributed multilevel
// partitioner (Chevalier & Pellegrini), the second distributed system the
// paper's Section II.B describes. It is not part of the paper's measured
// comparison — the repository includes it as an extension baseline — but
// every mechanism the paper attributes to PT-Scotch is here:
//
//   - probabilistic (Monte-Carlo) matching: in each pass a vertex sends a
//     heavy-edge match request with probability 1/2, which avoids request
//     cycles without ParMetis's direction bookkeeping;
//   - folding: once the coarse graph is small relative to the processor
//     count, it is duplicated onto halves of the machine that continue
//     coarsening independently with different seeds, recursively, until
//     each processor holds a full copy; each processor then runs a serial
//     recursive bisection and the best initial partitioning wins;
//   - banded refinement: un-coarsening refines only a band of vertices
//     within a fixed BFS distance of the partition separators, which
//     bounds the refinement cost by the separator size instead of the
//     graph size.
//
// It runs on the same mpi substrate and machine model as ParMetis, so its
// modeled runtimes are directly comparable.
package ptscotch

import (
	"fmt"
	"math/rand"
	"sort"

	"gpmetis/internal/graph"
	"gpmetis/internal/fault"
	"gpmetis/internal/metis"
	"gpmetis/internal/mpi"
	"gpmetis/internal/perfmodel"
)

// Options configures a run. Construct with DefaultOptions.
type Options struct {
	// Seed drives all randomized decisions.
	Seed int64
	// UBFactor is the allowed imbalance.
	UBFactor float64
	// CoarsenTo stops coarsening at CoarsenTo*k vertices.
	CoarsenTo int
	// RefineIters bounds banded refinement passes per level.
	RefineIters int
	// Procs is the number of ranks.
	Procs int
	// MatchPasses bounds the Monte-Carlo matching passes per level.
	MatchPasses int
	// FoldFactor: folding starts once the graph has fewer than
	// FoldFactor vertices per processor.
	FoldFactor int
	// BandWidth is the BFS distance from the separator kept in the
	// refinement band (PT-Scotch uses a small constant).
	BandWidth int
	// Faults, when non-nil, injects rank failures (fault.SiteMPIRank):
	// a killed rank aborts the job with mpi.ErrRankFailure. Nil disables
	// injection.
	Faults *fault.Injector
}

// DefaultOptions mirrors the ParMetis setup with PT-Scotch's knobs.
func DefaultOptions() Options {
	return Options{
		Seed:        1,
		UBFactor:    1.03,
		CoarsenTo:   30,
		RefineIters: 6,
		Procs:       8,
		MatchPasses: 6,
		FoldFactor:  2048,
		BandWidth:   2,
	}
}

func (o *Options) validate(g *graph.Graph, k int) error {
	switch {
	case k < 1:
		return fmt.Errorf("ptscotch: k must be >= 1, got %d", k)
	case g.NumVertices() == 0:
		return fmt.Errorf("ptscotch: cannot partition an empty graph")
	case k > g.NumVertices():
		return fmt.Errorf("ptscotch: k=%d exceeds vertex count %d", k, g.NumVertices())
	case o.UBFactor < 1.0:
		return fmt.Errorf("ptscotch: UBFactor %g must be >= 1.0", o.UBFactor)
	case o.CoarsenTo < 1:
		return fmt.Errorf("ptscotch: CoarsenTo %d must be >= 1", o.CoarsenTo)
	case o.RefineIters < 0:
		return fmt.Errorf("ptscotch: RefineIters %d must be >= 0", o.RefineIters)
	case o.Procs < 1:
		return fmt.Errorf("ptscotch: Procs %d must be >= 1", o.Procs)
	case o.MatchPasses < 1:
		return fmt.Errorf("ptscotch: MatchPasses %d must be >= 1", o.MatchPasses)
	case o.FoldFactor < 1:
		return fmt.Errorf("ptscotch: FoldFactor %d must be >= 1", o.FoldFactor)
	case o.BandWidth < 1:
		return fmt.Errorf("ptscotch: BandWidth %d must be >= 1", o.BandWidth)
	}
	return nil
}

// Result is the outcome of a run.
type Result struct {
	Part     []int
	EdgeCut  int
	Levels   int
	FoldedAt int // vertex count at which folding began (0 = never)
	Timeline perfmodel.Timeline
}

// ModeledSeconds returns the modeled parallel runtime.
func (r *Result) ModeledSeconds() float64 { return r.Timeline.Total() }

func chunk(n, p, t int) (int, int) { return t * n / p, (t + 1) * n / p }

// Partition runs the full PT-Scotch-style pipeline.
func Partition(g *graph.Graph, k int, o Options, m *perfmodel.Machine) (*Result, error) {
	if err := o.validate(g, k); err != nil {
		return nil, err
	}
	res := &Result{}
	type mark struct {
		name string
		at   float64
	}
	var marks []mark
	var finalPart []int
	var levelsOut, foldedAt int

	_, err := mpi.RunInjected(m, o.Procs, o.Faults, func(r *mpi.Rank) {
		P := r.Size()
		record := func(name string) {
			r.Barrier()
			if r.ID() == 0 {
				marks = append(marks, mark{name, r.Clock()})
			}
		}

		// --- Distributed coarsening with Monte-Carlo matching ---
		cur := g
		var levels []metis.Level
		target := o.CoarsenTo * k
		maxVWgt := metis.MaxVertexWeight(g, k, o.CoarsenTo)
		foldPoint := o.FoldFactor * P
		for cur.NumVertices() > target && cur.NumVertices() > foldPoint {
			match := mcMatch(r, cur, o, int64(len(levels)), maxVWgt)
			var acct perfmodel.ThreadCost
			cmap, coarseN := metis.BuildCMap(match, &acct)
			r.Charge(acct)
			if float64(coarseN) > 0.95*float64(cur.NumVertices()) {
				break
			}
			cg := contractReplicated(r, cur, match, cmap, coarseN)
			levels = append(levels, metis.Level{Fine: cur, CMap: cmap, Coarse: cg})
			cur = cg
		}
		record("coarsen")

		// --- Folding: duplicate the graph onto halves of the machine,
		// which continue independently; after log2(P) folds every rank
		// holds a full copy and finishes serially with its own seed. ---
		if r.ID() == 0 {
			foldedAt = cur.NumVertices()
		}
		bytes := float64(4 * (len(cur.XAdj) + len(cur.Adjncy) + len(cur.AdjWgt) + len(cur.VWgt)))
		folds := 0
		for 1<<folds < P {
			folds++
		}
		// Each fold re-distributes half a copy: charge one graph-sized
		// message per fold level.
		r.ChargeSeconds(float64(folds) * m.NetMsgSec(bytes))

		serialLevels, coarsest := serialCoarsen(cur, o, k, maxVWgt, int64(r.ID()), r)
		var acct perfmodel.ThreadCost
		rng := rand.New(rand.NewSource(o.Seed + int64(r.ID())*7907))
		part := metis.RecursiveBisect(coarsest, k, o.UBFactor, rng, &acct)
		r.Charge(acct)
		// Project the rank's private serial levels back to the fold point.
		for i := len(serialLevels) - 1; i >= 0; i-- {
			part = metis.Project(serialLevels[i].CMap, part, &acct)
			metis.KWayRefine(serialLevels[i].Fine, part, k, o.UBFactor, o.RefineIters, rng, &acct)
		}
		r.Charge(acct)
		myCut := graph.EdgeCut(cur, part)
		cuts := r.AllGather([]int{myCut})
		bestRank, bestCut := 0, cuts[0][0]
		for p := 1; p < P; p++ {
			if cuts[p][0] < bestCut {
				bestRank, bestCut = p, cuts[p][0]
			}
		}
		part = r.Bcast(bestRank, part)
		record("initpart")

		// --- Un-coarsening with banded refinement ---
		for i := len(levels) - 1; i >= 0; i-- {
			l := levels[i]
			n := l.Fine.NumVertices()
			fine := make([]int, n)
			lo, hi := chunk(n, P, r.ID())
			for v := 0; v < n; v++ {
				fine[v] = part[l.CMap[v]]
			}
			r.Charge(perfmodel.ThreadCost{Ops: float64(hi - lo), Rand: float64(hi - lo)})
			part = fine
			bandedRefine(r, l.Fine, part, k, o)
		}
		record("uncoarsen")

		if r.ID() == 0 {
			var bAcct perfmodel.ThreadCost
			metis.BalancePartition(g, part, k, o.UBFactor, &bAcct)
			r.Charge(bAcct)
			finalPart = part
			levelsOut = len(levels)
		}
		record("balance")
	})
	if err != nil {
		return nil, err
	}

	prev := 0.0
	for _, mk := range marks {
		res.Timeline.Append(mk.name, perfmodel.LocNet, mk.at-prev)
		prev = mk.at
	}
	res.Part = finalPart
	res.Levels = levelsOut
	res.FoldedAt = foldedAt
	res.EdgeCut = graph.EdgeCut(g, finalPart)
	return res, nil
}

// mcMatch is the Monte-Carlo matching pass: each owned unmatched vertex
// flips a deterministic coin and, on heads, requests its heaviest
// unmatched neighbor; mutual requests commit. "The results show that,
// after a few iterations, a large part of the vertices are matched."
func mcMatch(r *mpi.Rank, g *graph.Graph, o Options, level int64, maxVWgt int) []int {
	n := g.NumVertices()
	P := r.Size()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	lo, hi := chunk(n, P, r.ID())

	for pass := 0; pass < o.MatchPasses; pass++ {
		var acct perfmodel.ThreadCost
		var flat []int
		for v := lo; v < hi; v++ {
			if match[v] != -1 {
				continue
			}
			// The 0.5-probability coin, deterministic in (seed, level,
			// pass, v) so every rank could recompute it.
			if coin(o.Seed, level, int64(pass), int64(v)) {
				continue
			}
			adj, wgt := g.Neighbors(v)
			best, bestW := -1, -1
			for i, u := range adj {
				if match[u] != -1 || wgt[i] <= bestW {
					continue
				}
				if maxVWgt > 0 && g.VWgt[v]+g.VWgt[u] > maxVWgt {
					continue
				}
				best, bestW = u, wgt[i]
			}
			acct.Ops += float64(len(adj) + 4)
			acct.Rand += float64(len(adj))
			if best != -1 {
				flat = append(flat, v, best, bestW)
			}
		}
		r.Charge(acct)

		all := r.AllGather(flat)
		type req struct{ from, to, w int }
		var merged []req
		for _, buf := range all {
			for i := 0; i+2 < len(buf); i += 3 {
				merged = append(merged, req{buf[i], buf[i+1], buf[i+2]})
			}
		}
		sort.Slice(merged, func(a, b int) bool {
			if merged[a].to != merged[b].to {
				return merged[a].to < merged[b].to
			}
			if merged[a].w != merged[b].w {
				return merged[a].w > merged[b].w
			}
			return merged[a].from < merged[b].from
		})
		for _, q := range merged {
			if match[q.to] == -1 && match[q.from] == -1 && q.to != q.from {
				match[q.to] = q.from
				match[q.from] = q.to
			}
		}
		r.Charge(perfmodel.ThreadCost{Ops: float64(4 * len(merged)), Rand: float64(2 * len(merged))})
	}
	for v := range match {
		if match[v] == -1 {
			match[v] = v
		}
	}
	return match
}

// coin returns a deterministic fair coin for the Monte-Carlo matching.
func coin(seed, level, pass, v int64) bool {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(level)<<40 ^ uint64(pass)<<20 ^ uint64(v)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return x&1 == 0
}

// contractReplicated contracts by representative ownership and exchanges
// row segments so every rank assembles the identical coarse graph (the
// same scheme as parmetis.distContract, restated here so the packages
// stay independent).
func contractReplicated(r *mpi.Rank, g *graph.Graph, match, cmap []int, coarseN int) *graph.Graph {
	n := g.NumVertices()
	P := r.Size()
	lo, hi := chunk(n, P, r.ID())

	var acct perfmodel.ThreadCost
	var flat []int
	marker := make(map[int]int, 64)
	var rowAdj, rowWgt []int
	for v := lo; v < hi; v++ {
		if match[v] < v {
			continue
		}
		cv := cmap[v]
		rowAdj = rowAdj[:0]
		rowWgt = rowWgt[:0]
		vw := 0
		members := [2]int{v, match[v]}
		last := 0
		if match[v] != v {
			last = 1
		}
		for mi := 0; mi <= last; mi++ {
			mv := members[mi]
			vw += g.VWgt[mv]
			adj, wgt := g.Neighbors(mv)
			for i, u := range adj {
				cu := cmap[u]
				if cu == cv {
					continue
				}
				if idx, ok := marker[cu]; ok {
					rowWgt[idx] += wgt[i]
				} else {
					marker[cu] = len(rowAdj)
					rowAdj = append(rowAdj, cu)
					rowWgt = append(rowWgt, wgt[i])
				}
			}
			acct.Ops += float64(2 * len(adj))
			acct.Rand += float64(2 * len(adj))
		}
		for _, cu := range rowAdj {
			delete(marker, cu)
		}
		flat = append(flat, cv, vw, len(rowAdj))
		for i := range rowAdj {
			flat = append(flat, rowAdj[i], rowWgt[i])
		}
	}
	r.Charge(acct)

	all := r.AllGather(flat)
	type row struct {
		vw  int
		adj []int
		wgt []int
	}
	rows := make([]row, coarseN)
	for _, buf := range all {
		i := 0
		for i < len(buf) {
			cv, vw, deg := buf[i], buf[i+1], buf[i+2]
			i += 3
			rw := row{vw: vw, adj: make([]int, deg), wgt: make([]int, deg)}
			for j := 0; j < deg; j++ {
				rw.adj[j] = buf[i]
				rw.wgt[j] = buf[i+1]
				i += 2
			}
			rows[cv] = rw
		}
	}
	cg := &graph.Graph{XAdj: make([]int, coarseN+1), VWgt: make([]int, coarseN)}
	for cv, rw := range rows {
		cg.VWgt[cv] = rw.vw
		cg.XAdj[cv+1] = cg.XAdj[cv] + len(rw.adj)
	}
	cg.Adjncy = make([]int, 0, cg.XAdj[coarseN])
	cg.AdjWgt = make([]int, 0, cg.XAdj[coarseN])
	for _, rw := range rows {
		cg.Adjncy = append(cg.Adjncy, rw.adj...)
		cg.AdjWgt = append(cg.AdjWgt, rw.wgt...)
	}
	r.Charge(perfmodel.ThreadCost{SeqBytes: float64(8 * len(cg.Adjncy))})
	return cg
}

// serialCoarsen finishes coarsening privately on one rank after folding,
// with a rank-specific seed, charging the rank's own clock.
func serialCoarsen(g *graph.Graph, o Options, k, maxVWgt int, rankSeed int64, r *mpi.Rank) ([]metis.Level, *graph.Graph) {
	rng := rand.New(rand.NewSource(o.Seed + rankSeed*6151))
	var levels []metis.Level
	target := o.CoarsenTo * k
	cur := g
	for cur.NumVertices() > target {
		var acct perfmodel.ThreadCost
		match := metis.Match(cur, metis.HEM, maxVWgt, rng, &acct)
		cmap, coarseN := metis.BuildCMap(match, &acct)
		if float64(coarseN) > 0.95*float64(cur.NumVertices()) {
			r.Charge(acct)
			break
		}
		cg := metis.Contract(cur, match, cmap, coarseN, &acct)
		r.Charge(acct)
		levels = append(levels, metis.Level{Fine: cur, CMap: cmap, Coarse: cg})
		cur = cg
	}
	return levels, cur
}
