package ptscotch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpmetis/internal/graph"
	"gpmetis/internal/graph/gen"
	"gpmetis/internal/metis"
	"gpmetis/internal/perfmodel"
)

func machine() *perfmodel.Machine { return perfmodel.Default() }

func TestPartitionEndToEnd(t *testing.T) {
	g, err := gen.Grid2D(40, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, 8, DefaultOptions(), machine())
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckPartition(g, res.Part, 8); err != nil {
		t.Fatal(err)
	}
	if imb := graph.Imbalance(g, res.Part, 8); imb > 1.15 {
		t.Errorf("imbalance = %g", imb)
	}
	if res.EdgeCut > 350 {
		t.Errorf("cut %d too high for a 40x40 grid in 8 parts", res.EdgeCut)
	}
	if res.ModeledSeconds() <= 0 {
		t.Error("no modeled time")
	}
}

func TestFoldingKicksIn(t *testing.T) {
	g, err := gen.Delaunay(30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	res, err := Partition(g, 16, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	if res.FoldedAt == 0 {
		t.Error("folding never happened")
	}
	if res.FoldedAt > o.FoldFactor*o.Procs+1 && res.Levels == 0 {
		t.Errorf("folded at %d with no distributed levels", res.FoldedAt)
	}
	if err := graph.CheckPartition(g, res.Part, 16); err != nil {
		t.Error(err)
	}
}

func TestQualityComparableToMetis(t *testing.T) {
	g, err := gen.Delaunay(8000, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := machine()
	ser, err := metis.Partition(g, 16, metis.DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, 16, DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.EdgeCut) / float64(ser.EdgeCut)
	if ratio > 1.5 || ratio < 0.5 {
		t.Errorf("edge-cut ratio vs Metis = %.3f", ratio)
	}
}

func TestMonteCarloCoinIsFairish(t *testing.T) {
	heads := 0
	const n = 100000
	for v := int64(0); v < n; v++ {
		if coin(1, 2, 3, v) {
			heads++
		}
	}
	frac := float64(heads) / n
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("coin heads fraction %.4f, want ~0.5", frac)
	}
}

func TestBandVertices(t *testing.T) {
	g, err := gen.Grid2D(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Vertical split: boundary is the two middle columns.
	part := make([]int, 100)
	for v := range part {
		if v%10 >= 5 {
			part[v] = 1
		}
	}
	band1 := bandVertices(g, part, 1)
	if len(band1) != 20 {
		t.Errorf("width-1 band has %d vertices, want 20 (both separator columns)", len(band1))
	}
	band2 := bandVertices(g, part, 2)
	if len(band2) != 40 {
		t.Errorf("width-2 band has %d vertices, want 40", len(band2))
	}
	// Sanity: bands nest.
	if len(band2) < len(band1) {
		t.Error("wider band must not shrink")
	}
}

func TestBandedRefinementTouchesOnlyBand(t *testing.T) {
	// Vertices far from the separator must never move.
	g, err := gen.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, 2, DefaultOptions(), machine())
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckPartition(g, res.Part, 2); err != nil {
		t.Error(err)
	}
}

func TestDeterministic(t *testing.T) {
	g, err := gen.RoadNetwork(6000, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	a, err := Partition(g, 8, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, 8, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCut != b.EdgeCut || a.ModeledSeconds() != b.ModeledSeconds() {
		t.Error("same seed must reproduce result and modeled time")
	}
}

func TestOptionValidation(t *testing.T) {
	g, err := gen.Grid2D(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	if _, err := Partition(g, 0, o, machine()); err == nil {
		t.Error("k=0 should fail")
	}
	cases := []func(*Options){
		func(o *Options) { o.UBFactor = 0.5 },
		func(o *Options) { o.Procs = 0 },
		func(o *Options) { o.MatchPasses = 0 },
		func(o *Options) { o.FoldFactor = 0 },
		func(o *Options) { o.BandWidth = 0 },
		func(o *Options) { o.CoarsenTo = 0 },
		func(o *Options) { o.RefineIters = -1 },
	}
	for i, mutate := range cases {
		bad := DefaultOptions()
		mutate(&bad)
		if _, err := Partition(g, 2, bad, machine()); err == nil {
			t.Errorf("case %d: invalid options should fail", i)
		}
	}
}

// Property: valid partitions across random graphs, ranks, and k.
func TestPartitionAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, szRaw, kRaw, pRaw uint8) bool {
		n := 60 + int(szRaw)%150
		k := 2 + int(kRaw)%6
		procs := 1 + int(pRaw)%6
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			if err := b.AddEdge(rng.Intn(v), v, 1+rng.Intn(3)); err != nil {
				return false
			}
		}
		g := b.MustBuild()
		o := DefaultOptions()
		o.Seed = seed
		o.Procs = procs
		res, err := Partition(g, k, o, machine())
		if err != nil {
			t.Logf("Partition: %v", err)
			return false
		}
		return graph.CheckPartition(g, res.Part, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
