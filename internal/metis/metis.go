package metis

import (
	"math/rand"

	"gpmetis/internal/graph"
	"gpmetis/internal/perfmodel"
)

// Partition runs the full serial multilevel pipeline — coarsening, initial
// partitioning, un-coarsening with refinement — and returns the k-way
// partition of g together with the modeled serial runtime.
func Partition(g *graph.Graph, k int, o Options, m *perfmodel.Machine) (*Result, error) {
	if err := o.validate(g, k); err != nil {
		return nil, err
	}
	res := &Result{}

	levels := Coarsen(g, o, k, m, &res.Timeline)
	res.Levels = len(levels)

	coarsest := g
	if len(levels) > 0 {
		coarsest = levels[len(levels)-1].Coarse
	}
	part := InitialPartition(coarsest, k, o, m, &res.Timeline)

	rng := rand.New(rand.NewSource(o.Seed + 104729))
	for i := len(levels) - 1; i >= 0; i-- {
		var acct perfmodel.ThreadCost
		part = Project(levels[i].CMap, part, &acct)
		KWayRefine(levels[i].Fine, part, k, o.UBFactor, o.RefineIters, rng, &acct)
		res.Timeline.Append("uncoarsen", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{acct}))
	}

	var acct perfmodel.ThreadCost
	BalancePartition(g, part, k, o.UBFactor, &acct)
	res.Timeline.Append("balance", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{acct}))

	res.Part = part
	res.EdgeCut = graph.EdgeCut(g, part)
	return res, nil
}
