// Package metis implements the serial multilevel k-way graph partitioner
// of Karypis & Kumar ("A fast and high quality multilevel scheme for
// partitioning irregular graphs", SIAM J. Sci. Comput. 1998): heavy-edge
// matching coarsening, greedy graph growing (GGGP) initial bisection with
// recursive bisection to k parts, and boundary Kernighan-Lin/Fiduccia-
// Mattheyses refinement during un-coarsening.
//
// It is the serial baseline every speedup in the paper's Figure 5 is
// measured against, and its building blocks (GGGP, FM bisection
// refinement) are reused by the parallel partitioners for their
// small-coarse-graph phases.
package metis

import (
	"fmt"

	"gpmetis/internal/graph"
	"gpmetis/internal/perfmodel"
)

// MatchingKind selects the coarsening matching policy.
type MatchingKind int

// Matching policies from the paper's Section II.A.
const (
	// HEM is heavy-edge matching: each vertex prefers its unmatched
	// neighbor with the heaviest connecting edge. The paper calls it the
	// best-performing policy and all partitioners here default to it.
	HEM MatchingKind = iota
	// RM is random matching: each vertex picks a random unmatched
	// neighbor. Used when all edges weigh the same and as an ablation.
	RM
)

// String names the matching policy.
func (k MatchingKind) String() string {
	switch k {
	case HEM:
		return "HEM"
	case RM:
		return "RM"
	default:
		return fmt.Sprintf("MatchingKind(%d)", int(k))
	}
}

// Options configures a partitioning run. The zero value is not valid; use
// DefaultOptions.
type Options struct {
	// Seed drives all randomized tie-breaking, making runs reproducible.
	Seed int64
	// UBFactor is the allowed imbalance: no partition may exceed UBFactor
	// times the average partition weight (paper: 1.03).
	UBFactor float64
	// CoarsenTo stops coarsening once the graph has at most
	// CoarsenTo*k vertices (Metis-style c*k threshold).
	CoarsenTo int
	// RefineIters bounds the refinement passes per uncoarsening level.
	RefineIters int
	// Matching selects the coarsening matching policy.
	Matching MatchingKind
}

// DefaultOptions returns the configuration used in the paper's
// experiments: 3% imbalance, Metis-style coarsening threshold, HEM.
func DefaultOptions() Options {
	return Options{
		Seed:        1,
		UBFactor:    1.03,
		CoarsenTo:   30,
		RefineIters: 8,
		Matching:    HEM,
	}
}

// validate checks option sanity against the input.
func (o *Options) validate(g *graph.Graph, k int) error {
	if k < 1 {
		return fmt.Errorf("metis: k must be >= 1, got %d", k)
	}
	if g.NumVertices() == 0 {
		return fmt.Errorf("metis: cannot partition an empty graph")
	}
	if k > g.NumVertices() {
		return fmt.Errorf("metis: k=%d exceeds vertex count %d", k, g.NumVertices())
	}
	if o.UBFactor < 1.0 {
		return fmt.Errorf("metis: UBFactor %g must be >= 1.0", o.UBFactor)
	}
	if o.CoarsenTo < 1 {
		return fmt.Errorf("metis: CoarsenTo %d must be >= 1", o.CoarsenTo)
	}
	if o.RefineIters < 0 {
		return fmt.Errorf("metis: RefineIters %d must be >= 0", o.RefineIters)
	}
	return nil
}

// Result is the outcome of a partitioning run.
type Result struct {
	// Part assigns each vertex of the input graph a partition in [0,k).
	Part []int
	// EdgeCut is the weight of edges crossing partitions.
	EdgeCut int
	// Levels is the number of coarsening levels performed.
	Levels int
	// Timeline holds the modeled phase durations (see perfmodel).
	Timeline perfmodel.Timeline
}

// ModeledSeconds returns the total modeled runtime.
func (r *Result) ModeledSeconds() float64 { return r.Timeline.Total() }
