package metis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpmetis/internal/graph"
	"gpmetis/internal/graph/gen"
	"gpmetis/internal/perfmodel"
)

func machine() *perfmodel.Machine { return perfmodel.Default() }

func mustGrid(t *testing.T, r, c int) *graph.Graph {
	t.Helper()
	g, err := gen.Grid2D(r, c)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMatchIsValidMatching(t *testing.T) {
	g := mustGrid(t, 20, 20)
	for _, kind := range []MatchingKind{HEM, RM} {
		rng := rand.New(rand.NewSource(3))
		match := Match(g, kind, 0, rng, nil)
		matched := 0
		for v, u := range match {
			if u < 0 || u >= g.NumVertices() {
				t.Fatalf("%v: match[%d] = %d out of range", kind, v, u)
			}
			if match[u] != v {
				t.Fatalf("%v: matching not symmetric at %d<->%d", kind, v, u)
			}
			if u != v {
				if !g.HasEdge(v, u) {
					t.Fatalf("%v: matched non-adjacent pair %d,%d", kind, v, u)
				}
				matched++
			}
		}
		// A grid has a near-perfect matching; most vertices should pair.
		if matched < g.NumVertices()/2 {
			t.Errorf("%v: only %d/%d vertices matched", kind, matched, g.NumVertices())
		}
	}
}

func TestMatchIsMaximal(t *testing.T) {
	// Maximality: no edge may connect two unmatched (self-matched)
	// vertices.
	g := mustGrid(t, 15, 17)
	match := Match(g, HEM, 0, rand.New(rand.NewSource(1)), nil)
	for v := 0; v < g.NumVertices(); v++ {
		if match[v] != v {
			continue
		}
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if match[u] == u {
				t.Fatalf("edge (%d,%d) joins two unmatched vertices: matching not maximal", v, u)
			}
		}
	}
}

func TestHEMPrefersHeavyEdges(t *testing.T) {
	// Cycle 0-1-2-3-0 with alternating weights 10,1,10,1. Whichever
	// vertex HEM visits first, its heaviest incident edge weighs 10, so
	// the first matched pair always takes a heavy edge and the remaining
	// partner also takes its heavy edge: total matched weight is 20 for
	// any seed (random matching would often take the light edges).
	b := graph.NewBuilder(4)
	weights := []int{10, 1, 10, 1}
	for i := 0; i < 4; i++ {
		if err := b.AddEdge(i, (i+1)%4, weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	for seed := int64(0); seed < 20; seed++ {
		match := Match(g, HEM, 0, rand.New(rand.NewSource(seed)), nil)
		total := 0
		for v, u := range match {
			if u > v {
				total += g.EdgeWeight(v, u)
			}
		}
		if total != 20 {
			t.Fatalf("seed %d: HEM matched weight %d, want 20 (heavy edges only)", seed, total)
		}
	}
}

func TestBuildCMap(t *testing.T) {
	// match: (0,2) pair, 1 self, (3,4) pair.
	match := []int{2, 1, 0, 4, 3}
	cmap, n := BuildCMap(match, nil)
	if n != 3 {
		t.Fatalf("coarse count = %d, want 3", n)
	}
	if cmap[0] != cmap[2] || cmap[3] != cmap[4] {
		t.Error("pairs must share coarse ids")
	}
	if cmap[0] == cmap[1] || cmap[1] == cmap[3] || cmap[0] == cmap[3] {
		t.Error("distinct groups must get distinct ids")
	}
}

func TestContractPreservesWeights(t *testing.T) {
	g := mustGrid(t, 10, 10)
	rng := rand.New(rand.NewSource(5))
	match := Match(g, HEM, 0, rng, nil)
	cmap, cn := BuildCMap(match, nil)
	cg := Contract(g, match, cmap, cn, nil)
	if err := cg.Validate(); err != nil {
		t.Fatalf("contracted graph invalid: %v", err)
	}
	if cg.TotalVertexWeight() != g.TotalVertexWeight() {
		t.Errorf("vertex weight changed: %d -> %d", g.TotalVertexWeight(), cg.TotalVertexWeight())
	}
	// Edge weight shrinks exactly by the weight of collapsed (matched)
	// edges.
	collapsed := 0
	for v, u := range match {
		if u > v {
			collapsed += g.EdgeWeight(v, u)
		}
	}
	if cg.TotalEdgeWeight() != g.TotalEdgeWeight()-collapsed {
		t.Errorf("edge weight: got %d, want %d", cg.TotalEdgeWeight(), g.TotalEdgeWeight()-collapsed)
	}
}

func TestCoarsenShrinksToThreshold(t *testing.T) {
	g := mustGrid(t, 40, 40)
	var tl perfmodel.Timeline
	o := DefaultOptions()
	o.CoarsenTo = 10
	levels := Coarsen(g, o, 4, machine(), &tl)
	if len(levels) == 0 {
		t.Fatal("no coarsening happened")
	}
	last := levels[len(levels)-1].Coarse
	if last.NumVertices() > g.NumVertices()/2 {
		t.Errorf("coarsest graph still has %d vertices", last.NumVertices())
	}
	for i, l := range levels {
		if l.Coarse.NumVertices() >= l.Fine.NumVertices() {
			t.Errorf("level %d did not shrink: %d -> %d", i, l.Fine.NumVertices(), l.Coarse.NumVertices())
		}
		if err := l.Coarse.Validate(); err != nil {
			t.Errorf("level %d coarse graph invalid: %v", i, err)
		}
	}
	if tl.Total() <= 0 {
		t.Error("coarsening charged no time")
	}
}

func TestBisectBalancedAndLowCut(t *testing.T) {
	g := mustGrid(t, 16, 16)
	rng := rand.New(rand.NewSource(2))
	part := Bisect(g, 0.5, 1.03, rng, nil)
	if err := graph.CheckPartition(g, part, 2); err != nil {
		t.Fatal(err)
	}
	if !graph.IsBalanced(g, part, 2, 1.10) {
		t.Errorf("bisection imbalance %g too high", graph.Imbalance(g, part, 2))
	}
	// A 16x16 grid has a bisection of width 16; GGGP+FM should come close.
	if cut := graph.EdgeCut(g, part); cut > 32 {
		t.Errorf("bisection cut = %d, want near 16", cut)
	}
}

func TestRecursiveBisectNonPowerOfTwo(t *testing.T) {
	g := mustGrid(t, 20, 21)
	for _, k := range []int{1, 2, 3, 5, 7, 12} {
		rng := rand.New(rand.NewSource(4))
		part := RecursiveBisect(g, k, 1.05, rng, nil)
		if err := graph.CheckPartition(g, part, k); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		if imb := graph.Imbalance(g, part, k); imb > 1.35 {
			t.Errorf("k=%d: imbalance %g too high", k, imb)
		}
	}
}

func TestKWayRefineImprovesCut(t *testing.T) {
	g := mustGrid(t, 24, 24)
	rng := rand.New(rand.NewSource(6))
	// Start from a random (bad) partition.
	part := make([]int, g.NumVertices())
	prng := rand.New(rand.NewSource(11))
	for v := range part {
		part[v] = prng.Intn(4)
	}
	before := graph.EdgeCut(g, part)
	after := KWayRefine(g, part, 4, 1.10, 12, rng, nil)
	if after >= before {
		t.Errorf("refinement did not improve cut: %d -> %d", before, after)
	}
	if err := graph.CheckPartition(g, part, 4); err != nil {
		t.Error(err)
	}
}

func TestBalancePartitionRestoresBound(t *testing.T) {
	g := mustGrid(t, 16, 16)
	part := make([]int, g.NumVertices())
	// Everything in partition 0 except one vertex in each other part.
	part[1], part[2], part[3] = 1, 2, 3
	BalancePartition(g, part, 4, 1.25, nil)
	if imb := graph.Imbalance(g, part, 4); imb > 2.0 {
		t.Errorf("imbalance after balancing = %g", imb)
	}
}

func TestPartitionEndToEnd(t *testing.T) {
	g := mustGrid(t, 32, 32)
	o := DefaultOptions()
	res, err := Partition(g, 8, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckPartition(g, res.Part, 8); err != nil {
		t.Fatal(err)
	}
	if imb := graph.Imbalance(g, res.Part, 8); imb > 1.12 {
		t.Errorf("imbalance = %g, want near 1.03", imb)
	}
	if res.EdgeCut != graph.EdgeCut(g, res.Part) {
		t.Error("reported EdgeCut mismatch")
	}
	// A 32x32 grid split into 8 parts has cuts ~ 7*32/sqrt(8)... a random
	// partition would cut ~1700; anything below 250 shows real multilevel
	// optimization.
	if res.EdgeCut > 250 {
		t.Errorf("edge cut = %d, too high for multilevel on a grid", res.EdgeCut)
	}
	if res.Levels == 0 {
		t.Error("expected several coarsening levels")
	}
	if res.ModeledSeconds() <= 0 {
		t.Error("modeled runtime must be positive")
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := mustGrid(t, 20, 20)
	o := DefaultOptions()
	a, err := Partition(g, 4, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, 4, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCut != b.EdgeCut {
		t.Errorf("same seed, different cuts: %d vs %d", a.EdgeCut, b.EdgeCut)
	}
	for v := range a.Part {
		if a.Part[v] != b.Part[v] {
			t.Fatal("same seed, different partitions")
		}
	}
	o.Seed = 99
	c, err := Partition(g, 4, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may legitimately coincide; just ensure it runs
}

func TestPartitionValidatesInput(t *testing.T) {
	g := mustGrid(t, 4, 4)
	o := DefaultOptions()
	if _, err := Partition(g, 0, o, machine()); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Partition(g, 17, o, machine()); err == nil {
		t.Error("k > n should fail")
	}
	bad := o
	bad.UBFactor = 0.9
	if _, err := Partition(g, 2, bad, machine()); err == nil {
		t.Error("UBFactor < 1 should fail")
	}
	bad = o
	bad.CoarsenTo = 0
	if _, err := Partition(g, 2, bad, machine()); err == nil {
		t.Error("CoarsenTo 0 should fail")
	}
	bad = o
	bad.RefineIters = -1
	if _, err := Partition(g, 2, bad, machine()); err == nil {
		t.Error("negative RefineIters should fail")
	}
	empty := graph.NewBuilder(0).MustBuild()
	if _, err := Partition(empty, 1, o, machine()); err == nil {
		t.Error("empty graph should fail")
	}
}

func TestPartitionK1(t *testing.T) {
	g := mustGrid(t, 5, 5)
	res, err := Partition(g, 1, DefaultOptions(), machine())
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut != 0 {
		t.Errorf("k=1 cut = %d, want 0", res.EdgeCut)
	}
}

func TestPartitionOnIrregularInputs(t *testing.T) {
	del, err := gen.Delaunay(3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	road, err := gen.RoadNetwork(3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*graph.Graph{"delaunay": del, "road": road} {
		res, err := Partition(g, 16, DefaultOptions(), machine())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := graph.CheckPartition(g, res.Part, 16); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if imb := graph.Imbalance(g, res.Part, 16); imb > 1.25 {
			t.Errorf("%s: imbalance %g", name, imb)
		}
		rnd := randomCut(g, 16)
		if res.EdgeCut > rnd/2 {
			t.Errorf("%s: cut %d not clearly better than random %d", name, res.EdgeCut, rnd)
		}
	}
}

func randomCut(g *graph.Graph, k int) int {
	part := make([]int, g.NumVertices())
	r := rand.New(rand.NewSource(1))
	for v := range part {
		part[v] = r.Intn(k)
	}
	return graph.EdgeCut(g, part)
}

// Property: Partition always returns a complete, in-range partition with
// every part non-empty, for random connected graphs and k.
func TestPartitionAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, szRaw, kRaw uint8) bool {
		n := 24 + int(szRaw)%150
		k := 2 + int(kRaw)%6
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			if err := b.AddEdge(rng.Intn(v), v, 1+rng.Intn(4)); err != nil {
				return false
			}
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				if err := b.AddEdge(u, v, 1+rng.Intn(4)); err != nil {
					return false
				}
			}
		}
		g := b.MustBuild()
		o := DefaultOptions()
		o.Seed = seed
		res, err := Partition(g, k, o, machine())
		if err != nil {
			t.Logf("Partition: %v", err)
			return false
		}
		return graph.CheckPartition(g, res.Part, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the edge cut reported equals the cut recomputed from scratch,
// and projection preserves cut exactly (coarse cut == projected fine cut
// before refinement).
func TestProjectPreservesCutProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := gen.Delaunay(400, seed)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		match := Match(g, HEM, 0, rng, nil)
		cmap, cn := BuildCMap(match, nil)
		cg := Contract(g, match, cmap, cn, nil)
		cpart := make([]int, cn)
		for i := range cpart {
			cpart[i] = rng.Intn(3)
		}
		fpart := Project(cmap, cpart, nil)
		return graph.EdgeCut(cg, cpart) == graph.EdgeCut(g, fpart)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
