package metis

import (
	"math/rand"

	"gpmetis/internal/graph"
	"gpmetis/internal/perfmodel"
)

// gggpTries is how many random seed regions GGGP grows before keeping the
// best bisection, as in Metis.
const gggpTries = 4

// Bisect splits g into sides 0/1 with target weight fractions frac0 and
// 1-frac0 using Greedy Graph Growing Partitioning (Section II.A.2): grow
// a region breadth-first from a random seed, always absorbing the
// frontier vertex with the largest edge-cut decrease, until the region
// holds ~frac0 of the total weight; repeat gggpTries times and keep the
// smallest cut, then refine it with the bucket-based Fiduccia-Mattheyses
// pass (RefineBisectionFM).
func Bisect(g *graph.Graph, frac0, ubfactor float64, rng *rand.Rand, acct *perfmodel.ThreadCost) []int {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []int{0}
	}
	totalW := g.TotalVertexWeight()
	target0 := int(frac0 * float64(totalW))
	if target0 < 1 {
		target0 = 1
	}

	bestPart := make([]int, n)
	bestCut := -1
	part := make([]int, n)
	gain := make([]int, n)
	inFrontier := make([]bool, n)
	var frontier []int

	for try := 0; try < gggpTries; try++ {
		for i := range part {
			part[i] = 1
			inFrontier[i] = false
		}
		frontier = frontier[:0]
		seed := rng.Intn(n)
		w0 := 0

		grow := func(v int) {
			part[v] = 0
			w0 += g.VWgt[v]
			adj, wgt := g.Neighbors(v)
			for i, u := range adj {
				if part[u] == 1 {
					if !inFrontier[u] {
						inFrontier[u] = true
						gain[u] = 0
						frontier = append(frontier, u)
						uadj, uwgt := g.Neighbors(u)
						for j, x := range uadj {
							if part[x] == 0 {
								gain[u] += uwgt[j]
							} else {
								gain[u] -= uwgt[j]
							}
						}
						if acct != nil {
							acct.Ops += float64(len(uadj))
							acct.Rand += float64(len(uadj))
						}
					} else {
						// v moved to side 0: u's gain rises by 2*w(u,v).
						gain[u] += 2 * wgt[i]
					}
				}
			}
			if acct != nil {
				acct.Ops += float64(len(adj))
				acct.Rand += float64(len(adj))
			}
		}

		grow(seed)
		for w0 < target0 {
			// Pick the frontier vertex with max gain (compact dead slots).
			bi, bg := -1, 0
			out := frontier[:0]
			for _, u := range frontier {
				if part[u] == 0 {
					inFrontier[u] = false
					continue
				}
				out = append(out, u)
				if bi == -1 || gain[u] > bg {
					bi, bg = u, gain[u]
				}
			}
			frontier = out
			if acct != nil {
				acct.Ops += float64(len(frontier))
			}
			if bi == -1 {
				// Disconnected remainder: absorb any side-1 vertex.
				for v := 0; v < n; v++ {
					if part[v] == 1 {
						bi = v
						break
					}
				}
				if bi == -1 {
					break
				}
			}
			inFrontier[bi] = false
			grow(bi)
		}

		cut := graph.EdgeCut(g, part)
		if acct != nil {
			acct.Ops += float64(len(g.Adjncy))
			acct.SeqBytes += float64(8 * len(g.Adjncy))
		}
		if bestCut == -1 || cut < bestCut {
			bestCut = cut
			copy(bestPart, part)
		}
	}

	RefineBisectionFM(g, bestPart, frac0, ubfactor, acct)
	return bestPart
}

// RecursiveBisect partitions g into k parts by recursive bisection,
// splitting k as evenly as possible at each level (Section II.A.2). The
// returned labels are in [0,k).
func RecursiveBisect(g *graph.Graph, k int, ubfactor float64, rng *rand.Rand, acct *perfmodel.ThreadCost) []int {
	part := make([]int, g.NumVertices())
	if k <= 1 {
		return part
	}
	k1 := (k + 1) / 2
	frac0 := float64(k1) / float64(k)
	// Tighten the imbalance allowance as we recurse so the leaf
	// partitions can still meet the global bound.
	ub := 1 + (ubfactor-1)*0.75
	bis := Bisect(g, frac0, ub, rng, acct)

	var side0, side1 []int
	for v, s := range bis {
		if s == 0 {
			side0 = append(side0, v)
		} else {
			side1 = append(side1, v)
		}
	}
	// Degenerate bisections (tiny or pathological subgraphs) can leave a
	// side empty; fall back to an index split so every one of the k leaf
	// partitions receives vertices whenever the graph has enough of them.
	if (len(side0) == 0 || len(side1) == 0) && g.NumVertices() >= 2 {
		side0, side1 = side0[:0], side1[:0]
		pivot := g.NumVertices() * k1 / k
		if pivot < 1 {
			pivot = 1
		}
		if pivot >= g.NumVertices() {
			pivot = g.NumVertices() - 1
		}
		for v := 0; v < g.NumVertices(); v++ {
			if v < pivot {
				side0 = append(side0, v)
			} else {
				side1 = append(side1, v)
			}
		}
	}
	sub0, orig0, err := graph.InducedSubgraph(g, side0)
	if err != nil {
		panic(err) // side0 is distinct and in range by construction
	}
	sub1, orig1, err := graph.InducedSubgraph(g, side1)
	if err != nil {
		panic(err)
	}
	if acct != nil {
		acct.Ops += float64(len(g.Adjncy))
		acct.Rand += float64(len(g.Adjncy))
	}
	p0 := RecursiveBisect(sub0, k1, ubfactor, rng, acct)
	p1 := RecursiveBisect(sub1, k-k1, ubfactor, rng, acct)
	for i, v := range orig0 {
		part[v] = p0[i]
	}
	for i, v := range orig1 {
		part[v] = k1 + p1[i]
	}
	return part
}

// InitialPartition produces the k-way partition of the coarsest graph and
// charges it to the timeline as the paper's "initial partitioning" phase.
func InitialPartition(g *graph.Graph, k int, o Options, m *perfmodel.Machine, tl *perfmodel.Timeline) []int {
	rng := rand.New(rand.NewSource(o.Seed + 7919))
	var acct perfmodel.ThreadCost
	part := RecursiveBisect(g, k, o.UBFactor, rng, &acct)
	tl.Append("initpart", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{acct}))
	return part
}
