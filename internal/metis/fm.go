package metis

import (
	"gpmetis/internal/graph"
	"gpmetis/internal/perfmodel"
)

// gainBuckets is the classic Fiduccia-Mattheyses bucket structure
// (paper reference [17]): a doubly-linked list per gain value plus a
// max-gain cursor, giving O(1) insert/remove/update and amortized O(1)
// extract-max. Gains are bounded by the maximum weighted degree, so the
// bucket array is dense.
type gainBuckets struct {
	offset  int // gain g lives in head[g+offset]
	head    []int
	next    []int
	prev    []int
	gain    []int
	in      []bool
	maxGain int // current upper bound on the best gain (lazy)
	size    int
}

// newGainBuckets sizes the structure for n vertices with |gain| <= wmax.
func newGainBuckets(n, wmax int) *gainBuckets {
	b := &gainBuckets{
		offset:  wmax,
		head:    make([]int, 2*wmax+1),
		next:    make([]int, n),
		prev:    make([]int, n),
		gain:    make([]int, n),
		in:      make([]bool, n),
		maxGain: -wmax - 1,
	}
	for i := range b.head {
		b.head[i] = -1
	}
	return b
}

// Len returns the number of vertices currently in the buckets.
func (b *gainBuckets) Len() int { return b.size }

// Insert adds v with the given gain. v must not already be present.
func (b *gainBuckets) Insert(v, gain int) {
	if b.in[v] {
		panic("metis: gainBuckets.Insert: vertex already present")
	}
	idx := gain + b.offset
	b.gain[v] = gain
	b.in[v] = true
	b.prev[v] = -1
	b.next[v] = b.head[idx]
	if b.head[idx] != -1 {
		b.prev[b.head[idx]] = v
	}
	b.head[idx] = v
	if gain > b.maxGain {
		b.maxGain = gain
	}
	b.size++
}

// Remove deletes v if present.
func (b *gainBuckets) Remove(v int) {
	if !b.in[v] {
		return
	}
	idx := b.gain[v] + b.offset
	if b.prev[v] != -1 {
		b.next[b.prev[v]] = b.next[v]
	} else {
		b.head[idx] = b.next[v]
	}
	if b.next[v] != -1 {
		b.prev[b.next[v]] = b.prev[v]
	}
	b.in[v] = false
	b.size--
}

// Update moves v to a new gain (inserting it if absent).
func (b *gainBuckets) Update(v, gain int) {
	b.Remove(v)
	b.Insert(v, gain)
}

// Contains reports whether v is in the buckets.
func (b *gainBuckets) Contains(v int) bool { return b.in[v] }

// Gain returns v's stored gain (valid only while Contains(v)).
func (b *gainBuckets) Gain(v int) int { return b.gain[v] }

// PeekMax returns the highest-gain vertex, or -1 when empty. The max-gain
// cursor descends lazily, preserving the amortized O(1) bound.
func (b *gainBuckets) PeekMax() int {
	if b.size == 0 {
		return -1
	}
	for b.maxGain+b.offset >= 0 {
		if h := b.head[b.maxGain+b.offset]; h != -1 {
			return h
		}
		b.maxGain--
	}
	return -1
}

// RefineBisectionFM improves a 2-way partition with the full
// Fiduccia-Mattheyses pass: every unlocked vertex sits in its side's gain
// buckets; each step moves the best balance-feasible vertex from either
// side, locks it, updates its neighbors' gains in O(deg), and the pass
// rolls back to the best prefix. Compared to RefineBisection's linear
// rescan this is the textbook O(|E|)-per-pass structure.
func RefineBisectionFM(g *graph.Graph, part []int, frac0, ubfactor float64, acct *perfmodel.ThreadCost) {
	n := g.NumVertices()
	if n == 0 {
		return
	}
	totalW := g.TotalVertexWeight()
	target0 := frac0 * float64(totalW)
	maxW0 := int(target0 * ubfactor)
	minW0 := int(target0 * (2 - ubfactor))

	wmax := 1
	for v := 0; v < n; v++ {
		_, wgt := g.Neighbors(v)
		s := 0
		for _, w := range wgt {
			s += w
		}
		if s > wmax {
			wmax = s
		}
	}

	w0 := 0
	for v := 0; v < n; v++ {
		if part[v] == 0 {
			w0 += g.VWgt[v]
		}
	}

	type move struct{ v, gain int }
	const maxPasses = 6
	for pass := 0; pass < maxPasses; pass++ {
		side := [2]*gainBuckets{newGainBuckets(n, wmax), newGainBuckets(n, wmax)}
		for v := 0; v < n; v++ {
			adj, wgt := g.Neighbors(v)
			ed, id := 0, 0
			for i, u := range adj {
				if part[u] == part[v] {
					id += wgt[i]
				} else {
					ed += wgt[i]
				}
			}
			side[part[v]].Insert(v, ed-id)
		}
		if acct != nil {
			acct.Ops += float64(len(g.Adjncy) + 4*n)
			acct.Rand += float64(len(g.Adjncy))
		}

		var trail []move
		sumGain, bestSum, bestLen := 0, 0, 0
		negRun := 0
		for side[0].Len()+side[1].Len() > 0 {
			// Best balance-feasible move from either side.
			c0, c1 := side[0].PeekMax(), side[1].PeekMax()
			feas0 := c0 != -1 && w0-g.VWgt[c0] >= minW0
			feas1 := c1 != -1 && w0+g.VWgt[c1] <= maxW0
			var v, from int
			switch {
			case feas0 && feas1:
				if side[0].Gain(c0) >= side[1].Gain(c1) {
					v, from = c0, 0
				} else {
					v, from = c1, 1
				}
			case feas0:
				v, from = c0, 0
			case feas1:
				v, from = c1, 1
			default:
				// Neither side can move without breaking balance.
				goto done
			}
			{
				gain := side[from].Gain(v)
				side[from].Remove(v)
				part[v] = 1 - from
				if from == 0 {
					w0 -= g.VWgt[v]
				} else {
					w0 += g.VWgt[v]
				}
				adj, wgt := g.Neighbors(v)
				for i, u := range adj {
					// Unlocked neighbors shift by ±2w.
					for s := 0; s < 2; s++ {
						if side[s].Contains(u) {
							delta := 2 * wgt[i]
							if part[u] == part[v] {
								side[s].Update(u, side[s].Gain(u)-delta)
							} else {
								side[s].Update(u, side[s].Gain(u)+delta)
							}
						}
					}
				}
				if acct != nil {
					acct.Ops += float64(4 * len(adj))
					acct.Rand += float64(2 * len(adj))
				}
				sumGain += gain
				trail = append(trail, move{v, gain})
				if sumGain > bestSum {
					bestSum, bestLen = sumGain, len(trail)
				}
				if gain < 0 {
					negRun++
					if negRun > 64 {
						goto done // bounded hill climb
					}
				} else {
					negRun = 0
				}
			}
		}
	done:
		// Roll back past the best prefix.
		for i := len(trail) - 1; i >= bestLen; i-- {
			v := trail[i].v
			from := part[v]
			part[v] = 1 - from
			if from == 0 {
				w0 -= g.VWgt[v]
			} else {
				w0 += g.VWgt[v]
			}
		}
		if bestSum <= 0 {
			break
		}
	}
}
