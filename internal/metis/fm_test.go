package metis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpmetis/internal/graph"
	"gpmetis/internal/graph/gen"
)

func TestGainBucketsBasicOps(t *testing.T) {
	b := newGainBuckets(10, 5)
	if b.Len() != 0 || b.PeekMax() != -1 {
		t.Fatal("fresh buckets should be empty")
	}
	b.Insert(3, 2)
	b.Insert(7, -4)
	b.Insert(1, 5)
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3", b.Len())
	}
	if got := b.PeekMax(); got != 1 {
		t.Errorf("PeekMax = %d, want 1 (gain 5)", got)
	}
	b.Remove(1)
	if got := b.PeekMax(); got != 3 {
		t.Errorf("PeekMax after removal = %d, want 3", got)
	}
	b.Update(7, 4)
	if got := b.PeekMax(); got != 7 {
		t.Errorf("PeekMax after update = %d, want 7", got)
	}
	if !b.Contains(7) || b.Contains(1) {
		t.Error("Contains wrong")
	}
	if b.Gain(7) != 4 {
		t.Errorf("Gain = %d, want 4", b.Gain(7))
	}
	b.Remove(1) // removing an absent vertex is a no-op
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
}

func TestGainBucketsInsertTwicePanics(t *testing.T) {
	b := newGainBuckets(4, 3)
	b.Insert(0, 1)
	defer func() {
		if recover() == nil {
			t.Error("double insert should panic")
		}
	}()
	b.Insert(0, 2)
}

func TestGainBucketsSameGainChain(t *testing.T) {
	// Multiple vertices at the same gain exercise the linked-list paths.
	b := newGainBuckets(6, 2)
	for v := 0; v < 6; v++ {
		b.Insert(v, 1)
	}
	// Remove from middle, head, and tail of the chain.
	b.Remove(2)
	b.Remove(5) // most recently inserted = head
	b.Remove(0) // first inserted = tail
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	seen := map[int]bool{}
	for b.Len() > 0 {
		v := b.PeekMax()
		if v == -1 || seen[v] {
			t.Fatal("chain corrupted")
		}
		seen[v] = true
		b.Remove(v)
	}
	for _, v := range []int{1, 3, 4} {
		if !seen[v] {
			t.Errorf("vertex %d lost from chain", v)
		}
	}
}

func TestRefineBisectionFMImprovesCut(t *testing.T) {
	g := mustGrid(t, 24, 24)
	rng := rand.New(rand.NewSource(8))
	part := make([]int, g.NumVertices())
	w := 0
	for v := range part {
		part[v] = rng.Intn(2)
		if part[v] == 0 {
			w++
		}
	}
	before := graph.EdgeCut(g, part)
	RefineBisectionFM(g, part, 0.5, 1.05, nil)
	after := graph.EdgeCut(g, part)
	if after >= before {
		t.Errorf("FM did not improve the cut: %d -> %d", before, after)
	}
	if imb := graph.Imbalance(g, part, 2); imb > 1.1 {
		t.Errorf("FM broke balance: %g", imb)
	}
	// A random bisection of a 24x24 grid cuts ~550; FM from random should
	// land far below half of that.
	if after > before/2 {
		t.Errorf("FM result %d not much better than random %d", after, before)
	}
}

func TestRefineBisectionFMRespectsWeights(t *testing.T) {
	// One very heavy vertex: FM must keep the sides within the weighted
	// balance bound.
	b := graph.NewBuilder(10)
	for v := 0; v < 9; v++ {
		if err := b.AddEdge(v, v+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.SetVertexWeight(0, 8); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	part := make([]int, 10)
	for v := 5; v < 10; v++ {
		part[v] = 1
	}
	RefineBisectionFM(g, part, 0.5, 1.2, nil)
	if imb := graph.Imbalance(g, part, 2); imb > 1.45 {
		t.Errorf("imbalance %g after FM with heavy vertex", imb)
	}
}

func TestRefineBisectionFMEmptyAndTiny(t *testing.T) {
	empty := graph.NewBuilder(0).MustBuild()
	RefineBisectionFM(empty, nil, 0.5, 1.03, nil) // must not panic
	single := graph.NewBuilder(1).MustBuild()
	part := []int{0}
	RefineBisectionFM(single, part, 0.5, 1.03, nil)
	if part[0] != 0 && part[0] != 1 {
		t.Error("single vertex corrupted")
	}
}

// Property: FM never worsens the cut and never breaks a generous balance
// bound, starting from any random bisection of a random graph.
func TestRefineBisectionFMProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := 16 + int(szRaw)%120
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			if err := b.AddEdge(rng.Intn(v), v, 1+rng.Intn(4)); err != nil {
				return false
			}
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				if err := b.AddEdge(u, v, 1+rng.Intn(4)); err != nil {
					return false
				}
			}
		}
		g := b.MustBuild()
		part := make([]int, n)
		for v := range part {
			part[v] = rng.Intn(2)
		}
		before := graph.EdgeCut(g, part)
		RefineBisectionFM(g, part, 0.5, 1.1, nil)
		after := graph.EdgeCut(g, part)
		if err := graph.CheckPartition(g, part, 2); err != nil {
			// A one-sided random start may legitimately stay one-sided
			// only when n < 2, which cannot happen here.
			return false
		}
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// FM and the linear-scan refiner should reach comparable quality; FM is
// the asymptotically right structure.
func TestFMComparableToLinearRefiner(t *testing.T) {
	g, err := gen.Delaunay(2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	mk := func() []int {
		p := make([]int, g.NumVertices())
		r2 := rand.New(rand.NewSource(77))
		for v := range p {
			p[v] = r2.Intn(2)
		}
		return p
	}
	_ = rng
	linear := mk()
	RefineBisection(g, linear, 0.5, 1.05, nil)
	fm := mk()
	RefineBisectionFM(g, fm, 0.5, 1.05, nil)
	lc, fc := graph.EdgeCut(g, linear), graph.EdgeCut(g, fm)
	if float64(fc) > 2.0*float64(lc)+50 {
		t.Errorf("FM cut %d far worse than linear refiner %d", fc, lc)
	}
}
