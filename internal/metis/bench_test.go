package metis

import (
	"math/rand"
	"testing"

	"gpmetis/internal/graph/gen"
	"gpmetis/internal/perfmodel"
)

func BenchmarkMatchHEM(b *testing.B) {
	g, err := gen.Delaunay(50_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Match(g, HEM, 0, rng, nil)
	}
}

func BenchmarkContract(b *testing.B) {
	g, err := gen.Delaunay(50_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	match := Match(g, HEM, 0, rng, nil)
	cmap, cn := BuildCMap(match, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Contract(g, match, cmap, cn, nil)
	}
}

func BenchmarkKWayRefine(b *testing.B) {
	g, err := gen.Delaunay(50_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	base, err := Partition(g, 16, DefaultOptions(), perfmodel.Default())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	part := make([]int, len(base.Part))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(part, base.Part)
		KWayRefine(g, part, 16, 1.03, 4, rng, nil)
	}
}

func BenchmarkPartitionSerial(b *testing.B) {
	g, err := gen.Delaunay(20_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	m := perfmodel.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(g, 64, DefaultOptions(), m); err != nil {
			b.Fatal(err)
		}
	}
}
