package metis

import (
	"math/rand"
	"sort"

	"gpmetis/internal/graph"
	"gpmetis/internal/perfmodel"
)

// RefineBisection improves a 2-way partition with the boundary
// Kernighan-Lin / Fiduccia-Mattheyses heuristic (Section II.A.3): move
// boundary vertices between the two sides in best-gain-first order with
// hill-climbing and rollback to the best prefix, while keeping the sides
// within the balance bound. part is modified in place.
func RefineBisection(g *graph.Graph, part []int, frac0, ubfactor float64, acct *perfmodel.ThreadCost) {
	n := g.NumVertices()
	totalW := g.TotalVertexWeight()
	target0 := frac0 * float64(totalW)
	maxW0 := int(target0 * ubfactor)
	minW0 := int(target0 * (2 - ubfactor))

	w0 := 0
	for v := 0; v < n; v++ {
		if part[v] == 0 {
			w0 += g.VWgt[v]
		}
	}

	// ed/id: external/internal degree of each vertex.
	ed := make([]int, n)
	id := make([]int, n)
	locked := make([]bool, n)
	type move struct{ v, gain int }

	const maxPasses = 6
	for pass := 0; pass < maxPasses; pass++ {
		for v := 0; v < n; v++ {
			ed[v], id[v] = 0, 0
			locked[v] = false
			adj, wgt := g.Neighbors(v)
			for i, u := range adj {
				if part[u] == part[v] {
					id[v] += wgt[i]
				} else {
					ed[v] += wgt[i]
				}
			}
		}
		if acct != nil {
			acct.Ops += float64(len(g.Adjncy))
			acct.Rand += float64(len(g.Adjncy))
		}

		var trail []move
		sumGain, bestSum, bestLen := 0, 0, 0
		// One FM pass: up to n moves with rollback.
		limit := n
		if limit > 4096 {
			limit = 4096 // bound hill-climb length on large graphs
		}
		for step := 0; step < limit; step++ {
			// Select the best movable boundary vertex by linear scan.
			best, bestGain := -1, 0
			for v := 0; v < n; v++ {
				if locked[v] || ed[v] == 0 {
					continue
				}
				// Balance feasibility of moving v to the other side.
				var nw0 int
				if part[v] == 0 {
					nw0 = w0 - g.VWgt[v]
				} else {
					nw0 = w0 + g.VWgt[v]
				}
				if nw0 > maxW0 || nw0 < minW0 {
					continue
				}
				if gain := ed[v] - id[v]; best == -1 || gain > bestGain {
					best, bestGain = v, gain
				}
			}
			if acct != nil {
				acct.Ops += float64(n)
			}
			if best == -1 || (bestGain < 0 && len(trail) > 64) {
				break
			}
			v := best
			locked[v] = true
			from := part[v]
			part[v] = 1 - from
			if from == 0 {
				w0 -= g.VWgt[v]
			} else {
				w0 += g.VWgt[v]
			}
			ed[v], id[v] = id[v], ed[v]
			adj, wgt := g.Neighbors(v)
			for i, u := range adj {
				if part[u] == part[v] {
					id[u] += wgt[i]
					ed[u] -= wgt[i]
				} else {
					id[u] -= wgt[i]
					ed[u] += wgt[i]
				}
			}
			if acct != nil {
				acct.Ops += float64(len(adj))
				acct.Rand += float64(2 * len(adj))
			}
			sumGain += bestGain
			trail = append(trail, move{v, bestGain})
			if sumGain > bestSum {
				bestSum, bestLen = sumGain, len(trail)
			}
		}
		// Roll back past the best prefix.
		for i := len(trail) - 1; i >= bestLen; i-- {
			v := trail[i].v
			from := part[v]
			part[v] = 1 - from
			if from == 0 {
				w0 -= g.VWgt[v]
			} else {
				w0 += g.VWgt[v]
			}
		}
		if bestSum <= 0 {
			break
		}
	}
}

// Project transfers the coarse partition to the finer graph through cmap
// (the projection step of Section II.A.3).
func Project(cmap []int, coarsePart []int, acct *perfmodel.ThreadCost) []int {
	part := make([]int, len(cmap))
	for v, cv := range cmap {
		part[v] = coarsePart[cv]
	}
	if acct != nil {
		acct.Ops += float64(len(cmap))
		acct.Rand += float64(len(cmap))
	}
	return part
}

// KWayRefine improves a k-way partition with Metis-style greedy boundary
// refinement: visit boundary vertices in random order, move each to the
// adjacent partition with the largest positive gain that keeps the
// balance bound, and repeat up to iters passes or until a pass commits no
// move. part is modified in place; the final edge cut is returned.
func KWayRefine(g *graph.Graph, part []int, k int, ubfactor float64, iters int, rng *rand.Rand, acct *perfmodel.ThreadCost) int {
	n := g.NumVertices()
	pw := graph.PartWeights(g, part, k)
	totalW := 0
	for _, w := range pw {
		totalW += w
	}
	maxPW := int(ubfactor * float64(totalW) / float64(k))
	if maxPW < 1 {
		maxPW = 1
	}

	// conn[p] accumulates v's connectivity to partition p during a scan.
	conn := make([]int, k)
	touched := make([]int, 0, 16)
	order := rng.Perm(n)

	for pass := 0; pass < iters; pass++ {
		moves := 0
		for _, v := range order {
			pv := part[v]
			adj, wgt := g.Neighbors(v)
			boundary := false
			for i, u := range adj {
				pu := part[u]
				if pu != pv {
					boundary = true
				}
				if conn[pu] == 0 {
					touched = append(touched, pu)
				}
				conn[pu] += wgt[i]
			}
			if acct != nil {
				acct.Ops += float64(len(adj) + 2)
				acct.Rand += float64(len(adj))
			}
			if boundary {
				bestP, bestGain := -1, 0
				for _, p := range touched {
					if p == pv {
						continue
					}
					if pw[p]+g.VWgt[v] > maxPW {
						continue
					}
					if gain := conn[p] - conn[pv]; gain > bestGain ||
						(gain == bestGain && bestP != -1 && pw[p] < pw[bestP]) {
						bestP, bestGain = p, gain
					}
				}
				if bestP != -1 && bestGain > 0 {
					part[v] = bestP
					pw[pv] -= g.VWgt[v]
					pw[bestP] += g.VWgt[v]
					moves++
				}
			}
			for _, p := range touched {
				conn[p] = 0
			}
			touched = touched[:0]
		}
		if moves == 0 {
			break
		}
	}
	return graph.EdgeCut(g, part)
}

// BalancePartition nudges an unbalanced k-way partition toward the bound
// by moving the cheapest boundary vertices out of overweight partitions.
// Used as a safety net after refinement when strict balance is required.
func BalancePartition(g *graph.Graph, part []int, k int, ubfactor float64, acct *perfmodel.ThreadCost) {
	pw := graph.PartWeights(g, part, k)
	totalW := 0
	for _, w := range pw {
		totalW += w
	}
	maxPW := int(ubfactor * float64(totalW) / float64(k))
	if maxPW < 1 {
		maxPW = 1
	}

	for p := 0; p < k; p++ {
		if pw[p] <= maxPW {
			continue
		}
		// Seed an eviction frontier with p's current boundary, best moves
		// first, then let it spread inward: evicting a vertex exposes its
		// p-neighbors as new boundary.
		var queue []int
		for v := 0; v < g.NumVertices(); v++ {
			if part[v] == p && graph.IsBoundary(g, part, v) {
				queue = append(queue, v)
			}
		}
		sort.Slice(queue, func(i, j int) bool {
			return bestMoveGain(g, part, queue[i]) > bestMoveGain(g, part, queue[j])
		})
		limit := 4 * g.NumVertices()
		for qi := 0; qi < len(queue) && qi < limit && pw[p] > maxPW; qi++ {
			v := queue[qi]
			if part[v] != p {
				continue
			}
			to := bestMoveTarget(g, part, pw, maxPW, v)
			if to == -1 {
				// No adjacent partition can take v; as a last resort send
				// it to the lightest feasible partition so the balance
				// bound always wins over cut quality, as in Metis.
				to = lightestFeasible(pw, maxPW, g.VWgt[v], p)
				if to == -1 {
					continue
				}
			}
			pw[p] -= g.VWgt[v]
			pw[to] += g.VWgt[v]
			part[v] = to
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if part[u] == p {
					queue = append(queue, u)
				}
			}
		}
		if acct != nil {
			acct.Ops += float64(g.NumVertices() + 8*len(queue))
			acct.Rand += float64(8 * len(queue))
		}
	}
}

func bestMoveGain(g *graph.Graph, part []int, v int) int {
	best := -1 << 62
	adj, _ := g.Neighbors(v)
	for _, u := range adj {
		if part[u] != part[v] {
			if gain := graph.Gain(g, part, v, part[u]); gain > best {
				best = gain
			}
		}
	}
	return best
}

// lightestFeasible returns the partition (other than from) with the
// smallest weight that can absorb vw without breaking the bound, or -1.
func lightestFeasible(pw []int, maxPW, vw, from int) int {
	best := -1
	for p, w := range pw {
		if p == from || w+vw > maxPW {
			continue
		}
		if best == -1 || w < pw[best] {
			best = p
		}
	}
	return best
}

func bestMoveTarget(g *graph.Graph, part, pw []int, maxPW, v int) int {
	bestP, bestGain := -1, -1<<62
	adj, _ := g.Neighbors(v)
	for _, u := range adj {
		p := part[u]
		if p == part[v] || pw[p]+g.VWgt[v] > maxPW {
			continue
		}
		if gain := graph.Gain(g, part, v, p); gain > bestGain {
			bestP, bestGain = p, gain
		}
	}
	return bestP
}
