package metis

import (
	"math/rand"

	"gpmetis/internal/graph"
	"gpmetis/internal/perfmodel"
)

// Level is one rung of the multilevel hierarchy: the coarser graph plus
// the mapping that projects it back to the finer graph.
type Level struct {
	// Fine is the graph that was coarsened.
	Fine *graph.Graph
	// CMap maps each fine vertex to its coarse vertex.
	CMap []int
	// Coarse is the contracted graph.
	Coarse *graph.Graph
}

// Match computes a matching of g under the given policy: match[v] is the
// vertex v is collapsed with (match[v] == v when unmatched). Vertices are
// visited in a seeded random order, as Metis does. Pairs whose combined
// vertex weight exceeds maxVWgt are not matched (Metis's maxvwgt rule,
// which keeps coarse vertices light enough for the balance bound);
// maxVWgt <= 0 disables the cap. The cost of the scan is accumulated into
// acct when non-nil.
func Match(g *graph.Graph, kind MatchingKind, maxVWgt int, rng *rand.Rand, acct *perfmodel.ThreadCost) []int {
	n := g.NumVertices()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		adj, wgt := g.Neighbors(v)
		best := -1
		eligible := func(u int) bool {
			return match[u] == -1 && (maxVWgt <= 0 || g.VWgt[v]+g.VWgt[u] <= maxVWgt)
		}
		switch kind {
		case HEM:
			bestW := -1
			for i, u := range adj {
				if eligible(u) && wgt[i] > bestW {
					best, bestW = u, wgt[i]
				}
			}
		case RM:
			// Reservoir-sample an eligible neighbor.
			cnt := 0
			for _, u := range adj {
				if eligible(u) {
					cnt++
					if rng.Intn(cnt) == 0 {
						best = u
					}
				}
			}
		}
		if acct != nil {
			acct.Ops += float64(len(adj) + 2)
			acct.Rand += float64(len(adj))
		}
		if best == -1 {
			match[v] = v
		} else {
			match[v] = best
			match[best] = v
		}
	}
	return match
}

// BuildCMap numbers the coarse vertices given a matching: the pair
// (v, match[v]) gets one coarse id, assigned in increasing order of the
// smaller endpoint. Returns the cmap and the coarse vertex count.
func BuildCMap(match []int, acct *perfmodel.ThreadCost) ([]int, int) {
	n := len(match)
	cmap := make([]int, n)
	next := 0
	for v := 0; v < n; v++ {
		if match[v] >= v { // v is the pair's representative (or self-matched)
			cmap[v] = next
			cmap[match[v]] = next
			next++
		}
	}
	if acct != nil {
		acct.Ops += float64(2 * n)
		acct.SeqBytes += float64(8 * n)
	}
	return cmap, next
}

// Contract builds the coarser graph from a matching: collapsed pairs sum
// their vertex weights, and parallel edges created by the collapse merge
// by summing weights (paper Section II.A.1). Uses the dense-marker merge
// that serial Metis uses.
func Contract(g *graph.Graph, match, cmap []int, coarseN int, acct *perfmodel.ThreadCost) *graph.Graph {
	n := g.NumVertices()
	cg := &graph.Graph{
		XAdj: make([]int, coarseN+1),
		VWgt: make([]int, coarseN),
	}
	// marker[c] = index into the coarse adjacency being assembled for the
	// current coarse vertex, or -1.
	marker := make([]int, coarseN)
	for i := range marker {
		marker[i] = -1
	}
	adjBuf := make([]int, 0, g.MaxDegree()*2)
	wgtBuf := make([]int, 0, cap(adjBuf))
	var adjncy, adjwgt []int

	appendVertex := func(cv int, members ...int) {
		start := len(adjncy)
		adjBuf = adjBuf[:0]
		wgtBuf = wgtBuf[:0]
		vw := 0
		for _, v := range members {
			vw += g.VWgt[v]
			adj, wgt := g.Neighbors(v)
			for i, u := range adj {
				cu := cmap[u]
				if cu == cv {
					continue // internal pair edge disappears
				}
				if m := marker[cu]; m >= 0 {
					wgtBuf[m] += wgt[i]
				} else {
					marker[cu] = len(adjBuf)
					adjBuf = append(adjBuf, cu)
					wgtBuf = append(wgtBuf, wgt[i])
				}
			}
			if acct != nil {
				acct.Ops += float64(len(adj) + 1)
				acct.Rand += float64(2 * len(adj))
			}
		}
		for _, cu := range adjBuf {
			marker[cu] = -1
		}
		cg.VWgt[cv] = vw
		adjncy = append(adjncy, adjBuf...)
		adjwgt = append(adjwgt, wgtBuf...)
		cg.XAdj[cv+1] = start + len(adjBuf)
	}

	for v := 0; v < n; v++ {
		if match[v] < v {
			continue // handled by its partner
		}
		cv := cmap[v]
		if match[v] == v {
			appendVertex(cv, v)
		} else {
			appendVertex(cv, v, match[v])
		}
	}
	cg.Adjncy = adjncy
	cg.AdjWgt = adjwgt
	return cg
}

// MaxVertexWeight returns Metis's maxvwgt cap: 1.5 times the average
// vertex weight the coarsest graph would have at the CoarsenTo*k target,
// so no collapsed vertex can outweigh the balance tolerance of a final
// partition.
func MaxVertexWeight(g *graph.Graph, k, coarsenTo int) int {
	target := coarsenTo * k
	if target < 1 {
		target = 1
	}
	limit := 3 * g.TotalVertexWeight() / (2 * target)
	if limit < 2 {
		limit = 2
	}
	return limit
}

// Coarsen runs matching+contraction levels until the graph has at most
// coarsenTo vertices or a level fails to shrink the graph by at least 10%
// (the stall criterion from Section II.A.1). It returns the hierarchy,
// finest first, and appends per-level phases to tl.
func Coarsen(g *graph.Graph, o Options, k int, m *perfmodel.Machine, tl *perfmodel.Timeline) []Level {
	rng := rand.New(rand.NewSource(o.Seed))
	var levels []Level
	target := o.CoarsenTo * k
	maxVWgt := MaxVertexWeight(g, k, o.CoarsenTo)
	cur := g
	for cur.NumVertices() > target {
		var acct perfmodel.ThreadCost
		match := Match(cur, o.Matching, maxVWgt, rng, &acct)
		cmap, coarseN := BuildCMap(match, &acct)
		if float64(coarseN) > 0.9*float64(cur.NumVertices()) {
			// Matching stalled; further levels would spin.
			break
		}
		cg := Contract(cur, match, cmap, coarseN, &acct)
		tl.Append("coarsen", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{acct}))
		levels = append(levels, Level{Fine: cur, CMap: cmap, Coarse: cg})
		cur = cg
	}
	return levels
}
