package graph

import "fmt"

// InducedSubgraph returns the subgraph induced by the given vertices
// (which must be distinct and in range) along with the slice mapping each
// subgraph vertex back to its original id. Edges to vertices outside the
// selection are dropped.
func InducedSubgraph(g *Graph, vs []int) (*Graph, []int, error) {
	inv := make(map[int]int, len(vs))
	for i, v := range vs {
		if v < 0 || v >= g.NumVertices() {
			return nil, nil, fmt.Errorf("graph: InducedSubgraph: vertex %d out of range", v)
		}
		if _, dup := inv[v]; dup {
			return nil, nil, fmt.Errorf("graph: InducedSubgraph: duplicate vertex %d", v)
		}
		inv[v] = i
	}
	sub := &Graph{
		XAdj: make([]int, len(vs)+1),
		VWgt: make([]int, len(vs)),
	}
	var adjncy, wgts []int
	for i, v := range vs {
		sub.VWgt[i] = g.VWgt[v]
		adj, wgt := g.Neighbors(v)
		for j, u := range adj {
			if iu, ok := inv[u]; ok {
				adjncy = append(adjncy, iu)
				wgts = append(wgts, wgt[j])
			}
		}
		sub.XAdj[i+1] = len(adjncy)
	}
	sub.Adjncy = adjncy
	sub.AdjWgt = wgts
	orig := make([]int, len(vs))
	copy(orig, vs)
	return sub, orig, nil
}
