package gio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpmetis/internal/graph"
)

// ReadGR parses the DIMACS9 shortest-path challenge ".gr" format, the
// native format of the paper's USA road network input:
//
//	c comment
//	p sp <n> <m>
//	a <u> <v> <w>    (1-indexed directed arc)
//
// Road graphs list both arc directions; ReadGR merges them into one
// undirected edge (keeping the minimum weight when the directions
// disagree) and drops self loops, which is how partitioners consume these
// files.
func ReadGR(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *graph.Builder
	n := -1
	type key struct{ u, v int }
	weights := map[key]int{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		switch line[0] {
		case 'p':
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("gio: malformed problem line %q", line)
			}
			var err error
			n, err = strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("gio: bad vertex count in %q", line)
			}
			if n > MaxVertices {
				return nil, fmt.Errorf("gio: vertex count %d exceeds limit %d", n, MaxVertices)
			}
			b = graph.NewBuilder(n)
		case 'a':
			if b == nil {
				return nil, fmt.Errorf("gio: arc before problem line: %q", line)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("gio: malformed arc line %q", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("gio: malformed arc line %q", line)
			}
			if u < 1 || u > n || v < 1 || v > n {
				return nil, fmt.Errorf("gio: arc endpoint out of range in %q", line)
			}
			if u == v {
				continue // self loops are meaningless for partitioning
			}
			if w < 1 {
				w = 1
			}
			a, c := u-1, v-1
			if a > c {
				a, c = c, a
			}
			k := key{a, c}
			if old, ok := weights[k]; !ok || w < old {
				weights[k] = w
			}
		default:
			return nil, fmt.Errorf("gio: unknown line type %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("gio: missing problem line")
	}
	for k, w := range weights {
		if err := b.AddEdge(k.u, k.v, w); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
