package gio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"gpmetis/internal/graph"
	"gpmetis/internal/graph/gen"
)

func TestReadPlain(t *testing.T) {
	// The classic 7-vertex example from the Metis manual.
	in := `% a comment
7 11
5 3 2
1 3 4
5 4 2 1
2 3 6 7
1 3 6
5 4 7
6 4
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 7 || g.NumEdges() != 11 {
		t.Fatalf("got %v, want V=7 E=11", g)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if !g.HasEdge(0, 4) || !g.HasEdge(3, 6) || g.HasEdge(0, 6) {
		t.Error("adjacency mismatch")
	}
}

func TestReadWeighted(t *testing.T) {
	in := `3 2 011
4 2 7
6 1 7 3 2
9 2 2
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.VWgt[0] != 4 || g.VWgt[1] != 6 || g.VWgt[2] != 9 {
		t.Errorf("vertex weights = %v", g.VWgt)
	}
	if g.EdgeWeight(0, 1) != 7 || g.EdgeWeight(1, 2) != 2 {
		t.Error("edge weights wrong")
	}
}

func TestReadVertexWeightsOnly(t *testing.T) {
	in := `2 1 010
5 2
3 1
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.VWgt[0] != 5 || g.VWgt[1] != 3 {
		t.Errorf("vertex weights = %v", g.VWgt)
	}
	if g.EdgeWeight(0, 1) != 1 {
		t.Error("edge weight should default to 1")
	}
}

func TestReadIsolatedVertexBlankLine(t *testing.T) {
	in := "3 1\n2\n1\n\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(2) != 0 {
		t.Errorf("vertex 3 should be isolated, degree %d", g.Degree(2))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"header too long", "1 2 3 4 5\n"},
		{"negative n", "-1 0\n"},
		{"vertex sizes unsupported", "2 1 100\n2\n1\n"},
		{"multiconstraint unsupported", "2 1 010 2\n1 2\n1 1\n"},
		{"neighbor out of range", "2 1\n3\n1\n"},
		{"self loop", "1 1\n1\n"},
		{"bad neighbor token", "2 1\nx\n1\n"},
		{"missing edge weight", "2 1 001\n2\n1 5\n"},
		{"bad vertex weight", "2 1 010\nx 2\n1 1\n"},
		{"truncated", "3 2\n2\n"},
		{"edge count mismatch", "2 5\n2\n1\n"},
	}
	for _, tc := range cases {
		if _, err := Read(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: Read should fail", tc.name)
		}
	}
}

func TestRoundTripPlain(t *testing.T) {
	g, err := gen.Grid2D(6, 7)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, g)
}

func TestRoundTripWeighted(t *testing.T) {
	b := graph.NewBuilder(5)
	edges := [][3]int{{0, 1, 3}, {1, 2, 1}, {2, 3, 9}, {3, 4, 2}, {0, 4, 4}}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1], e[2]); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < 5; v++ {
		if err := b.SetVertexWeight(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip(t, b.MustBuild())
}

func TestRoundTripDelaunay(t *testing.T) {
	g, err := gen.Delaunay(300, 4)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, g)
}

func roundTrip(t *testing.T, g *graph.Graph) {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read after Write: %v", err)
	}
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %v -> %v", g, h)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if h.VWgt[v] != g.VWgt[v] {
			t.Fatalf("vertex %d weight changed: %d -> %d", v, g.VWgt[v], h.VWgt[v])
		}
		adj, wgt := g.Neighbors(v)
		for i, u := range adj {
			if h.EdgeWeight(v, u) != wgt[i] {
				t.Fatalf("edge (%d,%d) weight changed", v, u)
			}
		}
	}
}

func TestReadGR(t *testing.T) {
	in := `c USA-road-d style file
p sp 4 5
a 1 2 10
a 2 1 10
a 2 3 7
a 3 2 5
a 1 1 3
`
	g, err := ReadGR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Errorf("V = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Errorf("E = %d, want 2 (arcs merged, self loop dropped)", g.NumEdges())
	}
	if w := g.EdgeWeight(1, 2); w != 5 {
		t.Errorf("asymmetric arc weights should keep the minimum: got %d", w)
	}
	if g.Degree(3) != 0 {
		t.Error("vertex 4 should be isolated")
	}
}

func TestReadGRErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"arc before header", "a 1 2 3\n"},
		{"bad problem line", "p xx 3 3\n"},
		{"short problem line", "p sp 3\n"},
		{"bad vertex count", "p sp x 3\n"},
		{"short arc", "p sp 2 1\na 1 2\n"},
		{"arc out of range", "p sp 2 1\na 1 9 5\n"},
		{"bad arc token", "p sp 2 1\na 1 x 5\n"},
		{"unknown line", "p sp 2 1\nz whatever\n"},
		{"no header", "c just a comment\n"},
	}
	for _, tc := range cases {
		if _, err := ReadGR(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: ReadGR should fail", tc.name)
		}
	}
}

// Property: the parsers never panic on arbitrary input — they either
// return a graph or an error.
func TestParsersNeverPanicProperty(t *testing.T) {
	f := func(junk []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Read panicked on %q: %v", junk, r)
			}
		}()
		_, _ = Read(bytes.NewReader(junk))
		_, _ = ReadGR(bytes.NewReader(junk))
		_, _, _ = ReadPartition(bytes.NewReader(junk))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// A few adversarial shapes that random bytes rarely hit.
	for _, s := range []string{
		"7 11\n", "2 1\n2 2 2\n1\n", "p sp 1 0\n", "1 0 011\n\n",
		"3 0\n\n\n\n", "1 1 001\n", "2 1\n02\n01\n",
	} {
		_, _ = Read(strings.NewReader(s))
		_, _ = ReadGR(strings.NewReader(s))
	}
}
