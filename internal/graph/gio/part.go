package gio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePartition serializes a partition vector in the Metis .part format:
// one partition id per line, in vertex order.
func WritePartition(w io.Writer, part []int) error {
	bw := bufio.NewWriter(w)
	for _, p := range part {
		if _, err := fmt.Fprintln(bw, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPartition parses a Metis .part file into a partition vector and
// also returns k, one more than the largest id seen.
func ReadPartition(r io.Reader) (part []int, k int, err error) {
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		p, err := strconv.Atoi(text)
		if err != nil {
			return nil, 0, fmt.Errorf("gio: partition line %d: %q is not an integer", line, text)
		}
		if p < 0 {
			return nil, 0, fmt.Errorf("gio: partition line %d: negative id %d", line, p)
		}
		part = append(part, p)
		if p+1 > k {
			k = p + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return part, k, nil
}
