package gio

import (
	"bytes"
	"strings"
	"testing"
)

// limitSizes lowers the header caps for the duration of a fuzz target so
// mutated headers cannot allocate gigabytes before any adjacency data is
// read.
func limitSizes(f *testing.F) {
	oldV, oldE := MaxVertices, MaxEdges
	MaxVertices, MaxEdges = 1<<12, 1<<14
	f.Cleanup(func() { MaxVertices, MaxEdges = oldV, oldE })
}

// FuzzRead checks the reader's contract on arbitrary bytes: it returns a
// valid graph or an error, and never panics. Accepted graphs must pass
// Validate and survive a Write/Read round trip unchanged.
func FuzzRead(f *testing.F) {
	limitSizes(f)
	for _, seed := range []string{
		// Valid inputs across the format's feature matrix.
		"7 11\n5 3 2\n1 3 4\n5 4 2 1\n2 3 6 7\n1 3 6\n5 4 7\n6 4\n",
		"3 2 011\n4 2 7\n6 1 7 3 2\n9 2 2\n",
		"2 1 010\n5 2\n3 1\n",
		"3 1\n2\n1\n\n",
		"0 0\n",
		// Known-rejected shapes, to seed the error paths.
		"2 1\n3\n1\n",           // neighbor out of range
		"2 5\n2\n1\n",           // edge count mismatch
		"2 1 001\n2 5\n1 7\n",   // asymmetric weights
		"2 1\n2\n\n",            // one-sided listing
		"2 1\n2 2\n1\n",         // duplicate neighbor
		"1 0\n1\n",              // self loop
		"999999999 0\n",         // header over the size cap
		"2 1 100\n2\n1\n",       // unsupported vertex sizes
		"% c\n\n2 1\n02\n01\n",  // comments, blanks, leading zeros
		"2 1 001\n2 -3\n1 -3\n", // non-positive edge weight
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid graph: %v", verr)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, g); werr != nil {
			t.Fatalf("Write failed on accepted graph: %v", werr)
		}
		h, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("Read rejected its own Write output: %v", rerr)
		}
		if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed size: %v -> %v", g, h)
		}
	})
}

// FuzzReadGR does the same for the DIMACS9 .gr reader.
func FuzzReadGR(f *testing.F) {
	limitSizes(f)
	for _, seed := range []string{
		"c comment\np sp 4 5\na 1 2 10\na 2 1 10\na 2 3 7\na 3 2 5\na 1 1 3\n",
		"p sp 2 1\na 1 2 1\na 2 1 1\n",
		"p sp 0 0\n",
		"a 1 2 3\n",
		"p sp 999999999 1\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadGR(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("ReadGR accepted an invalid graph: %v", verr)
		}
	})
}

// TestReadRejectsCorruptAdjacency pins the reader's hardened rejections:
// every class of inconsistency between a line and the rest of the file is
// an error, not a silently-patched graph.
func TestReadRejectsCorruptAdjacency(t *testing.T) {
	cases := []struct{ name, in, wantSub string }{
		{"one-sided edge", "2 1\n2\n\n", "listed by vertex"},
		{"one-sided from upper", "2 1\n\n1\n", "listed by vertex"},
		{"asymmetric weights", "2 1 001\n2 5\n1 7\n", "asymmetric weights"},
		{"duplicate neighbor", "3 2\n2 2\n1 1\n\n", "duplicate neighbor"},
		{"self loop", "1 1\n1\n", "self loop"},
		{"vertex count over cap", "999999999999 0\n", "exceeds limit"},
		{"edge count over cap", "2 999999999999\n2\n1\n", "exceeds limit"},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: Read should fail", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}
