// Package gio reads and writes graphs in the Chaco/Metis text format used
// by the DIMACS challenges the paper takes its inputs from, so real
// "ldoor"/"delaunay_n20"/"hugebubbles"/"USA-road" files can be fed to the
// partitioners when available.
//
// Format: the header line is "n m [fmt]" where fmt's last two digits
// enable vertex weights (10) and edge weights (01). Each following
// non-comment line i lists vertex i's neighbors, 1-indexed, each preceded
// by the edge weight when enabled; the whole line is preceded by the
// vertex weight when enabled. Lines starting with '%' are comments.
package gio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpmetis/internal/graph"
)

// MaxVertices and MaxEdges bound the header counts Read and ReadGR
// accept, so a malicious or corrupt header cannot force a huge
// allocation before any adjacency data is seen. Variables (not
// constants) so tests and fuzzing can lower them.
var (
	MaxVertices = 1 << 27
	MaxEdges    = 1 << 29
)

// Read parses a Chaco/Metis format graph. Malformed input — out-of-range
// or duplicate neighbors, self loops, one-sided arc listings, asymmetric
// edge weights, or a header edge count that disagrees with the file —
// yields an error, never a panic.
func Read(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("gio: missing header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields) > 4 {
		return nil, fmt.Errorf("gio: malformed header %q", line)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("gio: bad vertex count %q", fields[0])
	}
	if n > MaxVertices {
		return nil, fmt.Errorf("gio: vertex count %d exceeds limit %d", n, MaxVertices)
	}
	m, err := strconv.Atoi(fields[1])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("gio: bad edge count %q", fields[1])
	}
	if m > MaxEdges {
		return nil, fmt.Errorf("gio: edge count %d exceeds limit %d", m, MaxEdges)
	}
	hasVWgt, hasEWgt := false, false
	ncon := 0
	if len(fields) >= 3 {
		f := fields[2]
		if len(f) > 3 {
			return nil, fmt.Errorf("gio: unsupported fmt field %q", f)
		}
		for len(f) < 3 {
			f = "0" + f
		}
		if f[0] == '1' {
			return nil, fmt.Errorf("gio: vertex sizes (fmt %q) are not supported", fields[2])
		}
		hasVWgt = f[1] == '1'
		hasEWgt = f[2] == '1'
	}
	if len(fields) == 4 {
		ncon, err = strconv.Atoi(fields[3])
		if err != nil || ncon > 1 {
			return nil, fmt.Errorf("gio: multi-constraint graphs (ncon=%s) are not supported", fields[3])
		}
	}

	b := graph.NewBuilder(n)
	// arcs records every directed listing so one-sided edges, duplicate
	// neighbors, and asymmetric weights can be rejected after the scan.
	arcs := make(map[[2]int]int)
	for v := 0; v < n; v++ {
		line, err := nextLine(sc)
		if err != nil {
			return nil, fmt.Errorf("gio: vertex %d: %w", v+1, err)
		}
		toks := strings.Fields(line)
		i := 0
		if hasVWgt {
			if len(toks) == 0 {
				return nil, fmt.Errorf("gio: vertex %d: missing vertex weight", v+1)
			}
			w, err := strconv.Atoi(toks[0])
			if err != nil {
				return nil, fmt.Errorf("gio: vertex %d: bad vertex weight %q", v+1, toks[0])
			}
			if err := b.SetVertexWeight(v, w); err != nil {
				return nil, fmt.Errorf("gio: vertex %d: %w", v+1, err)
			}
			i = 1
		}
		for i < len(toks) {
			u, err := strconv.Atoi(toks[i])
			if err != nil {
				return nil, fmt.Errorf("gio: vertex %d: bad neighbor %q", v+1, toks[i])
			}
			if u < 1 || u > n {
				return nil, fmt.Errorf("gio: vertex %d: neighbor %d out of [1,%d]", v+1, u, n)
			}
			i++
			w := 1
			if hasEWgt {
				if i >= len(toks) {
					return nil, fmt.Errorf("gio: vertex %d: missing weight for neighbor %d", v+1, u)
				}
				w, err = strconv.Atoi(toks[i])
				if err != nil {
					return nil, fmt.Errorf("gio: vertex %d: bad edge weight %q", v+1, toks[i])
				}
				i++
			}
			if u-1 == v {
				return nil, fmt.Errorf("gio: vertex %d: self loop", v+1)
			}
			key := [2]int{v, u - 1}
			if _, dup := arcs[key]; dup {
				return nil, fmt.Errorf("gio: vertex %d: duplicate neighbor %d", v+1, u)
			}
			arcs[key] = w
			// Each undirected edge appears on both endpoint lines; add it
			// once from the lower endpoint.
			if u-1 > v {
				if err := b.AddEdge(v, u-1, w); err != nil {
					return nil, fmt.Errorf("gio: vertex %d: %w", v+1, err)
				}
			}
		}
	}
	for key, w := range arcs {
		rw, ok := arcs[[2]int{key[1], key[0]}]
		if !ok {
			return nil, fmt.Errorf("gio: edge %d-%d listed by vertex %d but not by vertex %d",
				key[0]+1, key[1]+1, key[0]+1, key[1]+1)
		}
		if rw != w {
			return nil, fmt.Errorf("gio: asymmetric weights for edge %d-%d: %d and %d",
				key[0]+1, key[1]+1, w, rw)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("gio: header declares %d edges, file has %d", m, g.NumEdges())
	}
	return g, nil
}

func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		// Blank lines are significant: they are the adjacency lists of
		// isolated vertices. Only comments are skipped.
		if strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// Write serializes g in Chaco/Metis format. Vertex weights are written
// only when some weight differs from 1; likewise edge weights.
func Write(w io.Writer, g *graph.Graph) error {
	hasVWgt, hasEWgt := false, false
	for _, x := range g.VWgt {
		if x != 1 {
			hasVWgt = true
			break
		}
	}
	for _, x := range g.AdjWgt {
		if x != 1 {
			hasEWgt = true
			break
		}
	}
	bw := bufio.NewWriter(w)
	fmtField := ""
	switch {
	case hasVWgt && hasEWgt:
		fmtField = " 011"
	case hasVWgt:
		fmtField = " 010"
	case hasEWgt:
		fmtField = " 001"
	}
	if _, err := fmt.Fprintf(bw, "%d %d%s\n", g.NumVertices(), g.NumEdges(), fmtField); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		first := true
		if hasVWgt {
			if _, err := fmt.Fprintf(bw, "%d", g.VWgt[v]); err != nil {
				return err
			}
			first = false
		}
		adj, wgt := g.Neighbors(v)
		for i, u := range adj {
			if !first {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			first = false
			if _, err := fmt.Fprintf(bw, "%d", u+1); err != nil {
				return err
			}
			if hasEWgt {
				if _, err := fmt.Fprintf(bw, " %d", wgt[i]); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
