package gio

import (
	"bytes"
	"strings"
	"testing"
)

func TestPartitionRoundTrip(t *testing.T) {
	part := []int{0, 3, 1, 1, 2, 0}
	var buf bytes.Buffer
	if err := WritePartition(&buf, part); err != nil {
		t.Fatal(err)
	}
	got, k, err := ReadPartition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Errorf("k = %d, want 4", k)
	}
	if len(got) != len(part) {
		t.Fatalf("len = %d, want %d", len(got), len(part))
	}
	for i := range part {
		if got[i] != part[i] {
			t.Fatalf("entry %d changed: %d -> %d", i, part[i], got[i])
		}
	}
}

func TestReadPartitionSkipsCommentsAndBlanks(t *testing.T) {
	in := "% header comment\n0\n\n1\n% trailing\n2\n"
	part, k, err := ReadPartition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 3 || k != 3 {
		t.Errorf("part=%v k=%d", part, k)
	}
}

func TestReadPartitionErrors(t *testing.T) {
	if _, _, err := ReadPartition(strings.NewReader("0\nx\n")); err == nil {
		t.Error("non-integer should fail")
	}
	if _, _, err := ReadPartition(strings.NewReader("-1\n")); err == nil {
		t.Error("negative id should fail")
	}
	part, k, err := ReadPartition(strings.NewReader(""))
	if err != nil || len(part) != 0 || k != 0 {
		t.Error("empty input should give empty partition")
	}
}
