package graph

import "sort"

// RCMOrder returns a reverse Cuthill-McKee permutation of g: perm[v] is
// v's new label. RCM clusters each vertex's neighbors into nearby labels,
// which shrinks matrix bandwidth and — relevant to the GPU partitioner —
// improves the locality of neighbor gathers. Disconnected components are
// ordered one after another, each from a minimum-degree seed.
func RCMOrder(g *Graph) []int {
	n := g.NumVertices()
	perm := make([]int, n)
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)

	// Vertices by increasing degree, used both to pick component seeds
	// and to enqueue neighbors in Cuthill-McKee's degree order.
	byDegree := make([]int, n)
	for i := range byDegree {
		byDegree[i] = i
	}
	sort.Slice(byDegree, func(a, b int) bool {
		da, db := g.Degree(byDegree[a]), g.Degree(byDegree[b])
		if da != db {
			return da < db
		}
		return byDegree[a] < byDegree[b]
	})

	nbuf := make([]int, 0, 64)
	for _, seed := range byDegree {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			adj, _ := g.Neighbors(v)
			nbuf = nbuf[:0]
			for _, u := range adj {
				if !visited[u] {
					visited[u] = true
					nbuf = append(nbuf, u)
				}
			}
			sort.Slice(nbuf, func(a, b int) bool {
				da, db := g.Degree(nbuf[a]), g.Degree(nbuf[b])
				if da != db {
					return da < db
				}
				return nbuf[a] < nbuf[b]
			})
			queue = append(queue, nbuf...)
		}
	}
	// Reverse (the "R" in RCM) and invert into a permutation.
	for i, v := range order {
		perm[v] = n - 1 - i
	}
	return perm
}

// Bandwidth returns the maximum |label(u) - label(v)| over all edges, the
// quantity RCM minimizes heuristically.
func Bandwidth(g *Graph) int {
	var bw int
	for v := 0; v < g.NumVertices(); v++ {
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			d := u - v
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
