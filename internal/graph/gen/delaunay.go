package gen

import (
	"fmt"
	"sort"

	"gpmetis/internal/graph"
)

// Delaunay generates the Delaunay triangulation of n uniform random points
// in the unit square using the Bowyer-Watson incremental algorithm with
// walk-based point location, and returns it as an undirected graph
// (triangulation edges, unit weights). This is the same construction as
// the DIMACS10 "delaunay_nXX" family the paper uses.
func Delaunay(n int, seed int64) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: Delaunay(%d): need at least 3 points", n)
	}
	r := rng(seed)
	px := make([]float64, n+3)
	py := make([]float64, n+3)
	for i := 0; i < n; i++ {
		px[i], py[i] = r.Float64(), r.Float64()
	}
	// Super-triangle comfortably containing the unit square.
	px[n], py[n] = -10, -10
	px[n+1], py[n+1] = 11, -10
	px[n+2], py[n+2] = 0.5, 12

	d := &delaunator{px: px, py: py, nReal: n}
	d.init(n, n+1, n+2)

	// Insert points in spatial cell order so the walking search starts
	// near its target: serpentine order over a sqrt(n)-cell grid.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	cells := isqrt(n)
	if cells < 1 {
		cells = 1
	}
	cellKey := func(i int) int {
		cx := int(px[i] * float64(cells))
		cy := int(py[i] * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		if cy%2 == 1 { // serpentine: reverse odd rows
			cx = cells - 1 - cx
		}
		return cy*cells + cx
	}
	sort.Slice(order, func(a, b int) bool { return cellKey(order[a]) < cellKey(order[b]) })

	for _, p := range order {
		if err := d.insert(p); err != nil {
			return nil, fmt.Errorf("gen: Delaunay: %w", err)
		}
	}

	b := graph.NewBuilder(n)
	for _, t := range d.tris {
		if !t.alive {
			continue
		}
		for e := 0; e < 3; e++ {
			u, v := t.v[(e+1)%3], t.v[(e+2)%3]
			if u >= n || v >= n || u > v {
				continue // skip super-triangle edges; add each edge once
			}
			if err := b.AddEdge(u, v, 1); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}

// tri is one triangle of the incremental triangulation. adj[i] is the
// index of the triangle sharing the edge opposite vertex v[i] (-1 at the
// super-triangle hull).
type tri struct {
	v     [3]int
	adj   [3]int
	alive bool
}

type delaunator struct {
	px, py []float64
	nReal  int
	tris   []tri
	last   int // a recently created triangle: walk start
	// scratch buffers reused across insertions
	cavity  []int
	stack   []int
	inCav   map[int]bool
	edgeTri map[[2]int]int
}

func (d *delaunator) init(a, b, c int) {
	// Ensure counter-clockwise orientation.
	if orient2d(d.px[a], d.py[a], d.px[b], d.py[b], d.px[c], d.py[c]) < 0 {
		b, c = c, b
	}
	d.tris = append(d.tris, tri{v: [3]int{a, b, c}, adj: [3]int{-1, -1, -1}, alive: true})
	d.last = 0
	d.inCav = make(map[int]bool)
	d.edgeTri = make(map[[2]int]int)
}

// orient2d returns > 0 when (a,b,c) turn counter-clockwise.
func orient2d(ax, ay, bx, by, cx, cy float64) float64 {
	return (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
}

// inCircumcircle reports whether point p lies inside the circumcircle of
// the CCW triangle (a,b,c), via the standard lifted determinant.
func (d *delaunator) inCircumcircle(t *tri, p int) bool {
	a, b, c := t.v[0], t.v[1], t.v[2]
	ax, ay := d.px[a]-d.px[p], d.py[a]-d.py[p]
	bx, by := d.px[b]-d.px[p], d.py[b]-d.py[p]
	cx, cy := d.px[c]-d.px[p], d.py[c]-d.py[p]
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > 0
}

// locate walks from the last triangle to one containing point p.
func (d *delaunator) locate(p int) (int, error) {
	t := d.last
	if t < 0 || t >= len(d.tris) || !d.tris[t].alive {
		t = d.anyAlive()
	}
	for steps := 0; steps < 4*len(d.tris)+64; steps++ {
		tr := &d.tris[t]
		moved := false
		for e := 0; e < 3; e++ {
			u, v := tr.v[(e+1)%3], tr.v[(e+2)%3]
			if orient2d(d.px[u], d.py[u], d.px[v], d.py[v], d.px[p], d.py[p]) < 0 {
				nb := tr.adj[e]
				if nb >= 0 {
					t = nb
					moved = true
					break
				}
			}
		}
		if !moved {
			return t, nil
		}
	}
	// Degenerate walk (numerically stuck): linear fallback scan.
	for i := range d.tris {
		tr := &d.tris[i]
		if !tr.alive {
			continue
		}
		inside := true
		for e := 0; e < 3; e++ {
			u, v := tr.v[(e+1)%3], tr.v[(e+2)%3]
			if orient2d(d.px[u], d.py[u], d.px[v], d.py[v], d.px[p], d.py[p]) < 0 {
				inside = false
				break
			}
		}
		if inside {
			return i, nil
		}
	}
	return 0, fmt.Errorf("point %d not located in any triangle", p)
}

func (d *delaunator) anyAlive() int {
	for i := len(d.tris) - 1; i >= 0; i-- {
		if d.tris[i].alive {
			return i
		}
	}
	return 0
}

// insert adds point p via cavity retriangulation (Bowyer-Watson).
func (d *delaunator) insert(p int) error {
	t0, err := d.locate(p)
	if err != nil {
		return err
	}
	// Grow the cavity: all alive triangles whose circumcircle contains p,
	// connected to t0.
	d.cavity = d.cavity[:0]
	d.stack = append(d.stack[:0], t0)
	clear(d.inCav)
	d.inCav[t0] = true
	for len(d.stack) > 0 {
		t := d.stack[len(d.stack)-1]
		d.stack = d.stack[:len(d.stack)-1]
		d.cavity = append(d.cavity, t)
		for e := 0; e < 3; e++ {
			nb := d.tris[t].adj[e]
			if nb < 0 || d.inCav[nb] || !d.tris[nb].alive {
				continue
			}
			if d.inCircumcircle(&d.tris[nb], p) {
				d.inCav[nb] = true
				d.stack = append(d.stack, nb)
			}
		}
	}
	// Boundary edges of the cavity, with the outside triangle across each.
	type bedge struct{ u, v, outer int }
	var boundary []bedge
	for _, t := range d.cavity {
		tr := &d.tris[t]
		for e := 0; e < 3; e++ {
			nb := tr.adj[e]
			if nb >= 0 && d.inCav[nb] {
				continue
			}
			boundary = append(boundary, bedge{tr.v[(e+1)%3], tr.v[(e+2)%3], nb})
		}
	}
	if len(boundary) < 3 {
		return fmt.Errorf("degenerate cavity for point %d (%d boundary edges)", p, len(boundary))
	}
	for _, t := range d.cavity {
		d.tris[t].alive = false
	}
	// Fan p to each boundary edge. Cavity boundary edges are oriented CCW
	// as seen from inside the cavity, so (p,u,v) is CCW.
	clear(d.edgeTri)
	first := len(d.tris)
	for _, be := range boundary {
		idx := len(d.tris)
		d.tris = append(d.tris, tri{v: [3]int{p, be.u, be.v}, adj: [3]int{be.outer, -1, -1}, alive: true})
		// Fix the outer triangle's back pointer.
		if be.outer >= 0 {
			out := &d.tris[be.outer]
			for e := 0; e < 3; e++ {
				if (out.v[(e+1)%3] == be.v && out.v[(e+2)%3] == be.u) ||
					(out.v[(e+1)%3] == be.u && out.v[(e+2)%3] == be.v) {
					out.adj[e] = idx
				}
			}
		}
		d.edgeTri[[2]int{p, be.u}] = idx // edge opposite v[2]=be.v is (p,be.u)
		d.edgeTri[[2]int{be.v, p}] = idx // edge opposite v[1]=be.u is (be.v,p)
	}
	// Wire the new triangles to each other: triangle with edge (p,u) pairs
	// with the one holding (u,p).
	for i := first; i < len(d.tris); i++ {
		tr := &d.tris[i]
		u, v := tr.v[1], tr.v[2]
		// adj[1] is across edge (v,p); adj[2] is across edge (p,u).
		if nb, ok := d.edgeTri[[2]int{p, v}]; ok {
			tr.adj[1] = nb
		}
		if nb, ok := d.edgeTri[[2]int{u, p}]; ok {
			tr.adj[2] = nb
		}
	}
	d.last = first
	return nil
}
