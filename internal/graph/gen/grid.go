package gen

import (
	"fmt"

	"gpmetis/internal/graph"
)

// Grid2D returns the rows x cols 4-point grid mesh with unit weights, the
// simplest regular task-interaction graph (paper Section I).
func Grid2D(rows, cols int) (*graph.Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("gen: Grid2D(%d,%d): dimensions must be positive", rows, cols)
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := b.AddEdge(id(r, c), id(r, c+1), 1); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := b.AddEdge(id(r, c), id(r+1, c), 1); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}

// Grid3D returns the x*y*z 6-point grid mesh with unit weights.
func Grid3D(x, y, z int) (*graph.Graph, error) {
	if x <= 0 || y <= 0 || z <= 0 {
		return nil, fmt.Errorf("gen: Grid3D(%d,%d,%d): dimensions must be positive", x, y, z)
	}
	b := graph.NewBuilder(x * y * z)
	id := func(i, j, k int) int { return (i*y+j)*z + k }
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if i+1 < x {
					if err := b.AddEdge(id(i, j, k), id(i+1, j, k), 1); err != nil {
						return nil, err
					}
				}
				if j+1 < y {
					if err := b.AddEdge(id(i, j, k), id(i, j+1, k), 1); err != nil {
						return nil, err
					}
				}
				if k+1 < z {
					if err := b.AddEdge(id(i, j, k), id(i, j, k+1), 1); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return b.Build()
}

// femOffsets is the 48-point stencil used by LDoor: all integer offsets
// with squared norm in {1,2,4,5} — i.e. the 3x3x3 box without its 8
// corners, plus the distance-2 axis points and the (2,1,0)-type points.
// This reproduces ldoor's average degree of ~48 on interior vertices.
var femOffsets = func() [][3]int {
	var offs [][3]int
	for dx := -2; dx <= 2; dx++ {
		for dy := -2; dy <= 2; dy++ {
			for dz := -2; dz <= 2; dz++ {
				n := dx*dx + dy*dy + dz*dz
				if n == 1 || n == 2 || n == 4 || n == 5 {
					offs = append(offs, [3]int{dx, dy, dz})
				}
			}
		}
	}
	return offs
}()

// LDoor generates a 3-D finite-element stiffness-matrix graph with about n
// vertices: a cubic node lattice where each node is coupled to ~48
// neighbors, matching the degree structure of the UF collection's "ldoor"
// matrix. The seed perturbs vertex weights slightly (FEM elements vary in
// size) but not the topology.
func LDoor(n int, seed int64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: LDoor(%d): size must be positive", n)
	}
	s := cbrt(n)
	nv := s * s * s
	b := graph.NewBuilder(nv)
	id := func(i, j, k int) int { return (i*s+j)*s + k }
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			for k := 0; k < s; k++ {
				v := id(i, j, k)
				for _, o := range femOffsets {
					ni, nj, nk := i+o[0], j+o[1], k+o[2]
					if ni < 0 || ni >= s || nj < 0 || nj >= s || nk < 0 || nk >= s {
						continue
					}
					u := id(ni, nj, nk)
					if u > v { // add each undirected edge once
						if err := b.AddEdge(v, u, 1); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	r := rng(seed)
	for v := 0; v < nv; v++ {
		if err := b.SetVertexWeight(v, 1+r.Intn(3)); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// RandomGeometric generates n points on the unit square connected when
// within the given radius, using a cell grid for neighbor search. Useful
// as an irregular but spatially local test family.
func RandomGeometric(n int, radius float64, seed int64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: RandomGeometric(%d): size must be positive", n)
	}
	if radius <= 0 || radius > 1 {
		return nil, fmt.Errorf("gen: RandomGeometric: radius %g out of (0,1]", radius)
	}
	r := rng(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	grid := make(map[[2]int][]int)
	cellOf := func(i int) [2]int {
		cx, cy := int(xs[i]*float64(cells)), int(ys[i]*float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		grid[c] = append(grid[c], i)
	}
	b := graph.NewBuilder(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		c := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						if err := b.AddEdge(i, j, 1); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	return b.Build()
}
