// Package gen generates the synthetic input graphs used by the benchmark
// harness as stand-ins for the paper's DIMACS inputs (Table I), plus
// auxiliary families (grids, RMAT, random geometric) used by tests.
//
// Each generator is deterministic for a given seed so experiments are
// reproducible. The four Table I stand-ins match the structural character
// of their originals:
//
//   - LDoor: 3-D FEM stiffness-matrix graph, high uniform degree (~48),
//     standing in for "ldoor" (sparse matrix, University of Florida).
//   - Delaunay: an actual Delaunay triangulation of uniform random points
//     (Bowyer-Watson), standing in for DIMACS10 "delaunay_n20".
//   - HugeBubble: a perturbed honeycomb (3-regular foam) mesh, standing in
//     for DIMACS10 "hugebubbles" (2-D dynamic simulation).
//   - RoadNetwork: a planar intersection grid with long degree-2 road
//     chains, standing in for the DIMACS9 USA road network.
package gen

import (
	"fmt"
	"math/rand"

	"gpmetis/internal/graph"
)

// Class identifies one of the Table I input families.
type Class int

// The four input-graph families of the paper's evaluation (Table I).
const (
	ClassLDoor Class = iota
	ClassDelaunay
	ClassHugeBubble
	ClassRoadNetwork
)

// String returns the paper's name for the input class.
func (c Class) String() string {
	switch c {
	case ClassLDoor:
		return "ldoor"
	case ClassDelaunay:
		return "delaunay"
	case ClassHugeBubble:
		return "hugebubble"
	case ClassRoadNetwork:
		return "usa-roads"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Description returns the Table I description of the input class.
func (c Class) Description() string {
	switch c {
	case ClassLDoor:
		return "Sparse matrix from University of Florida collection"
	case ClassDelaunay:
		return "Delaunay triangulation of random points"
	case ClassHugeBubble:
		return "2D dynamic simulation"
	case ClassRoadNetwork:
		return "Road network"
	default:
		return "unknown"
	}
}

// PaperVertices returns the vertex count of the original DIMACS graph the
// class stands in for (Table I).
func (c Class) PaperVertices() int {
	switch c {
	case ClassLDoor:
		return 952203
	case ClassDelaunay:
		return 1048576
	case ClassHugeBubble:
		return 21198119
	case ClassRoadNetwork:
		return 23947347
	default:
		return 0
	}
}

// PaperEdges returns the edge count of the original DIMACS graph (Table I).
func (c Class) PaperEdges() int {
	switch c {
	case ClassLDoor:
		return 22785136
	case ClassDelaunay:
		return 3145686
	case ClassHugeBubble:
		return 31790179
	case ClassRoadNetwork:
		return 28947347
	default:
		return 0
	}
}

// Classes lists the four Table I families in paper order.
func Classes() []Class {
	return []Class{ClassLDoor, ClassDelaunay, ClassHugeBubble, ClassRoadNetwork}
}

// TableI generates the stand-in for class c at 1/scaleDiv of the paper's
// size (scaleDiv=1 reproduces the full Table I vertex counts; the
// benchmark default is 20). The generated vertex count tracks
// PaperVertices()/scaleDiv as closely as the family's structure allows.
func TableI(c Class, scaleDiv int, seed int64) (*graph.Graph, error) {
	if scaleDiv < 1 {
		return nil, fmt.Errorf("gen: scaleDiv must be >= 1, got %d", scaleDiv)
	}
	target := c.PaperVertices() / scaleDiv
	if target < 64 {
		target = 64
	}
	switch c {
	case ClassLDoor:
		return LDoor(target, seed)
	case ClassDelaunay:
		return Delaunay(target, seed)
	case ClassHugeBubble:
		return HugeBubble(target, seed)
	case ClassRoadNetwork:
		return RoadNetwork(target, seed)
	default:
		return nil, fmt.Errorf("gen: unknown class %d", int(c))
	}
}

// cbrt returns the integer cube root side length s with s^3 >= n.
func cbrt(n int) int {
	s := 1
	for s*s*s < n {
		s++
	}
	return s
}

// isqrt returns the integer square root side length s with s^2 >= n.
func isqrt(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// rng returns the package's deterministic source for a seed.
func rng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
