package gen

import (
	"math"
	"testing"
	"testing/quick"

	"gpmetis/internal/graph"
)

func mustValidate(t *testing.T, g *graph.Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
}

func mustConnected(t *testing.T, g *graph.Graph) {
	t.Helper()
	if n, _ := graph.ConnectedComponents(g); n != 1 {
		t.Fatalf("generated graph has %d components, want 1", n)
	}
}

func TestGrid2D(t *testing.T) {
	g, err := Grid2D(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	mustConnected(t, g)
	if g.NumVertices() != 20 {
		t.Errorf("V = %d, want 20", g.NumVertices())
	}
	// Edges: 4*4 horizontal + 3*5 vertical = 31.
	if g.NumEdges() != 31 {
		t.Errorf("E = %d, want 31", g.NumEdges())
	}
	if g.MaxDegree() != 4 {
		t.Errorf("MaxDegree = %d, want 4", g.MaxDegree())
	}
	if _, err := Grid2D(0, 5); err == nil {
		t.Error("Grid2D(0,5) should fail")
	}
}

func TestGrid3D(t *testing.T) {
	g, err := Grid3D(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	mustConnected(t, g)
	if g.NumVertices() != 27 {
		t.Errorf("V = %d, want 27", g.NumVertices())
	}
	// Edges: 3 directions * 2*3*3 = 54.
	if g.NumEdges() != 54 {
		t.Errorf("E = %d, want 54", g.NumEdges())
	}
	if g.MaxDegree() != 6 {
		t.Errorf("MaxDegree = %d, want 6", g.MaxDegree())
	}
	if _, err := Grid3D(1, 0, 1); err == nil {
		t.Error("Grid3D with zero dim should fail")
	}
}

func TestLDoorDegreeStructure(t *testing.T) {
	g, err := LDoor(8000, 7)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	mustConnected(t, g)
	if g.NumVertices() != 8000 { // 20^3
		t.Errorf("V = %d, want 8000", g.NumVertices())
	}
	// Interior degree is exactly 48; boundary shrinks the average.
	if g.MaxDegree() != 48 {
		t.Errorf("MaxDegree = %d, want 48", g.MaxDegree())
	}
	if avg := g.AvgDegree(); avg < 34 || avg > 48 {
		t.Errorf("AvgDegree = %g, want high-degree FEM structure", avg)
	}
}

func TestLDoorDeterministic(t *testing.T) {
	a, err := LDoor(1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LDoor(1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() || a.TotalVertexWeight() != b.TotalVertexWeight() {
		t.Error("LDoor must be deterministic for a fixed seed")
	}
}

func TestDelaunayIsPlanarTriangulation(t *testing.T) {
	const n = 2000
	g, err := Delaunay(n, 123)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	mustConnected(t, g)
	if g.NumVertices() != n {
		t.Fatalf("V = %d, want %d", g.NumVertices(), n)
	}
	// A triangulation of n points with h hull points has exactly
	// 3n - 3 - h edges; h >= 3, and for uniform random points h ~ O(log n),
	// so E must sit in (3n-3-O(sqrt n), 3n-6].
	e := g.NumEdges()
	if e > 3*n-6 {
		t.Errorf("E = %d exceeds planar triangulation bound %d", e, 3*n-6)
	}
	if e < 3*n-3-200 {
		t.Errorf("E = %d too small for a Delaunay triangulation of %d points", e, n)
	}
	// Average degree just under 6.
	if avg := g.AvgDegree(); avg < 5.5 || avg >= 6.0 {
		t.Errorf("AvgDegree = %g, want ~6", avg)
	}
}

func TestDelaunayEmptyCircumcircleSpotCheck(t *testing.T) {
	// Verify the Delaunay property on a small instance by brute force:
	// for every triangle formed by a vertex and two adjacent neighbors
	// that are themselves adjacent, no fourth point may lie strictly
	// inside its circumcircle. We rebuild coordinates with the same seed.
	const n = 60
	const seed = 5
	g, err := Delaunay(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	r := rng(seed)
	px := make([]float64, n)
	py := make([]float64, n)
	for i := 0; i < n; i++ {
		px[i], py[i] = r.Float64(), r.Float64()
	}
	inCircle := func(a, b, c, p int) bool {
		ax, ay := px[a]-px[p], py[a]-py[p]
		bx, by := px[b]-px[p], py[b]-py[p]
		cx, cy := px[c]-px[p], py[c]-py[p]
		det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
			(bx*bx+by*by)*(ax*cy-cx*ay) +
			(cx*cx+cy*cy)*(ax*by-bx*ay)
		if orient2d(px[a], py[a], px[b], py[b], px[c], py[c]) < 0 {
			det = -det
		}
		return det > 1e-12
	}
	violations := 0
	for a := 0; a < n; a++ {
		adj, _ := g.Neighbors(a)
		for _, b := range adj {
			if b < a {
				continue
			}
			for _, c := range adj {
				if c <= b || !g.HasEdge(b, c) {
					continue
				}
				for p := 0; p < n; p++ {
					if p == a || p == b || p == c {
						continue
					}
					if inCircle(a, b, c, p) {
						violations++
					}
				}
			}
		}
	}
	if violations > 0 {
		t.Errorf("found %d empty-circumcircle violations", violations)
	}
}

func TestHugeBubbleStructure(t *testing.T) {
	g, err := HugeBubble(10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	mustConnected(t, g)
	if avg := g.AvgDegree(); math.Abs(avg-3.0) > 0.3 {
		t.Errorf("AvgDegree = %g, want ~3 (foam mesh)", avg)
	}
}

func TestRoadNetworkStructure(t *testing.T) {
	g, err := RoadNetwork(20000, 9)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	mustConnected(t, g)
	if avg := g.AvgDegree(); avg < 2.0 || avg > 2.8 {
		t.Errorf("AvgDegree = %g, want ~2.4 (road network)", avg)
	}
	if v := g.NumVertices(); v < 14000 || v > 30000 {
		t.Errorf("V = %d, want roughly 20000", v)
	}
	// Most vertices are degree-2 road segments.
	deg2 := 0
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(v) == 2 {
			deg2++
		}
	}
	if float64(deg2) < 0.5*float64(g.NumVertices()) {
		t.Errorf("only %d/%d vertices have degree 2", deg2, g.NumVertices())
	}
}

func TestRMAT(t *testing.T) {
	g, err := RMAT(10, 8, 17)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	mustConnected(t, g)
	if g.NumVertices() != 1024 {
		t.Errorf("V = %d, want 1024", g.NumVertices())
	}
	// Power-law degree skew: the max degree should far exceed the average.
	if float64(g.MaxDegree()) < 3*g.AvgDegree() {
		t.Errorf("MaxDegree %d vs AvgDegree %g: expected heavy skew", g.MaxDegree(), g.AvgDegree())
	}
	if _, err := RMAT(0, 8, 1); err == nil {
		t.Error("RMAT scale 0 should fail")
	}
	if _, err := RMAT(10, 0, 1); err == nil {
		t.Error("RMAT edgeFactor 0 should fail")
	}
}

func TestRandomGeometric(t *testing.T) {
	g, err := RandomGeometric(2000, 0.04, 11)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	if _, err := RandomGeometric(10, 0, 1); err == nil {
		t.Error("zero radius should fail")
	}
	if _, err := RandomGeometric(0, 0.1, 1); err == nil {
		t.Error("zero size should fail")
	}
}

func TestTableIMatchesPaperShape(t *testing.T) {
	// At 1/200 scale each class must produce a valid connected graph whose
	// vertex count is within 25% of PaperVertices/200 and whose average
	// degree matches the paper's ratio within 30%.
	for _, c := range Classes() {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			g, err := TableI(c, 200, 1)
			if err != nil {
				t.Fatal(err)
			}
			mustValidate(t, g)
			mustConnected(t, g)
			want := c.PaperVertices() / 200
			got := g.NumVertices()
			if math.Abs(float64(got-want)) > 0.25*float64(want) {
				t.Errorf("V = %d, want ~%d", got, want)
			}
			paperAvg := 2 * float64(c.PaperEdges()) / float64(c.PaperVertices())
			if avg := g.AvgDegree(); math.Abs(avg-paperAvg) > 0.3*paperAvg {
				t.Errorf("AvgDegree = %g, paper ratio %g", avg, paperAvg)
			}
		})
	}
}

func TestTableIErrors(t *testing.T) {
	if _, err := TableI(ClassLDoor, 0, 1); err == nil {
		t.Error("scaleDiv 0 should fail")
	}
	if _, err := TableI(Class(99), 10, 1); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestClassMetadata(t *testing.T) {
	if len(Classes()) != 4 {
		t.Fatal("want 4 Table I classes")
	}
	for _, c := range Classes() {
		if c.String() == "" || c.Description() == "unknown" {
			t.Errorf("class %d metadata missing", int(c))
		}
		if c.PaperVertices() <= 0 || c.PaperEdges() <= 0 {
			t.Errorf("class %v paper sizes missing", c)
		}
	}
	if Class(99).PaperVertices() != 0 || Class(99).PaperEdges() != 0 {
		t.Error("unknown class should report zero sizes")
	}
}

// Property: Delaunay output is deterministic and structurally sound for
// any small size/seed combination.
func TestDelaunayProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := 3 + int(szRaw)%80
		a, err := Delaunay(n, seed)
		if err != nil {
			t.Logf("Delaunay(%d,%d): %v", n, seed, err)
			return false
		}
		if err := a.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		if ncomp, _ := graph.ConnectedComponents(a); ncomp != 1 {
			t.Logf("not connected")
			return false
		}
		b, err := Delaunay(n, seed)
		if err != nil {
			return false
		}
		return a.NumEdges() == b.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
