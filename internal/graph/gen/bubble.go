package gen

import (
	"fmt"

	"gpmetis/internal/graph"
)

// HugeBubble generates a 2-D foam mesh with about n vertices: a honeycomb
// (brick-wall) lattice, which is 3-regular in its interior, matching the
// average degree ~3 of the DIMACS10 "hugebubbles" graphs that come from
// 2-D bubble dynamics simulations. A small fraction of random "bubble
// wall" diagonals is added, seeded, to break perfect regularity the way a
// dynamic simulation mesh does.
func HugeBubble(n int, seed int64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: HugeBubble(%d): size must be positive", n)
	}
	s := isqrt(n)
	rows, cols := s, s
	nv := rows * cols
	b := graph.NewBuilder(nv)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Horizontal bond along each row.
			if c+1 < cols {
				if err := b.AddEdge(id(r, c), id(r, c+1), 1); err != nil {
					return nil, err
				}
			}
			// Vertical bond on alternating columns (brick wall): interior
			// vertices end with exactly 3 neighbors.
			if r+1 < rows && (r+c)%2 == 0 {
				if err := b.AddEdge(id(r, c), id(r+1, c), 1); err != nil {
					return nil, err
				}
			}
		}
	}
	// Irregular bubble merges: ~1% extra diagonals.
	rnd := rng(seed)
	extra := nv / 100
	for i := 0; i < extra; i++ {
		r := rnd.Intn(rows - 1)
		c := rnd.Intn(cols - 1)
		if err := b.AddEdge(id(r, c), id(r+1, c+1), 1); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// RMAT generates a scale-free graph with 2^scale vertices and about
// edgeFactor*2^scale undirected edges using the recursive-matrix model
// with the standard (0.57, 0.19, 0.19, 0.05) probabilities. Self loops and
// duplicates are dropped/merged. RMAT graphs are the skewed-degree stress
// inputs the paper's load-balancing discussion is about; they are used by
// tests and ablations, not Table I.
func RMAT(scale, edgeFactor int, seed int64) (*graph.Graph, error) {
	if scale < 1 || scale > 28 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of [1,28]", scale)
	}
	if edgeFactor < 1 {
		return nil, fmt.Errorf("gen: RMAT edgeFactor %d must be positive", edgeFactor)
	}
	n := 1 << scale
	m := edgeFactor * n
	r := rng(seed)
	b := graph.NewBuilder(n)
	const a, bb, c = 0.57, 0.19, 0.19
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := n >> 1; bit > 0; bit >>= 1 {
			p := r.Float64()
			switch {
			case p < a:
				// top-left quadrant: no bits set
			case p < a+bb:
				v |= bit
			case p < a+bb+c:
				u |= bit
			default:
				u |= bit
				v |= bit
			}
		}
		if u == v {
			continue
		}
		if err := b.AddEdge(u, v, 1); err != nil {
			return nil, err
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return connect(g)
}

// connect adds unit edges between consecutive components' representative
// vertices so partitioners (which assume connectivity for coarsening to
// make progress) get a connected graph.
func connect(g *graph.Graph) (*graph.Graph, error) {
	ncomp, comp := graph.ConnectedComponents(g)
	if ncomp <= 1 {
		return g, nil
	}
	rep := make([]int, ncomp)
	for i := range rep {
		rep[i] = -1
	}
	for v := 0; v < g.NumVertices(); v++ {
		if rep[comp[v]] == -1 {
			rep[comp[v]] = v
		}
	}
	b := graph.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		if err := b.SetVertexWeight(v, g.VWgt[v]); err != nil {
			return nil, err
		}
		adj, wgt := g.Neighbors(v)
		for i, u := range adj {
			if u > v {
				if err := b.AddEdge(v, u, wgt[i]); err != nil {
					return nil, err
				}
			}
		}
	}
	for i := 1; i < ncomp; i++ {
		if err := b.AddEdge(rep[i-1], rep[i], 1); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
