package gen

import (
	"fmt"

	"gpmetis/internal/graph"
)

// RoadNetwork generates a USA-roads-like planar network with about n
// vertices: a jittered grid of intersections whose connecting roads are
// subdivided into chains of degree-2 vertices (road segments), with a few
// diagonal "highway" shortcuts. The result has average degree ~2.4 and
// very large diameter, the two properties that make road networks hard for
// multilevel partitioners (few coarsening opportunities per level, long
// thin partitions).
func RoadNetwork(n int, seed int64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: RoadNetwork(%d): size must be positive", n)
	}
	// With chain lengths averaging 2 the expected vertex count is
	// s^2 intersections + 2*s^2 roads * 2 segments = 5*s^2.
	s := isqrt(n / 5)
	if s < 2 {
		s = 2
	}
	r := rng(seed)

	// Vertex ids are handed out on demand: first the s*s intersections,
	// then chain vertices.
	next := s * s
	type road struct{ a, b int }
	var roads []road
	id := func(row, col int) int { return row*s + col }
	for row := 0; row < s; row++ {
		for col := 0; col < s; col++ {
			if col+1 < s {
				roads = append(roads, road{id(row, col), id(row, col+1)})
			}
			if row+1 < s {
				roads = append(roads, road{id(row, col), id(row+1, col)})
			}
		}
	}
	// Count chain vertices first so the builder can be sized exactly.
	chainLen := make([]int, len(roads))
	total := next
	for i := range roads {
		chainLen[i] = 1 + r.Intn(3) // 1..3 segments, avg 2
		total += chainLen[i]
	}
	b := graph.NewBuilder(total)
	for i, rd := range roads {
		prev := rd.a
		for j := 0; j < chainLen[i]; j++ {
			v := next
			next++
			if err := b.AddEdge(prev, v, 1); err != nil {
				return nil, err
			}
			prev = v
		}
		if err := b.AddEdge(prev, rd.b, 1); err != nil {
			return nil, err
		}
	}
	// Sparse diagonal highways (~2% of intersections).
	for i := 0; i < s*s/50; i++ {
		row, col := r.Intn(s-1), r.Intn(s-1)
		if err := b.AddEdge(id(row, col), id(row+1, col+1), 1); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
