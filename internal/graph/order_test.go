package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRCMOrderIsPermutation(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(3)), 200)
	perm := RCMOrder(g)
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[p] = true
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A grid-like graph labeled randomly has terrible bandwidth; RCM must
	// bring it down substantially.
	b := NewBuilder(400)
	for r := 0; r < 20; r++ {
		for c := 0; c < 20; c++ {
			v := r*20 + c
			if c+1 < 20 {
				if err := b.AddEdge(v, v+1, 1); err != nil {
					t.Fatal(err)
				}
			}
			if r+1 < 20 {
				if err := b.AddEdge(v, v+20, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	grid := b.MustBuild()
	shufflePerm := rand.New(rand.NewSource(7)).Perm(400)
	shuffled, err := Relabel(grid, shufflePerm)
	if err != nil {
		t.Fatal(err)
	}
	before := Bandwidth(shuffled)
	rcm, err := Relabel(shuffled, RCMOrder(shuffled))
	if err != nil {
		t.Fatal(err)
	}
	after := Bandwidth(rcm)
	if after >= before/3 {
		t.Errorf("RCM bandwidth %d not much below shuffled %d", after, before)
	}
	// Sanity: the grid's natural bandwidth is 20; RCM should be within a
	// small factor of that.
	if after > 80 {
		t.Errorf("RCM bandwidth %d too far from the grid's natural 20", after)
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	b := NewBuilder(10)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(5, 6, 1); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	perm := RCMOrder(g)
	seen := map[int]bool{}
	for _, p := range perm {
		if seen[p] {
			t.Fatal("duplicate label")
		}
		seen[p] = true
	}
	if len(seen) != 10 {
		t.Fatalf("covered %d labels, want 10", len(seen))
	}
}

// Property: RCM output is always a valid permutation and never increases
// bandwidth versus a random shuffle of the same graph.
func TestRCMProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := 10 + int(szRaw)%150
		g := randomGraph(rand.New(rand.NewSource(seed)), n)
		perm := RCMOrder(g)
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		relabeled, err := Relabel(g, perm)
		if err != nil {
			return false
		}
		return relabeled.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRelabelErrors(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 5)
	if _, err := Relabel(g, []int{0, 1, 2}); err == nil {
		t.Error("short perm should fail")
	}
	if _, err := Relabel(g, []int{0, 1, 2, 3, 9}); err == nil {
		t.Error("out-of-range perm should fail")
	}
	if _, err := Relabel(g, []int{0, 1, 2, 3, 3}); err == nil {
		t.Error("duplicate perm should fail")
	}
	id := []int{0, 1, 2, 3, 4}
	h, err := Relabel(g, id)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Error("identity relabel changed the graph")
	}
}
