package graph

import "fmt"

// Relabel returns a copy of g whose vertex v becomes perm[v]. perm must be
// a permutation of 0..n-1. Vertex and edge weights follow their vertices.
// Relabeling is how experiments decouple algorithmic behaviour from the
// (often spatially sorted) vertex order a generator produces.
func Relabel(g *Graph, perm []int) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: Relabel: perm has %d entries for %d vertices", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("graph: Relabel: perm entry %d out of range", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("graph: Relabel: duplicate perm entry %d", p)
		}
		seen[p] = true
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		if err := b.SetVertexWeight(perm[v], g.VWgt[v]); err != nil {
			return nil, err
		}
		adj, wgt := g.Neighbors(v)
		for i, u := range adj {
			if u > v {
				if err := b.AddEdge(perm[v], perm[u], wgt[i]); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}
