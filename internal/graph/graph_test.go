package graph

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// path4 builds the path 0-1-2-3 with unit weights.
func path4(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// k4 builds the complete graph on 4 vertices with weight 2 edges.
func k4() *Graph {
	b := NewBuilder(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v, 2); err != nil {
				panic(err)
			}
		}
	}
	return b.MustBuild()
}

func TestBuilderBasic(t *testing.T) {
	g := path4(t)
	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 || g.Degree(3) != 1 {
		t.Errorf("unexpected degrees: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(3))
	}
	if !g.HasEdge(1, 2) || g.HasEdge(0, 3) {
		t.Error("HasEdge wrong")
	}
	if g.EdgeWeight(1, 2) != 1 || g.EdgeWeight(0, 2) != 0 {
		t.Error("EdgeWeight wrong")
	}
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0, 4); err != nil { // same undirected edge
		t.Fatal(err)
	}
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after merging", g.NumEdges())
	}
	if w := g.EdgeWeight(0, 1); w != 7 {
		t.Errorf("merged weight = %d, want 7", w)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 0, 1); err == nil {
		t.Error("self loop should fail")
	}
	if err := b.AddEdge(0, 2, 1); err == nil {
		t.Error("out-of-range vertex should fail")
	}
	if err := b.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative vertex should fail")
	}
	if err := b.AddEdge(0, 1, 0); err == nil {
		t.Error("zero weight should fail")
	}
	if err := b.SetVertexWeight(0, 0); err == nil {
		t.Error("zero vertex weight should fail")
	}
	if err := b.SetVertexWeight(5, 1); err == nil {
		t.Error("out-of-range vertex weight should fail")
	}
	if err := b.SetVertexWeight(1, 10); err != nil {
		t.Errorf("valid SetVertexWeight failed: %v", err)
	}
}

func TestVertexWeights(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SetVertexWeight(1, 5); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	if got := g.TotalVertexWeight(); got != 7 {
		t.Errorf("TotalVertexWeight = %d, want 7", got)
	}
	if got := g.TotalEdgeWeight(); got != 2 {
		t.Errorf("TotalEdgeWeight = %d, want 2", got)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if err := g.Validate(); err != nil {
		t.Errorf("empty graph should validate: %v", err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.AvgDegree() != 0 || g.MaxDegree() != 0 {
		t.Error("empty graph stats should all be zero")
	}
}

func TestIsolatedVertices(t *testing.T) {
	b := NewBuilder(5)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	if err := g.Validate(); err != nil {
		t.Errorf("graph with isolated vertices should validate: %v", err)
	}
	if g.Degree(4) != 0 {
		t.Errorf("isolated vertex degree = %d, want 0", g.Degree(4))
	}
	ncomp, _ := ConnectedComponents(g)
	if ncomp != 4 {
		t.Errorf("components = %d, want 4", ncomp)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := k4
	cases := []struct {
		name    string
		corrupt func(*Graph)
	}{
		{"xadj len", func(g *Graph) { g.XAdj = g.XAdj[:3] }},
		{"xadj start", func(g *Graph) { g.XAdj[0] = 1 }},
		{"xadj decreasing", func(g *Graph) { g.XAdj[2] = g.XAdj[1] - 1 }},
		{"neighbor range", func(g *Graph) { g.Adjncy[0] = 99 }},
		{"self loop", func(g *Graph) { g.Adjncy[0] = 0 }},
		{"arc weight", func(g *Graph) { g.AdjWgt[0] = 0 }},
		{"vertex weight", func(g *Graph) { g.VWgt[2] = -1 }},
		{"asymmetric weight", func(g *Graph) { g.AdjWgt[0] = 9 }},
	}
	for _, tc := range cases {
		g := fresh()
		tc.corrupt(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", tc.name)
		} else if !errors.Is(err, ErrInvalidGraph) {
			t.Errorf("%s: error should wrap ErrInvalidGraph, got %v", tc.name, err)
		}
	}
}

func TestFromCSR(t *testing.T) {
	// Triangle 0-1-2.
	xadj := []int{0, 2, 4, 6}
	adjncy := []int{1, 2, 0, 2, 0, 1}
	adjwgt := []int{1, 1, 1, 1, 1, 1}
	vwgt := []int{1, 1, 1}
	g, err := FromCSR(xadj, adjncy, adjwgt, vwgt)
	if err != nil {
		t.Fatalf("FromCSR: %v", err)
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if _, err := FromCSR([]int{0, 1}, []int{0}, []int{1}, []int{1}); err == nil {
		t.Error("FromCSR should reject a self loop")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := path4(t)
	c := g.Clone()
	c.AdjWgt[0] = 99
	c.VWgt[0] = 99
	if g.AdjWgt[0] == 99 || g.VWgt[0] == 99 {
		t.Error("Clone must not share storage")
	}
}

func TestStringSummary(t *testing.T) {
	g := path4(t)
	if s := g.String(); !strings.Contains(s, "V=4") || !strings.Contains(s, "E=3") {
		t.Errorf("String() = %q", s)
	}
}

func TestEdgeCutAndGain(t *testing.T) {
	g := path4(t)
	part := []int{0, 0, 1, 1}
	if cut := EdgeCut(g, part); cut != 1 {
		t.Errorf("EdgeCut = %d, want 1", cut)
	}
	// Moving vertex 1 to partition 1 removes the 0-1 internal edge (cost 1)
	// and internalizes edge 1-2: gain = w(1,2) - w(1,0) = 0.
	if gain := Gain(g, part, 1, 1); gain != 0 {
		t.Errorf("Gain(1→1) = %d, want 0", gain)
	}
	// k4 with weight-2 edges, split 2/2: cut = 4 cross edges * 2 = 8.
	g2 := k4()
	if cut := EdgeCut(g2, part); cut != 8 {
		t.Errorf("k4 EdgeCut = %d, want 8", cut)
	}
	// Moving any k4 vertex makes things worse: 1 internal lost + 3... gain
	// = to-part weight (2 vertices * 2) - own-part weight (1 vertex * 2) = 2.
	if gain := Gain(g2, part, 0, 1); gain != 2 {
		t.Errorf("k4 Gain = %d, want 2", gain)
	}
}

func TestPartWeightsAndBalance(t *testing.T) {
	g := path4(t)
	part := []int{0, 0, 1, 1}
	w := PartWeights(g, part, 2)
	if w[0] != 2 || w[1] != 2 {
		t.Errorf("PartWeights = %v, want [2 2]", w)
	}
	if got := Imbalance(g, part, 2); got != 1.0 {
		t.Errorf("Imbalance = %g, want 1.0", got)
	}
	if !IsBalanced(g, part, 2, 1.03) {
		t.Error("2/2 split should be balanced at 3%")
	}
	skew := []int{0, 0, 0, 1}
	if got := Imbalance(g, skew, 2); got != 1.5 {
		t.Errorf("Imbalance skewed = %g, want 1.5", got)
	}
	if IsBalanced(g, skew, 2, 1.03) {
		t.Error("3/1 split should not be balanced at 3%")
	}
}

func TestCheckPartition(t *testing.T) {
	g := path4(t)
	if err := CheckPartition(g, []int{0, 1, 0, 1}, 2); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	if err := CheckPartition(g, []int{0, 1, 0, 2}, 2); err == nil {
		t.Error("out-of-range partition id should fail")
	}
	if err := CheckPartition(g, []int{0, 0, 0, 0}, 2); err == nil {
		t.Error("empty partition should fail when n >= k")
	}
	if err := CheckPartition(g, []int{0, 1}, 2); err == nil {
		t.Error("short partition vector should fail")
	}
}

func TestBoundaryVertices(t *testing.T) {
	g := path4(t)
	part := []int{0, 0, 1, 1}
	b := BoundaryVertices(g, part)
	if len(b) != 2 || b[0] != 1 || b[1] != 2 {
		t.Errorf("BoundaryVertices = %v, want [1 2]", b)
	}
	if IsBoundary(g, part, 0) || !IsBoundary(g, part, 1) {
		t.Error("IsBoundary wrong")
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	n, comp := ConnectedComponents(g)
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] || comp[5] == comp[0] || comp[5] == comp[3] {
		t.Error("component assignment wrong")
	}
}

// randomGraph builds a random connected graph for property tests.
func randomGraph(rng *rand.Rand, n int) *Graph {
	b := NewBuilder(n)
	// Random spanning tree keeps it connected.
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		if err := b.AddEdge(u, v, 1+rng.Intn(5)); err != nil {
			panic(err)
		}
	}
	extra := n / 2
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			if err := b.AddEdge(u, v, 1+rng.Intn(5)); err != nil {
				panic(err)
			}
		}
	}
	return b.MustBuild()
}

// Property: builder output always validates and is connected by
// construction (spanning tree backbone).
func TestBuilderOutputAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz)%60
		g := randomGraph(rand.New(rand.NewSource(seed)), n)
		if err := g.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		ncomp, _ := ConnectedComponents(g)
		return ncomp == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: EdgeCut is symmetric under relabeling the two sides of a
// bisection and never exceeds the total edge weight.
func TestEdgeCutBoundsProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(sz)%60
		g := randomGraph(rng, n)
		part := make([]int, n)
		flip := make([]int, n)
		for v := range part {
			part[v] = rng.Intn(2)
			flip[v] = 1 - part[v]
		}
		cut := EdgeCut(g, part)
		if cut != EdgeCut(g, flip) {
			return false
		}
		return cut >= 0 && cut <= g.TotalEdgeWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: sum of PartWeights equals total vertex weight for any
// assignment.
func TestPartWeightsSumProperty(t *testing.T) {
	f := func(seed int64, sz, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(sz)%60
		k := 1 + int(kRaw)%8
		g := randomGraph(rng, n)
		part := make([]int, n)
		for v := range part {
			part[v] = rng.Intn(k)
		}
		var sum int
		for _, w := range PartWeights(g, part, k) {
			sum += w
		}
		return sum == g.TotalVertexWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCommunicationVolume(t *testing.T) {
	// Star: center 0 with 4 leaves in partitions 1,1,2,2; center in 0.
	b := NewBuilder(5)
	for leaf := 1; leaf <= 4; leaf++ {
		if err := b.AddEdge(0, leaf, 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	part := []int{0, 1, 1, 2, 2}
	// Center talks to partitions 1 and 2 (2 values); each leaf talks to
	// partition 0 (1 value each): total 6. Edge cut would count 4.
	if got := CommunicationVolume(g, part, 3); got != 6 {
		t.Errorf("CommunicationVolume = %d, want 6", got)
	}
	// Single partition: no communication.
	if got := CommunicationVolume(g, []int{0, 0, 0, 0, 0}, 1); got != 0 {
		t.Errorf("volume = %d, want 0", got)
	}
}

// Property: communication volume is bounded by twice the number of cut
// edges (each cut edge contributes at most one new partition per side)
// and is zero iff the cut is zero.
func TestCommunicationVolumeBoundsProperty(t *testing.T) {
	f := func(seed int64, szRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(szRaw)%80
		k := 1 + int(kRaw)%6
		g := randomGraph(rng, n)
		part := make([]int, n)
		for v := range part {
			part[v] = rng.Intn(k)
		}
		vol := CommunicationVolume(g, part, k)
		cutEdges := 0
		for v := 0; v < n; v++ {
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if u > v && part[u] != part[v] {
					cutEdges++
				}
			}
		}
		if (vol == 0) != (cutEdges == 0) {
			return false
		}
		return vol <= 2*cutEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
