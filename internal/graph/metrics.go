package graph

import "fmt"

// EdgeCut returns the total weight of edges whose endpoints lie in
// different partitions, the objective the paper minimizes.
func EdgeCut(g *Graph, part []int) int {
	var cut int
	for v := 0; v < g.NumVertices(); v++ {
		adj, wgt := g.Neighbors(v)
		pv := part[v]
		for i, u := range adj {
			if part[u] != pv {
				cut += wgt[i]
			}
		}
	}
	return cut / 2
}

// PartWeights returns the total vertex weight in each of the k partitions.
func PartWeights(g *Graph, part []int, k int) []int {
	w := make([]int, k)
	for v, p := range part[:g.NumVertices()] {
		w[p] += g.VWgt[v]
	}
	return w
}

// Imbalance returns max partition weight divided by average partition
// weight. A perfectly balanced k-way partition has imbalance 1.0; the
// paper's experiments allow 1.03 (3% tolerance).
func Imbalance(g *Graph, part []int, k int) float64 {
	if k <= 0 {
		return 0
	}
	weights := PartWeights(g, part, k)
	var max, total int
	for _, w := range weights {
		total += w
		if w > max {
			max = w
		}
	}
	if total == 0 {
		return 0
	}
	avg := float64(total) / float64(k)
	return float64(max) / avg
}

// IsBalanced reports whether no partition exceeds ubfactor times the
// average partition weight (e.g. ubfactor=1.03 for the paper's 3%).
func IsBalanced(g *Graph, part []int, k int, ubfactor float64) bool {
	return Imbalance(g, part, k) <= ubfactor+1e-9
}

// CheckPartition verifies that part assigns every vertex of g to a
// partition id in [0,k) and that every partition is non-empty when the
// graph has at least k vertices.
func CheckPartition(g *Graph, part []int, k int) error {
	n := g.NumVertices()
	if len(part) < n {
		return fmt.Errorf("graph: partition vector has %d entries for %d vertices", len(part), n)
	}
	seen := make([]bool, k)
	for v := 0; v < n; v++ {
		p := part[v]
		if p < 0 || p >= k {
			return fmt.Errorf("graph: vertex %d assigned to partition %d, want [0,%d)", v, p, k)
		}
		seen[p] = true
	}
	if n >= k {
		for p, ok := range seen {
			if !ok {
				return fmt.Errorf("graph: partition %d is empty", p)
			}
		}
	}
	return nil
}

// IsBoundary reports whether v has at least one neighbor in a different
// partition.
func IsBoundary(g *Graph, part []int, v int) bool {
	adj, _ := g.Neighbors(v)
	for _, u := range adj {
		if part[u] != part[v] {
			return true
		}
	}
	return false
}

// BoundaryVertices returns all vertices with a neighbor in a different
// partition, in ascending order. Refinement only ever moves these.
func BoundaryVertices(g *Graph, part []int) []int {
	var out []int
	for v := 0; v < g.NumVertices(); v++ {
		if IsBoundary(g, part, v) {
			out = append(out, v)
		}
	}
	return out
}

// Gain returns the edge-cut reduction obtained by moving v from its
// current partition to partition "to": (weight of arcs to "to") minus
// (weight of arcs to its own partition). Positive gain reduces the cut.
func Gain(g *Graph, part []int, v, to int) int {
	adj, wgt := g.Neighbors(v)
	var internal, external int
	from := part[v]
	for i, u := range adj {
		switch part[u] {
		case from:
			internal += wgt[i]
		case to:
			external += wgt[i]
		}
	}
	return external - internal
}

// ConnectedComponents returns the number of connected components and a
// component id per vertex, via iterative BFS.
func ConnectedComponents(g *Graph) (int, []int) {
	n := g.NumVertices()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int
	c := 0
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = c
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if comp[u] == -1 {
					comp[u] = c
					queue = append(queue, u)
				}
			}
		}
		c++
	}
	return c, comp
}

// CommunicationVolume returns the total communication volume of a k-way
// partition: for each vertex, the number of *distinct* foreign partitions
// among its neighbors, summed over all vertices. Unlike the edge cut it
// counts a value sent to a partition once regardless of how many
// neighbors live there, which is the quantity a halo exchange actually
// moves.
func CommunicationVolume(g *Graph, part []int, k int) int {
	seen := make([]bool, k)
	var touched []int
	total := 0
	for v := 0; v < g.NumVertices(); v++ {
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			p := part[u]
			if p != part[v] && !seen[p] {
				seen[p] = true
				touched = append(touched, p)
				total++
			}
		}
		for _, p := range touched {
			seen[p] = false
		}
		touched = touched[:0]
	}
	return total
}
