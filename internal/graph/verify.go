package graph

import (
	"errors"
	"fmt"
)

// ErrVerify is the sentinel wrapped by every invariant violation the
// paranoid verification mode detects, so callers can distinguish "the
// pipeline corrupted its state" from ordinary usage or capacity errors.
var ErrVerify = errors.New("graph: invariant violation")

// VerifyCoarsening checks the invariants that tie one coarsening level
// together: cmap maps every fine vertex into [0, coarse.n) and is
// surjective (every coarse vertex has at least one fine preimage), the
// coarse graph is a well-formed CSR, and total vertex weight is
// conserved. Total edge weight can only shrink — contraction folds the
// collapsed pairs' internal edges into vertex identity — and must shrink
// by no more than the weight the matching collapsed. The checks run on
// the host and charge nothing to the modeled timeline.
func VerifyCoarsening(fine, coarse *Graph, cmap []int) error {
	cn := coarse.NumVertices()
	if len(cmap) < fine.NumVertices() {
		return fmt.Errorf("%w: cmap has %d entries for %d fine vertices", ErrVerify, len(cmap), fine.NumVertices())
	}
	hit := make([]bool, cn)
	for v := 0; v < fine.NumVertices(); v++ {
		cv := cmap[v]
		if cv < 0 || cv >= cn {
			return fmt.Errorf("%w: cmap[%d] = %d, want [0,%d)", ErrVerify, v, cv, cn)
		}
		hit[cv] = true
	}
	for cv, ok := range hit {
		if !ok {
			return fmt.Errorf("%w: coarse vertex %d has no fine preimage (cmap not surjective)", ErrVerify, cv)
		}
	}
	if err := coarse.Validate(); err != nil {
		return fmt.Errorf("%w: coarse graph: %v", ErrVerify, err)
	}
	if fw, cw := fine.TotalVertexWeight(), coarse.TotalVertexWeight(); fw != cw {
		return fmt.Errorf("%w: vertex weight not conserved: fine %d, coarse %d", ErrVerify, fw, cw)
	}
	// Edge weight conservation: coarse edge weight = fine edge weight
	// minus the weight of edges internal to collapsed groups. Without
	// re-deriving the internal weight we can still bound it: it never
	// grows, and any weight lost must connect vertices that share a
	// coarse id.
	fe, ce := fine.TotalEdgeWeight(), coarse.TotalEdgeWeight()
	if ce > fe {
		return fmt.Errorf("%w: edge weight grew under contraction: fine %d, coarse %d", ErrVerify, fe, ce)
	}
	internal := 0
	for v := 0; v < fine.NumVertices(); v++ {
		adj, wgt := fine.Neighbors(v)
		for i, u := range adj {
			if cmap[u] == cmap[v] {
				internal += wgt[i]
			}
		}
	}
	internal /= 2 // both endpoints counted each internal edge
	if ce != fe-internal {
		return fmt.Errorf("%w: edge weight not conserved: fine %d - internal %d != coarse %d", ErrVerify, fe, internal, ce)
	}
	return nil
}

// VerifyProjection checks that projecting coarsePart through cmap yields
// finePart (before any refinement moves) — equivalently, that the edge
// cut is conserved exactly across the projection step.
func VerifyProjection(fine, coarse *Graph, cmap, finePart, coarsePart []int) error {
	for v := 0; v < fine.NumVertices(); v++ {
		if finePart[v] != coarsePart[cmap[v]] {
			return fmt.Errorf("%w: projection mismatch at vertex %d: part %d, coarse part %d", ErrVerify, v, finePart[v], coarsePart[cmap[v]])
		}
	}
	if fc, cc := EdgeCut(fine, finePart), EdgeCut(coarse, coarsePart); fc != cc {
		return fmt.Errorf("%w: edge cut not conserved across projection: fine %d, coarse %d", ErrVerify, fc, cc)
	}
	return nil
}

// VerifyPartition checks that part is a complete k-way partition of g
// within the allowed imbalance. ubfactor <= 0 skips the balance check
// (useful mid-pipeline, where only the final level guarantees balance).
func VerifyPartition(g *Graph, part []int, k int, ubfactor float64) error {
	if err := CheckPartition(g, part, k); err != nil {
		return fmt.Errorf("%w: %v", ErrVerify, err)
	}
	if ubfactor > 0 && !IsBalanced(g, part, k, ubfactor) {
		return fmt.Errorf("%w: imbalance %.4f exceeds %.4f", ErrVerify, Imbalance(g, part, k), ubfactor)
	}
	return nil
}
