package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates undirected edges and produces a validated CSR Graph.
// Duplicate edges are merged by summing their weights; self loops are
// rejected. The zero Builder is not usable; construct with NewBuilder.
type Builder struct {
	n      int
	vwgt   []int
	us, vs []int
	ws     []int
}

// NewBuilder returns a Builder for a graph with n vertices, all with
// vertex weight 1 until overridden by SetVertexWeight.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewBuilder(%d): negative vertex count", n))
	}
	vwgt := make([]int, n)
	for i := range vwgt {
		vwgt[i] = 1
	}
	return &Builder{n: n, vwgt: vwgt}
}

// SetVertexWeight sets the computation weight of vertex v.
func (b *Builder) SetVertexWeight(v, w int) error {
	if v < 0 || v >= b.n {
		return fmt.Errorf("graph: SetVertexWeight: vertex %d out of range [0,%d)", v, b.n)
	}
	if w <= 0 {
		return fmt.Errorf("graph: SetVertexWeight: weight %d must be positive", w)
	}
	b.vwgt[v] = w
	return nil
}

// AddEdge records the undirected edge {u,v} with weight w. Repeated calls
// for the same pair accumulate weight.
func (b *Builder) AddEdge(u, v, w int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: AddEdge(%d,%d): vertex out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: AddEdge(%d,%d): self loops are not allowed", u, v)
	}
	if w <= 0 {
		return fmt.Errorf("graph: AddEdge(%d,%d): weight %d must be positive", u, v, w)
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
	return nil
}

// NumPendingEdges returns the number of AddEdge calls recorded so far
// (before duplicate merging).
func (b *Builder) NumPendingEdges() int { return len(b.us) }

// Build assembles the CSR graph. Duplicate undirected edges are merged by
// summing weights. The result always satisfies Graph.Validate.
func (b *Builder) Build() (*Graph, error) {
	type arc struct{ u, v, w int }
	// Canonicalize every undirected edge as (min,max) and sort to merge
	// duplicates deterministically.
	arcs := make([]arc, 0, len(b.us))
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		if u > v {
			u, v = v, u
		}
		arcs = append(arcs, arc{u, v, b.ws[i]})
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].u != arcs[j].u {
			return arcs[i].u < arcs[j].u
		}
		return arcs[i].v < arcs[j].v
	})
	merged := arcs[:0]
	for _, a := range arcs {
		if n := len(merged); n > 0 && merged[n-1].u == a.u && merged[n-1].v == a.v {
			merged[n-1].w += a.w
			continue
		}
		merged = append(merged, a)
	}

	g := &Graph{
		XAdj: make([]int, b.n+1),
		VWgt: make([]int, b.n),
	}
	copy(g.VWgt, b.vwgt)
	deg := make([]int, b.n)
	for _, a := range merged {
		deg[a.u]++
		deg[a.v]++
	}
	for v := 0; v < b.n; v++ {
		g.XAdj[v+1] = g.XAdj[v] + deg[v]
	}
	m := g.XAdj[b.n]
	g.Adjncy = make([]int, m)
	g.AdjWgt = make([]int, m)
	fill := make([]int, b.n)
	copy(fill, g.XAdj[:b.n])
	for _, a := range merged {
		g.Adjncy[fill[a.u]] = a.v
		g.AdjWgt[fill[a.u]] = a.w
		fill[a.u]++
		g.Adjncy[fill[a.v]] = a.u
		g.AdjWgt[fill[a.v]] = a.w
		fill[a.v]++
	}
	return g, nil
}

// MustBuild is Build but panics on error, for tests and generators whose
// inputs are constructed to be valid.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromCSR wraps pre-built CSR arrays in a Graph after validating them. The
// arrays are used directly without copying.
func FromCSR(xadj, adjncy, adjwgt, vwgt []int) (*Graph, error) {
	g := &Graph{XAdj: xadj, Adjncy: adjncy, AdjWgt: adjwgt, VWgt: vwgt}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
