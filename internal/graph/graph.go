// Package graph provides the Compressed Sparse Row (CSR) graph
// representation shared by every partitioner in this repository, together
// with construction helpers and partition-quality metrics.
//
// The layout follows the paper's Section III: an adjacency array (Adjncy)
// of length 2|E|, an adjacency pointer array (XAdj) of length |V|+1, an
// edge-weight array (AdjWgt) parallel to Adjncy, and a vertex-weight array
// (VWgt) of length |V|. Graphs are undirected: every edge {u,v} appears
// twice, once in each endpoint's adjacency list, with equal weights.
package graph

import (
	"errors"
	"fmt"
)

// Graph is an undirected vertex- and edge-weighted graph in CSR form.
//
// Invariants (checked by Validate):
//   - len(XAdj) == NumVertices()+1, XAdj[0] == 0, XAdj non-decreasing
//   - len(Adjncy) == len(AdjWgt) == XAdj[len(XAdj)-1]
//   - no self loops; every arc (u,v,w) has a reverse arc (v,u,w)
//   - all vertex and edge weights are positive
type Graph struct {
	// XAdj holds, for each vertex v, the index range
	// [XAdj[v], XAdj[v+1]) of v's adjacency list within Adjncy/AdjWgt.
	XAdj []int
	// Adjncy is the concatenated adjacency lists.
	Adjncy []int
	// AdjWgt holds the weight of each arc, parallel to Adjncy.
	AdjWgt []int
	// VWgt holds the computation weight of each vertex.
	VWgt []int
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.VWgt) }

// NumEdges returns the number of undirected edges |E| (half the number of
// stored arcs).
func (g *Graph) NumEdges() int { return len(g.Adjncy) / 2 }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return g.XAdj[v+1] - g.XAdj[v] }

// Neighbors returns v's adjacency and arc-weight slices. The slices alias
// the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int) (adj, wgt []int) {
	return g.Adjncy[g.XAdj[v]:g.XAdj[v+1]], g.AdjWgt[g.XAdj[v]:g.XAdj[v+1]]
}

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() int {
	var s int
	for _, w := range g.VWgt {
		s += w
	}
	return s
}

// TotalEdgeWeight returns the sum of all undirected edge weights.
func (g *Graph) TotalEdgeWeight() int {
	var s int
	for _, w := range g.AdjWgt {
		s += w
	}
	return s / 2
}

// Bytes returns the CSR memory footprint assuming the 4-byte integers a
// CUDA implementation would use, which is what counts against the modeled
// device's 6 GB capacity.
func (g *Graph) Bytes() int64 {
	return int64(4) * int64(len(g.XAdj)+len(g.Adjncy)+len(g.AdjWgt)+len(g.VWgt))
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	var max int
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average vertex degree.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(len(g.Adjncy)) / float64(g.NumVertices())
}

// HasEdge reports whether u and v are adjacent. O(deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	adj, _ := g.Neighbors(u)
	for _, w := range adj {
		if w == v {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of edge {u,v}, or 0 when absent. O(deg(u)).
func (g *Graph) EdgeWeight(u, v int) int {
	adj, wgt := g.Neighbors(u)
	for i, w := range adj {
		if w == v {
			return wgt[i]
		}
	}
	return 0
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		XAdj:   make([]int, len(g.XAdj)),
		Adjncy: make([]int, len(g.Adjncy)),
		AdjWgt: make([]int, len(g.AdjWgt)),
		VWgt:   make([]int, len(g.VWgt)),
	}
	copy(c.XAdj, g.XAdj)
	copy(c.Adjncy, g.Adjncy)
	copy(c.AdjWgt, g.AdjWgt)
	copy(c.VWgt, g.VWgt)
	return c
}

// ErrInvalidGraph wraps all structural validation failures.
var ErrInvalidGraph = errors.New("graph: invalid CSR structure")

// Validate checks all CSR invariants and returns a descriptive error for
// the first violation found.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.XAdj) != n+1 {
		return fmt.Errorf("%w: len(XAdj)=%d, want NumVertices+1=%d", ErrInvalidGraph, len(g.XAdj), n+1)
	}
	if n == 0 {
		if len(g.Adjncy) != 0 {
			return fmt.Errorf("%w: empty vertex set with %d arcs", ErrInvalidGraph, len(g.Adjncy))
		}
		return nil
	}
	if g.XAdj[0] != 0 {
		return fmt.Errorf("%w: XAdj[0]=%d, want 0", ErrInvalidGraph, g.XAdj[0])
	}
	for v := 0; v < n; v++ {
		if g.XAdj[v+1] < g.XAdj[v] {
			return fmt.Errorf("%w: XAdj decreases at vertex %d", ErrInvalidGraph, v)
		}
	}
	m := g.XAdj[n]
	if len(g.Adjncy) != m || len(g.AdjWgt) != m {
		return fmt.Errorf("%w: arc arrays have %d/%d entries, XAdj says %d", ErrInvalidGraph, len(g.Adjncy), len(g.AdjWgt), m)
	}
	if m%2 != 0 {
		return fmt.Errorf("%w: odd arc count %d (graph must be symmetric)", ErrInvalidGraph, m)
	}
	for v, w := range g.VWgt {
		if w <= 0 {
			return fmt.Errorf("%w: vertex %d has non-positive weight %d", ErrInvalidGraph, v, w)
		}
	}
	for v := 0; v < n; v++ {
		adj, wgt := g.Neighbors(v)
		for i, u := range adj {
			if u < 0 || u >= n {
				return fmt.Errorf("%w: vertex %d has out-of-range neighbor %d", ErrInvalidGraph, v, u)
			}
			if u == v {
				return fmt.Errorf("%w: vertex %d has a self loop", ErrInvalidGraph, v)
			}
			if wgt[i] <= 0 {
				return fmt.Errorf("%w: arc (%d,%d) has non-positive weight %d", ErrInvalidGraph, v, u, wgt[i])
			}
		}
	}
	// Symmetry: every arc must have a reverse arc of equal weight. Checked
	// with per-vertex scans to stay allocation-light.
	for v := 0; v < n; v++ {
		adj, wgt := g.Neighbors(v)
		for i, u := range adj {
			if g.EdgeWeight(u, v) != wgt[i] {
				return fmt.Errorf("%w: arc (%d,%d,w=%d) has no matching reverse arc", ErrInvalidGraph, v, u, wgt[i])
			}
		}
	}
	return nil
}

// String returns a short structural summary, e.g. "graph{V=100 E=250}".
func (g *Graph) String() string {
	return fmt.Sprintf("graph{V=%d E=%d}", g.NumVertices(), g.NumEdges())
}
