package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"gpmetis/internal/fault"
	"gpmetis/internal/graph"
	"gpmetis/internal/perfmodel"
)

// Wire layout:
//
//	magic "GPCK" | version u16 | reserved u16 | payloadLen u64
//	| payload | sha256(payload)
//
// The payload is a flat little-endian field stream (see encodePayload).
// Everything after the header is covered by the trailing checksum, so a
// torn write, a truncated download, or a flipped bit all decode to
// ErrCorrupt rather than to a subtly wrong resume.

const (
	codecVersion = 1
	// maxPayload bounds decode-side allocation: a checkpoint holds at
	// most a handful of CSR graphs, so 1 GiB is far beyond any real
	// state and small enough to refuse absurd length prefixes.
	maxPayload = 1 << 30
)

var magic = [4]byte{'G', 'P', 'C', 'K'}

func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// Write encodes st to w in the versioned, checksummed binary form.
func Write(w io.Writer, st *State) error {
	payload := encodePayload(st)
	var hdr [16]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint16(hdr[4:], codecVersion)
	putU64(hdr[8:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	_, err := w.Write(sum[:])
	return err
}

// Read decodes a checkpoint written by Write, verifying version and
// checksum. All failures wrap ErrCorrupt.
func Read(r io.Reader) (*State, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:4], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorrupt, v, codecVersion)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrCorrupt, err)
	}
	var sum [sha256.Size]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrCorrupt, err)
	}
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	st, err := decodePayload(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return st, nil
}

// enc is a little-endian append-only field writer.
type enc struct{ b []byte }

func (e *enc) u64(v uint64) {
	var b [8]byte
	putU64(b[:], v)
	e.b = append(e.b, b[:]...)
}
func (e *enc) i(v int)        { e.u64(uint64(int64(v))) }
func (e *enc) i64(v int64)    { e.u64(uint64(v)) }
func (e *enc) f64(v float64)  { e.u64(math.Float64bits(v)) }
func (e *enc) u8(v uint8)     { e.b = append(e.b, v) }
func (e *enc) str(s string)   { e.i(len(s)); e.b = append(e.b, s...) }
func (e *enc) ints(s []int) {
	e.i(len(s))
	for _, v := range s {
		e.i(v)
	}
}

func encodePayload(st *State) []byte {
	e := &enc{}
	e.u64(st.GraphDigest)
	e.u64(st.OptionsSig)
	e.u8(uint8(st.Phase))
	e.i(st.Level)
	e.i(st.GPULevels)
	e.i(st.CPULevels)
	e.i(st.MatchConflicts)
	e.i(st.MatchAttempts)

	e.i(len(st.Graphs))
	for _, g := range st.Graphs {
		e.ints(g.XAdj)
		e.ints(g.Adjncy)
		e.ints(g.AdjWgt)
		e.ints(g.VWgt)
	}
	e.i(len(st.Cmaps))
	for _, c := range st.Cmaps {
		e.ints(c)
	}
	e.ints(st.Part)

	e.f64(st.Clock)
	e.i(len(st.Timeline))
	for _, p := range st.Timeline {
		e.str(p.Name)
		e.u8(uint8(p.Loc))
		e.f64(p.Seconds)
		e.i64(p.Span)
	}

	s := st.Stats
	for _, v := range []int64{int64(s.Kernels), s.Threads, s.WarpInstructions,
		s.LaneInstructions, s.Transactions, s.Accesses, s.AtomicOps,
		s.AtomicSerial, s.BytesToDevice, s.BytesToHost} {
		e.i64(v)
	}

	e.i(len(st.Events))
	for _, ev := range st.Events {
		e.str(ev.Site)
		e.str(ev.Action)
		e.i(ev.Level)
		e.f64(ev.Seconds)
		e.str(ev.Detail)
	}

	if st.Fault == nil {
		e.u8(0)
	} else {
		e.u8(1)
		e.counterMap(st.Fault.Evals)
		e.counterMap(st.Fault.Fires)
	}
	return e.b
}

func (e *enc) counterMap(m map[fault.Site]int64) {
	// Sorted emission keeps the encoding canonical: equal states encode
	// to equal bytes regardless of map iteration order.
	sites := make([]string, 0, len(m))
	for s := range m {
		sites = append(sites, string(s))
	}
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0 && sites[j] < sites[j-1]; j-- {
			sites[j], sites[j-1] = sites[j-1], sites[j]
		}
	}
	e.i(len(sites))
	for _, s := range sites {
		e.str(s)
		e.i64(m[fault.Site(s)])
	}
}

// dec is the matching reader; every accessor returns an error on
// truncation or an implausible length so decodePayload can bail early.
type dec struct {
	b   []byte
	off int
}

func (d *dec) u64() (uint64, error) {
	if d.off+8 > len(d.b) {
		return 0, fmt.Errorf("truncated at offset %d", d.off)
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}
func (d *dec) i() (int, error) {
	v, err := d.u64()
	return int(int64(v)), err
}
func (d *dec) i64() (int64, error) {
	v, err := d.u64()
	return int64(v), err
}
func (d *dec) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}
func (d *dec) u8() (uint8, error) {
	if d.off >= len(d.b) {
		return 0, fmt.Errorf("truncated at offset %d", d.off)
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}
func (d *dec) count() (int, error) {
	n, err := d.i()
	if err != nil {
		return 0, err
	}
	// No field can legitimately hold more elements than remaining bytes.
	if n < 0 || n > len(d.b)-d.off {
		return 0, fmt.Errorf("implausible count %d at offset %d", n, d.off)
	}
	return n, nil
}
func (d *dec) str() (string, error) {
	n, err := d.count()
	if err != nil {
		return "", err
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s, nil
}
func (d *dec) ints() ([]int, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > (len(d.b)-d.off)/8 {
		return nil, fmt.Errorf("implausible slice length %d at offset %d", n, d.off)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(d.b[d.off:])))
		d.off += 8
	}
	return out, nil
}

func decodePayload(b []byte) (*State, error) {
	d := &dec{b: b}
	st := &State{}
	var err error
	if st.GraphDigest, err = d.u64(); err != nil {
		return nil, err
	}
	if st.OptionsSig, err = d.u64(); err != nil {
		return nil, err
	}
	ph, err := d.u8()
	if err != nil {
		return nil, err
	}
	st.Phase = Phase(ph)
	if st.Phase < PhaseCoarsen || st.Phase > PhaseUncoarsen {
		return nil, fmt.Errorf("unknown phase %d", ph)
	}
	if st.Level, err = d.i(); err != nil {
		return nil, err
	}
	if st.GPULevels, err = d.i(); err != nil {
		return nil, err
	}
	if st.CPULevels, err = d.i(); err != nil {
		return nil, err
	}
	if st.MatchConflicts, err = d.i(); err != nil {
		return nil, err
	}
	if st.MatchAttempts, err = d.i(); err != nil {
		return nil, err
	}

	ng, err := d.count()
	if err != nil {
		return nil, err
	}
	st.Graphs = make([]*graph.Graph, ng)
	for j := range st.Graphs {
		g := &graph.Graph{}
		if g.XAdj, err = d.ints(); err != nil {
			return nil, err
		}
		if g.Adjncy, err = d.ints(); err != nil {
			return nil, err
		}
		if g.AdjWgt, err = d.ints(); err != nil {
			return nil, err
		}
		if g.VWgt, err = d.ints(); err != nil {
			return nil, err
		}
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("graph %d: %v", j, err)
		}
		st.Graphs[j] = g
	}
	nc, err := d.count()
	if err != nil {
		return nil, err
	}
	st.Cmaps = make([][]int, nc)
	for j := range st.Cmaps {
		if st.Cmaps[j], err = d.ints(); err != nil {
			return nil, err
		}
	}
	if st.Part, err = d.ints(); err != nil {
		return nil, err
	}

	if st.Clock, err = d.f64(); err != nil {
		return nil, err
	}
	np, err := d.count()
	if err != nil {
		return nil, err
	}
	st.Timeline = make([]perfmodel.Phase, np)
	for j := range st.Timeline {
		p := &st.Timeline[j]
		if p.Name, err = d.str(); err != nil {
			return nil, err
		}
		loc, err := d.u8()
		if err != nil {
			return nil, err
		}
		p.Loc = perfmodel.Location(loc)
		if p.Seconds, err = d.f64(); err != nil {
			return nil, err
		}
		if p.Span, err = d.i64(); err != nil {
			return nil, err
		}
	}

	for _, dst := range []*int64{nil, &st.Stats.Threads, &st.Stats.WarpInstructions,
		&st.Stats.LaneInstructions, &st.Stats.Transactions, &st.Stats.Accesses,
		&st.Stats.AtomicOps, &st.Stats.AtomicSerial, &st.Stats.BytesToDevice,
		&st.Stats.BytesToHost} {
		v, err := d.i64()
		if err != nil {
			return nil, err
		}
		if dst == nil {
			st.Stats.Kernels = int(v)
		} else {
			*dst = v
		}
	}

	ne, err := d.count()
	if err != nil {
		return nil, err
	}
	st.Events = make([]Event, ne)
	for j := range st.Events {
		ev := &st.Events[j]
		if ev.Site, err = d.str(); err != nil {
			return nil, err
		}
		if ev.Action, err = d.str(); err != nil {
			return nil, err
		}
		if ev.Level, err = d.i(); err != nil {
			return nil, err
		}
		if ev.Seconds, err = d.f64(); err != nil {
			return nil, err
		}
		if ev.Detail, err = d.str(); err != nil {
			return nil, err
		}
	}

	hasFault, err := d.u8()
	if err != nil {
		return nil, err
	}
	if hasFault == 1 {
		c := &fault.Counters{}
		if c.Evals, err = d.siteMap(); err != nil {
			return nil, err
		}
		if c.Fires, err = d.siteMap(); err != nil {
			return nil, err
		}
		st.Fault = c
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%d trailing bytes", len(d.b)-d.off)
	}
	return st, nil
}

func (d *dec) siteMap() (map[fault.Site]int64, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	m := make(map[fault.Site]int64, n)
	for i := 0; i < n; i++ {
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.i64()
		if err != nil {
			return nil, err
		}
		m[fault.Site(s)] = v
	}
	return m, nil
}
