package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gpmetis/internal/fault"
	"gpmetis/internal/gpu"
	"gpmetis/internal/graph"
	"gpmetis/internal/perfmodel"
)

// testState builds a snapshot exercising every encoded field, including
// the optional ones (partition vector, events, fault counters).
func testState(t *testing.T) *State {
	t.Helper()
	// A triangle and a 2-path: two small valid CSR graphs.
	g1 := &graph.Graph{
		XAdj:   []int{0, 2, 4, 6},
		Adjncy: []int{1, 2, 0, 2, 0, 1},
		AdjWgt: []int{1, 2, 1, 3, 2, 3},
		VWgt:   []int{1, 1, 1},
	}
	g2 := &graph.Graph{
		XAdj:   []int{0, 1, 2},
		Adjncy: []int{1, 0},
		AdjWgt: []int{4, 4},
		VWgt:   []int{2, 1},
	}
	for _, g := range []*graph.Graph{g1, g2} {
		if err := g.Validate(); err != nil {
			t.Fatalf("test graph invalid: %v", err)
		}
	}
	return &State{
		GraphDigest:    0xdeadbeefcafe,
		OptionsSig:     0x0123456789abcdef,
		Phase:          PhaseUncoarsen,
		Level:          1,
		GPULevels:      2,
		CPULevels:      3,
		MatchConflicts: 7,
		MatchAttempts:  41,
		Graphs:         []*graph.Graph{g1, g2},
		Cmaps:          [][]int{{0, 0, 1, 2}, {0, 1, 1}},
		Part:           []int{0, 1, 0},
		Timeline: []perfmodel.Phase{
			{Name: "upload", Loc: perfmodel.LocPCIe, Seconds: 0.5, Span: 3},
			{Name: "coarsen.L0", Loc: perfmodel.LocGPU, Seconds: 1.25, Span: 0},
			{Name: "cpu.metis", Loc: perfmodel.LocCPU, Seconds: math.Pi, Span: 9},
		},
		Clock: 0.5 + 1.25 + math.Pi,
		Stats: gpu.Stats{
			Kernels: 5, Threads: 1000, WarpInstructions: 2000,
			LaneInstructions: 3000, Transactions: 400, Accesses: 500,
			AtomicOps: 60, AtomicSerial: 70, BytesToDevice: 8000, BytesToHost: 900,
		},
		Events: []Event{
			{Site: "gpu.kernel", Action: "hash-to-sort", Level: 1, Seconds: 0.25, Detail: "injected"},
		},
		Fault: &fault.Counters{
			Evals: map[fault.Site]int64{"gpu.kernel": 12, "transfer": 4},
			Fires: map[fault.Site]int64{"gpu.kernel": 1},
		},
	}
}

func encode(t *testing.T, st *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestCodecRoundTrip(t *testing.T) {
	st := testState(t)
	got, err := Read(bytes.NewReader(encode(t, st)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.GraphDigest != st.GraphDigest || got.OptionsSig != st.OptionsSig {
		t.Errorf("fingerprints: got (%x,%x) want (%x,%x)",
			got.GraphDigest, got.OptionsSig, st.GraphDigest, st.OptionsSig)
	}
	if got.Phase != st.Phase || got.Level != st.Level {
		t.Errorf("phase/level: got (%v,%d) want (%v,%d)", got.Phase, got.Level, st.Phase, st.Level)
	}
	if got.GPULevels != st.GPULevels || got.CPULevels != st.CPULevels ||
		got.MatchConflicts != st.MatchConflicts || got.MatchAttempts != st.MatchAttempts {
		t.Errorf("counters differ: got %+v", got)
	}
	if len(got.Graphs) != len(st.Graphs) {
		t.Fatalf("got %d graphs, want %d", len(got.Graphs), len(st.Graphs))
	}
	for j := range st.Graphs {
		if !graphEqual(got.Graphs[j], st.Graphs[j]) {
			t.Errorf("graph %d differs", j)
		}
	}
	if len(got.Cmaps) != len(st.Cmaps) {
		t.Fatalf("got %d cmaps, want %d", len(got.Cmaps), len(st.Cmaps))
	}
	for j := range st.Cmaps {
		if !intsEqual(got.Cmaps[j], st.Cmaps[j]) {
			t.Errorf("cmap %d differs", j)
		}
	}
	if !intsEqual(got.Part, st.Part) {
		t.Errorf("part: got %v want %v", got.Part, st.Part)
	}
	if len(got.Timeline) != len(st.Timeline) {
		t.Fatalf("got %d timeline phases, want %d", len(got.Timeline), len(st.Timeline))
	}
	for j, p := range st.Timeline {
		if got.Timeline[j] != p {
			t.Errorf("phase %d: got %+v want %+v", j, got.Timeline[j], p)
		}
	}
	if got.ModeledSeconds() != st.ModeledSeconds() {
		t.Errorf("modeled seconds: got %v want %v", got.ModeledSeconds(), st.ModeledSeconds())
	}
	if got.Stats != st.Stats {
		t.Errorf("stats: got %+v want %+v", got.Stats, st.Stats)
	}
	if len(got.Events) != 1 || got.Events[0] != st.Events[0] {
		t.Errorf("events: got %+v want %+v", got.Events, st.Events)
	}
	if got.Fault == nil {
		t.Fatal("fault counters lost")
	}
	for site, v := range st.Fault.Evals {
		if got.Fault.Evals[site] != v {
			t.Errorf("evals[%s]: got %d want %d", site, got.Fault.Evals[site], v)
		}
	}
	for site, v := range st.Fault.Fires {
		if got.Fault.Fires[site] != v {
			t.Errorf("fires[%s]: got %d want %d", site, got.Fault.Fires[site], v)
		}
	}
}

func TestCodecNilOptionalFields(t *testing.T) {
	st := &State{Phase: PhaseCoarsen, Level: 1,
		Graphs: testState(t).Graphs[:1], Cmaps: [][]int{{0, 0, 1}}}
	got, err := Read(bytes.NewReader(encode(t, st)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Part != nil || got.Events != nil && len(got.Events) != 0 || got.Fault != nil {
		t.Errorf("optional fields not empty: part=%v events=%v fault=%v",
			got.Part, got.Events, got.Fault)
	}
}

func TestCodecCanonical(t *testing.T) {
	// Equal states must encode to equal bytes — map iteration order must
	// not leak into the stream (the journal digests these bytes).
	a := encode(t, testState(t))
	for i := 0; i < 10; i++ {
		if !bytes.Equal(a, encode(t, testState(t))) {
			t.Fatal("encoding is not canonical across runs")
		}
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	good := encode(t, testState(t))

	t.Run("bit flips", func(t *testing.T) {
		// Flip one bit at a spread of offsets; every flip must be caught.
		for off := 0; off < len(good); off += 13 {
			bad := append([]byte(nil), good...)
			bad[off] ^= 0x40
			if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
				t.Errorf("flip at %d: got %v, want ErrCorrupt", off, err)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, n := range []int{0, 3, 16, len(good) / 2, len(good) - 1} {
			if _, err := Read(bytes.NewReader(good[:n])); !errors.Is(err, ErrCorrupt) {
				t.Errorf("truncated to %d: got %v, want ErrCorrupt", n, err)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		copy(bad, "NOPE")
		if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint16(bad[4:], 99)
		if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("absurd length", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		putU64(bad[8:], 1<<40)
		if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("trailing garbage in payload", func(t *testing.T) {
		// Extend the payload and fix up length + checksum: structurally
		// valid wrapper, trailing junk inside. The decoder must notice.
		st := testState(t)
		payload := encodePayload(st)
		payload = append(payload, 0xFF)
		var buf bytes.Buffer
		var hdr [16]byte
		copy(hdr[:4], magic[:])
		binary.LittleEndian.PutUint16(hdr[4:], codecVersion)
		putU64(hdr[8:], uint64(len(payload)))
		buf.Write(hdr[:])
		buf.Write(payload)
		sum := sha256.Sum256(payload)
		buf.Write(sum[:])
		if _, err := Read(&buf); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v, want ErrCorrupt", err)
		}
	})
}

func TestWriteFileReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	st := testState(t)
	if err := WriteFile(path, st); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.GraphDigest != st.GraphDigest || got.Phase != st.Phase {
		t.Errorf("round trip lost identity: %+v", got)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want just the checkpoint", len(entries))
	}
}

func TestWriteFileDurabilityError(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "missing", "deep", "run.ckpt"), testState(t))
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("got %v, want ErrDurability", err)
	}
}

func TestDigestGraphDiscriminates(t *testing.T) {
	st := testState(t)
	g1, g2 := st.Graphs[0], st.Graphs[1]
	if DigestGraph(g1) == DigestGraph(g2) {
		t.Error("different graphs, same digest")
	}
	if DigestGraph(g1) != DigestGraph(g1) {
		t.Error("digest not deterministic")
	}
	// A single weight change must change the digest.
	mod := &graph.Graph{
		XAdj:   g1.XAdj,
		Adjncy: g1.Adjncy,
		AdjWgt: append([]int(nil), g1.AdjWgt...),
		VWgt:   g1.VWgt,
	}
	mod.AdjWgt[0]++
	if DigestGraph(g1) == DigestGraph(mod) {
		t.Error("weight change not reflected in digest")
	}
}

func graphEqual(a, b *graph.Graph) bool {
	return intsEqual(a.XAdj, b.XAdj) && intsEqual(a.Adjncy, b.Adjncy) &&
		intsEqual(a.AdjWgt, b.AdjWgt) && intsEqual(a.VWgt, b.VWgt)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
