// Package checkpoint snapshots the GP-metis pipeline at its natural
// consistency points — the level boundaries where work hands between the
// GPU and the CPU — so a run that dies mid-pipeline (fault budget
// exhausted, cooperative cancel, process kill) can be resumed from the
// last boundary and produce a bit-identical partition and modeled time
// to an uninterrupted run.
//
// A State captures everything the remaining pipeline stages read: the
// CSR graph chain of the live levels, the cmap chain, the current
// partition vector when one exists, the modeled timeline, the device
// activity counters, and the fault injector's per-site coin counters.
// Restoring a State rebuilds the modeled device allocations without
// charging the modeled clock and without burning fault coins, so the
// resumed run replays the exact decision sequence the uninterrupted run
// would have made.
//
// The on-disk form is a versioned, checksummed binary codec (see
// codec.go). Decoding rejects truncation, bit flips, and version skew
// with ErrCorrupt; resuming against the wrong graph or options is
// rejected with ErrMismatch before any work happens.
package checkpoint

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"gpmetis/internal/fault"
	"gpmetis/internal/gpu"
	"gpmetis/internal/graph"
	"gpmetis/internal/perfmodel"
)

// Typed errors, testable with errors.Is.
var (
	// ErrCorrupt reports a checkpoint that failed decoding: bad magic,
	// unsupported version, truncation, or a checksum mismatch.
	ErrCorrupt = errors.New("checkpoint: corrupt or truncated checkpoint")
	// ErrMismatch reports a checkpoint that decoded cleanly but belongs
	// to a different (graph, options) pair than the resuming run.
	ErrMismatch = errors.New("checkpoint: checkpoint does not match this run")
	// ErrDurability reports that persistent state (a checkpoint file, a
	// journal append) could not be made durable — ENOSPC, a vanished
	// directory, an fsync failure. Callers are expected to degrade to
	// non-durable operation rather than crash.
	ErrDurability = errors.New("durability: cannot persist state")
)

// Phase says which pipeline stage the snapshot closed.
type Phase uint8

// Snapshot phases, in pipeline order.
const (
	// PhaseCoarsen marks the boundary after GPU coarsening level
	// Level-1 completed (Level levels exist).
	PhaseCoarsen Phase = 1
	// PhaseCPUDone marks the boundary after the CPU middle phase: the
	// coarsest graph is partitioned, un-coarsening has not started.
	PhaseCPUDone Phase = 2
	// PhaseUncoarsen marks the boundary after GPU uncoarsening level
	// Level completed: Part partitions that level's fine graph.
	PhaseUncoarsen Phase = 3
)

// String names the phase for logs.
func (p Phase) String() string {
	switch p {
	case PhaseCoarsen:
		return "coarsen"
	case PhaseCPUDone:
		return "cpu-done"
	case PhaseUncoarsen:
		return "uncoarsen"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// Event mirrors one absorbed fault event (core.FaultEvent) without
// importing the core package.
type Event struct {
	Site    string
	Action  string
	Level   int
	Seconds float64
	Detail  string
}

// State is one pipeline snapshot. All slices are private copies: the
// snapshot stays valid after the run that produced it moves on.
type State struct {
	// GraphDigest and OptionsSig fingerprint the (input graph, options)
	// pair the snapshot belongs to; Resume verifies both.
	GraphDigest uint64
	OptionsSig  uint64

	Phase Phase
	// Level is the number of completed GPU coarsening levels
	// (PhaseCoarsen/PhaseCPUDone) or the just-completed uncoarsening
	// level index (PhaseUncoarsen).
	Level int

	// GPULevels/CPULevels are the result counters valid from
	// PhaseCPUDone onward.
	GPULevels, CPULevels int
	// MatchConflicts/MatchAttempts accumulate the lock-free matching
	// counters up to the boundary.
	MatchConflicts, MatchAttempts int

	// Graphs is the coarse-graph chain of the still-live levels:
	// Graphs[j] is level j's coarse graph (level j+1's fine graph).
	// For PhaseUncoarsen only levels below Level remain live.
	Graphs []*graph.Graph
	// Cmaps[j] maps level j's fine vertices to Graphs[j] vertices.
	Cmaps [][]int
	// Part is the current partition vector (nil during coarsening).
	Part []int

	// Timeline is the modeled-phase record up to the boundary. Clock is
	// the run's accumulated total at the boundary, carried explicitly
	// rather than re-derived: merged sub-timelines fold into the total
	// with a different floating-point grouping than a flat re-sum, and
	// bit-identical resume needs the exact accumulated value.
	Timeline []perfmodel.Phase
	Clock    float64
	// Stats is the device activity snapshot at the boundary.
	Stats gpu.Stats
	// Events lists the faults absorbed before the boundary.
	Events []Event
	// Fault carries the injector's per-site evaluation/fire counters,
	// nil when the run is unfaulted.
	Fault *fault.Counters
}

// ModeledSeconds returns the modeled clock at the snapshot boundary.
func (st *State) ModeledSeconds() float64 { return st.Clock }

// Describe summarizes the snapshot for logs: "uncoarsen.L2 @ 0.0123s".
func (st *State) Describe() string {
	switch st.Phase {
	case PhaseUncoarsen:
		return fmt.Sprintf("uncoarsen.L%d @ %.4gs", st.Level, st.ModeledSeconds())
	case PhaseCPUDone:
		return fmt.Sprintf("cpu-done @ %.4gs", st.ModeledSeconds())
	default:
		return fmt.Sprintf("coarsen.L%d @ %.4gs", st.Level-1, st.ModeledSeconds())
	}
}

// DigestGraph fingerprints a graph's CSR arrays with FNV-1a. It is not
// cryptographic — it guards against honest mistakes (resuming the wrong
// input), not adversaries.
func DigestGraph(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int) {
		putU64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(len(g.XAdj))
	writeInt(len(g.Adjncy))
	for _, s := range [][]int{g.XAdj, g.Adjncy, g.AdjWgt, g.VWgt} {
		for _, v := range s {
			writeInt(v)
		}
	}
	return h.Sum64()
}

// SigHash folds an ordered tuple of option words into one fingerprint,
// for building OptionsSig values.
func SigHash(words ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range words {
		putU64(buf[:], w)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Float64Bits exposes the IEEE-754 bits of f for SigHash words.
func Float64Bits(f float64) uint64 { return math.Float64bits(f) }

// WriteFile atomically persists st at path: the codec stream goes to a
// temp file in the same directory which is then fsynced and renamed
// into place, so a crash mid-write can never leave a half checkpoint
// under the final name. Any I/O failure wraps ErrDurability.
func WriteFile(path string, st *State) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	if err := Write(tmp, st); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return nil
}

// ReadFile loads a checkpoint written by WriteFile.
func ReadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
