// Package fault is a deterministic, seeded fault injector for the modeled
// CPU-GPU substrate. Production code declares named fault sites (a GPU
// allocation, a PCIe transfer, an MPI rank starting up) and asks the
// injector whether that site fires this time; test scenarios arm sites
// with rules (fire with probability p, fire on the Nth evaluation, cap
// modeled device memory). Everything is derived from a single seed by
// counter-based hashing, so a scenario replays identically: same fires,
// same modeled time, same partition.
//
// A nil *Injector is a valid no-op — every method is nil-safe and
// allocation-free, mirroring the internal/obs design, so an un-faulted
// run pays nothing.
package fault

import (
	"fmt"
	"sync"
)

// Site names a point in the pipeline where a fault can be injected.
type Site string

// The fault sites wired into the substrate. SiteGPUMemCap is a
// pseudo-site: it is not evaluated per-call but arms an artificial
// device-memory cap via Rule.Cap.
const (
	SiteGPUAlloc     Site = "gpu.alloc"     // gpu.Malloc fails outright
	SiteGPUMemCap    Site = "gpu.memcap"    // artificial device-memory pressure (Rule.Cap)
	SiteKernel       Site = "gpu.kernel"    // transient kernel-launch error
	SiteTransfer     Site = "pcie.transfer" // transient PCIe transfer error
	SiteDevice       Site = "multigpu.device" // a device in PartitionMulti dies
	SiteMPIRank      Site = "mpi.rank"      // an MPI rank fails at startup
	SiteHashOverflow Site = "contract.hash" // hash-table contraction overflow
)

// Sites lists every known fault site, for iterating metrics exports.
var Sites = []Site{
	SiteGPUAlloc, SiteGPUMemCap, SiteKernel, SiteTransfer,
	SiteDevice, SiteMPIRank, SiteHashOverflow,
}

// Transient reports whether faults at this site are transient (worth
// retrying in place) rather than permanent (device dead, memory gone).
func (s Site) Transient() bool {
	return s == SiteKernel || s == SiteTransfer
}

// Rule says when an armed site fires. Zero fields are inactive; the
// fields combine as: the site fires on evaluation seq (1-based) if
// seq == At, or if seq > After and the seeded coin with probability P
// comes up heads — but never more than Limit times total (0 = no limit).
type Rule struct {
	P     float64 // probability per evaluation, in [0,1]
	At    int64   // fire exactly on this 1-based evaluation (0 = off)
	After int64   // P applies only after this many evaluations
	Limit int64   // maximum number of fires (0 = unlimited)
	Cap   int64   // SiteGPUMemCap only: modeled device-memory cap in bytes
}

// Error is an injected fault. It records the site and the 1-based
// evaluation sequence at which it fired, so error text pinpoints the
// exact injection.
type Error struct {
	Site Site
	Seq  int64
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s failure (evaluation %d)", e.Site, e.Seq)
}

// Transient reports whether this fault is retryable in place.
func (e *Error) Transient() bool { return e.Site.Transient() }

// DeviceLost is the typed panic payload used to model a GPU dying
// mid-kernel after retries are exhausted: the simulator cannot return an
// error from inside a kernel closure, so it unwinds with this and the
// pipeline's recover barrier converts it back into an error.
type DeviceLost struct {
	Err *Error
}

func (d *DeviceLost) Error() string {
	return fmt.Sprintf("fault: device lost: %v", d.Err)
}

func (d *DeviceLost) Unwrap() error { return d.Err }

// Injector evaluates armed rules deterministically. Concurrency-safe:
// multi-GPU shards and MPI ranks share one injector.
type Injector struct {
	seed int64

	mu    sync.Mutex
	rules map[Site]*Rule
	evals map[Site]int64
	fires map[Site]int64
}

// New returns an injector with no rules armed; it fires nothing until
// Arm is called. seed drives every probabilistic rule.
func New(seed int64) *Injector {
	return &Injector{
		seed:  seed,
		rules: make(map[Site]*Rule),
		evals: make(map[Site]int64),
		fires: make(map[Site]int64),
	}
}

// Arm installs rule for site, replacing any previous rule. Arming a site
// does not reset its evaluation counter, so scenarios can re-arm
// mid-run.
func (in *Injector) Arm(site Site, rule Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	r := rule
	in.rules[site] = &r
	in.mu.Unlock()
}

// Check evaluates site against its armed rule using the site's own
// evaluation counter. It returns a non-nil *Error if the fault fires.
// Nil-safe: a nil injector never fires.
func (in *Injector) Check(site Site) *Error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.evals[site]++
	return in.eval(site, in.evals[site])
}

// CheckAt evaluates site with a caller-supplied 1-based sequence number
// instead of the internal counter. Used where the sequence has external
// meaning (the MPI rank id, the multi-GPU device index) so that "rank 2
// fails" is expressible as Rule{At: 3}.
func (in *Injector) CheckAt(site Site, seq int64) *Error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.evals[site]++
	return in.eval(site, seq)
}

// eval applies the rule for site at sequence seq. Caller holds in.mu.
func (in *Injector) eval(site Site, seq int64) *Error {
	r := in.rules[site]
	if r == nil {
		return nil
	}
	if r.Limit > 0 && in.fires[site] >= r.Limit {
		return nil
	}
	fire := false
	if r.At > 0 && seq == r.At {
		fire = true
	}
	if !fire && r.P > 0 && seq > r.After {
		// Counter-based hashing rather than a shared PRNG stream keeps
		// the decision a pure function of (seed, site, seq): concurrent
		// shards interleave Check calls nondeterministically but each
		// still sees the same coin for the same sequence number.
		fire = coin(in.seed, site, seq) < r.P
	}
	if !fire {
		return nil
	}
	in.fires[site]++
	return &Error{Site: site, Seq: seq}
}

// MemCap returns the armed artificial device-memory cap in bytes, or 0
// if none is armed. Nil-safe.
func (in *Injector) MemCap() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if r := in.rules[SiteGPUMemCap]; r != nil {
		return r.Cap
	}
	return 0
}

// Fires returns how many times site has fired so far.
func (in *Injector) Fires(site Site) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fires[site]
}

// Evals returns how many times site has been evaluated so far.
func (in *Injector) Evals(site Site) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.evals[site]
}

// Seed returns the seed driving the injector's coins. Nil-safe (0).
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Counters is a portable snapshot of an injector's per-site evaluation
// and fire counts — the complete mutable state of an injector besides
// its rules, which are configuration. Checkpoint/restore uses it to
// resume a run at the exact coin the interrupted run would have flipped
// next.
type Counters struct {
	Evals map[Site]int64
	Fires map[Site]int64
}

// ExportCounters snapshots the injector's counters. Nil-safe (nil).
func (in *Injector) ExportCounters() *Counters {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	c := &Counters{
		Evals: make(map[Site]int64, len(in.evals)),
		Fires: make(map[Site]int64, len(in.fires)),
	}
	for s, v := range in.evals {
		c.Evals[s] = v
	}
	for s, v := range in.fires {
		c.Fires[s] = v
	}
	return c
}

// RestoreCounters overwrites the injector's counters with a snapshot
// taken by ExportCounters. The armed rules are untouched: restoring is
// about where in the coin sequence the run is, not about what can fail.
func (in *Injector) RestoreCounters(c *Counters) {
	if in == nil || c == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.evals = make(map[Site]int64, len(c.Evals))
	in.fires = make(map[Site]int64, len(c.Fires))
	for s, v := range c.Evals {
		in.evals[s] = v
	}
	for s, v := range c.Fires {
		in.fires[s] = v
	}
}

// Armed reports whether any rule is armed for site. Nil-safe.
func (in *Injector) Armed(site Site) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rules[site] != nil
}

// coin maps (seed, site, seq) to a uniform float64 in [0,1) via
// splitmix64 over a hash of the inputs.
func coin(seed int64, site Site, seq int64) float64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(site); i++ {
		h = (h ^ uint64(site[i])) * 0x100000001b3
	}
	h ^= uint64(seq) * 0xff51afd7ed558ccd
	// splitmix64 finalizer
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}

// RetryPolicy bounds in-place retries of transient faults. Backoff is
// charged to the modeled clock, so resilience has a visible cost.
type RetryPolicy struct {
	Max        int     // retries after the first attempt (0 = no retries)
	BackoffSec float64 // modeled backoff before the first retry
	Multiplier float64 // backoff growth per retry (exponential)
}

// DefaultRetryPolicy retries transient faults up to 3 times with
// 50 µs exponential backoff — on the scale of a kernel launch, so a
// handful of retries is visible but not dominant on the timeline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Max: 3, BackoffSec: 50e-6, Multiplier: 2}
}

// Backoff returns the modeled backoff in seconds before retry attempt
// (1-based): BackoffSec * Multiplier^(attempt-1).
func (p RetryPolicy) Backoff(attempt int) float64 {
	b := p.BackoffSec
	for i := 1; i < attempt; i++ {
		b *= p.Multiplier
	}
	return b
}
