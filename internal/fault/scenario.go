package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds an injector from a scenario spec, the format behind the
// gpmetis -faults flag. A spec is ';'-separated entries, each
//
//	site:key=val[,key=val...]
//
// with keys p (probability), at (1-based evaluation), after, limit, and
// cap (bytes, with optional K/M/G suffix; only meaningful for
// gpu.memcap). Examples:
//
//	pcie.transfer:p=0.2
//	gpu.memcap:cap=256M
//	gpu.kernel:at=5;multigpu.device:at=2
//
// An empty spec returns a nil injector (no-op).
func Parse(seed int64, spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := New(seed)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, rest, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q: want site:key=val[,key=val]", entry)
		}
		s := Site(strings.TrimSpace(site))
		if !knownSite(s) {
			return nil, fmt.Errorf("fault: unknown site %q (want one of %s)", site, knownSiteList())
		}
		var r Rule
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("fault: entry %q: bad key=val %q", entry, kv)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			switch key {
			case "p":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("fault: entry %q: p=%q not a probability", entry, val)
				}
				r.P = p
			case "at":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("fault: entry %q: at=%q not a positive integer", entry, val)
				}
				r.At = n
			case "after":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: entry %q: after=%q not a non-negative integer", entry, val)
				}
				r.After = n
			case "limit":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: entry %q: limit=%q not a non-negative integer", entry, val)
				}
				r.Limit = n
			case "cap":
				n, err := parseBytes(val)
				if err != nil {
					return nil, fmt.Errorf("fault: entry %q: %v", entry, err)
				}
				r.Cap = n
			default:
				return nil, fmt.Errorf("fault: entry %q: unknown key %q (want p, at, after, limit, or cap)", entry, key)
			}
		}
		if r == (Rule{}) {
			return nil, fmt.Errorf("fault: entry %q arms nothing", entry)
		}
		if s == SiteGPUMemCap && r.Cap == 0 {
			return nil, fmt.Errorf("fault: entry %q: %s needs cap=<bytes>", entry, SiteGPUMemCap)
		}
		in.Arm(s, r)
	}
	return in, nil
}

func knownSite(s Site) bool {
	for _, k := range Sites {
		if s == k {
			return true
		}
	}
	return false
}

func knownSiteList() string {
	names := make([]string, len(Sites))
	for i, s := range Sites {
		names[i] = string(s)
	}
	return strings.Join(names, ", ")
}

// parseBytes parses a byte count with an optional K/M/G binary suffix.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("cap %q not a positive byte count", s)
	}
	return n * mult, nil
}
