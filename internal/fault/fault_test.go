package fault

import (
	"errors"
	"testing"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	in.Arm(SiteKernel, Rule{P: 1})
	if e := in.Check(SiteKernel); e != nil {
		t.Fatalf("nil injector fired: %v", e)
	}
	if e := in.CheckAt(SiteMPIRank, 1); e != nil {
		t.Fatalf("nil injector fired: %v", e)
	}
	if in.MemCap() != 0 || in.Fires(SiteKernel) != 0 || in.Evals(SiteKernel) != 0 || in.Armed(SiteKernel) {
		t.Fatal("nil injector reported state")
	}
}

func TestNilInjectorCheckAllocs(t *testing.T) {
	var in *Injector
	n := testing.AllocsPerRun(100, func() {
		in.Check(SiteKernel)
		in.CheckAt(SiteDevice, 1)
	})
	if n != 0 {
		t.Fatalf("nil Check allocates %v times per run", n)
	}
}

func TestUnarmedSiteNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 100; i++ {
		if e := in.Check(SiteKernel); e != nil {
			t.Fatalf("unarmed site fired at eval %d", i+1)
		}
	}
}

func TestRuleAt(t *testing.T) {
	in := New(1)
	in.Arm(SiteTransfer, Rule{At: 3})
	for i := 1; i <= 5; i++ {
		e := in.Check(SiteTransfer)
		if (i == 3) != (e != nil) {
			t.Fatalf("eval %d: fired=%v", i, e != nil)
		}
		if e != nil && (e.Site != SiteTransfer || e.Seq != 3) {
			t.Fatalf("bad error: %+v", e)
		}
	}
	if in.Fires(SiteTransfer) != 1 || in.Evals(SiteTransfer) != 5 {
		t.Fatalf("fires=%d evals=%d", in.Fires(SiteTransfer), in.Evals(SiteTransfer))
	}
}

func TestRuleProbabilityDeterministic(t *testing.T) {
	runs := func() []int64 {
		in := New(42)
		in.Arm(SiteKernel, Rule{P: 0.3})
		var seqs []int64
		for i := 0; i < 200; i++ {
			if e := in.Check(SiteKernel); e != nil {
				seqs = append(seqs, e.Seq)
			}
		}
		return seqs
	}
	a, b := runs(), runs()
	if len(a) == 0 {
		t.Fatal("p=0.3 over 200 evals never fired")
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire %d at seq %d vs %d", i, a[i], b[i])
		}
	}
	// A different seed should give a different fire pattern.
	in2 := New(43)
	in2.Arm(SiteKernel, Rule{P: 0.3})
	var c []int64
	for i := 0; i < 200; i++ {
		if e := in2.Check(SiteKernel); e != nil {
			c = append(c, e.Seq)
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical fire patterns")
	}
}

func TestRuleAfterAndLimit(t *testing.T) {
	in := New(7)
	in.Arm(SiteTransfer, Rule{P: 1, After: 10, Limit: 2})
	fires := 0
	for i := 1; i <= 20; i++ {
		if e := in.Check(SiteTransfer); e != nil {
			fires++
			if e.Seq <= 10 {
				t.Fatalf("fired at seq %d despite after=10", e.Seq)
			}
		}
	}
	if fires != 2 {
		t.Fatalf("fires=%d, want 2 (limit)", fires)
	}
}

func TestCheckAtUsesCallerSequence(t *testing.T) {
	in := New(1)
	in.Arm(SiteMPIRank, Rule{At: 3})
	if e := in.CheckAt(SiteMPIRank, 1); e != nil {
		t.Fatal("rank 0 (seq 1) fired")
	}
	if e := in.CheckAt(SiteMPIRank, 3); e == nil {
		t.Fatal("rank 2 (seq 3) did not fire")
	}
}

func TestMemCap(t *testing.T) {
	in := New(1)
	if in.MemCap() != 0 {
		t.Fatal("unarmed memcap non-zero")
	}
	in.Arm(SiteGPUMemCap, Rule{Cap: 1 << 20})
	if in.MemCap() != 1<<20 {
		t.Fatalf("memcap=%d", in.MemCap())
	}
}

func TestTransientClassification(t *testing.T) {
	if !SiteKernel.Transient() || !SiteTransfer.Transient() {
		t.Fatal("kernel/transfer should be transient")
	}
	if SiteGPUAlloc.Transient() || SiteDevice.Transient() || SiteMPIRank.Transient() {
		t.Fatal("alloc/device/rank should not be transient")
	}
	e := &Error{Site: SiteTransfer, Seq: 1}
	if !e.Transient() {
		t.Fatal("transfer error not transient")
	}
}

func TestDeviceLostUnwrap(t *testing.T) {
	inner := &Error{Site: SiteKernel, Seq: 4}
	var err error = &DeviceLost{Err: inner}
	var fe *Error
	if !errors.As(err, &fe) || fe.Seq != 4 {
		t.Fatalf("errors.As through DeviceLost failed: %v", err)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{Max: 3, BackoffSec: 10e-6, Multiplier: 2}
	want := []float64{10e-6, 20e-6, 40e-6}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d)=%g want %g", i+1, got, w)
		}
	}
}

func TestParse(t *testing.T) {
	in, err := Parse(9, "pcie.transfer:p=0.5,limit=2; gpu.memcap:cap=256M ;gpu.kernel:at=5")
	if err != nil {
		t.Fatal(err)
	}
	if !in.Armed(SiteTransfer) || !in.Armed(SiteKernel) {
		t.Fatal("sites not armed")
	}
	if in.MemCap() != 256<<20 {
		t.Fatalf("memcap=%d", in.MemCap())
	}
	if e := in.CheckAt(SiteKernel, 5); e == nil {
		t.Fatal("kernel at=5 did not fire")
	}
}

func TestParseEmptyIsNil(t *testing.T) {
	in, err := Parse(1, "  ")
	if err != nil || in != nil {
		t.Fatalf("empty spec: in=%v err=%v", in, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"nosuchsite:p=1",
		"gpu.kernel",
		"gpu.kernel:p",
		"gpu.kernel:p=2",
		"gpu.kernel:at=0",
		"gpu.kernel:bogus=1",
		"gpu.kernel:p=0",
		"gpu.memcap:p=1",
		"gpu.memcap:cap=abc",
	} {
		if _, err := Parse(1, spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseByteSuffixes(t *testing.T) {
	for spec, want := range map[string]int64{
		"gpu.memcap:cap=1024": 1024,
		"gpu.memcap:cap=4K":   4 << 10,
		"gpu.memcap:cap=2m":   2 << 20,
		"gpu.memcap:cap=1G":   1 << 30,
	} {
		in, err := Parse(1, spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if in.MemCap() != want {
			t.Errorf("Parse(%q): cap=%d want %d", spec, in.MemCap(), want)
		}
	}
}
