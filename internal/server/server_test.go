package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gpmetis"
)

// httpSubmit posts req and decodes either the job status or the error.
func httpSubmit(t *testing.T, base string, req SubmitRequest) (JobStatus, *ErrorResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("undecodable error body (HTTP %d): %v", resp.StatusCode, err)
		}
		return JobStatus{}, &e, resp.StatusCode
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st, nil, resp.StatusCode
}

// httpPoll fetches the job until it reaches a terminal state.
func httpPoll(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func httpMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Counters
}

// TestServeEndToEnd is the acceptance scenario: 8 concurrent jobs over
// HTTP against a 2-device pool. Every job must complete with a partition
// identical to a direct Partition call, identical resubmissions must be
// cache hits with zero additional modeled seconds, and the jobs must
// have genuinely shared the pool.
func TestServeEndToEnd(t *testing.T) {
	s := New(Config{Devices: 2, QueueCap: 32, CacheCap: 64})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	type jobCase struct {
		req  SubmitRequest
		g    *gpmetis.Graph
		k    int
		opts gpmetis.Options
	}
	cases := make([]jobCase, n)
	for i := range cases {
		g, err := gpmetis.Delaunay(2500+200*i, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		k := 4 + i%3
		seed := int64(i + 1)
		cases[i] = jobCase{
			req:  SubmitRequest{Graph: graphText(t, g), K: k, Seed: seed},
			g:    g,
			k:    k,
			opts: gpmetis.Options{Seed: seed},
		}
	}

	// Expected results from direct library calls on a fresh machine model.
	expected := make([]*gpmetis.Result, n)
	for i, c := range cases {
		res, err := gpmetis.Partition(c.g, c.k, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = res
	}

	// Submit all jobs concurrently; 8 jobs contend for 2 devices.
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range cases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, apiErr, code := httpSubmit(t, ts.URL, cases[i].req)
			if apiErr != nil {
				errs[i] = fmt.Errorf("job %d rejected: HTTP %d %s", i, code, apiErr.Error)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	for i, id := range ids {
		st := httpPoll(t, ts.URL, id)
		if st.State != StateDone {
			t.Fatalf("job %d: state %s, error %q", i, st.State, st.Error)
		}
		if st.Cached {
			t.Errorf("job %d: first submission must not be a cache hit", i)
		}
		if st.Device < 0 || st.Device > 1 {
			t.Errorf("job %d ran on device %d, want 0 or 1", i, st.Device)
		}
		if st.Result == nil {
			t.Fatalf("job %d: done without result", i)
		}
		if st.Result.EdgeCut != expected[i].EdgeCut {
			t.Errorf("job %d: edge cut %d, direct call %d", i, st.Result.EdgeCut, expected[i].EdgeCut)
		}
		if st.Result.ModeledSeconds != expected[i].ModeledSeconds {
			t.Errorf("job %d: modeled %.9f, direct call %.9f — modeled clocks interleaved",
				i, st.Result.ModeledSeconds, expected[i].ModeledSeconds)
		}
		for v, p := range st.Result.Part {
			if p != expected[i].Part[v] {
				t.Fatalf("job %d: partition differs from direct call at vertex %d (%d vs %d)",
					i, v, p, expected[i].Part[v])
			}
		}
	}

	// Both devices must have been exercised by 8 jobs over 2 slots.
	m := httpMetrics(t, ts.URL)
	if m["jobs.completed"] != n {
		t.Errorf("jobs.completed = %v, want %d", m["jobs.completed"], n)
	}
	modeledBefore := m["modeled.seconds"]
	if modeledBefore <= 0 {
		t.Fatal("modeled.seconds must accumulate over real runs")
	}

	// Identical resubmissions: all cache hits, born done, zero additional
	// modeled seconds charged to the server.
	for i, c := range cases {
		st, apiErr, code := httpSubmit(t, ts.URL, c.req)
		if apiErr != nil {
			t.Fatalf("resubmit %d: HTTP %d %s", i, code, apiErr.Error)
		}
		if code != http.StatusOK || st.State != StateDone || !st.Cached {
			t.Fatalf("resubmit %d: code=%d state=%s cached=%t, want 200/done/true", i, code, st.State, st.Cached)
		}
		if st.Result.EdgeCut != expected[i].EdgeCut {
			t.Errorf("resubmit %d: cached cut %d differs from original %d", i, st.Result.EdgeCut, expected[i].EdgeCut)
		}
	}
	m = httpMetrics(t, ts.URL)
	if m["modeled.seconds"] != modeledBefore {
		t.Errorf("cache hits charged modeled time: %.9f -> %.9f", modeledBefore, m["modeled.seconds"])
	}
	if m["cache.hits"] != n {
		t.Errorf("cache.hits = %v, want %d", m["cache.hits"], n)
	}

	// The hit job still serves the original run's trace.
	st, _, _ := httpSubmit(t, ts.URL, cases[0].req)
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	err = json.NewDecoder(resp.Body).Decode(&trace)
	resp.Body.Close()
	if err != nil || len(trace.TraceEvents) == 0 {
		t.Errorf("cache-hit trace endpoint: err=%v events=%d", err, len(trace.TraceEvents))
	}
}

// TestQueueFullRejection fills a 1-device, 2-slot queue while the only
// worker is held inside the test seam, and verifies the typed 429.
func TestQueueFullRejection(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 2, CacheCap: 8})
	defer s.Close()
	release := make(chan struct{})
	var gate sync.Once
	s.beforeRun = func(*Job) {
		gate.Do(func() { <-release }) // hold the first popped job only
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := gpmetis.Grid2D(30, 30)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)
	req := func(seed int64) SubmitRequest {
		return SubmitRequest{Graph: text, K: 4, Seed: seed, NoCache: true}
	}

	// Job 1 is popped and held by the worker; jobs 2 and 3 fill the queue.
	first, apiErr, _ := httpSubmit(t, ts.URL, req(1))
	if apiErr != nil {
		t.Fatalf("job 1: %s", apiErr.Error)
	}
	waitForDepthDrain(t, s, 0) // worker popped job 1
	for i := int64(2); i <= 3; i++ {
		if _, apiErr, _ := httpSubmit(t, ts.URL, req(i)); apiErr != nil {
			t.Fatalf("job %d should be queued: %s", i, apiErr.Error)
		}
	}

	// The queue is now full: the next submission gets the typed overload.
	st, apiErr, code := httpSubmit(t, ts.URL, req(4))
	if apiErr == nil {
		t.Fatalf("job 4 accepted as %s; want 429", st.ID)
	}
	if code != http.StatusTooManyRequests || apiErr.Code != CodeOverloaded {
		t.Errorf("got HTTP %d code %q, want 429 %q", code, apiErr.Code, CodeOverloaded)
	}

	// The same condition is a typed error on the direct API.
	_, err = s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 5, NoCache: true})
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("direct Submit: got %v, want ErrQueueFull", err)
	}

	close(release) // drain
	for _, id := range []string{first.ID} {
		if st := httpPoll(t, ts.URL, id); st.State != StateDone {
			t.Errorf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}
	m := httpMetrics(t, ts.URL)
	if m["jobs.rejected"] != 2 {
		t.Errorf("jobs.rejected = %v, want 2", m["jobs.rejected"])
	}
}

// waitForDepthDrain waits until the queue registry gauge drops to want.
func waitForDepthDrain(t *testing.T, s *Server, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.reg.Get("queue.depth") != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue.depth stuck at %v, want %v", s.reg.Get("queue.depth"), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancelFreesDeviceSlot cancels a job held at the test seam on a
// single-device pool and verifies the slot is reusable afterwards.
func TestCancelFreesDeviceSlot(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 4, CacheCap: 8})
	defer s.Close()
	popped := make(chan *Job, 8)
	release := make(chan struct{})
	var gate sync.Once
	s.beforeRun = func(j *Job) {
		popped <- j
		gate.Do(func() { <-release })
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := gpmetis.Grid2D(30, 30)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)

	first, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 4, Seed: 1, NoCache: true})
	if apiErr != nil {
		t.Fatal(apiErr.Error)
	}
	<-popped // the only worker holds job 1

	// Cancel it over HTTP while it occupies the device slot.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+first.ID, nil)
	if _, err := http.DefaultClient.Do(delReq); err != nil {
		t.Fatal(err)
	}
	close(release)
	if st := httpPoll(t, ts.URL, first.ID); st.State != StateCanceled {
		t.Fatalf("canceled job state %s (%s), want canceled", st.State, st.Error)
	}

	// The slot must be free again: a fresh job completes.
	second, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 4, Seed: 2, NoCache: true})
	if apiErr != nil {
		t.Fatal(apiErr.Error)
	}
	<-popped
	if st := httpPoll(t, ts.URL, second.ID); st.State != StateDone {
		t.Fatalf("post-cancel job state %s (%s), want done — device slot leaked", st.State, st.Error)
	}
	if m := httpMetrics(t, ts.URL); m["jobs.canceled"] != 1 {
		t.Errorf("jobs.canceled = %v, want 1", m["jobs.canceled"])
	}
}

// TestRunningJobCancellation exercises the cooperative mid-run path: the
// core polls Options.Cancel at level boundaries, so a running job whose
// context dies stops with ErrCanceled instead of completing.
func TestRunningJobCancellation(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 4, CacheCap: 8})
	defer s.Close()
	started := make(chan *Job, 1)
	s.beforeRun = func(j *Job) { started <- j }

	g, err := gpmetis.Delaunay(60000, 1)
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit(&SubmitRequest{Graph: graphText(t, g), K: 8, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	j := <-started
	j.Cancel()
	<-job.Done()
	st := job.Status()
	// The run may legitimately finish if it crossed its last boundary
	// before the cancel landed; both outcomes are valid, a hang is not.
	if st.State != StateCanceled && st.State != StateDone {
		t.Fatalf("state %s (%s), want canceled or done", st.State, st.Error)
	}
}

// TestDeadlineWhileQueued verifies that an expired deadline fails a job
// without it ever occupying a device.
func TestDeadlineWhileQueued(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 4, CacheCap: 8})
	defer s.Close()
	release := make(chan struct{})
	var gate sync.Once
	s.beforeRun = func(*Job) { gate.Do(func() { <-release }) }

	g, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)
	blocker, err := s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 1, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	waitForDepthDrain(t, s, 0)
	doomed, err := s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 2, NoCache: true, DeadlineMs: 30})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the deadline fire while queued
	close(release)
	<-doomed.Done()
	if st := doomed.Status(); st.State != StateFailed {
		t.Errorf("deadline-expired job state %s, want failed", st.State)
	}
	<-blocker.Done()
	if st := blocker.Status(); st.State != StateDone {
		t.Errorf("blocker state %s (%s), want done", st.State, st.Error)
	}
}

// TestJobFaultScenario passes a per-job fault scenario through the API
// and checks the degraded outcome surfaces in the job status.
func TestJobFaultScenario(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 4, CacheCap: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := gpmetis.Delaunay(40000, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{
		Graph:   graphText(t, g),
		K:       8,
		Faults:  "gpu.memcap:cap=1M",
		Degrade: true,
	})
	if apiErr != nil {
		t.Fatal(apiErr.Error)
	}
	final := httpPoll(t, ts.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("state %s (%s), want done", final.State, final.Error)
	}
	if !final.Result.Degraded || final.Result.DegradedReason == "" {
		t.Errorf("degradation must surface in the job result: %+v", final.Result)
	}
	if m := httpMetrics(t, ts.URL); m["jobs.degraded"] != 1 {
		t.Errorf("jobs.degraded = %v, want 1", m["jobs.degraded"])
	}
}

// TestBadRequests maps client mistakes to 400s with code bad_request.
func TestBadRequests(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := gpmetis.Grid2D(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)
	for name, req := range map[string]SubmitRequest{
		"no graph":   {K: 2},
		"bad k":      {Graph: text, K: 0},
		"k too big":  {Graph: text, K: 26},
		"bad algo":   {Graph: text, K: 2, Algo: "quantum"},
		"bad merge":  {Graph: text, K: 2, Merge: "zip"},
		"bad ub":     {Graph: text, K: 2, UB: 0.5},
		"bad faults": {Graph: text, K: 2, Faults: "nope:nope"},
		"bad format": {Graph: text, K: 2, Format: "gml"},
		"bad text":   {Graph: "not a graph", K: 2},
	} {
		_, apiErr, code := httpSubmit(t, ts.URL, req)
		if apiErr == nil || code != http.StatusBadRequest || apiErr.Code != CodeBadRequest {
			t.Errorf("%s: got code=%d err=%+v, want 400 bad_request", name, code, apiErr)
		}
	}

	resp, err := http.Get(ts.URL + "/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestHealthz checks the liveness endpoint's occupancy report.
func TestHealthz(t *testing.T) {
	s := New(Config{Devices: 3, QueueCap: 7})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Devices != 3 || h.QueueCap != 7 {
		t.Errorf("healthz = %+v", h)
	}
}
