package server

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
)

// quotaError marks a submission rejected because its tenant already
// holds MaxQueued slots; the HTTP layer maps it to 429 "tenant_quota".
type quotaError struct {
	tenant string
	limit  int
}

func (e *quotaError) Error() string {
	return fmt.Sprintf("tenant %q over quota: %d jobs already queued (max_queued %d)", e.tenant, e.limit, e.limit)
}

// fqItem is one queued job plus its start-time-fair-queueing tags.
type fqItem struct {
	job *Job
	// start and finish are the job's virtual-time tags: start is
	// max(queue virtual time, tenant's last finish), finish is start +
	// estimated modeled cost / tenant weight. Dequeue order is ascending
	// finish tag, so a weight-3 tenant's finish tags advance a third as
	// fast and it drains three units of modeled work per unit a weight-1
	// tenant drains.
	start  float64
	finish float64
	// seq breaks finish-tag ties by arrival order, keeping the schedule
	// deterministic under the seeded chaos harness.
	seq uint64
	// wallCost is the wall-second estimate captured at push time; the sum
	// over the queue drives the dynamic Retry-After and deadline-aware
	// admission.
	wallCost float64
	index    int // heap position, maintained by the heap interface
}

// fairQueue is a bounded start-time fair queue (SFQ) over per-tenant
// virtual time: the replacement for the FIFO channel. Push computes the
// job's tags from its tenant's weight and estimated modeled cost; Pop
// blocks for the minimum finish tag. All tenant scheduling state
// (lastFinish, queued) is guarded by mu.
type fairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	heap   fqHeap
	vtime  float64 // queue virtual time: max start tag ever dequeued
	seq    uint64
	wall   float64 // sum of wallCost over queued items
	closed bool
}

func newFairQueue(capacity int) *fairQueue {
	q := &fairQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push admits a job, computing its fair-queueing tags. It fails with
// ErrQueueFull at capacity and, when enforceQuota is set, with a
// quotaError once the tenant holds MaxQueued slots. Re-admissions that
// were already accepted once (journal recovery, coalesced followers
// re-enqueued after their leader aborted) pass enforceQuota=false:
// accepted jobs cannot be lost to a quota.
func (q *fairQueue) Push(j *Job, enforceQuota bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueFull
	}
	if len(q.heap) >= q.cap {
		return ErrQueueFull
	}
	t := j.tenant
	if enforceQuota && t != nil && t.cfg.MaxQueued > 0 && t.queued >= t.cfg.MaxQueued {
		return &quotaError{tenant: t.name, limit: t.cfg.MaxQueued}
	}
	weight, last := 1.0, 0.0
	if t != nil {
		weight, last = t.cfg.Weight, t.lastFinish
	}
	start := q.vtime
	if last > start {
		start = last
	}
	it := &fqItem{
		job:      j,
		start:    start,
		finish:   start + j.estModeled/weight,
		seq:      q.seq,
		wallCost: j.estWall,
	}
	q.seq++
	if t != nil {
		t.lastFinish = it.finish
		t.queued++
	}
	heap.Push(&q.heap, it)
	q.wall += it.wallCost
	q.cond.Signal()
	return nil
}

// Pop blocks until a job is available and returns the one with the
// minimum finish tag, or nil once the queue is closed and drained.
func (q *fairQueue) Pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.heap) == 0 {
		return nil
	}
	it := heap.Pop(&q.heap).(*fqItem)
	q.dequeuedLocked(it)
	return it.job
}

// dequeuedLocked applies the accounting shared by Pop, Remove, and
// shedding: virtual time advances to the departed item's start tag and
// the tenant's occupancy drops.
func (q *fairQueue) dequeuedLocked(it *fqItem) {
	if it.start > q.vtime {
		q.vtime = it.start
	}
	q.wall -= it.wallCost
	if t := it.job.tenant; t != nil {
		t.queued--
	}
}

// Remove pulls a specific job out of the queue (eager deadline expiry,
// cancellation). It reports false when the job is no longer queued —
// a worker already popped it and owns its outcome.
func (q *fairQueue) Remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, it := range q.heap {
		if it.job == j {
			heap.Remove(&q.heap, it.index)
			q.dequeuedLocked(it)
			return true
		}
	}
	return false
}

// Close wakes every blocked Pop; queued jobs already pushed still drain.
func (q *fairQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Len reports the live queue depth.
func (q *fairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// stats reports the depth and the summed wall-second estimate of the
// queued work — the numerator of the dynamic Retry-After.
func (q *fairQueue) stats() (depth int, wallSeconds float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap), q.wall
}

// queuedOf reports one tenant's live occupancy.
func (q *fairQueue) queuedOf(t *tenantState) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t == nil {
		return 0
	}
	return t.queued
}

// shedOverShare implements the brownout shed rule: remove queued jobs
// only from tenants holding more than their weighted fair share of the
// queue's capacity (share ∝ weight / Σ weights over tenants with queued
// work, floor 1), trimming each such tenant down to its share. Victims
// come from the lowest-weight tenants first and, within a tenant, the
// least-entitled jobs (largest finish tag) first. Tenants inside their
// share are never shed — the ladder escalates to degrade instead.
func (q *fairQueue) shedOverShare() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	byTenant := map[*tenantState][]*fqItem{}
	sumW := 0.0
	for _, it := range q.heap {
		t := it.job.tenant
		if t == nil {
			continue
		}
		if _, seen := byTenant[t]; !seen {
			sumW += t.cfg.Weight
		}
		byTenant[t] = append(byTenant[t], it)
	}
	if sumW == 0 {
		return nil
	}
	// Deterministic tenant order: weight ascending, then name.
	tenants := make([]*tenantState, 0, len(byTenant))
	for t := range byTenant {
		tenants = append(tenants, t)
	}
	sort.Slice(tenants, func(i, j int) bool {
		if tenants[i].cfg.Weight != tenants[j].cfg.Weight {
			return tenants[i].cfg.Weight < tenants[j].cfg.Weight
		}
		return tenants[i].name < tenants[j].name
	})
	var victims []*Job
	for _, t := range tenants {
		share := int(float64(q.cap) * t.cfg.Weight / sumW)
		if share < 1 {
			share = 1
		}
		items := byTenant[t]
		excess := len(items) - share
		if excess <= 0 {
			continue
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].finish != items[j].finish {
				return items[i].finish > items[j].finish
			}
			return items[i].seq > items[j].seq
		})
		for _, it := range items[:excess] {
			heap.Remove(&q.heap, it.index)
			q.dequeuedLocked(it)
			victims = append(victims, it.job)
		}
	}
	return victims
}

// fqHeap is the min-heap over finish tags backing fairQueue.
type fqHeap []*fqItem

func (h fqHeap) Len() int { return len(h) }
func (h fqHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h fqHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *fqHeap) Push(x any) {
	it := x.(*fqItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *fqHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
