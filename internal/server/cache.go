package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"

	"gpmetis"
	"gpmetis/internal/graph"
)

// GraphDigest returns a hex SHA-256 over a graph's CSR arrays. Two graphs
// share a digest iff their vertex ordering, adjacency structure, and all
// weights are identical — exactly the inputs the partitioners see, so
// equal digests (plus equal canonical options) imply equal results.
func GraphDigest(g *graph.Graph) string {
	h := sha256.New()
	h.Write([]byte("gpmetis.graph.v1"))
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(len(g.XAdj)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(g.Adjncy)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(g.AdjWgt)))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(g.VWgt)))
	h.Write(hdr[:])
	hashInts(h, g.XAdj)
	hashInts(h, g.Adjncy)
	hashInts(h, g.AdjWgt)
	hashInts(h, g.VWgt)
	return hex.EncodeToString(h.Sum(nil))
}

// hashInts streams vs into h as little-endian uint64s, batched to keep
// the per-call overhead off the digest's hot path.
func hashInts(h hash.Hash, vs []int) {
	var buf [8192]byte
	n := 0
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[n:], uint64(v))
		n += 8
		if n == len(buf) {
			h.Write(buf[:])
			n = 0
		}
	}
	if n > 0 {
		h.Write(buf[:n])
	}
}

// canonicalOptions renders the fields of a resolved job spec that can
// change the partition or its modeled cost, with every default already
// applied (seed 0 and ub 0 never appear: resolve substitutes 1 and 1.03
// first). Two submissions that differ only in how they spelled a default
// therefore canonicalize — and cache — identically. The fault scenario
// string participates verbatim; reordering its clauses changes the key
// (a miss, never a wrong hit).
func canonicalOptions(algo gpmetis.Algorithm, k int, o gpmetis.Options, faults string, faultSeed int64) string {
	devices := o.Devices
	if devices < 1 {
		devices = 1
	}
	return fmt.Sprintf("algo=%s&k=%d&seed=%d&ub=%.6g&merge=%d&threads=%d&devices=%d&gputhresh=%d&faults=%s&faultseed=%d&degrade=%t&verify=%t&profile=%t",
		algo, k, o.Seed, o.UBFactor, int(o.Merge), o.Threads, devices, o.GPUThreshold, faults, faultSeed, o.Degrade, o.Verify, o.Profile)
}

// CacheKey is the content address of one (graph, k, options) request:
// SHA-256 over the graph digest and the canonical option string.
func CacheKey(graphDigest string, canonical string) string {
	h := sha256.New()
	h.Write([]byte("gpmetis.job.v1"))
	h.Write([]byte(graphDigest))
	h.Write([]byte{0})
	h.Write([]byte(canonical))
	return hex.EncodeToString(h.Sum(nil))
}

// CachedResult is one cache value: the completed result plus the tracer
// and (for profiled jobs) the kernel profile of the run that produced it,
// so /jobs/<id>/trace and /jobs/<id>/profile work for hits too. Values
// are immutable once stored; readers must not mutate Result.Part.
type CachedResult struct {
	Result  JobResult
	Tracer  *gpmetis.Tracer
	Profile *gpmetis.ProfileReport
}

// Cache is a content-addressed LRU result cache, safe for concurrent
// use. Capacity counts entries; Get refreshes recency.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recent
	items   map[string]*list.Element
	hits    int64
	misses  int64
	evicted int64
}

type cacheSlot struct {
	key string
	val *CachedResult
}

// NewCache returns an LRU cache holding up to capacity results;
// capacity < 1 disables caching (every Get misses, Put drops).
func NewCache(capacity int) *Cache {
	return &Cache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached result for key, refreshing its recency.
func (c *Cache) Get(key string) (*CachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(e)
	return e.Value.(*cacheSlot).val, true
}

// Peek returns the cached result for key without touching the hit/miss
// accounting or the recency order. It backs the cluster tier's
// cross-node cache probe (GET /internal/cache/{digest}): a remote peek
// must not distort the local cache economics — the smoke tests assert
// exact hit counts — or promote an entry the local workload never used.
func (c *Cache) Peek(key string) (*CachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return e.Value.(*cacheSlot).val, true
}

// Put stores val under key, evicting the least recently used entry when
// over capacity.
func (c *Cache) Put(key string, val *CachedResult) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.Value.(*cacheSlot).val = val
		c.ll.MoveToFront(e)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheSlot{key: key, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheSlot).key)
		c.evicted++
	}
}

// Keys returns every cached key, most recently used first, without
// touching the hit/miss accounting or recency order. It backs the
// cluster tier's scan hooks: anti-entropy digest summaries and the
// decommission push both enumerate the local cache. The slice is a
// snapshot; entries may be evicted concurrently.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for e := c.ll.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*cacheSlot).key)
	}
	return out
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evicted int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicted
}
