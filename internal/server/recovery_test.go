package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gpmetis"
)

// appendRecords writes raw journal records, simulating what a previous
// process would have left behind before dying.
func appendRecords(t *testing.T, path string, recs ...Record) {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalReplayCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	appendRecords(t, path,
		Record{Type: RecSubmit, ID: "j000001", Seq: 1, Req: &SubmitRequest{Graph: "x", K: 2}},
		Record{Type: RecRunning, ID: "j000001"},
	)
	// A crash mid-append leaves a torn final line; everything after the
	// first unparsable byte must be dropped, not fatal.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"done","id":"j0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, dropped, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if recs[0].Type != RecSubmit || recs[1].Type != RecRunning {
		t.Errorf("records = %+v", recs)
	}

	// A missing journal replays as empty.
	recs, dropped, err = ReplayJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || recs != nil || dropped != 0 {
		t.Errorf("missing journal: recs=%v dropped=%d err=%v", recs, dropped, err)
	}
}

// TestRestartRecovery is the crash-recovery acceptance scenario at the
// package level: a journal (and checkpoint directory) left behind by a
// dead process must bring back completed results, re-admit interrupted
// jobs, resume from a valid checkpoint bit-identically, and survive
// corrupt or mismatched checkpoints by rerunning from scratch.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")
	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}

	g1, err := gpmetis.Grid2D(30, 30)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gpmetis.Delaunay(20000, 2)
	if err != nil {
		t.Fatal(err)
	}
	g1Text, g2Text := graphText(t, g1), graphText(t, g2)
	req1 := SubmitRequest{Graph: g1Text, K: 4}

	// Expected results for the interrupted jobs, from direct library runs.
	expect := func(seed int64) *gpmetis.Result {
		res, err := gpmetis.Partition(g2, 6, gpmetis.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	exp97, exp98, exp99 := expect(2), expect(3), expect(1)

	// Process 1: complete one job so its result lands in the journal.
	s1 := New(Config{Devices: 1, QueueCap: 8, JournalPath: journalPath, CheckpointDir: ckptDir})
	ts1 := httptest.NewServer(s1.Handler())
	st, apiErr, _ := httpSubmit(t, ts1.URL, req1)
	if apiErr != nil {
		t.Fatal(apiErr.Error)
	}
	first := httpPoll(t, ts1.URL, st.ID)
	if first.State != StateDone {
		t.Fatalf("job 1 state %s (%s)", first.State, first.Error)
	}
	ts1.Close()
	s1.Close()

	// Simulate three jobs the dead process had accepted but not finished:
	//   j000097 running, with a checkpoint from the WRONG graph (mismatch);
	//   j000098 running, with a corrupt checkpoint file;
	//   j000099 running, with a valid mid-run checkpoint.
	appendRecords(t, journalPath,
		Record{Type: RecSubmit, ID: "j000097", Seq: 97, Req: &SubmitRequest{Graph: g2Text, K: 6, Seed: 2}},
		Record{Type: RecRunning, ID: "j000097"},
		Record{Type: RecSubmit, ID: "j000098", Seq: 98, Req: &SubmitRequest{Graph: g2Text, K: 6, Seed: 3}},
		Record{Type: RecRunning, ID: "j000098"},
		Record{Type: RecSubmit, ID: "j000099", Seq: 99, Req: &SubmitRequest{Graph: g2Text, K: 6, Seed: 1}},
		Record{Type: RecRunning, ID: "j000099"},
	)
	writeSnapshot := func(path string, g *gpmetis.Graph, seed int64, at int) {
		n := 0
		_, err := gpmetis.Partition(g, 6, gpmetis.Options{
			Seed: seed,
			Checkpoint: func(c *gpmetis.Checkpoint) error {
				n++
				if n == at {
					return gpmetis.WriteCheckpointFile(path, c)
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if n < at {
			t.Fatalf("run produced %d snapshots, need %d", n, at)
		}
	}
	// The small graph takes the pure-CPU path and snapshots once; the
	// large one snapshots at every level boundary.
	writeSnapshot(filepath.Join(ckptDir, "j000097.ckpt"), g1, 2, 1) // wrong graph
	if err := os.WriteFile(filepath.Join(ckptDir, "j000098.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	writeSnapshot(filepath.Join(ckptDir, "j000099.ckpt"), g2, 1, 2)

	// Process 2: recovery must replay all of the above.
	s2 := New(Config{Devices: 2, QueueCap: 16, JournalPath: journalPath, CheckpointDir: ckptDir})
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	// The finished job is queryable and its result repopulated the cache:
	// an identical submit is a hit, not a recomputation.
	resp, err := http.Get(ts2.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("recovered done job: HTTP %d", resp.StatusCode)
	}
	hit, apiErr, code := httpSubmit(t, ts2.URL, req1)
	if apiErr != nil {
		t.Fatal(apiErr.Error)
	}
	if code != http.StatusOK || !hit.Cached {
		t.Errorf("identical submit after restart: code=%d cached=%v, want cache hit", code, hit.Cached)
	}
	if hit.Result == nil || hit.Result.EdgeCut != first.Result.EdgeCut {
		t.Errorf("recovered cache served a different result")
	}

	check := func(id string, exp *gpmetis.Result, wantResumed bool) {
		t.Helper()
		final := httpPoll(t, ts2.URL, id)
		if final.State != StateDone {
			t.Fatalf("%s state %s (%s)", id, final.State, final.Error)
		}
		if final.Resumed != wantResumed {
			t.Errorf("%s resumed = %v, want %v", id, final.Resumed, wantResumed)
		}
		if final.Result.EdgeCut != exp.EdgeCut || final.Result.ModeledSeconds != exp.ModeledSeconds {
			t.Errorf("%s result (cut %d, %.9g s) differs from direct run (cut %d, %.9g s)",
				id, final.Result.EdgeCut, final.Result.ModeledSeconds, exp.EdgeCut, exp.ModeledSeconds)
		}
		for i, p := range exp.Part {
			if final.Result.Part[i] != p {
				t.Fatalf("%s part[%d] = %d, want %d", id, i, final.Result.Part[i], p)
			}
		}
	}
	check("j000099", exp99, true) // resumed bit-identically from its snapshot
	check("j000098", exp98, false)
	check("j000097", exp97, false) // mismatched snapshot dropped, rerun

	m := httpMetrics(t, ts2.URL)
	if m["jobs.readmitted"] != 3 {
		t.Errorf("jobs.readmitted = %v, want 3", m["jobs.readmitted"])
	}
	if m["jobs.resumed"] != 2 {
		// j000097's snapshot parses (it is a valid file for the wrong
		// graph), so it counts as resumed until the run rejects it.
		t.Errorf("jobs.resumed = %v, want 2", m["jobs.resumed"])
	}
	if m["checkpoint.rejected"] != 1 {
		t.Errorf("checkpoint.rejected = %v, want 1", m["checkpoint.rejected"])
	}
	if m["jobs.recovered_results"] != 1 {
		t.Errorf("jobs.recovered_results = %v, want 1", m["jobs.recovered_results"])
	}
	// Terminal checkpoints must not linger.
	for _, id := range []string{"j000097", "j000098", "j000099"} {
		if _, err := os.Stat(filepath.Join(ckptDir, id+".ckpt")); !os.IsNotExist(err) {
			t.Errorf("%s.ckpt survived its job's completion", id)
		}
	}
}

// TestJournalRotation: the journal compacts after the configured number
// of appends and keeps replaying correctly afterwards.
func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")
	g, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)

	s := New(Config{Devices: 1, QueueCap: 16, JournalPath: journalPath, JournalRotateEvery: 3})
	for i := 0; i < 4; i++ {
		job, err := s.Submit(&SubmitRequest{Graph: text, K: 2 + i, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		<-job.Done()
	}
	// Journaling is asynchronous only for terminal records (the watch
	// goroutine); give them a moment to land.
	deadline := time.Now().Add(5 * time.Second)
	for s.reg.Snapshot()["journal.rotations"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("journal never rotated")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close()

	recs, dropped, err := ReplayJournal(journalPath)
	if err != nil || dropped != 0 {
		t.Fatalf("replay after rotation: dropped=%d err=%v", dropped, err)
	}
	byID := map[string]bool{}
	for _, rec := range recs {
		if rec.Type == RecEstimator {
			continue // the service-time snapshot rides along; it is not a job
		}
		byID[rec.ID] = true
	}
	if len(byID) != 4 {
		t.Errorf("journal retains %d jobs after rotation, want 4", len(byID))
	}
}

// TestCanceledResultNotCached is the cache-poisoning regression test: a
// job whose context expired but whose run still returned a result (the
// metis path never polls Cancel) must finish canceled WITHOUT entering
// the cache — an identical submit afterwards is a miss.
func TestCanceledResultNotCached(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 8, CacheCap: 8})
	defer s.Close()
	g, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	req := SubmitRequest{Graph: graphText(t, g), K: 4, Algo: "metis"}

	job, err := resolveRequest(&req)
	if err != nil {
		t.Fatal(err)
	}
	job.ctx, job.cancel = context.WithCancel(context.Background())
	s.register(job)
	job.markRunning(0, 0)
	job.cancel() // canceled mid-flight; metis ignores the Cancel hook
	s.pool.runJob(job, 0)

	if st := job.Status(); st.State != StateCanceled {
		t.Fatalf("state %s, want canceled (result must not bind a canceled job)", st.State)
	}
	if _, ok := s.cache.Get(job.key); ok {
		t.Fatal("canceled job's result poisoned the cache")
	}
	fresh, err := s.Submit(&req)
	if err != nil {
		t.Fatal(err)
	}
	<-fresh.Done()
	if st := fresh.Status(); st.State != StateDone || st.Cached {
		t.Errorf("identical submit after cancel: state=%s cached=%v, want a fresh done run", st.State, st.Cached)
	}
}

// TestSingleFlight hammers the scheduler with identical and distinct
// concurrent submissions: the identical set must execute exactly once
// (one leader, the rest coalesced onto it) and every job must still get
// the right answer.
func TestSingleFlight(t *testing.T) {
	s := New(Config{Devices: 2, QueueCap: 32, CacheCap: 64})
	defer s.Close()
	g, err := gpmetis.Grid2D(25, 25)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)
	const identicalK = 7 // marks the identical set in beforeRun

	var mu sync.Mutex
	execs := map[string]int{}
	release := make(chan struct{})
	leaderPopped := make(chan struct{}, 1)
	s.beforeRun = func(j *Job) {
		mu.Lock()
		execs[j.key]++
		mu.Unlock()
		if j.k == identicalK {
			select {
			case leaderPopped <- struct{}{}:
			default:
			}
			<-release // hold the leader so followers pile up behind it
		}
	}

	leader, err := s.Submit(&SubmitRequest{Graph: text, K: identicalK, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	<-leaderPopped

	var wg sync.WaitGroup
	followers := make([]*Job, 9)
	distinct := make([]*Job, 5)
	for i := range followers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(&SubmitRequest{Graph: text, K: identicalK, Seed: 5})
			if err != nil {
				t.Error(err)
				return
			}
			followers[i] = j
		}(i)
	}
	for i := range distinct {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(&SubmitRequest{Graph: text, K: 3, Seed: int64(i + 1)})
			if err != nil {
				t.Error(err)
				return
			}
			distinct[i] = j
		}(i)
	}
	wg.Wait()
	close(release)

	<-leader.Done()
	want := leader.Status()
	if want.State != StateDone {
		t.Fatalf("leader state %s (%s)", want.State, want.Error)
	}
	coalesced := 0
	for i, j := range followers {
		<-j.Done()
		st := j.Status()
		if st.State != StateDone {
			t.Fatalf("follower %d state %s (%s)", i, st.State, st.Error)
		}
		if st.Coalesced {
			coalesced++
		}
		if st.Result.EdgeCut != want.Result.EdgeCut {
			t.Errorf("follower %d cut %d != leader cut %d", i, st.Result.EdgeCut, want.Result.EdgeCut)
		}
	}
	for i, j := range distinct {
		<-j.Done()
		if st := j.Status(); st.State != StateDone {
			t.Fatalf("distinct %d state %s (%s)", i, st.State, st.Error)
		}
	}
	mu.Lock()
	n := execs[leader.key]
	mu.Unlock()
	if n != 1 {
		t.Errorf("identical request executed %d times, want exactly 1 (single-flight)", n)
	}
	if coalesced == 0 {
		t.Error("no follower was coalesced onto the in-flight leader")
	}
	if m := s.reg.Snapshot(); m["jobs.coalesced"] != float64(coalesced) {
		t.Errorf("jobs.coalesced = %v, want %d", m["jobs.coalesced"], coalesced)
	}
}

// TestQuarantine drives a device slot into probation with repeated
// modeled device faults and exercises both exits: the admin override and
// the probe-driven automatic reinstatement.
func TestQuarantine(t *testing.T) {
	// The graph must exceed the default GPUThreshold: the fault site is a
	// GPU kernel launch, so a pure-CPU run would never strike the slot.
	g, err := gpmetis.Delaunay(17000, 1)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)
	smallG, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	smallText := graphText(t, smallG)
	killTwice := func(t *testing.T, base string) {
		t.Helper()
		for i := 0; i < 2; i++ {
			st, apiErr, _ := httpSubmit(t, base, SubmitRequest{
				Graph: text, K: 4, Faults: "gpu.kernel:p=1", NoCache: true,
			})
			if apiErr != nil {
				t.Fatal(apiErr.Error)
			}
			if final := httpPoll(t, base, st.ID); final.State != StateFailed {
				t.Fatalf("fault job state %s, want failed", final.State)
			}
		}
	}
	getDevices := func(t *testing.T, base string) []DeviceStatus {
		t.Helper()
		resp, err := http.Get(base + "/admin/devices")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []DeviceStatus
		if err := jsonDecode(resp, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	t.Run("AdminReinstate", func(t *testing.T) {
		// A huge backoff keeps the slot quarantined until the override.
		s := New(Config{Devices: 1, QueueCap: 8, QuarantineThreshold: 2, QuarantineBackoff: 1e6})
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		killTwice(t, ts.URL)
		devs := getDevices(t, ts.URL)
		if len(devs) != 1 || devs[0].State != DeviceQuarantined || devs[0].Quarantines != 1 {
			t.Fatalf("devices after strikes = %+v, want slot 0 quarantined", devs)
		}
		m := httpMetrics(t, ts.URL)
		if m["devices.quarantined"] != 1 || m["quarantine.entered"] != 1 {
			t.Errorf("quarantine metrics = quarantined %v entered %v, want 1/1",
				m["devices.quarantined"], m["quarantine.entered"])
		}
		if m["devices.faults"] < 2 {
			t.Errorf("devices.faults = %v, want >= 2", m["devices.faults"])
		}

		resp, err := http.Post(ts.URL+"/admin/devices/0/reinstate", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var dev DeviceStatus
		if err := jsonDecode(resp, &dev); err != nil {
			t.Fatal(err)
		}
		if dev.State != DeviceHealthy {
			t.Fatalf("after reinstate: %+v", dev)
		}
		if m := httpMetrics(t, ts.URL); m["devices.quarantined"] != 0 {
			t.Errorf("devices.quarantined = %v after reinstate, want 0", m["devices.quarantined"])
		}
		st, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: smallText, K: 4})
		if apiErr != nil {
			t.Fatal(apiErr.Error)
		}
		if final := httpPoll(t, ts.URL, st.ID); final.State != StateDone {
			t.Errorf("healthy job after reinstate: state %s (%s)", final.State, final.Error)
		}
	})

	t.Run("ProbeReinstate", func(t *testing.T) {
		// A tiny backoff lets a single successful health probe reinstate.
		s := New(Config{Devices: 1, QueueCap: 8, QuarantineThreshold: 2, QuarantineBackoff: 1e-9})
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		killTwice(t, ts.URL)
		deadline := time.Now().Add(10 * time.Second)
		for getDevices(t, ts.URL)[0].State != DeviceHealthy {
			if time.Now().After(deadline) {
				t.Fatal("slot never probed its way out of quarantine")
			}
			time.Sleep(5 * time.Millisecond)
		}
		m := httpMetrics(t, ts.URL)
		if m["quarantine.reinstated"] < 1 || m["quarantine.probes"] < 1 {
			t.Errorf("probe metrics = reinstated %v probes %v, want >= 1 each",
				m["quarantine.reinstated"], m["quarantine.probes"])
		}
		st, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: smallText, K: 4})
		if apiErr != nil {
			t.Fatal(apiErr.Error)
		}
		if final := httpPoll(t, ts.URL, st.ID); final.State != StateDone {
			t.Errorf("job after auto-reinstatement: state %s (%s)", final.State, final.Error)
		}
	})
}

// TestJournalDegradation: a journal that cannot be opened (or written)
// must cost durability, never availability — the daemon keeps serving
// and says so in the metrics.
func TestJournalDegradation(t *testing.T) {
	s := New(Config{
		Devices:     1,
		QueueCap:    8,
		JournalPath: filepath.Join(t.TempDir(), "no-such-dir", "journal.jsonl"),
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	st, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: graphText(t, g), K: 4})
	if apiErr != nil {
		t.Fatal(apiErr.Error)
	}
	if final := httpPoll(t, ts.URL, st.ID); final.State != StateDone {
		t.Fatalf("job on degraded server: state %s (%s)", final.State, final.Error)
	}
	m := httpMetrics(t, ts.URL)
	if m["journal.degraded"] != 1 || m["journal.errors"] < 1 {
		t.Errorf("degradation metrics = degraded %v errors %v, want 1 / >=1",
			m["journal.degraded"], m["journal.errors"])
	}
}

// jsonDecode decodes an HTTP response body, closing it.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
