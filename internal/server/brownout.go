package server

import (
	"sync/atomic"
	"time"

	"gpmetis/internal/obs"
)

// Brownout levels. The level is a pure function of the queue-wait SLO
// status at each evaluation — the ladder is not hysteretic, so recovery
// can drop straight from degrade to off once the windows clear.
const (
	brownoutOff     = 0 // normal service
	brownoutShed    = 1 // shed over-share queued work of low-weight tenants
	brownoutDegrade = 2 // additionally auto-enable Options.Degrade for new jobs
)

// BrownoutConfig tunes the overload ladder. The ladder reuses the SLO
// engine's multi-window burn-rate machinery with queue wait as the
// latency objective: a dequeue whose wait exceeded QueueWait spends
// error budget; the fast window burning alone arms shedding (level 1),
// both windows burning together escalates to auto-degrade (level 2).
type BrownoutConfig struct {
	// QueueWait is the per-job queue-wait objective (default 500ms).
	QueueWait time.Duration
	// Target is the fraction of dequeues that must meet QueueWait
	// (default 0.9).
	Target float64
	// FastWindow and SlowWindow are the burn-rate windows (defaults 15s
	// and 90s — queue pressure moves much faster than job outcomes).
	FastWindow, SlowWindow time.Duration
	// MinSamples is how many dequeues the fast window must hold before
	// the ladder may leave level 0 (default 5); it keeps one slow dequeue
	// after an idle stretch from tripping a shed.
	MinSamples int
	// Disable turns the ladder off entirely (level pinned to 0).
	Disable bool
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.QueueWait <= 0 {
		c.QueueWait = 500 * time.Millisecond
	}
	if c.Target <= 0 || c.Target >= 1 {
		c.Target = 0.9
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 15 * time.Second
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 90 * time.Second
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	return c
}

// brownout is the overload ladder's state: a queue-wait SLO evaluator
// plus the current level. Level transitions are decided in evaluate,
// called from admission and from every dequeue.
type brownout struct {
	cfg      BrownoutConfig
	slo      *obs.SLO
	level    atomic.Int64
	disabled bool
}

func newBrownout(cfg BrownoutConfig, now func() time.Time) *brownout {
	cfg = cfg.withDefaults()
	b := &brownout{cfg: cfg, disabled: cfg.Disable}
	if b.disabled {
		return b
	}
	b.slo = obs.NewSLO(obs.SLOConfig{
		LatencyThreshold: cfg.QueueWait,
		LatencyTarget:    cfg.Target,
		// Availability plays no role in the queue-wait objective; pin the
		// budget wide open so only latency burn drives the ladder.
		AvailabilityTarget: 0.5,
		FastWindow:         cfg.FastWindow,
		SlowWindow:         cfg.SlowWindow,
		Now:                now,
	})
	return b
}

// observeWait feeds one dequeue's queue wait into the burn windows.
func (b *brownout) observeWait(wait time.Duration) {
	if b.disabled {
		return
	}
	b.slo.Record(wait, false)
}

// Level reports the current rung without re-evaluating.
func (b *brownout) Level() int {
	if b.disabled {
		return brownoutOff
	}
	return int(b.level.Load())
}

// evaluate recomputes the rung from the queue-wait burn windows and
// reports the previous and new levels.
func (b *brownout) evaluate() (prev, level int) {
	if b.disabled {
		return brownoutOff, brownoutOff
	}
	snap := b.slo.Snapshot()
	level = brownoutOff
	if snap.Fast.Jobs >= b.cfg.MinSamples {
		switch snap.Status {
		case obs.SLOWarn:
			level = brownoutShed
		case obs.SLOBreach:
			level = brownoutDegrade
		}
	}
	prev = int(b.level.Swap(int64(level)))
	return prev, level
}
