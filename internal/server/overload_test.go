package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpmetis"
	"gpmetis/internal/obs"
)

// submitBody marshals a SubmitRequest for a raw http.Post.
func submitBody(t *testing.T, req SubmitRequest) io.Reader {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// fakeClock is an injectable wall clock for admission control (token
// buckets, brownout windows).
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// countEvents tallies flight-recorder events by type.
func countEvents(s *Server, typ string) int {
	n := 0
	for _, e := range s.events.Snapshot() {
		if e.Type == typ {
			n++
		}
	}
	return n
}

// TestWeightedFairDequeueOrder is the fairness property test: two
// tenants weighted 3:1 submit identical-cost work into a saturated
// queue, and the dequeue order must serve them in that proportion.
// With equal per-job modeled cost the SFQ schedule is deterministic,
// so of the first 20 dequeues exactly 15 should be the weight-3
// tenant's — the ±1 tolerance keeps the assertion within the ±10%
// fairness objective without pinning heap tie-breaking forever.
func TestWeightedFairDequeueOrder(t *testing.T) {
	s := New(Config{
		Devices: 1, QueueCap: 64, CacheCap: 8,
		Tenants:  TenantsConfig{"paid": {Weight: 3}, "free": {Weight: 1}},
		Brownout: BrownoutConfig{Disable: true},
	})
	defer s.Close()

	release := make(chan struct{})
	var gate sync.Once
	var mu sync.Mutex
	var order []string
	s.beforeRun = func(j *Job) {
		if j.tenant.name != DefaultTenant {
			mu.Lock()
			order = append(order, j.tenant.name)
			mu.Unlock()
		}
		gate.Do(func() { <-release }) // hold the first popped job only
	}

	g, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)

	// The blocker occupies the only worker so the 40 tenant jobs all tag
	// and queue before any of them is popped: pure saturation.
	blocker, err := s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 99, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	waitForDepthDrain(t, s, 0)

	var jobs []*Job
	for i := 0; i < 20; i++ {
		for _, tenant := range []string{"paid", "free"} {
			j, err := s.Submit(&SubmitRequest{
				Graph: text, K: 4, Seed: int64(100 + len(jobs)), NoCache: true, Tenant: tenant,
			})
			if err != nil {
				t.Fatalf("submit %s #%d: %v", tenant, i, err)
			}
			jobs = append(jobs, j)
		}
	}

	close(release)
	<-blocker.Done()
	for _, j := range jobs {
		<-j.Done()
		if st := j.Status(); st.State != StateDone {
			t.Fatalf("job %s (%s): %s (%s)", st.ID, st.Tenant, st.State, st.Error)
		}
	}

	mu.Lock()
	first := append([]string(nil), order[:20]...)
	mu.Unlock()
	paid := 0
	for _, name := range first {
		if name == "paid" {
			paid++
		}
	}
	// 3:1 over 20 slots is 15/5; ±1 keeps us inside the ±10% objective.
	if paid < 14 || paid > 16 {
		t.Errorf("first 20 dequeues served paid %d times, want 15±1 (3:1 weighted fairness); order=%v", paid, first)
	}

	// The per-tenant accounting must agree: both tenants completed all
	// their jobs, and the served modeled seconds are tracked. Completion
	// counters are closed by the async watch goroutines, so poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, ts := range s.tenants.snapshot(s.fq.queuedOf) {
			if ts.Name != DefaultTenant && ts.Completed != 20 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant completion counters never reached 20: %+v", s.tenants.snapshot(s.fq.queuedOf))
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, ts := range s.tenants.snapshot(s.fq.queuedOf) {
		if ts.Name != DefaultTenant && ts.ServedModeledSeconds <= 0 {
			t.Errorf("tenant %s served %v modeled seconds, want > 0", ts.Name, ts.ServedModeledSeconds)
		}
	}
}

// TestOverloadShedsOnlyOverShareTenant is the overload e2e: with the
// brownout ladder engaged, a burst that overfills the queue must shed
// only the tenant holding more than its fair share, the in-share
// tenant's jobs must all complete, and the brownout transitions must
// appear as paired begin/end flight-recorder events.
func TestOverloadShedsOnlyOverShareTenant(t *testing.T) {
	clock := newFakeClock()
	s := New(Config{
		Devices: 1, QueueCap: 8, CacheCap: 8,
		Tenants: TenantsConfig{"paid": {Weight: 3}, "free": {Weight: 1}},
		// A 1ns queue-wait objective makes every real dequeue a violation,
		// so three warmup dequeues deterministically arm the ladder.
		Brownout: BrownoutConfig{QueueWait: time.Nanosecond, MinSamples: 3},
		Now:      clock.Now,
	})
	defer s.Close()

	var gateOn atomic.Bool
	release := make(chan struct{})
	var gate sync.Once
	s.beforeRun = func(*Job) {
		if gateOn.Load() {
			gate.Do(func() { <-release })
		}
	}

	g, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)

	// Three warmup dequeues put three queue-wait violations in the fast
	// window; the third dequeue's tick escalates the ladder to degrade.
	for i := int64(0); i < 3; i++ {
		j, err := s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 200 + i, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
	}
	if lvl := s.brown.Level(); lvl != brownoutDegrade {
		t.Fatalf("brownout level %d after warmup, want %d", lvl, brownoutDegrade)
	}
	if countEvents(s, obs.EvBrownoutBegin) == 0 {
		t.Error("no brownout_begin event after the ladder engaged")
	}

	// Saturate: hold the worker, then burst 6 free-tenant jobs and 2
	// paid. At the tick after the first paid submission the queue holds
	// both tenants, so free's share is cap*1/4 = 2 and its 4 over-share
	// jobs are shed; paid (share 6) is untouched.
	gateOn.Store(true)
	blocker, err := s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 300, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	waitForDepthDrain(t, s, 0)

	var free, paid []*Job
	for i := int64(0); i < 6; i++ {
		j, err := s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 400 + i, NoCache: true, Tenant: "free"})
		if err != nil {
			t.Fatalf("free #%d: %v", i, err)
		}
		free = append(free, j)
	}
	for i := int64(0); i < 2; i++ {
		j, err := s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 500 + i, NoCache: true, Tenant: "paid"})
		if err != nil {
			t.Fatalf("paid #%d: %v", i, err)
		}
		paid = append(paid, j)
	}

	shed := 0
	for _, j := range free {
		if st := j.Status(); st.State == StateFailed {
			shed++
			if !strings.HasPrefix(st.Error, "shed") {
				t.Errorf("shed job %s error %q, want a shed: message", st.ID, st.Error)
			}
		}
	}
	if shed != 4 {
		t.Errorf("%d free jobs shed, want 4 (6 queued, share 2)", shed)
	}
	for _, j := range paid {
		if st := j.Status(); st.State == StateFailed {
			t.Errorf("in-share paid job %s was shed: %s", st.ID, st.Error)
		}
		// Level 2 was active at submission: the degrade flip must be
		// recorded on the job.
		if st := j.Status(); !st.AutoDegraded {
			t.Errorf("paid job %s not marked auto_degraded under brownout level 2", st.ID)
		}
	}

	// Drain: every surviving job completes — shedding must only have
	// touched the over-share tail.
	close(release)
	<-blocker.Done()
	for _, j := range paid {
		<-j.Done()
		if st := j.Status(); st.State != StateDone {
			t.Errorf("paid job %s: %s (%s), want done", st.ID, st.State, st.Error)
		}
	}
	for _, j := range free {
		<-j.Done()
		if st := j.Status(); st.State != StateDone && st.State != StateFailed {
			t.Errorf("free job %s: %s, want done or shed", st.ID, st.State)
		}
	}

	if m := s.reg.Get("jobs.shed"); m != 4 {
		t.Errorf("jobs.shed = %v, want 4", m)
	}
	for _, ts := range s.tenants.snapshot(s.fq.queuedOf) {
		switch ts.Name {
		case "free":
			if ts.Shed != 4 {
				t.Errorf("free tenant shed = %d, want 4", ts.Shed)
			}
		case "paid":
			if ts.Shed != 0 {
				t.Errorf("paid tenant shed = %d, want 0", ts.Shed)
			}
		}
	}

	// Recovery: step the clock past both burn windows so they empty, and
	// the next tick must disengage the ladder with a paired end event.
	clock.Advance(10 * time.Minute)
	last, err := s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 600, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	<-last.Done()
	if lvl := s.brown.Level(); lvl != brownoutOff {
		t.Errorf("brownout level %d after the windows cleared, want 0", lvl)
	}
	begins, ends := countEvents(s, obs.EvBrownoutBegin), countEvents(s, obs.EvBrownoutEnd)
	if begins == 0 || begins != ends {
		t.Errorf("brownout events not paired: %d begin, %d end", begins, ends)
	}
}

// TestQueuedDeadlineExpiresEagerly: a queued job whose deadline passes
// must fail at expiry time — freeing its queue slot — not when a worker
// eventually pops it.
func TestQueuedDeadlineExpiresEagerly(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 4, CacheCap: 8, Brownout: BrownoutConfig{Disable: true}})
	defer s.Close()
	release := make(chan struct{})
	var gate sync.Once
	s.beforeRun = func(*Job) { gate.Do(func() { <-release }) }

	g, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)
	blocker, err := s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 1, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	waitForDepthDrain(t, s, 0)

	doomed, err := s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 2, NoCache: true, DeadlineMs: 40})
	if err != nil {
		t.Fatal(err)
	}

	// The worker stays held: only the eager expiry can finish the job.
	select {
	case <-doomed.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("queued job did not expire eagerly; it waited for a worker pop")
	}
	if st := doomed.Status(); st.State != StateFailed {
		t.Errorf("expired job state %s (%s), want failed", st.State, st.Error)
	}
	if depth := s.fq.Len(); depth != 0 {
		t.Errorf("queue depth %d after eager expiry, want 0 (slot must free at expiry time)", depth)
	}
	if d := s.reg.Get("queue.depth"); d != 0 {
		t.Errorf("queue.depth gauge %v, want 0", d)
	}
	if countEvents(s, obs.EvQueueExpired) != 1 {
		t.Error("no queue_expired lifecycle event recorded")
	}

	close(release)
	<-blocker.Done()
	if st := blocker.Status(); st.State != StateDone {
		t.Errorf("blocker state %s (%s), want done", st.State, st.Error)
	}
}

// TestDynamicRetryAfter: the 429 Retry-After must be derived from the
// queued work's estimated wall seconds over the device count, and the
// draining 503 must carry the same live hint.
func TestDynamicRetryAfter(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 2, CacheCap: 8, Brownout: BrownoutConfig{Disable: true}})
	defer s.Close()
	release := make(chan struct{})
	var gate sync.Once
	s.beforeRun = func(*Job) { gate.Do(func() { <-release }) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)
	// Teach the estimator that this (algo, size) cell costs 3 wall
	// seconds, so two queued jobs put 6s of work ahead of a rejection.
	s.est.observe(gpmetis.GPMetis, g.NumVertices(), 3.0, 0.01)

	if _, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 4, Seed: 1, NoCache: true}); apiErr != nil {
		t.Fatal(apiErr.Error)
	}
	waitForDepthDrain(t, s, 0)
	for i := int64(2); i <= 3; i++ {
		if _, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 4, Seed: i, NoCache: true}); apiErr != nil {
			t.Fatalf("job %d should queue: %s", i, apiErr.Error)
		}
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		submitBody(t, SubmitRequest{Graph: text, K: 4, Seed: 4, NoCache: true}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "6" {
		t.Errorf("Retry-After = %q, want \"6\" (2 queued jobs x 3s estimate / 1 device)", ra)
	}

	// The draining 503 derives its hint from the same live estimate.
	s.StartDrain()
	resp, err = http.Post(ts.URL+"/jobs", "application/json",
		submitBody(t, SubmitRequest{Graph: text, K: 4, Seed: 5, NoCache: true}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d while draining, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "6" {
		t.Errorf("draining Retry-After = %q, want \"6\"", ra)
	}

	close(release)
}

// TestDeadlineUnmeetableRejection: once the estimator has evidence, a
// deadline the queued work cannot meet is rejected up front with the
// typed code instead of burning a queue slot and failing later.
func TestDeadlineUnmeetableRejection(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 4, CacheCap: 8, Brownout: BrownoutConfig{Disable: true}})
	defer s.Close()
	release := make(chan struct{})
	var gate sync.Once
	s.beforeRun = func(*Job) { gate.Do(func() { <-release }) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)
	s.est.observe(gpmetis.GPMetis, g.NumVertices(), 3.0, 0.01)

	if _, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 4, Seed: 1, NoCache: true}); apiErr != nil {
		t.Fatal(apiErr.Error)
	}
	waitForDepthDrain(t, s, 0)
	if _, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 4, Seed: 2, NoCache: true}); apiErr != nil {
		t.Fatal(apiErr.Error)
	}

	// Need ~6s (3s queued + 3s own); a 1s deadline is unmeetable.
	_, apiErr, code := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 4, Seed: 3, NoCache: true, DeadlineMs: 1000})
	if apiErr == nil {
		t.Fatal("unmeetable deadline accepted; want 429")
	}
	if code != http.StatusTooManyRequests || apiErr.Code != CodeDeadlineUnmeetable {
		t.Errorf("got HTTP %d code %q, want 429 %q", code, apiErr.Code, CodeDeadlineUnmeetable)
	}

	// The direct API reports the same typed code.
	_, err = s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 4, NoCache: true, DeadlineMs: 1000})
	if OverloadCode(err) != CodeDeadlineUnmeetable {
		t.Errorf("direct Submit: OverloadCode = %q (%v), want %q", OverloadCode(err), err, CodeDeadlineUnmeetable)
	}

	// A generous deadline clears admission with the same queue state.
	meets, err := s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 5, NoCache: true, DeadlineMs: 60000})
	if err != nil {
		t.Fatalf("meetable deadline rejected: %v", err)
	}

	if m := s.reg.Get("jobs.rejected_deadline"); m != 2 {
		t.Errorf("jobs.rejected_deadline = %v, want 2", m)
	}
	close(release)
	<-meets.Done()
	if st := meets.Status(); st.State != StateDone {
		t.Errorf("meetable-deadline job %s: %s (%s), want done", st.ID, st.State, st.Error)
	}
}

// TestTenantRateLimit: a tenant with a 1/s token bucket gets one job
// through, a typed rate_limited rejection immediately after, and
// another admission once the bucket refills on the injected clock.
func TestTenantRateLimit(t *testing.T) {
	clock := newFakeClock()
	s := New(Config{
		Devices: 1, QueueCap: 8, CacheCap: 8,
		Tenants:  TenantsConfig{"rl": {RatePerSec: 1, Burst: 1}},
		Brownout: BrownoutConfig{Disable: true},
		Now:      clock.Now,
	})
	defer s.Close()

	g, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)
	req := func(seed int64) *SubmitRequest {
		return &SubmitRequest{Graph: text, K: 4, Seed: seed, NoCache: true, Tenant: "rl"}
	}

	first, err := s.Submit(req(1))
	if err != nil {
		t.Fatalf("first submission should spend the burst token: %v", err)
	}
	_, err = s.Submit(req(2))
	if OverloadCode(err) != CodeRateLimited {
		t.Fatalf("second submission: OverloadCode = %q (%v), want %q", OverloadCode(err), err, CodeRateLimited)
	}
	if m := s.reg.Get("jobs.rejected_ratelimit"); m != 1 {
		t.Errorf("jobs.rejected_ratelimit = %v, want 1", m)
	}

	clock.Advance(1500 * time.Millisecond)
	third, err := s.Submit(req(3))
	if err != nil {
		t.Fatalf("submission after refill rejected: %v", err)
	}
	<-first.Done()
	<-third.Done()
}

// TestTenantQuota: a tenant with max_queued 1 holds one queue slot;
// its second submission gets the typed tenant_quota rejection while
// other tenants keep queueing.
func TestTenantQuota(t *testing.T) {
	s := New(Config{
		Devices: 1, QueueCap: 8, CacheCap: 8,
		Tenants:  TenantsConfig{"capped": {MaxQueued: 1}},
		Brownout: BrownoutConfig{Disable: true},
	})
	defer s.Close()
	release := make(chan struct{})
	var gate sync.Once
	s.beforeRun = func(*Job) { gate.Do(func() { <-release }) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)

	if _, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 4, Seed: 1, NoCache: true}); apiErr != nil {
		t.Fatal(apiErr.Error)
	}
	waitForDepthDrain(t, s, 0)

	if _, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 4, Seed: 2, NoCache: true, Tenant: "capped"}); apiErr != nil {
		t.Fatalf("first capped job should queue: %s", apiErr.Error)
	}
	_, apiErr, code := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 4, Seed: 3, NoCache: true, Tenant: "capped"})
	if apiErr == nil {
		t.Fatal("over-quota submission accepted; want 429")
	}
	if code != http.StatusTooManyRequests || apiErr.Code != CodeTenantQuota {
		t.Errorf("got HTTP %d code %q, want 429 %q", code, apiErr.Code, CodeTenantQuota)
	}

	// The quota is per-tenant: the default tenant still queues.
	if _, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 4, Seed: 4, NoCache: true}); apiErr != nil {
		t.Errorf("default tenant blocked by another tenant's quota: %s", apiErr.Error)
	}
	if m := s.reg.Get("jobs.rejected_quota"); m != 1 {
		t.Errorf("jobs.rejected_quota = %v, want 1", m)
	}
	close(release)
}

// TestEstimatorEWMA pins the estimator's cell math: seeding, smoothing,
// bucket sharing, and the cold-start priors.
func TestEstimatorEWMA(t *testing.T) {
	e := newEstimator()
	if _, ok := e.lookup(gpmetis.GPMetis, 40000); ok {
		t.Error("cold estimator claims evidence")
	}
	if c := e.costs(gpmetis.GPMetis, 40000); c.wall != defaultWallEstimate || c.modeled != defaultModeledEstimate {
		t.Errorf("cold costs = %+v, want priors", c)
	}

	e.observe(gpmetis.GPMetis, 40000, 2.0, 0.5)
	if c := e.costs(gpmetis.GPMetis, 40000); c.wall != 2.0 || c.modeled != 0.5 {
		t.Errorf("first observation must seed the cell directly, got %+v", c)
	}
	// 40k and 60k vertices share the log2 bucket (2^15..2^16).
	if _, ok := e.lookup(gpmetis.GPMetis, 60000); !ok {
		t.Error("60k vertices should share the 40k bucket")
	}
	// 4k vertices and other algorithms do not.
	if _, ok := e.lookup(gpmetis.GPMetis, 4000); ok {
		t.Error("4k vertices must not share the 40k bucket")
	}
	if _, ok := e.lookup(gpmetis.Metis, 40000); ok {
		t.Error("cells must be per-algorithm")
	}

	e.observe(gpmetis.GPMetis, 40000, 4.0, 1.5)
	c := e.costs(gpmetis.GPMetis, 40000)
	wantWall := 2.0 + estAlpha*(4.0-2.0)
	wantModeled := 0.5 + estAlpha*(1.5-0.5)
	if c.wall != wantWall || c.modeled != wantModeled {
		t.Errorf("EWMA step = %+v, want wall %v modeled %v", c, wantWall, wantModeled)
	}

	e.observe(gpmetis.GPMetis, 40000, -1, 0.1) // negatives are dropped
	if got := e.costs(gpmetis.GPMetis, 40000); got != c {
		t.Errorf("negative observation mutated the cell: %+v", got)
	}
}

// TestFairQueueOrdering pins the SFQ schedule at the queue level: a
// weight-2 tenant's equal-cost jobs dequeue twice as often, ties break
// by arrival, and Remove keeps the accounting straight.
func TestFairQueueOrdering(t *testing.T) {
	q := newFairQueue(16)
	ta := &tenantState{name: "a", cfg: TenantConfig{Weight: 2}.withDefaults()}
	tb := &tenantState{name: "b", cfg: TenantConfig{Weight: 1}.withDefaults()}

	mk := func(ts *tenantState) *Job {
		j := &Job{tenant: ts, estModeled: 1.0, estWall: 2.0}
		if err := q.Push(j, true); err != nil {
			t.Fatal(err)
		}
		return j
	}
	// Interleaved arrivals: a1 b1 a2 b2 a3 b3.
	a1, b1 := mk(ta), mk(tb)
	a2, b2 := mk(ta), mk(tb)
	a3, b3 := mk(ta), mk(tb)

	if depth, wall := q.stats(); depth != 6 || wall != 12.0 {
		t.Errorf("stats = (%d, %v), want (6, 12)", depth, wall)
	}

	// Finish tags: a at 0.5, 1.0, 1.5; b at 1, 2, 3. The tie at 1.0
	// breaks by arrival (b1 before a2).
	want := []*Job{a1, b1, a2, a3, b2, b3}
	for i, w := range want {
		if got := q.Pop(); got != w {
			t.Fatalf("pop %d: got tenant %s, want tenant %s", i, got.tenant.name, w.tenant.name)
		}
	}
	if ta.queued != 0 || tb.queued != 0 {
		t.Errorf("queued counts after drain: a=%d b=%d, want 0/0", ta.queued, tb.queued)
	}

	// Remove pulls a specific job and fixes the books; a second Remove
	// reports the job gone.
	x := mk(ta)
	y := mk(tb)
	if !q.Remove(x) {
		t.Fatal("Remove(x) = false for a queued job")
	}
	if q.Remove(x) {
		t.Fatal("Remove(x) = true twice")
	}
	if depth, wall := q.stats(); depth != 1 || wall != 2.0 {
		t.Errorf("stats after remove = (%d, %v), want (1, 2)", depth, wall)
	}
	if got := q.Pop(); got != y {
		t.Error("Pop after Remove returned the removed job")
	}
}
