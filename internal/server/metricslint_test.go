package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gpmetis/internal/obs"
)

// TestMetricsLintFreshScrape is the metrics-lint invariant behind
// `make metrics-lint`: every series registered at construction — every
// counter/gauge name in the registry and every declared histogram —
// appears on the very first /metrics scrape of a fresh server, before
// any job has run. A series that only materializes after its first
// event is invisible to dashboards and alert previews exactly when an
// operator is wiring them.
func TestMetricsLintFreshScrape(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 4, Logger: obs.DiscardLogger()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d err %v", resp.StatusCode, err)
	}
	text := string(body)

	missing := 0
	check := func(series, suffix string) {
		// The exposition sanitizes dots to underscores and prefixes the
		// namespace; reproduce that mapping for the lint.
		name := "gpmetisd_" + strings.ReplaceAll(series, ".", "_") + suffix
		if !strings.Contains(text, name+" ") && !strings.Contains(text, name+"{") {
			t.Errorf("registered series %q missing from a fresh scrape (as %s)", series, name)
			missing++
		}
	}
	counters := s.reg.Names()
	if len(counters) == 0 {
		t.Fatal("registry declares no counters; the lint has nothing to check")
	}
	for _, name := range counters {
		check(name, "")
	}
	hists := s.reg.HistogramNames()
	if len(hists) == 0 {
		t.Fatal("registry declares no histograms; the lint has nothing to check")
	}
	for _, name := range hists {
		check(name, "_bucket")
		check(name, "_sum")
		check(name, "_count")
	}
	if !strings.Contains(text, "gpmetisd_build_info{") {
		t.Error("fresh scrape lacks gpmetisd_build_info")
	}
}
