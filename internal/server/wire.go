// Package server implements the partition-serving subsystem behind the
// gpmetisd daemon: a bounded job queue with admission control, a
// device-pool scheduler that maps accepted jobs onto a fleet of modeled
// GPUs, and a content-addressed result cache keyed by graph digest plus
// canonicalized options (DESIGN.md §9).
//
// The serving layer sits strictly above the partitioning core: it speaks
// HTTP+JSON on the outside and the public gpmetis API on the inside.
// Three invariants hold throughout:
//
//   - Modeled-clock isolation. Every job runs against a private clone of
//     the machine model and carries its own Timeline, so concurrent jobs
//     never interleave modeled time; a job's ModeledSeconds is identical
//     to what a direct Partition call would report.
//   - Admission before work. A job is either accepted into the bounded
//     queue at submit time or rejected with the typed ErrQueueFull
//     (HTTP 429); accepted jobs cannot be lost, only completed, failed,
//     or canceled.
//   - Cache transparency. A cache hit returns the byte-identical
//     partition of the original run at zero additional modeled cost and
//     is marked Cached in the job status.
package server

import (
	"fmt"

	"gpmetis/internal/obs"
)

// SubmitRequest is the wire form of one partition job. Graph carries the
// graph text inline (Chaco/Metis by default, DIMACS9 ".gr" with
// Format="gr"); the remaining fields mirror the gpmetis CLI flags. Zero
// values take the library defaults (algo "gp", seed 1, ub 1.03).
type SubmitRequest struct {
	Graph   string  `json:"graph"`
	Format  string  `json:"format,omitempty"` // "metis" (default) or "gr"
	K       int     `json:"k"`
	Algo    string  `json:"algo,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	UB      float64 `json:"ub,omitempty"`
	Threads int     `json:"threads,omitempty"`
	// Devices > 1 runs the job in GP-metis's multi-GPU mode. The job
	// still occupies one scheduler slot: a slot models the host-side
	// device context, not an individual GPU board.
	Devices int    `json:"devices,omitempty"`
	Merge   string `json:"merge,omitempty"` // "hash" (default) or "sort"
	// Faults is a per-job fault scenario in the gpmetis -faults syntax,
	// e.g. "gpu.memcap:cap=64M;pcie.transfer:p=0.01". FaultSeed seeds
	// the injection coins (0 means Seed).
	Faults    string `json:"faults,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	Degrade   bool   `json:"degrade,omitempty"`
	Verify    bool   `json:"verify,omitempty"`
	// Profile enables the kernel-level profiler for this job (GP-metis
	// only); the roofline report is then served at GET /jobs/{id}/profile.
	// Profiled and unprofiled submissions cache and coalesce separately.
	Profile bool `json:"profile,omitempty"`
	// DeadlineMs bounds the job's total wall-clock lifetime (queue wait
	// plus run). 0 means the server default. Expired jobs fail with a
	// deadline error; a queued job whose deadline fires never runs.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// NoCache skips the result cache in both directions.
	NoCache bool `json:"no_cache,omitempty"`
	// Tenant names the submitting tenant for weighted-fair queueing,
	// quotas, and rate limits (see TenantsConfig). Empty means the
	// "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// ForwardedBy and ForwardNetSeconds are set by the cluster tier when
	// a peer node forwards a submission to its ring owner: the entry
	// node's address and the α+βn modeled network seconds the forward
	// cost. They surface in the job's lifecycle trace and never
	// participate in the cache key, so a forwarded job caches identically
	// to a direct one. A non-empty ForwardedBy also pins the job to this
	// node — forwarded jobs are never re-forwarded.
	ForwardedBy       string  `json:"forwarded_by,omitempty"`
	ForwardNetSeconds float64 `json:"forward_net_seconds,omitempty"`
	// ForwardTraceID/ForwardSpanID/ForwardWallUnixNano carry the entry
	// node's trace context on a ring forward (mirroring the
	// X-Gpmetis-Trace header): the job keeps the entry node's trace id,
	// its spans parent under the entry node's cluster-forward span, and
	// the wall stamp lets the stitcher align the two nodes' clocks. Like
	// ForwardedBy, none of these participate in the cache key.
	ForwardTraceID      string `json:"forward_trace_id,omitempty"`
	ForwardSpanID       int64  `json:"forward_span_id,omitempty"`
	ForwardWallUnixNano int64  `json:"forward_wall_unix_nano,omitempty"`
}

// Job states. A job moves queued -> running -> done/failed, or to
// canceled from either live state. Cache hits are born done.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobResult is the outcome of a completed job, mirroring gpmetis.Result
// plus the achieved imbalance.
type JobResult struct {
	Part           []int   `json:"part"`
	EdgeCut        int     `json:"edge_cut"`
	Imbalance      float64 `json:"imbalance"`
	ModeledSeconds float64 `json:"modeled_seconds"`
	Degraded       bool    `json:"degraded,omitempty"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	FaultEvents    int     `json:"fault_events,omitempty"`
}

// JobStatus is the wire form of one job's current state.
type JobStatus struct {
	ID string `json:"id"`
	// TraceID correlates this job across log lines, lifecycle events, and
	// the merged trace at /jobs/{id}/trace.
	TraceID string `json:"trace_id,omitempty"`
	State   string `json:"state"`
	// Cached marks a job served from the result cache; its result is the
	// original run's, at zero additional modeled cost.
	Cached bool `json:"cached,omitempty"`
	// Coalesced marks a single-flight follower: an identical request was
	// already in flight, and this job adopted its result instead of
	// occupying a second device slot.
	Coalesced bool `json:"coalesced,omitempty"`
	// Resumed marks a job continued from a crash-recovery checkpoint
	// rather than started from scratch.
	Resumed bool `json:"resumed,omitempty"`
	// Device is the pool slot the job ran on, -1 before scheduling and
	// for cache hits.
	Device int `json:"device"`
	// WaitSeconds is the wall-clock time the job spent queued before a
	// device picked it up.
	WaitSeconds float64 `json:"wait_seconds"`
	// Tenant is the tenant the job was admitted under.
	Tenant string `json:"tenant,omitempty"`
	// AutoDegraded marks a job whose Degrade option was forced on by the
	// brownout ladder (level 2) rather than requested by the client.
	AutoDegraded bool `json:"auto_degraded,omitempty"`
	// Node is the host:port of the ring node that owns this job, set by
	// the cluster tier (empty on a standalone daemon). For a forwarded
	// submission it names the owner the entry node routed to; for a
	// cross-node cache peek it names the node whose cache answered.
	Node  string `json:"node,omitempty"`
	Error string `json:"error,omitempty"`
	// Result is set once State is done.
	Result *JobResult `json:"result,omitempty"`
}

// ErrorResponse is the wire form of every non-2xx answer. Code is
// machine-readable: "overloaded" (queue full, retryable), "bad_request",
// "not_found".
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Error codes carried by ErrorResponse.
const (
	CodeOverloaded = "overloaded"
	CodeBadRequest = "bad_request"
	CodeNotFound   = "not_found"
	// CodeDraining marks submissions rejected because the daemon is
	// shutting down gracefully (HTTP 503): finish what is in flight,
	// accept nothing new.
	CodeDraining = "draining"
	// CodeTenantQuota marks submissions rejected because the tenant
	// already holds its max_queued slots (HTTP 429, retryable).
	CodeTenantQuota = "tenant_quota"
	// CodeRateLimited marks submissions rejected by the tenant's token
	// bucket (HTTP 429, retryable after Retry-After).
	CodeRateLimited = "rate_limited"
	// CodeDeadlineUnmeetable marks submissions rejected at admission
	// because the estimated queue wait plus service time already exceeds
	// the requested deadline (HTTP 429). Retrying immediately cannot
	// help; retry after Retry-After or relax the deadline.
	CodeDeadlineUnmeetable = "deadline_unmeetable"
	// CodeClusterUnreachable marks a submission a cluster entry node
	// could not place anywhere: every live ring candidate failed (HTTP
	// 503, retryable once nodes recover).
	CodeClusterUnreachable = "cluster_unreachable"
	// CodeNodeUnreachable marks a proxied job lookup whose owning ring
	// node did not answer (HTTP 502). The job may still be running
	// there; clients with a member list fail over and resubmit.
	CodeNodeUnreachable = "node_unreachable"
)

// DeviceStatus is the wire form of one device-pool slot in GET
// /admin/devices: its quarantine state and the probe progress toward
// reinstatement.
type DeviceStatus struct {
	Slot    int    `json:"slot"`
	State   string `json:"state"` // "healthy" or "quarantined"
	Strikes int    `json:"strikes"`
	// Quarantines counts how many times this slot has been quarantined;
	// the reinstatement backoff doubles with each.
	Quarantines int `json:"quarantines"`
	// Probes counts successful health probes in the current quarantine;
	// ProbeSeconds/RequiredSeconds show the modeled-clock backoff budget.
	Probes          int     `json:"probes,omitempty"`
	ProbeSeconds    float64 `json:"probe_seconds,omitempty"`
	RequiredSeconds float64 `json:"required_seconds,omitempty"`
}

// HealthResponse is the wire form of GET /healthz: liveness, occupancy,
// SLO posture, and build info.
type HealthResponse struct {
	// Status is "ok" while serving, "draining" during graceful shutdown.
	Status     string `json:"status"`
	Devices    int    `json:"devices"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Jobs       int    `json:"jobs"`
	// Version is the daemon version; GoVersion the toolchain it was built
	// with.
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	// UptimeSeconds is wall-clock time since the server started;
	// ModeledSeconds is the cumulative modeled time of every completed job.
	UptimeSeconds  float64 `json:"uptime_seconds"`
	ModeledSeconds float64 `json:"modeled_seconds"`
	// SLOStatus is the current multi-window burn verdict ("ok", "warn",
	// "breach"); the full evaluation lives at GET /slo.
	SLOStatus string `json:"slo_status"`
	// LastEvent is the RFC3339 wall time of the most recent lifecycle
	// event (empty before the first), a staleness signal for probes.
	LastEvent string `json:"last_event,omitempty"`
	// EventsTotal counts lifecycle events ever recorded.
	EventsTotal int64 `json:"events_total"`
	// BrownoutLevel is the overload ladder's current rung (0 normal,
	// 1 shedding, 2 shedding + auto-degrade).
	BrownoutLevel int `json:"brownout_level"`
	// Cluster is the ring tier's view of this node (nil on a standalone
	// daemon): node identity, membership, and routing counters.
	Cluster *ClusterStatus `json:"cluster,omitempty"`
}

// ClusterPeerStatus is one ring member as seen by this node: identity
// plus the strike-based health verdict the router consults.
type ClusterPeerStatus struct {
	ID   int    `json:"id"`
	Addr string `json:"addr"`
	Self bool   `json:"self,omitempty"`
	// State is "up" or "down"; Strikes counts consecutive failures while
	// up, Downs lifetime quarantines (the probe backoff doubles with each).
	State   string `json:"state"`
	Strikes int    `json:"strikes,omitempty"`
	Downs   int    `json:"downs,omitempty"`
	// Left marks a member that announced its departure (decommission);
	// it stays in the configured list but is excluded from routing.
	Left bool `json:"left,omitempty"`
}

// ClusterStatus is the ring tier's self-description, surfaced on
// /healthz and /admin/status.json and by the cluster Prometheus series.
// The server package defines it as plain data so internal/cluster can
// depend on server without a cycle: the cluster node injects a snapshot
// callback via SetClusterStatus.
type ClusterStatus struct {
	NodeID int                 `json:"node_id"`
	Addr   string              `json:"addr"`
	VNodes int                 `json:"vnodes"`
	Peers  []ClusterPeerStatus `json:"peers"`

	// Routing counters: submissions forwarded to their ring owner,
	// cross-node cache peeks by outcome, and owner failovers to a ring
	// successor.
	Forwards   int64 `json:"forwards"`
	PeekHits   int64 `json:"peek_hits"`
	PeekMisses int64 `json:"peek_misses"`
	Failovers  int64 `json:"failovers"`

	// NetModeledSeconds and NetMessages account every peek, forward, and
	// proxied response against the α+βn modeled network.
	NetModeledSeconds float64 `json:"net_modeled_seconds"`
	NetMessages       int64   `json:"net_messages"`

	// Replication state: the configured replication factor, results
	// pushed to ring replicas, replica entries stored on behalf of
	// peers, and failover reads answered from a replica instead of
	// recomputed.
	Replicas      int   `json:"replicas,omitempty"`
	ReplicaPushes int64 `json:"replica_pushes"`
	ReplicaStores int64 `json:"replica_stores"`
	ReplicaHits   int64 `json:"replica_hits"`

	// Hinted handoff: hints recorded against quarantined replicas,
	// hints drained after reinstatement, and the live backlog.
	HandoffHinted    int64 `json:"handoff_hinted"`
	HandoffDrained   int64 `json:"handoff_drained"`
	HintsOutstanding int64 `json:"hints_outstanding"`

	// Anti-entropy repair: entries pushed to and pulled from peers by
	// the background digest-summary sweep and read-repair.
	RepairPushed int64 `json:"repair_pushed"`
	RepairPulled int64 `json:"repair_pulled"`
}

// SlotStatus is one device slot row of the ops view: identity, live
// occupancy, quarantine state, and cumulative utilization.
type SlotStatus struct {
	Slot        int     `json:"slot"`
	State       string  `json:"state"` // "healthy" or "quarantined"
	RunningJob  string  `json:"running_job,omitempty"`
	Jobs        int64   `json:"jobs"`
	BusySeconds float64 `json:"busy_seconds"`
}

// TenantStatus is one tenant's row in the ops view and the per-tenant
// Prometheus series: its contract plus lifetime admission counters.
type TenantStatus struct {
	Name      string  `json:"name"`
	Weight    float64 `json:"weight"`
	MaxQueued int     `json:"max_queued,omitempty"`
	Queued    int     `json:"queued"`
	Submitted int64   `json:"submitted"`
	Completed int64   `json:"completed"`
	Shed      int64   `json:"shed"`
	Rejected  int64   `json:"rejected"`
	// ServedModeledSeconds is the modeled GPU time actually served to
	// this tenant — the currency weighted fairness is measured in.
	ServedModeledSeconds float64 `json:"served_modeled_seconds"`
}

// BrownoutStatus is the overload ladder's posture in /admin/status.json
// and /healthz.
type BrownoutStatus struct {
	// Level is the current rung: 0 normal, 1 shedding over-share queued
	// work, 2 shedding plus auto-degrade for new jobs.
	Level int `json:"level"`
	// Engaged counts level transitions from 0 to a higher rung; Shed
	// counts queued jobs shed by the ladder.
	Engaged int64 `json:"engaged"`
	Shed    int64 `json:"shed"`
}

// LatencySummary carries interpolated percentiles of one latency
// histogram, in seconds.
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// StatusResponse is the wire form of GET /admin/status.json, the data
// behind the live ops view and the gpmetis -top client.
type StatusResponse struct {
	Status         string  `json:"status"` // "ok" or "draining"
	Version        string  `json:"version"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	ModeledSeconds float64 `json:"modeled_seconds"`

	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`

	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCanceled  int64 `json:"jobs_canceled"`
	JobsRejected  int64 `json:"jobs_rejected"`
	JobsShed      int64 `json:"jobs_shed"`
	JobsCoalesced int64 `json:"jobs_coalesced"`
	JobsDegraded  int64 `json:"jobs_degraded"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheEntries int     `json:"cache_entries"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	Slots []SlotStatus `json:"slots"`

	// QueueWait, RunSeconds, and TotalSeconds summarize the wall-clock
	// lifecycle histograms (queue wait, device occupancy, admission to
	// terminal state).
	QueueWait    LatencySummary `json:"queue_wait"`
	RunSeconds   LatencySummary `json:"run_seconds"`
	TotalSeconds LatencySummary `json:"total_seconds"`

	SLO obs.SLOSnapshot `json:"slo"`

	// Tenants lists every known tenant's admission state; Brownout is the
	// overload ladder's posture.
	Tenants  []TenantStatus `json:"tenants,omitempty"`
	Brownout BrownoutStatus `json:"brownout"`

	EventsTotal int64  `json:"events_total"`
	LastEvent   string `json:"last_event,omitempty"`

	// Cluster is the ring tier's view of this node (nil standalone).
	Cluster *ClusterStatus `json:"cluster,omitempty"`
}

// NodeTrace is the wire form of GET /internal/trace/{trace_id}: one
// node's spans under a trace, shipped to the entry node for stitching.
// Spans are wall-clock SpanRecords on this node's own clock (the
// stitcher aligns clocks via the RPC envelope); Modeled carries the
// run's modeled-clock Chrome events, pre-rendered with service_parent
// pointing at this node's run span, for job traces only.
type NodeTrace struct {
	NodeID  string `json:"node_id"`
	Addr    string `json:"addr"`
	TraceID string `json:"trace_id"`
	JobID   string `json:"job_id,omitempty"`
	// AnchorUnixNano is this node's clock at the trace's local origin
	// (job submission); Modeled timestamps are microseconds after it.
	AnchorUnixNano int64             `json:"anchor_unix_nano,omitempty"`
	Spans          []obs.SpanRecord  `json:"spans"`
	Modeled        []obs.ChromeEvent `json:"modeled,omitempty"`
}

// FleetNode is one node's row in the federated fleet view: reachability
// as seen by the fan-out node, the RPC round-trip the status fetch
// took, this node's share of the ring keyspace, and (when reachable)
// its full per-node status snapshot.
type FleetNode struct {
	ID           int     `json:"id"`
	Addr         string  `json:"addr"`
	Self         bool    `json:"self,omitempty"`
	Up           bool    `json:"up"`
	Error        string  `json:"error,omitempty"`
	RTTSeconds   float64 `json:"rtt_seconds,omitempty"`
	OwnershipPct float64 `json:"ownership_pct"`
	// Left marks a decommissioned member still present in peers.json.
	Left   bool            `json:"left,omitempty"`
	Status *StatusResponse `json:"status,omitempty"`
}

// FleetStatus is the wire form of GET /admin/cluster/status.json: one
// fan-out node's merged view of the whole ring.
type FleetStatus struct {
	// Node is the fan-out node answering the query; Replicas the
	// configured replication factor.
	Node     int         `json:"node"`
	Replicas int         `json:"replicas,omitempty"`
	Nodes    []FleetNode `json:"nodes"`
}

// EventsResponse is the wire form of GET /admin/events: the flight
// recorder's retained tail. Dropped counts events that fell off the ring
// before this query.
type EventsResponse struct {
	Total   int64       `json:"total"`
	Dropped int64       `json:"dropped"`
	Events  []obs.Event `json:"events"`
}

// badRequest builds a client-usage error that the HTTP layer maps to 400.
func badRequest(format string, args ...any) error {
	return &requestError{msg: fmt.Sprintf(format, args...)}
}

// requestError marks client-usage failures (unparsable graph, bad k,
// unknown algorithm) as distinct from server-side faults.
type requestError struct{ msg string }

func (e *requestError) Error() string { return e.msg }
