package server

import (
	"context"
	"fmt"
	"time"

	"gpmetis"
	"gpmetis/internal/obs"
)

// foldedJob is one job's state after folding its journal records: the
// last transition wins, the submit record supplies the request.
type foldedJob struct {
	seq    int
	req    *SubmitRequest
	state  string
	key    string
	res    *JobResult
	errMsg string
}

// recover replays the configured journal and rebuilds the previous
// process's job index before the workers start:
//
//   - terminal jobs come back as queryable terminal entries, and done
//     results repopulate the cache index so identical submits hit again;
//   - queued jobs are re-admitted in their original order;
//   - running jobs are re-admitted too, resuming from their crash
//     checkpoint when one is on disk (stale or corrupt snapshots are
//     dropped and the job reruns from scratch).
//
// Replay tolerates a torn tail: records after the first unparsable line
// are dropped and counted. recover runs from New, strictly before the
// pool starts, so re-admission cannot race live submissions.
func (s *Server) recover() {
	recs, dropped, err := ReplayJournal(s.cfg.JournalPath)
	if err != nil {
		s.journalDegraded(err)
		return
	}
	if dropped > 0 {
		s.reg.Add("journal.replay_dropped", float64(dropped))
		s.log.Warn("journal replay dropped corrupt trailing lines", "dropped", dropped)
	}
	if len(recs) == 0 {
		return
	}

	var order []string
	var estCells []EstimatorCell
	var replicaOrder []string
	replicaRecs := map[string]*JobResult{}
	byID := map[string]*foldedJob{}
	for _, rec := range recs {
		switch rec.Type {
		case RecReplica:
			if rec.Key != "" && rec.Result != nil {
				if _, seen := replicaRecs[rec.Key]; !seen {
					replicaOrder = append(replicaOrder, rec.Key)
				}
				replicaRecs[rec.Key] = rec.Result
			}
		case RecEstimator:
			// Last record wins: the estimator snapshots monotonically, so
			// the newest cells subsume every earlier append.
			estCells = rec.Est
		case RecSubmit:
			if f, ok := byID[rec.ID]; ok {
				// A running record can beat its submit into the journal
				// (worker and submitter append concurrently); the late
				// submit just fills in the request.
				if f.req == nil {
					f.req = rec.Req
					f.seq = rec.Seq
				}
			} else {
				byID[rec.ID] = &foldedJob{seq: rec.Seq, req: rec.Req, state: StateQueued}
				order = append(order, rec.ID)
			}
		case RecRunning:
			if f, ok := byID[rec.ID]; ok {
				f.state = StateRunning
			} else {
				byID[rec.ID] = &foldedJob{seq: seqOf(rec.ID), state: StateRunning}
				order = append(order, rec.ID)
			}
		case RecDone:
			if f, ok := byID[rec.ID]; ok {
				f.state = StateDone
				f.key = rec.Key
				f.res = rec.Result
			}
		case RecFailed:
			if f, ok := byID[rec.ID]; ok {
				f.state = StateFailed
				f.errMsg = rec.Error
			}
		case RecCanceled:
			if f, ok := byID[rec.ID]; ok {
				f.state = StateCanceled
				f.errMsg = rec.Error
			}
		}
	}

	// Warm the estimator before re-admitting jobs: readmit captures cost
	// tags from it, and deadline admission should not restart on priors.
	if len(estCells) > 0 {
		s.est.restore(estCells)
		s.reg.Add("estimator.restored_cells", float64(len(estCells)))
	}

	var readmitted, resumed, results int
	for _, id := range order {
		f := byID[id]
		if f.seq > s.seq {
			s.seq = f.seq // never reissue a journaled ID
		}
		switch f.state {
		case StateDone:
			j := terminalJob(id, StateDone, f.res, "")
			j.key = f.key
			s.indexRecovered(j)
			if f.key != "" && f.res != nil {
				s.cache.Put(f.key, &CachedResult{Result: *f.res})
				results++
			}
		case StateFailed, StateCanceled:
			s.indexRecovered(terminalJob(id, f.state, nil, f.errMsg))
		default:
			s.readmit(id, f, &readmitted, &resumed)
		}
	}
	if results > 0 {
		s.reg.Add("jobs.recovered_results", float64(results))
	}
	// Replica-held entries re-seed the cache after the node's own done
	// results (a key can be both; the local result wins, idempotently).
	// They repopulate replicaKeys so rotation keeps preserving them, and
	// they never fire the replication hook: the replicas that sent them
	// still hold them.
	replicas := 0
	for _, key := range replicaOrder {
		if _, ok := s.cache.Peek(key); !ok {
			s.cache.Put(key, &CachedResult{Result: *replicaRecs[key]})
			replicas++
		}
		s.mu.Lock()
		s.replicaKeys[key] = true
		s.mu.Unlock()
	}
	if replicas > 0 {
		s.reg.Add("jobs.recovered_replicas", float64(replicas))
	}
	s.event(obs.EvRecovered, nil, -1,
		fmt.Sprintf("%d recovered, %d results cached, %d replica entries, %d re-admitted, %d resumed",
			len(order), results, replicas, readmitted, resumed))
	s.log.Info("journal replay complete",
		"jobs_recovered", len(order), "results_cached", results,
		"replica_entries", replicas,
		"readmitted", readmitted, "resumed_from_checkpoint", resumed)
}

// readmit rebuilds one interrupted job from its submit record and puts
// it back in the queue under its original ID. A running job with a
// loadable checkpoint resumes from it.
func (s *Server) readmit(id string, f *foldedJob, readmitted, resumed *int) {
	if f.req == nil {
		s.indexRecovered(terminalJob(id, StateFailed, nil, "lost across restart: journal has no request"))
		return
	}
	job, err := resolveRequest(f.req)
	if err != nil {
		s.indexRecovered(terminalJob(id, StateFailed, nil, fmt.Sprintf("unreplayable across restart: %v", err)))
		return
	}
	job.ID = id
	job.recovered = true
	job.tenant = s.tenants.state(f.req.Tenant)
	est := s.est.costs(job.algo, job.g.NumVertices())
	job.estWall, job.estModeled = est.wall, est.modeled
	// A recovered job gets a fresh trace ID (the journal does not record
	// them) and a lifecycle clock restarting at recovery, mirroring the
	// deadline decision below.
	job.traceID = "recovered-" + obs.NewTraceID()
	job.submittedAt = time.Now()

	// The deadline clock restarts at recovery: the journal records no
	// submit timestamp, and charging crash downtime against the job
	// would fail work the previous process had already accepted.
	deadline := time.Duration(f.req.DeadlineMs) * time.Millisecond
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if deadline > 0 {
		job.ctx, job.cancel = context.WithTimeout(s.baseCtx, deadline)
	} else {
		job.ctx, job.cancel = context.WithCancel(s.baseCtx)
	}

	if job.key != "" {
		if hit, ok := s.cache.Get(job.key); ok {
			s.indexRecovered(job)
			job.finishCached(hit)
			s.spawnWatch(job)
			return
		}
	}

	if f.state == StateRunning {
		if path := s.pool.checkpointPath(job); path != "" {
			if c, err := gpmetis.ReadCheckpointFile(path); err == nil {
				job.resume = c
				s.reg.Add("jobs.resumed", 1)
				*resumed++
			} else {
				// A missing file just means the run never snapshotted; a
				// corrupt one is dropped — the rerun starts from scratch.
				s.jlog(job).Warn("no usable checkpoint; rerunning from scratch",
					"error", err.Error())
			}
		}
	}

	// Identical interrupted jobs coalesce at recovery exactly as they
	// would at submit: the first becomes the leader, the rest follow.
	if job.key != "" {
		s.mu.Lock()
		if leader, ok := s.inflight[job.key]; ok {
			job.coalesced = true
			s.indexLocked(job)
			s.mu.Unlock()
			s.reg.Add("jobs.coalesced", 1)
			s.spawnWatch(job)
			s.spawnFollow(job, leader)
			return
		}
		s.inflight[job.key] = job
		s.mu.Unlock()
	}

	job.queuedAt = time.Now()
	// Quota does not apply to re-admission: these jobs were accepted once
	// and admission-before-work says accepted jobs cannot be lost.
	if err := s.fq.Push(job, false); err != nil {
		s.mu.Lock()
		if job.key != "" && s.inflight[job.key] == job {
			delete(s.inflight, job.key)
		}
		s.mu.Unlock()
		s.indexRecovered(terminalJob(id, StateFailed, nil, "queue full at recovery"))
		return
	}
	s.reg.Add("queue.depth", 1)
	s.indexRecovered(job)
	s.reg.Add("jobs.readmitted", 1)
	*readmitted++
	s.spawnWatch(job)
	s.watchQueued(job)
}

// indexRecovered inserts a journal-reconstructed job under its original
// ID.
func (s *Server) indexRecovered(j *Job) {
	s.mu.Lock()
	s.indexLocked(j)
	s.mu.Unlock()
}
