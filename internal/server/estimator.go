package server

import (
	"math/bits"
	"sort"
	"sync"

	"gpmetis"
)

// estAlpha is the EWMA smoothing factor: a new observation moves the
// estimate 30% of the way, so the estimator tracks drift without being
// whipsawed by one outlier.
const estAlpha = 0.3

// Cold-start priors, used until a (algorithm, size-bucket) cell has seen
// a completion. Deliberately optimistic: admission control must not
// reject deadlines it has no evidence against.
const (
	defaultWallEstimate    = 0.05 // seconds of wall clock per job
	defaultModeledEstimate = 0.01 // modeled GPU seconds per job
)

// estimate is one cell's current view of a job's cost, in both
// currencies the server needs: wall seconds drive deadline admission and
// Retry-After; modeled seconds are the fair queue's service currency.
type estimate struct {
	wall    float64
	modeled float64
}

type estKey struct {
	algo   gpmetis.Algorithm
	bucket int
}

// estimator keeps an EWMA of observed job cost per (algorithm,
// log2-vertex-count bucket). Buckets are power-of-two sized, so a 40k
// and a 60k vertex graph share a cell while 4k and 400k do not — coarse
// enough to warm quickly, fine enough that mt-KaHIP-style long jobs
// don't poison the estimate for small GNN subgraphs.
type estimator struct {
	mu sync.Mutex
	m  map[estKey]estimate
}

func newEstimator() *estimator {
	return &estimator{m: map[estKey]estimate{}}
}

// sizeBucket maps a vertex count to its log2 bucket.
func sizeBucket(vertices int) int {
	if vertices < 0 {
		vertices = 0
	}
	return bits.Len(uint(vertices))
}

// observe folds one completed run into the matching cell. Callers feed
// only genuine runs: cache hits and coalesced followers cost nothing and
// would drag the estimate toward zero.
func (e *estimator) observe(algo gpmetis.Algorithm, vertices int, wallSeconds, modeledSeconds float64) {
	if wallSeconds < 0 || modeledSeconds < 0 {
		return
	}
	key := estKey{algo: algo, bucket: sizeBucket(vertices)}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur, ok := e.m[key]
	if !ok {
		e.m[key] = estimate{wall: wallSeconds, modeled: modeledSeconds}
		return
	}
	cur.wall += estAlpha * (wallSeconds - cur.wall)
	cur.modeled += estAlpha * (modeledSeconds - cur.modeled)
	e.m[key] = cur
}

// lookup returns the cell's estimate and whether it has any evidence.
func (e *estimator) lookup(algo gpmetis.Algorithm, vertices int) (estimate, bool) {
	key := estKey{algo: algo, bucket: sizeBucket(vertices)}
	e.mu.Lock()
	defer e.mu.Unlock()
	est, ok := e.m[key]
	return est, ok
}

// costs returns the best available estimate, falling back to the
// cold-start priors so every queued job carries a nonzero cost tag.
func (e *estimator) costs(algo gpmetis.Algorithm, vertices int) estimate {
	if est, ok := e.lookup(algo, vertices); ok {
		return est
	}
	return estimate{wall: defaultWallEstimate, modeled: defaultModeledEstimate}
}

// EstimatorCell is the journal form of one estimator cell (record type
// "estimator"), so the EWMA service-time state survives restarts and
// deadline admission is warm immediately after replay instead of
// reverting to the cold-start priors.
type EstimatorCell struct {
	Algo    int     `json:"algo"`
	Bucket  int     `json:"bucket"`
	Wall    float64 `json:"wall"`
	Modeled float64 `json:"modeled"`
}

// snapshot exports every cell, sorted so the journal bytes are
// deterministic for a given estimator state.
func (e *estimator) snapshot() []EstimatorCell {
	e.mu.Lock()
	defer e.mu.Unlock()
	cells := make([]EstimatorCell, 0, len(e.m))
	for k, v := range e.m {
		cells = append(cells, EstimatorCell{
			Algo: int(k.algo), Bucket: k.bucket, Wall: v.wall, Modeled: v.modeled,
		})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Algo != cells[j].Algo {
			return cells[i].Algo < cells[j].Algo
		}
		return cells[i].Bucket < cells[j].Bucket
	})
	return cells
}

// restore loads journaled cells as the starting estimates. Negative
// values (a hand-edited or damaged journal) are dropped rather than
// poisoning admission math.
func (e *estimator) restore(cells []EstimatorCell) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, c := range cells {
		if c.Wall < 0 || c.Modeled < 0 {
			continue
		}
		e.m[estKey{algo: gpmetis.Algorithm(c.Algo), bucket: c.Bucket}] =
			estimate{wall: c.Wall, modeled: c.Modeled}
	}
}
