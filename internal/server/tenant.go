package server

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"time"
)

// DefaultTenant is the tenant name used when a submission carries none.
// A TenantsConfig entry under this name overrides the built-in defaults
// for anonymous traffic and for tenants the config does not mention.
const DefaultTenant = "default"

// maxTenants bounds the tenant table against label-cardinality abuse:
// once this many distinct tenant names exist, unknown names share the
// default tenant's state instead of minting new per-tenant series.
const maxTenants = 256

// TenantConfig is one tenant's admission contract. Zero fields take the
// documented defaults, so `{"weight": 3}` is a complete entry.
type TenantConfig struct {
	// Weight is the tenant's share of service under contention: the fair
	// queue schedules so tenants receive modeled-cost service in
	// proportion to their weights (default 1).
	Weight float64 `json:"weight,omitempty"`
	// MaxQueued caps how many of this tenant's jobs may sit in the queue
	// at once; submissions beyond it get 429 {"code":"tenant_quota"}.
	// 0 means no per-tenant cap (the global QueueCap still applies).
	MaxQueued int `json:"max_queued,omitempty"`
	// RatePerSec is a token-bucket admission rate limit; submissions
	// arriving with an empty bucket get 429 {"code":"rate_limited"}.
	// 0 means unlimited.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the token bucket's capacity (default max(1, RatePerSec)).
	Burst float64 `json:"burst,omitempty"`
}

// withDefaults resolves the zero fields.
func (c TenantConfig) withDefaults() TenantConfig {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.Burst <= 0 {
		c.Burst = math.Max(1, c.RatePerSec)
	}
	return c
}

// TenantsConfig maps tenant name to contract — the parsed form of the
// gpmetisd -tenants JSON file. The "default" entry, when present,
// replaces the built-in defaults for unnamed and unlisted tenants.
type TenantsConfig map[string]TenantConfig

// LoadTenantsFile reads a TenantsConfig from a JSON file:
//
//	{
//	  "default": {"weight": 1, "max_queued": 8, "rate_per_sec": 20},
//	  "batch":   {"weight": 1, "max_queued": 32},
//	  "online":  {"weight": 8, "max_queued": 16, "rate_per_sec": 200, "burst": 400}
//	}
func LoadTenantsFile(path string) (TenantsConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg TenantsConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("tenants file %s: %w", path, err)
	}
	for name, tc := range cfg {
		if tc.Weight < 0 || tc.MaxQueued < 0 || tc.RatePerSec < 0 || tc.Burst < 0 {
			return nil, fmt.Errorf("tenants file %s: tenant %q has a negative field", path, name)
		}
	}
	return cfg, nil
}

// tenantState is one tenant's live admission state: its resolved
// contract, token bucket, lifetime counters, and — guarded by the fair
// queue's lock, not this one — its virtual-time tag and queued count.
type tenantState struct {
	name string
	cfg  TenantConfig

	mu            sync.Mutex
	tokens        float64
	lastFill      time.Time
	submitted     int64
	completed     int64
	shed          int64
	rejected      int64
	servedModeled float64

	// Scheduling state owned by fairQueue.mu (see fairqueue.go):
	// lastFinish is the tenant's latest virtual finish tag, queued its
	// live queue occupancy.
	lastFinish float64
	queued     int
}

// allow consumes one admission token. It reports whether the submission
// may proceed and, when not, how long until the bucket refills a token.
func (t *tenantState) allow(now time.Time) (ok bool, retryAfter time.Duration) {
	if t.cfg.RatePerSec <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lastFill.IsZero() {
		t.tokens = t.cfg.Burst
	} else if dt := now.Sub(t.lastFill).Seconds(); dt > 0 {
		t.tokens = math.Min(t.cfg.Burst, t.tokens+dt*t.cfg.RatePerSec)
	}
	t.lastFill = now
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	wait := (1 - t.tokens) / t.cfg.RatePerSec
	return false, time.Duration(wait * float64(time.Second))
}

func (t *tenantState) addSubmitted() {
	t.mu.Lock()
	t.submitted++
	t.mu.Unlock()
}

func (t *tenantState) addCompleted() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.completed++
	t.mu.Unlock()
}

func (t *tenantState) addShed() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.shed++
	t.mu.Unlock()
}

func (t *tenantState) addRejected() {
	t.mu.Lock()
	t.rejected++
	t.mu.Unlock()
}

// addServed accounts modeled seconds actually served to this tenant —
// the currency the fairness objective is stated in.
func (t *tenantState) addServed(modeled float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.servedModeled += modeled
	t.mu.Unlock()
}

// tenantTable resolves tenant names to live states, minting states
// lazily so unconfigured tenants still get quota enforcement (under the
// default contract) and per-tenant metrics.
type tenantTable struct {
	mu     sync.Mutex
	def    TenantConfig
	byName map[string]*tenantState
}

func newTenantTable(cfg TenantsConfig) *tenantTable {
	tt := &tenantTable{
		def:    TenantConfig{}.withDefaults(),
		byName: map[string]*tenantState{},
	}
	if dc, ok := cfg[DefaultTenant]; ok {
		tt.def = dc.withDefaults()
	}
	tt.byName[DefaultTenant] = &tenantState{name: DefaultTenant, cfg: tt.def}
	for name, tc := range cfg {
		if name == DefaultTenant {
			continue
		}
		tt.byName[name] = &tenantState{name: name, cfg: tc.withDefaults()}
	}
	return tt
}

// state returns the live state for a tenant name ("" means the default
// tenant), creating it under the default contract on first sight. Past
// maxTenants distinct names, unknown tenants share the default state.
func (tt *tenantTable) state(name string) *tenantState {
	if name == "" {
		name = DefaultTenant
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if t, ok := tt.byName[name]; ok {
		return t
	}
	if len(tt.byName) >= maxTenants {
		return tt.byName[DefaultTenant]
	}
	t := &tenantState{name: name, cfg: tt.def}
	tt.byName[name] = t
	return t
}

// snapshot renders every known tenant's status, sorted by name, for the
// ops view and the per-tenant Prometheus series.
func (tt *tenantTable) snapshot(queuedOf func(*tenantState) int) []TenantStatus {
	tt.mu.Lock()
	states := make([]*tenantState, 0, len(tt.byName))
	for _, t := range tt.byName {
		states = append(states, t)
	}
	tt.mu.Unlock()
	out := make([]TenantStatus, 0, len(states))
	for _, t := range states {
		t.mu.Lock()
		st := TenantStatus{
			Name:                 t.name,
			Weight:               t.cfg.Weight,
			MaxQueued:            t.cfg.MaxQueued,
			Queued:               queuedOf(t),
			Submitted:            t.submitted,
			Completed:            t.completed,
			Shed:                 t.shed,
			Rejected:             t.rejected,
			ServedModeledSeconds: t.servedModeled,
		}
		t.mu.Unlock()
		out = append(out, st)
	}
	sortTenantStatuses(out)
	return out
}

func sortTenantStatuses(ts []TenantStatus) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Name < ts[j-1].Name; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
