package server

import (
	"fmt"
	"html/template"
	"net/http"
	"time"
)

// statusSnapshot assembles the ops view's data: live occupancy, lifetime
// counters, cache economics, per-slot state, latency percentiles, and
// the SLO evaluation. It is the single source for /admin/status,
// /admin/status.json, and the gpmetis -top client.
func (s *Server) statusSnapshot() StatusResponse {
	st := StatusResponse{
		Status:         "ok",
		Version:        Version,
		UptimeSeconds:  time.Since(s.start).Seconds(),
		ModeledSeconds: s.reg.Get("modeled.seconds"),
		QueueDepth:     s.fq.Len(),
		QueueCap:       s.cfg.QueueCap,
		JobsSubmitted:  int64(s.reg.Get("jobs.submitted")),
		JobsCompleted:  int64(s.reg.Get("jobs.completed")),
		JobsFailed:     int64(s.reg.Get("jobs.failed")),
		JobsCanceled:   int64(s.reg.Get("jobs.canceled")),
		JobsRejected: int64(s.reg.Get("jobs.rejected") + s.reg.Get("jobs.rejected_draining") +
			s.reg.Get("jobs.rejected_quota") + s.reg.Get("jobs.rejected_ratelimit") +
			s.reg.Get("jobs.rejected_deadline")),
		JobsShed:      int64(s.reg.Get("jobs.shed")),
		JobsCoalesced: int64(s.reg.Get("jobs.coalesced")),
		JobsDegraded:  int64(s.reg.Get("jobs.degraded")),
		SLO:           s.slo.Snapshot(),
		Tenants:       s.tenants.snapshot(s.fq.queuedOf),
		Brownout: BrownoutStatus{
			Level:   s.brown.Level(),
			Engaged: int64(s.reg.Get("brownout.engaged")),
			Shed:    int64(s.reg.Get("jobs.shed")),
		},
		EventsTotal: s.events.Total(),
	}
	if s.Draining() {
		st.Status = "draining"
	}
	if lt := s.events.LastTime(); !lt.IsZero() {
		st.LastEvent = lt.UTC().Format(time.RFC3339Nano)
	}

	hits, misses, _ := s.cache.Stats()
	st.CacheHits, st.CacheMisses, st.CacheEntries = hits, misses, s.cache.Len()
	if hits+misses > 0 {
		st.CacheHitRate = float64(hits) / float64(hits+misses)
	}

	busy, jobs := s.pool.slotStats()
	running := s.pool.slotOccupancy()
	for slot := range busy {
		row := SlotStatus{
			Slot:        slot,
			State:       DeviceHealthy,
			RunningJob:  running[slot],
			Jobs:        jobs[slot],
			BusySeconds: busy[slot],
		}
		if s.pool.health[slot].quarantined() {
			row.State = DeviceQuarantined
		}
		st.Slots = append(st.Slots, row)
	}

	st.QueueWait = s.latencySummary("job.queue_seconds")
	st.RunSeconds = s.latencySummary("job.run_seconds")
	st.TotalSeconds = s.latencySummary("job.total_seconds")
	st.Cluster = s.clusterStatus()
	return st
}

// StatusSnapshot is the exported read of the ops view's data — the
// cluster tier's fleet fan-out uses it for this node's own row instead
// of HTTP-ing to itself.
func (s *Server) StatusSnapshot() StatusResponse { return s.statusSnapshot() }

// latencySummary reads one histogram's count and interpolated p50/90/99.
func (s *Server) latencySummary(name string) LatencySummary {
	h, ok := s.reg.Histogram(name)
	if !ok {
		return LatencySummary{}
	}
	return LatencySummary{
		Count: h.Count,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

func (s *Server) handleStatusJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statusSnapshot())
}

// statusTmpl is the live ops view: one static HTML page that refreshes
// itself every two seconds, no JavaScript required.
var statusTmpl = template.Must(template.New("status").Funcs(template.FuncMap{
	"secs": func(v float64) string { return fmt.Sprintf("%.3fs", v) },
	"pct":  func(v float64) string { return fmt.Sprintf("%.1f%%", v*100) },
	"burn": func(v float64) string { return fmt.Sprintf("%.2f", v) },
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>gpmetisd status</title>
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 1.5rem; background: #111; color: #ddd; }
h1 { font-size: 1.1rem; } h2 { font-size: 0.95rem; margin-top: 1.4rem; }
table { border-collapse: collapse; margin-top: 0.4rem; }
td, th { border: 1px solid #333; padding: 0.25rem 0.6rem; text-align: right; }
th { background: #1c1c1c; } td:first-child, th:first-child { text-align: left; }
.ok { color: #6c6; } .warn { color: #fc6; } .breach, .draining, .quarantined { color: #f66; }
.muted { color: #777; }
</style>
</head>
<body>
<h1>gpmetisd {{.Version}} &mdash; <span class="{{.Status}}">{{.Status}}</span>
<span class="muted">(up {{secs .UptimeSeconds}}, refreshes every 2s)</span></h1>

<h2>Queue &amp; jobs {{if .Brownout.Level}}&mdash; <span class="breach">brownout level {{.Brownout.Level}}</span>{{end}}</h2>
<table>
<tr><th>queue</th><th>submitted</th><th>completed</th><th>failed</th><th>canceled</th><th>rejected</th><th>shed</th><th>coalesced</th><th>degraded</th><th>modeled</th></tr>
<tr><td>{{.QueueDepth}}/{{.QueueCap}}</td><td>{{.JobsSubmitted}}</td><td>{{.JobsCompleted}}</td><td>{{.JobsFailed}}</td><td>{{.JobsCanceled}}</td><td>{{.JobsRejected}}</td><td>{{.JobsShed}}</td><td>{{.JobsCoalesced}}</td><td>{{.JobsDegraded}}</td><td>{{secs .ModeledSeconds}}</td></tr>
</table>

<h2>Tenants</h2>
<table>
<tr><th>tenant</th><th>weight</th><th>queued</th><th>submitted</th><th>completed</th><th>shed</th><th>rejected</th><th>served</th></tr>
{{range .Tenants}}<tr><td>{{.Name}}</td><td>{{.Weight}}</td><td>{{.Queued}}{{if .MaxQueued}}/{{.MaxQueued}}{{end}}</td><td>{{.Submitted}}</td><td>{{.Completed}}</td><td>{{.Shed}}</td><td>{{.Rejected}}</td><td>{{secs .ServedModeledSeconds}}</td></tr>
{{end}}</table>

<h2>Cache</h2>
<table>
<tr><th>hits</th><th>misses</th><th>hit rate</th><th>entries</th></tr>
<tr><td>{{.CacheHits}}</td><td>{{.CacheMisses}}</td><td>{{pct .CacheHitRate}}</td><td>{{.CacheEntries}}</td></tr>
</table>

<h2>Device slots</h2>
<table>
<tr><th>slot</th><th>state</th><th>running</th><th>jobs</th><th>busy</th></tr>
{{range .Slots}}<tr><td>{{.Slot}}</td><td class="{{.State}}">{{.State}}</td><td>{{if .RunningJob}}{{.RunningJob}}{{else}}<span class="muted">idle</span>{{end}}</td><td>{{.Jobs}}</td><td>{{secs .BusySeconds}}</td></tr>
{{end}}</table>

{{if .Cluster}}<h2>Cluster &mdash; node {{.Cluster.NodeID}} ({{.Cluster.Addr}}), {{.Cluster.VNodes}} vnodes{{if .Cluster.Replicas}}, RF={{.Cluster.Replicas}}{{end}}</h2>
<table>
<tr><th>forwards</th><th>peek hits</th><th>peek misses</th><th>failovers</th><th>net modeled</th><th>net msgs</th></tr>
<tr><td>{{.Cluster.Forwards}}</td><td>{{.Cluster.PeekHits}}</td><td>{{.Cluster.PeekMisses}}</td><td>{{.Cluster.Failovers}}</td><td>{{secs .Cluster.NetModeledSeconds}}</td><td>{{.Cluster.NetMessages}}</td></tr>
</table>
{{if .Cluster.Replicas}}<table>
<tr><th>replica pushes</th><th>replica stores</th><th>replica hits</th><th>hints queued</th><th>hints drained</th><th>hints outstanding</th><th>repair pushed</th><th>repair pulled</th></tr>
<tr><td>{{.Cluster.ReplicaPushes}}</td><td>{{.Cluster.ReplicaStores}}</td><td>{{.Cluster.ReplicaHits}}</td><td>{{.Cluster.HandoffHinted}}</td><td>{{.Cluster.HandoffDrained}}</td><td{{if .Cluster.HintsOutstanding}} class="warn"{{end}}>{{.Cluster.HintsOutstanding}}</td><td>{{.Cluster.RepairPushed}}</td><td>{{.Cluster.RepairPulled}}</td></tr>
</table>
{{end}}<table>
<tr><th>peer</th><th>addr</th><th>state</th><th>strikes</th><th>downs</th></tr>
{{range .Cluster.Peers}}<tr><td>{{.ID}}{{if .Self}} (self){{end}}</td><td>{{.Addr}}</td><td class="{{if .Left}}muted{{else if eq .State "down"}}breach{{else}}ok{{end}}">{{if .Left}}left{{else}}{{.State}}{{end}}</td><td>{{.Strikes}}</td><td>{{.Downs}}</td></tr>
{{end}}</table>
{{end}}
<h2>Latency (wall clock)</h2>
<table>
<tr><th>stage</th><th>count</th><th>p50</th><th>p90</th><th>p99</th></tr>
<tr><td>queue wait</td><td>{{.QueueWait.Count}}</td><td>{{secs .QueueWait.P50}}</td><td>{{secs .QueueWait.P90}}</td><td>{{secs .QueueWait.P99}}</td></tr>
<tr><td>run</td><td>{{.RunSeconds.Count}}</td><td>{{secs .RunSeconds.P50}}</td><td>{{secs .RunSeconds.P90}}</td><td>{{secs .RunSeconds.P99}}</td></tr>
<tr><td>total</td><td>{{.TotalSeconds.Count}}</td><td>{{secs .TotalSeconds.P50}}</td><td>{{secs .TotalSeconds.P90}}</td><td>{{secs .TotalSeconds.P99}}</td></tr>
</table>

<h2>SLO &mdash; <span class="{{.SLO.Status}}">{{.SLO.Status}}</span></h2>
<table>
<tr><th>objective</th><th>target</th><th>fast burn</th><th>slow burn</th></tr>
<tr><td>latency &le; {{secs .SLO.LatencyThresholdSeconds}}</td><td>{{pct .SLO.LatencyTarget}}</td><td>{{burn .SLO.Fast.LatencyBurn}}</td><td>{{burn .SLO.Slow.LatencyBurn}}</td></tr>
<tr><td>availability</td><td>{{pct .SLO.AvailabilityTarget}}</td><td>{{burn .SLO.Fast.AvailabilityBurn}}</td><td>{{burn .SLO.Slow.AvailabilityBurn}}</td></tr>
</table>
<p class="muted">window jobs: fast {{.SLO.Fast.Jobs}}, slow {{.SLO.Slow.Jobs}} &middot;
events recorded: {{.EventsTotal}}{{if .LastEvent}} &middot; last event {{.LastEvent}}{{end}} &middot;
data: <a href="/admin/status.json">/admin/status.json</a>, <a href="/slo">/slo</a>, <a href="/admin/events">/admin/events</a>, <a href="/metrics">/metrics</a></p>
</body>
</html>
`))

func (s *Server) handleStatusHTML(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := statusTmpl.Execute(w, s.statusSnapshot()); err != nil {
		s.log.Error("status page render failed", "error", err.Error())
	}
}
