package server

import (
	"context"
	"strings"
	"sync"
	"time"

	"gpmetis"
	"gpmetis/internal/graph"
	"gpmetis/internal/graph/gio"
)

// Job is one accepted partition request moving through the queue and the
// device pool. All mutable state is guarded by mu; the scheduler and the
// HTTP handlers only touch it through the methods below.
type Job struct {
	ID string

	// Immutable after resolve.
	g       *graph.Graph
	k       int
	algo    gpmetis.Algorithm
	opts    gpmetis.Options // resolved: defaults applied, no Tracer/Machine yet
	key     string          // content address; "" when NoCache
	noCache bool
	req     *SubmitRequest // original wire request, retained for the journal

	// resume, when non-nil, is a checkpoint loaded during crash recovery;
	// the scheduler feeds it to the run so the job continues from the
	// boundary the previous process reached.
	resume *gpmetis.Checkpoint
	// recovered marks jobs reconstructed from the journal at startup;
	// their terminal records are already journaled, so the finish watcher
	// must not append duplicates.
	recovered bool

	// tenant is the admission state the job was accepted under; estWall
	// and estModeled are the cost estimates captured at push time (wall
	// seconds for Retry-After and deadline math, modeled seconds as the
	// fair queue's service currency). autoDegraded marks Degrade forced
	// on by the brownout ladder rather than requested by the client.
	tenant       *tenantState
	estWall      float64
	estModeled   float64
	autoDegraded bool

	ctx    context.Context
	cancel context.CancelFunc

	mu          sync.Mutex
	state       string
	cached      bool
	coalesced   bool
	resumed     bool
	device      int
	queuedAt    time.Time
	waitSeconds float64
	errMsg      string
	tracer      *gpmetis.Tracer
	profile     *gpmetis.ProfileReport
	result      *JobResult

	// traceID correlates logs, lifecycle events, and the merged trace;
	// submittedAt anchors the wall clock of the job's lifecycle spans,
	// runStartAt the modeled sub-trace's position within them.
	traceID     string
	submittedAt time.Time
	runStartAt  time.Time
	lifeSpans   []LifeSpan

	done chan struct{} // closed on any terminal state
}

// resolveRequest validates a SubmitRequest and builds the runnable job
// spec: parsed graph, resolved options with every default applied (the
// canonicalization invariant behind the cache key), and the per-job
// fault injector seed.
func resolveRequest(req *SubmitRequest) (*Job, error) {
	if req.Graph == "" {
		return nil, badRequest("missing graph text")
	}
	var (
		g   *graph.Graph
		err error
	)
	switch req.Format {
	case "", "metis":
		g, err = gio.Read(strings.NewReader(req.Graph))
	case "gr":
		g, err = gio.ReadGR(strings.NewReader(req.Graph))
	default:
		return nil, badRequest("unknown graph format %q (want metis or gr)", req.Format)
	}
	if err != nil {
		return nil, badRequest("unparsable graph: %v", err)
	}
	if req.K < 1 {
		return nil, badRequest("k must be >= 1, got %d", req.K)
	}
	if req.K > g.NumVertices() {
		return nil, badRequest("k=%d exceeds vertex count %d", req.K, g.NumVertices())
	}

	algo, err := parseAlgorithm(req.Algo)
	if err != nil {
		return nil, err
	}
	o := gpmetis.Options{
		Algorithm: algo,
		Seed:      req.Seed,
		UBFactor:  req.UB,
		Threads:   req.Threads,
		Devices:   req.Devices,
		Degrade:   req.Degrade,
		Verify:    req.Verify,
		Profile:   req.Profile,
	}
	// Apply the library defaults here, not in Partition, so the
	// canonical option string never contains an unresolved zero.
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.UBFactor == 0 {
		o.UBFactor = 1.03
	} else if o.UBFactor < 1 {
		return nil, badRequest("ub %g must be >= 1.0", o.UBFactor)
	}
	switch req.Merge {
	case "", "hash":
		o.Merge = gpmetis.HashMerge
	case "sort":
		o.Merge = gpmetis.SortMerge
	default:
		return nil, badRequest("unknown merge strategy %q (want hash or sort)", req.Merge)
	}

	faultSeed := req.FaultSeed
	if faultSeed == 0 {
		faultSeed = o.Seed
	}
	if req.Faults != "" {
		inj, err := gpmetis.ParseFaultScenario(faultSeed, req.Faults)
		if err != nil {
			return nil, badRequest("bad fault scenario: %v", err)
		}
		o.Faults = inj
	}

	j := &Job{
		g:       g,
		k:       req.K,
		algo:    algo,
		opts:    o,
		noCache: req.NoCache,
		req:     req,
		state:   StateQueued,
		device:  -1,
		done:    make(chan struct{}),
	}
	if !req.NoCache {
		j.key = CacheKey(GraphDigest(g), canonicalOptions(algo, req.K, o, req.Faults, faultSeed))
	}
	return j, nil
}

// parseAlgorithm maps the wire/CLI algorithm names onto the library enum.
func parseAlgorithm(name string) (gpmetis.Algorithm, error) {
	switch name {
	case "", "gp":
		return gpmetis.GPMetis, nil
	case "metis":
		return gpmetis.Metis, nil
	case "mt":
		return gpmetis.MtMetis, nil
	case "par":
		return gpmetis.ParMetis, nil
	case "ptscotch":
		return gpmetis.PTScotch, nil
	case "gmetis":
		return gpmetis.Gmetis, nil
	case "jostle":
		return gpmetis.Jostle, nil
	case "spectral":
		return gpmetis.Spectral, nil
	default:
		return 0, badRequest("unknown algorithm %q (want gp, metis, mt, par, ptscotch, gmetis, jostle, or spectral)", name)
	}
}

// Status snapshots the job for the wire.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:           j.ID,
		TraceID:      j.traceID,
		State:        j.state,
		Cached:       j.cached,
		Coalesced:    j.coalesced,
		Resumed:      j.resumed,
		Device:       j.device,
		WaitSeconds:  j.waitSeconds,
		AutoDegraded: j.autoDegraded,
		Error:        j.errMsg,
	}
	if j.tenant != nil {
		st.Tenant = j.tenant.name
	}
	if j.state == StateDone {
		st.Result = j.result
	}
	return st
}

// TraceID returns the job's trace id — empty until the job was
// registered (or adopted a forwarded trace).
func (j *Job) TraceID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.traceID
}

// LifeSpans exposes the job's lifecycle spans and clock anchors to the
// cluster tier, which serializes them at GET /internal/trace/{trace_id}
// so an entry node can stitch this node's view of a forwarded job into
// one distributed trace.
func (j *Job) LifeSpans() (spans []LifeSpan, submitted, runStart time.Time) {
	return j.lifeSnapshot()
}

// Tracer returns the job's tracer (the original run's tracer for cache
// hits, nil while queued).
func (j *Job) Tracer() *gpmetis.Tracer {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tracer
}

// Profile returns the job's kernel profile: non-nil only once a job
// submitted with "profile": true has completed (the original run's
// report for cache hits).
func (j *Job) Profile() *gpmetis.ProfileReport {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.profile
}

// setProfile installs the completed run's kernel profile.
func (j *Job) setProfile(p *gpmetis.ProfileReport) {
	j.mu.Lock()
	j.profile = p
	j.mu.Unlock()
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cooperative cancellation: a queued job is discarded
// when a worker pops it; a running job stops at its next level boundary.
// Terminal jobs are unaffected.
func (j *Job) Cancel() { j.cancel() }

// markRunning transitions queued -> running on the given device slot.
func (j *Job) markRunning(device int, wait float64) {
	j.mu.Lock()
	j.state = StateRunning
	j.device = device
	j.waitSeconds = wait
	j.mu.Unlock()
}

// setTracer installs the per-run tracer before the run starts so the
// trace endpoint can stream a running job's spans.
func (j *Job) setTracer(t *gpmetis.Tracer) {
	j.mu.Lock()
	j.tracer = t
	j.mu.Unlock()
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state string, res *JobResult, errMsg string) {
	j.mu.Lock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.mu.Unlock()
	j.cancel() // release the context's timer
	close(j.done)
}

// finishCached completes a job straight from the cache: born done, zero
// modeled cost charged, the original run's tracer attached.
func (j *Job) finishCached(c *CachedResult) {
	j.mu.Lock()
	j.cached = true
	j.tracer = c.Tracer
	j.profile = c.Profile
	j.mu.Unlock()
	res := c.Result // shallow copy; Part is shared and immutable
	j.finish(StateDone, &res, "")
}

// finishCoalesced completes a single-flight follower with its leader's
// result: identical answer, no device slot consumed. The leader's kernel
// profile comes along (profiled and unprofiled requests never coalesce —
// the cache key separates them — so profile presence always matches).
func (j *Job) finishCoalesced(res *JobResult, p *gpmetis.ProfileReport) {
	j.mu.Lock()
	j.profile = p
	j.mu.Unlock()
	cp := *res // shallow copy; Part is shared and immutable
	j.finish(StateDone, &cp, "")
}

// terminalJob reconstructs an already-finished job from its journal
// records at startup: born terminal, queryable over the API, never
// scheduled.
func terminalJob(id, state string, res *JobResult, errMsg string) *Job {
	j := &Job{
		ID:        id,
		state:     state,
		result:    res,
		errMsg:    errMsg,
		device:    -1,
		recovered: true,
		done:      make(chan struct{}),
		ctx:       context.Background(),
		cancel:    func() {},
	}
	close(j.done)
	return j
}
