package server

import (
	"strings"
	"testing"

	"gpmetis"
	"gpmetis/internal/graph/gio"
)

func graphText(t *testing.T, g *gpmetis.Graph) string {
	t.Helper()
	var sb strings.Builder
	if err := gio.Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestGraphDigestSensitivity(t *testing.T) {
	g1, err := gpmetis.Grid2D(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gpmetis.Grid2D(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if GraphDigest(g1) != GraphDigest(g2) {
		t.Error("identical graphs must share a digest")
	}
	g2.VWgt[0]++
	if GraphDigest(g1) == GraphDigest(g2) {
		t.Error("a vertex-weight change must change the digest")
	}
	g3, err := gpmetis.Grid2D(10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if GraphDigest(g1) == GraphDigest(g3) {
		t.Error("different shapes must differ in digest")
	}
}

// TestCacheKeyCanonicalization is the cache-key invariant of DESIGN.md §9:
// spelling a default explicitly (seed 1, ub 1.03, algo "gp", merge
// "hash") yields the same content address as omitting it, while any
// semantic difference yields a new one.
func TestCacheKeyCanonicalization(t *testing.T) {
	g, err := gpmetis.Grid2D(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)
	key := func(req SubmitRequest) string {
		req.Graph = text
		j, err := resolveRequest(&req)
		if err != nil {
			t.Fatalf("resolve %+v: %v", req, err)
		}
		return j.key
	}

	base := key(SubmitRequest{K: 4})
	explicit := key(SubmitRequest{K: 4, Algo: "gp", Seed: 1, UB: 1.03, Merge: "hash"})
	if base != explicit {
		t.Error("explicit defaults must canonicalize to the zero-value key")
	}
	for name, req := range map[string]SubmitRequest{
		"k":      {K: 5},
		"seed":   {K: 4, Seed: 2},
		"ub":     {K: 4, UB: 1.1},
		"algo":   {K: 4, Algo: "mt"},
		"merge":  {K: 4, Merge: "sort"},
		"faults": {K: 4, Faults: "pcie.transfer:p=0.5"},
		"verify": {K: 4, Verify: true},
	} {
		if key(req) == base {
			t.Errorf("%s change must change the cache key", name)
		}
	}

	j, err := resolveRequest(&SubmitRequest{Graph: text, K: 4, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if j.key != "" {
		t.Error("NoCache jobs must not carry a content address")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	put := func(k string) { c.Put(k, &CachedResult{Result: JobResult{EdgeCut: len(k)}}) }
	put("a")
	put("b")
	if _, ok := c.Get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a must be cached")
	}
	put("c") // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was refreshed and must survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c was just inserted and must survive")
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}
	hits, misses, evicted := c.Stats()
	if hits != 3 || misses != 1 || evicted != 1 {
		t.Errorf("stats hits=%d misses=%d evicted=%d, want 3/1/1", hits, misses, evicted)
	}

	// Capacity < 1 disables caching entirely.
	off := NewCache(0)
	off.Put("x", &CachedResult{})
	if _, ok := off.Get("x"); ok {
		t.Error("zero-capacity cache must not store")
	}
}
