package server

import (
	"path/filepath"
	"testing"
	"time"

	"gpmetis"
)

// TestEstimatorSurvivesRestart: the EWMA service-time state is journaled
// on completions and restored on replay, so a restarted daemon does
// deadline admission with warm estimates instead of the cold priors.
func TestEstimatorSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")

	g, err := gpmetis.Grid2D(40, 40)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)

	s := New(Config{Devices: 1, QueueCap: 8, JournalPath: path})
	job, err := s.Submit(&SubmitRequest{Graph: text, K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, job.ID)
	cells := s.est.snapshot()
	if len(cells) == 0 {
		t.Fatal("a completed run must leave estimator evidence")
	}
	s.Close()

	// The restarted process must come up with the same cells, before any
	// job has run.
	s2 := New(Config{Devices: 1, QueueCap: 8, JournalPath: path})
	defer s2.Close()
	restored := s2.est.snapshot()
	if len(restored) != len(cells) {
		t.Fatalf("restored %d cells, want %d", len(restored), len(cells))
	}
	for i := range cells {
		if restored[i] != cells[i] {
			t.Errorf("cell %d: restored %+v, journaled %+v", i, restored[i], cells[i])
		}
	}
	if _, ok := s2.est.lookup(gpmetis.GPMetis, g.NumVertices()); !ok {
		t.Error("the restarted estimator must have evidence for the replayed workload")
	}
}

// TestEstimatorRecordSurvivesRotation: compaction rewrites the journal;
// the estimator record must be carried across, not dropped.
func TestEstimatorRecordSurvivesRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")

	g, err := gpmetis.Grid2D(30, 30)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Devices: 1, QueueCap: 8, JournalPath: path, JournalRotateEvery: 1})
	job, err := s.Submit(&SubmitRequest{Graph: graphText(t, g), K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, job.ID)
	s.Close()

	recs, _, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range recs {
		if rec.Type == RecEstimator {
			found = true
			if len(rec.Est) == 0 {
				t.Error("estimator record carries no cells")
			}
		}
	}
	if !found {
		t.Fatal("compacted journal lost the estimator record")
	}

	e := newEstimator()
	for _, rec := range recs {
		if rec.Type == RecEstimator {
			e.restore(rec.Est)
		}
	}
	if _, ok := e.lookup(gpmetis.GPMetis, g.NumVertices()); !ok {
		t.Error("restored estimator has no evidence for the journaled workload")
	}
}

// waitTerminal polls the in-process job index until the job leaves the
// queued/running states.
func waitTerminal(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		job, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch job.Status().State {
		case StateDone, StateFailed, StateCanceled:
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, job.Status().State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
