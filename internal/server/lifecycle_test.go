package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gpmetis"
	"gpmetis/internal/obs"
)

// syncBuffer is an io.Writer safe for the server's concurrent log calls.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// traceDoc mirrors the Chrome trace_event wire shape for assertions.
type traceDoc struct {
	TraceEvents []traceEv `json:"traceEvents"`
}

type traceEv struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func fetchTrace(t *testing.T, base, id string) traceDoc {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("trace: HTTP %d: %s", resp.StatusCode, body)
	}
	var doc traceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return doc
}

// TestMergedTraceEndToEnd is the tentpole acceptance test: one completed
// job must serve a single valid Chrome trace containing both wall-clock
// service lifecycle spans and the modeled-clock kernel spans, with the
// modeled roots parented under the service run span.
func TestMergedTraceEndToEnd(t *testing.T) {
	s := New(Config{
		Devices:     1,
		QueueCap:    8,
		Logger:      obs.DiscardLogger(),
		JournalPath: filepath.Join(t.TempDir(), "journal.jsonl"),
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := gpmetis.Grid2D(24, 24)
	if err != nil {
		t.Fatal(err)
	}
	st, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: graphText(t, g), K: 4})
	if apiErr != nil {
		t.Fatalf("submit: %s", apiErr.Error)
	}
	if st.TraceID == "" {
		t.Error("submitted job carries no trace_id")
	}
	st = httpPoll(t, ts.URL, st.ID)
	if st.State != StateDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}

	doc := fetchTrace(t, ts.URL, st.ID)
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	// Both process rows must be labeled.
	procs := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.Pid], _ = ev.Args["name"].(string)
		}
	}
	if procs[1] != "service (wall clock)" || procs[2] != "partition (modeled clock)" {
		t.Fatalf("process rows = %v, want service + partition", procs)
	}

	// The service row must tile the lifecycle.
	service := map[string]traceEv{}
	for _, ev := range doc.TraceEvents {
		if ev.Pid == 1 && ev.Ph == "X" {
			service[ev.Name] = ev
		}
	}
	for _, name := range []string{"admit", "cache-lookup", "queue-wait", "schedule", "run"} {
		if _, ok := service[name]; !ok {
			t.Errorf("service row missing lifecycle span %q (have %v)", name, service)
		}
	}
	run, ok := service["run"]
	if !ok {
		t.Fatal("no run span; cannot check parenting")
	}
	if run.Dur <= 0 {
		t.Errorf("run span duration = %v, want > 0", run.Dur)
	}
	runID, _ := run.Args["span"].(float64)
	if runID == 0 {
		t.Fatal("run span has no span id arg")
	}
	if got, _ := run.Args["job_id"].(string); got != st.ID {
		t.Errorf("run span job_id = %q, want %q", got, st.ID)
	}

	// The modeled row: root spans carry cat "run", the service_parent
	// pointer to the lifecycle run span, and the job correlation IDs;
	// their timestamps sit inside the run span's wall window.
	var roots, details int
	for _, ev := range doc.TraceEvents {
		if ev.Pid != 2 || ev.Ph != "X" {
			continue
		}
		if ev.Cat == "detail" {
			details++
			continue
		}
		if ev.Cat != "run" {
			continue
		}
		roots++
		if parent, _ := ev.Args["service_parent"].(float64); parent != runID {
			t.Errorf("modeled root %q service_parent = %v, want %v", ev.Name, ev.Args["service_parent"], runID)
		}
		if got, _ := ev.Args["job_id"].(string); got != st.ID {
			t.Errorf("modeled root job_id = %q, want %q", got, st.ID)
		}
		if got, _ := ev.Args["trace_id"].(string); got != st.TraceID {
			t.Errorf("modeled root trace_id = %q, want %q", got, st.TraceID)
		}
		if ev.Ts < run.Ts-0.5 {
			t.Errorf("modeled root starts at %vus, before the run span at %vus", ev.Ts, run.Ts)
		}
	}
	if roots == 0 {
		t.Error("no modeled-clock root spans in the merged trace")
	}
	if details == 0 {
		t.Error("no modeled-clock kernel detail spans in the merged trace")
	}

	// A queued/terminal job keeps a trace before any run too: resubmit as
	// a cache hit and expect service spans plus the original run's
	// modeled spans parented under cache-lookup.
	hit, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: graphText(t, g), K: 4})
	if apiErr != nil || !hit.Cached {
		t.Fatalf("resubmit: err=%v cached=%v", apiErr, hit.Cached)
	}
	hitDoc := fetchTrace(t, ts.URL, hit.ID)
	var hitLookupID float64
	for _, ev := range hitDoc.TraceEvents {
		if ev.Pid == 1 && ev.Ph == "X" && ev.Name == "cache-lookup" {
			hitLookupID, _ = ev.Args["span"].(float64)
		}
	}
	if hitLookupID == 0 {
		t.Fatal("cache-hit trace has no cache-lookup span")
	}
	for _, ev := range hitDoc.TraceEvents {
		if ev.Pid == 2 && ev.Cat == "run" {
			if parent, _ := ev.Args["service_parent"].(float64); parent != hitLookupID {
				t.Errorf("cache-hit modeled root parented to %v, want cache-lookup %v", parent, hitLookupID)
			}
		}
	}
}

// TestLogLinesCarryJobID captures the structured JSON log and asserts
// that every job-scoped line the daemon emits for a job carries its
// job_id and trace_id.
func TestLogLinesCarryJobID(t *testing.T) {
	var logBuf syncBuffer
	s := New(Config{
		Devices:     1,
		QueueCap:    8,
		Logger:      obs.NewLogger(&logBuf, obs.LogJSON, slog.LevelDebug),
		JournalPath: filepath.Join(t.TempDir(), "journal.jsonl"),
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := gpmetis.Grid2D(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	st, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: graphText(t, g), K: 2})
	if apiErr != nil {
		t.Fatalf("submit: %s", apiErr.Error)
	}
	st = httpPoll(t, ts.URL, st.ID)
	if st.State != StateDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}

	// The terminal log line lands from the watch goroutine shortly after
	// the poll sees the job done.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(logBuf.String(), "job done") {
		if time.Now().After(deadline) {
			t.Fatalf("no 'job done' log line; log:\n%s", logBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	jobLines := 0
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		msg, _ := rec["msg"].(string)
		if !strings.HasPrefix(msg, "job ") {
			continue // server-scoped lines (replay summary etc.)
		}
		jobLines++
		if got, _ := rec["job_id"].(string); got != st.ID {
			t.Errorf("line %q job_id = %q, want %q", msg, got, st.ID)
		}
		if got, _ := rec["trace_id"].(string); got != st.TraceID {
			t.Errorf("line %q trace_id = %q, want %q", msg, got, st.TraceID)
		}
	}
	// At minimum: admitted, scheduled, done.
	if jobLines < 3 {
		t.Errorf("only %d job-scoped log lines; want admitted+scheduled+done:\n%s", jobLines, logBuf.String())
	}
}

// TestDrainRejectsAndFinishes checks graceful shutdown: draining rejects
// new submissions with 503 code "draining" while in-flight jobs run to
// completion and are counted drained.
func TestDrainRejectsAndFinishes(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 8, Logger: obs.DiscardLogger()})
	defer s.Close()
	release := make(chan struct{})
	var gate sync.Once
	s.beforeRun = func(*Job) {
		gate.Do(func() { <-release }) // hold the first popped job
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := gpmetis.Grid2D(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)

	first, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 2, Seed: 1, NoCache: true})
	if apiErr != nil {
		t.Fatalf("job 1: %s", apiErr.Error)
	}
	waitForDepthDrain(t, s, 0) // worker popped job 1 and is held
	second, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 2, Seed: 2, NoCache: true})
	if apiErr != nil {
		t.Fatalf("job 2: %s", apiErr.Error)
	}

	s.StartDrain()

	// New submissions: typed 503.
	_, apiErr, code := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 2, Seed: 3})
	if apiErr == nil || code != http.StatusServiceUnavailable || apiErr.Code != CodeDraining {
		t.Fatalf("submit while draining = HTTP %d %+v, want 503 code draining", code, apiErr)
	}

	// Health reports the drain.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "draining" {
		t.Errorf("healthz status = %q, want draining", health.Status)
	}

	// Release the held worker; both live jobs must drain cleanly.
	close(release)
	drained, aborted := s.Drain(30 * time.Second)
	if drained != 2 || aborted != 0 {
		t.Errorf("Drain = %d drained, %d aborted; want 2, 0", drained, aborted)
	}
	if st := httpPoll(t, ts.URL, first.ID); st.State != StateDone {
		t.Errorf("job 1 after drain: %s", st.State)
	}
	if st := httpPoll(t, ts.URL, second.ID); st.State != StateDone {
		t.Errorf("job 2 after drain: %s", st.State)
	}

	// The flight recorder kept the drain lifecycle.
	var evs EventsResponse
	resp, err = http.Get(ts.URL + "/admin/events")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var sawBegin, sawEnd bool
	for _, e := range evs.Events {
		switch e.Type {
		case obs.EvDrainBegin:
			sawBegin = true
		case obs.EvDrainEnd:
			sawEnd = true
		}
	}
	if !sawBegin || !sawEnd {
		t.Errorf("flight recorder missing drain events: begin=%t end=%t", sawBegin, sawEnd)
	}
}

// TestOpsEndpoints exercises /slo, /admin/status(.json), /admin/events,
// and the healthz/metrics observability additions after real traffic.
func TestOpsEndpoints(t *testing.T) {
	s := New(Config{Devices: 2, QueueCap: 8, Logger: obs.DiscardLogger()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		st, apiErr, _ := httpSubmit(t, ts.URL, SubmitRequest{Graph: graphText(t, g), K: 2, Seed: seed, NoCache: true})
		if apiErr != nil {
			t.Fatalf("submit: %s", apiErr.Error)
		}
		if st = httpPoll(t, ts.URL, st.ID); st.State != StateDone {
			t.Fatalf("job finished %s", st.State)
		}
	}

	// /slo: three completed jobs, no failures, status ok.
	var slo obs.SLOSnapshot
	getJSON(t, ts.URL+"/slo", &slo)
	if slo.TotalJobs != 3 || slo.TotalFailed != 0 || slo.Status != obs.SLOOk {
		t.Errorf("/slo = %d jobs, %d failed, %q; want 3, 0, ok", slo.TotalJobs, slo.TotalFailed, slo.Status)
	}
	if slo.Fast.Jobs != 3 {
		t.Errorf("/slo fast window holds %d jobs, want 3", slo.Fast.Jobs)
	}

	// /admin/status.json: the ops view data.
	var status StatusResponse
	getJSON(t, ts.URL+"/admin/status.json", &status)
	if status.Status != "ok" || status.JobsCompleted != 3 || len(status.Slots) != 2 {
		t.Errorf("status = %q completed=%d slots=%d; want ok/3/2",
			status.Status, status.JobsCompleted, len(status.Slots))
	}
	if status.TotalSeconds.Count != 3 || status.TotalSeconds.P99 <= 0 {
		t.Errorf("total-latency summary = %+v, want count 3 and positive p99", status.TotalSeconds)
	}

	// /admin/status: the HTML view renders.
	resp, err := http.Get(ts.URL + "/admin/status")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("/admin/status Content-Type = %q", ct)
	}
	if !bytes.Contains(page, []byte("gpmetisd")) || !bytes.Contains(page, []byte("SLO")) {
		t.Errorf("ops page lacks expected content:\n%s", page)
	}

	// /admin/events: every job left admit and done events with IDs.
	var evs EventsResponse
	getJSON(t, ts.URL+"/admin/events", &evs)
	admits := 0
	for _, e := range evs.Events {
		if e.Type == obs.EvAdmit {
			admits++
			if e.Job == "" || e.Trace == "" {
				t.Errorf("admit event without correlation IDs: %+v", e)
			}
		}
	}
	if admits != 3 {
		t.Errorf("flight recorder holds %d admit events, want 3", admits)
	}

	// /healthz: SLO posture and event staleness signal.
	var health HealthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.SLOStatus != obs.SLOOk || health.EventsTotal == 0 || health.LastEvent == "" {
		t.Errorf("healthz observability fields = %+v", health)
	}

	// /metrics.json must be JSON-typed (it long served text/plain).
	resp, err = http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/metrics.json Content-Type = %q, want application/json", ct)
	}

	// /metrics: the SLO series and the lifecycle histogram are exposed.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"gpmetisd_slo_status", "gpmetisd_slo_latency_burn_fast",
		"gpmetisd_slo_availability_burn_slow", "gpmetisd_job_total_seconds_bucket",
	} {
		if !bytes.Contains(prom, []byte(series)) {
			t.Errorf("/metrics missing series %s", series)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}
