package server

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"time"

	"gpmetis/internal/obs"
)

// ErrDraining is the typed graceful-shutdown rejection: the server is
// draining and admits nothing new. The HTTP layer maps it to 503 with
// code "draining"; clients retry against another node or wait.
var ErrDraining = errors.New("server: draining, not accepting new jobs")

// Lifecycle span names. Together they tile a job's wall-clock path
// through the service: admission (validation + cache consultation),
// queue wait, the scheduling handoff, the run itself, and the terminal
// journal append.
const (
	lifeAdmit     = "admit"
	lifeCacheLook = "cache-lookup"
	lifeQueueWait = "queue-wait"
	lifeSchedule  = "schedule"
	lifeRun       = "run"
	lifeJournal   = "journal-append"
	lifeCoalesced = "coalesced-wait"
	// lifeClusterForward precedes admit on jobs that arrived via the ring:
	// a zero-width span carrying the forward's modeled network seconds.
	lifeClusterForward = "cluster-forward"
)

// LifeSpan is one wall-clock span of a job's service lifecycle, the
// service-tier counterpart of the modeled-clock obs.Span. Spans are
// recorded closed (start and end known) and serialized into the merged
// Chrome trace at GET /jobs/{id}/trace.
type LifeSpan struct {
	Name       string
	Start, End time.Time
	Attrs      map[string]any
}

// addLifeSpan appends one closed lifecycle span to the job.
func (j *Job) addLifeSpan(name string, start, end time.Time, attrs map[string]any) {
	j.mu.Lock()
	j.lifeSpans = append(j.lifeSpans, LifeSpan{Name: name, Start: start, End: end, Attrs: attrs})
	j.mu.Unlock()
}

// lifeSnapshot copies the job's lifecycle spans and clock anchors.
func (j *Job) lifeSnapshot() (spans []LifeSpan, submitted, runStart time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]LifeSpan(nil), j.lifeSpans...), j.submittedAt, j.runStartAt
}

// markRunStart stamps the wall-clock instant the partition run began,
// the anchor that places the modeled sub-trace inside the run span.
func (j *Job) markRunStart(t time.Time) {
	j.mu.Lock()
	j.runStartAt = t
	j.mu.Unlock()
}

// assignIDLocked names the job and mints its trace ID; the caller
// holds s.mu. Trace IDs are 128-bit crypto/rand hex, unique across
// nodes and restarts (the journal reuses job IDs, never trace IDs).
// A job whose trace ID was pre-set — a ring forward carrying the entry
// node's id — keeps it, so the distributed trace stays one trace.
func (s *Server) assignIDLocked(j *Job) {
	s.seq++
	j.ID = fmt.Sprintf("%s%06d", s.cfg.JobIDPrefix, s.seq)
	if j.traceID == "" {
		j.traceID = obs.NewTraceID()
	}
}

// jlog returns the job-correlated logger: every line it emits carries
// the job and trace IDs — and, when clustering is on, the node id — so
// one job's lifecycle is a single grep even across a ring.
func (s *Server) jlog(j *Job) *slog.Logger {
	l := s.log.With("job_id", j.ID, "trace_id", j.traceID)
	if id := s.nodeID(); id != "" {
		l = l.With("node_id", id)
	}
	return l
}

// event appends one lifecycle event to the flight recorder. Job-scoped
// events carry the job and trace IDs; server-scoped events pass nil.
// When clustering is on, every event is stamped with this node's id so
// fleet-merged event streams stay attributable.
func (s *Server) event(typ string, j *Job, slot int, detail string) {
	e := obs.Event{Type: typ, Slot: slot, Detail: detail, Node: s.nodeID()}
	if j != nil {
		e.Job, e.Trace = j.ID, j.traceID
	}
	s.events.Append(e)
	s.reg.Add("events.recorded", 1)
}

// tracedEvent is event for server-scoped records that belong to a
// cluster background round: the round's trace id rides along, linking
// the flight-recorder entry to the round's spans.
func (s *Server) tracedEvent(typ, trace, detail string) {
	e := obs.Event{Type: typ, Slot: -1, Detail: detail, Trace: trace, Node: s.nodeID()}
	s.events.Append(e)
	s.reg.Add("events.recorded", 1)
}

// observeTerminal is the single account-closing point for every job the
// server watched to a terminal state: the end-to-end latency histogram,
// the SLO sample, the lifecycle event, and the outcome log line all
// originate here.
func (s *Server) observeTerminal(j *Job) {
	st := j.Status()
	now := time.Now()
	_, submitted, _ := j.lifeSnapshot()
	var total float64
	if !submitted.IsZero() {
		total = now.Sub(submitted).Seconds()
	}
	s.reg.Observe("job.total_seconds", total)
	if st.Coalesced {
		j.addLifeSpan(lifeCoalesced, submitted, now, map[string]any{"leader_result": st.State})
	}

	log := s.jlog(j).With("state", st.State, "total_seconds", total,
		"cached", st.Cached, "coalesced", st.Coalesced, "device", st.Device)
	switch st.State {
	case StateDone:
		s.slo.Record(time.Duration(total*float64(time.Second)), false)
		j.tenant.addCompleted()
		detail := ""
		if st.Result != nil {
			detail = fmt.Sprintf("cut=%d modeled=%.6fs", st.Result.EdgeCut, st.Result.ModeledSeconds)
			log = log.With("edge_cut", st.Result.EdgeCut, "modeled_seconds", st.Result.ModeledSeconds,
				"degraded", st.Result.Degraded)
		}
		s.event(obs.EvDone, j, st.Device, detail)
		log.Info("job done")
	case StateFailed:
		s.slo.Record(time.Duration(total*float64(time.Second)), true)
		s.event(obs.EvFailed, j, st.Device, st.Error)
		log.Warn("job failed", "error", st.Error)
	case StateCanceled:
		// A client giving up is not a service failure: no SLO sample.
		s.event(obs.EvCanceled, j, st.Device, st.Error)
		log.Info("job canceled", "error", st.Error)
	}
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// StartDrain flips the server into draining mode: every subsequent
// Submit is rejected with ErrDraining (HTTP 503) while queued and
// running jobs keep making progress and every read endpoint stays up.
func (s *Server) StartDrain() {
	if s.draining.Swap(true) {
		return
	}
	s.reg.Set("draining", 1)
	s.event(obs.EvDrainBegin, nil, -1, "admission stopped")
	s.log.Info("drain started: admission stopped, letting in-flight jobs finish")
}

// Drain performs graceful shutdown: stop admission, then wait up to
// timeout for every queued and running job to reach a terminal state.
// It returns how many live jobs drained cleanly and how many were still
// live at the deadline (those are abandoned by Close and, on a journaled
// daemon, re-admitted by the next process). The journal is flushed by
// the Close that should follow.
func (s *Server) Drain(timeout time.Duration) (drained, aborted int) {
	s.StartDrain()
	s.mu.Lock()
	var live []*Job
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			if st := j.Status().State; st == StateQueued || st == StateRunning {
				live = append(live, j)
			}
		}
	}
	s.mu.Unlock()

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for _, j := range live {
		select {
		case <-j.Done():
			drained++
		case <-deadline.C:
			// Deadline reached; everything not already done is aborted.
			for _, rest := range live[drained+aborted:] {
				select {
				case <-rest.Done():
					drained++
				default:
					aborted++
				}
			}
			s.finishDrain(drained, aborted)
			return drained, aborted
		}
	}
	s.finishDrain(drained, aborted)
	return drained, aborted
}

func (s *Server) finishDrain(drained, aborted int) {
	detail := fmt.Sprintf("drained=%d aborted=%d", drained, aborted)
	s.event(obs.EvDrainEnd, nil, -1, detail)
	s.log.Info("drain finished", "drained", drained, "aborted", aborted)
	if aborted > 0 {
		s.log.Warn("drain deadline hit with live jobs; the journal re-admits them on restart",
			"aborted", aborted)
	}
}

// DumpEvents writes the flight recorder's retained tail as JSON — the
// daemon's SIGQUIT post-mortem artifact.
func (s *Server) DumpEvents(w io.Writer) error { return s.events.Dump(w) }

// wallUS converts a wall instant to microseconds after base, the merged
// trace's clock.
func wallUS(base, t time.Time) float64 { return float64(t.Sub(base)) / float64(time.Microsecond) }

// lifeSpanIDBase keeps service span IDs disjoint from the modeled
// tracer's span IDs inside one merged document.
const lifeSpanIDBase = 1_000_000

// NodeTraceForJob renders this node's view of a job as a NodeTrace —
// the unit a peer fetches at GET /internal/trace/{trace_id} to stitch
// a forwarded job's remote half into the entry node's document. Span
// ids match writeJobTrace's (lifeSpanIDBase+i) and the modeled Chrome
// events are pre-rendered with service_parent pointing at this node's
// run span; timestamps stay on this node's clock, the stitcher aligns.
func (s *Server) NodeTraceForJob(j *Job) NodeTrace {
	spans, submitted, runStart := j.lifeSnapshot()
	st := j.Status()
	nt := NodeTrace{NodeID: s.nodeID(), TraceID: st.TraceID, JobID: st.ID}
	base := submitted
	if base.IsZero() && len(spans) > 0 {
		base = spans[0].Start
	}
	if !base.IsZero() {
		nt.AnchorUnixNano = base.UnixNano()
	}
	parentID := int64(0)
	for i, sp := range spans {
		id := int64(lifeSpanIDBase + i)
		switch sp.Name {
		case lifeRun:
			parentID = id
		case lifeCacheLook:
			if parentID == 0 {
				parentID = id
			}
		}
		nt.Spans = append(nt.Spans, obs.SpanRecord{
			Span:          id,
			Name:          sp.Name,
			StartUnixNano: sp.Start.UnixNano(),
			EndUnixNano:   sp.End.UnixNano(),
			Attrs:         sp.Attrs,
		})
	}
	if t := j.Tracer(); t != nil {
		offset := 0.0
		if !runStart.IsZero() && !base.IsZero() {
			offset = wallUS(base, runStart)
		}
		rootArgs := map[string]any{"job_id": st.ID, "trace_id": st.TraceID}
		if parentID != 0 {
			rootArgs["service_parent"] = parentID
		}
		nt.Modeled = obs.TraceEvents(t, 2, offset, rootArgs)
	}
	return nt
}

// writeJobTrace serializes the job's merged timeline as one Chrome
// trace_event document with two process rows:
//
//	pid 1 "service (wall clock)"     — the lifecycle spans, microseconds
//	                                   since admission
//	pid 2 "partition (modeled clock)" — the run's modeled span tree,
//	                                   shifted to start at the run span's
//	                                   wall offset
//
// Every modeled root span's args carry service_parent — the ID of the
// lifecycle span that caused it (the run span, or the cache-lookup span
// for cache hits, whose trace is the original run's) — so one document
// shows HTTP-to-kernel causality.
func writeJobTrace(w io.Writer, j *Job) error {
	spans, submitted, runStart := j.lifeSnapshot()
	st := j.Status()

	events := []obs.ChromeEvent{
		obs.ProcessNameEvent(1, "service (wall clock)"),
		obs.ThreadNameEvent(1, 0, "lifecycle"),
	}
	base := submitted
	if base.IsZero() && len(spans) > 0 {
		base = spans[0].Start
	}
	parentID := int64(0)
	for i, sp := range spans {
		id := int64(lifeSpanIDBase + i)
		switch sp.Name {
		case lifeRun:
			parentID = id
		case lifeCacheLook:
			if parentID == 0 {
				parentID = id
			}
		}
		args := map[string]any{"span": id, "job_id": st.ID, "trace_id": st.TraceID}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		events = append(events, obs.ChromeEvent{
			Name: sp.Name,
			Cat:  "service",
			Ph:   "X",
			Ts:   wallUS(base, sp.Start),
			Dur:  wallUS(sp.Start, sp.End),
			Pid:  1,
			Tid:  0,
			Args: args,
		})
	}

	if t := j.Tracer(); t != nil {
		offset := 0.0
		if !runStart.IsZero() {
			offset = wallUS(base, runStart)
		}
		rootArgs := map[string]any{"job_id": st.ID, "trace_id": st.TraceID}
		if parentID != 0 {
			rootArgs["service_parent"] = parentID
		}
		events = append(events, obs.ProcessNameEvent(2, "partition (modeled clock)"))
		events = append(events, obs.TraceEvents(t, 2, offset, rootArgs)...)
	}
	return obs.WriteChromeJSON(w, events)
}
