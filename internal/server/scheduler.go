package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gpmetis"
	"gpmetis/internal/fault"
	"gpmetis/internal/obs"
)

// ErrQueueFull is the typed admission-control rejection: the bounded job
// queue is at capacity and the submission was refused. The HTTP layer
// maps it to 429 with code "overloaded"; direct callers retry later.
var ErrQueueFull = errors.New("server: job queue full")

// pool is the device-pool scheduler: one worker goroutine per modeled
// GPU slot, each owning a private clone of the machine model. A slot
// runs one job at a time, so jobs never share a modeled device — the
// modeled-clock isolation invariant — while up to len(machines) jobs
// progress concurrently in wall-clock time. Slots additionally carry
// quarantine state (see quarantine.go): a slot that keeps dying with
// modeled device faults is pulled from the queue and runs health probes
// until its probation backoff is served.
type pool struct {
	s        *Server
	machines []*gpmetis.Machine
	health   []*slotHealth

	// Per-slot utilization, for the /metrics exposition and the ops
	// view: cumulative wall seconds each slot spent running jobs, how
	// many jobs it ran, and the job it is running right now ("" idle).
	statMu      sync.Mutex
	slotBusy    []float64
	slotJobs    []int64
	slotRunning []string
}

func newPool(s *Server, devices int, base *gpmetis.Machine) *pool {
	p := &pool{s: s}
	for i := 0; i < devices; i++ {
		m := *base // private clone per slot: no cross-job model sharing
		p.machines = append(p.machines, &m)
		p.health = append(p.health, newSlotHealth())
	}
	p.slotBusy = make([]float64, devices)
	p.slotJobs = make([]int64, devices)
	p.slotRunning = make([]string, devices)
	return p
}

// slotStats snapshots the per-slot utilization counters.
func (p *pool) slotStats() (busy []float64, jobs []int64) {
	p.statMu.Lock()
	defer p.statMu.Unlock()
	return append([]float64(nil), p.slotBusy...), append([]int64(nil), p.slotJobs...)
}

// slotOccupancy snapshots which job each slot is running ("" idle).
func (p *pool) slotOccupancy() []string {
	p.statMu.Lock()
	defer p.statMu.Unlock()
	return append([]string(nil), p.slotRunning...)
}

// start launches the workers; they exit when ctx is canceled. The fair
// queue cannot select on a context, so a watcher goroutine closes it on
// cancellation, waking every blocked Pop.
func (p *pool) start(ctx context.Context) {
	p.s.wg.Add(1)
	go func() {
		defer p.s.wg.Done()
		<-ctx.Done()
		p.s.fq.Close()
	}()
	for i := range p.machines {
		p.s.wg.Add(1)
		go func(slot int) {
			defer p.s.wg.Done()
			p.worker(ctx, slot)
		}(i)
	}
}

// worker drains the queue: pop, discard if the job died while queued,
// otherwise run it on this slot's private machine. The slot is freed —
// by returning to the top of the loop — on every outcome, including
// cancellation and failure, so one misbehaving job can never leak a
// device. A quarantined slot takes no jobs; it runs health probes until
// reinstated.
func (p *pool) worker(ctx context.Context, slot int) {
	for {
		if p.health[slot].quarantined() {
			select {
			case <-ctx.Done():
				return
			default:
			}
			p.probe(slot)
			continue
		}
		job := p.s.fq.Pop()
		if job == nil {
			return // queue closed: shutdown
		}
		p.s.reg.Add("queue.depth", -1)
		if hook := p.s.beforeRun; hook != nil {
			hook(job)
		}
		if err := job.ctx.Err(); err != nil {
			p.finishDead(job, err)
			continue
		}
		pop := time.Now()
		wait := pop.Sub(job.queuedAt).Seconds()
		p.s.reg.Add("queue.wait_seconds", wait)
		p.s.reg.Observe("job.queue_seconds", wait)
		p.s.brown.observeWait(pop.Sub(job.queuedAt))
		p.s.brownoutTick()
		job.addLifeSpan(lifeQueueWait, job.queuedAt, pop, nil)
		job.markRunning(slot, wait)
		p.s.event(obs.EvScheduled, job, slot, "")
		p.s.jlog(job).Info("job scheduled", "slot", slot, "wait_seconds", wait)
		p.s.journalAppend(Record{Type: RecRunning, ID: job.ID})
		p.s.reg.Add("devices.busy", 1)
		p.statMu.Lock()
		p.slotRunning[slot] = job.ID
		p.statMu.Unlock()
		t0 := time.Now()
		job.addLifeSpan(lifeSchedule, pop, t0, map[string]any{"slot": slot})
		job.markRunStart(t0)
		p.s.event(obs.EvRunStart, job, slot, "")
		p.runJob(job, slot)
		t1 := time.Now()
		ran := t1.Sub(t0).Seconds()
		job.addLifeSpan(lifeRun, t0, t1, map[string]any{
			"slot": slot, "outcome": job.Status().State,
		})
		p.s.reg.Add("devices.busy", -1)
		p.s.reg.Observe("job.run_seconds", ran)
		p.statMu.Lock()
		p.slotBusy[slot] += ran
		p.slotJobs[slot]++
		p.slotRunning[slot] = ""
		p.statMu.Unlock()
		// Feed the service-time estimator and the tenant's served-cost
		// account from genuine completed runs only: cache hits and
		// coalesced followers cost nothing and would drag the EWMA to 0.
		if st := job.Status(); st.State == StateDone && st.Result != nil {
			p.s.est.observe(job.algo, job.g.NumVertices(), ran, st.Result.ModeledSeconds)
			job.tenant.addServed(st.Result.ModeledSeconds)
			p.s.journalEstimator()
		}
	}
}

// finishDead retires a job whose context expired before it ran (or, via
// runJob, one whose context expired while it ran).
func (p *pool) finishDead(job *Job, cause error) {
	if errors.Is(cause, context.DeadlineExceeded) {
		p.s.reg.Add("jobs.failed", 1)
		job.finish(StateFailed, nil, "deadline exceeded while queued")
		return
	}
	p.s.reg.Add("jobs.canceled", 1)
	job.finish(StateCanceled, nil, "canceled while queued")
}

// checkpointPath returns where a job's crash-recovery snapshot lives,
// "" when checkpointing is off or the job's shape is not resumable
// (only single-device GP-metis runs checkpoint).
func (p *pool) checkpointPath(job *Job) string {
	if p.s.cfg.CheckpointDir == "" || job.algo != gpmetis.GPMetis || job.opts.Devices > 1 {
		return ""
	}
	return filepath.Join(p.s.cfg.CheckpointDir, job.ID+".ckpt")
}

// runJob executes one job on this slot. The run gets its own tracer,
// its own machine clone, and a Cancel hook bound to the job context, so
// a DELETE or a deadline stops it at the next level boundary. When
// checkpointing is configured the run snapshots at every boundary, and
// a job carrying a recovery checkpoint resumes from it.
func (p *pool) runJob(job *Job, slot int) {
	// Every exit from runJob leaves the job terminal, so its snapshot is
	// dead weight on all paths; recovery must not see it.
	defer func() {
		if path := p.checkpointPath(job); path != "" {
			os.Remove(path)
		}
	}()
	tracer := gpmetis.NewTracer()
	job.setTracer(tracer)
	o := job.opts
	o.Tracer = tracer
	o.Machine = p.machines[slot]
	o.Cancel = job.ctx.Err

	if path := p.checkpointPath(job); path != "" {
		warned := false
		o.Checkpoint = func(c *gpmetis.Checkpoint) error {
			if err := gpmetis.WriteCheckpointFile(path, c); err != nil {
				// Durability degradation: keep computing, stop promising
				// resumability, say so once.
				p.s.reg.Add("checkpoint.errors", 1)
				if !warned {
					warned = true
					p.s.reg.Set("checkpoint.degraded", 1)
					p.s.jlog(job).Warn("checkpointing degraded; job keeps running without snapshots",
						"error", err.Error())
				}
				return nil
			}
			p.s.reg.Add("checkpoint.writes", 1)
			return nil
		}
		if job.resume != nil {
			o.Resume = job.resume
			job.mu.Lock()
			job.resumed = true
			job.mu.Unlock()
		}
	}

	res, err := gpmetis.Partition(job.g, job.k, o)
	if err != nil && o.Resume != nil &&
		(errors.Is(err, gpmetis.ErrCheckpointMismatch) || errors.Is(err, gpmetis.ErrCheckpointCorrupt)) {
		// A stale or damaged snapshot must never lose the job: drop it
		// and run from scratch.
		p.s.reg.Add("checkpoint.rejected", 1)
		o.Resume = nil
		job.mu.Lock()
		job.resumed = false
		job.mu.Unlock()
		res, err = gpmetis.Partition(job.g, job.k, o)
	}
	switch {
	case err == nil:
		if cerr := job.ctx.Err(); cerr != nil {
			// The run completed despite an expired context (algorithms
			// without boundary polling, or a cancel racing the last
			// level). The submitter canceled this job; its result must
			// not enter the cache — a later identical submit is a fresh
			// computation, not a hit off a canceled job.
			p.finishDead(job, cerr)
			return
		}
		jr := &JobResult{
			Part:           res.Part,
			EdgeCut:        res.EdgeCut,
			Imbalance:      gpmetis.Imbalance(job.g, res.Part, job.k),
			ModeledSeconds: res.ModeledSeconds,
			Degraded:       res.Degraded,
			DegradedReason: res.DegradedReason,
			FaultEvents:    len(res.FaultEvents),
		}
		p.s.reg.Add("jobs.completed", 1)
		p.s.reg.Add("modeled.seconds", res.ModeledSeconds)
		p.s.reg.Observe("job.modeled_seconds", res.ModeledSeconds)
		if res.Degraded {
			p.s.reg.Add("jobs.degraded", 1)
		}
		if job.Status().Resumed {
			p.s.reg.Add("jobs.resumed_completed", 1)
		}
		p.health[slot].clearStrikes()
		job.setProfile(res.Profile)
		if job.key != "" {
			p.s.cache.Put(job.key, &CachedResult{Result: *jr, Tracer: tracer, Profile: res.Profile})
		}
		job.finish(StateDone, jr, "")
	case errors.Is(err, gpmetis.ErrCanceled):
		if errors.Is(job.ctx.Err(), context.DeadlineExceeded) {
			p.s.reg.Add("jobs.failed", 1)
			job.finish(StateFailed, nil, fmt.Sprintf("deadline exceeded: %v", err))
			return
		}
		p.s.reg.Add("jobs.canceled", 1)
		job.finish(StateCanceled, nil, err.Error())
	default:
		var lost *fault.DeviceLost
		if errors.As(err, &lost) {
			p.s.reg.Add("devices.faults", 1)
			if p.health[slot].strike(p.s.cfg.QuarantineThreshold, p.s.cfg.QuarantineBackoff) {
				p.s.reg.Add("devices.quarantined", 1)
				p.s.reg.Add("quarantine.entered", 1)
				p.s.event(obs.EvQuarantine, nil, slot,
					fmt.Sprintf("%d consecutive device faults", p.s.cfg.QuarantineThreshold))
				p.s.log.Warn("device slot quarantined",
					"slot", slot, "consecutive_faults", p.s.cfg.QuarantineThreshold)
			}
		}
		p.s.reg.Add("jobs.failed", 1)
		job.finish(StateFailed, nil, err.Error())
	}
}
