package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gpmetis"
)

// ErrQueueFull is the typed admission-control rejection: the bounded job
// queue is at capacity and the submission was refused. The HTTP layer
// maps it to 429 with code "overloaded"; direct callers retry later.
var ErrQueueFull = errors.New("server: job queue full")

// pool is the device-pool scheduler: one worker goroutine per modeled
// GPU slot, each owning a private clone of the machine model. A slot
// runs one job at a time, so jobs never share a modeled device — the
// modeled-clock isolation invariant — while up to len(machines) jobs
// progress concurrently in wall-clock time.
type pool struct {
	s        *Server
	machines []*gpmetis.Machine
}

func newPool(s *Server, devices int, base *gpmetis.Machine) *pool {
	p := &pool{s: s}
	for i := 0; i < devices; i++ {
		m := *base // private clone per slot: no cross-job model sharing
		p.machines = append(p.machines, &m)
	}
	return p
}

// start launches the workers; they exit when ctx is canceled.
func (p *pool) start(ctx context.Context) {
	for i := range p.machines {
		p.s.wg.Add(1)
		go func(slot int) {
			defer p.s.wg.Done()
			p.worker(ctx, slot)
		}(i)
	}
}

// worker drains the queue: pop, discard if the job died while queued,
// otherwise run it on this slot's private machine. The slot is freed —
// by returning to the top of the loop — on every outcome, including
// cancellation and failure, so one misbehaving job can never leak a
// device.
func (p *pool) worker(ctx context.Context, slot int) {
	for {
		var job *Job
		select {
		case <-ctx.Done():
			return
		case job = <-p.s.queue:
		}
		p.s.reg.Add("queue.depth", -1)
		if hook := p.s.beforeRun; hook != nil {
			hook(job)
		}
		if err := job.ctx.Err(); err != nil {
			p.finishDead(job, err)
			continue
		}
		wait := time.Since(job.queuedAt).Seconds()
		p.s.reg.Add("queue.wait_seconds", wait)
		job.markRunning(slot, wait)
		p.s.reg.Add("devices.busy", 1)
		p.runJob(job, slot)
		p.s.reg.Add("devices.busy", -1)
	}
}

// finishDead retires a job whose context expired before it ran.
func (p *pool) finishDead(job *Job, cause error) {
	if errors.Is(cause, context.DeadlineExceeded) {
		p.s.reg.Add("jobs.failed", 1)
		job.finish(StateFailed, nil, "deadline exceeded while queued")
		return
	}
	p.s.reg.Add("jobs.canceled", 1)
	job.finish(StateCanceled, nil, "canceled while queued")
}

// runJob executes one job on this slot. The run gets its own tracer,
// its own machine clone, and a Cancel hook bound to the job context, so
// a DELETE or a deadline stops it at the next level boundary.
func (p *pool) runJob(job *Job, slot int) {
	tracer := gpmetis.NewTracer()
	job.setTracer(tracer)
	o := job.opts
	o.Tracer = tracer
	o.Machine = p.machines[slot]
	o.Cancel = job.ctx.Err

	res, err := gpmetis.Partition(job.g, job.k, o)
	switch {
	case err == nil:
		jr := &JobResult{
			Part:           res.Part,
			EdgeCut:        res.EdgeCut,
			Imbalance:      gpmetis.Imbalance(job.g, res.Part, job.k),
			ModeledSeconds: res.ModeledSeconds,
			Degraded:       res.Degraded,
			DegradedReason: res.DegradedReason,
			FaultEvents:    len(res.FaultEvents),
		}
		p.s.reg.Add("jobs.completed", 1)
		p.s.reg.Add("modeled.seconds", res.ModeledSeconds)
		if res.Degraded {
			p.s.reg.Add("jobs.degraded", 1)
		}
		if job.key != "" {
			p.s.cache.Put(job.key, &CachedResult{Result: *jr, Tracer: tracer})
		}
		job.finish(StateDone, jr, "")
	case errors.Is(err, gpmetis.ErrCanceled):
		if errors.Is(job.ctx.Err(), context.DeadlineExceeded) {
			p.s.reg.Add("jobs.failed", 1)
			job.finish(StateFailed, nil, fmt.Sprintf("deadline exceeded: %v", err))
			return
		}
		p.s.reg.Add("jobs.canceled", 1)
		job.finish(StateCanceled, nil, err.Error())
	default:
		p.s.reg.Add("jobs.failed", 1)
		job.finish(StateFailed, nil, err.Error())
	}
}
