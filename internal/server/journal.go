package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"gpmetis/internal/checkpoint"
)

// Journal is the daemon's durable write-ahead log: one JSON record per
// line, fsynced per append, so a restarted gpmetisd can reconstruct
// every job the previous process had accepted. The record stream is
// state-transition shaped — submit, running, then exactly one terminal
// record — and replay folds it back into per-job outcomes.
//
// Durability failures (ENOSPC, a vanished directory, a failed fsync) are
// surfaced as checkpoint.ErrDurability exactly once; the journal then
// disables itself and the daemon keeps serving non-durably rather than
// crashing, per the degradation contract of DESIGN.md §10.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	path     string
	appends  int64 // since last open/rotate
	disabled bool
}

// Record is one journal line. Type decides which fields are meaningful:
//
//	submit:    ID, Seq, Req
//	running:   ID
//	done:      ID, Key (may be empty), Result
//	failed:    ID, Error
//	canceled:  ID, Error
//	estimator: ID (always "estimator"), Est — the EWMA service-time
//	           cells at append time; replay keeps the last one seen
//	replica:   ID ("replica-" + key prefix), Key, Result — a cache
//	           entry this node holds as a ring replica of a peer's
//	           work; replay re-seeds it without re-replicating
type Record struct {
	Type   string          `json:"type"`
	ID     string          `json:"id"`
	Seq    int             `json:"seq,omitempty"`
	Req    *SubmitRequest  `json:"req,omitempty"`
	Key    string          `json:"key,omitempty"`
	Result *JobResult      `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	Est    []EstimatorCell `json:"est,omitempty"`
}

// Journal record types.
const (
	RecSubmit    = "submit"
	RecRunning   = "running"
	RecDone      = "done"
	RecFailed    = "failed"
	RecCanceled  = "canceled"
	RecEstimator = "estimator"
	RecReplica   = "replica"
)

// OpenJournal opens (creating if needed) the journal at path for
// appending. Failures wrap checkpoint.ErrDurability.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: open journal: %v", checkpoint.ErrDurability, err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), path: path}, nil
}

// Append durably writes one record: marshal, write, flush, fsync. The
// first failure wraps checkpoint.ErrDurability and permanently disables
// the journal (subsequent appends are silent no-ops returning nil), so
// the caller logs the degradation once and keeps serving.
func (j *Journal) Append(rec Record) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.disabled {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	if err := j.appendLocked(line); err != nil {
		j.disabled = true
		return fmt.Errorf("%w: journal append: %v", checkpoint.ErrDurability, err)
	}
	j.appends++
	return nil
}

func (j *Journal) appendLocked(line []byte) error {
	if _, err := j.w.Write(line); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

// Appends returns the number of records appended since open or the last
// rotation, the input to the server's rotation policy.
func (j *Journal) Appends() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// Disabled reports whether a durability failure switched the journal off.
func (j *Journal) Disabled() bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.disabled
}

// Rotate atomically replaces the journal with a compacted record set
// (typically: one submit+terminal pair per retained job, live jobs as
// submit/running). The new content is written to a temp file, fsynced,
// and renamed over the old journal; the journal then continues appending
// to the new file. On failure the old journal keeps working if possible,
// and the error wraps checkpoint.ErrDurability.
func (j *Journal) Rotate(records []Record) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.disabled {
		return nil
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return fmt.Errorf("%w: rotate: %v", checkpoint.ErrDurability, err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("%w: rotate: %v", checkpoint.ErrDurability, err)
	}
	bw := bufio.NewWriter(tmp)
	for _, rec := range records {
		line, err := json.Marshal(rec)
		if err != nil {
			return fail(err)
		}
		if _, err := bw.Write(line); err != nil {
			return fail(err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fail(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("%w: rotate: %v", checkpoint.ErrDurability, err)
	}
	if err := os.Rename(tmpName, j.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("%w: rotate: %v", checkpoint.ErrDurability, err)
	}
	// Swap the append handle to the new file.
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.disabled = true
		return fmt.Errorf("%w: rotate reopen: %v", checkpoint.ErrDurability, err)
	}
	j.f.Close()
	j.f = nf
	j.w = bufio.NewWriter(nf)
	j.appends = 0
	return nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.disabled {
		j.f.Close()
		return nil
	}
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// ReplayJournal reads a journal back as its record sequence. A corrupt
// tail — a torn final line from a crash mid-append, or trailing garbage
// — is tolerated: replay stops at the first unparsable line and reports
// how many lines it dropped. A missing file replays as empty.
func ReplayJournal(path string) (records []Record, dropped int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 512<<20)
	lines := 0
	bad := false
	for sc.Scan() {
		lines++
		if bad {
			dropped++
			continue
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if jsonErr := json.Unmarshal(line, &rec); jsonErr != nil || rec.Type == "" || rec.ID == "" {
			// Corrupt-tail tolerance: everything from here on is dropped.
			bad = true
			dropped++
			continue
		}
		records = append(records, rec)
	}
	if scanErr := sc.Err(); scanErr != nil {
		// An unterminated or overlong final chunk counts as a torn tail.
		dropped++
	}
	return records, dropped, nil
}
