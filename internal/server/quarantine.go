package server

import (
	"sync"

	"gpmetis"
	"gpmetis/internal/graph/gen"
	"gpmetis/internal/obs"
)

// Slot quarantine states.
const (
	DeviceHealthy     = "healthy"
	DeviceQuarantined = "quarantined"
)

// slotHealth tracks one device slot's quarantine state machine. A slot
// that keeps killing jobs with modeled device deaths is pulled from the
// pool (quarantined) and must earn its way back by running health-probe
// jobs until it has spent the reinstatement backoff on its modeled
// clock; the backoff doubles with every quarantine, so a slot that
// flaps spends exponentially longer on probation each time.
type slotHealth struct {
	mu sync.Mutex

	state       string
	strikes     int // consecutive device-fault deaths while healthy
	quarantines int // lifetime quarantine count; drives the backoff

	probes          int     // successful probes this quarantine
	probeSeconds    float64 // modeled probe time this quarantine
	requiredSeconds float64 // modeled backoff to sit out
}

func newSlotHealth() *slotHealth { return &slotHealth{state: DeviceHealthy} }

// strike records one device-fault death. It returns true when the
// strike crossed the threshold and the slot just entered quarantine.
func (h *slotHealth) strike(threshold int, backoffBase float64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != DeviceHealthy {
		return false
	}
	h.strikes++
	if h.strikes < threshold {
		return false
	}
	h.state = DeviceQuarantined
	h.quarantines++
	h.probes = 0
	h.probeSeconds = 0
	h.requiredSeconds = backoffBase * float64(int64(1)<<uint(min(h.quarantines-1, 30)))
	return true
}

// clearStrikes resets the consecutive-death counter after a job
// completes cleanly on the slot.
func (h *slotHealth) clearStrikes() {
	h.mu.Lock()
	h.strikes = 0
	h.mu.Unlock()
}

// quarantined reports whether the slot is on probation.
func (h *slotHealth) quarantined() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state == DeviceQuarantined
}

// probeResult accounts one health probe. It returns true when the probe
// budget is met and the slot just got reinstated.
func (h *slotHealth) probeResult(modeledSeconds float64, ok bool) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != DeviceQuarantined {
		return false
	}
	if !ok {
		// A failed probe restarts the budget: the device is still sick.
		h.probes = 0
		h.probeSeconds = 0
		return false
	}
	h.probes++
	h.probeSeconds += modeledSeconds
	if h.probeSeconds < h.requiredSeconds {
		return false
	}
	h.state = DeviceHealthy
	h.strikes = 0
	return true
}

// reinstate forces the slot back into service (the /admin override),
// clearing strikes. It returns true if the slot was quarantined.
func (h *slotHealth) reinstate() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	was := h.state == DeviceQuarantined
	h.state = DeviceHealthy
	h.strikes = 0
	h.probes = 0
	h.probeSeconds = 0
	return was
}

// status snapshots the slot for the wire.
func (h *slotHealth) status(slot int) DeviceStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := DeviceStatus{
		Slot:        slot,
		State:       h.state,
		Strikes:     h.strikes,
		Quarantines: h.quarantines,
	}
	if h.state == DeviceQuarantined {
		st.Probes = h.probes
		st.ProbeSeconds = h.probeSeconds
		st.RequiredSeconds = h.requiredSeconds
	}
	return st
}

// probe runs one health-probe job on the slot's private machine: a
// small deterministic partition that exercises the full GPU pipeline
// (upload, coarsen, CPU middle, uncoarsen, download). Its modeled
// seconds are the probation currency.
func (p *pool) probe(slot int) {
	p.s.reg.Add("quarantine.probes", 1)
	g, err := gen.Grid2D(32, 32)
	if err != nil {
		p.s.slotProbeDone(slot, 0, false)
		return
	}
	res, err := gpmetis.Partition(g, 4, gpmetis.Options{
		Machine:      p.machines[slot],
		GPUThreshold: 256, // force the GPU path on the small probe graph
	})
	if err != nil {
		p.s.slotProbeDone(slot, 0, false)
		return
	}
	p.s.slotProbeDone(slot, res.ModeledSeconds, true)
}

// slotProbeDone applies a probe outcome and maintains the quarantine
// gauge and counters.
func (s *Server) slotProbeDone(slot int, modeledSeconds float64, ok bool) {
	if s.pool.health[slot].probeResult(modeledSeconds, ok) {
		s.reg.Add("devices.quarantined", -1)
		s.reg.Add("quarantine.reinstated", 1)
		s.event(obs.EvReinstate, nil, slot, "probation served")
		s.log.Info("device slot reinstated after probation", "slot", slot)
	}
}
