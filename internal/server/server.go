package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gpmetis"
	"gpmetis/internal/obs"
)

// Version identifies the serving subsystem build, reported by /healthz
// and the gpmetisd_build_info metric.
const Version = "0.6.0"

// Config sizes the serving subsystem. Zero values take the defaults
// noted per field.
type Config struct {
	// Devices is the scheduler pool size: how many jobs run concurrently,
	// each on a private clone of the machine model (default 2).
	Devices int
	// QueueCap bounds the job queue; submissions beyond it are rejected
	// with ErrQueueFull (default 64).
	QueueCap int
	// CacheCap bounds the result cache in entries; < 0 disables caching
	// (default 128).
	CacheCap int
	// Machine is the base machine model each device slot clones; nil
	// means gpmetis.DefaultMachine().
	Machine *gpmetis.Machine
	// DefaultDeadline bounds jobs that set no deadline_ms; 0 means
	// unbounded.
	DefaultDeadline time.Duration
	// MaxJobs bounds the in-memory job index; the oldest terminal jobs
	// are forgotten beyond it (default 4096).
	MaxJobs int
	// JournalPath, when non-empty, enables the durable job journal: every
	// accepted job and its outcome is appended (fsynced) to this JSONL
	// file, and a restarted server replays it — completed results are
	// served again, interrupted jobs are re-admitted.
	JournalPath string
	// CheckpointDir, when non-empty, makes single-device GP-metis jobs
	// snapshot at every level boundary; after a crash the replayed jobs
	// resume from their last snapshot instead of starting over.
	CheckpointDir string
	// JournalRotateEvery compacts the journal after this many appends
	// (default 4096): terminal jobs collapse to submit+outcome pairs and
	// forgotten jobs drop out.
	JournalRotateEvery int
	// QuarantineThreshold is how many consecutive modeled device faults
	// put a pool slot into probation (default 3).
	QuarantineThreshold int
	// QuarantineBackoff is the base modeled-seconds probation budget a
	// quarantined slot must spend on health probes before reinstatement;
	// it doubles with every quarantine of the same slot (default 0.002).
	QuarantineBackoff float64
	// Logger receives structured operational logs. Every job-scoped line
	// carries job_id and trace_id attributes. Nil means a text handler on
	// os.Stderr at info level; use obs.DiscardLogger to silence.
	Logger *slog.Logger
	// SLO configures the service-level objectives evaluated at GET /slo
	// and exported as gpmetisd_slo_* metrics; zero fields take the
	// obs.SLOConfig defaults (2s latency at 95%, 99% availability, 5m/1h
	// burn windows).
	SLO obs.SLOConfig
	// EventBuffer sizes the lifecycle flight recorder: how many recent
	// events GET /admin/events retains (default 256).
	EventBuffer int
	// Tenants configures multi-tenant admission: per-tenant weight,
	// max-queued quota, and token-bucket rate limits. Nil means every
	// tenant runs under the built-in default contract (weight 1, no
	// quota, no rate limit). See LoadTenantsFile for the JSON form.
	Tenants TenantsConfig
	// Brownout tunes the overload ladder (queue-wait burn windows, shed
	// and degrade thresholds); zero fields take the BrownoutConfig
	// defaults. Set Brownout.Disable to pin the ladder off.
	Brownout BrownoutConfig
	// Now is the wall clock behind admission control (token buckets, the
	// brownout windows); nil means time.Now. Injectable for tests.
	Now func() time.Time
	// JobIDPrefix prefixes generated job IDs (default "j"). Cluster nodes
	// set a per-node prefix ("n0-j", "n1-j", ...) so IDs are unique across
	// the ring and an entry node's forwarding table can never confuse a
	// local job with one it forwarded elsewhere.
	JobIDPrefix string
}

func (c Config) withDefaults() Config {
	if c.Devices == 0 {
		c.Devices = 2
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.CacheCap == 0 {
		c.CacheCap = 128
	}
	if c.CacheCap < 0 {
		c.CacheCap = 0
	}
	if c.Machine == nil {
		c.Machine = gpmetis.DefaultMachine()
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 4096
	}
	if c.JournalRotateEvery == 0 {
		c.JournalRotateEvery = 4096
	}
	if c.QuarantineThreshold == 0 {
		c.QuarantineThreshold = 3
	}
	if c.QuarantineBackoff == 0 {
		c.QuarantineBackoff = 0.002
	}
	if c.Logger == nil {
		c.Logger = obs.NewLogger(os.Stderr, obs.LogText, slog.LevelInfo)
	}
	c.SLO = c.SLO.WithDefaults()
	if c.EventBuffer == 0 {
		c.EventBuffer = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.JobIDPrefix == "" {
		c.JobIDPrefix = "j"
	}
	return c
}

// Server owns the queue, the device pool, the result cache, the job
// index, and (when configured) the durable journal. Create with New,
// serve its Handler, and Close on shutdown.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	cache   *Cache
	fq      *fairQueue
	tenants *tenantTable
	est     *estimator
	brown   *brownout
	pool    *pool
	journal *Journal

	// brownMu serializes brownout level transitions and shed passes so
	// the begin/end events pair up and victims are shed exactly once.
	brownMu sync.Mutex

	log      *slog.Logger
	slo      *obs.SLO
	events   *obs.EventRing
	draining atomic.Bool

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing and retention
	seq      int
	inflight map[string]*Job // cache key -> live leader (single-flight)

	journalWarn sync.Once

	// clusterFn, when installed via SetClusterStatus, snapshots the ring
	// tier's state for /healthz, the ops view, and the cluster metric
	// series. The server only consumes plain ClusterStatus data, so
	// internal/cluster can depend on this package without a cycle.
	clusterMu sync.Mutex
	clusterFn func() *ClusterStatus

	// resultFn, when installed via SetResultHook, is called with the
	// content key and result of every job that completes fresh on this
	// node — not cache hits, not coalesced followers, not journal
	// replays. The cluster tier hangs replication off it; the same
	// no-cycle rule as clusterFn applies.
	resultMu sync.Mutex
	resultFn func(key string, res *JobResult)

	// promFn, when installed via SetPromExtra, contributes extra samples
	// and labeled histograms to the /metrics exposition — the cluster
	// tier's per-peer RPC series. Same no-cycle rule as clusterFn.
	promMu sync.Mutex
	promFn func() ([]obs.PromSample, []obs.PromHistogram)

	// nodeIDv holds this node's cluster identity ("" standalone; set once
	// by the cluster tier at startup). Read on every log line and
	// flight-recorder event, hence the atomic.
	nodeIDv atomic.Value

	// replicaKeys (guarded by mu) tracks cache entries this node holds
	// as a ring replica of a peer's work, so journal rotation preserves
	// them and a restart re-seeds them without re-replicating.
	replicaKeys map[string]bool

	start time.Time

	// beforeRun, when non-nil, is called by a worker after popping a job
	// and before checking its context — a test seam that makes queue-full
	// and cancellation scenarios deterministic.
	beforeRun func(*Job)
}

// New builds a Server, replays its journal if one is configured, and
// starts the device-pool workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		reg:         &obs.Registry{},
		cache:       NewCache(cfg.CacheCap),
		fq:          newFairQueue(cfg.QueueCap),
		tenants:     newTenantTable(cfg.Tenants),
		est:         newEstimator(),
		jobs:        map[string]*Job{},
		inflight:    map[string]*Job{},
		replicaKeys: map[string]bool{},
		start:       time.Now(),
	}
	s.log = cfg.Logger
	s.slo = obs.NewSLO(cfg.SLO)
	s.brown = newBrownout(cfg.Brownout, cfg.Now)
	s.events = obs.NewEventRing(cfg.EventBuffer)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.reg.Set("devices.total", float64(cfg.Devices))
	s.reg.Set("queue.cap", float64(cfg.QueueCap))
	s.reg.Set("draining", 0)
	// Brownout gauges exist from the first scrape, not the first overload.
	s.reg.Set("brownout.level", 0)
	s.reg.Set("brownout.active", 0)
	// Declare the lifecycle latency histograms eagerly so their series
	// exist in /metrics from the first scrape, not the first job.
	for _, h := range []string{
		"job.queue_seconds", "job.run_seconds", "job.total_seconds", "job.modeled_seconds",
	} {
		s.reg.DeclareHistogram(h, nil)
	}
	s.pool = newPool(s, cfg.Devices, cfg.Machine)
	if cfg.JournalPath != "" {
		// Recover before the workers start so re-admitted jobs keep their
		// submission order, then open the journal for appending and
		// compact away the replayed history (including any torn tail).
		s.recover()
		j, err := OpenJournal(cfg.JournalPath)
		if err != nil {
			s.journalDegraded(err)
		} else {
			s.journal = j
			if err := s.journal.Rotate(s.compactRecords()); err != nil {
				s.journalDegraded(err)
			}
		}
	}
	s.pool.start(s.baseCtx)
	return s
}

// Close stops the workers and closes the journal. Queued jobs are
// abandoned in place (the journal re-admits them on restart); running
// jobs finish their current level and stop at the next boundary only if
// their own contexts are canceled, so callers wanting a hard stop should
// cancel jobs first.
func (s *Server) Close() {
	s.baseCancel()
	s.wg.Wait()
	s.journal.Close()
}

// SLO evaluates the service-level objectives now, the same snapshot
// GET /slo serves.
func (s *Server) SLO() obs.SLOSnapshot { return s.slo.Snapshot() }

// journalAppend appends one record, degrading to non-durable operation
// on the first failure: the error is logged once, the journal.degraded
// gauge flips, and the server keeps serving.
func (s *Server) journalAppend(rec Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		s.journalDegraded(err)
		return
	}
	s.reg.Add("journal.appends", 1)
	if s.journal.Appends() >= int64(s.cfg.JournalRotateEvery) {
		if err := s.journal.Rotate(s.compactRecords()); err != nil {
			s.journalDegraded(err)
		} else {
			s.reg.Add("journal.rotations", 1)
		}
	}
}

// journalDegraded records a durability failure: counted always, logged
// loudly once. The daemon stays up — losing durability must not lose
// availability.
func (s *Server) journalDegraded(err error) {
	s.reg.Add("journal.errors", 1)
	s.reg.Set("journal.degraded", 1)
	s.journalWarn.Do(func() {
		s.log.Error("journal degraded, continuing WITHOUT durability", "error", err.Error())
	})
}

// compactRecords rewrites the live job index as a minimal record
// sequence: submit(+running) for live jobs, submit+outcome for terminal
// ones. It is the rotation image of the journal.
func (s *Server) compactRecords() []Record {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	var recs []Record
	for _, j := range jobs {
		st := j.Status()
		recs = append(recs, Record{Type: RecSubmit, ID: j.ID, Seq: seqOf(j.ID), Req: j.req})
		switch st.State {
		case StateDone:
			recs = append(recs, Record{Type: RecDone, ID: j.ID, Key: j.key, Result: st.Result})
		case StateFailed:
			recs = append(recs, Record{Type: RecFailed, ID: j.ID, Error: st.Error})
		case StateCanceled:
			recs = append(recs, Record{Type: RecCanceled, ID: j.ID, Error: st.Error})
		case StateRunning:
			recs = append(recs, Record{Type: RecRunning, ID: j.ID})
		}
	}
	// Replica-held entries rotate with the journal too: they are a
	// peer's completed work, so losing them on compaction would silently
	// shrink the ring's replication factor. Entries the LRU has since
	// evicted drop out of both the image and the tracking set.
	s.mu.Lock()
	rkeys := make([]string, 0, len(s.replicaKeys))
	for k := range s.replicaKeys {
		rkeys = append(rkeys, k)
	}
	s.mu.Unlock()
	sort.Strings(rkeys)
	for _, k := range rkeys {
		c, ok := s.cache.Peek(k)
		if !ok {
			s.mu.Lock()
			delete(s.replicaKeys, k)
			s.mu.Unlock()
			continue
		}
		res := c.Result
		recs = append(recs, Record{Type: RecReplica, ID: replicaRecordID(k), Key: k, Result: &res})
	}
	// The estimator state rides every compaction so a restart after
	// rotation still replays warm service-time estimates.
	if cells := s.est.snapshot(); len(cells) > 0 {
		recs = append(recs, Record{Type: RecEstimator, ID: "estimator", Est: cells})
	}
	return recs
}

// replicaRecordID derives a journal record ID for a replica-held cache
// key; replay only needs it to be non-empty and stable per key.
func replicaRecordID(key string) string {
	if len(key) > 12 {
		key = key[:12]
	}
	return "replica-" + key
}

// watch follows a job to its terminal state: it releases the job's
// single-flight leadership, journals the outcome, and closes the job's
// observability account (lifecycle spans, SLO sample, flight-recorder
// event, outcome log line). Recovered jobs skip journaling of states
// that replay already proved.
func (s *Server) watch(j *Job) {
	select {
	case <-j.Done():
	case <-s.baseCtx.Done():
		// Shutdown: jobs abandoned in the queue never finish; their
		// journal records already mark them live for the next process.
		return
	}
	s.mu.Lock()
	if j.key != "" && s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
	st := j.Status()
	var rec Record
	switch st.State {
	case StateDone:
		rec = Record{Type: RecDone, ID: j.ID, Key: j.key, Result: st.Result}
	case StateFailed:
		rec = Record{Type: RecFailed, ID: j.ID, Error: st.Error}
	case StateCanceled:
		rec = Record{Type: RecCanceled, ID: j.ID, Error: st.Error}
	}
	if rec.Type != "" && s.journal != nil {
		jt0 := time.Now()
		s.journalAppend(rec)
		j.addLifeSpan(lifeJournal, jt0, time.Now(), map[string]any{"record": rec.Type})
		s.event(obs.EvJournalAppend, j, -1, rec.Type)
	}
	// Freshly computed results fan out to the replication hook. Cache
	// hits, coalesced followers, and journal replays never fire it:
	// their results either already replicated when first computed or
	// are themselves replicas.
	if st.State == StateDone && st.Result != nil && j.key != "" &&
		!j.recovered && !j.cached && !j.coalesced {
		if fn := s.resultHook(); fn != nil {
			fn(j.key, st.Result)
		}
	}
	s.observeTerminal(j)
}

// Metrics returns the server's counter registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// journalEstimator appends the estimator's current cells so a restarted
// daemon replays them and deadline admission restarts warm. The last
// estimator record in the journal wins at replay.
func (s *Server) journalEstimator() {
	if s.journal == nil {
		return
	}
	cells := s.est.snapshot()
	if len(cells) == 0 {
		return
	}
	s.journalAppend(Record{Type: RecEstimator, ID: "estimator", Est: cells})
}

// SetClusterStatus installs the ring tier's status snapshot callback;
// nil uninstalls it. The snapshot surfaces on /healthz,
// /admin/status(.json), and as the gpmetisd_cluster_* metric series.
func (s *Server) SetClusterStatus(fn func() *ClusterStatus) {
	s.clusterMu.Lock()
	s.clusterFn = fn
	s.clusterMu.Unlock()
}

// clusterStatus snapshots the ring tier, nil on a standalone daemon.
func (s *Server) clusterStatus() *ClusterStatus {
	s.clusterMu.Lock()
	fn := s.clusterFn
	s.clusterMu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// SetResultHook installs the cluster tier's fresh-result callback; nil
// uninstalls it. The hook runs on the job's watcher goroutine, so it
// must hand off (not perform) slow work.
func (s *Server) SetResultHook(fn func(key string, res *JobResult)) {
	s.resultMu.Lock()
	s.resultFn = fn
	s.resultMu.Unlock()
}

// resultHook returns the installed fresh-result callback, nil when none.
func (s *Server) resultHook() func(key string, res *JobResult) {
	s.resultMu.Lock()
	defer s.resultMu.Unlock()
	return s.resultFn
}

// SetPromExtra installs a callback contributing extra samples and
// labeled histograms to the Prometheus exposition; nil uninstalls it.
// The cluster tier uses it to export its per-peer × per-RPC latency
// and error series without the server importing the cluster package.
func (s *Server) SetPromExtra(fn func() ([]obs.PromSample, []obs.PromHistogram)) {
	s.promMu.Lock()
	s.promFn = fn
	s.promMu.Unlock()
}

// promExtra invokes the installed exposition callback, empty when none.
func (s *Server) promExtra() ([]obs.PromSample, []obs.PromHistogram) {
	s.promMu.Lock()
	fn := s.promFn
	s.promMu.Unlock()
	if fn == nil {
		return nil, nil
	}
	return fn()
}

// SetNodeID stamps this server with its cluster identity. From then on
// every job-scoped log line, every flight-recorder event, and the
// build_info metric carry node_id, so fleet-merged streams stay
// attributable. Standalone daemons never call it.
func (s *Server) SetNodeID(id string) { s.nodeIDv.Store(id) }

// nodeID returns the cluster identity, "" on a standalone daemon.
func (s *Server) nodeID() string {
	if v := s.nodeIDv.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// NodeID is the exported read of the cluster identity.
func (s *Server) NodeID() string { return s.nodeID() }

// KeyForRequest resolves req exactly as Submit would and returns its
// content-addressed cache key ("" for NoCache submissions). It is the
// digest the cluster tier routes on: routing and caching share one
// resolution path, so they can never disagree about a request's
// identity.
func KeyForRequest(req *SubmitRequest) (string, error) {
	j, err := resolveRequest(req)
	if err != nil {
		return "", err
	}
	return j.key, nil
}

// PeekCached returns a copy of the cached result under a content key
// without touching hit/miss accounting or recency — the read behind the
// cluster tier's GET /internal/cache/{digest}.
func (s *Server) PeekCached(key string) (*JobResult, bool) {
	c, ok := s.cache.Peek(key)
	if !ok {
		return nil, false
	}
	res := c.Result // shallow copy; Part is shared and immutable
	return &res, true
}

// StoreReplicated stores a peer's completed result under its content key
// — the write behind the cluster tier's PUT /internal/cache/{digest}
// (replication, hinted-handoff drains, anti-entropy repair). It bypasses
// hit/miss accounting, journals a replica record so the entry survives a
// restart, and reports whether the entry was newly stored: false means
// the cache already held it (or caching is disabled), which is how the
// receiver dedups redundant pushes.
func (s *Server) StoreReplicated(key string, res *JobResult) bool {
	if key == "" || res == nil || s.cfg.CacheCap < 1 {
		return false
	}
	if _, ok := s.cache.Peek(key); ok {
		return false
	}
	s.cache.Put(key, &CachedResult{Result: *res})
	s.mu.Lock()
	s.replicaKeys[key] = true
	s.mu.Unlock()
	s.reg.Add("cache.replicated", 1)
	r := *res
	s.journalAppend(Record{Type: RecReplica, ID: replicaRecordID(key), Key: key, Result: &r})
	return true
}

// CachedKeys returns the content keys of every cached result, the scan
// behind anti-entropy summaries and the decommission push.
func (s *Server) CachedKeys() []string { return s.cache.Keys() }

// RecordEvent appends one server-scoped flight-recorder event on behalf
// of a sibling tier (the cluster router's forwards and failovers).
func (s *Server) RecordEvent(typ, detail string) {
	s.event(typ, nil, -1, detail)
}

// RecordTracedEvent is RecordEvent for events belonging to a cluster
// background round: the round's trace id rides into the flight
// recorder, linking the event to the round's spans at
// GET /internal/trace/{trace_id}.
func (s *Server) RecordTracedEvent(typ, trace, detail string) {
	s.tracedEvent(typ, trace, detail)
}

// JobByTrace finds the job owning a trace id — the lookup behind the
// cluster tier's GET /internal/trace/{trace_id} for forwarded jobs.
// The scan is linear over the bounded job index; trace fetches are
// rare (one per stitched trace render).
func (s *Server) JobByTrace(traceID string) (*Job, bool) {
	if traceID == "" {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.order) - 1; i >= 0; i-- {
		if j, ok := s.jobs[s.order[i]]; ok && j.TraceID() == traceID {
			return j, true
		}
	}
	return nil, false
}

// Submit validates req, consults the result cache and the in-flight
// index, and either completes the job instantly (hit), attaches it to an
// identical in-flight job (single-flight coalescing), or admits it to
// the weighted-fair queue. It rejects with ErrQueueFull (wrapped in an
// *overloadError carrying a dynamic Retry-After) at capacity, with
// overload errors coded tenant_quota / rate_limited /
// deadline_unmeetable when admission control refuses the tenant or the
// deadline, with ErrDraining during graceful shutdown, and with a
// *requestError for invalid submissions.
func (s *Server) Submit(req *SubmitRequest) (*Job, error) {
	if s.draining.Load() {
		s.reg.Add("jobs.rejected_draining", 1)
		return nil, ErrDraining
	}
	t0 := time.Now()
	// Brownout level 2: new work runs with the degrade ladder armed. The
	// flip happens on the wire request before resolution so the cache
	// key, the journal record, and the run all see the same options.
	autoDegraded := false
	if !req.Degrade && s.brown.Level() >= brownoutDegrade {
		req.Degrade = true
		autoDegraded = true
	}
	job, err := resolveRequest(req)
	if err != nil {
		s.reg.Add("jobs.bad_request", 1)
		return nil, err
	}
	job.submittedAt = t0
	if req.ForwardedBy != "" {
		// The ring forward that delivered this job appears in its own
		// trace: a zero-width wall span carrying the α+βn modeled cost of
		// the network hop. The entry node's trace context rides the
		// forward, so this job joins the caller's trace instead of
		// minting its own, and its spans parent under the caller's
		// cluster-forward span when the entry node stitches.
		attrs := map[string]any{
			"from": req.ForwardedBy, "net_modeled_seconds": req.ForwardNetSeconds,
		}
		if req.ForwardTraceID != "" {
			job.traceID = req.ForwardTraceID
			if req.ForwardSpanID != 0 {
				attrs["parent"] = req.ForwardSpanID
			}
		}
		job.addLifeSpan(lifeClusterForward, t0, t0, attrs)
	}
	job.tenant = s.tenants.state(req.Tenant)
	job.autoDegraded = autoDegraded
	if autoDegraded {
		s.reg.Add("jobs.auto_degraded", 1)
	}
	job.tenant.addSubmitted()
	s.reg.Add("jobs.submitted", 1)

	// Token-bucket rate limit: the cheapest check runs first, before any
	// cache or queue state is touched.
	if ok, wait := job.tenant.allow(s.cfg.Now()); !ok {
		job.tenant.addRejected()
		s.reg.Add("jobs.rejected_ratelimit", 1)
		s.event(obs.EvRejected, nil, -1, "rate limited: tenant "+job.tenant.name)
		s.log.Warn("job rejected: tenant rate limited", "tenant", job.tenant.name)
		retry := int(math.Ceil(wait.Seconds()))
		if retry < 1 {
			retry = 1
		}
		return nil, &overloadError{
			code:       CodeRateLimited,
			msg:        fmt.Sprintf("tenant %q rate limited (%g/s, burst %g)", job.tenant.name, job.tenant.cfg.RatePerSec, job.tenant.cfg.Burst),
			retryAfter: retry,
		}
	}

	deadline := time.Duration(req.DeadlineMs) * time.Millisecond
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if deadline > 0 {
		job.ctx, job.cancel = context.WithTimeout(s.baseCtx, deadline)
	} else {
		job.ctx, job.cancel = context.WithCancel(s.baseCtx)
	}

	// The cache is its own hit/miss bookkeeper; /metrics merges its
	// counts into the registry snapshot.
	if job.key != "" {
		lookT0 := time.Now()
		hit, ok := s.cache.Get(job.key)
		lookT1 := time.Now()
		job.addLifeSpan(lifeCacheLook, lookT0, lookT1, map[string]any{"hit": ok})
		if ok {
			s.register(job)
			job.addLifeSpan(lifeAdmit, t0, lookT1, admitAttrs(job, "cache-hit"))
			s.event(obs.EvAdmit, job, -1, "cache hit")
			s.event(obs.EvCacheHit, job, -1, "")
			s.jlog(job).Info("job admitted", "outcome", "cache-hit", "k", job.k)
			s.journalSubmit(job)
			job.finishCached(hit)
			s.spawnWatch(job)
			return job, nil
		}
	}

	// Single-flight: an identical cacheable request already in flight
	// makes this job a follower — it adopts the leader's result instead
	// of occupying a second device slot. Leadership is claimed before
	// admission so two racing identical submits can never both run.
	claimed := false
	if job.key != "" {
		s.mu.Lock()
		if leader, ok := s.inflight[job.key]; ok {
			s.registerLocked(job)
			job.coalesced = true
			s.mu.Unlock()
			s.reg.Add("jobs.coalesced", 1)
			job.addLifeSpan(lifeAdmit, t0, time.Now(), admitAttrs(job, "coalesced"))
			s.event(obs.EvAdmit, job, -1, "coalesced behind "+leader.ID)
			s.event(obs.EvCoalesced, job, -1, "leader "+leader.ID)
			s.jlog(job).Info("job admitted", "outcome", "coalesced", "leader", leader.ID)
			s.journalSubmit(job)
			go s.watch(job)
			go s.follow(job, leader)
			return job, nil
		}
		s.inflight[job.key] = job
		claimed = true
		s.mu.Unlock()
	}

	// The ID must exist before a worker can pop the job (its running
	// journal record carries it; the queue handoff orders the write),
	// but the job is indexed only after the queue accepted it, so a
	// rejected submission leaves no trace beyond the counter and a
	// burned sequence number.
	s.mu.Lock()
	s.assignIDLocked(job)
	s.mu.Unlock()

	unclaim := func() {
		if claimed {
			s.mu.Lock()
			if s.inflight[job.key] == job {
				delete(s.inflight, job.key)
			}
			s.mu.Unlock()
		}
	}

	// Deadline-aware admission: once the estimator has evidence for this
	// (algorithm, size-bucket) cell, a job whose deadline cannot cover
	// the queued work ahead of it plus its own service time is rejected
	// now, not failed after burning a queue slot. Cold cells admit
	// optimistically.
	est := s.est.costs(job.algo, job.g.NumVertices())
	job.estWall, job.estModeled = est.wall, est.modeled
	if deadline > 0 {
		if known, ok := s.est.lookup(job.algo, job.g.NumVertices()); ok {
			depth, queuedWall := s.fq.stats()
			need := queuedWall/float64(s.cfg.Devices) + known.wall
			if need > deadline.Seconds() {
				unclaim()
				job.tenant.addRejected()
				s.reg.Add("jobs.rejected_deadline", 1)
				detail := fmt.Sprintf("deadline unmeetable: need ~%.3fs (queue depth %d), deadline %s", need, depth, deadline)
				s.event(obs.EvRejected, job, -1, detail)
				s.jlog(job).Warn("job rejected: deadline unmeetable",
					"estimated_seconds", need, "deadline", deadline.String(), "queue_depth", depth)
				job.cancel()
				return nil, &overloadError{
					code:       CodeDeadlineUnmeetable,
					msg:        detail,
					retryAfter: s.retryAfterSeconds(),
				}
			}
		}
	}

	job.queuedAt = time.Now()
	if err := s.fq.Push(job, true); err != nil {
		unclaim()
		job.tenant.addRejected()
		var qe *quotaError
		if errors.As(err, &qe) {
			s.reg.Add("jobs.rejected_quota", 1)
			s.event(obs.EvRejected, job, -1, err.Error())
			s.jlog(job).Warn("job rejected: tenant over quota",
				"tenant", job.tenant.name, "max_queued", job.tenant.cfg.MaxQueued)
			job.cancel()
			return nil, &overloadError{
				code:       CodeTenantQuota,
				msg:        err.Error(),
				retryAfter: s.retryAfterSeconds(),
				wrapped:    err,
			}
		}
		s.reg.Add("jobs.rejected", 1)
		s.event(obs.EvRejected, job, -1, "queue full")
		s.jlog(job).Warn("job rejected: queue full", "queue_cap", s.cfg.QueueCap)
		job.cancel()
		return nil, &overloadError{
			code:       CodeOverloaded,
			msg:        fmt.Sprintf("%v: capacity %d", ErrQueueFull, s.cfg.QueueCap),
			retryAfter: s.retryAfterSeconds(),
			wrapped:    ErrQueueFull,
		}
	}
	s.reg.Add("queue.depth", 1)
	s.mu.Lock()
	s.indexLocked(job)
	s.mu.Unlock()
	job.addLifeSpan(lifeAdmit, t0, time.Now(), admitAttrs(job, "queued"))
	s.event(obs.EvAdmit, job, -1, "queued")
	s.jlog(job).Info("job admitted", "outcome", "queued", "k", job.k,
		"vertices", job.g.NumVertices(), "queue_depth", s.fq.Len(), "tenant", job.tenant.name)
	s.journalSubmit(job)
	s.spawnWatch(job)
	s.watchQueued(job)
	s.brownoutTick()
	return job, nil
}

// retryAfterSeconds derives the Retry-After hint from live load: the
// wall-second estimate of all queued work divided across the device
// pool, floored at 1s and capped at 10 minutes.
func (s *Server) retryAfterSeconds() int {
	_, queuedWall := s.fq.stats()
	secs := int(math.Ceil(queuedWall / float64(s.cfg.Devices)))
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return secs
}

// overloadError is an admission-control rejection the HTTP layer maps to
// 429 with a machine-readable code and a load-derived Retry-After.
// Queue-full rejections wrap ErrQueueFull so errors.Is keeps working for
// direct API callers.
type overloadError struct {
	code       string
	msg        string
	retryAfter int
	wrapped    error
}

func (e *overloadError) Error() string { return e.msg }
func (e *overloadError) Unwrap() error { return e.wrapped }

// OverloadCode returns the wire code of an admission-control rejection
// ("overloaded", "tenant_quota", "rate_limited", "deadline_unmeetable"),
// or "" when err is not an overload rejection.
func OverloadCode(err error) string {
	var oe *overloadError
	if errors.As(err, &oe) {
		return oe.code
	}
	return ""
}

// watchQueued enforces a queued job's deadline eagerly: if the job's
// context dies while it still sits in the fair queue, the job is pulled
// out and finished immediately — the queue slot frees at expiry time,
// not at the next worker pop. Shutdown is the exception: queued jobs are
// abandoned in place so the journal re-admits them on restart.
func (s *Server) watchQueued(j *Job) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		select {
		case <-j.Done():
		case <-j.ctx.Done():
			if s.baseCtx.Err() != nil {
				return // shutting down; leave the job queued for replay
			}
			if !s.fq.Remove(j) {
				return // a worker already popped it and owns the outcome
			}
			s.reg.Add("queue.depth", -1)
			now := time.Now()
			wait := now.Sub(j.queuedAt).Seconds()
			s.reg.Observe("job.queue_seconds", wait)
			j.addLifeSpan(lifeQueueWait, j.queuedAt, now, map[string]any{"expired": true})
			s.pool.finishDead(j, j.ctx.Err())
			s.event(obs.EvQueueExpired, j, -1, fmt.Sprintf("after %.3fs queued", wait))
			s.jlog(j).Info("queued job expired eagerly", "wait_seconds", wait)
		}
	}()
}

// brownoutTick re-evaluates the overload ladder and applies its policy:
// level transitions emit paired brownout_begin/brownout_end events, and
// any level above off runs a shed pass over the queue. Ticks run at
// every admission and every dequeue; brownMu serializes them so events
// pair up and victims are shed exactly once.
func (s *Server) brownoutTick() {
	if s.brown.disabled {
		return
	}
	s.brownMu.Lock()
	defer s.brownMu.Unlock()
	prev, level := s.brown.evaluate()
	s.reg.Set("brownout.level", float64(level))
	if level > brownoutOff {
		s.reg.Set("brownout.active", 1)
	} else {
		s.reg.Set("brownout.active", 0)
	}
	switch {
	case prev == brownoutOff && level > brownoutOff:
		s.reg.Add("brownout.engaged", 1)
		s.event(obs.EvBrownoutBegin, nil, -1, fmt.Sprintf("level %d", level))
		s.log.Warn("brownout engaged: queue-wait burn over budget", "level", level)
	case prev > brownoutOff && level == brownoutOff:
		s.event(obs.EvBrownoutEnd, nil, -1, "")
		s.log.Info("brownout ended: queue-wait burn back under budget")
	case prev != level:
		s.log.Info("brownout level changed", "from", prev, "to", level)
	}
	if level >= brownoutShed {
		s.shedOverShare()
	}
}

// shedOverShare shears queued work of tenants holding more than their
// weighted fair share of the queue (see fairQueue.shedOverShare) and
// fails the victims with a retryable shed error. In-quota tenants are
// never shed — the ladder escalates to degrade instead.
func (s *Server) shedOverShare() {
	victims := s.fq.shedOverShare()
	for _, j := range victims {
		s.reg.Add("queue.depth", -1)
		s.reg.Add("jobs.shed", 1)
		s.reg.Add("jobs.failed", 1)
		j.tenant.addShed()
		j.finish(StateFailed, nil, "shed: brownout over-share shedding, resubmit later")
		s.event(obs.EvShed, j, -1, "tenant "+j.tenant.name)
		s.jlog(j).Warn("queued job shed by brownout", "tenant", j.tenant.name)
	}
}

// admitAttrs builds the admit span's trace args.
func admitAttrs(j *Job, outcome string) map[string]any {
	return map[string]any{"outcome": outcome, "k": j.k, "vertices": j.g.NumVertices()}
}

// spawnWatch and spawnFollow run their goroutines under the server
// WaitGroup so Close drains them before closing the journal.
func (s *Server) spawnWatch(j *Job) {
	s.wg.Add(1)
	go func() { defer s.wg.Done(); s.watch(j) }()
}

func (s *Server) spawnFollow(j, leader *Job) {
	s.wg.Add(1)
	go func() { defer s.wg.Done(); s.follow(j, leader) }()
}

// follow resolves a single-flight follower against its leader: adopt
// the result on success, otherwise re-follow or become the new leader
// and run for real. The follower's own context still cancels it.
func (s *Server) follow(j, leader *Job) {
	for {
		select {
		case <-j.ctx.Done():
			if errors.Is(j.ctx.Err(), context.DeadlineExceeded) {
				s.reg.Add("jobs.failed", 1)
				j.finish(StateFailed, nil, "deadline exceeded while coalesced")
			} else {
				s.reg.Add("jobs.canceled", 1)
				j.finish(StateCanceled, nil, "canceled while coalesced")
			}
			return
		case <-leader.Done():
		}
		if st := leader.Status(); st.State == StateDone && st.Result != nil {
			s.reg.Add("jobs.completed", 1)
			j.finishCoalesced(st.Result, leader.Profile())
			return
		}
		// The leader failed or was canceled; its outcome must not bind
		// the follower. Check the cache (another leader may have landed),
		// then re-follow or take over.
		if hit, ok := s.cache.Get(j.key); ok {
			j.finishCached(hit)
			return
		}
		s.mu.Lock()
		if l2, ok := s.inflight[j.key]; ok && l2 != j {
			leader = l2
			s.mu.Unlock()
			continue
		}
		s.inflight[j.key] = j
		s.mu.Unlock()
		est := s.est.costs(j.algo, j.g.NumVertices())
		j.estWall, j.estModeled = est.wall, est.modeled
		j.queuedAt = time.Now()
		// The follower was already admitted once; quota does not apply to
		// its takeover — accepted jobs cannot be lost to admission control.
		if err := s.fq.Push(j, false); err != nil {
			s.mu.Lock()
			if s.inflight[j.key] == j {
				delete(s.inflight, j.key)
			}
			s.mu.Unlock()
			s.reg.Add("jobs.failed", 1)
			j.finish(StateFailed, nil, "queue full after coalesced leader aborted")
			return
		}
		s.reg.Add("queue.depth", 1)
		s.watchQueued(j)
		return
	}
}

// journalSubmit appends a job's admission record.
func (s *Server) journalSubmit(j *Job) {
	s.journalAppend(Record{Type: RecSubmit, ID: j.ID, Seq: seqOf(j.ID), Req: j.req})
}

// seqOf extracts the numeric sequence from a job ID: the trailing run
// of digits, so prefixes carrying digits of their own ("n2-j000042")
// do not pollute the sequence.
func seqOf(id string) int {
	n, mul := 0, 1
	for i := len(id) - 1; i >= 0; i-- {
		c := id[i]
		if c < '0' || c > '9' {
			break
		}
		n += int(c-'0') * mul
		mul *= 10
	}
	return n
}

// register assigns the job its ID and indexes it, forgetting the oldest
// terminal jobs beyond the retention cap.
func (s *Server) register(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registerLocked(j)
}

func (s *Server) registerLocked(j *Job) {
	s.assignIDLocked(j)
	s.indexLocked(j)
}

// indexLocked inserts an already-named job into the index and applies
// the retention cap.
func (s *Server) indexLocked(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	for len(s.order) > s.cfg.MaxJobs {
		old := s.jobs[s.order[0]]
		if old != nil {
			st := old.Status().State
			if st == StateQueued || st == StateRunning {
				break // never forget a live job
			}
			delete(s.jobs, s.order[0])
		}
		s.order = s.order[1:]
	}
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Handler returns the HTTP API:
//
//	POST   /jobs            submit (202 queued, 200 cache hit, 429 full)
//	GET    /jobs            list job statuses, oldest first
//	GET    /jobs/{id}       one job's status (result when done)
//	DELETE /jobs/{id}       cancel
//	GET    /jobs/{id}/trace Chrome trace_event JSON of the job's run
//	GET    /jobs/{id}/profile kernel-level roofline profile (profiled jobs)
//	GET    /metrics         Prometheus text exposition
//	GET    /metrics.json    counter registry snapshot as flat JSON
//	GET    /healthz         liveness + occupancy + SLO posture + build info
//	GET    /slo             full SLO evaluation (burn rates, windows)
//	GET    /admin/status    live ops view (self-refreshing HTML)
//	GET    /admin/status.json  the ops view's data, for gpmetis -top
//	GET    /admin/events    flight recorder: recent lifecycle events
//	GET    /admin/devices   device-pool quarantine states
//	POST   /admin/devices/{slot}/reinstate  force a slot back into service
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/profile", s.handleProfile)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /slo", s.handleSLO)
	mux.HandleFunc("GET /admin/status", s.handleStatusHTML)
	mux.HandleFunc("GET /admin/status.json", s.handleStatusJSON)
	mux.HandleFunc("GET /admin/events", s.handleEvents)
	mux.HandleFunc("GET /admin/devices", s.handleDevices)
	mux.HandleFunc("POST /admin/devices/{slot}/reinstate", s.handleReinstate)
	return mux
}

func (s *Server) handleDevices(w http.ResponseWriter, _ *http.Request) {
	out := make([]DeviceStatus, len(s.pool.health))
	for i, h := range s.pool.health {
		out[i] = h.status(i)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReinstate(w http.ResponseWriter, r *http.Request) {
	slot, err := strconv.Atoi(r.PathValue("slot"))
	if err != nil || slot < 0 || slot >= len(s.pool.health) {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such device slot")
		return
	}
	if s.pool.health[slot].reinstate() {
		s.reg.Add("devices.quarantined", -1)
		s.reg.Add("quarantine.reinstated", 1)
		s.event(obs.EvReinstate, nil, slot, "forced via admin API")
		s.log.Info("device slot force-reinstated via admin API", "slot", slot)
	}
	writeJSON(w, http.StatusOK, s.pool.health[slot].status(slot))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 256<<20)
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	// A forwarded submission carries its trace context both in the body
	// and in the X-Gpmetis-Trace header; the header wins a tie-break
	// only when the body fields are absent (an older forwarder).
	if req.ForwardedBy != "" && req.ForwardTraceID == "" {
		if tc, ok := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader)); ok {
			req.ForwardTraceID = tc.TraceID
			req.ForwardSpanID = tc.SpanID
			req.ForwardWallUnixNano = tc.WallUnixNano
		}
	}
	job, err := s.Submit(&req)
	var oe *overloadError
	switch {
	case err == nil:
		st := job.Status()
		code := http.StatusAccepted
		if st.State == StateDone {
			code = http.StatusOK // cache hit: born done
		}
		writeJSON(w, code, st)
	case errors.As(err, &oe):
		// Every overload-class rejection (queue full, tenant quota, rate
		// limit, unmeetable deadline) carries a Retry-After derived from
		// live queue depth × estimated service time, not a constant.
		w.Header().Set("Retry-After", strconv.Itoa(oe.retryAfter))
		writeError(w, http.StatusTooManyRequests, oe.code, oe.msg)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, CodeDraining, err.Error())
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status()
		st.Result = nil // listing stays light; fetch one job for the vector
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.Job(r.PathValue("id")); ok {
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	writeError(w, http.StatusNotFound, CodeNotFound, "no such job")
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

// handleTrace serves the job's merged timeline: wall-clock service
// lifecycle spans plus, once the run started, the modeled-clock
// partition trace parented under the run span. A queued job already has
// a trace (its admission spans); the document grows as the job moves.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := writeJobTrace(w, j); err != nil {
		// Headers are gone; the truncated body is the best signal left.
		return
	}
}

// cacheExtra derives the cache-layer metric values merged into both
// metrics expositions.
func (s *Server) cacheExtra() map[string]float64 {
	hits, misses, evicted := s.cache.Stats()
	extra := map[string]float64{
		"cache.hits":     float64(hits),
		"cache.misses":   float64(misses),
		"cache.evicted":  float64(evicted),
		"cache.entries":  float64(s.cache.Len()),
		"uptime.seconds": time.Since(s.start).Seconds(),
	}
	var rate float64
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	extra["cache.hit_rate"] = rate
	return extra
}

// handleMetrics serves the Prometheus text exposition: every registry
// counter and histogram under the gpmetisd_ prefix, plus build info,
// cache and uptime gauges, and the per-slot utilization/quarantine
// series. The JSON form lives at /metrics.json.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var extra []obs.PromSample
	buildLabels := []obs.Label{
		{Key: "version", Value: Version},
		{Key: "go_version", Value: runtime.Version()},
	}
	if id := s.nodeID(); id != "" {
		// The node label is what lets fleet dashboards join build_info
		// across a ring scrape.
		buildLabels = append(buildLabels, obs.Label{Key: "node", Value: id})
	}
	extra = append(extra, obs.PromSample{
		Name:   "build_info",
		Labels: buildLabels,
		Value:  1,
		Help:   "Build metadata; the value is always 1.",
	})
	ce := s.cacheExtra()
	for _, name := range []string{
		"cache.hits", "cache.misses", "cache.evicted", "cache.entries",
		"cache.hit_rate", "uptime.seconds",
	} {
		extra = append(extra, obs.PromSample{Name: name, Value: ce[name]})
	}
	slo := s.slo.Snapshot()
	extra = append(extra,
		obs.PromSample{Name: "slo.latency_threshold_seconds", Value: slo.LatencyThresholdSeconds,
			Help: "Latency objective threshold in seconds."},
		obs.PromSample{Name: "slo.latency_target", Value: slo.LatencyTarget},
		obs.PromSample{Name: "slo.availability_target", Value: slo.AvailabilityTarget},
		obs.PromSample{Name: "slo.latency_burn_fast", Value: slo.Fast.LatencyBurn,
			Help: "Latency burn rate over the fast window (>1 consumes budget)."},
		obs.PromSample{Name: "slo.latency_burn_slow", Value: slo.Slow.LatencyBurn},
		obs.PromSample{Name: "slo.availability_burn_fast", Value: slo.Fast.AvailabilityBurn,
			Help: "Availability burn rate over the fast window (>1 consumes budget)."},
		obs.PromSample{Name: "slo.availability_burn_slow", Value: slo.Slow.AvailabilityBurn},
		obs.PromSample{Name: "slo.window_jobs_fast", Value: float64(slo.Fast.Jobs)},
		obs.PromSample{Name: "slo.window_jobs_slow", Value: float64(slo.Slow.Jobs)},
		obs.PromSample{Name: "slo.status", Value: obs.StatusValue(slo.Status),
			Help: "Multi-window burn verdict: 0 ok, 1 warn, 2 breach."},
	)
	busy, jobs := s.pool.slotStats()
	for slot := range busy {
		extra = append(extra, obs.PromSample{
			Name:   "slot_busy_seconds",
			Labels: []obs.Label{{Key: "slot", Value: strconv.Itoa(slot)}},
			Value:  busy[slot],
		})
	}
	for slot := range jobs {
		extra = append(extra, obs.PromSample{
			Name:   "slot_jobs",
			Labels: []obs.Label{{Key: "slot", Value: strconv.Itoa(slot)}},
			Value:  float64(jobs[slot]),
		})
	}
	for slot, h := range s.pool.health {
		var q float64
		if h.quarantined() {
			q = 1
		}
		extra = append(extra, obs.PromSample{
			Name:   "slot_quarantined",
			Labels: []obs.Label{{Key: "slot", Value: strconv.Itoa(slot)}},
			Value:  q,
		})
	}
	extra = append(extra, s.tenantSamples()...)
	extra = append(extra, s.clusterSamples()...)
	hookSamples, hookHists := s.promExtra()
	extra = append(extra, hookSamples...)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheusFull(w, s.reg, "gpmetisd_", extra, hookHists)
}

// clusterSamples renders the gpmetisd_cluster_* series from the ring
// tier's snapshot; empty on a standalone daemon.
func (s *Server) clusterSamples() []obs.PromSample {
	cs := s.clusterStatus()
	if cs == nil {
		return nil
	}
	out := []obs.PromSample{
		{Name: "cluster.node_id", Value: float64(cs.NodeID),
			Help: "This node's ring identity."},
		{Name: "cluster.ring_size", Value: float64(len(cs.Peers)),
			Help: "Ring member count from peers.json."},
		{Name: "cluster.forwards", Value: float64(cs.Forwards),
			Help: "Submissions this node forwarded to their ring owner."},
		{Name: "cluster.peek_hits", Value: float64(cs.PeekHits),
			Help: "Cross-node cache peeks answered by a remote cache."},
		{Name: "cluster.peek_misses", Value: float64(cs.PeekMisses),
			Help: "Cross-node cache peeks the remote cache could not answer."},
		{Name: "cluster.failovers_total", Value: float64(cs.Failovers),
			Help: "Submissions routed to a ring successor because the owner was down."},
		{Name: "cluster.net_modeled_seconds", Value: cs.NetModeledSeconds,
			Help: "Modeled α+βn network seconds charged to cluster traffic."},
		{Name: "cluster.net_messages", Value: float64(cs.NetMessages),
			Help: "Inter-node messages charged against the modeled network."},
		{Name: "cluster.replicas", Value: float64(cs.Replicas),
			Help: "Configured replication factor (1 = replication off)."},
		{Name: "cluster.replica_pushes", Value: float64(cs.ReplicaPushes),
			Help: "Completed results this node pushed to ring replicas."},
		{Name: "cluster.replica_stores", Value: float64(cs.ReplicaStores),
			Help: "Replica entries this node stored on behalf of peers."},
		{Name: "cluster.replica_hits", Value: float64(cs.ReplicaHits),
			Help: "Failover reads answered from a replica instead of recomputed."},
		{Name: "cluster.handoff_hinted", Value: float64(cs.HandoffHinted),
			Help: "Handoff hints recorded against quarantined replicas."},
		{Name: "cluster.handoff_drained", Value: float64(cs.HandoffDrained),
			Help: "Handoff hints delivered after the peer reinstated."},
		{Name: "cluster.handoff_hints_outstanding", Value: float64(cs.HintsOutstanding),
			Help: "Handoff hints currently awaiting delivery."},
		{Name: "cluster.repair_pushed", Value: float64(cs.RepairPushed),
			Help: "Cache entries pushed to peers by anti-entropy repair."},
		{Name: "cluster.repair_pulled", Value: float64(cs.RepairPulled),
			Help: "Cache entries pulled from peers by anti-entropy repair and read-repair."},
	}
	first := true
	for _, p := range cs.Peers {
		if p.Self {
			continue // a node probing itself is not a signal
		}
		up := 0.0
		if p.State == "up" {
			up = 1
		}
		smp := obs.PromSample{
			Name:   "cluster.node_up",
			Labels: []obs.Label{{Key: "node", Value: strconv.Itoa(p.ID)}},
			Value:  up,
		}
		if first {
			smp.Help = "Per-peer health as seen by this node (1 up, 0 down)."
			first = false
		}
		out = append(out, smp)
	}
	return out
}

// tenantSamples renders the per-tenant admission series, grouped by
// metric name so each family shares one HELP/TYPE header.
func (s *Server) tenantSamples() []obs.PromSample {
	tenants := s.tenants.snapshot(s.fq.queuedOf)
	var out []obs.PromSample
	families := []struct {
		name  string
		help  string
		value func(TenantStatus) float64
	}{
		{"tenant.weight", "Configured fair-share weight.", func(t TenantStatus) float64 { return t.Weight }},
		{"tenant.queued", "Jobs currently held in the fair queue.", func(t TenantStatus) float64 { return float64(t.Queued) }},
		{"tenant.submitted", "Jobs ever submitted.", func(t TenantStatus) float64 { return float64(t.Submitted) }},
		{"tenant.completed", "Jobs that reached done.", func(t TenantStatus) float64 { return float64(t.Completed) }},
		{"tenant.shed", "Queued jobs shed by the brownout ladder.", func(t TenantStatus) float64 { return float64(t.Shed) }},
		{"tenant.rejected", "Submissions refused by admission control.", func(t TenantStatus) float64 { return float64(t.Rejected) }},
		{"tenant.served_modeled_seconds", "Modeled GPU seconds served — the weighted-fairness currency.", func(t TenantStatus) float64 { return t.ServedModeledSeconds }},
	}
	for _, f := range families {
		for i, t := range tenants {
			smp := obs.PromSample{
				Name:   f.name,
				Labels: []obs.Label{{Key: "tenant", Value: t.Name}},
				Value:  f.value(t),
			}
			if i == 0 {
				smp.Help = f.help
			}
			out = append(out, smp)
		}
	}
	return out
}

// handleMetricsJSON serves the flat JSON registry snapshot that /metrics
// carried before the Prometheus exposition took that path over.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	obs.WriteRegistryJSON(w, s.reg, s.cacheExtra())
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	}
	p := j.Profile()
	if p == nil {
		writeError(w, http.StatusNotFound, CodeNotFound,
			`no kernel profile for this job (submit with "profile": true and wait for completion)`)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	h := HealthResponse{
		Status:         status,
		Devices:        s.cfg.Devices,
		QueueDepth:     s.fq.Len(),
		QueueCap:       s.cfg.QueueCap,
		Jobs:           n,
		Version:        Version,
		GoVersion:      runtime.Version(),
		UptimeSeconds:  time.Since(s.start).Seconds(),
		ModeledSeconds: s.reg.Get("modeled.seconds"),
		SLOStatus:      s.slo.Snapshot().Status,
		EventsTotal:    s.events.Total(),
		BrownoutLevel:  s.brown.Level(),
	}
	if lt := s.events.LastTime(); !lt.IsZero() {
		h.LastEvent = lt.UTC().Format(time.RFC3339Nano)
	}
	h.Cluster = s.clusterStatus()
	writeJSON(w, http.StatusOK, h)
}

// handleSLO serves the full SLO evaluation: objectives, both burn
// windows, and the multi-window verdict.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.Snapshot())
}

// handleEvents serves the flight recorder's retained tail, oldest first.
func (s *Server) handleEvents(w http.ResponseWriter, _ *http.Request) {
	evs := s.events.Snapshot()
	if evs == nil {
		evs = []obs.Event{}
	}
	total := s.events.Total()
	writeJSON(w, http.StatusOK, EventsResponse{
		Total:   total,
		Dropped: total - int64(len(evs)),
		Events:  evs,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, apiCode, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg, Code: apiCode})
}
