package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gpmetis"
	"gpmetis/internal/obs"
)

// Config sizes the serving subsystem. Zero values take the defaults
// noted per field.
type Config struct {
	// Devices is the scheduler pool size: how many jobs run concurrently,
	// each on a private clone of the machine model (default 2).
	Devices int
	// QueueCap bounds the job queue; submissions beyond it are rejected
	// with ErrQueueFull (default 64).
	QueueCap int
	// CacheCap bounds the result cache in entries; < 0 disables caching
	// (default 128).
	CacheCap int
	// Machine is the base machine model each device slot clones; nil
	// means gpmetis.DefaultMachine().
	Machine *gpmetis.Machine
	// DefaultDeadline bounds jobs that set no deadline_ms; 0 means
	// unbounded.
	DefaultDeadline time.Duration
	// MaxJobs bounds the in-memory job index; the oldest terminal jobs
	// are forgotten beyond it (default 4096).
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.Devices == 0 {
		c.Devices = 2
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.CacheCap == 0 {
		c.CacheCap = 128
	}
	if c.CacheCap < 0 {
		c.CacheCap = 0
	}
	if c.Machine == nil {
		c.Machine = gpmetis.DefaultMachine()
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 4096
	}
	return c
}

// Server owns the queue, the device pool, the result cache, and the job
// index. Create with New, serve its Handler, and Close on shutdown.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	cache *Cache
	queue chan *Job

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for listing and retention
	seq   int

	start time.Time

	// beforeRun, when non-nil, is called by a worker after popping a job
	// and before checking its context — a test seam that makes queue-full
	// and cancellation scenarios deterministic.
	beforeRun func(*Job)
}

// New builds a Server and starts its device-pool workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		reg:   &obs.Registry{},
		cache: NewCache(cfg.CacheCap),
		queue: make(chan *Job, cfg.QueueCap),
		jobs:  map[string]*Job{},
		start: time.Now(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.reg.Set("devices.total", float64(cfg.Devices))
	s.reg.Set("queue.cap", float64(cfg.QueueCap))
	newPool(s, cfg.Devices, cfg.Machine).start(s.baseCtx)
	return s
}

// Close stops the workers. Queued jobs are abandoned in place; running
// jobs finish their current level and stop at the next boundary only if
// their own contexts are canceled, so callers wanting a hard stop should
// cancel jobs first.
func (s *Server) Close() {
	s.baseCancel()
	s.wg.Wait()
}

// Metrics returns the server's counter registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Submit validates req, consults the result cache, and either completes
// the job instantly (hit) or admits it to the bounded queue. It returns
// ErrQueueFull when the queue is at capacity and a *requestError for
// invalid submissions.
func (s *Server) Submit(req *SubmitRequest) (*Job, error) {
	job, err := resolveRequest(req)
	if err != nil {
		s.reg.Add("jobs.bad_request", 1)
		return nil, err
	}
	s.reg.Add("jobs.submitted", 1)

	deadline := time.Duration(req.DeadlineMs) * time.Millisecond
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if deadline > 0 {
		job.ctx, job.cancel = context.WithTimeout(s.baseCtx, deadline)
	} else {
		job.ctx, job.cancel = context.WithCancel(s.baseCtx)
	}

	// The cache is its own hit/miss bookkeeper; /metrics merges its
	// counts into the registry snapshot.
	if job.key != "" {
		if hit, ok := s.cache.Get(job.key); ok {
			s.register(job)
			job.finishCached(hit)
			return job, nil
		}
	}

	// Admission control: the job is either in the queue or rejected; it
	// is registered only after the queue accepted it, so a rejected
	// submission leaves no trace beyond the counter.
	job.queuedAt = time.Now()
	select {
	case s.queue <- job:
		s.reg.Add("queue.depth", 1)
	default:
		s.reg.Add("jobs.rejected", 1)
		job.cancel()
		return nil, fmt.Errorf("%w: capacity %d", ErrQueueFull, s.cfg.QueueCap)
	}
	s.register(job)
	return job, nil
}

// register assigns the job its ID and indexes it, forgetting the oldest
// terminal jobs beyond the retention cap.
func (s *Server) register(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j.ID = fmt.Sprintf("j%06d", s.seq)
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	for len(s.order) > s.cfg.MaxJobs {
		old := s.jobs[s.order[0]]
		if old != nil {
			st := old.Status().State
			if st == StateQueued || st == StateRunning {
				break // never forget a live job
			}
			delete(s.jobs, s.order[0])
		}
		s.order = s.order[1:]
	}
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Handler returns the HTTP API:
//
//	POST   /jobs            submit (202 queued, 200 cache hit, 429 full)
//	GET    /jobs            list job statuses, oldest first
//	GET    /jobs/{id}       one job's status (result when done)
//	DELETE /jobs/{id}       cancel
//	GET    /jobs/{id}/trace Chrome trace_event JSON of the job's run
//	GET    /metrics         counter registry snapshot
//	GET    /healthz         liveness + pool/queue occupancy
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 256<<20)
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	job, err := s.Submit(&req)
	switch {
	case err == nil:
		st := job.Status()
		code := http.StatusAccepted
		if st.State == StateDone {
			code = http.StatusOK // cache hit: born done
		}
		writeJSON(w, code, st)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeOverloaded, err.Error())
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status()
		st.Result = nil // listing stays light; fetch one job for the vector
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.Job(r.PathValue("id")); ok {
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	writeError(w, http.StatusNotFound, CodeNotFound, "no such job")
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	}
	t := j.Tracer()
	if t == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "job has not started; no trace yet")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := gpmetis.WriteChromeTrace(w, t); err != nil {
		// Headers are gone; the truncated body is the best signal left.
		return
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, evicted := s.cache.Stats()
	extra := map[string]float64{
		"cache.hits":     float64(hits),
		"cache.misses":   float64(misses),
		"cache.evicted":  float64(evicted),
		"cache.entries":  float64(s.cache.Len()),
		"uptime.seconds": time.Since(s.start).Seconds(),
	}
	var rate float64
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	extra["cache.hit_rate"] = rate
	w.Header().Set("Content-Type", "application/json")
	obs.WriteRegistryJSON(w, s.reg, extra)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:     "ok",
		Devices:    s.cfg.Devices,
		QueueDepth: len(s.queue),
		QueueCap:   s.cfg.QueueCap,
		Jobs:       n,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, apiCode, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg, Code: apiCode})
}
