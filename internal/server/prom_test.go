package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"gpmetis"
)

// scrapeProm fetches /metrics, validates the exposition structure line
// by line (legal names, parseable values, no blank lines), and returns
// the samples keyed by full series (name plus label set).
func scrapeProm(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in /metrics output")
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if typed[f[2]] {
				t.Errorf("duplicate TYPE line for %s", f[2])
			}
			typed[f[2]] = true
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		key := line[:sp]
		v, err := strconv.ParseFloat(strings.TrimPrefix(line[sp+1:], "+"), 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			legal := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(c >= '0' && c <= '9' && i > 0)
			if !legal {
				t.Fatalf("illegal metric name %q", name)
			}
		}
		if _, dup := samples[key]; dup {
			t.Errorf("duplicate series %q", key)
		}
		samples[key] = v
	}
	return samples
}

// checkHistogram asserts the cumulative-bucket invariants of one
// exposed histogram: non-decreasing le buckets, +Inf equal to _count.
func checkHistogram(t *testing.T, samples map[string]float64, name string) {
	t.Helper()
	count, ok := samples[name+"_count"]
	if !ok {
		t.Errorf("histogram %s has no _count", name)
		return
	}
	if _, ok := samples[name+"_sum"]; !ok {
		t.Errorf("histogram %s has no _sum", name)
	}
	var prev float64
	var buckets int
	// Buckets were written in ascending-bound order; values must be
	// non-decreasing in that order, so validate against the max so far.
	for key, v := range samples {
		if !strings.HasPrefix(key, name+"_bucket{") {
			continue
		}
		buckets++
		if strings.Contains(key, `le="+Inf"`) {
			if v != count {
				t.Errorf("%s +Inf bucket = %v, _count = %v", name, v, count)
			}
			continue
		}
		if v > count {
			t.Errorf("%s bucket %s = %v exceeds _count %v", name, key, v, count)
		}
		if v > prev {
			prev = v
		}
	}
	if buckets < 2 {
		t.Errorf("histogram %s exposed %d bucket series", name, buckets)
	}
	if prev > count {
		t.Errorf("%s max finite bucket %v exceeds _count %v", name, prev, count)
	}
}

// TestMetricsPrometheusEndToEnd drives the daemon over HTTP and pins the
// exposition contract: build info on a fresh daemon, latency histograms
// and per-slot gauges after a job, and counter monotonicity across two
// jobs and three scrapes.
func TestMetricsPrometheusEndToEnd(t *testing.T) {
	s := New(Config{Devices: 2, QueueCap: 8, CacheCap: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fresh := scrapeProm(t, ts.URL)
	if v, ok := fresh[`gpmetisd_build_info{version="`+Version+`",go_version="`+runtime.Version()+`"}`]; !ok || v != 1 {
		t.Errorf("build_info series missing or != 1; have %v", fresh)
	}
	for _, want := range []string{
		"gpmetisd_uptime_seconds",
		`gpmetisd_slot_quarantined{slot="0"}`,
		`gpmetisd_slot_quarantined{slot="1"}`,
		"gpmetisd_cache_hits", "gpmetisd_cache_misses",
	} {
		if _, ok := fresh[want]; !ok {
			t.Errorf("fresh scrape missing %s", want)
		}
	}

	g, err := gpmetis.Delaunay(2500, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, e, code := httpSubmit(t, ts.URL, SubmitRequest{Graph: graphText(t, g), K: 4})
	if e != nil {
		t.Fatalf("submit: HTTP %d %+v", code, e)
	}
	st = httpPoll(t, ts.URL, st.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	one := scrapeProm(t, ts.URL)
	if one["gpmetisd_jobs_completed"] != 1 {
		t.Errorf("jobs_completed = %v after one job", one["gpmetisd_jobs_completed"])
	}
	for _, h := range []string{"gpmetisd_job_queue_seconds", "gpmetisd_job_run_seconds", "gpmetisd_job_modeled_seconds"} {
		checkHistogram(t, one, h)
		if one[h+"_count"] < 1 {
			t.Errorf("%s_count = %v after one job", h, one[h+"_count"])
		}
	}
	var busy, jobs float64
	for slot := 0; slot < 2; slot++ {
		k := strconv.Itoa(slot)
		busy += one[`gpmetisd_slot_busy_seconds{slot="`+k+`"}`]
		jobs += one[`gpmetisd_slot_jobs{slot="`+k+`"}`]
	}
	if jobs != 1 || busy <= 0 {
		t.Errorf("slot gauges after one job: jobs=%v busy=%v", jobs, busy)
	}

	g2, err := gpmetis.Delaunay(2600, 2)
	if err != nil {
		t.Fatal(err)
	}
	st2, e, code := httpSubmit(t, ts.URL, SubmitRequest{Graph: graphText(t, g2), K: 4})
	if e != nil {
		t.Fatalf("submit 2: HTTP %d %+v", code, e)
	}
	if st2 = httpPoll(t, ts.URL, st2.ID); st2.State != StateDone {
		t.Fatalf("job 2 ended %s: %s", st2.State, st2.Error)
	}

	two := scrapeProm(t, ts.URL)
	monotonic := []string{
		"gpmetisd_jobs_completed", "gpmetisd_jobs_submitted",
		"gpmetisd_job_run_seconds_count", "gpmetisd_job_run_seconds_sum",
		"gpmetisd_modeled_seconds",
	}
	for _, name := range monotonic {
		if two[name] < one[name] {
			t.Errorf("%s went backwards across scrapes: %v -> %v", name, one[name], two[name])
		}
	}
	if two["gpmetisd_jobs_completed"] != 2 {
		t.Errorf("jobs_completed = %v after two jobs", two["gpmetisd_jobs_completed"])
	}
}

// TestProfileEndpoint submits with "profile": true and downloads the
// kernel profile; an unprofiled job must 404 with a hint.
func TestProfileEndpoint(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 8, CacheCap: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Big enough to clear the default GPUThreshold (16k vertices), so the
	// run actually launches kernels for the profiler to sample.
	g, err := gpmetis.Delaunay(25000, 3)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)

	st, e, code := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 4, Profile: true})
	if e != nil {
		t.Fatalf("submit: HTTP %d %+v", code, e)
	}
	if st = httpPoll(t, ts.URL, st.ID); st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile fetch: HTTP %d", resp.StatusCode)
	}
	var rep gpmetis.ProfileReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "gpmetis-profile-v1" || len(rep.Kernels) == 0 {
		t.Fatalf("profile = schema %q, %d kernels", rep.Schema, len(rep.Kernels))
	}
	if rep.KernelSeconds != rep.GPUTimelineSeconds {
		t.Errorf("daemon profile does not reconcile: %v vs %v",
			rep.KernelSeconds, rep.GPUTimelineSeconds)
	}

	// An unprofiled job has no profile to serve. A different K keeps it
	// from coalescing with (or hitting the cache of) the profiled job.
	st2, e, code := httpSubmit(t, ts.URL, SubmitRequest{Graph: text, K: 8})
	if e != nil {
		t.Fatalf("submit 2: HTTP %d %+v", code, e)
	}
	if st2 = httpPoll(t, ts.URL, st2.ID); st2.State != StateDone {
		t.Fatalf("job 2 ended %s: %s", st2.State, st2.Error)
	}
	resp2, err := http.Get(ts.URL + "/jobs/" + st2.ID + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unprofiled job's profile: HTTP %d, want 404", resp2.StatusCode)
	}
}

// TestProfiledAndPlainJobsCacheSeparately pins the cache-key rule: the
// same graph and options with and without profiling are distinct
// entries, so a plain resubmission can never surface (or miss) a
// profile it did not ask for.
func TestProfiledAndPlainJobsCacheSeparately(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 8, CacheCap: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := gpmetis.Delaunay(2500, 5)
	if err != nil {
		t.Fatal(err)
	}
	text := graphText(t, g)
	for i, req := range []SubmitRequest{
		{Graph: text, K: 4, Profile: true},
		{Graph: text, K: 4},
	} {
		st, e, code := httpSubmit(t, ts.URL, req)
		if e != nil {
			t.Fatalf("submit %d: HTTP %d %+v", i, code, e)
		}
		if st.Cached {
			t.Errorf("submission %d was a cache hit; profiled and plain must key separately", i)
		}
		if st = httpPoll(t, ts.URL, st.ID); st.State != StateDone {
			t.Fatalf("job %d ended %s: %s", i, st.State, st.Error)
		}
	}
}

// TestHealthzBuildInfo checks the liveness endpoint exposes the build
// and uptime fields operators alert on.
func TestHealthzBuildInfo(t *testing.T) {
	s := New(Config{Devices: 1, QueueCap: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Version != Version {
		t.Errorf("version = %q, want %q", h.Version, Version)
	}
	if !strings.HasPrefix(h.GoVersion, "go") {
		t.Errorf("go_version = %q", h.GoVersion)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", h.UptimeSeconds)
	}
	if h.ModeledSeconds != 0 {
		t.Errorf("modeled seconds = %v on a fresh daemon", h.ModeledSeconds)
	}
}
