package mtmetis

import (
	"math/rand"

	"gpmetis/internal/graph"
	"gpmetis/internal/metis"
	"gpmetis/internal/obs"
	"gpmetis/internal/perfmodel"
)

// MatchTwoRound performs mt-metis's lock-free two-round matching
// (Section II.C): in round one every thread writes one-sided heavy-edge
// proposals match[v]=u into the shared vector with no synchronization; in
// round two each thread re-checks its vertices and re-matches to self any
// entry whose partner does not point back. Returns the symmetric matching
// plus the (conflicts, attempts) counts.
//
// The threads' interleaving is emulated deterministically: thread t scans
// its blocked chunk in order, reading whatever the shared vector holds at
// that moment, exactly the data-race semantics the lock-free scheme
// tolerates by design.
func MatchTwoRound(g *graph.Graph, threads, maxVWgt int, rng *rand.Rand, costs []perfmodel.ThreadCost) (match []int, conflicts, attempts int) {
	n := g.NumVertices()
	match = make([]int, n)
	for i := range match {
		match[i] = -1
	}
	// Round 1: unsynchronized one-sided proposals. The T threads progress
	// through their chunks concurrently, so the deterministic emulation
	// advances them in lockstep steps: in each step every thread picks a
	// partner for its next vertex using the pre-step state (the race
	// window), then the writes land in thread order, last-write-wins —
	// exactly the disagreement pattern round two resolves, and why the
	// conflict rate grows with the thread count (Section IV).
	maxChunk := 0
	for t := 0; t < threads; t++ {
		lo, hi := chunk(n, threads, t)
		if hi-lo > maxChunk {
			maxChunk = hi - lo
		}
	}
	picks := make([][2]int, 0, threads)
	for s := 0; s < maxChunk; s++ {
		picks = picks[:0]
		for t := 0; t < threads; t++ {
			lo, hi := chunk(n, threads, t)
			v := lo + s
			if v >= hi || match[v] != -1 {
				continue
			}
			adj, wgt := g.Neighbors(v)
			best, bestW := -1, -1
			for i, u := range adj {
				if match[u] != -1 || wgt[i] <= bestW {
					continue
				}
				if maxVWgt > 0 && g.VWgt[v]+g.VWgt[u] > maxVWgt {
					continue
				}
				best, bestW = u, wgt[i]
			}
			costs[t].Ops += float64(len(adj) + 2)
			costs[t].Rand += float64(len(adj))
			if best == -1 {
				match[v] = v
				continue
			}
			attempts++
			picks = append(picks, [2]int{v, best})
		}
		for _, p := range picks {
			v, u := p[0], p[1]
			match[v] = u // one-sided write
			if match[u] == -1 {
				match[u] = v // racy reverse link; a later write may differ
			}
		}
	}
	// Round 2: resolve conflicts.
	for t := 0; t < threads; t++ {
		lo, hi := chunk(n, threads, t)
		for v := lo; v < hi; v++ {
			u := match[v]
			if u == -1 {
				match[v] = v
				continue
			}
			if u != v && match[u] != v {
				match[v] = v
				conflicts++
			}
			costs[t].Ops += 2
			costs[t].Rand += 1
		}
	}
	return match, conflicts, attempts
}

// contractParallel builds the coarse graph with the pair rows distributed
// over threads: thread t assembles the rows of all coarse vertices whose
// representative (smaller endpoint) lies in t's chunk, then the
// per-thread segments are concatenated (modeled as the prefix-sum +
// copy-out that mt-metis does).
func contractParallel(g *graph.Graph, match, cmap []int, coarseN, threads int, costs []perfmodel.ThreadCost) *graph.Graph {
	n := g.NumVertices()
	cg := &graph.Graph{
		XAdj: make([]int, coarseN+1),
		VWgt: make([]int, coarseN),
	}
	type seg struct {
		adj, wgt []int
		rows     []int // coarse vertex ids in order
		rowLen   []int
	}
	segs := make([]seg, threads)

	for t := 0; t < threads; t++ {
		lo, hi := chunk(n, threads, t)
		marker := make(map[int]int, 64)
		s := &segs[t]
		for v := lo; v < hi; v++ {
			if match[v] < v {
				continue // the pair's representative owns the row
			}
			cv := cmap[v]
			members := [2]int{v, match[v]}
			cnt := 1
			if match[v] == v {
				cnt = 0
			}
			start := len(s.adj)
			for mi := 0; mi <= cnt; mi++ {
				mv := members[mi]
				adj, wgt := g.Neighbors(mv)
				for i, u := range adj {
					cu := cmap[u]
					if cu == cv {
						continue
					}
					if idx, ok := marker[cu]; ok {
						s.wgt[idx] += wgt[i]
					} else {
						marker[cu] = len(s.adj)
						s.adj = append(s.adj, cu)
						s.wgt = append(s.wgt, wgt[i])
					}
				}
				cg.VWgt[cv] += g.VWgt[mv]
				costs[t].Ops += float64(2 * len(adj))
				costs[t].Rand += float64(2 * len(adj))
			}
			for _, cu := range s.adj[start:] {
				delete(marker, cu)
			}
			s.rows = append(s.rows, cv)
			s.rowLen = append(s.rowLen, len(s.adj)-start)
		}
	}

	// Concatenate segments: coarse ids were assigned in representative
	// order, so appending the threads' rows in (thread, row) order keeps
	// the ids increasing.
	total := 0
	for t := range segs {
		total += len(segs[t].adj)
	}
	cg.Adjncy = make([]int, 0, total)
	cg.AdjWgt = make([]int, 0, total)
	for t := range segs {
		s := &segs[t]
		off := 0
		for i, cv := range s.rows {
			cg.XAdj[cv+1] = len(cg.Adjncy) + off + s.rowLen[i]
			off += s.rowLen[i]
		}
		cg.Adjncy = append(cg.Adjncy, s.adj...)
		cg.AdjWgt = append(cg.AdjWgt, s.wgt...)
		costs[t].SeqBytes += float64(8 * len(s.adj))
	}
	return cg
}

// Coarsen runs parallel two-round matching and contraction levels until
// the CoarsenTo*k threshold or a stall, mirroring metis.Coarsen but with
// per-thread accounting.
func Coarsen(g *graph.Graph, k int, o Options, m *perfmodel.Machine, tl *perfmodel.Timeline) (levels []metis.Level, conflicts, attempts int) {
	return coarsen(g, k, o, m, tl, nil)
}

// coarsen is Coarsen with tracing: each level becomes one span carrying
// its size, coarsening ratio, and matching conflict rate.
func coarsen(g *graph.Graph, k int, o Options, m *perfmodel.Machine, tl *perfmodel.Timeline, sink *obs.TimelineSink) (levels []metis.Level, conflicts, attempts int) {
	rng := rand.New(rand.NewSource(o.Seed))
	target := o.CoarsenTo * k
	maxVWgt := metis.MaxVertexWeight(g, k, o.CoarsenTo)
	cur := g
	for cur.NumVertices() > target {
		lvl := sink.Begin(obs.SpanCoarsenLevel, tl.Total(),
			obs.Str("side", "cpu"),
			obs.Int("level", int64(len(levels))),
			obs.Int("vertices", int64(cur.NumVertices())),
			obs.Int("edges", int64(cur.NumEdges())))
		costs := make([]perfmodel.ThreadCost, o.Threads)
		match, c, a := MatchTwoRound(cur, o.Threads, maxVWgt, rng, costs)
		conflicts += c
		attempts += a
		var cmAcct perfmodel.ThreadCost
		cmap, coarseN := metis.BuildCMap(match, &cmAcct)
		costs[0].Add(cmAcct) // cmap numbering is a cheap scan on one thread
		if float64(coarseN) > 0.95*float64(cur.NumVertices()) {
			sink.End(lvl, tl.Total(), obs.Bool("stalled", true))
			break
		}
		cg := contractParallel(cur, match, cmap, coarseN, o.Threads, costs)
		tl.Append("coarsen", perfmodel.LocCPU, m.CPUPhaseSeconds(costs))
		var rate float64
		if a > 0 {
			rate = float64(c) / float64(a)
		}
		sink.End(lvl, tl.Total(),
			obs.Int("coarse_vertices", int64(coarseN)),
			obs.Float("ratio", float64(coarseN)/float64(cur.NumVertices())),
			obs.Int("conflicts", int64(c)),
			obs.Int("attempts", int64(a)),
			obs.Float("conflict_rate", rate))
		levels = append(levels, metis.Level{Fine: cur, CMap: cmap, Coarse: cg})
		cur = cg
	}
	return levels, conflicts, attempts
}
