// Package mtmetis implements the shared-memory parallel multilevel
// partitioner of LaSalle & Karypis ("Multi-threaded graph partitioning",
// IPDPS 2013) that the paper uses both as its strongest CPU baseline and
// as the CPU half of GP-metis (coarse levels, initial partitioning, early
// refinement).
//
// The algorithmic structure follows the paper's Section II.C:
//
//   - vertices are divided among T threads; a shared matching vector is
//     filled lock-free in a first round and conflicting entries are
//     resolved (re-matched to self) in a second round,
//   - contraction is parallel: each thread builds the coarse rows of the
//     pairs whose representative it owns,
//   - initial partitioning runs T independent recursive bisections with
//     different seeds and keeps the best cut,
//   - refinement runs in two-iteration passes whose move direction
//     alternates, with per-partition buffers that collect the threads'
//     move requests and a commit step that enforces the balance bound.
//
// Threads are *modeled*: work executes deterministically on the host while
// per-thread costs feed the machine model's max-over-threads phase time,
// so the load imbalance and synchronization structure of the real
// implementation is what determines the reported runtime (see DESIGN.md).
package mtmetis

import (
	"fmt"
	"math/rand"

	"gpmetis/internal/graph"
	"gpmetis/internal/metis"
	"gpmetis/internal/obs"
	"gpmetis/internal/perfmodel"
)

// Options configures a run. Construct with DefaultOptions.
type Options struct {
	// Seed drives all randomized decisions.
	Seed int64
	// UBFactor is the allowed imbalance (paper: 1.03).
	UBFactor float64
	// CoarsenTo stops coarsening at CoarsenTo*k vertices.
	CoarsenTo int
	// RefineIters bounds refinement passes per uncoarsening level.
	RefineIters int
	// Threads is the number of modeled CPU threads (paper: 8).
	Threads int
	// Verify enables paranoid invariant checking at every level
	// boundary (cmap surjectivity, weight conservation, projection
	// cut conservation); violations fail the run with an error
	// wrapping graph.ErrVerify. Checks run outside the modeled clock.
	Verify bool
	// Trace, when non-nil, is the parent span under which the run emits
	// its per-level spans (standalone mt-metis runs and the CPU phase of
	// GP-metis both use this). Nil disables tracing.
	Trace *obs.Span
	// TraceOffset shifts this run's timeline-local timestamps into the
	// enclosing trace's modeled clock.
	TraceOffset float64
}

// DefaultOptions mirrors the paper's experimental setup on the modeled
// 8-core Xeon.
func DefaultOptions() Options {
	return Options{
		Seed:        1,
		UBFactor:    1.03,
		CoarsenTo:   30,
		RefineIters: 8,
		Threads:     8,
	}
}

func (o *Options) validate(g *graph.Graph, k int) error {
	switch {
	case k < 1:
		return fmt.Errorf("mtmetis: k must be >= 1, got %d", k)
	case g.NumVertices() == 0:
		return fmt.Errorf("mtmetis: cannot partition an empty graph")
	case k > g.NumVertices():
		return fmt.Errorf("mtmetis: k=%d exceeds vertex count %d", k, g.NumVertices())
	case o.UBFactor < 1.0:
		return fmt.Errorf("mtmetis: UBFactor %g must be >= 1.0", o.UBFactor)
	case o.CoarsenTo < 1:
		return fmt.Errorf("mtmetis: CoarsenTo %d must be >= 1", o.CoarsenTo)
	case o.RefineIters < 0:
		return fmt.Errorf("mtmetis: RefineIters %d must be >= 0", o.RefineIters)
	case o.Threads < 1:
		return fmt.Errorf("mtmetis: Threads %d must be >= 1", o.Threads)
	}
	return nil
}

// Result is the outcome of a run.
type Result struct {
	Part     []int
	EdgeCut  int
	Levels   int
	Timeline perfmodel.Timeline
	// MatchConflicts counts first-round matching entries that the second
	// round had to reset, summed over all levels (paper Section IV
	// attributes mt-metis's quality edge over GP-metis to its lower
	// conflict rate; this makes the rate observable).
	MatchConflicts int
	// MatchAttempts counts all first-round match proposals, for
	// normalizing MatchConflicts.
	MatchAttempts int
}

// ModeledSeconds returns the total modeled parallel runtime.
func (r *Result) ModeledSeconds() float64 { return r.Timeline.Total() }

// Partition runs the full mt-metis pipeline on the modeled multicore CPU.
func Partition(g *graph.Graph, k int, o Options, m *perfmodel.Machine) (*Result, error) {
	if err := o.validate(g, k); err != nil {
		return nil, err
	}
	if o.Threads > m.CPU.Cores {
		return nil, fmt.Errorf("mtmetis: %d threads exceed the modeled %d cores", o.Threads, m.CPU.Cores)
	}
	res := &Result{}
	sink := obs.NewTimelineSink(o.Trace, o.TraceOffset)
	if sink != nil {
		res.Timeline.Observe(sink)
	}

	levels, conflicts, attempts := coarsen(g, k, o, m, &res.Timeline, sink)
	res.Levels = len(levels)
	res.MatchConflicts = conflicts
	res.MatchAttempts = attempts
	if o.Verify {
		for i, l := range levels {
			if err := graph.VerifyCoarsening(l.Fine, l.Coarse, l.CMap); err != nil {
				return nil, fmt.Errorf("mtmetis: coarsen level %d: %w", i, err)
			}
		}
	}

	coarsest := g
	if len(levels) > 0 {
		coarsest = levels[len(levels)-1].Coarse
	}
	part := initialPartition(coarsest, k, o, m, &res.Timeline)

	for i := len(levels) - 1; i >= 0; i-- {
		lvl := sink.Begin(obs.SpanUncoarsenLevel, res.Timeline.Total(),
			obs.Str("side", "cpu"),
			obs.Int("level", int64(i)),
			obs.Int("vertices", int64(levels[i].Fine.NumVertices())),
			obs.Int("edges", int64(levels[i].Fine.NumEdges())))
		cpart := part
		part = projectParallel(levels[i], part, o, m, &res.Timeline)
		if o.Verify {
			if err := graph.VerifyProjection(levels[i].Fine, levels[i].Coarse, levels[i].CMap, part, cpart); err != nil {
				return nil, fmt.Errorf("mtmetis: uncoarsen level %d: %w", i, err)
			}
		}
		Refine(levels[i].Fine, part, k, o, m, &res.Timeline)
		sink.End(lvl, res.Timeline.Total())
	}

	var acct perfmodel.ThreadCost
	metis.BalancePartition(g, part, k, o.UBFactor, &acct)
	res.Timeline.Append("balance", perfmodel.LocCPU, m.CPUPhaseSeconds([]perfmodel.ThreadCost{acct}))

	if o.Verify {
		if err := graph.VerifyPartition(g, part, k, 0); err != nil {
			return nil, fmt.Errorf("mtmetis: final partition: %w", err)
		}
	}
	res.Part = part
	res.EdgeCut = graph.EdgeCut(g, part)
	return res, nil
}

// initialPartition runs Threads independent recursive bisections with
// distinct seeds and keeps the best cut; the phase costs the maximum
// single try (they run concurrently).
func initialPartition(g *graph.Graph, k int, o Options, m *perfmodel.Machine, tl *perfmodel.Timeline) []int {
	costs := make([]perfmodel.ThreadCost, o.Threads)
	best := -1
	var bestPart []int
	for t := 0; t < o.Threads; t++ {
		rng := rand.New(rand.NewSource(o.Seed + int64(t)*7919))
		part := metis.RecursiveBisect(g, k, o.UBFactor, rng, &costs[t])
		if cut := graph.EdgeCut(g, part); best == -1 || cut < best {
			best = cut
			bestPart = part
		}
	}
	tl.Append("initpart", perfmodel.LocCPU, m.CPUPhaseSeconds(costs))
	return bestPart
}

// projectParallel transfers the coarse partition to the finer graph with
// the fine vertices divided among threads.
func projectParallel(l metis.Level, coarsePart []int, o Options, m *perfmodel.Machine, tl *perfmodel.Timeline) []int {
	n := len(l.CMap)
	part := make([]int, n)
	costs := make([]perfmodel.ThreadCost, o.Threads)
	for t := 0; t < o.Threads; t++ {
		lo, hi := chunk(n, o.Threads, t)
		for v := lo; v < hi; v++ {
			part[v] = coarsePart[l.CMap[v]]
		}
		costs[t].Ops += float64(hi - lo)
		costs[t].Rand += float64(hi - lo)
	}
	tl.Append("project", perfmodel.LocCPU, m.CPUPhaseSeconds(costs))
	return part
}

// chunk returns thread t's half-open vertex range under a blocked
// distribution of n items over p threads.
func chunk(n, p, t int) (int, int) {
	lo := t * n / p
	hi := (t + 1) * n / p
	return lo, hi
}
