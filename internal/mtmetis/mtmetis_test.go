package mtmetis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpmetis/internal/graph"
	"gpmetis/internal/graph/gen"
	"gpmetis/internal/metis"
	"gpmetis/internal/perfmodel"
)

func machine() *perfmodel.Machine { return perfmodel.Default() }

func TestMatchTwoRoundIsValidMatching(t *testing.T) {
	g, err := gen.Grid2D(30, 30)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]perfmodel.ThreadCost, 8)
	match, conflicts, attempts := MatchTwoRound(g, 8, 0, rand.New(rand.NewSource(1)), costs)
	matched := 0
	for v, u := range match {
		if u < 0 || u >= g.NumVertices() {
			t.Fatalf("match[%d] = %d out of range", v, u)
		}
		if match[u] != v {
			t.Fatalf("asymmetric after resolution: match[%d]=%d but match[%d]=%d", v, u, u, match[u])
		}
		if u != v {
			if !g.HasEdge(v, u) {
				t.Fatalf("matched non-adjacent %d,%d", v, u)
			}
			matched++
		}
	}
	if matched < g.NumVertices()/3 {
		t.Errorf("only %d/%d vertices matched", matched, g.NumVertices())
	}
	if attempts == 0 {
		t.Error("no match attempts recorded")
	}
	if conflicts < 0 || conflicts > attempts {
		t.Errorf("conflicts=%d attempts=%d inconsistent", conflicts, attempts)
	}
	// Per-thread costs should all be populated (blocked distribution).
	for i, c := range costs {
		if c.Ops == 0 {
			t.Errorf("thread %d charged no work", i)
		}
	}
}

func TestContractParallelMatchesSerial(t *testing.T) {
	g, err := gen.Delaunay(1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]perfmodel.ThreadCost, 8)
	match, _, _ := MatchTwoRound(g, 8, 0, rand.New(rand.NewSource(2)), costs)
	cmap, cn := metis.BuildCMap(match, nil)

	par := contractParallel(g, match, cmap, cn, 8, costs)
	ser := metis.Contract(g, match, cmap, cn, nil)

	if err := par.Validate(); err != nil {
		t.Fatalf("parallel contraction invalid: %v", err)
	}
	if par.NumVertices() != ser.NumVertices() || par.NumEdges() != ser.NumEdges() {
		t.Fatalf("size mismatch: parallel %v vs serial %v", par, ser)
	}
	if par.TotalVertexWeight() != ser.TotalVertexWeight() || par.TotalEdgeWeight() != ser.TotalEdgeWeight() {
		t.Error("weight totals differ between parallel and serial contraction")
	}
	for v := 0; v < par.NumVertices(); v++ {
		adj, wgt := ser.Neighbors(v)
		for i, u := range adj {
			if par.EdgeWeight(v, u) != wgt[i] {
				t.Fatalf("edge (%d,%d): parallel %d vs serial %d", v, u, par.EdgeWeight(v, u), wgt[i])
			}
		}
	}
}

func TestPartitionEndToEnd(t *testing.T) {
	g, err := gen.Grid2D(40, 40)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	res, err := Partition(g, 8, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckPartition(g, res.Part, 8); err != nil {
		t.Fatal(err)
	}
	if imb := graph.Imbalance(g, res.Part, 8); imb > 1.12 {
		t.Errorf("imbalance = %g", imb)
	}
	if res.EdgeCut > 300 {
		t.Errorf("cut %d too high for a 40x40 grid in 8 parts", res.EdgeCut)
	}
	if res.Levels == 0 {
		t.Error("expected coarsening levels")
	}
	if res.ModeledSeconds() <= 0 {
		t.Error("no modeled time")
	}
}

func TestParallelIsFasterThanSerialModel(t *testing.T) {
	// The whole point of mt-metis: its modeled runtime on 8 cores must
	// beat serial Metis on a large enough graph.
	g, err := gen.Delaunay(30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := machine()
	sres, err := metis.Partition(g, 16, metis.DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := Partition(g, 16, DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	speedup := sres.ModeledSeconds() / pres.ModeledSeconds()
	if speedup < 2 {
		t.Errorf("mt-metis speedup over Metis = %.2f, want >= 2 on 8 cores", speedup)
	}
	if speedup > 8.5 {
		t.Errorf("mt-metis speedup %.2f exceeds core count: model broken", speedup)
	}
}

func TestQualityComparableToSerial(t *testing.T) {
	g, err := gen.Delaunay(8000, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := machine()
	sres, err := metis.Partition(g, 16, metis.DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := Partition(g, 16, DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(pres.EdgeCut) / float64(sres.EdgeCut)
	// Paper Table III: parallel partitioners stay within a few percent of
	// Metis (both directions); allow a generous band.
	if ratio > 1.35 || ratio < 0.6 {
		t.Errorf("edge-cut ratio vs Metis = %.3f (mt %d vs serial %d)", ratio, pres.EdgeCut, sres.EdgeCut)
	}
}

func TestMoreThreadsMoreConflicts(t *testing.T) {
	// The paper (Section IV) explains GP-metis's quality gap by its much
	// higher thread count raising the matching conflict rate. The same
	// effect must be visible in our two-round matcher.
	g, err := gen.Delaunay(20000, 13)
	if err != nil {
		t.Fatal(err)
	}
	conflictsAt := func(threads int) int {
		costs := make([]perfmodel.ThreadCost, threads)
		_, c, _ := MatchTwoRound(g, threads, 0, rand.New(rand.NewSource(5)), costs)
		return c
	}
	c1 := conflictsAt(1)
	c8 := conflictsAt(8)
	if c1 > c8 {
		t.Logf("conflicts: 1 thread %d, 8 threads %d", c1, c8)
	}
	// With one emulated thread the scheme is still one-sided/two-round,
	// so conflicts exist, but the counter must at least be consistent.
	if c8 < 0 {
		t.Error("negative conflicts")
	}
}

func TestOptionValidation(t *testing.T) {
	g, err := gen.Grid2D(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	if _, err := Partition(g, 0, o, machine()); err == nil {
		t.Error("k=0 should fail")
	}
	bad := o
	bad.Threads = 0
	if _, err := Partition(g, 2, bad, machine()); err == nil {
		t.Error("0 threads should fail")
	}
	bad = o
	bad.Threads = 99
	if _, err := Partition(g, 2, bad, machine()); err == nil {
		t.Error("more threads than modeled cores should fail")
	}
	bad = o
	bad.UBFactor = 0.5
	if _, err := Partition(g, 2, bad, machine()); err == nil {
		t.Error("UBFactor < 1 should fail")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g, err := gen.RoadNetwork(5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	a, err := Partition(g, 8, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, 8, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCut != b.EdgeCut || a.ModeledSeconds() != b.ModeledSeconds() {
		t.Error("same seed must give identical results and modeled time")
	}
}

// Property: partition validity over random inputs, thread counts, and k.
func TestPartitionAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, szRaw, kRaw, tRaw uint8) bool {
		n := 40 + int(szRaw)%200
		k := 2 + int(kRaw)%6
		threads := 1 + int(tRaw)%8
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			if err := b.AddEdge(rng.Intn(v), v, 1+rng.Intn(3)); err != nil {
				return false
			}
		}
		for i := 0; i < n/2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				if err := b.AddEdge(u, v, 1+rng.Intn(3)); err != nil {
					return false
				}
			}
		}
		g := b.MustBuild()
		o := DefaultOptions()
		o.Seed = seed
		o.Threads = threads
		res, err := Partition(g, k, o, machine())
		if err != nil {
			t.Logf("Partition: %v", err)
			return false
		}
		return graph.CheckPartition(g, res.Part, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: two-round matching always yields a symmetric matching of
// adjacent pairs, regardless of thread count.
func TestMatchTwoRoundProperty(t *testing.T) {
	f := func(seed int64, tRaw uint8) bool {
		threads := 1 + int(tRaw)%8
		g, err := gen.Delaunay(300, seed)
		if err != nil {
			return false
		}
		costs := make([]perfmodel.ThreadCost, threads)
		match, _, _ := MatchTwoRound(g, threads, 0, rand.New(rand.NewSource(seed)), costs)
		for v, u := range match {
			if u < 0 || u >= g.NumVertices() || match[u] != v {
				return false
			}
			if u != v && !g.HasEdge(v, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
