package mtmetis

import (
	"sort"

	"gpmetis/internal/graph"
	"gpmetis/internal/perfmodel"
)

// moveReq is one thread's request to migrate a vertex into a partition's
// buffer (Section II.C: "each thread has an assigned buffer for inserting
// the vertex movement requests").
type moveReq struct {
	v    int
	from int
	gain int
}

// Refine improves the k-way partition with mt-metis's two-step buffered
// scheme: each pass runs two iterations with opposite move directions
// (low->high partition ids, then high->low) to prevent two neighbor
// vertices swapping across the same boundary concurrently; threads scan
// their vertices and append requests to per-destination-partition
// buffers; then the buffers are drained best-gain-first, committing only
// moves that keep the destination within the balance bound.
func Refine(g *graph.Graph, part []int, k int, o Options, m *perfmodel.Machine, tl *perfmodel.Timeline) {
	n := g.NumVertices()
	pw := graph.PartWeights(g, part, k)
	totalW := 0
	for _, w := range pw {
		totalW += w
	}
	maxPW := int(o.UBFactor * float64(totalW) / float64(k))
	if maxPW < 1 {
		maxPW = 1
	}

	for pass := 0; pass < o.RefineIters; pass++ {
		committed := 0
		for dir := 0; dir < 2; dir++ {
			costs := make([]perfmodel.ThreadCost, o.Threads)
			buffers := make([][]moveReq, k)

			// Scan step: threads propose direction-constrained moves.
			conn := make([]int, k)
			var touched []int
			for t := 0; t < o.Threads; t++ {
				lo, hi := chunk(n, o.Threads, t)
				for v := lo; v < hi; v++ {
					pv := part[v]
					adj, wgt := g.Neighbors(v)
					boundary := false
					for i, u := range adj {
						pu := part[u]
						if pu != pv {
							boundary = true
						}
						if conn[pu] == 0 {
							touched = append(touched, pu)
						}
						conn[pu] += wgt[i]
					}
					costs[t].Ops += float64(len(adj) + 2)
					costs[t].Rand += float64(len(adj))
					if boundary {
						bestP, bestGain := -1, 0
						for _, p := range touched {
							if p == pv {
								continue
							}
							// Direction ordering: even iterations move
							// only toward higher ids, odd toward lower.
							if dir == 0 && p < pv || dir == 1 && p > pv {
								continue
							}
							if pw[p]+g.VWgt[v] > maxPW {
								continue
							}
							if gain := conn[p] - conn[pv]; gain > bestGain {
								bestP, bestGain = p, gain
							}
						}
						if bestP != -1 && bestGain > 0 {
							buffers[bestP] = append(buffers[bestP], moveReq{v: v, from: pv, gain: bestGain})
							costs[t].Atomics++ // buffer slot via atomic counter
						}
					}
					for _, p := range touched {
						conn[p] = 0
					}
					touched = touched[:0]
				}
			}

			// Explore step: one worker per partition drains its buffer,
			// best gain first, committing what the balance bound allows.
			// With k partitions but only Threads cores, each core serves
			// k/Threads buffers in turn, which the cost model reflects.
			exploreCosts := make([]perfmodel.ThreadCost, o.Threads)
			for p := 0; p < k; p++ {
				ec := &exploreCosts[p%o.Threads]
				buf := buffers[p]
				sort.Slice(buf, func(i, j int) bool { return buf[i].gain > buf[j].gain })
				ec.Ops += float64(len(buf)) * 8 // sort + scan
				for _, req := range buf {
					if part[req.v] != req.from {
						continue // moved already in this iteration
					}
					if pw[p]+g.VWgt[req.v] > maxPW {
						continue
					}
					part[req.v] = p
					pw[req.from] -= g.VWgt[req.v]
					pw[p] += g.VWgt[req.v]
					committed++
					ec.Rand += 2
				}
			}

			tl.Append("refine.scan", perfmodel.LocCPU, m.CPUPhaseSeconds(costs))
			tl.Append("refine.explore", perfmodel.LocCPU, m.CPUPhaseSeconds(exploreCosts))
		}
		if committed == 0 {
			break
		}
	}
}
