// Package parmetis implements the coarse-grained distributed-memory
// multilevel k-way partitioner of Karypis & Kumar (the ParMetis algorithm
// the paper compares against), running on the repository's message-passing
// substrate (internal/mpi) with ranks as goroutines and an alpha-beta
// network cost model.
//
// The structure follows the paper's Section II.B:
//
//   - each of P processors owns n/P vertices,
//   - matching runs in alternating passes: in even passes a vertex v only
//     requests a match from a heavier-edge neighbor u when v > u, in odd
//     passes when v < u; at the end of each pass the processors exchange
//     their requests in one bulk message each and resolve them,
//   - contraction is distributed by pair representative, after which the
//     coarse graph is exchanged so the next level can proceed (real
//     ParMetis keeps ghost halos instead; the exchanged volume is of the
//     same order at these sizes and the synchronization structure is
//     identical),
//   - initial partitioning broadcasts the coarsest graph and has every
//     processor compute a recursive bisection, keeping the best,
//   - un-coarsening applies the same pass-based request/commit ordering as
//     coarsening, with balance-constrained commits.
//
// All ranks advance deterministic replicated state, so the result is
// identical regardless of host scheduling, while each rank's virtual clock
// (compute charges + causal message delays) yields the modeled runtime.
package parmetis

import (
	"fmt"
	"math/rand"
	"sort"

	"gpmetis/internal/fault"
	"gpmetis/internal/graph"
	"gpmetis/internal/metis"
	"gpmetis/internal/mpi"
	"gpmetis/internal/perfmodel"
)

// Options configures a run. Construct with DefaultOptions.
type Options struct {
	// Seed drives all randomized decisions.
	Seed int64
	// UBFactor is the allowed imbalance (paper: 1.03).
	UBFactor float64
	// CoarsenTo stops coarsening at CoarsenTo*k vertices.
	CoarsenTo int
	// RefineIters bounds refinement passes per uncoarsening level.
	RefineIters int
	// Procs is the number of MPI ranks (paper: one per core, 8).
	Procs int
	// MatchPasses is the number of alternating-direction request passes
	// per coarsening level.
	MatchPasses int
	// Faults, when non-nil, injects rank failures (fault.SiteMPIRank):
	// a killed rank aborts the job with mpi.ErrRankFailure. Nil disables
	// injection.
	Faults *fault.Injector
}

// DefaultOptions mirrors the paper's setup: 8 ranks, 3% imbalance.
func DefaultOptions() Options {
	return Options{
		Seed:        1,
		UBFactor:    1.03,
		CoarsenTo:   30,
		RefineIters: 6,
		Procs:       8,
		MatchPasses: 4,
	}
}

func (o *Options) validate(g *graph.Graph, k int) error {
	switch {
	case k < 1:
		return fmt.Errorf("parmetis: k must be >= 1, got %d", k)
	case g.NumVertices() == 0:
		return fmt.Errorf("parmetis: cannot partition an empty graph")
	case k > g.NumVertices():
		return fmt.Errorf("parmetis: k=%d exceeds vertex count %d", k, g.NumVertices())
	case o.UBFactor < 1.0:
		return fmt.Errorf("parmetis: UBFactor %g must be >= 1.0", o.UBFactor)
	case o.CoarsenTo < 1:
		return fmt.Errorf("parmetis: CoarsenTo %d must be >= 1", o.CoarsenTo)
	case o.RefineIters < 0:
		return fmt.Errorf("parmetis: RefineIters %d must be >= 0", o.RefineIters)
	case o.Procs < 1:
		return fmt.Errorf("parmetis: Procs %d must be >= 1", o.Procs)
	case o.MatchPasses < 1:
		return fmt.Errorf("parmetis: MatchPasses %d must be >= 1", o.MatchPasses)
	}
	return nil
}

// Result is the outcome of a run.
type Result struct {
	Part     []int
	EdgeCut  int
	Levels   int
	Timeline perfmodel.Timeline
}

// ModeledSeconds returns the modeled parallel runtime (max rank clock).
func (r *Result) ModeledSeconds() float64 { return r.Timeline.Total() }

func chunk(n, p, t int) (int, int) { return t * n / p, (t + 1) * n / p }

// Partition runs the full distributed pipeline and returns the k-way
// partition with its modeled runtime.
func Partition(g *graph.Graph, k int, o Options, m *perfmodel.Machine) (*Result, error) {
	if err := o.validate(g, k); err != nil {
		return nil, err
	}
	res := &Result{}
	type mark struct {
		name string
		at   float64
	}
	var marks []mark
	var finalPart []int
	var levelsOut int

	_, err := mpi.RunInjected(m, o.Procs, o.Faults, func(r *mpi.Rank) {
		P := r.Size()
		record := func(name string) {
			r.Barrier()
			if r.ID() == 0 {
				marks = append(marks, mark{name, r.Clock()})
			}
		}

		// --- Coarsening ---
		cur := g
		var levels []metis.Level
		target := o.CoarsenTo * k
		maxVWgt := metis.MaxVertexWeight(g, k, o.CoarsenTo)
		for cur.NumVertices() > target {
			match := distMatch(r, cur, o, maxVWgt)
			var acct perfmodel.ThreadCost
			cmap, coarseN := metis.BuildCMap(match, &acct)
			r.Charge(acct)
			if float64(coarseN) > 0.85*float64(cur.NumVertices()) {
				// The request protocol degrades once chunks are small and
				// most candidate pairs straddle processors. Real ParMetis
				// folds the graph onto fewer processors (PT-Scotch style);
				// the equivalent here is serial matching on the
				// replicated graph, computed identically by every rank.
				var sAcct perfmodel.ThreadCost
				rng := rand.New(rand.NewSource(o.Seed + int64(len(levels))))
				match = metis.Match(cur, metis.HEM, maxVWgt, rng, &sAcct)
				r.Charge(sAcct)
				cmap, coarseN = metis.BuildCMap(match, &sAcct)
				if float64(coarseN) > 0.95*float64(cur.NumVertices()) {
					break
				}
			}
			cg := distContract(r, cur, match, cmap, coarseN)
			levels = append(levels, metis.Level{Fine: cur, CMap: cmap, Coarse: cg})
			cur = cg
		}
		record("coarsen")

		// --- Initial partitioning: every rank bisects, best cut wins ---
		// The coarsest graph is already replicated; the paper's all-to-all
		// broadcast is charged explicitly.
		bytes := int64(4 * (len(cur.XAdj) + len(cur.Adjncy) + len(cur.AdjWgt) + len(cur.VWgt)))
		r.ChargeSeconds(m.NetMsgSec(float64(bytes)) * float64(P-1) / float64(P))
		var acct perfmodel.ThreadCost
		rng := rand.New(rand.NewSource(o.Seed + int64(r.ID())*104729))
		part := metis.RecursiveBisect(cur, k, o.UBFactor, rng, &acct)
		r.Charge(acct)
		myCut := graph.EdgeCut(cur, part)
		cuts := r.AllGather([]int{myCut})
		bestRank, bestCut := 0, cuts[0][0]
		for p := 1; p < P; p++ {
			if cuts[p][0] < bestCut {
				bestRank, bestCut = p, cuts[p][0]
			}
		}
		part = r.Bcast(bestRank, part)
		record("initpart")

		// --- Un-coarsening ---
		for i := len(levels) - 1; i >= 0; i-- {
			l := levels[i]
			n := l.Fine.NumVertices()
			fine := make([]int, n)
			lo, hi := chunk(n, P, r.ID())
			for v := 0; v < n; v++ {
				fine[v] = part[l.CMap[v]]
			}
			r.Charge(perfmodel.ThreadCost{Ops: float64(hi - lo), Rand: float64(hi - lo)})
			part = fine
			distRefine(r, l.Fine, part, k, o)
		}
		record("uncoarsen")

		if r.ID() == 0 {
			var bAcct perfmodel.ThreadCost
			metis.BalancePartition(g, part, k, o.UBFactor, &bAcct)
			r.Charge(bAcct)
			finalPart = part
			levelsOut = len(levels)
		}
		record("balance")
	})
	if err != nil {
		return nil, err
	}

	prev := 0.0
	for _, mk := range marks {
		res.Timeline.Append(mk.name, perfmodel.LocNet, mk.at-prev)
		prev = mk.at
	}
	res.Part = finalPart
	res.Levels = levelsOut
	res.EdgeCut = graph.EdgeCut(g, finalPart)
	return res, nil
}

// matchReq is one vertex's heavy-edge match request.
type matchReq struct{ from, to, w int }

// distMatch runs the alternating-direction pass-based matching: each rank
// proposes for its owned unmatched vertices, the requests travel in one
// bulk exchange per pass, and every rank resolves the full request set
// deterministically so the replicated match vector stays consistent.
func distMatch(r *mpi.Rank, g *graph.Graph, o Options, maxVWgt int) []int {
	n := g.NumVertices()
	P := r.Size()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	lo, hi := chunk(n, P, r.ID())

	for pass := 0; pass < o.MatchPasses; pass++ {
		var acct perfmodel.ThreadCost
		var reqs []matchReq
		var pairs []int
		for v := lo; v < hi; v++ {
			if match[v] != -1 {
				continue
			}
			adj, wgt := g.Neighbors(v)
			best, bestW := -1, -1
			for i, u := range adj {
				if match[u] != -1 || wgt[i] <= bestW {
					continue
				}
				if maxVWgt > 0 && g.VWgt[v]+g.VWgt[u] > maxVWgt {
					continue
				}
				best, bestW = u, wgt[i]
			}
			acct.Ops += float64(len(adj) + 2)
			acct.Rand += float64(len(adj))
			if best == -1 {
				continue
			}
			if best >= lo && best < hi {
				// Both endpoints are local: match immediately, as real
				// ParMetis does for processor-interior pairs. The pair
				// still travels in this pass's bulk exchange so every
				// rank's replicated match vector stays consistent.
				match[v] = best
				match[best] = v
				pairs = append(pairs, v, best)
				continue
			}
			// Cross-processor target: the request protocol's direction
			// rule (paper Section II.B) — even passes request only v>u
			// targets, odd passes only v<u — prevents request cycles.
			if pass%2 == 0 && v < best || pass%2 == 1 && v > best {
				continue
			}
			reqs = append(reqs, matchReq{v, best, bestW})
		}
		r.Charge(acct)

		// One bulk message per processor pair carrying this pass's local
		// pair commits followed by the cross-processor requests
		// (flattened to ints: [nPairs, pairs..., (from,to,w)...]).
		flat := make([]int, 0, 1+len(pairs)+3*len(reqs))
		flat = append(flat, len(pairs))
		flat = append(flat, pairs...)
		for _, q := range reqs {
			flat = append(flat, q.from, q.to, q.w)
		}
		all := r.AllGather(flat)

		// Apply every rank's local pairs first (each rank owns both
		// endpoints of its pairs, so commits cannot conflict), then
		// resolve cross requests deterministically, identically on every
		// rank: sorted by (target, weight desc, source asc); first
		// feasible request per target wins.
		var merged []matchReq
		for _, buf := range all {
			np := buf[0]
			for i := 1; i+1 <= np; i += 2 {
				match[buf[i]] = buf[i+1]
				match[buf[i+1]] = buf[i]
			}
			for i := 1 + np; i+2 < len(buf); i += 3 {
				merged = append(merged, matchReq{buf[i], buf[i+1], buf[i+2]})
			}
		}
		sort.Slice(merged, func(a, b int) bool {
			if merged[a].to != merged[b].to {
				return merged[a].to < merged[b].to
			}
			if merged[a].w != merged[b].w {
				return merged[a].w > merged[b].w
			}
			return merged[a].from < merged[b].from
		})
		var resolve perfmodel.ThreadCost
		for _, q := range merged {
			if match[q.to] == -1 && match[q.from] == -1 && q.to != q.from {
				match[q.to] = q.from
				match[q.from] = q.to
			}
		}
		resolve.Ops = float64(len(merged) * 4)
		resolve.Rand = float64(len(merged) * 2)
		r.Charge(resolve)
	}
	// Unmatched vertices collapse with themselves.
	for v := range match {
		if match[v] == -1 {
			match[v] = v
		}
	}
	return match
}

// distContract contracts the matched graph: each rank builds the coarse
// rows whose representative it owns, then the segments are exchanged so
// every rank assembles the identical coarse graph.
func distContract(r *mpi.Rank, g *graph.Graph, match, cmap []int, coarseN int) *graph.Graph {
	n := g.NumVertices()
	P := r.Size()
	lo, hi := chunk(n, P, r.ID())

	var acct perfmodel.ThreadCost
	// Row payload: cv, vwgt, deg, then deg x (neighbor, weight).
	var flat []int
	marker := make(map[int]int, 64)
	var rowAdj, rowWgt []int
	for v := lo; v < hi; v++ {
		if match[v] < v {
			continue
		}
		cv := cmap[v]
		rowAdj = rowAdj[:0]
		rowWgt = rowWgt[:0]
		vw := 0
		members := [2]int{v, match[v]}
		last := 0
		if match[v] != v {
			last = 1
		}
		for mi := 0; mi <= last; mi++ {
			mv := members[mi]
			vw += g.VWgt[mv]
			adj, wgt := g.Neighbors(mv)
			for i, u := range adj {
				cu := cmap[u]
				if cu == cv {
					continue
				}
				if idx, ok := marker[cu]; ok {
					rowWgt[idx] += wgt[i]
				} else {
					marker[cu] = len(rowAdj)
					rowAdj = append(rowAdj, cu)
					rowWgt = append(rowWgt, wgt[i])
				}
			}
			acct.Ops += float64(2 * len(adj))
			acct.Rand += float64(2 * len(adj))
		}
		for _, cu := range rowAdj {
			delete(marker, cu)
		}
		flat = append(flat, cv, vw, len(rowAdj))
		for i := range rowAdj {
			flat = append(flat, rowAdj[i], rowWgt[i])
		}
	}
	r.Charge(acct)

	all := r.AllGather(flat)

	// Assemble the replicated coarse graph from the row segments.
	type row struct {
		vw  int
		adj []int
		wgt []int
	}
	rows := make([]row, coarseN)
	for _, buf := range all {
		i := 0
		for i < len(buf) {
			cv, vw, deg := buf[i], buf[i+1], buf[i+2]
			i += 3
			rw := row{vw: vw, adj: make([]int, deg), wgt: make([]int, deg)}
			for j := 0; j < deg; j++ {
				rw.adj[j] = buf[i]
				rw.wgt[j] = buf[i+1]
				i += 2
			}
			rows[cv] = rw
		}
	}
	cg := &graph.Graph{
		XAdj: make([]int, coarseN+1),
		VWgt: make([]int, coarseN),
	}
	for cv, rw := range rows {
		cg.VWgt[cv] = rw.vw
		cg.XAdj[cv+1] = cg.XAdj[cv] + len(rw.adj)
	}
	cg.Adjncy = make([]int, 0, cg.XAdj[coarseN])
	cg.AdjWgt = make([]int, 0, cg.XAdj[coarseN])
	for _, rw := range rows {
		cg.Adjncy = append(cg.Adjncy, rw.adj...)
		cg.AdjWgt = append(cg.AdjWgt, rw.wgt...)
	}
	r.Charge(perfmodel.ThreadCost{SeqBytes: float64(8 * len(cg.Adjncy))})
	return cg
}

// moveReq is a distributed refinement move request.
type moveReq struct{ v, from, to, gain, vw int }

// distRefine runs pass-based refinement: ranks propose balance-feasible
// best-gain moves for their owned boundary vertices under the alternating
// direction rule, exchange them, and apply a deterministic commit order.
func distRefine(r *mpi.Rank, g *graph.Graph, part []int, k int, o Options) {
	n := g.NumVertices()
	P := r.Size()
	lo, hi := chunk(n, P, r.ID())
	pw := graph.PartWeights(g, part, k)
	totalW := 0
	for _, w := range pw {
		totalW += w
	}
	maxPW := int(o.UBFactor * float64(totalW) / float64(k))
	if maxPW < 1 {
		maxPW = 1
	}

	conn := make([]int, k)
	var touched []int
	for pass := 0; pass < o.RefineIters; pass++ {
		committed := 0
		for dir := 0; dir < 2; dir++ {
			var acct perfmodel.ThreadCost
			var flat []int
			for v := lo; v < hi; v++ {
				pv := part[v]
				adj, wgt := g.Neighbors(v)
				boundary := false
				for i, u := range adj {
					pu := part[u]
					if pu != pv {
						boundary = true
					}
					if conn[pu] == 0 {
						touched = append(touched, pu)
					}
					conn[pu] += wgt[i]
				}
				acct.Ops += float64(len(adj) + 2)
				acct.Rand += float64(len(adj))
				if boundary {
					bestP, bestGain := -1, 0
					for _, p := range touched {
						if p == pv {
							continue
						}
						if dir == 0 && p < pv || dir == 1 && p > pv {
							continue
						}
						if pw[p]+g.VWgt[v] > maxPW {
							continue
						}
						if gain := conn[p] - conn[pv]; gain > bestGain {
							bestP, bestGain = p, gain
						}
					}
					if bestP != -1 && bestGain > 0 {
						flat = append(flat, v, pv, bestP, bestGain, g.VWgt[v])
					}
				}
				for _, p := range touched {
					conn[p] = 0
				}
				touched = touched[:0]
			}
			r.Charge(acct)

			all := r.AllGather(flat)
			var reqs []moveReq
			for _, buf := range all {
				for i := 0; i+4 < len(buf); i += 5 {
					reqs = append(reqs, moveReq{buf[i], buf[i+1], buf[i+2], buf[i+3], buf[i+4]})
				}
			}
			sort.Slice(reqs, func(a, b int) bool {
				if reqs[a].gain != reqs[b].gain {
					return reqs[a].gain > reqs[b].gain
				}
				return reqs[a].v < reqs[b].v
			})
			var commitAcct perfmodel.ThreadCost
			for _, q := range reqs {
				if part[q.v] != q.from {
					continue
				}
				if pw[q.to]+q.vw > maxPW {
					continue
				}
				part[q.v] = q.to
				pw[q.from] -= q.vw
				pw[q.to] += q.vw
				committed++
			}
			commitAcct.Ops = float64(len(reqs) * 6)
			commitAcct.Rand = float64(len(reqs) * 2)
			r.Charge(commitAcct)
		}
		if committed == 0 {
			break
		}
	}
}
