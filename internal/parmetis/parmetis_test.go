package parmetis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpmetis/internal/graph"
	"gpmetis/internal/graph/gen"
	"gpmetis/internal/metis"
	"gpmetis/internal/perfmodel"
)

func machine() *perfmodel.Machine { return perfmodel.Default() }

func TestPartitionEndToEnd(t *testing.T) {
	g, err := gen.Grid2D(40, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, 8, DefaultOptions(), machine())
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckPartition(g, res.Part, 8); err != nil {
		t.Fatal(err)
	}
	if imb := graph.Imbalance(g, res.Part, 8); imb > 1.15 {
		t.Errorf("imbalance = %g", imb)
	}
	if res.EdgeCut > 350 {
		t.Errorf("cut %d too high for a 40x40 grid in 8 parts", res.EdgeCut)
	}
	if res.Levels == 0 {
		t.Error("expected coarsening levels")
	}
	if res.ModeledSeconds() <= 0 {
		t.Error("no modeled time")
	}
}

func TestTimelinePhasesOrdered(t *testing.T) {
	g, err := gen.Delaunay(4000, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, 8, DefaultOptions(), machine())
	if err != nil {
		t.Fatal(err)
	}
	phases := res.Timeline.Phases()
	wantOrder := []string{"coarsen", "initpart", "uncoarsen", "balance"}
	if len(phases) != len(wantOrder) {
		t.Fatalf("got %d phases, want %d", len(phases), len(wantOrder))
	}
	for i, p := range phases {
		if p.Name != wantOrder[i] {
			t.Errorf("phase %d = %q, want %q", i, p.Name, wantOrder[i])
		}
		if p.Seconds < 0 {
			t.Errorf("phase %q has negative duration", p.Name)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// The replicated-state design must make results independent of host
	// goroutine scheduling.
	g, err := gen.Delaunay(3000, 5)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	a, err := Partition(g, 16, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		b, err := Partition(g, 16, o, machine())
		if err != nil {
			t.Fatal(err)
		}
		if b.EdgeCut != a.EdgeCut {
			t.Fatalf("run %d: cut %d != %d", run, b.EdgeCut, a.EdgeCut)
		}
		for v := range a.Part {
			if a.Part[v] != b.Part[v] {
				t.Fatalf("run %d: partition differs at vertex %d", run, v)
			}
		}
		if b.ModeledSeconds() != a.ModeledSeconds() {
			t.Fatalf("run %d: modeled time %g != %g (virtual clocks must not depend on scheduling)",
				run, b.ModeledSeconds(), a.ModeledSeconds())
		}
	}
}

func TestFasterThanSerialButCommBound(t *testing.T) {
	// Fig 5 shape: ParMetis beats serial Metis but trails mt-metis
	// (message passing pays alpha per exchange); both facts should hold
	// in the model on a large enough graph.
	g, err := gen.Delaunay(30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := machine()
	ser, err := metis.Partition(g, 16, metis.DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Partition(g, 16, DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	speedup := ser.ModeledSeconds() / par.ModeledSeconds()
	if speedup <= 1 {
		t.Errorf("ParMetis speedup over Metis = %.2f, want > 1", speedup)
	}
	if speedup > 8.5 {
		t.Errorf("ParMetis speedup %.2f exceeds rank count: model broken", speedup)
	}
}

func TestQualityComparableToSerial(t *testing.T) {
	g, err := gen.Delaunay(8000, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := machine()
	ser, err := metis.Partition(g, 16, metis.DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Partition(g, 16, DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(par.EdgeCut) / float64(ser.EdgeCut)
	if ratio > 1.4 || ratio < 0.6 {
		t.Errorf("edge-cut ratio vs Metis = %.3f", ratio)
	}
}

func TestSingleRankWorks(t *testing.T) {
	g, err := gen.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Procs = 1
	res, err := Partition(g, 4, o, machine())
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckPartition(g, res.Part, 4); err != nil {
		t.Error(err)
	}
}

func TestOptionValidation(t *testing.T) {
	g, err := gen.Grid2D(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	if _, err := Partition(g, 0, o, machine()); err == nil {
		t.Error("k=0 should fail")
	}
	bad := o
	bad.Procs = 0
	if _, err := Partition(g, 2, bad, machine()); err == nil {
		t.Error("0 procs should fail")
	}
	bad = o
	bad.MatchPasses = 0
	if _, err := Partition(g, 2, bad, machine()); err == nil {
		t.Error("0 match passes should fail")
	}
	bad = o
	bad.UBFactor = 0.2
	if _, err := Partition(g, 2, bad, machine()); err == nil {
		t.Error("UBFactor < 1 should fail")
	}
}

// Property: partitions are always valid across random graphs, k, and rank
// counts.
func TestPartitionAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, szRaw, kRaw, pRaw uint8) bool {
		n := 60 + int(szRaw)%150
		k := 2 + int(kRaw)%6
		procs := 1 + int(pRaw)%6
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			if err := b.AddEdge(rng.Intn(v), v, 1+rng.Intn(3)); err != nil {
				return false
			}
		}
		g := b.MustBuild()
		o := DefaultOptions()
		o.Seed = seed
		o.Procs = procs
		res, err := Partition(g, k, o, machine())
		if err != nil {
			t.Logf("Partition: %v", err)
			return false
		}
		return graph.CheckPartition(g, res.Part, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
