// Package mpi is the message-passing substrate the ParMetis-style
// distributed partitioner runs on: ranks are goroutines, messages are
// channel sends, and time is a per-rank virtual clock advanced by an
// alpha-beta network model (see DESIGN.md §1).
//
// Every rank owns a virtual clock. Local computation advances it via
// Charge; a message stamps the sender's clock and the receiver's clock
// becomes max(receiver, senderStamp + alpha + bytes/bandwidth), which is
// the standard LogP-style causal-time simulation. Barrier synchronizes
// all clocks to their max. The result of a Run is therefore a modeled
// parallel runtime that is deterministic regardless of how the host
// schedules the goroutines.
package mpi

import (
	"errors"
	"fmt"
	"sync"

	"gpmetis/internal/fault"
	"gpmetis/internal/perfmodel"
)

// ErrRankFailure marks a job aborted because a rank died (fail-stop MPI
// semantics: the communicator does not survive a member). Test with
// errors.Is.
var ErrRankFailure = errors.New("mpi: rank failure")

// message carries an int payload plus the sender's virtual send time.
type message struct {
	data     []int
	sentAt   float64
	transfer float64
}

// Comm is one communicator over nprocs ranks.
type Comm struct {
	m     *perfmodel.Machine
	size  int
	chans [][]chan message // chans[src][dst]

	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	barrierN    int
	barrierGen  int
	barrierMax  float64

	// Abort state: the first failing rank records its error and closes
	// abortCh; every rank blocked in Send/Recv/Barrier wakes up and
	// unwinds, so a dead rank can never deadlock the survivors.
	abortOnce sync.Once
	abortCh   chan struct{}
	abortErr  error
	aborted   bool // guarded by barrierMu, for the barrier wait loop
}

// abortPanic unwinds a rank's goroutine after the job aborted; Run
// recognizes it and reports the recorded abort error instead of a panic.
type abortPanic struct{}

func (c *Comm) abort(err error) {
	c.abortOnce.Do(func() {
		c.abortErr = err
		c.barrierMu.Lock()
		c.aborted = true
		c.barrierMu.Unlock()
		close(c.abortCh)
		c.barrierCond.Broadcast()
	})
}

// Fail kills the calling rank with err, aborting the whole job: the
// communicator does not survive a member, so every other rank unwinds at
// its next communication call.
func (r *Rank) Fail(err error) {
	r.comm.abort(err)
	panic(abortPanic{})
}

// Rank is one process's handle to the communicator. Each Rank is used
// only by its own goroutine.
type Rank struct {
	comm  *Comm
	id    int
	clock float64
}

// msgOverheadBytes models per-message envelope/header cost.
const msgOverheadBytes = 64

// intBytes is the wire size of one int payload element (the partitioners
// exchange 32-bit vertex ids and weights).
const intBytes = 4

// Run executes body on nprocs ranks and returns the modeled parallel
// runtime: the maximum final virtual clock across ranks. A panic in any
// rank is recovered and returned as an error.
func Run(m *perfmodel.Machine, nprocs int, body func(r *Rank)) (float64, error) {
	return runRanks(m, nprocs, nil, body)
}

// RunInjected is Run under fault injection: before executing body, each
// rank p evaluates the fault.SiteMPIRank site with 1-based sequence p+1
// (so at=2 deterministically kills rank 1, and p=0.1 gives each rank an
// independent seeded coin). A killed rank fails the whole job with an
// error wrapping ErrRankFailure — fail-stop semantics, no recovery. A nil
// injector makes RunInjected identical to Run.
func RunInjected(m *perfmodel.Machine, nprocs int, inj *fault.Injector, body func(r *Rank)) (float64, error) {
	return runRanks(m, nprocs, inj, body)
}

func runRanks(m *perfmodel.Machine, nprocs int, inj *fault.Injector, body func(r *Rank)) (float64, error) {
	if nprocs <= 0 {
		return 0, fmt.Errorf("mpi: nprocs must be positive, got %d", nprocs)
	}
	c := &Comm{m: m, size: nprocs, abortCh: make(chan struct{})}
	c.barrierCond = sync.NewCond(&c.barrierMu)
	c.chans = make([][]chan message, nprocs)
	for s := range c.chans {
		c.chans[s] = make([]chan message, nprocs)
		for d := range c.chans[s] {
			// Buffered so simple exchange patterns cannot deadlock.
			c.chans[s][d] = make(chan message, 4)
		}
	}
	// Rank-death coins are flipped serially before any goroutine starts,
	// so when several ranks are doomed the recorded failure is always the
	// lowest-numbered one — the reported error is deterministic even
	// though goroutine scheduling is not.
	doomed := make([]error, nprocs)
	for p := 0; p < nprocs; p++ {
		if fe := inj.CheckAt(fault.SiteMPIRank, int64(p+1)); fe != nil {
			doomed[p] = fmt.Errorf("%w: rank %d died: %w", ErrRankFailure, p, fe)
		}
	}
	for p := 0; p < nprocs; p++ {
		if doomed[p] != nil {
			c.abort(doomed[p])
			break
		}
	}
	clocks := make([]float64, nprocs)
	errs := make([]error, nprocs)
	var wg sync.WaitGroup
	for p := 0; p < nprocs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortPanic); ok {
						return // job-level abort, reported via abortErr
					}
					errs[p] = fmt.Errorf("mpi: rank %d panicked: %v", p, r)
				}
			}()
			r := &Rank{comm: c, id: p}
			if doomed[p] != nil {
				panic(abortPanic{})
			}
			body(r)
			clocks[p] = r.clock
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	if c.abortErr != nil {
		return 0, c.abortErr
	}
	var max float64
	for _, t := range clocks {
		if t > max {
			max = t
		}
	}
	return max, nil
}

// ID returns the rank number in [0, Size()).
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the communicator.
func (r *Rank) Size() int { return r.comm.size }

// Clock returns the rank's current virtual time in seconds.
func (r *Rank) Clock() float64 { return r.clock }

// Charge advances the rank's clock by the modeled duration of local work.
func (r *Rank) Charge(c perfmodel.ThreadCost) {
	r.clock += c.Seconds(r.comm.m)
}

// ChargeSeconds advances the rank's clock directly.
func (r *Rank) ChargeSeconds(s float64) {
	if s > 0 {
		r.clock += s
	}
}

// Send transmits data to rank dst. The payload slice is copied, so the
// caller may reuse it. Send is asynchronous up to the channel buffer,
// like a small-message MPI_Send.
func (r *Rank) Send(dst int, data []int) {
	if dst < 0 || dst >= r.comm.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", dst))
	}
	bytes := float64(len(data)*intBytes + msgOverheadBytes)
	cp := make([]int, len(data))
	copy(cp, data)
	// The sender pays the injection overhead (alpha); the wire time is
	// carried on the message for the receiver's causal clock.
	r.clock += r.comm.m.Net.LatencySec
	select {
	case r.comm.chans[r.id][dst] <- message{
		data:     cp,
		sentAt:   r.clock,
		transfer: float64(bytes) / r.comm.m.Net.BytesPerSec,
	}:
	case <-r.comm.abortCh:
		panic(abortPanic{})
	}
}

// Recv blocks for the next message from rank src and returns its payload,
// advancing the virtual clock causally.
func (r *Rank) Recv(src int) []int {
	if src < 0 || src >= r.comm.size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d", src))
	}
	var msg message
	select {
	case msg = <-r.comm.chans[src][r.id]:
	case <-r.comm.abortCh:
		panic(abortPanic{})
	}
	arrive := msg.sentAt + msg.transfer
	if arrive > r.clock {
		r.clock = arrive
	}
	return msg.data
}

// Barrier blocks until all ranks arrive and synchronizes every clock to
// the maximum, plus one network latency for the release.
func (r *Rank) Barrier() {
	c := r.comm
	c.barrierMu.Lock()
	if c.aborted {
		c.barrierMu.Unlock()
		panic(abortPanic{})
	}
	gen := c.barrierGen
	if r.clock > c.barrierMax {
		c.barrierMax = r.clock
	}
	c.barrierN++
	if c.barrierN == c.size {
		c.barrierN = 0
		c.barrierGen++
		c.barrierMax += c.m.Net.LatencySec
		c.barrierCond.Broadcast()
	} else {
		for gen == c.barrierGen && !c.aborted {
			c.barrierCond.Wait()
		}
		if c.aborted {
			c.barrierMu.Unlock()
			panic(abortPanic{})
		}
	}
	r.clock = c.barrierMax
	c.barrierMu.Unlock()
}

// AllToAll sends out[d] to every rank d and returns in[s] received from
// every rank s (out[r.ID()] is delivered to itself without network cost).
func (r *Rank) AllToAll(out [][]int) [][]int {
	if len(out) != r.comm.size {
		panic(fmt.Sprintf("mpi: AllToAll needs %d buffers, got %d", r.comm.size, len(out)))
	}
	in := make([][]int, r.comm.size)
	// Round-robin pairing keeps at most one message in flight per pair.
	for round := 1; round < r.comm.size; round++ {
		dst := (r.id + round) % r.comm.size
		src := (r.id - round + r.comm.size) % r.comm.size
		r.Send(dst, out[dst])
		in[src] = r.Recv(src)
	}
	self := make([]int, len(out[r.id]))
	copy(self, out[r.id])
	in[r.id] = self
	r.Barrier()
	return in
}

// AllGather returns every rank's data slice, indexed by rank.
func (r *Rank) AllGather(data []int) [][]int {
	out := make([][]int, r.comm.size)
	for d := range out {
		out[d] = data
	}
	return r.AllToAll(out)
}

// AllReduceSum returns the sum of x across all ranks.
func (r *Rank) AllReduceSum(x int) int {
	parts := r.AllGather([]int{x})
	var s int
	for _, p := range parts {
		s += p[0]
	}
	return s
}

// AllReduceMax returns the maximum of x across all ranks.
func (r *Rank) AllReduceMax(x int) int {
	parts := r.AllGather([]int{x})
	m := parts[0][0]
	for _, p := range parts {
		if p[0] > m {
			m = p[0]
		}
	}
	return m
}

// Bcast distributes data from root to all ranks and returns each rank's
// copy.
func (r *Rank) Bcast(root int, data []int) []int {
	if root < 0 || root >= r.comm.size {
		panic(fmt.Sprintf("mpi: Bcast from invalid root %d", root))
	}
	if r.comm.size == 1 {
		cp := make([]int, len(data))
		copy(cp, data)
		return cp
	}
	if r.id == root {
		for d := 0; d < r.comm.size; d++ {
			if d != root {
				r.Send(d, data)
			}
		}
		r.Barrier()
		cp := make([]int, len(data))
		copy(cp, data)
		return cp
	}
	got := r.Recv(root)
	r.Barrier()
	return got
}
