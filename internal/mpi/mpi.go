// Package mpi is the message-passing substrate the ParMetis-style
// distributed partitioner runs on: ranks are goroutines, messages are
// channel sends, and time is a per-rank virtual clock advanced by an
// alpha-beta network model (see DESIGN.md §1).
//
// Every rank owns a virtual clock. Local computation advances it via
// Charge; a message stamps the sender's clock and the receiver's clock
// becomes max(receiver, senderStamp + alpha + bytes/bandwidth), which is
// the standard LogP-style causal-time simulation. Barrier synchronizes
// all clocks to their max. The result of a Run is therefore a modeled
// parallel runtime that is deterministic regardless of how the host
// schedules the goroutines.
package mpi

import (
	"fmt"
	"sync"

	"gpmetis/internal/perfmodel"
)

// message carries an int payload plus the sender's virtual send time.
type message struct {
	data     []int
	sentAt   float64
	transfer float64
}

// Comm is one communicator over nprocs ranks.
type Comm struct {
	m     *perfmodel.Machine
	size  int
	chans [][]chan message // chans[src][dst]

	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	barrierN    int
	barrierGen  int
	barrierMax  float64
}

// Rank is one process's handle to the communicator. Each Rank is used
// only by its own goroutine.
type Rank struct {
	comm  *Comm
	id    int
	clock float64
}

// msgOverheadBytes models per-message envelope/header cost.
const msgOverheadBytes = 64

// intBytes is the wire size of one int payload element (the partitioners
// exchange 32-bit vertex ids and weights).
const intBytes = 4

// Run executes body on nprocs ranks and returns the modeled parallel
// runtime: the maximum final virtual clock across ranks. A panic in any
// rank is recovered and returned as an error.
func Run(m *perfmodel.Machine, nprocs int, body func(r *Rank)) (float64, error) {
	if nprocs <= 0 {
		return 0, fmt.Errorf("mpi: nprocs must be positive, got %d", nprocs)
	}
	c := &Comm{m: m, size: nprocs}
	c.barrierCond = sync.NewCond(&c.barrierMu)
	c.chans = make([][]chan message, nprocs)
	for s := range c.chans {
		c.chans[s] = make([]chan message, nprocs)
		for d := range c.chans[s] {
			// Buffered so simple exchange patterns cannot deadlock.
			c.chans[s][d] = make(chan message, 4)
		}
	}
	clocks := make([]float64, nprocs)
	errs := make([]error, nprocs)
	var wg sync.WaitGroup
	for p := 0; p < nprocs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[p] = fmt.Errorf("mpi: rank %d panicked: %v", p, r)
				}
			}()
			r := &Rank{comm: c, id: p}
			body(r)
			clocks[p] = r.clock
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	var max float64
	for _, t := range clocks {
		if t > max {
			max = t
		}
	}
	return max, nil
}

// ID returns the rank number in [0, Size()).
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the communicator.
func (r *Rank) Size() int { return r.comm.size }

// Clock returns the rank's current virtual time in seconds.
func (r *Rank) Clock() float64 { return r.clock }

// Charge advances the rank's clock by the modeled duration of local work.
func (r *Rank) Charge(c perfmodel.ThreadCost) {
	r.clock += c.Seconds(r.comm.m)
}

// ChargeSeconds advances the rank's clock directly.
func (r *Rank) ChargeSeconds(s float64) {
	if s > 0 {
		r.clock += s
	}
}

// Send transmits data to rank dst. The payload slice is copied, so the
// caller may reuse it. Send is asynchronous up to the channel buffer,
// like a small-message MPI_Send.
func (r *Rank) Send(dst int, data []int) {
	if dst < 0 || dst >= r.comm.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", dst))
	}
	bytes := float64(len(data)*intBytes + msgOverheadBytes)
	cp := make([]int, len(data))
	copy(cp, data)
	// The sender pays the injection overhead (alpha); the wire time is
	// carried on the message for the receiver's causal clock.
	r.clock += r.comm.m.Net.LatencySec
	r.comm.chans[r.id][dst] <- message{
		data:     cp,
		sentAt:   r.clock,
		transfer: float64(bytes) / r.comm.m.Net.BytesPerSec,
	}
}

// Recv blocks for the next message from rank src and returns its payload,
// advancing the virtual clock causally.
func (r *Rank) Recv(src int) []int {
	if src < 0 || src >= r.comm.size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d", src))
	}
	msg := <-r.comm.chans[src][r.id]
	arrive := msg.sentAt + msg.transfer
	if arrive > r.clock {
		r.clock = arrive
	}
	return msg.data
}

// Barrier blocks until all ranks arrive and synchronizes every clock to
// the maximum, plus one network latency for the release.
func (r *Rank) Barrier() {
	c := r.comm
	c.barrierMu.Lock()
	gen := c.barrierGen
	if r.clock > c.barrierMax {
		c.barrierMax = r.clock
	}
	c.barrierN++
	if c.barrierN == c.size {
		c.barrierN = 0
		c.barrierGen++
		c.barrierMax += c.m.Net.LatencySec
		c.barrierCond.Broadcast()
	} else {
		for gen == c.barrierGen {
			c.barrierCond.Wait()
		}
	}
	r.clock = c.barrierMax
	c.barrierMu.Unlock()
}

// AllToAll sends out[d] to every rank d and returns in[s] received from
// every rank s (out[r.ID()] is delivered to itself without network cost).
func (r *Rank) AllToAll(out [][]int) [][]int {
	if len(out) != r.comm.size {
		panic(fmt.Sprintf("mpi: AllToAll needs %d buffers, got %d", r.comm.size, len(out)))
	}
	in := make([][]int, r.comm.size)
	// Round-robin pairing keeps at most one message in flight per pair.
	for round := 1; round < r.comm.size; round++ {
		dst := (r.id + round) % r.comm.size
		src := (r.id - round + r.comm.size) % r.comm.size
		r.Send(dst, out[dst])
		in[src] = r.Recv(src)
	}
	self := make([]int, len(out[r.id]))
	copy(self, out[r.id])
	in[r.id] = self
	r.Barrier()
	return in
}

// AllGather returns every rank's data slice, indexed by rank.
func (r *Rank) AllGather(data []int) [][]int {
	out := make([][]int, r.comm.size)
	for d := range out {
		out[d] = data
	}
	return r.AllToAll(out)
}

// AllReduceSum returns the sum of x across all ranks.
func (r *Rank) AllReduceSum(x int) int {
	parts := r.AllGather([]int{x})
	var s int
	for _, p := range parts {
		s += p[0]
	}
	return s
}

// AllReduceMax returns the maximum of x across all ranks.
func (r *Rank) AllReduceMax(x int) int {
	parts := r.AllGather([]int{x})
	m := parts[0][0]
	for _, p := range parts {
		if p[0] > m {
			m = p[0]
		}
	}
	return m
}

// Bcast distributes data from root to all ranks and returns each rank's
// copy.
func (r *Rank) Bcast(root int, data []int) []int {
	if root < 0 || root >= r.comm.size {
		panic(fmt.Sprintf("mpi: Bcast from invalid root %d", root))
	}
	if r.comm.size == 1 {
		cp := make([]int, len(data))
		copy(cp, data)
		return cp
	}
	if r.id == root {
		for d := 0; d < r.comm.size; d++ {
			if d != root {
				r.Send(d, data)
			}
		}
		r.Barrier()
		cp := make([]int, len(data))
		copy(cp, data)
		return cp
	}
	got := r.Recv(root)
	r.Barrier()
	return got
}
