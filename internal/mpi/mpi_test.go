package mpi

import (
	"sync"
	"testing"

	"gpmetis/internal/perfmodel"
)

func run(t *testing.T, nprocs int, body func(r *Rank)) float64 {
	t.Helper()
	sec, err := Run(perfmodel.Default(), nprocs, body)
	if err != nil {
		t.Fatal(err)
	}
	return sec
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(perfmodel.Default(), 0, func(r *Rank) {}); err == nil {
		t.Error("nprocs=0 should fail")
	}
	if _, err := Run(perfmodel.Default(), 2, func(r *Rank) { panic("boom") }); err == nil {
		t.Error("rank panic should surface as error")
	}
}

func TestSendRecv(t *testing.T) {
	var got []int
	sec := run(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, []int{10, 20, 30})
		} else {
			got = r.Recv(0)
		}
	})
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Errorf("payload = %v", got)
	}
	if sec <= 0 {
		t.Error("message passing should advance the virtual clock")
	}
}

func TestSendCopiesPayload(t *testing.T) {
	run(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			buf := []int{1, 2, 3}
			r.Send(1, buf)
			buf[0] = 99 // must not affect the receiver
		} else {
			got := r.Recv(0)
			if got[0] != 1 {
				t.Errorf("payload mutated after Send: %v", got)
			}
		}
	})
}

func TestCausalClock(t *testing.T) {
	// Receiver's clock must be at least sender's send time + wire time,
	// even if the receiver did no local work.
	var recvClock float64
	m := perfmodel.Default()
	_, err := Run(m, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.ChargeSeconds(1.0) // sender is busy for 1s first
			r.Send(1, make([]int, 1000))
		} else {
			r.Recv(0)
			recvClock = r.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wire := m.Net.LatencySec + float64(1000*intBytes+msgOverheadBytes)/m.Net.BytesPerSec
	if recvClock < 1.0+wire-1e-12 {
		t.Errorf("receiver clock %g ignores causality (want >= %g)", recvClock, 1.0+wire)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	const P = 4
	clocks := make([]float64, P)
	run(t, P, func(r *Rank) {
		r.ChargeSeconds(float64(r.ID())) // skewed work: 0..3 seconds
		r.Barrier()
		clocks[r.ID()] = r.Clock()
	})
	for p := 1; p < P; p++ {
		if clocks[p] != clocks[0] {
			t.Fatalf("clocks diverge after barrier: %v", clocks)
		}
	}
	if clocks[0] < 3.0 {
		t.Errorf("barrier clock %g must reach the slowest rank (3s)", clocks[0])
	}
}

func TestChargeAccumulates(t *testing.T) {
	run(t, 1, func(r *Rank) {
		r.Charge(perfmodel.ThreadCost{Ops: 1e9})
		if r.Clock() <= 0 {
			t.Error("Charge should advance the clock")
		}
		before := r.Clock()
		r.ChargeSeconds(-5) // negative charges are ignored
		if r.Clock() != before {
			t.Error("negative ChargeSeconds must be ignored")
		}
	})
}

func TestAllToAll(t *testing.T) {
	const P = 4
	var mu sync.Mutex
	results := make(map[int][][]int)
	run(t, P, func(r *Rank) {
		out := make([][]int, P)
		for d := 0; d < P; d++ {
			out[d] = []int{r.ID()*100 + d}
		}
		in := r.AllToAll(out)
		mu.Lock()
		results[r.ID()] = in
		mu.Unlock()
	})
	for p := 0; p < P; p++ {
		in := results[p]
		if len(in) != P {
			t.Fatalf("rank %d received %d buffers", p, len(in))
		}
		for s := 0; s < P; s++ {
			if len(in[s]) != 1 || in[s][0] != s*100+p {
				t.Errorf("rank %d from %d: got %v, want [%d]", p, s, in[s], s*100+p)
			}
		}
	}
}

func TestAllGatherAndReduce(t *testing.T) {
	const P = 5
	run(t, P, func(r *Rank) {
		all := r.AllGather([]int{r.ID() + 1})
		for s := 0; s < P; s++ {
			if all[s][0] != s+1 {
				t.Errorf("AllGather[%d] = %v", s, all[s])
			}
		}
		if sum := r.AllReduceSum(r.ID() + 1); sum != 15 {
			t.Errorf("AllReduceSum = %d, want 15", sum)
		}
		if max := r.AllReduceMax(r.ID()); max != P-1 {
			t.Errorf("AllReduceMax = %d, want %d", max, P-1)
		}
	})
}

func TestBcast(t *testing.T) {
	const P = 3
	run(t, P, func(r *Rank) {
		var data []int
		if r.ID() == 1 {
			data = []int{7, 8, 9}
		}
		got := r.Bcast(1, data)
		if len(got) != 3 || got[0] != 7 || got[2] != 9 {
			t.Errorf("rank %d Bcast got %v", r.ID(), got)
		}
	})
	// Single-rank broadcast must still copy.
	run(t, 1, func(r *Rank) {
		src := []int{5}
		got := r.Bcast(0, src)
		src[0] = 6
		if got[0] != 5 {
			t.Error("Bcast must copy even for size 1")
		}
	})
}

func TestRepeatedCollectivesDoNotDeadlock(t *testing.T) {
	const P = 6
	sec := run(t, P, func(r *Rank) {
		for i := 0; i < 20; i++ {
			out := make([][]int, P)
			for d := range out {
				out[d] = []int{i}
			}
			in := r.AllToAll(out)
			for _, buf := range in {
				if buf[0] != i {
					t.Errorf("round %d corrupted: %v", i, buf)
				}
			}
		}
	})
	if sec <= 0 {
		t.Error("collectives must cost time")
	}
}

func TestMoreRanksMoreCommCost(t *testing.T) {
	// With fixed per-rank payload, an all-to-all across more ranks costs
	// more virtual time (more messages, same alpha each).
	cost := func(p int) float64 {
		sec, err := Run(perfmodel.Default(), p, func(r *Rank) {
			out := make([][]int, p)
			for d := range out {
				out[d] = make([]int, 100)
			}
			r.AllToAll(out)
		})
		if err != nil {
			t.Fatal(err)
		}
		return sec
	}
	if c4, c16 := cost(4), cost(16); c16 <= c4 {
		t.Errorf("all-to-all over 16 ranks (%g) should cost more than over 4 (%g)", c16, c4)
	}
}

func TestInvalidPeersPanic(t *testing.T) {
	run(t, 1, func(r *Rank) {
		for name, f := range map[string]func(){
			"send":  func() { r.Send(5, nil) },
			"recv":  func() { r.Recv(-1) },
			"bcast": func() { r.Bcast(9, nil) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s with invalid rank should panic", name)
					}
				}()
				f()
			}()
		}
	})
}
