package mpi

import (
	"errors"
	"testing"

	"gpmetis/internal/fault"
	"gpmetis/internal/perfmodel"
)

// killRank builds an injector whose mpi.rank site fires on exactly the
// given 1-based evaluation, i.e. kills rank at-1 at launch.
func killRank(at int64) *fault.Injector {
	inj := fault.New(7)
	inj.Arm(fault.SiteMPIRank, fault.Rule{At: at})
	return inj
}

// TestRunInjectedNilMatchesRun pins the zero-overhead contract: a nil
// injector must reproduce Run exactly, clock included.
func TestRunInjectedNilMatchesRun(t *testing.T) {
	body := func(r *Rank) {
		out := make([][]int, r.Size())
		for p := range out {
			out[p] = []int{r.ID(), p}
		}
		r.AllToAll(out)
		r.Barrier()
	}
	want, err := Run(perfmodel.Default(), 4, body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunInjected(perfmodel.Default(), 4, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("nil injector changed the clock: %v vs %v", got, want)
	}
}

// TestRankFailureAbortsJob checks fail-stop semantics: one dead rank
// aborts the whole job with a typed error, and no survivor deadlocks in
// Send, Recv, or Barrier while waiting on the corpse.
func TestRankFailureAbortsJob(t *testing.T) {
	_, err := RunInjected(perfmodel.Default(), 4, killRank(2), func(r *Rank) {
		// Ring exchange plus a barrier: every communication pattern that
		// could block forever on the dead rank 1.
		next, prev := (r.ID()+1)%4, (r.ID()+3)%4
		r.Send(next, []int{r.ID()})
		r.Recv(prev)
		r.Barrier()
	})
	if !errors.Is(err, ErrRankFailure) {
		t.Fatalf("want ErrRankFailure, got %v", err)
	}
}

// TestRankFailureDeterministic runs the same scenario twice and expects
// the identical error, including which rank died.
func TestRankFailureDeterministic(t *testing.T) {
	die := func() error {
		inj := fault.New(42)
		inj.Arm(fault.SiteMPIRank, fault.Rule{P: 0.5})
		_, err := RunInjected(perfmodel.Default(), 8, inj, func(r *Rank) { r.Barrier() })
		return err
	}
	a, b := die(), die()
	if a == nil || b == nil {
		t.Fatalf("p=0.5 over 8 ranks with seed 42 should kill at least one rank: %v, %v", a, b)
	}
	if a.Error() != b.Error() {
		t.Errorf("rank failure not deterministic:\n  %v\n  %v", a, b)
	}
}

// TestSurvivorsUnwindFromCollectives floods the communicator with work
// before the failure is noticed, so the abort path has to interrupt ranks
// already parked inside collectives.
func TestSurvivorsUnwindFromCollectives(t *testing.T) {
	_, err := RunInjected(perfmodel.Default(), 6, killRank(6), func(r *Rank) {
		for i := 0; i < 4; i++ {
			r.AllGather([]int{r.ID()})
			r.AllReduceSum(1)
		}
	})
	if !errors.Is(err, ErrRankFailure) {
		t.Fatalf("want ErrRankFailure, got %v", err)
	}
}
