package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpmetis"
	"gpmetis/internal/obs"
	"gpmetis/internal/server"
)

// Defaults for the cluster tier's knobs.
const (
	// DefaultProbeInterval is how often the background prober checks every
	// peer's /healthz.
	DefaultProbeInterval = time.Second
	// DefaultStrikeThreshold is how many consecutive failures (probes or
	// request-path connection errors) mark a peer down.
	DefaultStrikeThreshold = 2
	// DefaultReplicas is the replication factor: each completed result
	// lives on its ring owner plus the next R−1 distinct successors.
	DefaultReplicas = 2
	// DefaultAntiEntropyInterval is the cadence of the background digest
	// summary exchange that repairs replica divergence.
	DefaultAntiEntropyInterval = 5 * time.Second
)

// Config wires one ring node.
type Config struct {
	// NodeID is this node's identity; it must appear in Peers.
	NodeID int
	// Peers is the full member list (see LoadPeersFile). Every node of the
	// ring must load the same list.
	Peers []Peer
	// VNodes is the per-peer virtual node count; 0 means DefaultVNodes.
	VNodes int
	// Server is the local serving subsystem this node routes into.
	Server *server.Server
	// Machine supplies the α+βn network parameters inter-node traffic is
	// charged against; nil means gpmetis.DefaultMachine().
	Machine *gpmetis.Machine
	// ProbeInterval is the health-probe cadence (0 means
	// DefaultProbeInterval; < 0 disables the prober, for tests that drive
	// health by hand).
	ProbeInterval time.Duration
	// StrikeThreshold is how many consecutive failures mark a peer down
	// (0 means DefaultStrikeThreshold).
	StrikeThreshold int
	// Logger receives the node's operational logs; nil means a text
	// handler on os.Stderr.
	Logger *slog.Logger
	// Client performs forwards, peeks, and proxies; nil means a client
	// with a 15s timeout.
	Client *http.Client
	// Replicas is the replication factor: completed results are pushed
	// asynchronously to the next Replicas−1 live ring successors. 0 means
	// DefaultReplicas; 1 disables replication.
	Replicas int
	// AntiEntropyInterval is the cadence of the background repair sweep
	// (0 means DefaultAntiEntropyInterval; < 0 disables the loop, for
	// tests that call AntiEntropyNow by hand).
	AntiEntropyInterval time.Duration
	// HintDir, when non-empty, persists handoff hints as one JSONL file
	// per peer, so hints survive a restart of the hinting node.
	HintDir string
	// OnDecommission, when non-nil, is invoked (once, asynchronously)
	// after POST /admin/decommission has pushed this node's cache to its
	// new owners and announced departure — the daemon hooks its graceful
	// drain-and-exit path here.
	OnDecommission func()
}

// Node is one member of the ring: it wraps the local server's HTTP
// handler, owning every submission whose digest hashes to it and
// routing the rest — peek the owner's cache first, forward on a miss,
// fail over to the next live ring successor when the owner is down.
// All inter-node traffic is charged against the modeled network.
type Node struct {
	cfg    Config
	self   Peer
	srv    *server.Server
	inner  http.Handler
	net    *NetModel
	log    *slog.Logger
	client *http.Client
	probe  *http.Client

	// ringMu guards the mutable membership view: the effective ring,
	// the full configured peer list (departed members included), the
	// departure marks, and the health map's structure (each entry has
	// its own lock). Membership changes — a peers.json reload, a leave
	// or join announcement — rebuild the ring under the write lock.
	ringMu   sync.RWMutex
	ring     *Ring
	peersAll []Peer
	departed map[int]bool
	health   map[int]*nodeHealth // keyed by peer ID; no entry for self

	// forwarded remembers where each forwarded job lives — and the trace
	// context its forward carried — so status, trace, profile, and cancel
	// requests follow it transparently and GET /jobs/{id}/trace can
	// stitch the remote spans under the entry node's forward span.
	mu        sync.Mutex
	forwarded map[string]fwdInfo // job ID -> owning peer + trace context

	hints *hintTable
	repl  chan replTask

	// spans holds background-round traces (replication, handoff, repair,
	// decommission) for GET /internal/trace/{trace_id}; rpc aggregates
	// per-peer × per-RPC-type real-wall latency and errors; spanSeq mints
	// node-unique cluster-side span ids.
	spans   *obs.SpanStore
	rpc     *rpcMetrics
	spanSeq atomic.Int64

	forwards      atomic.Int64
	peekHits      atomic.Int64
	peekMisses    atomic.Int64
	failovers     atomic.Int64
	replicaPushes atomic.Int64
	replicaStores atomic.Int64
	replicaHits   atomic.Int64
	handoffHinted atomic.Int64
	handoffDrain  atomic.Int64
	repairPushed  atomic.Int64
	repairPulled  atomic.Int64

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds the node, installs its status snapshot on the server
// (/healthz, /admin/status, gpmetisd_cluster_*), and starts the health
// prober.
func New(cfg Config) (*Node, error) {
	if cfg.Server == nil {
		return nil, fmt.Errorf("cluster: Config.Server is required")
	}
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	var self Peer
	found := false
	for _, p := range ring.Peers() {
		if p.ID == cfg.NodeID {
			self, found = p, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: node id %d not in the peer list", cfg.NodeID)
	}
	if cfg.StrikeThreshold == 0 {
		cfg.StrikeThreshold = DefaultStrikeThreshold
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.AntiEntropyInterval == 0 {
		cfg.AntiEntropyInterval = DefaultAntiEntropyInterval
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NewLogger(os.Stderr, obs.LogText, slog.LevelInfo)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 15 * time.Second}
	}
	n := &Node{
		cfg:       cfg,
		self:      self,
		ring:      ring,
		peersAll:  ring.Peers(),
		departed:  map[int]bool{},
		srv:       cfg.Server,
		net:       NewNetModel(cfg.Machine),
		log:       cfg.Logger.With("node_id", self.ID),
		client:    cfg.Client,
		probe:     &http.Client{Timeout: 2 * time.Second},
		health:    map[int]*nodeHealth{},
		forwarded: map[string]fwdInfo{},
		hints:     newHintTable(cfg.HintDir),
		repl:      make(chan replTask, 256),
		spans:     obs.NewSpanStore(0),
		rpc:       newRPCMetrics(),
		stop:      make(chan struct{}),
	}
	for _, p := range ring.Peers() {
		if p.ID != self.ID {
			n.health[p.ID] = newNodeHealth()
			// Eager declaration: every (peer, rpc-type) series exists on a
			// fresh /metrics scrape, not after the first call of its kind.
			for _, rpc := range rpcTypes {
				n.rpc.declare(p.ID, rpc)
			}
		}
	}
	if err := n.hints.load(); err != nil {
		n.log.Warn("hint journal load failed; starting with empty hints", "error", err.Error())
	}
	n.srv.SetNodeID(fmt.Sprintf("%d", self.ID))
	n.srv.SetClusterStatus(n.Status)
	n.srv.SetPromExtra(n.rpc.snapshot)
	if cfg.ProbeInterval > 0 {
		n.wg.Add(1)
		go n.probeLoop()
	}
	if cfg.Replicas > 1 {
		n.srv.SetResultHook(n.enqueueReplication)
		n.wg.Add(1)
		go n.replicateLoop()
		if cfg.AntiEntropyInterval > 0 {
			n.wg.Add(1)
			go n.antiEntropyLoop()
		}
	}
	return n, nil
}

// Close stops every background goroutine the node owns — the health
// prober, the replicator, the anti-entropy sweep, and any in-flight
// hint drains — and uninstalls the server hooks. The wrapped handler
// keeps serving (the server owns its own shutdown); routing continues
// with frozen health.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		n.srv.SetResultHook(nil)
		n.srv.SetPromExtra(nil)
		close(n.stop)
		n.wg.Wait()
	})
}

// Ring returns the node's current effective ring (departed members
// excluded), for tests and tooling.
func (n *Node) Ring() *Ring { return n.currentRing() }

// currentRing snapshots the effective ring under the membership lock.
func (n *Node) currentRing() *Ring {
	n.ringMu.RLock()
	defer n.ringMu.RUnlock()
	return n.ring
}

// peerHealth returns the health entry for a peer ID, nil for self or
// unknown peers.
func (n *Node) peerHealth(id int) *nodeHealth {
	n.ringMu.RLock()
	defer n.ringMu.RUnlock()
	return n.health[id]
}

// otherPeers snapshots the configured members other than self that have
// not announced departure — the probe, replication, and repair targets.
func (n *Node) otherPeers() []Peer {
	n.ringMu.RLock()
	defer n.ringMu.RUnlock()
	out := make([]Peer, 0, len(n.peersAll))
	for _, p := range n.peersAll {
		if p.ID != n.self.ID && !n.departed[p.ID] {
			out = append(out, p)
		}
	}
	return out
}

// Status snapshots the node for the wire — the callback behind the
// server's /healthz, ops view, and cluster metric series.
func (n *Node) Status() *server.ClusterStatus {
	cs := &server.ClusterStatus{
		NodeID:            n.self.ID,
		Addr:              n.self.Addr,
		Forwards:          n.forwards.Load(),
		PeekHits:          n.peekHits.Load(),
		PeekMisses:        n.peekMisses.Load(),
		Failovers:         n.failovers.Load(),
		NetModeledSeconds: n.net.Seconds(),
		NetMessages:       n.net.Messages(),
		Replicas:          n.cfg.Replicas,
		ReplicaPushes:     n.replicaPushes.Load(),
		ReplicaStores:     n.replicaStores.Load(),
		ReplicaHits:       n.replicaHits.Load(),
		HandoffHinted:     n.handoffHinted.Load(),
		HandoffDrained:    n.handoffDrain.Load(),
		HintsOutstanding:  n.hints.outstanding(),
		RepairPushed:      n.repairPushed.Load(),
		RepairPulled:      n.repairPulled.Load(),
	}
	n.ringMu.RLock()
	cs.VNodes = n.ring.VNodes()
	for _, p := range n.peersAll {
		ps := server.ClusterPeerStatus{
			ID: p.ID, Addr: p.Addr, Self: p.ID == n.self.ID,
			State: NodeUp, Left: n.departed[p.ID],
		}
		if h := n.health[p.ID]; h != nil {
			ps.State, ps.Strikes, ps.Downs = h.snapshot()
		}
		cs.Peers = append(cs.Peers, ps)
	}
	n.ringMu.RUnlock()
	return cs
}

// Handler wraps the server's HTTP API with the ring's routing layer:
//
//	GET  /internal/cache/{digest}  cross-node cache peek (200 result, 404)
//	PUT  /internal/cache/{digest}  replica store (replication, handoff, repair)
//	POST /internal/cache/summary   anti-entropy digest-summary exchange
//	GET  /internal/trace/{trace_id} this node's spans under a trace (stitching)
//	POST /internal/ring/leave      a member announced its departure
//	POST /internal/ring/join       a departed member announced its return
//	GET  /admin/cluster/status     federated fleet view (HTML; .json for data)
//	POST /admin/decommission       retire this node: push cache, announce leave
//	POST /admin/rejoin             announce return and run catch-up repair
//	POST /jobs                     route by digest: local, peek, forward
//	GET/DELETE /jobs/{id}[...]     proxied to the owner for forwarded jobs
//	                               (a forwarded job's /trace is stitched)
//
// Everything else passes straight through to inner.
func (n *Node) Handler(inner http.Handler) http.Handler {
	n.inner = inner
	mux := http.NewServeMux()
	mux.HandleFunc("GET /internal/cache/{digest}", n.handlePeek)
	mux.HandleFunc("PUT /internal/cache/{digest}", n.handleReplicaPut)
	mux.HandleFunc("POST /internal/cache/summary", n.handleSummary)
	mux.HandleFunc("GET /internal/trace/{trace_id}", n.handleTraceFetch)
	mux.HandleFunc("GET /admin/cluster/status", n.handleFleetHTML)
	mux.HandleFunc("GET /admin/cluster/status.json", n.handleFleetJSON)
	mux.HandleFunc("POST /internal/ring/leave", n.handleLeave)
	mux.HandleFunc("POST /internal/ring/join", n.handleJoin)
	mux.HandleFunc("POST /admin/decommission", n.handleDecommission)
	mux.HandleFunc("POST /admin/rejoin", n.handleRejoin)
	mux.HandleFunc("POST /jobs", n.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", n.proxyOrLocal)
	mux.HandleFunc("DELETE /jobs/{id}", n.proxyOrLocal)
	mux.HandleFunc("GET /jobs/{id}/trace", n.proxyOrLocal)
	mux.HandleFunc("GET /jobs/{id}/profile", n.proxyOrLocal)
	mux.Handle("/", inner)
	return mux
}

// handlePeek answers a peer's cache probe from the local cache, without
// touching hit/miss accounting (Cache.Peek): the requester pays the
// modeled network cost and keeps the peek statistics.
func (n *Node) handlePeek(w http.ResponseWriter, r *http.Request) {
	res, ok := n.srv.PeekCached(r.PathValue("digest"))
	if !ok {
		writeJSON(w, http.StatusNotFound,
			server.ErrorResponse{Error: "not cached here", Code: server.CodeNotFound})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleSubmit is the routing core. Forwarded submissions are pinned
// local (loop guard); everything else walks the ring from the digest's
// owner: serve locally when this node is the first live candidate,
// otherwise peek the candidate's cache and forward on a miss. A dead
// candidate is struck and the walk continues — that continuation is the
// failover path.
func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			server.ErrorResponse{Error: fmt.Sprintf("read body: %v", err), Code: server.CodeBadRequest})
		return
	}
	var req server.SubmitRequest
	if json.Unmarshal(body, &req) != nil || req.ForwardedBy != "" {
		// Unparsable bodies get the server's canonical 400; forwarded jobs
		// are pinned here — re-forwarding could loop if ring views diverge.
		n.serveLocal(w, r, body)
		return
	}
	key, err := server.KeyForRequest(&req)
	if err != nil || key == "" {
		// Invalid requests fail locally with the canonical error; NoCache
		// submissions have no digest to route on and run wherever they land.
		n.serveLocal(w, r, body)
		return
	}

	// The distributed trace starts here, at the entry node: peeks and the
	// forward carry this id, and the owner's job adopts it, so the whole
	// routed submission is one trace regardless of where it lands. (A
	// submission served locally mints its own id at registration and this
	// one is simply unused.)
	traceID := obs.NewTraceID()

	ring := n.currentRing()
	owner := ring.Owner(key)
	succs := ring.Successors(key)
	for i, p := range succs {
		if p.ID == n.self.ID {
			// This node is the first live candidate. Before recomputing
			// work a dead owner may already have finished, consult the
			// untried members of the key's replica set: a replicated
			// entry answers bit-identically at zero modeled partition
			// cost, and read-repairs the local cache on the way through.
			if res, from, ok := n.consultReplicas(key, succs, i); ok {
				n.noteFailover(owner, from, key)
				writeJSON(w, http.StatusOK, server.JobStatus{
					State: server.StateDone, Cached: true, Device: -1,
					Node: from.Addr, Result: res,
				})
				return
			}
			n.noteFailover(owner, p, key)
			n.serveLocal(w, r, body)
			return
		}
		if h := n.peerHealth(p.ID); h != nil && h.down() {
			continue
		}
		res, found, peekErr := n.peekRemote(p, key, traceID)
		if peekErr != nil {
			n.strikePeer(p, "peek: "+peekErr.Error())
			continue
		}
		if found {
			n.peekHits.Add(1)
			n.noteFailover(owner, p, key)
			n.srv.RecordTracedEvent(obs.EvClusterPeekHit, traceID,
				fmt.Sprintf("node %d answered digest %.12s", p.ID, key))
			writeJSON(w, http.StatusOK, server.JobStatus{
				State: server.StateDone, Cached: true, Device: -1,
				Node: p.Addr, Result: res,
			})
			return
		}
		n.peekMisses.Add(1)
		status, respBody, fi, fwdErr := n.forward(p, req, key, traceID)
		if fwdErr != nil {
			n.strikePeer(p, "forward: "+fwdErr.Error())
			continue
		}
		n.clearStrikes(p)
		n.forwards.Add(1)
		n.noteFailover(owner, p, key)
		n.srv.RecordTracedEvent(obs.EvClusterForward, traceID,
			fmt.Sprintf("digest %.12s -> node %d", key, p.ID))
		if status == http.StatusOK || status == http.StatusAccepted {
			var st server.JobStatus
			if json.Unmarshal(respBody, &st) == nil && st.ID != "" {
				n.mu.Lock()
				n.forwarded[st.ID] = fi
				n.mu.Unlock()
			}
		}
		relay(w, status, respBody)
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, server.ErrorResponse{
		Error: "no live ring node reachable for this job",
		Code:  server.CodeClusterUnreachable,
	})
}

// serveLocal hands the submission to the wrapped server and stamps this
// node's address into successful JobStatus answers, so entry nodes and
// clients learn where the job lives.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	cw := newCaptureWriter()
	n.inner.ServeHTTP(cw, r2)
	relay(w, cw.status, n.patchStatusBody(cw.status, cw.body.Bytes()))
}

// patchStatusBody stamps this node's address into a successful
// JobStatus body; anything that is not a job status passes through
// untouched.
func (n *Node) patchStatusBody(status int, out []byte) []byte {
	if status != http.StatusOK && status != http.StatusAccepted {
		return out
	}
	var st server.JobStatus
	if json.Unmarshal(out, &st) != nil || st.ID == "" {
		return out
	}
	st.Node = n.self.Addr
	b, err := json.Marshal(st)
	if err != nil {
		return out
	}
	return append(b, '\n')
}

// peekRemote asks peer whether it already caches digest. Both legs of
// the probe are charged against the modeled network; the real wall cost
// lands in the per-peer rpc histograms, and the routed submission's
// trace id rides the header.
func (n *Node) peekRemote(p Peer, digest, traceID string) (*server.JobResult, bool, error) {
	n.net.Charge(len(digest))
	req, err := http.NewRequest(http.MethodGet, "http://"+p.Addr+"/internal/cache/"+digest, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := n.doRPC(n.client, p, rpcPeek, obs.TraceContext{TraceID: traceID}, req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	n.net.Charge(len(b))
	if resp.StatusCode == http.StatusNotFound {
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("peek status %d", resp.StatusCode)
	}
	var res server.JobResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, false, err
	}
	return &res, true, nil
}

// forward ships the submission to peer with the forwarding envelope set:
// ForwardedBy pins the job there, ForwardNetSeconds carries the request
// leg's modeled cost into the job's lifecycle trace, and the trace
// fields (mirrored in the X-Gpmetis-Trace header) make the remote job
// adopt this entry node's trace id and parent its spans under the
// forward span minted here. The returned fwdInfo is what the stitcher
// needs later: the owner, the trace context, and the measured RTT.
func (n *Node) forward(p Peer, req server.SubmitRequest, key, traceID string) (int, []byte, fwdInfo, error) {
	fi := fwdInfo{
		peer:    p,
		traceID: traceID,
		spanID:  n.nextSpanID(),
		sentAt:  time.Now(),
	}
	req.ForwardedBy = n.self.Addr
	req.ForwardTraceID = traceID
	req.ForwardSpanID = fi.spanID
	req.ForwardWallUnixNano = fi.sentAt.UnixNano()
	payload, err := json.Marshal(&req)
	if err != nil {
		return 0, nil, fi, err
	}
	req.ForwardNetSeconds = n.net.Charge(len(payload))
	fi.netSeconds = req.ForwardNetSeconds
	// Re-marshal with the charge embedded; the size delta is noise next to
	// the graph text that dominates the payload.
	payload, err = json.Marshal(&req)
	if err != nil {
		return 0, nil, fi, err
	}
	hreq, err := http.NewRequest(http.MethodPost, "http://"+p.Addr+"/jobs", bytes.NewReader(payload))
	if err != nil {
		return 0, nil, fi, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	tc := obs.TraceContext{TraceID: traceID, SpanID: fi.spanID, WallUnixNano: fi.sentAt.UnixNano()}
	resp, err := n.doRPC(n.client, p, rpcForward, tc, hreq)
	if err != nil {
		return 0, nil, fi, err
	}
	fi.rtt = time.Since(fi.sentAt).Seconds()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fi, err
	}
	n.net.Charge(len(b))
	return resp.StatusCode, b, fi, nil
}

// proxyOrLocal serves job lookups: jobs this node forwarded are fetched
// from their owner (the modeled network pays for both legs), everything
// else is local. A forwarded job's trace request is special: instead of
// relaying the owner's document verbatim, the entry node stitches its
// own forward span and the owner's spans into one multi-process trace.
func (n *Node) proxyOrLocal(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	n.mu.Lock()
	fi, ok := n.forwarded[id]
	n.mu.Unlock()
	if !ok {
		// Local job: serve it here and stamp this node's address into the
		// status, so polls (not just submissions) say where the job lives.
		cw := newCaptureWriter()
		n.inner.ServeHTTP(cw, r)
		relay(w, cw.status, n.patchStatusBody(cw.status, cw.body.Bytes()))
		return
	}
	p := fi.peer
	if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/trace") {
		if n.stitchForwardedTrace(w, fi) {
			return
		}
		// Stitching failed (owner unreachable, trace evicted); fall back
		// to the plain proxy so the client still gets the owner's view.
	}
	n.net.Charge(len(r.URL.Path))
	req2, err := http.NewRequestWithContext(r.Context(), r.Method, "http://"+p.Addr+r.URL.Path, nil)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError,
			server.ErrorResponse{Error: err.Error(), Code: server.CodeBadRequest})
		return
	}
	resp, err := n.doRPC(n.client, p, rpcProxy, obs.TraceContext{TraceID: fi.traceID, SpanID: fi.spanID}, req2)
	if err != nil {
		n.strikePeer(p, "proxy: "+err.Error())
		writeJSON(w, http.StatusBadGateway, server.ErrorResponse{
			Error: fmt.Sprintf("owning node %d (%s) unreachable: %v", p.ID, p.Addr, err),
			Code:  server.CodeNodeUnreachable,
		})
		return
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		n.strikePeer(p, "proxy read: "+err.Error())
		writeJSON(w, http.StatusBadGateway, server.ErrorResponse{
			Error: fmt.Sprintf("owning node %d (%s) failed mid-response: %v", p.ID, p.Addr, err),
			Code:  server.CodeNodeUnreachable,
		})
		return
	}
	n.net.Charge(len(b))
	n.clearStrikes(p)
	relay(w, resp.StatusCode, b)
}

// noteFailover accounts a submission that landed on a ring successor
// instead of the digest's owner.
func (n *Node) noteFailover(owner, got Peer, key string) {
	if owner.ID == got.ID {
		return
	}
	n.failovers.Add(1)
	detail := fmt.Sprintf("digest %.12s: owner %d down, routed to successor %d", key, owner.ID, got.ID)
	n.srv.RecordEvent(obs.EvClusterFailover, detail)
	n.log.Warn("cluster failover", "digest", key[:12], "owner", owner.ID, "successor", got.ID)
}

// strikePeer records a request-path failure against a peer, marking it
// down at the strike threshold.
func (n *Node) strikePeer(p Peer, detail string) {
	h := n.peerHealth(p.ID)
	if h == nil {
		return
	}
	if h.strike(n.cfg.StrikeThreshold) {
		n.srv.RecordEvent(obs.EvNodeDown, fmt.Sprintf("node %d (%s): %s", p.ID, p.Addr, detail))
		n.log.Warn("peer marked down", "peer", p.ID, "addr", p.Addr, "cause", detail)
	}
}

// clearStrikes resets a peer's failure streak after it answered cleanly.
func (n *Node) clearStrikes(p Peer) {
	if h := n.peerHealth(p.ID); h != nil {
		h.clearStrikes()
	}
}

// probeLoop checks every peer's /healthz at the configured cadence.
// Probes of down peers count toward their reinstatement budget; probes
// of up peers clear or accumulate strikes. Each probe is charged to the
// modeled network like any other message.
func (n *Node) probeLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			for _, p := range n.otherPeers() {
				n.probePeer(p)
			}
		}
	}
}

// probePeer runs one health probe against p and folds the outcome into
// its quarantine state machine.
func (n *Node) probePeer(p Peer) {
	h := n.peerHealth(p.ID)
	if h == nil {
		return
	}
	n.net.Charge(0)
	var resp *http.Response
	req, err := http.NewRequest(http.MethodGet, "http://"+p.Addr+"/healthz", nil)
	if err == nil {
		// Each probe is its own (tiny) trace: health checking is traffic
		// too, and a probe storm should be attributable in peer logs.
		resp, err = n.doRPC(n.probe, p, rpcProbe, obs.TraceContext{TraceID: obs.NewTraceID()}, req)
	}
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		n.net.Charge(len(b))
	}
	wasDown := h.down()
	if ok {
		if h.probeResult(true) {
			n.srv.RecordEvent(obs.EvNodeUp, fmt.Sprintf("node %d (%s) reinstated", p.ID, p.Addr))
			n.log.Info("peer reinstated", "peer", p.ID, "addr", p.Addr)
			n.spawnDrain(p)
		}
		return
	}
	if wasDown {
		h.probeResult(false)
		return
	}
	n.strikePeer(p, "health probe failed")
}

// captureWriter buffers an inner handler's response so the routing layer
// can patch the body before relaying it.
type captureWriter struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func newCaptureWriter() *captureWriter {
	return &captureWriter{status: http.StatusOK, header: http.Header{}}
}

func (c *captureWriter) Header() http.Header         { return c.header }
func (c *captureWriter) WriteHeader(code int)        { c.status = code }
func (c *captureWriter) Write(b []byte) (int, error) { return c.body.Write(b) }

// relay writes a buffered JSON response through to the real writer.
func relay(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
