package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"gpmetis"
	"gpmetis/internal/obs"
	"gpmetis/internal/server"
)

// chromeDoc mirrors the Chrome trace_event JSON container.
type chromeDoc struct {
	TraceEvents []obs.ChromeEvent `json:"traceEvents"`
}

// fetchChromeTrace GETs a job's trace document through a ring node.
func fetchChromeTrace(t *testing.T, base, id string) chromeDoc {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s/trace: HTTP %d", id, resp.StatusCode)
	}
	var doc chromeDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b := new(bytes.Buffer)
	b.ReadFrom(resp.Body)
	resp.Body.Close()
	return b.String()
}

func fetchEvents(t *testing.T, base string) []obs.Event {
	t.Helper()
	resp, err := http.Get(base + "/admin/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er server.EventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	return er.Events
}

// TestClusterStitchedTrace is the tentpole's acceptance scenario: a job
// submitted to a non-owner node yields, from the entry node, ONE Chrome
// trace document containing spans from both nodes under one trace id,
// with the owner's lifecycle spans parented under the entry node's
// cluster-forward span.
func TestClusterStitchedTrace(t *testing.T) {
	nodes := startTestRing(t, 3)

	g, err := gpmetis.Grid2D(40, 40)
	if err != nil {
		t.Fatal(err)
	}
	req := server.SubmitRequest{Graph: clusterGraphText(t, g), K: 4, Seed: 5}
	keyReq := req
	key, err := server.KeyForRequest(&keyReq)
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes[0].node.Ring().Owner(key)
	var entry *ringNode
	for _, rn := range nodes {
		if rn.peer.ID != owner.ID {
			entry = rn
			break
		}
	}

	st, _ := clusterSubmit(t, entry.base(), req)
	st = clusterPoll(t, entry.base(), st.ID)
	if st.State != server.StateDone {
		t.Fatalf("job state %s, error %q", st.State, st.Error)
	}
	if st.TraceID == "" {
		t.Fatal("forwarded job reports no trace id")
	}

	doc := fetchChromeTrace(t, entry.base(), st.ID)
	if len(doc.TraceEvents) == 0 {
		t.Fatal("stitched trace is empty")
	}

	pids := map[int]bool{}
	traceIDs := map[string]bool{}
	var forwardSpan float64
	forwardSeen := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		pids[ev.Pid] = true
		if tid, ok := ev.Args["trace_id"].(string); ok {
			traceIDs[tid] = true
		}
		if ev.Pid == 1 && ev.Name == "cluster-forward" {
			forwardSeen = true
			forwardSpan, _ = ev.Args["span"].(float64)
			if ev.Dur <= 0 {
				t.Errorf("cluster-forward span has duration %v, want > 0 (the measured RTT)", ev.Dur)
			}
		}
	}
	if len(pids) < 2 {
		t.Fatalf("stitched trace spans %d pids, want >= 2 (one per node); pids=%v", len(pids), pids)
	}
	if !forwardSeen {
		t.Fatal("stitched trace has no cluster-forward span on the entry node's pid")
	}
	if len(traceIDs) != 1 {
		t.Fatalf("stitched trace carries %d distinct trace ids %v, want exactly 1", len(traceIDs), traceIDs)
	}
	if !traceIDs[st.TraceID] {
		t.Errorf("stitched trace id set %v does not match the job's trace id %q", traceIDs, st.TraceID)
	}

	// The owner's lifecycle spans (pid 2) parent under the forward span.
	remoteSpans, parented := 0, 0
	remoteNames := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 2 {
			continue
		}
		remoteSpans++
		remoteNames[ev.Name] = true
		if p, ok := ev.Args["parent"].(float64); ok && p == forwardSpan {
			parented++
		}
		if ev.Ts < 0 {
			t.Errorf("remote span %q starts at %vµs, before the entry clock's origin", ev.Name, ev.Ts)
		}
	}
	if remoteSpans == 0 {
		t.Fatal("stitched trace has no remote lifecycle spans on pid 2")
	}
	if parented == 0 {
		t.Error("no remote span is parented under the entry node's cluster-forward span")
	}
	if !remoteNames["run"] {
		t.Errorf("remote lifecycle spans %v lack a run span", remoteNames)
	}

	// The owner's own document must still be the single-node shape (it
	// did not forward anything), while the entry node's is stitched.
	if ownerTrace := fetchChromeTrace(t, "http://"+owner.Addr, st.ID); len(ownerTrace.TraceEvents) == 0 {
		t.Error("the owner serves an empty trace for its own job")
	}
}

// TestClusterTraceFetchEndpoint: GET /internal/trace/{trace_id} on the
// owning node returns that node's spans for a routed job's trace, and
// 404s for unknown ids.
func TestClusterTraceFetchEndpoint(t *testing.T) {
	nodes := startTestRing(t, 3)

	g, err := gpmetis.Grid2D(30, 30)
	if err != nil {
		t.Fatal(err)
	}
	req := server.SubmitRequest{Graph: clusterGraphText(t, g), K: 2, Seed: 9}
	keyReq := req
	key, err := server.KeyForRequest(&keyReq)
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes[0].node.Ring().Owner(key)
	var entry *ringNode
	for _, rn := range nodes {
		if rn.peer.ID != owner.ID {
			entry = rn
			break
		}
	}
	st, _ := clusterSubmit(t, entry.base(), req)
	st = clusterPoll(t, entry.base(), st.ID)
	if st.TraceID == "" {
		t.Fatal("routed job has no trace id")
	}

	resp, err := http.Get("http://" + owner.Addr + "/internal/trace/" + st.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	var nt server.NodeTrace
	err = json.NewDecoder(resp.Body).Decode(&nt)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: HTTP %d err %v", resp.StatusCode, err)
	}
	if nt.TraceID != st.TraceID || nt.JobID != st.ID {
		t.Errorf("NodeTrace identifies (%q, %q), want (%q, %q)", nt.TraceID, nt.JobID, st.TraceID, st.ID)
	}
	if len(nt.Spans) == 0 {
		t.Error("owner returned no lifecycle spans for the routed job")
	}
	if nt.AnchorUnixNano == 0 {
		t.Error("NodeTrace has no clock anchor; the stitcher cannot align clocks")
	}

	resp2, err := http.Get("http://" + owner.Addr + "/internal/trace/no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id answered HTTP %d, want 404", resp2.StatusCode)
	}
}

// TestClusterRPCMetricsEager: a fresh ring member's very first /metrics
// scrape already exposes every (peer, rpc-type) histogram and error
// counter, the in-flight gauge, and the node-labeled build_info — the
// invariant the make metrics-lint target pins.
func TestClusterRPCMetricsEager(t *testing.T) {
	nodes := startTestRing(t, 3)
	text := scrapeMetrics(t, nodes[0].base())

	if !strings.Contains(text, "gpmetisd_cluster_rpc_inflight 0") {
		t.Error("/metrics is missing the gpmetisd_cluster_rpc_inflight gauge")
	}
	for _, peer := range []string{"1", "2"} {
		for _, rpc := range rpcTypes {
			count := fmt.Sprintf(`gpmetisd_cluster_rpc_seconds_count{peer=%q,rpc=%q} `, peer, rpc)
			if !strings.Contains(text, count) {
				t.Errorf("fresh scrape is missing %s", count)
			}
			errs := fmt.Sprintf(`gpmetisd_cluster_rpc_errors_total{peer=%q,rpc=%q} `, peer, rpc)
			if !strings.Contains(text, errs) {
				t.Errorf("fresh scrape is missing %s", errs)
			}
		}
	}
	// Bucket lines are cumulative and end at +Inf.
	if !strings.Contains(text, `gpmetisd_cluster_rpc_seconds_bucket{peer="1",rpc="forward",le="+Inf"} 0`) {
		t.Error("fresh scrape is missing the forward histogram's +Inf bucket")
	}
	// build_info carries the node identity when clustering is on.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "gpmetisd_build_info{") {
			if !strings.Contains(line, `node="0"`) {
				t.Errorf("build_info lacks the node label: %s", line)
			}
		}
	}
}

// TestClusterRPCMetricsObserve: routing one job through the ring moves
// the forward and peek histograms, with real (non-zero) wall seconds.
func TestClusterRPCMetricsObserve(t *testing.T) {
	nodes := startTestRing(t, 3)

	g, err := gpmetis.Grid2D(30, 30)
	if err != nil {
		t.Fatal(err)
	}
	req := server.SubmitRequest{Graph: clusterGraphText(t, g), K: 2, Seed: 21}
	keyReq := req
	key, err := server.KeyForRequest(&keyReq)
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes[0].node.Ring().Owner(key)
	var entry *ringNode
	for _, rn := range nodes {
		if rn.peer.ID != owner.ID {
			entry = rn
			break
		}
	}
	st, _ := clusterSubmit(t, entry.base(), req)
	clusterPoll(t, entry.base(), st.ID)

	text := scrapeMetrics(t, entry.base())
	fwdCount := fmt.Sprintf(`gpmetisd_cluster_rpc_seconds_count{peer="%d",rpc="forward"} 1`, owner.ID)
	if !strings.Contains(text, fwdCount) {
		t.Errorf("after one forward, /metrics lacks %q", fwdCount)
	}
	peekCount := fmt.Sprintf(`gpmetisd_cluster_rpc_seconds_count{peer="%d",rpc="peek"} 1`, owner.ID)
	if !strings.Contains(text, peekCount) {
		t.Errorf("after one peek, /metrics lacks %q", peekCount)
	}
	// The forward's wall time is real: its _sum must be positive.
	wantSum := fmt.Sprintf(`gpmetisd_cluster_rpc_seconds_sum{peer="%d",rpc="forward"} 0`, owner.ID)
	for _, line := range strings.Split(text, "\n") {
		if line == wantSum {
			t.Errorf("forward RPC recorded zero wall seconds: %s", line)
		}
	}
}

// TestClusterBackgroundTraces: replication, hinted handoff, and
// anti-entropy rounds each record trace-id-bearing flight-recorder
// events, their spans land in the span store (replayable via
// GET /internal/trace/{trace_id}), and their wire calls move the
// purpose-labeled rpc histograms.
func TestClusterBackgroundTraces(t *testing.T) {
	nodes := startTestRing(t, 3)

	g, err := gpmetis.Grid2D(30, 30)
	if err != nil {
		t.Fatal(err)
	}
	req := server.SubmitRequest{Graph: clusterGraphText(t, g), K: 2, Seed: 33}
	keyReq := req
	key, err := server.KeyForRequest(&keyReq)
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes[0].node.Ring().Owner(key)
	var ownerNode *ringNode
	for _, rn := range nodes {
		if rn.peer.ID == owner.ID {
			ownerNode = rn
			break
		}
	}

	// Fresh completion on the owner triggers async replication (RF=2).
	st, _ := clusterSubmit(t, ownerNode.base(), req)
	clusterPoll(t, ownerNode.base(), st.ID)
	deadline := time.Now().Add(10 * time.Second)
	for ownerNode.node.replicaPushes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replication never pushed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The replicate event carries a trace id whose round is replayable
	// from the owner's span store.
	var replTrace string
	for _, ev := range fetchEvents(t, ownerNode.base()) {
		if ev.Type == obs.EvClusterReplicate {
			if ev.Trace == "" {
				t.Fatal("cluster_replicate event has no trace id")
			}
			if ev.Node == "" {
				t.Error("cluster_replicate event has no node id")
			}
			replTrace = ev.Trace
		}
	}
	if replTrace == "" {
		t.Fatal("no cluster_replicate event recorded")
	}
	resp, err := http.Get(ownerNode.base() + "/internal/trace/" + replTrace)
	if err != nil {
		t.Fatal(err)
	}
	var nt server.NodeTrace
	err = json.NewDecoder(resp.Body).Decode(&nt)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("replication round fetch: HTTP %d err %v", resp.StatusCode, err)
	}
	found := false
	for _, sp := range nt.Spans {
		if sp.Name == "replicate-push" {
			found = true
			if sp.EndUnixNano < sp.StartUnixNano {
				t.Error("replicate-push span ends before it starts")
			}
		}
	}
	if !found {
		t.Errorf("replication round %q holds no replicate-push span (spans: %d)", replTrace, len(nt.Spans))
	}
	if !rpcCountNonZero(scrapeMetrics(t, ownerNode.base()), "replica_put") {
		t.Error("replication moved no replica_put histogram")
	}

	// Hinted handoff: hint a digest for a peer by hand, then drain.
	var peer Peer
	for _, p := range ownerNode.node.otherPeers() {
		peer = p
		break
	}
	ownerNode.node.addHint(peer, key, "test")
	ownerNode.node.DrainHintsNow()
	var drainTrace string
	for _, ev := range fetchEvents(t, ownerNode.base()) {
		if ev.Type == obs.EvClusterHintDrained {
			drainTrace = ev.Trace
		}
	}
	if drainTrace == "" {
		t.Fatal("hint drain recorded no trace-bearing event")
	}
	if st2, ok := ownerNode.node.spans.Get(drainTrace); !ok || len(st2.Spans) == 0 {
		t.Error("hint drain round left no spans in the span store")
	}
	if !rpcCountNonZero(scrapeMetrics(t, ownerNode.base()), "handoff_put") {
		t.Error("hint drain moved no handoff_put histogram")
	}

	// Anti-entropy: plant divergence on the owner, then sweep.
	extra := &server.JobResult{Part: []int{0, 1}, EdgeCut: 1}
	planted := false
	for _, cand := range []string{"aaaa" + key[4:], "bbbb" + key[4:], "cccc" + key[4:]} {
		set := ownerNode.node.currentRing().Successors(cand)
		if len(set) >= 2 && (set[0].ID == owner.ID || set[1].ID == owner.ID) {
			ownerNode.srv.StoreReplicated(cand, extra)
			planted = true
			break
		}
	}
	if planted {
		ownerNode.node.AntiEntropyNow()
		if !rpcCountNonZero(scrapeMetrics(t, ownerNode.base()), "summary") {
			t.Error("anti-entropy sweep moved no summary histogram")
		}
		repaired := false
		for _, ev := range fetchEvents(t, ownerNode.base()) {
			if ev.Type == obs.EvClusterRepair && ev.Trace != "" {
				repaired = true
			}
		}
		if ownerNode.node.repairPushed.Load() > 0 && !repaired {
			t.Error("repair ran but recorded no trace-bearing cluster_repair event")
		}
	}
}

// rpcCountNonZero reports whether any rpc_seconds_count line for the
// given rpc label shows a non-zero count.
func rpcCountNonZero(text, rpc string) bool {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "gpmetisd_cluster_rpc_seconds_count{") &&
			strings.Contains(line, fmt.Sprintf("rpc=%q", rpc)) &&
			!strings.HasSuffix(line, " 0") {
			return true
		}
	}
	return false
}

// TestClusterFleetStatus: the federated view lists every ring member as
// up, with status snapshots, ownership shares summing to ~100%, and a
// working HTML rendering; both answers come from one fan-out node.
func TestClusterFleetStatus(t *testing.T) {
	nodes := startTestRing(t, 3)

	resp, err := http.Get(nodes[1].base() + "/admin/cluster/status.json")
	if err != nil {
		t.Fatal(err)
	}
	var fs server.FleetStatus
	err = json.NewDecoder(resp.Body).Decode(&fs)
	resp.Body.Close()
	if err != nil || len(fs.Nodes) != 3 {
		t.Fatalf("fleet status: err=%v nodes=%d, want 3", err, len(fs.Nodes))
	}
	if fs.Node != 1 {
		t.Errorf("fleet view reports fan-out node %d, want 1", fs.Node)
	}
	share := 0.0
	for _, node := range fs.Nodes {
		if !node.Up {
			t.Errorf("node %d reported down in a healthy ring: %s", node.ID, node.Error)
		}
		if node.Status == nil {
			t.Errorf("node %d row has no status snapshot", node.ID)
			continue
		}
		if node.Self != (node.ID == 1) {
			t.Errorf("node %d self flag wrong", node.ID)
		}
		if !node.Self && node.RTTSeconds <= 0 {
			t.Errorf("remote node %d has no RTT measurement", node.ID)
		}
		share += node.OwnershipPct
	}
	if share < 99.9 || share > 100.1 {
		t.Errorf("ownership shares sum to %.3f%%, want ~100%%", share)
	}

	htmlResp, err := http.Get(nodes[1].base() + "/admin/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	page := new(bytes.Buffer)
	page.ReadFrom(htmlResp.Body)
	htmlResp.Body.Close()
	if htmlResp.StatusCode != http.StatusOK || !strings.Contains(page.String(), "gpmetisd fleet") {
		t.Errorf("fleet HTML page: HTTP %d, body %.120q", htmlResp.StatusCode, page.String())
	}
}

// TestClusterJobLogsCarryNode: jobs on a ring member stamp the node id
// into lifecycle events (satellite: node_id in every job-scoped record).
func TestClusterJobLogsCarryNode(t *testing.T) {
	nodes := startTestRing(t, 3)
	g, err := gpmetis.Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	req := server.SubmitRequest{Graph: clusterGraphText(t, g), K: 2, Seed: 2}
	st, _ := clusterSubmit(t, nodes[0].base(), req)
	clusterPoll(t, nodes[0].base(), st.ID)

	// Whichever node ran the job recorded admit/done events with its id.
	stamped := false
	for _, rn := range nodes {
		for _, ev := range fetchEvents(t, rn.base()) {
			if ev.Job == st.ID && ev.Type == obs.EvDone {
				if ev.Node == "" {
					t.Errorf("done event for %s has no node_id", st.ID)
				}
				stamped = true
			}
		}
	}
	if !stamped {
		t.Errorf("no done event found for job %s on any ring member", st.ID)
	}
}
