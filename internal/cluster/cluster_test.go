package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"gpmetis"
	"gpmetis/internal/graph/gio"
	"gpmetis/internal/obs"
	"gpmetis/internal/server"
)

// ringNode is one in-process member of a test ring: a real server, a
// cluster node wrapping it, and a real TCP listener so peers can dial
// each other exactly as separate daemons would.
type ringNode struct {
	peer Peer
	srv  *server.Server
	node *Node
	hs   *http.Server
}

func (rn *ringNode) base() string { return "http://" + rn.peer.Addr }

// startTestRing boots n ring members on loopback listeners. The health
// prober is disabled; request-path strikes drive failover, which keeps
// the tests deterministic.
func startTestRing(t *testing.T, n int) []*ringNode {
	t.Helper()
	return startTestRingCfg(t, n, nil, nil)
}

// startTestRingCfg is startTestRing with per-node config hooks: srvCfg
// and nodeCfg (either may be nil) mutate each member's server and
// cluster configuration before boot. The anti-entropy loop is disabled
// by default so repairs only run when a test invokes them; hooks can
// re-enable it.
func startTestRingCfg(t *testing.T, n int,
	srvCfg func(i int, c *server.Config), nodeCfg func(i int, c *Config)) []*ringNode {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]Peer, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = Peer{ID: i, Addr: ln.Addr().String()}
	}
	nodes := make([]*ringNode, n)
	for i := 0; i < n; i++ {
		sc := server.Config{
			Devices: 1, QueueCap: 16, CacheCap: 32, Logger: obs.DiscardLogger(),
			JobIDPrefix: fmt.Sprintf("n%d-j", i),
		}
		if srvCfg != nil {
			srvCfg(i, &sc)
		}
		s := server.New(sc)
		cc := Config{
			NodeID: i, Peers: peers, Server: s,
			ProbeInterval: -1, AntiEntropyInterval: -1, Logger: obs.DiscardLogger(),
		}
		if nodeCfg != nil {
			nodeCfg(i, &cc)
		}
		nd, err := New(cc)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: nd.Handler(s.Handler())}
		go hs.Serve(lns[i])
		nodes[i] = &ringNode{peer: peers[i], srv: s, node: nd, hs: hs}
	}
	t.Cleanup(func() {
		for _, rn := range nodes {
			rn.hs.Close()
			rn.node.Close()
			rn.srv.Close()
		}
	})
	return nodes
}

func clusterGraphText(t *testing.T, g *gpmetis.Graph) string {
	t.Helper()
	var sb strings.Builder
	if err := gio.Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func clusterSubmit(t *testing.T, base string, req server.SubmitRequest) (server.JobStatus, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit to %s: HTTP %d %s (%s)", base, resp.StatusCode, e.Error, e.Code)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st, resp.StatusCode
}

func clusterPoll(t *testing.T, base, id string) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st server.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case server.StateDone, server.StateFailed, server.StateCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func clusterCounters(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Counters
}

func sumCounter(t *testing.T, nodes []*ringNode, name string) float64 {
	t.Helper()
	total := 0.0
	for _, rn := range nodes {
		total += clusterCounters(t, rn.base())[name]
	}
	return total
}

// TestClusterRoutesToOneOwner is the acceptance scenario: identical
// submissions entering the ring at different nodes land on the digest's
// one owner; the second entry node answers from the owner's cache via a
// peek, with zero additional modeled partition seconds anywhere in the
// ring, and the result is bit-identical to a direct Partition call.
func TestClusterRoutesToOneOwner(t *testing.T) {
	nodes := startTestRing(t, 3)

	g, err := gpmetis.Delaunay(1500, 7)
	if err != nil {
		t.Fatal(err)
	}
	req := server.SubmitRequest{Graph: clusterGraphText(t, g), K: 4, Seed: 7}
	direct, err := gpmetis.Partition(g, 4, gpmetis.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	keyReq := req
	key, err := server.KeyForRequest(&keyReq)
	if err != nil || key == "" {
		t.Fatalf("KeyForRequest: key=%q err=%v", key, err)
	}
	owner := nodes[0].node.Ring().Owner(key)
	var entries []*ringNode // the two non-owner members
	for _, rn := range nodes {
		if rn.peer.ID != owner.ID {
			entries = append(entries, rn)
		}
	}

	// First submission enters at a non-owner: it must be forwarded to the
	// owner, and the entry node must proxy the polls there transparently.
	st, _ := clusterSubmit(t, entries[0].base(), req)
	st = clusterPoll(t, entries[0].base(), st.ID)
	if st.State != server.StateDone {
		t.Fatalf("job state %s, error %q", st.State, st.Error)
	}
	if st.Cached {
		t.Error("first submission must not be a cache hit")
	}
	if st.Node != owner.Addr {
		t.Errorf("job ran on %q, ring owner is %q", st.Node, owner.Addr)
	}
	if fw := entries[0].node.Status().Forwards; fw != 1 {
		t.Errorf("entry node forwarded %d submissions, want 1", fw)
	}
	for v, p := range st.Result.Part {
		if p != direct.Part[v] {
			t.Fatalf("forwarded result differs from direct Partition at vertex %d (%d vs %d)",
				v, p, direct.Part[v])
		}
	}

	modeledBefore := sumCounter(t, nodes, "modeled.seconds")
	if modeledBefore <= 0 {
		t.Fatal("the first run must accumulate modeled seconds")
	}

	// The identical submission enters at the other non-owner: the peek
	// must answer it from the owner's cache without another forward.
	st2, code := clusterSubmit(t, entries[1].base(), req)
	if code != http.StatusOK || st2.State != server.StateDone || !st2.Cached {
		t.Fatalf("resubmit: code=%d state=%s cached=%t, want 200/done/true", code, st2.State, st2.Cached)
	}
	if st2.Node != owner.Addr {
		t.Errorf("peek answered from %q, want the owner %q", st2.Node, owner.Addr)
	}
	cs := entries[1].node.Status()
	if cs.PeekHits != 1 || cs.Forwards != 0 {
		t.Errorf("second entry: peek_hits=%d forwards=%d, want 1 and 0", cs.PeekHits, cs.Forwards)
	}
	if cs.NetModeledSeconds <= 0 || cs.NetMessages == 0 {
		t.Errorf("peek traffic must be charged to the modeled network (sec=%v msgs=%d)",
			cs.NetModeledSeconds, cs.NetMessages)
	}
	for v, p := range st2.Result.Part {
		if p != direct.Part[v] {
			t.Fatalf("peeked result differs from direct Partition at vertex %d (%d vs %d)",
				v, p, direct.Part[v])
		}
	}

	// Exactly one node executed the job, and the peek charged no
	// partition time anywhere in the ring.
	if done := sumCounter(t, nodes, "jobs.completed"); done != 1 {
		t.Errorf("ring completed %v jobs for one distinct submission, want 1", done)
	}
	if after := sumCounter(t, nodes, "modeled.seconds"); after != modeledBefore {
		t.Errorf("cache peek charged modeled partition time: %.9f -> %.9f", modeledBefore, after)
	}
}

// TestClusterFailoverOnDeadOwner: with the digest's owner gone, a
// submission entering elsewhere walks the ring to the next live
// successor, completes there, and the entry node accounts a failover.
func TestClusterFailoverOnDeadOwner(t *testing.T) {
	nodes := startTestRing(t, 3)

	g, err := gpmetis.Grid2D(40, 40)
	if err != nil {
		t.Fatal(err)
	}
	req := server.SubmitRequest{Graph: clusterGraphText(t, g), K: 4, Seed: 11}
	direct, err := gpmetis.Partition(g, 4, gpmetis.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	keyReq := req
	key, err := server.KeyForRequest(&keyReq)
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes[0].node.Ring().Owner(key)
	var entry *ringNode
	for _, rn := range nodes {
		if rn.peer.ID == owner.ID {
			rn.hs.Close() // kill the owner before anyone submits
		} else if entry == nil {
			entry = rn
		}
	}

	st, _ := clusterSubmit(t, entry.base(), req)
	st = clusterPoll(t, entry.base(), st.ID)
	if st.State != server.StateDone {
		t.Fatalf("failover job state %s, error %q", st.State, st.Error)
	}
	if st.Node == owner.Addr {
		t.Errorf("job reports the dead owner %q as its home", owner.Addr)
	}
	if fo := entry.node.Status().Failovers; fo < 1 {
		t.Errorf("entry node recorded %d failovers, want >= 1", fo)
	}
	for v, p := range st.Result.Part {
		if p != direct.Part[v] {
			t.Fatalf("failover result differs from direct Partition at vertex %d (%d vs %d)",
				v, p, direct.Part[v])
		}
	}
}

// TestClusterForwardedJobPinned: a submission carrying the forwarding
// envelope must run where it lands, even when the ring says another
// node owns its digest — the loop guard that keeps divergent ring views
// from bouncing a job forever.
func TestClusterForwardedJobPinned(t *testing.T) {
	nodes := startTestRing(t, 3)

	g, err := gpmetis.Grid2D(30, 30)
	if err != nil {
		t.Fatal(err)
	}
	req := server.SubmitRequest{Graph: clusterGraphText(t, g), K: 4, Seed: 3}
	keyReq := req
	key, err := server.KeyForRequest(&keyReq)
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes[0].node.Ring().Owner(key)
	var entry *ringNode
	for _, rn := range nodes {
		if rn.peer.ID != owner.ID {
			entry = rn
			break
		}
	}

	req.ForwardedBy = "10.0.0.99:9999" // claims to be already forwarded
	st, _ := clusterSubmit(t, entry.base(), req)
	st = clusterPoll(t, entry.base(), st.ID)
	if st.State != server.StateDone {
		t.Fatalf("pinned job state %s, error %q", st.State, st.Error)
	}
	if st.Node != entry.peer.Addr {
		t.Errorf("pinned job ran on %q, want the receiving node %q", st.Node, entry.peer.Addr)
	}
	if fw := entry.node.Status().Forwards; fw != 0 {
		t.Errorf("pinned job was re-forwarded %d times, want 0", fw)
	}
}

// TestClusterStatusOnHealthz: every ring member reports its identity,
// the member list, and per-peer health on /healthz.
func TestClusterStatusOnHealthz(t *testing.T) {
	nodes := startTestRing(t, 3)
	for i, rn := range nodes {
		resp, err := http.Get(rn.base() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h server.HealthResponse
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if h.Cluster == nil {
			t.Fatalf("node %d: /healthz has no cluster block", i)
		}
		if h.Cluster.NodeID != i || h.Cluster.Addr != rn.peer.Addr {
			t.Errorf("node %d reports identity %d (%s)", i, h.Cluster.NodeID, h.Cluster.Addr)
		}
		if len(h.Cluster.Peers) != 3 {
			t.Errorf("node %d reports %d peers, want 3", i, len(h.Cluster.Peers))
		}
		selfSeen := false
		for _, p := range h.Cluster.Peers {
			if p.Self {
				selfSeen = true
				if p.ID != i {
					t.Errorf("node %d marks peer %d as self", i, p.ID)
				}
			}
			if p.State != NodeUp {
				t.Errorf("node %d sees peer %d as %s with no failures injected", i, p.ID, p.State)
			}
		}
		if !selfSeen {
			t.Errorf("node %d does not mark itself in the peer list", i)
		}
	}
}

// TestClusterMetricsExported: the gpmetisd_cluster_* series appear on
// /metrics with the node's identity and per-peer up gauges.
func TestClusterMetricsExported(t *testing.T) {
	nodes := startTestRing(t, 3)
	resp, err := http.Get(nodes[0].base() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b := new(bytes.Buffer)
	b.ReadFrom(resp.Body)
	resp.Body.Close()
	text := b.String()
	for _, want := range []string{
		"gpmetisd_cluster_node_id 0",
		"gpmetisd_cluster_ring_size 3",
		"gpmetisd_cluster_forwards",
		"gpmetisd_cluster_peek_hits",
		"gpmetisd_cluster_peek_misses",
		"gpmetisd_cluster_failovers_total",
		"gpmetisd_cluster_net_modeled_seconds",
		"gpmetisd_cluster_net_messages",
		"gpmetisd_cluster_replicas 2",
		"gpmetisd_cluster_replica_pushes",
		"gpmetisd_cluster_replica_stores",
		"gpmetisd_cluster_replica_hits",
		"gpmetisd_cluster_handoff_hinted",
		"gpmetisd_cluster_handoff_drained",
		"gpmetisd_cluster_handoff_hints_outstanding",
		"gpmetisd_cluster_repair_pushed",
		"gpmetisd_cluster_repair_pulled",
		`gpmetisd_cluster_node_up{node="1"} 1`,
		`gpmetisd_cluster_node_up{node="2"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}
	if strings.Contains(text, fmt.Sprintf(`gpmetisd_cluster_node_up{node="0"}`)) {
		t.Error("a node must not export an up gauge for itself")
	}
}
